// Quickstart: load a dataset replica, train a GraphSAGE model on the full
// graph, run WiseGraph's joint optimization, and verify that the tuned
// gTask execution produces the same accuracy as the reference execution.
package main

import (
	"fmt"
	"log"

	"wisegraph"
)

func main() {
	// A small replica of OGBN-Arxiv: scale divisor 400 keeps it around a
	// thousand vertices so this example runs in seconds.
	ds, err := wisegraph.LoadDataset("AR", wisegraph.DatasetOptions{
		Scale: 400, Seed: 7, Homophily: 0.85, FeatureNoise: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s replica: %v, %d classes, feature dim %d\n",
		ds.Spec.Name, ds.Graph, ds.Classes(), ds.Dim())

	tr, err := wisegraph.NewTrainer(ds, wisegraph.ModelConfig{
		Kind: wisegraph.SAGE, Hidden: 32, Layers: 2, Seed: 7,
	}, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntraining 20 epochs…")
	for _, st := range tr.Run(20) {
		if st.Epoch%5 == 0 || st.Epoch == 19 {
			fmt.Printf("  epoch %2d  loss %.4f  val %.3f  test %.3f\n",
				st.Epoch, st.Loss, st.ValAcc, st.TestAcc)
		}
	}

	// Joint optimization: WiseGraph searches graph partition plans and
	// operation partition plans together (paper §6.3).
	plan := tr.Tune(wisegraph.A100())
	fmt.Printf("\njoint optimization selected %v with %v (%d plans tried, %d pruned)\n",
		plan.GraphPlan, plan.OpPlan, plan.PlansTried, plan.PlansPruned)
	fmt.Printf("modeled per-layer time: %.3f ms; outlier gTasks: %d of %d\n",
		plan.Seconds*1e3, plan.Classification.Outliers(), plan.Partition.NumTasks())

	// Accuracy parity: the tuned execution must predict identically.
	refAcc := tr.Model.Accuracy(tr.GC, ds.Features, ds.Labels, ds.TestMask)
	gtAcc, err := tr.GTaskTestAccuracy(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntest accuracy — reference: %.3f, gTask execution: %.3f (delta %+.4f)\n",
		refAcc, gtAcc, gtAcc-refAcc)
}
