// RGCN on a heterogeneous graph: demonstrates the paper's running example
// end to end — the per-relation MLP workload, the gTask plan that batches
// sources within one edge type (uniq(src-id)=K & uniq(edge-type)=1), and
// the duplicated-data DFG transformation that shares MLP computation
// across edges (paper Figures 9, 10 and 18a).
package main

import (
	"fmt"
	"log"

	"wisegraph"
	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/pattern"
)

func main() {
	// A typed power-law graph: 8 relation types, heavy hubs.
	ds, err := wisegraph.LoadDataset("AR", wisegraph.DatasetOptions{Scale: 200, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("heterogeneous graph: %v\n", g)

	// 1. The joint search discovers the paper's RGCN plan.
	res := wisegraph.Optimize(g, wisegraph.RGCN, 64, g.NumTypes, wisegraph.A100())
	fmt.Printf("\nselected graph plan: %v\n", res.GraphPlan)
	fmt.Printf("selected op plan:    %v (dedup = shared MLP across duplicate (src,type) pairs)\n", res.OpPlan)

	// 2. Inspect the gTask-level data patterns that justified it.
	part := res.Partition
	pp := pattern.Analyze(part, []core.Attr{core.AttrSrcID, core.AttrEdgeType, core.AttrDstID})
	fmt.Printf("\ngTask patterns (%d tasks, median %d edges):\n", pp.NumTasks, pp.MedianEdges)
	fmt.Printf("  duplicated src-id in %.0f%% of tasks, edge-type in %.0f%%\n",
		pp.DupFraction[core.AttrSrcID]*100, pp.DupFraction[core.AttrEdgeType]*100)

	// 3. Compare modeled execution against edge-centric with naive kernels.
	sp := wisegraph.A100()
	sh := kernels.LayerShape{Kind: nn.RGCN, F: 64, Fp: 64, Types: g.NumTypes}
	naivePart := wisegraph.Partition(g, wisegraph.EdgeCentricPlan())
	naive := joint.LayerTime(sp, sh, g.NumVertices, joint.UniformSchedule(sp, naivePart, sh, kernels.Plan{}))
	tuned := joint.LayerTime(sp, sh, g.NumVertices, joint.UniformSchedule(sp, part, sh, res.OpPlan))
	fmt.Printf("\nmodeled layer time: edge-centric naive %.3f ms → tuned gTask %.3f ms (%.1fx)\n",
		naive*1e3, tuned*1e3, naive/tuned)

	// 4. Train the model and verify the tuned execution computes the same
	// predictions.
	tr, err := wisegraph.NewTrainer(ds, wisegraph.ModelConfig{
		Kind: wisegraph.RGCN, Hidden: 32, Layers: 2, Seed: 3,
	}, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	for ep := 0; ep < 10; ep++ {
		tr.Epoch()
	}
	// run the real fused gTask computation
	ctx := exec.NewCtx(device.New(sp))
	logits, err := kernels.RunModel(ctx, tr.GC, tr.Model, ds.Features, part, res.OpPlan)
	if err != nil {
		log.Fatal(err)
	}
	ref := tr.Model.Forward(tr.GC, ds.Features)
	var maxDiff float64
	for i := range logits.Data() {
		d := float64(logits.Data()[i] - ref.Data()[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |gTask − reference| over all logits after training: %.2e\n", maxDiff)
	fmt.Printf("gTask kernel launches for the forward pass: %d (fused; tensor-centric would need dozens)\n",
		ctx.Dev.Stats().Kernels)
}
