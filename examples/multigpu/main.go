// Multi-GPU training with adaptive operation placement: partitions a
// large-graph replica across four simulated devices and compares the
// static parallelization policies (DGL's data parallel, P3's hybrid)
// against WiseGraph's per-layer placement driven by the changing-data-
// volume pattern (paper §5.4, Figure 11, Table 2, Figure 20).
package main

import (
	"fmt"
	"log"

	"wisegraph"
	"wisegraph/internal/dist"
	"wisegraph/internal/nn"
)

func main() {
	ds, err := wisegraph.LoadDataset("PA", wisegraph.DatasetOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	c := wisegraph.NewCluster(4)
	gs := dist.Analyze(ds.Graph, c.N)
	fmt.Printf("graph %v partitioned over %d devices: %v\n", ds.Graph, c.N, gs)

	// A 3-layer GCN shaped like the paper's full-graph setting: wide
	// input features, narrow hidden layers.
	dims := []int{ds.Dim(), 32, 32, ds.Classes()}
	fmt.Printf("\nlayer dims: %v\n", dims)

	// Per-layer placement decisions WiseGraph makes.
	fmt.Println("\nWiseGraph per-layer placement (volume-driven):")
	for li := 0; li+1 < len(dims); li++ {
		p := dist.ChooseLayer(c, gs, wisegraph.GCN, dims[li], dims[li+1], true, true)
		fmt.Printf("  layer %d (%4d → %4d): %-7s  comm %.2f MB  (%.3f ms comm, %.3f ms compute)\n",
			li, dims[li], dims[li+1], p.Strategy, p.CommBytes/1e6, p.CommSecs*1e3, p.CompSecs*1e3)
	}

	// Iteration time under each policy.
	fmt.Println("\nper-iteration time by policy (simulated ms):")
	for _, pol := range []dist.Policy{dist.PolicyDGL, dist.PolicyROC, dist.PolicyDGCL, dist.PolicyP3, dist.PolicyWise} {
		t := dist.IterationTime(c, gs, wisegraph.GCN, dims, pol)
		fmt.Printf("  %-10s %8.3f\n", pol, t*1e3)
	}

	// The Figure 20 sweep: where static hybrids win and lose.
	fmt.Println("\nfirst-layer time vs hidden dimension (ms): DGL / P3 / WiseGraph")
	for _, hid := range []int{32, 128, 512, 1024} {
		d := []int{ds.Dim(), hid}
		fmt.Printf("  hidden %4d:  %7.3f / %7.3f / %7.3f\n", hid,
			dist.IterationTime(c, gs, wisegraph.GCN, d, dist.PolicyDGL)*1e3,
			dist.IterationTime(c, gs, wisegraph.GCN, d, dist.PolicyP3)*1e3,
			dist.IterationTime(c, gs, wisegraph.GCN, d, dist.PolicyWise)*1e3)
	}

	// Finally, run REAL distributed training: features sharded across the
	// four simulated devices, halo exchanges with exactly the modeled
	// volumes, gradients all-reduced.
	fmt.Println("\nreal distributed training (4 devices, GCN):")
	m, err := nn.NewModel(nn.Config{
		Kind: wisegraph.GCN, InDim: ds.Dim(), Hidden: 32, OutDim: ds.Classes(),
		Layers: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := dist.NewEngine(c, ds.Graph)
	tr, err := dist.NewTrainer(eng, m, ds.Features, ds.Labels, ds.TrainMask, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  per-layer placements chosen: %v\n", tr.Placements)
	for ep := 0; ep < 10; ep++ {
		loss, err := tr.Step()
		if err != nil {
			log.Fatal(err)
		}
		if ep%3 == 0 || ep == 9 {
			acc, err := tr.Accuracy(ds.TestMask)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  epoch %2d  loss %.4f  test acc %.3f  (comm so far %.1f MB)\n",
				ep, loss, acc, eng.CommBytes()/1e6)
		}
	}
}
