// Sampled-graph (mini-batch) training with one-shot plan tuning: the
// joint optimization runs once on a few sampled subgraphs, and the
// resulting plan is reused for every later mini-batch with only an O(E)
// partition per subgraph — cheap enough to overlap with GPU compute on
// CPU threads (paper §6.3 "working with sampled graph training",
// Figure 21).
package main

import (
	"fmt"
	"log"
	"time"

	"wisegraph"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/train"
)

func main() {
	ds, err := wisegraph.LoadDataset("PA", wisegraph.DatasetOptions{
		Seed: 11, Homophily: 0.85, FeatureNoise: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent graph: %v\n", ds.Graph)

	tr, err := wisegraph.NewSampledTrainer(ds, wisegraph.ModelConfig{
		Kind: wisegraph.SAGE, Hidden: 32, Layers: 2, Seed: 11,
	}, 0.01, []int{10, 10}, 128, 11)
	if err != nil {
		log.Fatal(err)
	}

	// One-shot tuning on a couple of sampled subgraphs.
	t0 := time.Now()
	plan := tr.TunePlans(wisegraph.A100(), 2)
	fmt.Printf("\ntuned once in %v: %v + %v\n",
		time.Since(t0).Round(time.Millisecond), plan.GraphPlan, plan.OpPlan)

	// Training loop: each iteration samples a fresh subgraph; the tuned
	// plan is reused by partitioning the new subgraph in O(E).
	fmt.Println("\ntraining 15 mini-batch iterations (plan reused each time):")
	var partitionTotal time.Duration
	for it := 0; it < 15; it++ {
		loss := tr.Iteration()
		// demonstrate the plan reuse the training pipeline performs
		sub := tr.NextBatch()
		p0 := time.Now()
		part := train.ReusePlan(plan, sub.Graph)
		partitionTotal += time.Since(p0)
		if it%5 == 0 {
			sp := wisegraph.A100()
			sh := kernels.LayerShape{Kind: wisegraph.SAGE, F: 32, Fp: 32, Types: 1}
			sched := joint.UniformSchedule(sp, part, sh, plan.OpPlan)
			fmt.Printf("  iter %2d  loss %.4f  subgraph %v → %d gTasks, modeled layer %.3f ms\n",
				it, loss, sub.Graph, part.NumTasks(),
				joint.LayerTime(sp, sh, sub.Graph.NumVertices, sched)*1e3)
		}
	}
	fmt.Printf("\ntotal re-partition time across 15 subgraphs: %v (overlappable on CPU threads)\n",
		partitionTotal.Round(time.Microsecond))
}
