module wisegraph

go 1.22
