package wisegraph

import (
	"fmt"
	"testing"

	"wisegraph/internal/bench"
	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
)

// benchCfg keeps the paper-experiment benchmarks fast enough for
// `go test -bench` while exercising the full pipeline.
func benchCfg() bench.Config { return bench.Config{Quick: true, Seed: 1, Epochs: 5} }

// runExp benchmarks one paper experiment end to end.
func runExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, err := bench.Find(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table and figure (DESIGN.md's experiment index).

func BenchmarkTable1Datasets(b *testing.B)     { runExp(b, "table1") }
func BenchmarkFig3aComputeMemory(b *testing.B) { runExp(b, "fig3a") }
func BenchmarkFig3bBreakdown(b *testing.B)     { runExp(b, "fig3b") }
func BenchmarkFig13SingleGPU(b *testing.B)     { runExp(b, "fig13") }
func BenchmarkTable2MultiGPU(b *testing.B)     { runExp(b, "table2") }
func BenchmarkFig14Accuracy(b *testing.B)      { runExp(b, "fig14") }
func BenchmarkFig14bCurve(b *testing.B)        { runExp(b, "fig14b") }
func BenchmarkFig15Partitions(b *testing.B)    { runExp(b, "fig15") }
func BenchmarkFig16SearchTrace(b *testing.B)   { runExp(b, "fig16") }
func BenchmarkFig17Dedup(b *testing.B)         { runExp(b, "fig17") }
func BenchmarkFig18Batching(b *testing.B)      { runExp(b, "fig18") }
func BenchmarkFig19Outliers(b *testing.B)      { runExp(b, "fig19") }
func BenchmarkFig20Placement(b *testing.B)     { runExp(b, "fig20") }
func BenchmarkFig21SampledReuse(b *testing.B)  { runExp(b, "fig21") }
func BenchmarkTable3Overhead(b *testing.B)     { runExp(b, "table3") }

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

func ablationSetup(b *testing.B) (*Dataset, kernels.LayerShape) {
	b.Helper()
	ds, err := LoadDataset("AR", DatasetOptions{Scale: 100, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	return ds, kernels.LayerShape{Kind: nn.RGCN, F: 64, Fp: 64, Types: ds.Graph.NumTypes}
}

// BenchmarkAblationBatchKernel compares edge-wise vs batched micro-kernel
// scheduling cost evaluation over the same partition.
func BenchmarkAblationBatchKernel(b *testing.B) {
	ds, sh := ablationSetup(b)
	part := Partition(ds.Graph, core.GraphPlan{Name: "src-32-type-1", Restrictions: []core.Restriction{
		{Attr: core.AttrSrcID, Kind: core.Exact, Limit: 32},
		{Attr: core.AttrEdgeType, Kind: core.Exact, Limit: 1},
	}})
	sp := device.A100()
	b.Run("edgewise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			joint.UniformSchedule(sp, part, sh, kernels.Plan{}).Makespan(sp.NumUnits)
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			joint.UniformSchedule(sp, part, sh, kernels.Plan{Batched: true}).Makespan(sp.NumUnits)
		}
	})
	b.Run("batched-dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			joint.UniformSchedule(sp, part, sh, kernels.Plan{Batched: true, Dedup: true}).Makespan(sp.NumUnits)
		}
	})
}

// BenchmarkAblationOutlier compares uniform vs differentiated scheduling.
func BenchmarkAblationOutlier(b *testing.B) {
	ds, sh := ablationSetup(b)
	part := Partition(ds.Graph, VertexCentricPlan())
	cls := joint.Classify(part)
	sp := device.A100()
	op := kernels.Plan{Batched: true}
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			joint.UniformSchedule(sp, part, sh, op).Makespan(sp.NumUnits)
		}
	})
	b.Run("differentiated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			joint.DifferentiatedSchedule(sp, part, sh, op, cls).Makespan(sp.NumUnits)
		}
	})
}

// BenchmarkAblationPruning measures the joint search with and without the
// cost-model pruning filter.
func BenchmarkAblationPruning(b *testing.B) {
	ds, _ := ablationSetup(b)
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			joint.Search(ds.Graph, nn.RGCN, 64, 64, ds.Graph.NumTypes,
				joint.Options{Spec: device.A100(), PruneFactor: 3})
		}
	})
}

// BenchmarkPartition measures the greedy O(E) partitioner itself.
func BenchmarkPartition(b *testing.B) {
	ds, _ := ablationSetup(b)
	plans := map[string]core.GraphPlan{
		"vertex-centric": core.VertexCentric(),
		"src32-type1": {Name: "s", Restrictions: []core.Restriction{
			{Attr: core.AttrSrcID, Kind: core.Exact, Limit: 32},
			{Attr: core.AttrEdgeType, Kind: core.Exact, Limit: 1},
		}},
		"dst32-degmin": {Name: "d", Restrictions: []core.Restriction{
			{Attr: core.AttrDstID, Kind: core.Exact, Limit: 32},
			{Attr: core.AttrDstDegree, Kind: core.Min},
		}},
	}
	for name, plan := range plans {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Partition(ds.Graph, plan)
			}
			b.ReportMetric(float64(ds.Graph.NumEdges()), "edges")
		})
	}
}

// BenchmarkTrainStep measures one full-graph training iteration per model.
func BenchmarkTrainStep(b *testing.B) {
	ds, err := LoadDataset("AR", DatasetOptions{Scale: 400, FeatureDim: 32, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for kind := nn.ModelKind(0); kind < nn.NumModels; kind++ {
		b.Run(kind.String(), func(b *testing.B) {
			tr, err := NewTrainer(ds, ModelConfig{Kind: kind, Hidden: 32, Layers: 2, Seed: 4}, 0.01)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Epoch()
			}
		})
	}
}

// BenchmarkGTaskForward measures the real fused gTask forward execution.
func BenchmarkGTaskForward(b *testing.B) {
	ds, err := LoadDataset("AR", DatasetOptions{Scale: 400, FeatureDim: 32, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewTrainer(ds, ModelConfig{Kind: GCN, Hidden: 32, Layers: 2, Seed: 5}, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	plan := tr.Tune(device.A100())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.GTaskTestAccuracy(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineForward compares the execution engines on the real
// forward numerics at the bandwidth-bound shape (F=64): ns/op, allocs/op,
// and the engine's modeled bytes-moved per forward. Sub-benchmark names
// carry the engine label so benchstat can diff blocked vs fused per model
// (scripts/check.sh runs that comparison as a regression smoke).
func BenchmarkEngineForward(b *testing.B) {
	ds, err := LoadDataset("AR", DatasetOptions{Scale: 400, FeatureDim: 64, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	gc := nn.NewGraphCtx(ds.Graph)
	part := Partition(ds.Graph, core.VertexCentric())
	for kind := nn.ModelKind(0); kind < nn.NumModels; kind++ {
		op := kernels.Plan{Batched: true}
		if kind == nn.RGCN {
			op.Dedup = true
		}
		m, err := nn.NewModel(ModelConfig{
			Kind: kind, InDim: ds.Dim(), Hidden: 64, OutDim: ds.Classes(),
			Layers: 2, NumTypes: ds.Graph.NumTypes, Seed: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, engine := range kernels.EngineNames() {
			eng, err := kernels.Select(engine)
			if err != nil {
				b.Fatal(err)
			}
			var bytes float64
			for _, l := range m.Layers() {
				sh := kernels.LayerShape{Kind: kind, F: l.InDim(), Fp: l.OutDim(), Types: ds.Graph.NumTypes}
				bytes += eng.LayerBytes(sh, part, op)
			}
			b.Run(fmt.Sprintf("model=%s/F=64/engine=%s", kind, engine), func(b *testing.B) {
				b.ReportAllocs()
				ctx := exec.NewCtx(device.New(device.A100()))
				ctx.Engine = engine
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := kernels.RunModel(ctx, gc, m, ds.Features, part, op); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(bytes, "bytes-moved/op")
			})
		}
	}
}
