// Command wisegraph-shard runs one shard of the serving tier as its own
// process: it reconstructs the dataset replica and checkpoint exactly
// like wisegraph-serve, listens for the router's TCP connections, and
// serves Expand/Compute RPCs over the internal/shard/wire protocol.
//
// Daemons are interchangeable: a node learns its shard id, owned vertex
// range, sampler seed, engine and tuned plan from the first Hello the
// router sends, and validates everything it can recompute locally (the
// placement boundaries, the model shape, a hash of the parameters) so a
// mismatched fleet fails at connect time instead of serving subtly
// different logits.
//
// Usage:
//
//	wisegraph-shard -dataset AR -checkpoint model.ckpt -addr 127.0.0.1:9101 &
//	wisegraph-shard -dataset AR -checkpoint model.ckpt -addr 127.0.0.1:9102 &
//	wisegraph-serve -dataset AR -checkpoint model.ckpt \
//	    -shard-addrs 127.0.0.1:9101,127.0.0.1:9102
//
// The dataset and checkpoint flags must match the router's — the
// handshake rejects anything else. On SIGTERM the daemon stops accepting,
// drains its worker pool, and reports the in-flight count (0 on a clean
// drain).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"wisegraph"
	"wisegraph/internal/nn"
	"wisegraph/internal/shard"
)

func main() {
	var (
		dsName      = flag.String("dataset", "AR", "dataset name (must match the router)")
		scale       = flag.Int("scale", 0, "dataset scale divisor override (must match the router)")
		seed        = flag.Uint64("seed", 1, "dataset seed (must match the router)")
		noise       = flag.Float64("noise", 0.8, "feature noise (must match the router)")
		checkpoint  = flag.String("checkpoint", "", "model checkpoint (must be the same file the router serves)")
		model       = flag.String("model", "SAGE", "model kind for v1 checkpoints or untrained serving")
		hidden      = flag.Int("hidden", 64, "hidden dim for v1 checkpoints or untrained serving")
		layers      = flag.Int("layers", 3, "layer count for v1 checkpoints or untrained serving")
		addr        = flag.String("addr", "127.0.0.1:0", "listen address (use :0 for an ephemeral port)")
		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address for /metrics and /healthz (empty disables)")
		workers     = flag.Int("workers", 2, "RPC worker pool size (this node's compute budget)")
		cacheBudget = flag.String("cache-budget", "0", "this node's hot-vertex cache budget, e.g. 64MiB (0 disables)")
		cacheShards = flag.Int("cache-shards", 0, "cache lock-stripe count (default 8)")
	)
	flag.Parse()

	ds, err := wisegraph.LoadDataset(*dsName, wisegraph.DatasetOptions{
		Scale: *scale, Seed: *seed, Homophily: 0.85, FeatureNoise: *noise,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: %v (scale 1/%d), %d classes, dim %d\n",
		*dsName, ds.Graph, ds.Scale, ds.Classes(), ds.Dim())

	m, err := loadModel(ds, *checkpoint, *model, *hidden, *layers, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model %v: %d-%d-%d x%d layers, %d params (sum %016x)\n",
		m.Cfg.Kind, m.Cfg.InDim, m.Cfg.Hidden, m.Cfg.OutDim, m.Cfg.Layers,
		m.NumParams(), shard.ParamSum(m))

	budget, err := parseBytes(*cacheBudget)
	if err != nil {
		fatal(fmt.Errorf("-cache-budget: %w", err))
	}
	sv := shard.NewServer(ds.Graph.BuildCSRByDst(), ds.Features, ds.Graph.NumTypes, m, shard.NodeConfig{
		Workers:     *workers,
		CacheBudget: budget,
		CacheShards: *cacheShards,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wisegraph-shard listening on %s\n", ln.Addr())

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("-metrics-addr: %w", err))
		}
		fmt.Printf("wisegraph-shard metrics on %s\n", mln.Addr())
		go http.Serve(mln, sv.MetricsHandler())
		defer mln.Close()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- sv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("signal %v: draining...\n", s)
	case err := <-errCh:
		if err != nil {
			fatal(err)
		}
		return
	}

	ln.Close()
	sv.Close()
	line := fmt.Sprintf("drained: in-flight=%d", sv.InFlight())
	if s := sv.Shard(); s != nil {
		cs := s.Cache().Snapshot()
		lo, hi := s.Bounds()
		line += fmt.Sprintf(" shard=%d range=[%d,%d) cache-hits=%d cache-misses=%d cache-bytes=%d",
			s.ID(), lo, hi, cs.Hits, cs.Misses, cs.Bytes)
		if h := sv.Ident(); h != nil {
			line += fmt.Sprintf(" replica=%d/%d", h.Replica, h.Replicas)
		}
	}
	fmt.Println(line)
}

// parseBytes parses a byte size with an optional binary suffix, exactly
// as wisegraph-serve spells it: "1048576", "64KiB"/"64kb", "512m", "2g".
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t, mult = strings.TrimSuffix(t, u.suffix), u.mult
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return v * mult, nil
}

// loadModel mirrors wisegraph-serve's checkpoint loading so both ends of
// the wire reconstruct bitwise-identical parameters from the same flags.
func loadModel(ds *wisegraph.Dataset, path, kindName string, hidden, layers int, seed uint64) (*nn.Model, error) {
	if path == "" {
		kind, err := wisegraph.ParseModel(kindName)
		if err != nil {
			return nil, err
		}
		fmt.Println("warning: no -checkpoint given; serving untrained weights")
		return nn.NewModel(nn.Config{
			Kind: kind, InDim: ds.Dim(), Hidden: hidden, OutDim: ds.Classes(),
			Layers: layers, NumTypes: ds.Graph.NumTypes, Seed: seed,
		})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if m, err := nn.LoadModelFromCheckpoint(f); err == nil {
		fmt.Printf("restored v2 checkpoint %s\n", path)
		return m, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	kind, err := wisegraph.ParseModel(kindName)
	if err != nil {
		return nil, err
	}
	m, err := nn.NewModel(nn.Config{
		Kind: kind, InDim: ds.Dim(), Hidden: hidden, OutDim: ds.Classes(),
		Layers: layers, NumTypes: ds.Graph.NumTypes, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	if err := m.LoadCheckpoint(f); err != nil {
		return nil, fmt.Errorf("loading %s (tried v2 and v1+flags): %w", path, err)
	}
	fmt.Printf("restored v1 checkpoint %s (architecture from flags)\n", path)
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
