// Command wggen generates synthetic graphs and dataset replicas, writing
// them as edge-list CSV (plus an optional labels file). Useful for
// inspecting the generators or feeding other tools.
//
// Usage:
//
//	wggen -dataset AR -out ar_edges.csv
//	wggen -kind powerlaw -v 10000 -e 100000 -types 8 -out g.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"wisegraph"
	"wisegraph/internal/graph/gen"
)

func main() {
	var (
		dsName = flag.String("dataset", "", "dataset replica to emit (AR, PR, RE, PA-S, FS-S, PA, FS)")
		kind   = flag.String("kind", "powerlaw", "generator: powerlaw | uniform | rmat | fanout")
		v      = flag.Int("v", 10000, "vertices (raw generator mode)")
		e      = flag.Int("e", 100000, "edges (raw generator mode)")
		types  = flag.Int("types", 1, "edge types")
		skew   = flag.Float64("skew", 0.9, "degree skew")
		scale  = flag.Int("scale", 0, "dataset scale divisor override")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output edge CSV (default stdout)")
		labels = flag.String("labels", "", "optional labels CSV output")
	)
	flag.Parse()

	var g *wisegraph.Graph
	var lab []int32
	if *dsName != "" {
		ds, err := wisegraph.LoadDataset(*dsName, wisegraph.DatasetOptions{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		g, lab = ds.Graph, ds.Labels
	} else {
		var k gen.Kind
		switch *kind {
		case "powerlaw":
			k = gen.PowerLaw
		case "uniform":
			k = gen.Uniform
		case "rmat":
			k = gen.RMAT
		case "fanout":
			k = gen.SampledFanout
		default:
			fatal(fmt.Errorf("unknown generator %q", *kind))
		}
		res := gen.Generate(gen.Config{
			NumVertices: *v, NumEdges: *e, Kind: k, Skew: *skew,
			NumTypes: *types, Seed: *seed,
		})
		g, lab = res.Graph, res.Block
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	fmt.Fprintf(w, "# vertices=%d edges=%d types=%d\n", g.NumVertices, g.NumEdges(), g.NumTypes)
	fmt.Fprintln(w, "src,dst,type")
	for i := 0; i < g.NumEdges(); i++ {
		fmt.Fprintf(w, "%d,%d,%d\n", g.Src[i], g.Dst[i], g.EdgeType(i))
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}

	if *labels != "" && lab != nil {
		f, err := os.Create(*labels)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		lw := bufio.NewWriter(f)
		fmt.Fprintln(lw, "vertex,label")
		for vi, l := range lab {
			fmt.Fprintf(lw, "%d,%d\n", vi, l)
		}
		if err := lw.Flush(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
