// Command wisegraph-train trains a GNN on a synthetic dataset replica
// with optional joint-optimization reporting.
//
// Usage:
//
//	wisegraph-train -dataset AR -model SAGE -epochs 30
//	wisegraph-train -dataset AR -model RGCN -hidden 64 -tune
//	wisegraph-train -dataset PA -model SAGE -sampled -fanout 10,10 -batch 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wisegraph"
	"wisegraph/internal/fault"
	"wisegraph/internal/obs"
	"wisegraph/internal/train"
)

func main() {
	var (
		dsName    = flag.String("dataset", "AR", "dataset name (see wgbench -list or README)")
		model     = flag.String("model", "SAGE", "model: GCN, SAGE, SAGE-LSTM, GAT, RGCN")
		hidden    = flag.Int("hidden", 64, "hidden dimension")
		layers    = flag.Int("layers", 3, "model layers")
		epochs    = flag.Int("epochs", 30, "training epochs")
		lr        = flag.Float64("lr", 0.01, "learning rate")
		scale     = flag.Int("scale", 0, "dataset scale divisor override")
		seed      = flag.Uint64("seed", 1, "random seed")
		tune      = flag.Bool("tune", false, "run joint optimization and report the chosen plan")
		sampled   = flag.Bool("sampled", false, "use sampled-graph (mini-batch) training")
		fanout    = flag.String("fanout", "10,10", "sampling fan-outs (comma-separated)")
		batch     = flag.Int("batch", 256, "mini-batch seed count")
		noise     = flag.Float64("noise", 0.8, "feature noise (lower = easier task)")
		savePlan  = flag.String("save-plan", "", "write the tuned execution plan as JSON (implies -tune)")
		saveCkpt  = flag.String("save-checkpoint", "", "write a model checkpoint after training (v2: embeds the model config, consumable by wisegraph-serve)")
		loadCkpt  = flag.String("load-checkpoint", "", "restore a model checkpoint before training")
		saveModel = flag.String("save-model", "", "alias for -save-checkpoint")
		loadModel = flag.String("load-model", "", "alias for -load-checkpoint")
		traceOut  = flag.String("trace", "", "write phase spans as Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
		faultSpec = flag.String("fault-spec", "", "deterministic fault-injection schedule, e.g. seed=42;train.step:error=0.05;nn.checkpoint:error=0.01")
		engine    = flag.String("engine", "blocked", "execution engine: blocked|fused|device (fused streams the SpMM without per-edge intermediates; all are bitwise-identical)")
		autoCkpt  = flag.String("auto-checkpoint", "", "train-state file for periodic auto-checkpoint and fault recovery (full-graph mode)")
		ckptEvery = flag.Int("checkpoint-every", 5, "epochs between auto-checkpoints")
		resume    = flag.Bool("resume", false, "resume from -auto-checkpoint when the file exists")
	)
	flag.Parse()
	if *faultSpec != "" {
		sched, err := fault.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		fault.Set(sched)
		fmt.Printf("fault injection: %s\n", sched)
	}
	if *traceOut != "" {
		obs.Enable(obs.DefaultRingSize)
		defer writeTrace(*traceOut)
	}
	if *savePlan != "" {
		*tune = true
	}
	if *saveCkpt == "" {
		*saveCkpt = *saveModel
	}
	if *loadCkpt == "" {
		*loadCkpt = *loadModel
	}

	kind, err := wisegraph.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	ds, err := wisegraph.LoadDataset(*dsName, wisegraph.DatasetOptions{
		Scale: *scale, Seed: *seed, Homophily: 0.85, FeatureNoise: *noise,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: %v (scale 1/%d), %d classes, dim %d\n",
		*dsName, ds.Graph, ds.Scale, ds.Classes(), ds.Dim())

	cfg := wisegraph.ModelConfig{Kind: kind, Hidden: *hidden, Layers: *layers, Seed: *seed}

	if *sampled {
		fans, err := parseFanouts(*fanout)
		if err != nil {
			fatal(err)
		}
		tr, err := wisegraph.NewSampledTrainer(ds, cfg, *lr, fans, *batch, *seed)
		if err != nil {
			fatal(err)
		}
		if err := tr.UseEngine(*engine); err != nil {
			fatal(err)
		}
		if *loadCkpt != "" {
			restoreCheckpoint(tr.Model, *loadCkpt)
		}
		for ep := 0; ep < *epochs; ep++ {
			loss := tr.Iteration()
			fmt.Printf("iter %3d  loss %.4f\n", ep, loss)
		}
		if *tune {
			res := tr.TunePlans(wisegraph.A100(), 2)
			fmt.Printf("tuned plan: %v + %v (reused across subgraphs)\n", res.GraphPlan, res.OpPlan)
		}
		if *saveCkpt != "" {
			writeCheckpoint(tr.Model, *saveCkpt)
		}
		return
	}

	tr, err := wisegraph.NewTrainer(ds, cfg, *lr)
	if err != nil {
		fatal(err)
	}
	if err := tr.UseEngine(*engine); err != nil {
		fatal(err)
	}
	if *loadCkpt != "" {
		restoreCheckpoint(tr.Model, *loadCkpt)
	}
	if *tune {
		res := tr.Tune(wisegraph.A100())
		fmt.Printf("joint optimization: %d plans tried, %d pruned, %d cache hits\n",
			res.PlansTried, res.PlansPruned, res.CacheHits)
		fmt.Printf("selected: %v + %v, differentiated=%v, modeled layer time %.3f ms\n",
			res.GraphPlan, res.OpPlan, res.Differentiated, res.Seconds*1e3)
		fmt.Printf("outliers: %d of %d tasks\n", res.Classification.Outliers(), res.Partition.NumTasks())
		if *savePlan != "" {
			data, err := res.MarshalPlan()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*savePlan, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote plan to %s\n", *savePlan)
		}
	}
	if *autoCkpt != "" {
		if !*resume {
			os.Remove(*autoCkpt)
		}
		rep, err := tr.RunResilient(*epochs, *ckptEvery, &train.FileStore{Path: *autoCkpt})
		if err != nil {
			fatal(err)
		}
		if rep.ResumedFrom >= 0 {
			fmt.Printf("resumed from epoch %d (%s)\n", rep.ResumedFrom, *autoCkpt)
		}
		for _, st := range rep.Stats {
			fmt.Printf("epoch %3d  loss %.4f  val %.3f  test %.3f  (%v)\n",
				st.Epoch, st.Loss, st.ValAcc, st.TestAcc, st.Duration.Round(1e6))
		}
		if rep.Recoveries > 0 || rep.SaveFailures > 0 {
			fmt.Printf("resilience: %d recoveries, %d checkpoint-save failures\n",
				rep.Recoveries, rep.SaveFailures)
		}
	} else {
		for _, st := range tr.Run(*epochs) {
			fmt.Printf("epoch %3d  loss %.4f  val %.3f  test %.3f  (%v)\n",
				st.Epoch, st.Loss, st.ValAcc, st.TestAcc, st.Duration.Round(1e6))
		}
	}
	if m, err := tr.Metrics(ds.TestMask); err == nil {
		fmt.Printf("test metrics: %v\n", m)
	}
	if *saveCkpt != "" {
		writeCheckpoint(tr.Model, *saveCkpt)
	}
	if *tune {
		res := tr.Tune(wisegraph.A100())
		acc, err := tr.GTaskTestAccuracy(res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gTask-execution test accuracy: %.3f (parity check)\n", acc)
	}
}

// writeCheckpoint saves a v2 checkpoint (config embedded, so
// wisegraph-serve can reconstruct the model from the file alone).
func writeCheckpoint(m *wisegraph.Model, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := m.SaveCheckpoint(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote checkpoint %s\n", path)
}

// writeTrace dumps the span ring to path as Chrome trace-event JSON.
func writeTrace(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := obs.WriteChromeTrace(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote trace %s (%d spans)\n", path, len(obs.Spans()))
}

func restoreCheckpoint(m *wisegraph.Model, path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	if err := m.LoadCheckpoint(f); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Printf("restored checkpoint %s\n", path)
}

func parseFanouts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad fanout %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
