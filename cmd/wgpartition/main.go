// Command wgpartition explores graph partition plans: it runs the joint
// search for a model, prints the per-plan statistics, and optionally
// dumps per-edge task assignments as CSV for scatter plots (the paper's
// Figure 15 visualizations).
//
// Usage:
//
//	wgpartition -dataset AR -model RGCN
//	wgpartition -dataset AR -model GAT -csv gat_tasks.csv
//	wgpartition -dataset AR -plan vertex-centric
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wisegraph"
	"wisegraph/internal/core"
	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/pattern"
)

func main() {
	var (
		dsName  = flag.String("dataset", "AR", "dataset name (ignored when -in is set)")
		inPath  = flag.String("in", "", "load a graph from an edge-list CSV instead of a dataset replica")
		model   = flag.String("model", "", "model to search a plan for (empty = use -plan)")
		planStr = flag.String("plan", "vertex-centric", "fixed plan: vertex-centric | edge-centric | whole-graph")
		hidden  = flag.Int("hidden", 64, "hidden dimension for the search")
		scale   = flag.Int("scale", 0, "dataset scale divisor override")
		seed    = flag.Uint64("seed", 1, "random seed")
		csvPath = flag.String("csv", "", "write per-edge (src,dst,type,task) CSV here")
		ascii   = flag.Int("ascii", 0, "render an N×N ASCII adjacency scatter colored by task (e.g. 48)")
	)
	flag.Parse()

	var g *wisegraph.Graph
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		g, err = graph.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: %v\n", *inPath, g)
	} else {
		ds, err := wisegraph.LoadDataset(*dsName, wisegraph.DatasetOptions{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		g = ds.Graph
		fmt.Printf("dataset %s: %v\n", *dsName, g)
	}

	var plan wisegraph.GraphPlan
	if *model != "" {
		kind, err := wisegraph.ParseModel(*model)
		if err != nil {
			fatal(err)
		}
		res := wisegraph.Optimize(g, kind, *hidden, g.NumTypes, wisegraph.A100())
		plan = res.GraphPlan
		fmt.Printf("searched plan for %s: %v with %v (modeled layer time %.3f ms)\n",
			kind, res.GraphPlan, res.OpPlan, res.Seconds*1e3)
	} else {
		switch *planStr {
		case "vertex-centric":
			plan = wisegraph.VertexCentricPlan()
		case "edge-centric":
			plan = wisegraph.EdgeCentricPlan()
		case "whole-graph":
			plan = core.WholeGraph()
		default:
			fatal(fmt.Errorf("unknown plan %q", *planStr))
		}
	}

	part := wisegraph.Partition(g, plan)
	pp := pattern.Analyze(part, []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType})
	fmt.Printf("plan %v\n", plan)
	fmt.Printf("tasks: %d  edges: %d  median task: %d edges  min/max: %d/%d\n",
		pp.NumTasks, pp.TotalEdges, pp.MedianEdges, pp.MinEdges, pp.MaxEdges)
	for _, a := range []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType} {
		fmt.Printf("  uniq(%s): median %d, duplicated in %.0f%% of tasks\n",
			a, pp.MedianUniq[a], pp.DupFraction[a]*100)
	}
	cls := joint.Classify(part)
	fmt.Printf("outliers: %d underfill, %d overfill, %d frequent-value (of %d tasks)\n",
		cls.Counts[joint.Underfill], cls.Counts[joint.Overfill], cls.Counts[joint.Frequent], part.NumTasks())

	if *ascii > 0 {
		printASCII(g, part.TaskOfEdge(), *ascii)
	}

	if *csvPath != "" {
		taskOf := part.TaskOfEdge()
		var b strings.Builder
		b.WriteString("src,dst,type,task\n")
		for e := 0; e < g.NumEdges(); e++ {
			fmt.Fprintf(&b, "%d,%d,%d,%d\n", g.Src[e], g.Dst[e], g.EdgeType(e), taskOf[e])
		}
		if err := os.WriteFile(*csvPath, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d edges)\n", *csvPath, g.NumEdges())
	}
}

// printASCII renders the paper's Figure 15 scatter in the terminal: the
// adjacency matrix of the first n×n vertex window, each cell showing the
// gTask of one of its edges (letters cycle through task ids).
func printASCII(g *wisegraph.Graph, taskOf []int32, n int) {
	const glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	grid := make([][]byte, n)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", n))
	}
	for e := 0; e < g.NumEdges(); e++ {
		s, d := int(g.Src[e]), int(g.Dst[e])
		if s < n && d < n {
			grid[d][s] = glyphs[int(taskOf[e])%len(glyphs)]
		}
	}
	fmt.Printf("\nadjacency window %d×%d (rows = destination, cols = source, letter = gTask):\n", n, n)
	for _, row := range grid {
		fmt.Println(string(row))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
