// Command wisegraph-serve answers online node-classification queries over
// HTTP: it reconstructs the dataset replica, loads a trained checkpoint
// (format v2 checkpoints carry their own model config), tunes the joint
// execution plan once, and serves /predict with dynamic micro-batching,
// admission control and serving metrics.
//
// Usage:
//
//	wisegraph-train -dataset AR -epochs 30 -save-checkpoint model.ckpt
//	wisegraph-serve -dataset AR -checkpoint model.ckpt -addr :8080
//	curl -s localhost:8080/predict -d '{"nodes":[0,1,2]}'
//	curl -s localhost:8080/statsz
//
// The dataset flags must match the ones used at training time so vertex
// ids and features line up with the checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wisegraph"
	"wisegraph/internal/fault"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/serve"
)

func main() {
	var (
		dsName      = flag.String("dataset", "AR", "dataset name (must match training)")
		scale       = flag.Int("scale", 0, "dataset scale divisor override (must match training)")
		seed        = flag.Uint64("seed", 1, "dataset seed (must match training)")
		noise       = flag.Float64("noise", 0.8, "feature noise (must match training)")
		checkpoint  = flag.String("checkpoint", "", "model checkpoint to serve (v2 embeds the config; v1 needs -model/-hidden/-layers)")
		model       = flag.String("model", "SAGE", "model kind for v1 checkpoints or untrained serving")
		hidden      = flag.Int("hidden", 64, "hidden dim for v1 checkpoints or untrained serving")
		layers      = flag.Int("layers", 3, "layer count for v1 checkpoints or untrained serving")
		planPath    = flag.String("plan", "", "pre-tuned execution plan JSON (default: one-shot tune at startup)")
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers     = flag.Int("workers", 2, "forward-pass workers")
		batchCap    = flag.Int("batch-cap", 16, "max requests per micro-batch")
		batchDelay  = flag.Duration("batch-delay", 2*time.Millisecond, "micro-batch fill deadline")
		queueDepth  = flag.Int("queue-depth", 0, "admission queue depth (default 4x batch cap)")
		deadline    = flag.Duration("deadline", 2*time.Second, "default per-request deadline")
		fanout      = flag.String("fanout", "", "sampling fan-outs, comma-separated (default 10 per layer)")
		drainWait   = flag.Duration("drain-timeout", 15*time.Second, "graceful drain budget on shutdown")
		loadGen     = flag.Int("loadgen", 0, "skip HTTP: drive the engine in-process with N closed-loop clients, report, exit")
		loadDur     = flag.Duration("loadgen-duration", 5*time.Second, "in-process load duration")
		loadNodes   = flag.Int("loadgen-nodes", 1, "node ids per in-process load request")
		loadZipf    = flag.Float64("loadgen-zipf", 0, "node popularity skew for in-process load (0 = uniform)")
		traceRing   = flag.Int("trace-ring", obs.DefaultRingSize, "span ring-buffer capacity for /debug/trace (0 disables tracing)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		faultSpec   = flag.String("fault-spec", "", "deterministic fault-injection schedule, e.g. seed=42;serve.batch:error=0.05,latency=0.1,delay=2ms")
		batchTmo    = flag.Duration("batch-timeout", 500*time.Millisecond, "per-micro-batch execution budget (governs injected stragglers)")
		engineName  = flag.String("engine", "blocked", "execution engine: blocked|fused|device (bitwise-identical; fused streams the SpMM)")
		cacheBudget = flag.String("cache-budget", "0", "hot-vertex embedding cache budget, e.g. 64MiB (0 disables; pure performance knob — cached logits are bitwise-identical)")
		cacheShards = flag.Int("cache-shards", 0, "cache lock-stripe count (default 8)")
		cacheWarm   = flag.Int("cache-warm", 0, "pre-admit the top-K highest-in-degree vertices per layer at startup (0 disables)")
		shards      = flag.Int("shards", 1, "serve through N in-process shards behind a fan-out router (>1 enables the sharded tier; cache budget becomes per-shard)")
		placement   = flag.String("placement", "", "shard boundary policy: vertex|edge|cost (default edge)")
		shardTmo    = flag.Duration("shard-timeout", 250*time.Millisecond, "per-shard-RPC deadline (modeled stragglers at/past it are retried)")
		shardAddrs  = flag.String("shard-addrs", "", "comma-separated wisegraph-shard daemon addresses: serve through remote TCP shards, one per address (overrides -shards; daemons must be started with the same dataset/checkpoint flags)")
		replicas    = flag.Int("replicas", 1, "replicas per shard span: reads fail over and hedge across them (with -shard-addrs, the list groups into R-way replica sets, all replicas of span 0 first)")
	)
	flag.Parse()
	if *faultSpec != "" {
		sched, err := fault.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		fault.Set(sched)
		fmt.Printf("fault injection: %s\n", sched)
	}

	if *traceRing > 0 {
		obs.Enable(*traceRing)
	}

	ds, err := wisegraph.LoadDataset(*dsName, wisegraph.DatasetOptions{
		Scale: *scale, Seed: *seed, Homophily: 0.85, FeatureNoise: *noise,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: %v (scale 1/%d), %d classes, dim %d\n",
		*dsName, ds.Graph, ds.Scale, ds.Classes(), ds.Dim())

	m, err := loadModel(ds, *checkpoint, *model, *hidden, *layers, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model %v: %d-%d-%d x%d layers, %d params\n",
		m.Cfg.Kind, m.Cfg.InDim, m.Cfg.Hidden, m.Cfg.OutDim, m.Cfg.Layers, m.NumParams())

	budget, err := parseBytes(*cacheBudget)
	if err != nil {
		fatal(fmt.Errorf("-cache-budget: %w", err))
	}
	opts := serve.Options{
		Workers:        *workers,
		BatchCap:       *batchCap,
		BatchDelay:     *batchDelay,
		QueueDepth:     *queueDepth,
		Deadline:       *deadline,
		BatchTimeout:   *batchTmo,
		Engine:         *engineName,
		Seed:           *seed,
		CacheBudget:    budget,
		CacheShards:    *cacheShards,
		CacheWarm:      *cacheWarm,
		Shards:         *shards,
		Replicas:       *replicas,
		ShardPlacement: *placement,
		ShardTimeout:   *shardTmo,
	}
	if *shardAddrs != "" {
		for _, a := range strings.Split(*shardAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opts.ShardAddrs = append(opts.ShardAddrs, a)
			}
		}
	}
	if *fanout != "" {
		opts.Fanouts, err = parseFanouts(*fanout)
		if err != nil {
			fatal(err)
		}
	}
	if *planPath != "" {
		data, err := os.ReadFile(*planPath)
		if err != nil {
			fatal(err)
		}
		kind, gp, op, diff, err := joint.UnmarshalPlan(data)
		if err != nil {
			fatal(err)
		}
		if kind != m.Cfg.Kind {
			fatal(fmt.Errorf("plan %s is for %v, model is %v", *planPath, kind, m.Cfg.Kind))
		}
		opts.Plan = &joint.Result{Kind: kind, GraphPlan: gp, OpPlan: op, Differentiated: diff}
		fmt.Printf("loaded plan %s: %v + %v\n", *planPath, gp, op)
	}

	engine, err := serve.NewEngine(ds, m, opts)
	if err != nil {
		fatal(err)
	}
	if budget > 0 {
		scope := ""
		if *shards > 1 {
			scope = " per shard"
		}
		fmt.Printf("hot-vertex cache: budget %s%s, %d layers cached per vertex\n",
			*cacheBudget, scope, m.Cfg.Layers+1)
	}
	if fl := engine.Fleet(); fl != nil {
		fmt.Printf("sharded tier: %d shards x %d replicas (%s placement), bounds %v, rpc timeout %v\n",
			fl.Size(), fl.Replicas(), fl.Placement(), fl.Bounds(), *shardTmo)
	}
	if *cacheWarm > 0 {
		st := engine.Stats()
		fmt.Printf("cache warm-up: top %d vertices pre-admitted (%d entries, %d bytes resident)\n",
			*cacheWarm, st.CacheEntries, st.CacheBytesResident)
	}
	if *planPath == "" {
		fmt.Printf("tuned plan: %v + %v (frozen, reused across requests)\n",
			engine.Plan().GraphPlan, engine.Plan().OpPlan)
	}

	if *loadGen > 0 {
		// Engine-level load: measures micro-batching capacity without the
		// per-request HTTP cost (which dominates on small hosts).
		rep := serve.RunClosedLoop(engine, serve.LoadOptions{
			Clients: *loadGen, NodesPerReq: *loadNodes, Duration: *loadDur,
			Seed: *seed, Zipf: *loadZipf,
		})
		fmt.Println(rep)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := engine.Shutdown(ctx); err != nil {
			fatal(err)
		}
		st := engine.Stats()
		fmt.Printf("drained: in-flight=%d served=%d shed=%d batches=%d avg-batch=%.2f p50=%.2fms p99=%.2fms flops/req=%.0f%s\n",
			engine.InFlight(), st.Completed, st.Shed, st.Batches, st.AvgBatchSize,
			st.LatencyP50Ms, st.LatencyP99Ms, st.FLOPsPerRequest, cacheSummary(st)+shardSummary(st))
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	var handlerOpts []serve.HandlerOption
	if *pprofFlag {
		handlerOpts = append(handlerOpts, serve.WithPprof())
	}
	srv := &http.Server{Handler: serve.NewHandler(engine, handlerOpts...)}
	fmt.Printf("wisegraph-serve listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("signal %v: draining...\n", s)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := engine.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "engine drain: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "http drain: %v\n", err)
	}
	st := engine.Stats()
	fmt.Printf("drained: in-flight=%d served=%d shed=%d batches=%d avg-batch=%.2f p50=%.2fms p99=%.2fms flops/req=%.0f%s\n",
		engine.InFlight(), st.Completed, st.Shed, st.Batches, st.AvgBatchSize,
		st.LatencyP50Ms, st.LatencyP99Ms, st.FLOPsPerRequest, cacheSummary(st)+shardSummary(st))
}

// cacheSummary renders the cache tail of the drain line ("" when the
// cache is disabled, so existing log scrapes keep matching).
func cacheSummary(st serve.Snapshot) string {
	if !st.CacheEnabled {
		return ""
	}
	return fmt.Sprintf(" cache-hit-rate=%.1f%% cache-bytes=%d cache-entries=%d",
		100*st.CacheHitRate, st.CacheBytesResident, st.CacheEntries)
}

// shardSummary renders the sharded-tier tail of the drain line ("" in
// single-node mode, so existing log scrapes keep matching).
func shardSummary(st serve.Snapshot) string {
	if st.Shards == 0 {
		return ""
	}
	return fmt.Sprintf(" shards=%d shard-in-flight=%d hedges=%d retries=%d timeouts=%d shard-failures=%d",
		st.Shards, st.ShardInFlight, st.ShardHedges, st.ShardRetries, st.ShardTimeouts, st.ShardFailures)
}

// parseBytes parses a byte size with an optional binary suffix:
// "1048576", "64KiB"/"64kb", "512MiB"/"512m", "2GiB"/"2g".
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t, mult = strings.TrimSuffix(t, u.suffix), u.mult
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return v * mult, nil
}

// loadModel builds the model to serve: from a v2 checkpoint alone, from a
// v1 checkpoint plus architecture flags, or (no checkpoint) freshly
// initialized weights — useful for smoke tests and load rigs.
func loadModel(ds *wisegraph.Dataset, path, kindName string, hidden, layers int, seed uint64) (*nn.Model, error) {
	if path == "" {
		kind, err := wisegraph.ParseModel(kindName)
		if err != nil {
			return nil, err
		}
		fmt.Println("warning: no -checkpoint given; serving untrained weights")
		return nn.NewModel(nn.Config{
			Kind: kind, InDim: ds.Dim(), Hidden: hidden, OutDim: ds.Classes(),
			Layers: layers, NumTypes: ds.Graph.NumTypes, Seed: seed,
		})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if m, err := nn.LoadModelFromCheckpoint(f); err == nil {
		fmt.Printf("restored v2 checkpoint %s\n", path)
		return m, nil
	}
	// v1 fallback: architecture from flags.
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	kind, err := wisegraph.ParseModel(kindName)
	if err != nil {
		return nil, err
	}
	m, err := nn.NewModel(nn.Config{
		Kind: kind, InDim: ds.Dim(), Hidden: hidden, OutDim: ds.Classes(),
		Layers: layers, NumTypes: ds.Graph.NumTypes, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	if err := m.LoadCheckpoint(f); err != nil {
		return nil, fmt.Errorf("loading %s (tried v2 and v1+flags): %w", path, err)
	}
	fmt.Printf("restored v1 checkpoint %s (architecture from flags)\n", path)
	return m, nil
}

func parseFanouts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad fanout %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
