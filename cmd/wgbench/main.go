// Command wgbench regenerates the paper's evaluation tables and figures
// on the simulated substrate.
//
// Usage:
//
//	wgbench -list                       # enumerate experiments
//	wgbench -exp fig13                  # run one experiment
//	wgbench -exp all                    # run everything
//	wgbench -exp fig18 -csv out/        # also write CSV files
//	wgbench -exp fig13 -scale 100       # override dataset scale divisor
//
// Results print as aligned tables; the note lines state the paper claim
// each experiment reproduces. EXPERIMENTS.md records paper-vs-measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wisegraph/internal/bench"
	"wisegraph/internal/kernels"
	"wisegraph/internal/parallel"
)

// benchResult is the BENCH_<id>.json schema: the table plus the run
// configuration that produced it, so result trajectories are attributable
// (in particular to the execution engine).
type benchResult struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Engine     string     `json:"engine"`
	Scale      int        `json:"scale,omitempty"`
	Hidden     int        `json:"hidden,omitempty"`
	Layers     int        `json:"layers,omitempty"`
	Seed       uint64     `json:"seed"`
	Quick      bool       `json:"quick,omitempty"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	DurationMS int64      `json:"duration_ms"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.Int("scale", 0, "dataset scale divisor override (0 = default)")
		hidden  = flag.Int("hidden", 0, "hidden dimension (0 = 64)")
		layers  = flag.Int("layers", 0, "model layers (0 = 3)")
		epochs  = flag.Int("epochs", 0, "epochs for accuracy experiments (0 = 40)")
		seed    = flag.Uint64("seed", 1, "random seed")
		csvDir  = flag.String("csv", "", "directory to write CSV results into")
		jsonDir = flag.String("json", "", "directory to write BENCH_<id>.json results into")
		quick   = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		workers = flag.Int("workers", 0, "CPU worker cap for parallel phases (0 = GOMAXPROCS)")
		engine  = flag.String("engine", "", "execution engine for experiments that run real numerics: blocked|fused|device (default blocked)")
	)
	flag.Parse()

	if _, err := kernels.Select(*engine); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *workers > 0 {
		parallel.SetMaxWorkers(*workers)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := bench.Config{
		Scale: *scale, Hidden: *hidden, Layers: *layers,
		Epochs: *epochs, Seed: *seed, Quick: *quick, Engine: *engine,
	}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Experiments()
	} else {
		e, err := bench.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		t.Fprint(os.Stdout)
		fmt.Printf("(%s ran in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res := benchResult{
				ID: t.ID, Title: t.Title, Engine: cfg.EngineName(),
				Scale: cfg.Scale, Hidden: cfg.Hidden, Layers: cfg.Layers,
				Seed: cfg.Seed, Quick: cfg.Quick,
				Header: t.Header, Rows: t.Rows, Notes: t.Notes,
				DurationMS: elapsed.Milliseconds(),
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+e.ID+".json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
