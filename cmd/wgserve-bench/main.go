// Command wgserve-bench drives a running wisegraph-serve instance with
// closed-loop load and reports the throughput–latency outcome: each
// virtual client issues the next /predict as soon as the previous one
// answers, so offered load scales with -clients until the server's
// admission queue starts shedding. After the run it scrapes /statsz and
// folds the server-side view — execution engine, hot-vertex cache hit
// rate and residency, FLOPs per request — into the summary, and -json
// stamps the whole result to a file for regression tracking.
//
// Usage:
//
//	wisegraph-serve -dataset AR -checkpoint model.ckpt -addr :8080 &
//	wgserve-bench -url http://127.0.0.1:8080 -clients 32 -duration 10s
//	wgserve-bench -url http://127.0.0.1:8080 -zipf 1.2 -json out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"wisegraph/internal/serve"
	"wisegraph/internal/shard"
)

// benchResult is the -json document: the client-side load report plus
// the server-side snapshot taken right after the run. Engine and cache
// fields ride along so a tracked regression can be attributed to the
// execution engine or the cache configuration that produced it.
type benchResult struct {
	URL         string        `json:"url"`
	Clients     int           `json:"clients"`
	NodesPerReq int           `json:"nodesPerReq"`
	Duration    time.Duration `json:"durationNs"`
	Zipf        float64       `json:"zipf"`
	Seed        uint64        `json:"seed"`

	Completed  uint64  `json:"completed"`
	Shed       uint64  `json:"shed"`
	Errors     uint64  `json:"errors"`
	Throughput float64 `json:"qps"`
	P50Ms      float64 `json:"p50Ms"`
	P95Ms      float64 `json:"p95Ms"`
	P99Ms      float64 `json:"p99Ms"`

	// Sharded-tier view (all omitted against a single-node server): shard
	// count, each shard's router-side RPC QPS and latency quantiles, and
	// the resilience counters (hedged duplicates, retried RPC faults,
	// per-shard timeouts, exhausted-ladder failures) plus the engine's
	// degraded half-batch retries the failures fall back to.
	Shards          int           `json:"shards,omitempty"`
	PerShard        []shard.Stats `json:"perShard,omitempty"`
	ShardHedges     uint64        `json:"shardHedges,omitempty"`
	ShardRetries    uint64        `json:"shardRetries,omitempty"`
	ShardTimeouts   uint64        `json:"shardTimeouts,omitempty"`
	ShardFailures   uint64        `json:"shardFailures,omitempty"`
	DegradedRetries uint64        `json:"degradedRetries,omitempty"`

	Server *serve.Snapshot `json:"server,omitempty"`
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "server base URL")
		clients  = flag.Int("clients", 16, "closed-loop clients")
		nodes    = flag.Int("nodes", 1, "node ids per request")
		maxNode  = flag.Int("max-node", 0, "exclusive node-id bound (default: vertices from /healthz)")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		seed     = flag.Uint64("seed", 1, "client RNG seed")
		zipf     = flag.Float64("zipf", 0, "node popularity skew: P(node r) ∝ 1/(r+1)^zipf (0 = uniform)")
		jsonOut  = flag.String("json", "", "write the full result (load report + server snapshot) as JSON to this file")
	)
	flag.Parse()

	if *maxNode <= 0 {
		h, err := health(*url)
		if err != nil {
			fatal(fmt.Errorf("fetching /healthz (pass -max-node to skip): %w", err))
		}
		if h.Status != "ok" {
			fatal(fmt.Errorf("server status %q", h.Status))
		}
		*maxNode = h.Vertices
		fmt.Printf("server: model=%s vertices=%d classes=%d\n", h.Model, h.Vertices, h.Classes)
	}

	rep := serve.RunClosedLoopHTTP(*url, *maxNode, serve.LoadOptions{
		Clients: *clients, NodesPerReq: *nodes, Duration: *duration,
		Seed: *seed, Zipf: *zipf,
	})
	fmt.Println(rep)

	// Server-side view: engine, cache behavior and FLOPs accounting for
	// the load just applied. Best-effort — an unreachable /statsz (server
	// already gone) degrades to the client-side report alone.
	snap, err := statsz(*url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: /statsz scrape failed: %v\n", err)
	} else {
		line := fmt.Sprintf("server: engine=%s flops/req=%.0f", snap.Engine, snap.FLOPsPerRequest)
		if snap.CacheEnabled {
			line += fmt.Sprintf(" cache-hit-rate=%.1f%% cache-bytes=%d/%d cache-entries=%d cache-evicted=%d",
				100*snap.CacheHitRate, snap.CacheBytesResident, snap.CacheCapacityBytes,
				snap.CacheEntries, snap.CacheEvicted)
		} else {
			line += " cache=off"
		}
		fmt.Println(line)
		if snap.Shards > 0 {
			fmt.Printf("server: shards=%d hedges=%d retries=%d timeouts=%d shard-failures=%d degraded=%d\n",
				snap.Shards, snap.ShardHedges, snap.ShardRetries, snap.ShardTimeouts,
				snap.ShardFailures, snap.DegradedRetries)
			for _, ss := range snap.PerShard {
				fmt.Printf("  shard %d [%d,%d): rpcs=%d qps=%.1f p50=%.2fms p99=%.2fms cache-hits=%d\n",
					ss.ID, ss.Lo, ss.Hi, ss.RPCs, ss.QPS, ss.P50Ms, ss.P99Ms, ss.CacheHits)
			}
		}
	}

	if *jsonOut != "" {
		res := benchResult{
			URL: *url, Clients: *clients, NodesPerReq: *nodes,
			Duration: *duration, Zipf: *zipf, Seed: *seed,
			Completed: rep.Completed, Shed: rep.Shed, Errors: rep.Errors,
			Throughput: rep.Throughput,
			P50Ms:      float64(rep.P50) / float64(time.Millisecond),
			P95Ms:      float64(rep.P95) / float64(time.Millisecond),
			P99Ms:      float64(rep.P99) / float64(time.Millisecond),
			Server:     snap,
		}
		if snap != nil && snap.Shards > 0 {
			res.Shards = snap.Shards
			res.PerShard = snap.PerShard
			res.ShardHedges = snap.ShardHedges
			res.ShardRetries = snap.ShardRetries
			res.ShardTimeouts = snap.ShardTimeouts
			res.ShardFailures = snap.ShardFailures
			res.DegradedRetries = snap.DegradedRetries
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if rep.Completed == 0 {
		fatal(fmt.Errorf("no requests completed"))
	}
}

func health(base string) (*serve.HealthResponse, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

func statsz(base string) (*serve.Snapshot, error) {
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var s serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
