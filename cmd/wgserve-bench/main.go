// Command wgserve-bench drives a running wisegraph-serve instance with
// closed-loop load and reports the throughput–latency outcome: each
// virtual client issues the next /predict as soon as the previous one
// answers, so offered load scales with -clients until the server's
// admission queue starts shedding.
//
// Usage:
//
//	wisegraph-serve -dataset AR -checkpoint model.ckpt -addr :8080 &
//	wgserve-bench -url http://127.0.0.1:8080 -clients 32 -duration 10s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"wisegraph/internal/serve"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "server base URL")
		clients  = flag.Int("clients", 16, "closed-loop clients")
		nodes    = flag.Int("nodes", 1, "node ids per request")
		maxNode  = flag.Int("max-node", 0, "exclusive node-id bound (default: vertices from /healthz)")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		seed     = flag.Uint64("seed", 1, "client RNG seed")
		zipf     = flag.Float64("zipf", 0, "node popularity skew: P(node r) ∝ 1/(r+1)^zipf (0 = uniform)")
	)
	flag.Parse()

	if *maxNode <= 0 {
		h, err := health(*url)
		if err != nil {
			fatal(fmt.Errorf("fetching /healthz (pass -max-node to skip): %w", err))
		}
		if h.Status != "ok" {
			fatal(fmt.Errorf("server status %q", h.Status))
		}
		*maxNode = h.Vertices
		fmt.Printf("server: model=%s vertices=%d classes=%d\n", h.Model, h.Vertices, h.Classes)
	}

	rep := serve.RunClosedLoopHTTP(*url, *maxNode, serve.LoadOptions{
		Clients: *clients, NodesPerReq: *nodes, Duration: *duration,
		Seed: *seed, Zipf: *zipf,
	})
	fmt.Println(rep)
	if rep.Completed == 0 {
		fatal(fmt.Errorf("no requests completed"))
	}
}

func health(base string) (*serve.HealthResponse, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
