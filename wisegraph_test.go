package wisegraph

import (
	"strings"
	"testing"
)

func TestPublicAPIDatasetAndTraining(t *testing.T) {
	names := DatasetNames()
	if len(names) != 7 {
		t.Fatalf("expected 7 datasets, got %v", names)
	}
	ds, err := LoadDataset("AR", DatasetOptions{Scale: 800, FeatureDim: 16, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(ds, ModelConfig{Kind: SAGE, Hidden: 16, Layers: 2, Seed: 1}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.Run(10)
	if stats[9].Loss >= stats[0].Loss {
		t.Fatalf("loss did not drop: %.4f → %.4f", stats[0].Loss, stats[9].Loss)
	}
}

func TestPublicAPIOptimizeAndPartition(t *testing.T) {
	ds, err := LoadDataset("AR", DatasetOptions{Scale: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan := Optimize(ds.Graph, RGCN, 32, ds.Graph.NumTypes, A100())
	if plan.Seconds <= 0 || plan.Partition == nil {
		t.Fatalf("optimize produced empty plan: %+v", plan)
	}
	part := Partition(ds.Graph, plan.GraphPlan)
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	vc := Partition(ds.Graph, VertexCentricPlan())
	if vc.NumTasks() == 0 {
		t.Fatal("vertex-centric produced no tasks")
	}
	ec := Partition(ds.Graph, EdgeCentricPlan())
	if ec.NumTasks() != ds.Graph.NumEdges() {
		t.Fatal("edge-centric must have one task per edge")
	}
}

func TestPublicAPIParseModel(t *testing.T) {
	for _, name := range []string{"GCN", "SAGE", "SAGE-LSTM", "GAT", "RGCN"} {
		if _, err := ParseModel(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ParseModel("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 20 {
		t.Fatalf("expected 20 experiments (15 paper + 5 extensions), got %d: %v", len(ids), ids)
	}
	var sb strings.Builder
	if err := WriteExperiment(&sb, "table1", BenchConfig{Quick: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "table1") {
		t.Fatalf("unexpected output: %q", sb.String())
	}
	if _, err := RunExperiment("bogus", BenchConfig{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestPublicAPICluster(t *testing.T) {
	c := NewCluster(4)
	if c.N != 4 || c.Link.Bandwidth <= 0 {
		t.Fatalf("cluster misconfigured: %+v", c)
	}
}
