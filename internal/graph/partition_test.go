package graph

import (
	"testing"

	"wisegraph/internal/tensor"
)

// clusteredGraph builds a graph with strong community structure: k dense
// blocks plus sparse random cross edges, with vertex ids shuffled so the
// contiguous baseline partition cannot see the communities.
func clusteredGraph(k, perBlock, intra, inter int, seed uint64) *Graph {
	n := k * perBlock
	rng := tensor.NewRNG(seed)
	// random relabeling hides the community layout from contiguous blocks
	shuf := make([]int32, n)
	for i := range shuf {
		shuf[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuf[i], shuf[j] = shuf[j], shuf[i]
	}
	g := &Graph{NumVertices: n, NumTypes: 1}
	for b := 0; b < k; b++ {
		for e := 0; e < intra; e++ {
			s := b*perBlock + rng.Intn(perBlock)
			d := b*perBlock + rng.Intn(perBlock)
			g.Src = append(g.Src, shuf[s])
			g.Dst = append(g.Dst, shuf[d])
		}
	}
	for e := 0; e < inter; e++ {
		g.Src = append(g.Src, shuf[rng.Intn(n)])
		g.Dst = append(g.Dst, shuf[rng.Intn(n)])
	}
	return g
}

func TestLabelPropagationReducesCut(t *testing.T) {
	g := clusteredGraph(4, 100, 1500, 300, 1)
	contiguous := make([]int32, g.NumVertices)
	for v := range contiguous {
		contiguous[v] = int32(v * 4 / g.NumVertices)
	}
	baseCut := EdgeCut(g, contiguous)
	lp := LabelPropagationBlocks(g, 4, 10, 1)
	lpCut := EdgeCut(g, lp)
	if lpCut >= baseCut {
		t.Fatalf("label propagation did not reduce the cut: %d vs %d", lpCut, baseCut)
	}
	// On a strongly clustered graph the cut should drop well below the
	// contiguous baseline — this justifies the ROC policy's modeled
	// cross-edge factor (0.6).
	if float64(lpCut) > 0.7*float64(baseCut) {
		t.Fatalf("cut reduction too weak: %d vs %d (ratio %.2f)", lpCut, baseCut, float64(lpCut)/float64(baseCut))
	}
}

func TestLabelPropagationBalance(t *testing.T) {
	g := clusteredGraph(4, 100, 1000, 200, 2)
	lp := LabelPropagationBlocks(g, 4, 10, 2)
	sizes := make([]int, 4)
	for _, b := range lp {
		if b < 0 || b >= 4 {
			t.Fatalf("block %d out of range", b)
		}
		sizes[b]++
	}
	capSize := g.NumVertices/4 + g.NumVertices/16 + 1
	for b, s := range sizes {
		if s > capSize {
			t.Fatalf("block %d has %d vertices, cap %d", b, s, capSize)
		}
	}
}

func TestLabelPropagationSingleBlock(t *testing.T) {
	g := clusteredGraph(2, 50, 100, 10, 3)
	lp := LabelPropagationBlocks(g, 1, 5, 3)
	for _, b := range lp {
		if b != 0 {
			t.Fatal("k=1 must put everything in block 0")
		}
	}
	if EdgeCut(g, lp) != 0 {
		t.Fatal("single block has no cut")
	}
}

func TestBlocksToRelabelContiguity(t *testing.T) {
	g := clusteredGraph(3, 40, 300, 60, 4)
	lp := LabelPropagationBlocks(g, 3, 10, 4)
	newID := BlocksToRelabel(lp)
	// after relabeling, vertices of the same block occupy a contiguous
	// id range: block of newID v must be non-decreasing in v
	inv := make([]int32, len(newID)) // new id → old id
	for old, nid := range newID {
		inv[nid] = int32(old)
	}
	prev := int32(-1)
	for nid := range inv {
		b := lp[inv[nid]]
		if b < prev {
			t.Fatalf("blocks not contiguous after relabel at id %d", nid)
		}
		prev = b
	}
	// relabeled graph must still validate
	g2 := g.Clone()
	g2.RelabelVertices(newID)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// and the cut under contiguous blocks of the relabeled graph equals
	// the LP cut of the original
	k := 3
	contig := make([]int32, g2.NumVertices)
	for v := range contig {
		contig[v] = int32(v * k / g2.NumVertices)
	}
	// block sizes may differ from perfectly even thirds, so compare via
	// the block boundaries implied by lp sizes
	sizes := make([]int, k)
	for _, b := range lp {
		sizes[b]++
	}
	bounds := make([]int, k+1)
	for b := 0; b < k; b++ {
		bounds[b+1] = bounds[b] + sizes[b]
	}
	blockOf := func(v int32) int32 {
		for b := 0; b < k; b++ {
			if int(v) < bounds[b+1] {
				return int32(b)
			}
		}
		return int32(k - 1)
	}
	cut := 0
	for e := range g2.Src {
		if blockOf(g2.Src[e]) != blockOf(g2.Dst[e]) {
			cut++
		}
	}
	if cut != EdgeCut(g, lp) {
		t.Fatalf("relabel changed the cut: %d vs %d", cut, EdgeCut(g, lp))
	}
}
