package graph

import (
	"reflect"
	"sync"
	"testing"

	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// randomGraph builds a typed random graph big enough to cross the
// parallel-preprocessing threshold.
func randomGraph(v, e int, seed uint64) *Graph {
	rng := tensor.NewRNG(seed)
	g := &Graph{NumVertices: v, NumTypes: 4}
	g.Src = make([]int32, e)
	g.Dst = make([]int32, e)
	g.Type = make([]int32, e)
	for i := 0; i < e; i++ {
		g.Src[i] = int32(rng.Intn(v))
		g.Dst[i] = int32(rng.Intn(v))
		g.Type[i] = int32(rng.Intn(g.NumTypes))
	}
	return g
}

// TestDegreeCachesConcurrent is a race regression test: the lazy inDeg /
// outDeg caches used to be filled without synchronization, so concurrent
// joint-search workers sharing one graph raced on first access. Run with
// -race (scripts/check.sh does).
func TestDegreeCachesConcurrent(t *testing.T) {
	g := randomGraph(500, 5000, 1)
	var wg sync.WaitGroup
	results := make([][]int32, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				results[i] = g.InDegrees()
			} else {
				results[i] = g.OutDegrees()
			}
		}(i)
	}
	wg.Wait()
	for i := 2; i < len(results); i += 2 {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatal("concurrent InDegrees calls disagreed")
		}
	}
	for i := 3; i < len(results); i += 2 {
		if !reflect.DeepEqual(results[i], results[1]) {
			t.Fatal("concurrent OutDegrees calls disagreed")
		}
	}
}

// TestPreprocessParityAcrossWorkers checks that the parallel degree-count
// and CSR-build paths produce byte-identical results for any worker
// count (including the sequential path at 1 worker).
func TestPreprocessParityAcrossWorkers(t *testing.T) {
	defer parallel.SetMaxWorkers(parallel.MaxWorkers())
	// 70000 edges crosses parallelThreshold (1<<15) with several segments.
	for _, gr := range []*Graph{
		randomGraph(2000, 70000, 2),
		randomGraph(50, 40000, 3), // heavy collision load per vertex
		{NumVertices: 3, NumTypes: 1, Src: []int32{0, 1}, Dst: []int32{2, 2}},
	} {
		parallel.SetMaxWorkers(1)
		wantIn := append([]int32(nil), gr.InDegrees()...)
		wantOut := append([]int32(nil), gr.OutDegrees()...)
		wantCSR := gr.BuildCSRByDst()
		for _, w := range []int{2, 3, 8} {
			parallel.SetMaxWorkers(w)
			gr.invalidateCaches()
			if !reflect.DeepEqual(gr.InDegrees(), wantIn) {
				t.Fatalf("workers=%d: InDegrees diverged", w)
			}
			if !reflect.DeepEqual(gr.OutDegrees(), wantOut) {
				t.Fatalf("workers=%d: OutDegrees diverged", w)
			}
			csr := gr.BuildCSRByDst()
			if !reflect.DeepEqual(csr.RowPtr, wantCSR.RowPtr) ||
				!reflect.DeepEqual(csr.Col, wantCSR.Col) ||
				!reflect.DeepEqual(csr.EType, wantCSR.EType) ||
				!reflect.DeepEqual(csr.EdgeID, wantCSR.EdgeID) {
				t.Fatalf("workers=%d: CSR diverged", w)
			}
		}
	}
}
