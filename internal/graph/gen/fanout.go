package gen

import (
	"wisegraph/internal/graph"
	"wisegraph/internal/tensor"
)

// generateFanout builds a graph shaped like the union of neighbor-sampled
// subgraphs: a seed layer, then hop layers where each vertex of layer l
// draws up to Fanouts[l] in-neighbors from the (larger) next layer, with
// branch sharing so that popular sources are reused across destinations —
// reproducing PA-S/FS-S's key property that destinations are far fewer
// than sources.
func generateFanout(cfg Config, rng *tensor.RNG) *Result {
	fanouts := cfg.Fanouts
	if len(fanouts) == 0 {
		fanouts = []int{20, 15, 10}
	}
	// Solve layer widths against the vertex budget: layer 0 (seeds) gets
	// w0 vertices; each deeper layer grows by a sharing-damped fan
	// factor. Sharing keeps layer growth below the raw fan-out product,
	// like real sampled unions where branches collide.
	const share = 0.45 // fraction of distinct new vertices per drawn edge
	widths := make([]float64, len(fanouts)+1)
	widths[0] = 1
	totalW := 1.0
	for i, f := range fanouts {
		widths[i+1] = widths[i] * float64(f) * share
		totalW += widths[i+1]
	}
	scale := float64(cfg.NumVertices) / totalW
	layerStart := make([]int, len(widths)+1)
	for i := range widths {
		size := int(widths[i] * scale)
		if size < 1 {
			size = 1
		}
		layerStart[i+1] = layerStart[i] + size
	}
	v := layerStart[len(widths)]
	g := &graph.Graph{NumVertices: v, NumTypes: 1}

	// Edge budget split across layers proportional to dst-layer size ×
	// fan-out.
	var totalEdgesW float64
	edgeW := make([]float64, len(fanouts))
	for i, f := range fanouts {
		edgeW[i] = (widths[i] * scale) * float64(f)
		totalEdgesW += edgeW[i]
	}
	for i := range fanouts {
		dstLo, dstHi := layerStart[i], layerStart[i+1]
		srcLo, srcHi := layerStart[i+1], layerStart[i+2]
		n := int(float64(cfg.NumEdges) * edgeW[i] / totalEdgesW)
		span := srcHi - srcLo
		dspan := dstHi - dstLo
		if span <= 0 || dspan <= 0 {
			continue
		}
		for e := 0; e < n; e++ {
			dst := dstLo + rng.Intn(dspan)
			src := srcLo + rng.Intn(span)
			g.Src = append(g.Src, int32(src))
			g.Dst = append(g.Dst, int32(dst))
		}
	}

	if cfg.NumTypes > 1 {
		g.NumTypes = cfg.NumTypes
		g.Type = make([]int32, g.NumEdges())
		z := newZipf(cfg.NumTypes, 1.1)
		for e := range g.Type {
			g.Type[e] = int32(z.draw(rng))
		}
	}
	var block []int32
	if cfg.NumBlocks > 1 {
		block = make([]int32, v)
		for i := range block {
			block[i] = int32(i * cfg.NumBlocks / v)
		}
	}
	return &Result{Graph: g, Block: block}
}
