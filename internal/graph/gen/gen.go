// Package gen generates the synthetic graphs that stand in for the paper's
// OGB datasets (Arxiv, Products, Reddit, Papers100M, FriendSter). The
// generators reproduce the structural properties WiseGraph's partition
// quality depends on: power-law in-degree skew, typed edges with Zipf type
// frequencies, and block-homophilous communities so planted labels are
// learnable by the GNN models.
package gen

import (
	"math"
	"sort"

	"wisegraph/internal/graph"
	"wisegraph/internal/tensor"
)

// Config describes a synthetic graph.
type Config struct {
	NumVertices int
	NumEdges    int
	// Kind selects the edge distribution.
	Kind Kind
	// Skew controls in-degree concentration for PowerLaw/RMAT
	// (higher ⇒ heavier tail). Typical: 0.6–1.2.
	Skew float64
	// NumTypes > 1 assigns Zipf-distributed edge types (for RGCN).
	NumTypes int
	// NumBlocks > 1 plants that many homophilous communities; Homophily
	// is the fraction of edges forced to stay within a block.
	NumBlocks int
	Homophily float64
	// Fanouts configures SampledFanout layer widths (default 20-15-10).
	Fanouts []int
	Seed    uint64
}

// Kind enumerates edge distributions.
type Kind int

const (
	// PowerLaw draws destinations by preferential attachment, giving a
	// power-law in-degree distribution (citation/social networks).
	PowerLaw Kind = iota
	// Uniform draws endpoints uniformly (Erdős–Rényi-like).
	Uniform
	// RMAT draws edges by recursive quadrant descent (Graph500-style).
	RMAT
	// SampledFanout mimics the union of neighbor-sampled subgraphs (the
	// paper's PA-S/FS-S, sampled with 1000 seeds at fan-out 20-15-10):
	// vertices form hop layers, edges point from deeper layers toward
	// the seeds, so destinations are few while sources are many.
	SampledFanout
)

// Result bundles a generated graph with the planted community assignment
// (nil when NumBlocks ≤ 1).
type Result struct {
	Graph *graph.Graph
	Block []int32 // per-vertex community id, nil if unplanted
}

// Generate builds the configured graph deterministically from the seed.
func Generate(cfg Config) *Result {
	if cfg.NumVertices <= 0 || cfg.NumEdges < 0 {
		panic("gen: non-positive graph size")
	}
	rng := tensor.NewRNG(cfg.Seed)
	if cfg.Kind == SampledFanout {
		return generateFanout(cfg, rng)
	}
	g := &graph.Graph{
		NumVertices: cfg.NumVertices,
		NumTypes:    1,
		Src:         make([]int32, 0, cfg.NumEdges),
		Dst:         make([]int32, 0, cfg.NumEdges),
	}

	var block []int32
	if cfg.NumBlocks > 1 {
		block = make([]int32, cfg.NumVertices)
		for v := range block {
			// Contiguous blocks of roughly equal size.
			block[v] = int32(v * cfg.NumBlocks / cfg.NumVertices)
		}
	}

	drawDst := destinationSampler(cfg, rng)
	for e := 0; e < cfg.NumEdges; e++ {
		src := int32(rng.Intn(cfg.NumVertices))
		dst := drawDst(rng)
		if block != nil && rng.Float64() < cfg.Homophily {
			// Redraw dst inside src's block: shift dst into the block
			// keeping its rank, which preserves the skew shape.
			bs, be := blockRange(int(block[src]), cfg.NumBlocks, cfg.NumVertices)
			span := be - bs
			if span > 0 {
				dst = int32(bs + int(dst)%span)
			}
		}
		g.Src = append(g.Src, src)
		g.Dst = append(g.Dst, dst)
	}

	if cfg.NumTypes > 1 {
		g.NumTypes = cfg.NumTypes
		g.Type = make([]int32, cfg.NumEdges)
		z := newZipf(cfg.NumTypes, 1.1)
		for e := range g.Type {
			g.Type[e] = int32(z.draw(rng))
		}
	}
	return &Result{Graph: g, Block: block}
}

func blockRange(b, numBlocks, n int) (lo, hi int) {
	lo = b * n / numBlocks
	hi = (b + 1) * n / numBlocks
	return lo, hi
}

// destinationSampler returns a function drawing destination vertices with
// the configured distribution.
func destinationSampler(cfg Config, rng *tensor.RNG) func(*tensor.RNG) int32 {
	n := cfg.NumVertices
	switch cfg.Kind {
	case Uniform:
		return func(r *tensor.RNG) int32 { return int32(r.Intn(n)) }
	case RMAT:
		// Classic RMAT (a,b,c,d); skew moves mass to the "a" quadrant.
		a := 0.45 + 0.1*clamp01(cfg.Skew)
		b := (1 - a) / 3
		levels := 0
		for (1 << levels) < n {
			levels++
		}
		return func(r *tensor.RNG) int32 {
			v := 0
			for l := 0; l < levels; l++ {
				u := r.Float64()
				v <<= 1
				switch {
				case u < a || u < a+b: // upper half for a+b mass
					if u >= a {
						v |= 1
					}
				default:
					if r.Float64() < 0.5 {
						v |= 1
					}
				}
			}
			if v >= n {
				v %= n
			}
			return int32(v)
		}
	default: // PowerLaw
		// Zipf over vertex ranks: vertex i gets probability ∝ (i+1)^-s.
		// Sampling via inverse-CDF on a precomputed table would cost O(V)
		// memory; instead use the standard approximation of drawing from
		// a continuous bounded Pareto and flooring.
		s := cfg.Skew
		if s <= 0 {
			s = 0.8
		}
		if s >= 0.99 && s <= 1.01 {
			s = 1.01 // avoid the s=1 singularity in the closed form
		}
		oneMinusS := 1 - s
		hMax := (math.Pow(float64(n)+1, oneMinusS) - 1) / oneMinusS
		return func(r *tensor.RNG) int32 {
			u := r.Float64() * hMax
			x := math.Pow(u*oneMinusS+1, 1/oneMinusS) - 1
			v := int(x)
			if v >= n {
				v = n - 1
			}
			return int32(v)
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// zipf draws from a small Zipf distribution by inverse CDF over a table.
type zipf struct{ cdf []float64 }

func newZipf(n int, s float64) *zipf {
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &zipf{cdf: cdf}
}

func (z *zipf) draw(rng *tensor.RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
