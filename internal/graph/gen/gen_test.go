package gen

import (
	"sort"
	"testing"

	"wisegraph/internal/tensor"
)

func TestGenerateBasicValidity(t *testing.T) {
	for _, kind := range []Kind{PowerLaw, Uniform, RMAT} {
		res := Generate(Config{NumVertices: 500, NumEdges: 3000, Kind: kind, Skew: 0.9, Seed: 1})
		g := res.Graph
		if g.NumVertices != 500 || g.NumEdges() != 3000 {
			t.Fatalf("kind %d: wrong size %v", kind, g)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{NumVertices: 100, NumEdges: 400, Kind: PowerLaw, Skew: 0.8, Seed: 5}).Graph
	b := Generate(Config{NumVertices: 100, NumEdges: 400, Kind: PowerLaw, Skew: 0.8, Seed: 5}).Graph
	for e := range a.Src {
		if a.Src[e] != b.Src[e] || a.Dst[e] != b.Dst[e] {
			t.Fatal("same seed must give identical graphs")
		}
	}
	c := Generate(Config{NumVertices: 100, NumEdges: 400, Kind: PowerLaw, Skew: 0.8, Seed: 6}).Graph
	same := true
	for e := range a.Src {
		if a.Src[e] != c.Src[e] || a.Dst[e] != c.Dst[e] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestPowerLawSkew(t *testing.T) {
	res := Generate(Config{NumVertices: 2000, NumEdges: 40000, Kind: PowerLaw, Skew: 1.0, Seed: 2})
	deg := res.Graph.InDegrees()
	sorted := append([]int32(nil), deg...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	// top 1% of vertices must hold a disproportionate share of edges
	var top, total int64
	for i, d := range sorted {
		total += int64(d)
		if i < len(sorted)/100 {
			top += int64(d)
		}
	}
	share := float64(top) / float64(total)
	if share < 0.10 {
		t.Fatalf("power-law top-1%% in-degree share = %.3f, want ≥ 0.10", share)
	}

	// uniform graphs must NOT be this skewed
	res2 := Generate(Config{NumVertices: 2000, NumEdges: 40000, Kind: Uniform, Seed: 2})
	deg2 := res2.Graph.InDegrees()
	sorted2 := append([]int32(nil), deg2...)
	sort.Slice(sorted2, func(i, j int) bool { return sorted2[i] > sorted2[j] })
	var top2 int64
	for i := 0; i < len(sorted2)/100; i++ {
		top2 += int64(sorted2[i])
	}
	if float64(top2)/float64(total) > share {
		t.Fatalf("uniform more skewed than power-law (%d vs %d)", top2, top)
	}
}

func TestTypedEdgesZipf(t *testing.T) {
	res := Generate(Config{NumVertices: 300, NumEdges: 10000, Kind: PowerLaw, Skew: 0.8, NumTypes: 6, Seed: 3})
	g := res.Graph
	if g.NumTypes != 6 || g.Type == nil {
		t.Fatalf("types not assigned: %v", g)
	}
	counts := make([]int, 6)
	for _, ty := range g.Type {
		counts[ty]++
	}
	// Zipf: type 0 strictly most frequent, every type present
	for ty, c := range counts {
		if c == 0 {
			t.Fatalf("type %d never drawn", ty)
		}
		if ty > 0 && counts[0] < c {
			t.Fatalf("type frequencies not Zipf-ordered at head: %v", counts)
		}
	}
}

func TestHomophilyBlocks(t *testing.T) {
	res := Generate(Config{
		NumVertices: 1000, NumEdges: 20000, Kind: Uniform,
		NumBlocks: 10, Homophily: 0.9, Seed: 4,
	})
	if res.Block == nil {
		t.Fatal("blocks not planted")
	}
	intra := 0
	for e := range res.Graph.Src {
		if res.Block[res.Graph.Src[e]] == res.Block[res.Graph.Dst[e]] {
			intra++
		}
	}
	frac := float64(intra) / float64(res.Graph.NumEdges())
	// ≥ 0.9 homophilous redraws plus 1/10 chance for the rest ⇒ ≈ 0.91
	if frac < 0.80 {
		t.Fatalf("intra-block edge fraction = %.3f, want ≥ 0.80", frac)
	}
	// block ids must cover the range
	seen := map[int32]bool{}
	for _, b := range res.Block {
		seen[b] = true
	}
	if len(seen) != 10 {
		t.Fatalf("%d distinct blocks, want 10", len(seen))
	}
}

func TestZipfTable(t *testing.T) {
	z := newZipf(4, 1.0)
	rng := tensor.NewRNG(9)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[z.draw(rng)]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]) {
		t.Fatalf("zipf counts not decreasing: %v", counts)
	}
}

func TestSampledFanoutStructure(t *testing.T) {
	res := Generate(Config{
		NumVertices: 5000, NumEdges: 8000, Kind: SampledFanout,
		Fanouts: []int{20, 15, 10}, NumTypes: 4, NumBlocks: 8, Seed: 6,
	})
	g := res.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices > 5000 || g.NumVertices < 4000 {
		t.Fatalf("vertex budget off: %d", g.NumVertices)
	}
	// the defining property of sampled unions: destinations are a small
	// minority of vertices (only non-leaf layers receive edges)
	dsts := map[int32]struct{}{}
	for _, d := range g.Dst {
		dsts[d] = struct{}{}
	}
	frac := float64(len(dsts)) / float64(g.NumVertices)
	if frac > 0.4 {
		t.Fatalf("destination fraction %.2f, want < 0.4 (few dsts, many srcs)", frac)
	}
	// edges always point from a deeper layer toward the seeds: src > dst
	for e := range g.Src {
		if g.Src[e] <= g.Dst[e] {
			t.Fatalf("edge %d points the wrong way: %d → %d", e, g.Src[e], g.Dst[e])
		}
	}
	if res.Block == nil || len(res.Block) != g.NumVertices {
		t.Fatal("blocks not planted")
	}
	if g.NumTypes != 4 {
		t.Fatalf("types = %d", g.NumTypes)
	}
}

func TestSampledFanoutDefaultFanouts(t *testing.T) {
	res := Generate(Config{NumVertices: 2000, NumEdges: 3000, Kind: SampledFanout, Seed: 7})
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
}
