package graph

import (
	"strings"
	"testing"

	"wisegraph/internal/tensor"
)

// FuzzReadCSV hammers the edge-list parser: any input must either parse
// into a graph that validates, or fail cleanly with an error — never
// panic or produce an inconsistent graph.
func FuzzReadCSV(f *testing.F) {
	f.Add("src,dst,type\n0,1,0\n1,2,1\n")
	f.Add("# vertices=5 edges=2 types=2\n0,4,1\n3,3,0\n")
	f.Add("0,1\n")
	f.Add("")
	f.Add("#\n#vertices=x\n")
	f.Add("a,b,c\n0,0,0\n")
	f.Add("0,1,2\n-1,0,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph fails validation: %v\ninput: %q", err, input)
		}
		// derived structures must also be safe to build (skip declared
		// vertex counts that would legitimately allocate gigabytes)
		if g.NumVertices <= 1_000_000 {
			g.BuildCSRByDst()
			g.InDegrees()
			g.OutDegrees()
		}
	})
}

// FuzzNeighborSampleBounds checks the sampler against arbitrary small
// graphs: all outputs must reference valid local/parent ids.
func FuzzNeighborSampleBounds(f *testing.F) {
	f.Add(uint8(5), uint8(10), uint8(2), uint16(3))
	f.Fuzz(func(t *testing.T, vRaw, eRaw, fanRaw uint8, seedRaw uint16) {
		v := int(vRaw%30) + 2
		e := int(eRaw % 60)
		fan := int(fanRaw%5) + 1
		g := &Graph{NumVertices: v, NumTypes: 1}
		s := uint64(seedRaw)*2654435761 + 1
		for i := 0; i < e; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			g.Src = append(g.Src, int32((s>>33)%uint64(v)))
			s = s*6364136223846793005 + 1442695040888963407
			g.Dst = append(g.Dst, int32((s>>33)%uint64(v)))
		}
		csr := g.BuildCSRByDst()
		sub := NeighborSample(g, csr, []int32{0}, []int{fan, fan}, rngFor(uint64(seedRaw)))
		if err := sub.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, p := range sub.Vertices {
			if p < 0 || int(p) >= v {
				t.Fatalf("parent vertex %d out of range", p)
			}
		}
		for _, ep := range sub.EdgeParent {
			if ep < 0 || int(ep) >= e {
				t.Fatalf("parent edge %d out of range", ep)
			}
		}
	})
}

// rngFor builds a deterministic RNG for fuzz inputs.
func rngFor(seed uint64) *tensor.RNG { return tensor.NewRNG(seed + 1) }
