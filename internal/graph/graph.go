// Package graph implements the sparse-graph substrate: COO/CSR storage,
// edge attributes (the inputs to WiseGraph's graph partition table),
// locality reordering, and neighbor sampling for sampled-graph training.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// Graph is a directed multigraph in COO form. Edges point src → dst;
// GNN layers aggregate over each destination's in-edges. Type is the
// per-edge relation id used by heterogeneous models (RGCN); it is nil
// for untyped graphs.
type Graph struct {
	NumVertices int
	NumTypes    int // number of distinct edge types; 1 when Type == nil

	Src  []int32
	Dst  []int32
	Type []int32 // nil ⇒ all edges have type 0

	// degMu guards the lazy degree caches: concurrent joint-search workers
	// share one graph and may all trigger the first InDegrees call.
	degMu  sync.Mutex
	inDeg  []int32 // lazily built
	outDeg []int32
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Src) }

// EdgeType returns the type of edge e (0 for untyped graphs).
func (g *Graph) EdgeType(e int) int32 {
	if g.Type == nil {
		return 0
	}
	return g.Type[e]
}

// Validate checks structural invariants and returns a descriptive error
// on the first violation.
func (g *Graph) Validate() error {
	if len(g.Src) != len(g.Dst) {
		return fmt.Errorf("graph: %d srcs vs %d dsts", len(g.Src), len(g.Dst))
	}
	if g.Type != nil && len(g.Type) != len(g.Src) {
		return fmt.Errorf("graph: %d types vs %d edges", len(g.Type), len(g.Src))
	}
	nt := int32(g.NumTypes)
	for e := range g.Src {
		if g.Src[e] < 0 || int(g.Src[e]) >= g.NumVertices {
			return fmt.Errorf("graph: edge %d src %d out of range [0,%d)", e, g.Src[e], g.NumVertices)
		}
		if g.Dst[e] < 0 || int(g.Dst[e]) >= g.NumVertices {
			return fmt.Errorf("graph: edge %d dst %d out of range [0,%d)", e, g.Dst[e], g.NumVertices)
		}
		if g.Type != nil && (g.Type[e] < 0 || g.Type[e] >= nt) {
			return fmt.Errorf("graph: edge %d type %d out of range [0,%d)", e, g.Type[e], nt)
		}
	}
	return nil
}

// InDegrees returns the per-vertex in-degree array (cached). Safe for
// concurrent callers: the first caller computes, later callers reuse.
func (g *Graph) InDegrees() []int32 {
	g.degMu.Lock()
	defer g.degMu.Unlock()
	if g.inDeg == nil {
		g.inDeg = countEndpoints(g.Dst, g.NumVertices)
	}
	return g.inDeg
}

// OutDegrees returns the per-vertex out-degree array (cached). Safe for
// concurrent callers.
func (g *Graph) OutDegrees() []int32 {
	g.degMu.Lock()
	defer g.degMu.Unlock()
	if g.outDeg == nil {
		g.outDeg = countEndpoints(g.Src, g.NumVertices)
	}
	return g.outDeg
}

// parallelThreshold is the edge count below which the preprocessing
// passes stay sequential: segmented counting needs a per-worker count
// array of V int32s, which only pays off on large graphs.
const parallelThreshold = 1 << 15

// countEndpoints histograms ids (all in [0, v)) into a fresh array. Large
// inputs count per-worker segments into scratch arrays and merge; the
// merge sums fixed per-segment slots, so the result is independent of the
// worker count.
func countEndpoints(ids []int32, v int) []int32 {
	d := make([]int32, v)
	segs := parallel.Workers(len(ids), parallelThreshold)
	if len(ids) < parallelThreshold || segs <= 1 {
		for _, x := range ids {
			d[x]++
		}
		return d
	}
	locals := make([][]int32, segs)
	per := (len(ids) + segs - 1) / segs
	parallel.For(segs, 1, func(s int) {
		lo := s * per
		hi := lo + per
		if hi > len(ids) {
			hi = len(ids)
		}
		loc := tensor.GetI32(v)
		for _, x := range ids[lo:hi] {
			loc[x]++
		}
		locals[s] = loc
	})
	parallel.ForRange(v, 1<<14, func(lo, hi int) {
		for _, loc := range locals {
			for i := lo; i < hi; i++ {
				d[i] += loc[i]
			}
		}
	})
	for _, loc := range locals {
		tensor.PutI32(loc)
	}
	return d
}

// invalidateCaches drops degree caches after a structural mutation.
// Mutating methods are not safe for use concurrent with readers (that
// contract is unchanged); the lock only orders the cache swap itself.
func (g *Graph) invalidateCaches() {
	g.degMu.Lock()
	g.inDeg, g.outDeg = nil, nil
	g.degMu.Unlock()
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		NumVertices: g.NumVertices,
		NumTypes:    g.NumTypes,
		Src:         append([]int32(nil), g.Src...),
		Dst:         append([]int32(nil), g.Dst...),
	}
	if g.Type != nil {
		out.Type = append([]int32(nil), g.Type...)
	}
	return out
}

// CSR is a compressed-sparse-row view grouped by destination vertex:
// the in-edges of vertex v occupy positions [RowPtr[v], RowPtr[v+1]) of
// Col (source ids), EType and EdgeID.
type CSR struct {
	RowPtr []int32
	Col    []int32
	EType  []int32 // nil for untyped graphs
	EdgeID []int32 // original COO edge index per CSR slot
}

// BuildCSRByDst groups edges by destination via counting sort: O(V+E),
// stable in original edge order within each destination. Large graphs
// run the count and scatter passes across workers on fixed edge
// segments; per-(segment, destination) slot ranges are disjoint, so the
// output is byte-identical to the sequential pass for any worker count.
func (g *Graph) BuildCSRByDst() *CSR {
	e := len(g.Src)
	col := make([]int32, e)
	eid := make([]int32, e)
	var et []int32
	if g.Type != nil {
		et = make([]int32, e)
	}
	segs := parallel.Workers(e, parallelThreshold)
	if e < parallelThreshold || segs <= 1 {
		deg := g.InDegrees()
		rowPtr := make([]int32, g.NumVertices+1)
		for v, d := range deg {
			rowPtr[v+1] = rowPtr[v] + d
		}
		next := append([]int32(nil), rowPtr[:g.NumVertices]...)
		for i := range g.Src {
			d := g.Dst[i]
			slot := next[d]
			next[d]++
			col[slot] = g.Src[i]
			eid[slot] = int32(i)
			if et != nil {
				et[slot] = g.Type[i]
			}
		}
		return &CSR{RowPtr: rowPtr, Col: col, EType: et, EdgeID: eid}
	}

	v := g.NumVertices
	per := (e + segs - 1) / segs
	// Per-segment destination histograms.
	counts := make([][]int32, segs)
	parallel.For(segs, 1, func(s int) {
		lo := s * per
		hi := lo + per
		if hi > e {
			hi = e
		}
		loc := tensor.GetI32(v)
		for _, d := range g.Dst[lo:hi] {
			loc[d]++
		}
		counts[s] = loc
	})
	// Row pointers from the summed histograms, then per-segment start
	// slots: segment s writes destination d at counts[s][d] (rewritten in
	// place from count to cursor), giving original edge order within d.
	rowPtr := make([]int32, v+1)
	for d := 0; d < v; d++ {
		total := int32(0)
		for _, loc := range counts {
			total += loc[d]
		}
		rowPtr[d+1] = rowPtr[d] + total
	}
	parallel.ForRange(v, 1<<14, func(dlo, dhi int) {
		for d := dlo; d < dhi; d++ {
			run := rowPtr[d]
			for _, loc := range counts {
				c := loc[d]
				loc[d] = run
				run += c
			}
		}
	})
	parallel.For(segs, 1, func(s int) {
		lo := s * per
		hi := lo + per
		if hi > e {
			hi = e
		}
		cur := counts[s]
		for i := lo; i < hi; i++ {
			d := g.Dst[i]
			slot := cur[d]
			cur[d]++
			col[slot] = g.Src[i]
			eid[slot] = int32(i)
			if et != nil {
				et[slot] = g.Type[i]
			}
		}
	})
	for _, loc := range counts {
		tensor.PutI32(loc)
	}
	return &CSR{RowPtr: rowPtr, Col: col, EType: et, EdgeID: eid}
}

// SortEdges permutes edges in place by the given less function over edge
// indices, keeping Src/Dst/Type aligned.
func (g *Graph) SortEdges(less func(a, b int) bool) {
	perm := make([]int, len(g.Src))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool { return less(perm[i], perm[j]) })
	g.ApplyEdgePermutation(perm)
}

// ApplyEdgePermutation reorders edges so new edge i is old edge perm[i].
func (g *Graph) ApplyEdgePermutation(perm []int) {
	src := make([]int32, len(g.Src))
	dst := make([]int32, len(g.Dst))
	var typ []int32
	if g.Type != nil {
		typ = make([]int32, len(g.Type))
	}
	for i, p := range perm {
		src[i] = g.Src[p]
		dst[i] = g.Dst[p]
		if typ != nil {
			typ[i] = g.Type[p]
		}
	}
	g.Src, g.Dst, g.Type = src, dst, typ
	g.invalidateCaches()
}

// RelabelVertices renames vertex v to newID[v] across all edges. newID
// must be a permutation of [0, NumVertices).
func (g *Graph) RelabelVertices(newID []int32) {
	if len(newID) != g.NumVertices {
		panic(fmt.Sprintf("graph: relabel map has %d entries for %d vertices", len(newID), g.NumVertices))
	}
	for e := range g.Src {
		g.Src[e] = newID[g.Src[e]]
		g.Dst[e] = newID[g.Dst[e]]
	}
	g.invalidateCaches()
}

// MaxInDegree returns the largest in-degree in the graph.
func (g *Graph) MaxInDegree() int32 {
	var m int32
	for _, d := range g.InDegrees() {
		if d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns |E| / |V|.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices)
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{V=%d E=%d types=%d}", g.NumVertices, g.NumEdges(), g.NumTypes)
}
