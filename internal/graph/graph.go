// Package graph implements the sparse-graph substrate: COO/CSR storage,
// edge attributes (the inputs to WiseGraph's graph partition table),
// locality reordering, and neighbor sampling for sampled-graph training.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a directed multigraph in COO form. Edges point src → dst;
// GNN layers aggregate over each destination's in-edges. Type is the
// per-edge relation id used by heterogeneous models (RGCN); it is nil
// for untyped graphs.
type Graph struct {
	NumVertices int
	NumTypes    int // number of distinct edge types; 1 when Type == nil

	Src  []int32
	Dst  []int32
	Type []int32 // nil ⇒ all edges have type 0

	inDeg  []int32 // lazily built
	outDeg []int32
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Src) }

// EdgeType returns the type of edge e (0 for untyped graphs).
func (g *Graph) EdgeType(e int) int32 {
	if g.Type == nil {
		return 0
	}
	return g.Type[e]
}

// Validate checks structural invariants and returns a descriptive error
// on the first violation.
func (g *Graph) Validate() error {
	if len(g.Src) != len(g.Dst) {
		return fmt.Errorf("graph: %d srcs vs %d dsts", len(g.Src), len(g.Dst))
	}
	if g.Type != nil && len(g.Type) != len(g.Src) {
		return fmt.Errorf("graph: %d types vs %d edges", len(g.Type), len(g.Src))
	}
	nt := int32(g.NumTypes)
	for e := range g.Src {
		if g.Src[e] < 0 || int(g.Src[e]) >= g.NumVertices {
			return fmt.Errorf("graph: edge %d src %d out of range [0,%d)", e, g.Src[e], g.NumVertices)
		}
		if g.Dst[e] < 0 || int(g.Dst[e]) >= g.NumVertices {
			return fmt.Errorf("graph: edge %d dst %d out of range [0,%d)", e, g.Dst[e], g.NumVertices)
		}
		if g.Type != nil && (g.Type[e] < 0 || g.Type[e] >= nt) {
			return fmt.Errorf("graph: edge %d type %d out of range [0,%d)", e, g.Type[e], nt)
		}
	}
	return nil
}

// InDegrees returns the per-vertex in-degree array (cached).
func (g *Graph) InDegrees() []int32 {
	if g.inDeg == nil {
		d := make([]int32, g.NumVertices)
		for _, v := range g.Dst {
			d[v]++
		}
		g.inDeg = d
	}
	return g.inDeg
}

// OutDegrees returns the per-vertex out-degree array (cached).
func (g *Graph) OutDegrees() []int32 {
	if g.outDeg == nil {
		d := make([]int32, g.NumVertices)
		for _, v := range g.Src {
			d[v]++
		}
		g.outDeg = d
	}
	return g.outDeg
}

// invalidateCaches drops degree caches after a structural mutation.
func (g *Graph) invalidateCaches() {
	g.inDeg, g.outDeg = nil, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		NumVertices: g.NumVertices,
		NumTypes:    g.NumTypes,
		Src:         append([]int32(nil), g.Src...),
		Dst:         append([]int32(nil), g.Dst...),
	}
	if g.Type != nil {
		out.Type = append([]int32(nil), g.Type...)
	}
	return out
}

// CSR is a compressed-sparse-row view grouped by destination vertex:
// the in-edges of vertex v occupy positions [RowPtr[v], RowPtr[v+1]) of
// Col (source ids), EType and EdgeID.
type CSR struct {
	RowPtr []int32
	Col    []int32
	EType  []int32 // nil for untyped graphs
	EdgeID []int32 // original COO edge index per CSR slot
}

// BuildCSRByDst groups edges by destination via counting sort: O(V+E),
// stable in original edge order within each destination.
func (g *Graph) BuildCSRByDst() *CSR {
	deg := g.InDegrees()
	rowPtr := make([]int32, g.NumVertices+1)
	for v, d := range deg {
		rowPtr[v+1] = rowPtr[v] + d
	}
	col := make([]int32, len(g.Src))
	eid := make([]int32, len(g.Src))
	var et []int32
	if g.Type != nil {
		et = make([]int32, len(g.Src))
	}
	next := append([]int32(nil), rowPtr[:g.NumVertices]...)
	for e := range g.Src {
		d := g.Dst[e]
		slot := next[d]
		next[d]++
		col[slot] = g.Src[e]
		eid[slot] = int32(e)
		if et != nil {
			et[slot] = g.Type[e]
		}
	}
	return &CSR{RowPtr: rowPtr, Col: col, EType: et, EdgeID: eid}
}

// SortEdges permutes edges in place by the given less function over edge
// indices, keeping Src/Dst/Type aligned.
func (g *Graph) SortEdges(less func(a, b int) bool) {
	perm := make([]int, len(g.Src))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool { return less(perm[i], perm[j]) })
	g.ApplyEdgePermutation(perm)
}

// ApplyEdgePermutation reorders edges so new edge i is old edge perm[i].
func (g *Graph) ApplyEdgePermutation(perm []int) {
	src := make([]int32, len(g.Src))
	dst := make([]int32, len(g.Dst))
	var typ []int32
	if g.Type != nil {
		typ = make([]int32, len(g.Type))
	}
	for i, p := range perm {
		src[i] = g.Src[p]
		dst[i] = g.Dst[p]
		if typ != nil {
			typ[i] = g.Type[p]
		}
	}
	g.Src, g.Dst, g.Type = src, dst, typ
	g.invalidateCaches()
}

// RelabelVertices renames vertex v to newID[v] across all edges. newID
// must be a permutation of [0, NumVertices).
func (g *Graph) RelabelVertices(newID []int32) {
	if len(newID) != g.NumVertices {
		panic(fmt.Sprintf("graph: relabel map has %d entries for %d vertices", len(newID), g.NumVertices))
	}
	for e := range g.Src {
		g.Src[e] = newID[g.Src[e]]
		g.Dst[e] = newID[g.Dst[e]]
	}
	g.invalidateCaches()
}

// MaxInDegree returns the largest in-degree in the graph.
func (g *Graph) MaxInDegree() int32 {
	var m int32
	for _, d := range g.InDegrees() {
		if d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns |E| / |V|.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices)
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{V=%d E=%d types=%d}", g.NumVertices, g.NumEdges(), g.NumTypes)
}
