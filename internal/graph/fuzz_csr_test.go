package graph

import (
	"testing"
)

// FuzzCSRBuild checks CSR construction against arbitrary COO edge lists:
// whatever the input shape, the result must preserve the degree-sum
// invariants (row pointers monotone, summing to E, each row's width equal
// to the destination's in-degree) and be a faithful permutation of the
// original edges (every slot's column, type and edge id agree with the
// COO arrays; every edge appears exactly once).
func FuzzCSRBuild(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 2, 0, 4, 4})
	f.Add(uint8(1), []byte{0, 0})
	f.Add(uint8(40), []byte{})
	f.Add(uint8(3), []byte{2, 2, 2, 2, 2, 2, 1, 0})
	f.Fuzz(func(t *testing.T, vRaw uint8, edgeBytes []byte) {
		v := int(vRaw%40) + 1
		g := &Graph{NumVertices: v, NumTypes: 3}
		for i := 0; i+1 < len(edgeBytes); i += 2 {
			g.Src = append(g.Src, int32(int(edgeBytes[i])%v))
			g.Dst = append(g.Dst, int32(int(edgeBytes[i+1])%v))
			g.Type = append(g.Type, int32((i/2)%3))
		}
		e := g.NumEdges()
		csr := g.BuildCSRByDst()

		if len(csr.RowPtr) != v+1 {
			t.Fatalf("RowPtr has %d entries for %d vertices", len(csr.RowPtr), v)
		}
		if csr.RowPtr[0] != 0 || int(csr.RowPtr[v]) != e {
			t.Fatalf("RowPtr spans [%d,%d], want [0,%d]", csr.RowPtr[0], csr.RowPtr[v], e)
		}
		if len(csr.Col) != e || len(csr.EdgeID) != e || len(csr.EType) != e {
			t.Fatalf("CSR arrays sized %d/%d/%d for %d edges", len(csr.Col), len(csr.EdgeID), len(csr.EType), e)
		}

		// Degree-sum invariant: each row's width is the in-degree counted
		// directly from the COO destination array.
		deg := make([]int32, v)
		for _, d := range g.Dst {
			deg[d]++
		}
		for u := 0; u < v; u++ {
			lo, hi := csr.RowPtr[u], csr.RowPtr[u+1]
			if hi < lo {
				t.Fatalf("RowPtr not monotone at %d: %d > %d", u, lo, hi)
			}
			if hi-lo != deg[u] {
				t.Fatalf("vertex %d row width %d, in-degree %d", u, hi-lo, deg[u])
			}
			// Slot fidelity: each slot mirrors one original edge whose
			// destination is this row.
			for s := lo; s < hi; s++ {
				id := csr.EdgeID[s]
				if id < 0 || int(id) >= e {
					t.Fatalf("slot %d edge id %d out of range", s, id)
				}
				if g.Dst[id] != int32(u) {
					t.Fatalf("slot %d in row %d maps to edge with dst %d", s, u, g.Dst[id])
				}
				if csr.Col[s] != g.Src[id] {
					t.Fatalf("slot %d col %d, edge %d src %d", s, csr.Col[s], id, g.Src[id])
				}
				if csr.EType[s] != g.Type[id] {
					t.Fatalf("slot %d type %d, edge %d type %d", s, csr.EType[s], id, g.Type[id])
				}
			}
		}

		// Permutation invariant: every COO edge lands in exactly one slot.
		seen := make([]bool, e)
		for _, id := range csr.EdgeID {
			if seen[id] {
				t.Fatalf("edge %d appears twice in CSR", id)
			}
			seen[id] = true
		}

		// Determinism: a second build must be identical (the parallel
		// scatter documents byte-identical output for any worker count).
		again := g.BuildCSRByDst()
		for i := range csr.EdgeID {
			if csr.EdgeID[i] != again.EdgeID[i] {
				t.Fatalf("rebuild diverged at slot %d", i)
			}
		}
	})
}
