package graph

import "sort"

// ClusterReorder computes a Metis/Rabbit-style locality ordering: vertices
// are renamed so that vertices sharing many neighbors receive nearby ids.
// The paper notes (§4.3) that clustering reorders and WiseGraph's gTask
// partition compose — reorder first, then partition — so this is provided
// as the optional pre-pass.
//
// The implementation is a lightweight community ordering: repeated BFS from
// the highest-degree unvisited vertex, emitting vertices in visit order.
// It returns the newID mapping (old → new); apply with RelabelVertices.
func ClusterReorder(g *Graph) []int32 {
	n := g.NumVertices
	// Build an undirected adjacency once (both edge directions).
	deg := make([]int32, n)
	for e := range g.Src {
		deg[g.Src[e]]++
		deg[g.Dst[e]]++
	}
	ptr := make([]int32, n+1)
	for v := 0; v < n; v++ {
		ptr[v+1] = ptr[v] + deg[v]
	}
	adj := make([]int32, 2*len(g.Src))
	next := append([]int32(nil), ptr[:n]...)
	for e := range g.Src {
		s, d := g.Src[e], g.Dst[e]
		adj[next[s]] = d
		next[s]++
		adj[next[d]] = s
		next[d]++
	}

	order := make([]int32, 0, n)
	visited := make([]bool, n)
	seeds := make([]int32, n)
	for v := range seeds {
		seeds[v] = int32(v)
	}
	sort.Slice(seeds, func(i, j int) bool { return deg[seeds[i]] > deg[seeds[j]] })

	queue := make([]int32, 0, n)
	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range adj[ptr[v]:ptr[v+1]] {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}

	newID := make([]int32, n)
	for pos, v := range order {
		newID[v] = int32(pos)
	}
	return newID
}

// DegreeOrder returns a newID mapping that sorts vertices by descending
// in-degree, the ordering used when gTasks restrict uniq(dst-degree).
func DegreeOrder(g *Graph) []int32 {
	n := g.NumVertices
	deg := g.InDegrees()
	perm := make([]int32, n)
	for v := range perm {
		perm[v] = int32(v)
	}
	sort.SliceStable(perm, func(i, j int) bool { return deg[perm[i]] > deg[perm[j]] })
	newID := make([]int32, n)
	for pos, v := range perm {
		newID[v] = int32(pos)
	}
	return newID
}
