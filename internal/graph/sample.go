package graph

import (
	"wisegraph/internal/tensor"
)

// Subgraph is the result of neighbor sampling: a small graph over locally
// renumbered vertices plus the mapping back to the parent graph.
type Subgraph struct {
	Graph *Graph
	// Vertices maps local vertex id → parent vertex id. Seeds come first,
	// so Vertices[:NumSeeds] are the training targets of this mini-batch.
	Vertices []int32
	NumSeeds int
	// EdgeParent maps local edge index → parent edge index.
	EdgeParent []int32
}

// NeighborSample draws a GraphSAGE-style fan-out sample: starting from
// seeds, layer l samples up to fanouts[l] in-neighbors of every frontier
// vertex (without replacement when the neighborhood is small enough).
// The returned subgraph contains the union of sampled edges across layers,
// matching the paper's 20-15-10 sampling used to build PA-S and FS-S.
func NeighborSample(g *Graph, csr *CSR, seeds []int32, fanouts []int, rng *tensor.RNG) *Subgraph {
	local := make(map[int32]int32, len(seeds)*4)
	vertices := make([]int32, 0, len(seeds)*4)
	intern := func(v int32) int32 {
		if id, ok := local[v]; ok {
			return id
		}
		id := int32(len(vertices))
		local[v] = id
		vertices = append(vertices, v)
		return id
	}
	for _, s := range seeds {
		intern(s)
	}

	sub := &Graph{NumTypes: g.NumTypes}
	var edgeParent []int32
	frontier := append([]int32(nil), seeds...)
	for _, fan := range fanouts {
		nextFrontier := make([]int32, 0, len(frontier)*fan)
		seen := make(map[int32]struct{}, len(frontier)*fan)
		for _, v := range frontier {
			lo, hi := csr.RowPtr[v], csr.RowPtr[v+1]
			deg := int(hi - lo)
			take := fan
			if take > deg {
				take = deg
			}
			if take == 0 {
				continue
			}
			pick := samplePositions(deg, take, rng)
			for _, p := range pick {
				slot := lo + int32(p)
				src := csr.Col[slot]
				ls, ld := intern(src), intern(v)
				sub.Src = append(sub.Src, ls)
				sub.Dst = append(sub.Dst, ld)
				if g.Type != nil {
					sub.Type = append(sub.Type, csr.EType[slot])
				}
				edgeParent = append(edgeParent, csr.EdgeID[slot])
				if _, ok := seen[src]; !ok {
					seen[src] = struct{}{}
					nextFrontier = append(nextFrontier, src)
				}
			}
		}
		frontier = nextFrontier
	}
	sub.NumVertices = len(vertices)
	if sub.Type == nil {
		sub.NumTypes = 1
	}
	return &Subgraph{Graph: sub, Vertices: vertices, NumSeeds: len(seeds), EdgeParent: edgeParent}
}

// DetSample draws the deterministic neighbor sample of one vertex: up to
// fan in-edge CSR slots of v, chosen by a stateless RNG keyed on
// (seed, v, fan) alone. The same (vertex, fan, seed) triple always yields
// the same slots in the same order, regardless of which other vertices
// share the batch — the property the serving tier's leveled forward needs
// so a vertex's layer output is a pure function of the vertex, making
// per-vertex embedding caching sound. Slots are appended to dst.
func DetSample(dst []int32, csr *CSR, v int32, fan int, seed uint64) []int32 {
	lo, hi := csr.RowPtr[v], csr.RowPtr[v+1]
	deg := int(hi - lo)
	take := fan
	if take > deg {
		take = deg
	}
	if take == 0 {
		return dst
	}
	if take == deg {
		// Full neighborhood: no draw needed, slots in CSR order.
		for s := lo; s < hi; s++ {
			dst = append(dst, s)
		}
		return dst
	}
	rng := tensor.NewRNG(mix3(seed, uint64(v), uint64(fan)))
	for _, p := range samplePositions(deg, take, rng) {
		dst = append(dst, lo+int32(p))
	}
	return dst
}

// mix3 combines the sampling seed with a vertex id and fan-out into one
// well-spread 64-bit RNG seed (splitmix64-style finalization).
func mix3(seed, v, fan uint64) uint64 {
	h := seed ^ (v+1)*0x9e3779b97f4a7c15 ^ (fan+1)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// samplePositions returns take distinct positions in [0, n). For small
// oversampling ratios it uses partial Fisher–Yates; when take == n it
// returns everything.
func samplePositions(n, take int, rng *tensor.RNG) []int {
	if take >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < take; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:take]
}

// GatherFeatures copies parent-graph vertex features into a tensor aligned
// with the subgraph's local vertex ids.
func (s *Subgraph) GatherFeatures(parent *tensor.Tensor) *tensor.Tensor {
	return tensor.GatherRows(nil, parent, s.Vertices)
}

// GatherLabels copies parent labels into a local label slice.
func (s *Subgraph) GatherLabels(parent []int32) []int32 {
	out := make([]int32, len(s.Vertices))
	for i, v := range s.Vertices {
		out[i] = parent[v]
	}
	return out
}
