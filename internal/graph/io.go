package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the graph as an edge list: a metadata comment, a header
// line, then one `src,dst,type` row per edge — the format cmd/wggen emits
// and ReadCSV parses.
func (g *Graph) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d types=%d\n", g.NumVertices, g.NumEdges(), g.NumTypes)
	fmt.Fprintln(bw, "src,dst,type")
	for e := 0; e < g.NumEdges(); e++ {
		fmt.Fprintf(bw, "%d,%d,%d\n", g.Src[e], g.Dst[e], g.EdgeType(e))
	}
	return bw.Flush()
}

// maxDeclaredVertices bounds the vertex count a CSV header may declare
// (int32 ids cap the usable range anyway).
const maxDeclaredVertices = 1 << 31

// ReadCSV parses an edge-list CSV (as written by WriteCSV / cmd/wggen):
// optional `#`-comment lines, an optional header, then `src,dst[,type]`
// rows. The vertex count is the metadata value if present, else
// max(id)+1; the type column is optional.
func ReadCSV(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	g := &Graph{NumTypes: 1}
	metaVertices := -1
	lineNo := 0
	sawType := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(line[1:]) {
				if v, ok := strings.CutPrefix(field, "vertices="); ok {
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("graph: line %d: bad vertices metadata %q", lineNo, v)
					}
					// Bound the declared size: downstream consumers
					// allocate O(V) arrays, so an absurd header must be
					// an error, not an out-of-memory.
					if n < 0 || n > maxDeclaredVertices {
						return nil, fmt.Errorf("graph: line %d: vertices metadata %d out of range [0,%d]", lineNo, n, maxDeclaredVertices)
					}
					metaVertices = n
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least src,dst", lineNo)
		}
		// header?
		if _, err := strconv.Atoi(strings.TrimSpace(parts[0])); err != nil {
			if g.NumEdges() == 0 {
				continue // header line
			}
			return nil, fmt.Errorf("graph: line %d: bad src %q", lineNo, parts[0])
		}
		src, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil || src < 0 || src >= maxDeclaredVertices {
			return nil, fmt.Errorf("graph: line %d: bad src %q", lineNo, parts[0])
		}
		dst, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || dst < 0 || dst >= maxDeclaredVertices {
			return nil, fmt.Errorf("graph: line %d: bad dst %q", lineNo, parts[1])
		}
		ty := 0
		if len(parts) >= 3 {
			ty, err = strconv.Atoi(strings.TrimSpace(parts[2]))
			if err != nil || ty < 0 || ty >= maxDeclaredVertices {
				return nil, fmt.Errorf("graph: line %d: bad type %q", lineNo, parts[2])
			}
			sawType = true
		}
		g.Src = append(g.Src, int32(src))
		g.Dst = append(g.Dst, int32(dst))
		g.Type = append(g.Type, int32(ty))
		if src >= g.NumVertices {
			g.NumVertices = src + 1
		}
		if dst >= g.NumVertices {
			g.NumVertices = dst + 1
		}
		if ty >= g.NumTypes {
			g.NumTypes = ty + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading CSV: %w", err)
	}
	if metaVertices > g.NumVertices {
		g.NumVertices = metaVertices
	}
	if !sawType {
		g.Type = nil
		g.NumTypes = 1
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
