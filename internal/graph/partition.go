package graph

import (
	"sort"

	"wisegraph/internal/tensor"
)

// LabelPropagationBlocks partitions vertices into k balanced blocks while
// reducing the edge cut, via size-constrained label propagation: vertices
// start in contiguous blocks and iteratively move to the block where most
// of their neighbors live, subject to a balance cap. This is the
// locality-optimized partition the multi-GPU baselines (ROC) and
// WiseGraph's distributed runtime use instead of raw contiguous blocks.
func LabelPropagationBlocks(g *Graph, k, iters int, seed uint64) []int32 {
	n := g.NumVertices
	if k < 1 {
		k = 1
	}
	block := make([]int32, n)
	for v := range block {
		block[v] = int32(v * k / n)
	}
	if k == 1 || n == 0 {
		return block
	}
	sizes := make([]int, k)
	for _, b := range block {
		sizes[b]++
	}
	capSize := n/k + n/(4*k) + 1 // ≤ 25% imbalance

	// undirected adjacency
	deg := make([]int32, n)
	for e := range g.Src {
		deg[g.Src[e]]++
		deg[g.Dst[e]]++
	}
	ptr := make([]int32, n+1)
	for v := 0; v < n; v++ {
		ptr[v+1] = ptr[v] + deg[v]
	}
	adj := make([]int32, 2*len(g.Src))
	next := append([]int32(nil), ptr[:n]...)
	for e := range g.Src {
		s, d := g.Src[e], g.Dst[e]
		adj[next[s]] = d
		next[s]++
		adj[next[d]] = s
		next[d]++
	}

	rng := tensor.NewRNG(seed ^ 0x1ab)
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		// random visit order each sweep
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		moved := 0
		for _, v := range order {
			lo, hi := ptr[v], ptr[v+1]
			if lo == hi {
				continue
			}
			for b := range counts {
				counts[b] = 0
			}
			for _, u := range adj[lo:hi] {
				counts[block[u]]++
			}
			cur := block[v]
			best := cur
			for b, c := range counts {
				if int32(b) == cur {
					continue
				}
				if c > counts[best] && sizes[b] < capSize {
					best = int32(b)
				}
			}
			if best != cur && counts[best] > counts[cur] {
				sizes[cur]--
				sizes[best]++
				block[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return block
}

// EdgeCut counts edges whose endpoints live in different blocks.
func EdgeCut(g *Graph, block []int32) int {
	cut := 0
	for e := range g.Src {
		if block[g.Src[e]] != block[g.Dst[e]] {
			cut++
		}
	}
	return cut
}

// BlocksToRelabel converts a block assignment into a vertex renumbering
// that makes each block contiguous (block-major, original order within a
// block) — how a partitioned graph is laid out for the distributed
// engine, and a locality reorder in its own right.
func BlocksToRelabel(block []int32) []int32 {
	n := len(block)
	perm := make([]int32, n)
	for v := range perm {
		perm[v] = int32(v)
	}
	sort.SliceStable(perm, func(i, j int) bool { return block[perm[i]] < block[perm[j]] })
	newID := make([]int32, n)
	for pos, v := range perm {
		newID[v] = int32(pos)
	}
	return newID
}
