package graph

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	g := diamond()
	var sb strings.Builder
	if err := g.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices != g.NumVertices || back.NumEdges() != g.NumEdges() || back.NumTypes != g.NumTypes {
		t.Fatalf("round trip changed sizes: %v vs %v", back, g)
	}
	for e := range g.Src {
		if back.Src[e] != g.Src[e] || back.Dst[e] != g.Dst[e] || back.Type[e] != g.Type[e] {
			t.Fatalf("edge %d changed", e)
		}
	}
}

func TestReadCSVUntypedAndHeaderless(t *testing.T) {
	g, err := ReadCSV(strings.NewReader("0,1\n1,2\n2,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 3 || g.NumEdges() != 3 || g.Type != nil || g.NumTypes != 1 {
		t.Fatalf("untyped parse wrong: %v", g)
	}
}

func TestReadCSVMetadataVertexCount(t *testing.T) {
	// metadata declares more vertices than appear in edges (isolated tail)
	g, err := ReadCSV(strings.NewReader("# vertices=10 edges=1 types=1\nsrc,dst,type\n0,1,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 10 {
		t.Fatalf("vertices = %d, want 10", g.NumVertices)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"0\n",        // too few columns
		"0,x\n",      // bad dst
		"0,1,-2\n",   // negative type
		"0,1\nx,2\n", // bad src after data started
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}
