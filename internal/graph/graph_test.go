package graph

import (
	"testing"
	"testing/quick"

	"wisegraph/internal/tensor"
)

// diamond returns a small typed test graph:
//
//	0 →a 2, 1 →a 2, 1 →b 3, 2 →b 3, 0 →a 3
func diamond() *Graph {
	return &Graph{
		NumVertices: 4,
		NumTypes:    2,
		Src:         []int32{0, 1, 1, 2, 0},
		Dst:         []int32{2, 2, 3, 3, 3},
		Type:        []int32{0, 0, 1, 1, 0},
	}
}

func TestValidateOK(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadEdges(t *testing.T) {
	g := diamond()
	g.Dst[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("expected out-of-range dst error")
	}
	g = diamond()
	g.Type[0] = 5
	if err := g.Validate(); err == nil {
		t.Fatal("expected out-of-range type error")
	}
	g = diamond()
	g.Src = g.Src[:3]
	if err := g.Validate(); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestDegrees(t *testing.T) {
	g := diamond()
	in := g.InDegrees()
	out := g.OutDegrees()
	wantIn := []int32{0, 0, 2, 3}
	wantOut := []int32{2, 2, 1, 0}
	for v := 0; v < 4; v++ {
		if in[v] != wantIn[v] || out[v] != wantOut[v] {
			t.Fatalf("degrees v%d: in=%d out=%d, want %d/%d", v, in[v], out[v], wantIn[v], wantOut[v])
		}
	}
	if g.MaxInDegree() != 3 {
		t.Fatalf("MaxInDegree = %d", g.MaxInDegree())
	}
	if g.AvgDegree() != 5.0/4.0 {
		t.Fatalf("AvgDegree = %v", g.AvgDegree())
	}
}

func TestBuildCSRByDst(t *testing.T) {
	g := diamond()
	csr := g.BuildCSRByDst()
	if len(csr.RowPtr) != 5 {
		t.Fatalf("RowPtr length %d", len(csr.RowPtr))
	}
	// vertex 2 in-edges: from 0 (type a) and 1 (type a), original order
	if csr.RowPtr[2] != 0 || csr.RowPtr[3] != 2 || csr.RowPtr[4] != 5 {
		t.Fatalf("RowPtr = %v", csr.RowPtr)
	}
	if csr.Col[0] != 0 || csr.Col[1] != 1 {
		t.Fatalf("vertex 2 sources = %v", csr.Col[:2])
	}
	// every CSR slot must point at a consistent COO edge
	for v := 0; v < 4; v++ {
		for s := csr.RowPtr[v]; s < csr.RowPtr[v+1]; s++ {
			e := csr.EdgeID[s]
			if g.Dst[e] != int32(v) || g.Src[e] != csr.Col[s] || g.Type[e] != csr.EType[s] {
				t.Fatalf("CSR slot %d inconsistent with COO edge %d", s, e)
			}
		}
	}
}

func TestSortEdgesKeepsAlignment(t *testing.T) {
	g := diamond()
	g.SortEdges(func(a, b int) bool { return g.Type[a] < g.Type[b] })
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for e := 1; e < g.NumEdges(); e++ {
		if g.Type[e-1] > g.Type[e] {
			t.Fatalf("edges not sorted by type: %v", g.Type)
		}
	}
	// Multiset of (src,dst,type) must be preserved: count type-a edges into 3.
	count := 0
	for e := range g.Src {
		if g.Dst[e] == 3 && g.Type[e] == 0 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("edge multiset changed (count=%d)", count)
	}
}

func TestRelabelVertices(t *testing.T) {
	g := diamond()
	// reverse ids
	newID := []int32{3, 2, 1, 0}
	g.RelabelVertices(newID)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Src[0] != 3 || g.Dst[0] != 1 {
		t.Fatalf("relabel wrong: edge0 = %d→%d", g.Src[0], g.Dst[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.Src[0] = 3
	if g.Src[0] == 3 {
		t.Fatal("clone shares storage")
	}
}

func TestClusterReorderIsPermutation(t *testing.T) {
	g := diamond()
	newID := ClusterReorder(g)
	seen := make([]bool, len(newID))
	for _, id := range newID {
		if id < 0 || int(id) >= len(newID) || seen[id] {
			t.Fatalf("not a permutation: %v", newID)
		}
		seen[id] = true
	}
	g.RelabelVertices(newID)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeOrderSortsByInDegree(t *testing.T) {
	g := diamond()
	newID := DegreeOrder(g)
	// vertex 3 (deg 3) must get id 0, vertex 2 (deg 2) id 1
	if newID[3] != 0 || newID[2] != 1 {
		t.Fatalf("degree order = %v", newID)
	}
}

func TestNeighborSampleRespectsFanout(t *testing.T) {
	// star: many sources into vertex 0
	n := 50
	g := &Graph{NumVertices: n, NumTypes: 1}
	for i := 1; i < n; i++ {
		g.Src = append(g.Src, int32(i))
		g.Dst = append(g.Dst, 0)
	}
	csr := g.BuildCSRByDst()
	rng := tensor.NewRNG(7)
	sub := NeighborSample(g, csr, []int32{0}, []int{5}, rng)
	if sub.Graph.NumEdges() != 5 {
		t.Fatalf("sampled %d edges, want 5", sub.Graph.NumEdges())
	}
	if sub.NumSeeds != 1 || sub.Vertices[0] != 0 {
		t.Fatalf("seed bookkeeping wrong: %+v", sub)
	}
	// sampled sources must be distinct
	seen := map[int32]bool{}
	for _, s := range sub.Graph.Src {
		parent := sub.Vertices[s]
		if seen[parent] {
			t.Fatalf("duplicate sampled neighbor %d", parent)
		}
		seen[parent] = true
	}
	if err := sub.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborSampleMultiHop(t *testing.T) {
	// chain 3→2→1→0; sampling 2 hops from 0 must reach vertex 2
	g := &Graph{NumVertices: 4, NumTypes: 1, Src: []int32{3, 2, 1}, Dst: []int32{2, 1, 0}}
	csr := g.BuildCSRByDst()
	sub := NeighborSample(g, csr, []int32{0}, []int{1, 1}, tensor.NewRNG(1))
	if sub.Graph.NumEdges() != 2 {
		t.Fatalf("sampled %d edges, want 2", sub.Graph.NumEdges())
	}
	found := false
	for _, v := range sub.Vertices {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("2-hop neighbor not reached")
	}
}

func TestSubgraphGatherFeaturesAndLabels(t *testing.T) {
	g := &Graph{NumVertices: 3, NumTypes: 1, Src: []int32{1, 2}, Dst: []int32{0, 0}}
	csr := g.BuildCSRByDst()
	sub := NeighborSample(g, csr, []int32{0}, []int{2}, tensor.NewRNG(1))
	feat := tensor.FromSlice([]float32{10, 11, 12}, 3, 1)
	local := sub.GatherFeatures(feat)
	for i, v := range sub.Vertices {
		if local.At(i, 0) != feat.At(int(v), 0) {
			t.Fatalf("feature gather wrong at %d", i)
		}
	}
	labels := sub.GatherLabels([]int32{7, 8, 9})
	for i, v := range sub.Vertices {
		if labels[i] != []int32{7, 8, 9}[v] {
			t.Fatalf("label gather wrong at %d", i)
		}
	}
}

// Property: CSR round-trips the COO edge multiset for random graphs.
func TestPropCSRConsistency(t *testing.T) {
	f := func(seed uint64, vSmall, eSmall uint8) bool {
		v := int(vSmall%20) + 2
		e := int(eSmall%60) + 1
		rng := tensor.NewRNG(seed)
		g := &Graph{NumVertices: v, NumTypes: 3}
		for i := 0; i < e; i++ {
			g.Src = append(g.Src, int32(rng.Intn(v)))
			g.Dst = append(g.Dst, int32(rng.Intn(v)))
			g.Type = append(g.Type, int32(rng.Intn(3)))
		}
		csr := g.BuildCSRByDst()
		if int(csr.RowPtr[v]) != e {
			return false
		}
		for vtx := 0; vtx < v; vtx++ {
			for s := csr.RowPtr[vtx]; s < csr.RowPtr[vtx+1]; s++ {
				eid := csr.EdgeID[s]
				if g.Dst[eid] != int32(vtx) || g.Src[eid] != csr.Col[s] || g.Type[eid] != csr.EType[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
