package dataset

import (
	"testing"
)

func TestSpecsMatchPaperTable1(t *testing.T) {
	// Spot-check the paper's Table 1 metadata.
	cases := []struct {
		name    string
		dim     int
		classes int
	}{
		{"AR", 128, 40},
		{"PR", 100, 47},
		{"RE", 602, 41},
		{"PA-S", 128, 172},
		{"FS-S", 384, 64},
		{"PA", 128, 172},
		{"FS", 384, 64},
	}
	for _, c := range cases {
		s, err := SpecByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Dim != c.dim || s.Classes != c.classes {
			t.Fatalf("%s: dim=%d classes=%d, want %d/%d", c.name, s.Dim, s.Classes, c.dim, c.classes)
		}
	}
	if _, err := SpecByName("NOPE"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestMultiGPUGrouping(t *testing.T) {
	for _, name := range []string{"PA", "FS"} {
		s, _ := SpecByName(name)
		if !s.MultiGPU {
			t.Fatalf("%s must be in the multi-GPU group", name)
		}
	}
	for _, name := range []string{"AR", "PR", "RE"} {
		s, _ := SpecByName(name)
		if s.MultiGPU {
			t.Fatalf("%s must be in the single-GPU group", name)
		}
	}
}

func TestLoadProducesConsistentDataset(t *testing.T) {
	ds, err := Load("AR", Options{Scale: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := ds.Graph.NumVertices
	if v < 64 {
		t.Fatalf("too few vertices: %d", v)
	}
	if err := ds.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Features.Dim(0) != v || ds.Features.Dim(1) != 128 {
		t.Fatalf("feature shape %v", ds.Features.Shape())
	}
	if len(ds.Labels) != v {
		t.Fatalf("labels length %d", len(ds.Labels))
	}
	for _, l := range ds.Labels {
		if l < 0 || int(l) >= ds.Classes() {
			t.Fatalf("label %d out of range", l)
		}
	}
	// splits are disjoint and cover all vertices
	seen := make([]int, v)
	for _, m := range [][]int32{ds.TrainMask, ds.ValMask, ds.TestMask} {
		for _, x := range m {
			seen[x]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d appears %d times across splits", i, c)
		}
	}
	if len(ds.TrainMask) <= len(ds.ValMask) {
		t.Fatalf("train split should dominate: %d vs %d", len(ds.TrainMask), len(ds.ValMask))
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, _ := Load("PA-S", Options{Scale: 500, Seed: 7})
	b, _ := Load("PA-S", Options{Scale: 500, Seed: 7})
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("edge counts differ for identical options")
	}
	for e := range a.Graph.Src {
		if a.Graph.Src[e] != b.Graph.Src[e] {
			t.Fatal("graphs differ for identical options")
		}
	}
	for i := range a.Features.Data() {
		if a.Features.Data()[i] != b.Features.Data()[i] {
			t.Fatal("features differ for identical options")
		}
	}
}

func TestFeatureDimOverride(t *testing.T) {
	ds, _ := Load("RE", Options{Scale: 2000, FeatureDim: 16, Seed: 1})
	if ds.Dim() != 16 {
		t.Fatalf("dim = %d, want 16", ds.Dim())
	}
}

func TestDefaultScaleBounded(t *testing.T) {
	for _, s := range Specs {
		sc := DefaultScale(s)
		if sc < 1 {
			t.Fatalf("%s: scale %d", s.Name, sc)
		}
		edges := s.Edges / sc
		if edges > 200_000 {
			t.Fatalf("%s: default scale leaves %d edges (too many for CPU benches)", s.Name, edges)
		}
	}
}

func TestFeaturesAreClassSeparable(t *testing.T) {
	// Features are planted as class centers + noise: the mean intra-class
	// feature distance must be smaller than the inter-class distance.
	ds, _ := Load("AR", Options{Scale: 500, FeatureDim: 32, Seed: 3})
	v := ds.Graph.NumVertices
	dim := ds.Dim()
	classes := ds.Classes()
	mean := make([][]float64, classes)
	count := make([]int, classes)
	for c := range mean {
		mean[c] = make([]float64, dim)
	}
	for i := 0; i < v; i++ {
		c := ds.Labels[i]
		count[c]++
		row := ds.Features.Row(i)
		for j, x := range row {
			mean[c][j] += float64(x)
		}
	}
	nonEmpty := 0
	for c := range mean {
		if count[c] == 0 {
			continue
		}
		nonEmpty++
		for j := range mean[c] {
			mean[c][j] /= float64(count[c])
		}
	}
	if nonEmpty < 2 {
		t.Skip("degenerate class distribution at this scale")
	}
	// distance between two non-empty class means must exceed zero clearly
	var c1, c2 = -1, -1
	for c := range mean {
		if count[c] > 0 {
			if c1 < 0 {
				c1 = c
			} else {
				c2 = c
				break
			}
		}
	}
	var dist float64
	for j := 0; j < dim; j++ {
		d := mean[c1][j] - mean[c2][j]
		dist += d * d
	}
	if dist < 1e-3 {
		t.Fatalf("class means indistinguishable (d²=%v)", dist)
	}
}
