// Package dataset materializes the seven evaluation datasets from the
// paper's Table 1 as scaled synthetic replicas (the real OGB data cannot be
// downloaded in this environment; see DESIGN.md for the substitution
// rationale). Each dataset keeps the paper's feature dimension, class
// count, density regime and degree skew, with vertex/edge counts divided
// by a configurable scale factor so experiments run on CPU.
package dataset

import (
	"fmt"
	"sort"

	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/tensor"
)

// Spec describes a dataset before materialization.
type Spec struct {
	Name     string
	Vertices int // paper-scale vertex count
	Edges    int // paper-scale edge count
	Dim      int // input embedding dimension (paper Table 1)
	Classes  int // classification classes (paper Table 1)
	Kind     gen.Kind
	Skew     float64
	NumTypes int  // edge types for RGCN workloads
	MultiGPU bool // paper places it in the multi-GPU group
}

// Specs lists the paper's Table 1 datasets.
var Specs = []Spec{
	{Name: "AR", Vertices: 169_000, Edges: 2_300_000, Dim: 128, Classes: 40, Kind: gen.PowerLaw, Skew: 0.9, NumTypes: 8},
	{Name: "PR", Vertices: 2_400_000, Edges: 123_000_000, Dim: 100, Classes: 47, Kind: gen.PowerLaw, Skew: 1.1, NumTypes: 8},
	{Name: "RE", Vertices: 233_000, Edges: 114_000_000, Dim: 602, Classes: 41, Kind: gen.PowerLaw, Skew: 1.2, NumTypes: 4},
	{Name: "PA-S", Vertices: 1_200_000, Edges: 1_500_000, Dim: 128, Classes: 172, Kind: gen.SampledFanout, Skew: 0.3, NumTypes: 8},
	{Name: "FS-S", Vertices: 1_400_000, Edges: 1_600_000, Dim: 384, Classes: 64, Kind: gen.SampledFanout, Skew: 0.3, NumTypes: 4},
	{Name: "PA", Vertices: 111_000_000, Edges: 1_600_000_000, Dim: 128, Classes: 172, Kind: gen.RMAT, Skew: 0.9, NumTypes: 8, MultiGPU: true},
	{Name: "FS", Vertices: 66_000_000, Edges: 3_600_000_000, Dim: 384, Classes: 64, Kind: gen.RMAT, Skew: 1.0, NumTypes: 4, MultiGPU: true},
}

// SpecByName returns the spec for a dataset name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Options control materialization.
type Options struct {
	// Scale divides the paper-scale vertex and edge counts. The default
	// (0) picks a per-dataset factor that yields a few tens of thousands
	// of edges — large enough for partition statistics to be meaningful,
	// small enough for CPU benches.
	Scale int
	// FeatureDim overrides the paper dimension (0 keeps it).
	FeatureDim int
	Seed       uint64
	// Homophily is the fraction of intra-community edges used to make
	// planted labels learnable. Default 0.7.
	Homophily float64
	// FeatureNoise scales the per-vertex noise around class centers
	// (default 1.4). Lower values make the task easier; accuracy
	// experiments use ~0.8 to land in the paper's 50–70% band.
	FeatureNoise float64
}

// Dataset is a materialized dataset: graph, input features, labels, and
// train/val/test splits.
type Dataset struct {
	Spec      Spec
	Scale     int
	Graph     *graph.Graph
	Features  *tensor.Tensor // [V, Dim]
	Labels    []int32        // [V]
	TrainMask []int32        // vertex ids
	ValMask   []int32
	TestMask  []int32
}

// Dim returns the materialized feature dimension.
func (d *Dataset) Dim() int { return d.Features.Dim(1) }

// Classes returns the class count.
func (d *Dataset) Classes() int { return d.Spec.Classes }

// DefaultScale returns the default scale divisor for a spec so every
// dataset materializes to roughly bench-sized graphs.
func DefaultScale(s Spec) int {
	const targetEdges = 60_000
	sc := s.Edges / targetEdges
	if sc < 1 {
		sc = 1
	}
	return sc
}

// Load materializes the named dataset.
func Load(name string, opts Options) (*Dataset, error) {
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	return Materialize(spec, opts), nil
}

// Materialize builds a dataset from its spec.
func Materialize(spec Spec, opts Options) *Dataset {
	scale := opts.Scale
	if scale <= 0 {
		scale = DefaultScale(spec)
	}
	v := spec.Vertices / scale
	// Floor the vertex count: scaling V and E by the same factor keeps
	// the degree distribution but collapses very dense graphs (RE) into
	// near-complete multigraphs whose adjacency structure is degenerate.
	// A floor keeps the adjacency sparse while the degree skew survives.
	if floor := min(spec.Vertices, 2000); v < floor {
		v = floor
	}
	e := spec.Edges / scale
	if e < 4*v {
		// keep density at least moderate so layers have work; sampled
		// datasets (PA-S, FS-S) intentionally stay sparse
		if spec.Kind != gen.Uniform && spec.Kind != gen.SampledFanout {
			e = 4 * v
		} else if e < v {
			e = v
		}
	}
	hom := opts.Homophily
	if hom == 0 {
		hom = 0.7
	}
	res := gen.Generate(gen.Config{
		NumVertices: v,
		NumEdges:    e,
		Kind:        spec.Kind,
		Skew:        spec.Skew,
		NumTypes:    spec.NumTypes,
		NumBlocks:   spec.Classes,
		Homophily:   hom,
		Seed:        opts.Seed ^ hashName(spec.Name),
	})

	dim := spec.Dim
	if opts.FeatureDim > 0 {
		dim = opts.FeatureDim
	}
	rng := tensor.NewRNG(opts.Seed ^ hashName(spec.Name) ^ 0xfeed)
	noise := opts.FeatureNoise
	if noise == 0 {
		noise = 1.4
	}
	v = res.Graph.NumVertices // generators may round layer sizes
	ds := &Dataset{Spec: spec, Scale: scale, Graph: res.Graph}
	ds.Labels = res.Block
	ds.Features = plantFeatures(v, dim, spec.Classes, res.Block, noise, rng)
	ds.TrainMask, ds.ValMask, ds.TestMask = split(v, rng)
	return ds
}

// plantFeatures builds class-conditioned features: each class has a random
// center; vertex features are center + noise, so a GNN that denoises over
// homophilous neighborhoods can recover the label.
func plantFeatures(v, dim, classes int, label []int32, noise float64, rng *tensor.RNG) *tensor.Tensor {
	centers := tensor.New(classes, dim)
	tensor.Uniform(centers, rng, -1, 1)
	feat := tensor.New(v, dim)
	for i := 0; i < v; i++ {
		c := centers.Row(int(label[i]))
		row := feat.Row(i)
		for j := range row {
			row[j] = c[j] + float32(noise*rng.NormFloat64())
		}
	}
	return feat
}

// split partitions vertices 60/20/20 into train/val/test deterministically.
func split(v int, rng *tensor.RNG) (train, val, test []int32) {
	perm := make([]int32, v)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := v - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	nTrain := v * 6 / 10
	nVal := v * 2 / 10
	train = sortedCopy(perm[:nTrain])
	val = sortedCopy(perm[nTrain : nTrain+nVal])
	test = sortedCopy(perm[nTrain+nVal:])
	return train, val, test
}

func sortedCopy(xs []int32) []int32 {
	out := append([]int32(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
