// Package opt implements WiseGraph's DFG transformations (paper §5.2),
// driven by the gTask-level duplicated-data pattern:
//
//   - unique value extraction (Figure 8a): an indexing operation over a
//     duplicated attribute is decomposed into a gather of the attribute's
//     unique values followed by a mapping gather, exposing the unique data
//     on the DFG;
//   - indexing swapping (Figure 8b): a rowwise neural operation consuming
//     an indexing operation's output is re-ordered to run on the indexing
//     operation's *input*, so the computation happens once per unique
//     value instead of once per edge. Two indexed inputs merge into an
//     Index-2D over an all-pairs (OuterMM) computation.
//
// Transform generates the chain of candidate DFGs these rules produce
// (paper Figure 9 steps a→e); SelectBest picks the cheapest under the
// workload cost model for a given gTask's statistics.
package opt

import (
	"strings"

	"wisegraph/internal/core"
	"wisegraph/internal/dfg"
)

// Info carries what the transformations need to know about the graph
// partition plan: which edge attribute each index key reads, and which
// attributes the gTask pattern marks as duplicated (uniq(attr) < edges).
type Info struct {
	AttrOf map[string]core.Attr
	Dup    map[string]bool
}

// MaxSwapSteps caps the indexing-swapping fixpoint iteration.
const MaxSwapSteps = 8

// Transform returns the candidate DFG chain: the original, the DFG after
// unique-value extraction, and one candidate per indexing-swapping step.
// Candidates share no mutable state with g.
func Transform(g *dfg.Graph, info Info) []*dfg.Graph {
	candidates := []*dfg.Graph{g}
	cur := ExtractUnique(g, info)
	if cur != nil {
		candidates = append(candidates, cur)
	} else {
		cur = g
	}
	for step := 0; step < MaxSwapSteps; step++ {
		next := cur.Clone()
		if !swapOnce(next, info) {
			break
		}
		next.Prune()
		candidates = append(candidates, next)
		cur = next
	}
	return candidates
}

// SelectBest returns the candidate with the least modeled FLOPs+bytes time
// proxy for the given stats, together with its workload.
func SelectBest(candidates []*dfg.Graph, stats dfg.TaskStats) (*dfg.Graph, dfg.Workload) {
	best := candidates[0]
	bestW := best.Cost(stats)
	bestScore := score(bestW)
	for _, c := range candidates[1:] {
		w := c.Cost(stats)
		if s := score(w); s < bestScore {
			best, bestW, bestScore = c, w, s
		}
	}
	return best, bestW
}

// score is a simple device-free proxy: FLOPs weighted by a nominal 10
// FLOP/byte balance so pure data movement is not free.
func score(w dfg.Workload) float64 { return w.FLOPs + 10*w.Bytes }

// ExtractUnique applies unique-value extraction to every Index node whose
// key is marked duplicated. Returns nil if nothing applied.
func ExtractUnique(g *dfg.Graph, info Info) *dfg.Graph {
	out := g.Clone()
	applied := false
	for _, n := range out.Nodes {
		if n.Kind != dfg.OpIndex || strings.Contains(n.IdxKey, ".") {
			continue
		}
		if !info.Dup[n.IdxKey] {
			continue
		}
		attr, ok := info.AttrOf[n.IdxKey]
		if !ok {
			continue
		}
		// n: Index(data, key) becomes Index(Index(data, key.unique),
		// key.map). Mutate n into the outer map-gather and splice a new
		// inner unique-gather before it. To keep g.Nodes topologically
		// ordered we re-purpose n as the outer node and insert the inner
		// node just before it in the slice.
		inner := &dfg.Node{
			Kind:   dfg.OpIndex,
			Inputs: []*dfg.Node{n.Inputs[0]},
			IdxKey: n.IdxKey + ".unique",
			Rows:   dfg.Card{Kind: dfg.CardUniq, Attr: attr},
			Cols:   append([]int(nil), n.Cols...),
		}
		n.Inputs = []*dfg.Node{inner}
		n.IdxKey = n.IdxKey + ".map"
		insertBefore(out, inner, n)
		applied = true
	}
	if !applied {
		return nil
	}
	return out
}

// insertBefore splices newNode into g.Nodes immediately before anchor and
// assigns it a fresh id.
func insertBefore(g *dfg.Graph, newNode, anchor *dfg.Node) {
	maxID := 0
	for _, n := range g.Nodes {
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	newNode.ID = maxID + 1
	for i, n := range g.Nodes {
		if n == anchor {
			g.Nodes = append(g.Nodes[:i], append([]*dfg.Node{newNode}, g.Nodes[i:]...)...)
			return
		}
	}
	g.Nodes = append(g.Nodes, newNode)
}

// swapOnce applies the first applicable indexing swap in topological order
// and reports whether anything changed. The graph is mutated in place.
func swapOnce(g *dfg.Graph, info Info) bool {
	consumers := g.Consumers()
	single := func(n *dfg.Node) bool { return len(consumers[n]) == 1 }
	// Rule 3 (highest priority): linear–aggregation commutation.
	// IndexAdd(Linear(x, W)) ≡ Linear(IndexAdd(x), W) because summation
	// commutes with a shared linear map; the Linear then runs once per
	// unique destination instead of once per edge. This is the rewrite
	// behind the paper's SAGE result on PA-S (fewer destinations than
	// sources, Figure 17b). It dominates hoisting the Linear to the
	// source side, since uniq(dst) ≤ |V| always.
	for _, op := range g.Nodes {
		if op.Kind != dfg.OpIndexAdd {
			continue
		}
		lin := op.Inputs[0]
		if lin.Kind != dfg.OpLinear || !single(lin) || lin.Inputs[1].Kind.IsIndexing() {
			continue
		}
		swapLinearAgg(op, lin)
		return true
	}
	for _, op := range g.Nodes {
		if !op.Kind.Rowwise() {
			continue
		}
		switch op.Kind {
		case dfg.OpLinear, dfg.OpReLU, dfg.OpLeakyReLU, dfg.OpTanh, dfg.OpSigmoid:
			// Unary-in-data rowwise op over an Index: OP(Index(A), …) →
			// Index(OP(A, …)). For Linear the weight input must not be
			// edge-indexed (it is a shared parameter).
			idx := op.Inputs[0]
			if idx.Kind != dfg.OpIndex || !single(idx) {
				continue
			}
			if op.Kind == dfg.OpLinear && op.Inputs[1].Kind.IsIndexing() {
				continue
			}
			swapUnary(op, idx)
			return true
		case dfg.OpEWAdd, dfg.OpEWMul:
			a, b := op.Inputs[0], op.Inputs[1]
			if a.Kind == dfg.OpIndex && b.Kind == dfg.OpIndex && a.IdxKey == b.IdxKey &&
				single(a) && single(b) && a != b {
				// OP(Index(A,k), Index(B,k)) → Index(OP(A,B), k).
				swapBinarySameKey(g, op, a, b)
				return true
			}
		case dfg.OpBMM:
			a, b := op.Inputs[0], op.Inputs[1]
			if a.Kind != dfg.OpIndex || b.Kind != dfg.OpIndex || !single(a) || !single(b) || a == b {
				continue
			}
			if a.IdxKey == b.IdxKey {
				swapBinarySameKey(g, op, a, b)
				return true
			}
			// The pair merge is only generated over unique-extracted
			// inputs (".map" keys): the OuterMM output then has
			// uniq(A)×uniq(B) rows, which is what makes it profitable
			// and what CardUniqPair prices.
			if !strings.HasSuffix(a.IdxKey, ".map") || !strings.HasSuffix(b.IdxKey, ".map") {
				continue
			}
			attrA, okA := keyAttr(info, a.IdxKey)
			attrB, okB := keyAttr(info, b.IdxKey)
			if !okA || !okB {
				continue
			}
			// BMM(Index(A,kA), Index(C,kC)) → Index2D(OuterMM(A,C), kA, kC)
			// (paper Figure 8b): compute A⊗C once per unique pair, then
			// 2-D index the result.
			rowsOut := op.Rows
			colsOut := append([]int(nil), op.Cols...)
			fp := colsOut[len(colsOut)-1]
			dataA, dataC := a.Inputs[0], b.Inputs[0]
			kA, kC := a.IdxKey, b.IdxKey
			// a becomes the OuterMM node.
			a.Kind = dfg.OpOuterMM
			a.Inputs = []*dfg.Node{dataA, dataC}
			a.IdxKey = ""
			a.Rows = dfg.Card{Kind: dfg.CardUniqPair, Attr: attrA, Attr2: attrB}
			a.Cols = []int{fp}
			// op becomes the Index2D node.
			op.Kind = dfg.OpIndex2D
			op.Inputs = []*dfg.Node{a}
			op.IdxKey = kA
			op.IdxKey2 = kC
			op.Rows = rowsOut
			op.Cols = colsOut
			// b is now dead; Prune removes it.
			_ = b
			return true
		}
	}
	return false
}

// swapUnary re-orders OP(Index(A,k), rest…) into Index(OP(A, rest…), k) by
// role exchange: idx becomes the op (preserving topo order) and op becomes
// the index.
func swapUnary(op, idx *dfg.Node) {
	k := idx.IdxKey
	data := idx.Inputs[0]
	outRows := op.Rows
	outCols := append([]int(nil), op.Cols...)
	rest := append([]*dfg.Node(nil), op.Inputs[1:]...)

	idx.Kind = op.Kind
	idx.Inputs = append([]*dfg.Node{data}, rest...)
	idx.IdxKey = ""
	idx.Slope = op.Slope
	idx.Rows = data.Rows
	idx.Cols = outCols

	op.Kind = dfg.OpIndex
	op.Inputs = []*dfg.Node{idx}
	op.IdxKey = k
	op.Slope = 0
	op.Rows = outRows
	op.Cols = append([]int(nil), outCols...)
}

// swapLinearAgg re-orders IndexAdd(Linear(x, W)) into
// Linear(IndexAdd(x), W) by role exchange: lin becomes the IndexAdd
// (preserving topological order) and agg becomes the Linear.
func swapLinearAgg(agg, lin *dfg.Node) {
	x, w := lin.Inputs[0], lin.Inputs[1]
	outRows := agg.Rows
	outCols := append([]int(nil), agg.Cols...)
	idxKey, outKey := agg.IdxKey, agg.OutRowsKey

	lin.Kind = dfg.OpIndexAdd
	lin.Inputs = []*dfg.Node{x}
	lin.IdxKey = idxKey
	lin.OutRowsKey = outKey
	lin.Rows = outRows
	lin.Cols = append([]int(nil), x.Cols...)

	agg.Kind = dfg.OpLinear
	agg.Inputs = []*dfg.Node{lin, w}
	agg.IdxKey = ""
	agg.OutRowsKey = ""
	agg.Rows = outRows
	agg.Cols = outCols
}

// swapBinarySameKey re-orders OP(Index(A,k), Index(B,k)) into
// Index(OP(A,B), k), reusing a as the op node and op as the index node.
func swapBinarySameKey(g *dfg.Graph, op, a, b *dfg.Node) {
	k := a.IdxKey
	dataA, dataB := a.Inputs[0], b.Inputs[0]
	outRows := op.Rows
	outCols := append([]int(nil), op.Cols...)

	a.Kind = op.Kind
	a.Inputs = []*dfg.Node{dataA, dataB}
	a.IdxKey = ""
	a.Rows = dataA.Rows
	a.Cols = outCols

	op.Kind = dfg.OpIndex
	op.Inputs = []*dfg.Node{a}
	op.IdxKey = k
	op.Rows = outRows
	op.Cols = append([]int(nil), outCols...)
	_ = g
	_ = b // dead after rewrite; Prune removes it
}

// keyAttr resolves an index key (possibly a ".unique"/".map" derivative)
// to its base attribute.
func keyAttr(info Info, key string) (core.Attr, bool) {
	base := key
	if i := strings.IndexByte(key, '.'); i >= 0 {
		base = key[:i]
	}
	a, ok := info.AttrOf[base]
	return a, ok
}
