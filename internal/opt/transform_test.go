package opt

import (
	"math"
	"testing"
	"testing/quick"

	"wisegraph/internal/core"
	"wisegraph/internal/dfg"
	"wisegraph/internal/tensor"
)

// rgcnLayer builds the Figure 2(c) DFG.
func rgcnLayer(numV, numTypes, f, fp int) *dfg.Graph {
	g := &dfg.Graph{}
	h := g.Input("H", numV, f)
	w := g.Input("W", numTypes, f, fp)
	hs := g.Index(h, "src-id", dfg.Card{Kind: dfg.CardEdges})
	wt := g.Index(w, "edge-type", dfg.Card{Kind: dfg.CardEdges})
	msg := g.BMM(hs, wt)
	out := g.IndexAdd(msg, "dst-id", "num-dst", dfg.Card{Kind: dfg.CardUniq, Attr: core.AttrDstID})
	g.SetOutput(out)
	return g
}

// gcnLikeLayer: out[dst] += Linear(H[src], W) — the single-index pattern.
func gcnLikeLayer(numV, f, fp int) *dfg.Graph {
	g := &dfg.Graph{}
	h := g.Input("H", numV, f)
	w := g.Input("W", f, fp)
	hs := g.Index(h, "src-id", dfg.Card{Kind: dfg.CardEdges})
	lin := g.Linear(hs, w)
	out := g.IndexAdd(lin, "dst-id", "num-dst", dfg.Card{Kind: dfg.CardUniq, Attr: core.AttrDstID})
	g.SetOutput(out)
	return g
}

var rgcnInfo = Info{
	AttrOf: map[string]core.Attr{"src-id": core.AttrSrcID, "edge-type": core.AttrEdgeType, "dst-id": core.AttrDstID},
	Dup:    map[string]bool{"src-id": true, "edge-type": true},
}

// bindEnv builds an Env for any candidate DFG: raw attribute arrays plus
// the derived .unique/.map arrays the transformations introduce.
func bindEnv(numV, numTypes, f, fp int, src, typ, dst []int32, seed uint64) *dfg.Env {
	rng := tensor.NewRNG(seed)
	h := tensor.New(numV, f)
	tensor.Uniform(h, rng, -1, 1)
	w := tensor.New(numTypes, f, fp)
	tensor.Uniform(w, rng, -1, 1)
	env := &dfg.Env{
		Tensors: map[string]*tensor.Tensor{"H": h, "W": w},
		Indices: map[string][]int32{"src-id": src, "edge-type": typ, "dst-id": dst},
		Sizes:   map[string]int{"num-dst": numV},
	}
	for key, arr := range map[string][]int32{"src-id": src, "edge-type": typ} {
		u, m := dfg.UniqueExtract(arr)
		env.Indices[key+".unique"] = u
		env.Indices[key+".map"] = m
	}
	return env
}

func TestTransformChainShapeRGCN(t *testing.T) {
	g := rgcnLayer(6, 3, 4, 2)
	cands := Transform(g, rgcnInfo)
	// original + unique-extraction + at least one swap step
	if len(cands) < 3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	// The final candidate must contain an OuterMM feeding an Index2D
	// (paper Figure 9e) and no BMM.
	last := cands[len(cands)-1]
	var hasOuter, hasIdx2D, hasBMM bool
	for _, n := range last.Nodes {
		switch n.Kind {
		case dfg.OpOuterMM:
			hasOuter = true
		case dfg.OpIndex2D:
			hasIdx2D = true
		case dfg.OpBMM:
			hasBMM = true
		}
	}
	if !hasOuter || !hasIdx2D || hasBMM {
		t.Fatalf("final DFG wrong shape (outer=%v idx2d=%v bmm=%v):\n%s", hasOuter, hasIdx2D, hasBMM, last)
	}
}

func TestTransformCandidatesAllEquivalentRGCN(t *testing.T) {
	numV, numTypes, f, fp := 6, 3, 4, 2
	src := []int32{0, 0, 1, 2, 2, 2, 5}
	typ := []int32{0, 0, 0, 1, 1, 2, 0}
	dst := []int32{1, 2, 3, 3, 4, 4, 0}
	g := rgcnLayer(numV, numTypes, f, fp)
	env := bindEnv(numV, numTypes, f, fp, src, typ, dst, 42)
	want, err := g.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	cands := Transform(g, rgcnInfo)
	for ci, c := range cands {
		got, err := c.Eval(env)
		if err != nil {
			t.Fatalf("candidate %d: %v\n%s", ci, err, c)
		}
		if !got.SameShape(want) {
			t.Fatalf("candidate %d shape %v vs %v", ci, got.Shape(), want.Shape())
		}
		for i := range got.Data() {
			if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-4 {
				t.Fatalf("candidate %d differs at %d: %v vs %v\n%s", ci, i, got.Data()[i], want.Data()[i], c)
			}
		}
	}
}

func TestTransformReducesNeuralWorkloadWithDuplication(t *testing.T) {
	g := rgcnLayer(100, 4, 32, 16)
	// heavy duplication: 1000 edges but only 10 unique srcs, 1 type
	stats := dfg.TaskStats{Edges: 1000, Uniq: map[core.Attr]int{
		core.AttrSrcID: 10, core.AttrEdgeType: 1, core.AttrDstID: 50,
	}}
	cands := Transform(g, rgcnInfo)
	origW := g.Cost(stats)
	_, bestW := SelectBest(cands, stats)
	if bestW.NeuralFLOPs >= origW.NeuralFLOPs {
		t.Fatalf("transformation did not reduce neural work: %v vs %v", bestW.NeuralFLOPs, origW.NeuralFLOPs)
	}
	// Paper Figure 17: RGCN on AR reduces neural computation by ~92.7%.
	// With 10×1 unique pairs vs 1000 edges the reduction is 99%.
	reduction := 1 - bestW.NeuralFLOPs/origW.NeuralFLOPs
	if reduction < 0.9 {
		t.Fatalf("neural reduction = %.3f, want ≥ 0.9", reduction)
	}
}

func TestTransformKeepsOriginalWithoutDuplication(t *testing.T) {
	g := rgcnLayer(100, 4, 32, 16)
	// no duplication: every edge has a distinct src and type pair
	stats := dfg.TaskStats{Edges: 10, Uniq: map[core.Attr]int{
		core.AttrSrcID: 10, core.AttrEdgeType: 4, core.AttrDstID: 10,
	}}
	noDup := Info{AttrOf: rgcnInfo.AttrOf, Dup: map[string]bool{}}
	cands := Transform(g, noDup)
	if len(cands) != 1 {
		t.Fatalf("without duplication only the original should remain, got %d", len(cands))
	}
	best, _ := SelectBest(cands, stats)
	if best != g {
		t.Fatal("best must be the original DFG")
	}
}

func TestSelectBestPrefersOuterOnlyWhenPairsSmall(t *testing.T) {
	g := rgcnLayer(1000, 128, 32, 16)
	cands := Transform(g, rgcnInfo)
	// Case A: few unique pairs → outer wins.
	statsDup := dfg.TaskStats{Edges: 2000, Uniq: map[core.Attr]int{
		core.AttrSrcID: 20, core.AttrEdgeType: 1, core.AttrDstID: 100,
	}}
	bestA, _ := SelectBest(cands, statsDup)
	var hasOuterA bool
	for _, n := range bestA.Nodes {
		if n.Kind == dfg.OpOuterMM {
			hasOuterA = true
		}
	}
	if !hasOuterA {
		t.Fatal("duplication-heavy task should select the outer-product DFG")
	}
	// Case B: unique (src,type) pairs ≫ edges → the all-pairs outer
	// product wastes work on combinations no edge uses; the per-edge
	// original wins.
	statsUnique := dfg.TaskStats{Edges: 50, Uniq: map[core.Attr]int{
		core.AttrSrcID: 50, core.AttrEdgeType: 100, core.AttrDstID: 50,
	}}
	bestB, _ := SelectBest(cands, statsUnique)
	for _, n := range bestB.Nodes {
		if n.Kind == dfg.OpOuterMM {
			t.Fatal("unique-heavy task must not select the outer-product DFG")
		}
	}
}

func TestGCNSingleIndexSwap(t *testing.T) {
	numV, f, fp := 8, 5, 3
	g := gcnLikeLayer(numV, f, fp)
	info := Info{
		AttrOf: map[string]core.Attr{"src-id": core.AttrSrcID, "dst-id": core.AttrDstID},
		Dup:    map[string]bool{"src-id": true},
	}
	cands := Transform(g, info)
	if len(cands) < 3 {
		t.Fatalf("want ≥3 candidates, got %d", len(cands))
	}
	// Final DFG: Linear must now read H directly (rows = fixed V), i.e.
	// compute per unique vertex, not per edge.
	last := cands[len(cands)-1]
	for _, n := range last.Nodes {
		if n.Kind == dfg.OpLinear && n.Rows.Kind == dfg.CardEdges {
			t.Fatalf("Linear still per-edge after swap:\n%s", last)
		}
	}
	// Equivalence on data.
	src := []int32{1, 1, 1, 2, 7, 7}
	dst := []int32{0, 3, 3, 3, 5, 6}
	rng := tensor.NewRNG(9)
	h := tensor.New(numV, f)
	tensor.Uniform(h, rng, -1, 1)
	w := tensor.New(f, fp)
	tensor.Uniform(w, rng, -1, 1)
	env := &dfg.Env{
		Tensors: map[string]*tensor.Tensor{"H": h, "W": w},
		Indices: map[string][]int32{"src-id": src, "dst-id": dst},
		Sizes:   map[string]int{"num-dst": numV},
	}
	u, m := dfg.UniqueExtract(src)
	env.Indices["src-id.unique"] = u
	env.Indices["src-id.map"] = m
	want, err := g.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range cands {
		got, err := c.Eval(env)
		if err != nil {
			t.Fatalf("candidate %d: %v", ci, err)
		}
		for i := range got.Data() {
			if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-4 {
				t.Fatalf("candidate %d differs at %d", ci, i)
			}
		}
	}
}

// Property: transformation candidates are always numerically equivalent to
// the original RGCN DFG on random graphs and inputs.
func TestPropTransformEquivalence(t *testing.T) {
	f := func(seed uint64, eSmall, vSmall, tSmall uint8) bool {
		numV := int(vSmall%10) + 2
		numT := int(tSmall%3) + 1
		e := int(eSmall%30) + 1
		rng := tensor.NewRNG(seed)
		src := make([]int32, e)
		typ := make([]int32, e)
		dst := make([]int32, e)
		for i := 0; i < e; i++ {
			src[i] = int32(rng.Intn(numV))
			typ[i] = int32(rng.Intn(numT))
			dst[i] = int32(rng.Intn(numV))
		}
		g := rgcnLayer(numV, numT, 3, 2)
		env := bindEnv(numV, numT, 3, 2, src, typ, dst, seed^0xabc)
		want, err := g.Eval(env)
		if err != nil {
			return false
		}
		for _, c := range Transform(g, rgcnInfo) {
			got, err := c.Eval(env)
			if err != nil {
				return false
			}
			for i := range got.Data() {
				if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
