package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
)

var promSampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|NaN|\+Inf)$`)

// scrapeMetrics fetches /metrics, validates every line as exposition
// format, and returns name{labels} → value.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	obs.Enable(1 << 10)
	defer obs.Disable()
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{Workers: 1})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	if _, err := http.Post(srv.URL+"/predict", "application/json",
		strings.NewReader(`{"nodes":[0,1,2]}`)); err != nil {
		t.Fatal(err)
	}

	samples := scrapeMetrics(t, srv.URL)
	required := []string{
		"wisegraph_serve_uptime_seconds",
		"wisegraph_serve_admitted_total",
		"wisegraph_serve_completed_total",
		"wisegraph_serve_canceled_total",
		"wisegraph_serve_shed_total",
		"wisegraph_serve_rejected_draining_total",
		"wisegraph_serve_batches_total",
		"wisegraph_serve_in_flight",
		"wisegraph_serve_queue_depth",
		"wisegraph_serve_recent_qps",
		"wisegraph_serve_latency_seconds_count",
		"wisegraph_serve_batch_size_count",
		"wisegraph_device_kernels_total",
	}
	for _, name := range required {
		v, ok := samples[name]
		if !ok {
			t.Errorf("required metric %s missing", name)
			continue
		}
		if v < 0 {
			t.Errorf("%s = %v, want non-negative", name, v)
		}
	}
	if samples["wisegraph_serve_completed_total"] < 1 {
		t.Error("completed_total did not count the predict")
	}
	if samples["wisegraph_device_kernels_total"] < 1 {
		t.Error("device kernel counters empty after a forward pass")
	}
	// Every stage histogram family is present.
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		key := `wisegraph_stage_duration_seconds_count{stage="` + s.String() + `"}`
		if _, ok := samples[key]; !ok {
			t.Errorf("stage histogram for %v missing", s)
		}
	}
	// At least one per-kernel launch counter with a kernel label.
	foundKernel := false
	for k := range samples {
		if strings.HasPrefix(k, `wisegraph_device_kernel_launches_total{kernel="`) {
			foundKernel = true
			break
		}
	}
	if !foundKernel {
		t.Error("no per-kernel launches counter exported")
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	obs.Enable(1 << 10)
	defer obs.Disable()
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{Workers: 1})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	if _, err := http.Post(srv.URL+"/predict", "application/json",
		strings.NewReader(`{"nodes":[0]}`)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d, want 200", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events after a predict")
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want complete events (X)", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"sample", "partition", "exec", "collective", "demux", "batch"} {
		if !names[want] {
			t.Errorf("trace missing %q events (got %v)", want, names)
		}
	}

	// With tracing disabled the endpoint 404s instead of serving nothing.
	obs.Disable()
	resp2, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /debug/trace status %d, want 404", resp2.StatusCode)
	}
}

func TestPprofOptIn(t *testing.T) {
	ds := testDataset(t, 40, 160, 8, 4, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{Workers: 1})

	// Default handler: pprof absent.
	srv := httptest.NewServer(NewHandler(e))
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof exposed without opt-in")
	}

	// WithPprof: index and a profile endpoint respond.
	srv2 := httptest.NewServer(NewHandler(e, WithPprof()))
	defer srv2.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(srv2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d, want 200", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s returned empty body", path)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5e9)
	defer cancel()
	_ = e.Shutdown(ctx)
}
