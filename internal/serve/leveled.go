package serve

import (
	"slices"

	"wisegraph/internal/core"
	"wisegraph/internal/exec"
	"wisegraph/internal/graph"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
	"wisegraph/internal/train"
)

// The leveled deterministic forward.
//
// Serving runs each micro-batch as a stack of per-layer blocks instead of
// one flat unioned subgraph: level 0 holds gathered input features, level
// l the post-activation outputs of layer l-1, and block l aggregates level
// l-1 rows into level l targets over deterministically sampled edges
// (graph.DetSample, keyed by (Options.Seed, vertex, fan-out) alone). That
// makes every row a pure function f(v, l) of the vertex, the level, the
// frozen seed, the graph and the model parameters — independent of batch
// composition, engine and worker count — which is the property that makes
// the hot-vertex cache sound: a hit returns exactly the bytes a miss
// would recompute, so cache size can change performance but never output
// bits.
//
// Bitwise invariance across batch compositions additionally needs the
// per-destination float summation order inside a block to be canonical.
// Local vertex ids are assigned in ascending parent-id order and each
// target's edges are emitted contiguously in DetSample order, so every
// sort key the partitioner can use (dst id, src id, edge id, edge type,
// dst degree — EnumeratePlans never sorts by source degree, the only
// composition-dependent attribute) induces the same per-destination edge
// order in every batch; the stable radix sort and the engines' seam-
// preserving accumulators do the rest.

// levelSet is one activation level of a micro-batch: the sorted vertex
// set, which rows were spliced from the cache, the sampled in-edge slots
// of the misses, and the level's row matrix (|verts| × width).
type levelSet struct {
	verts []int32         // sorted parent vertex ids (the local id space)
	idx   map[int32]int32 // parent id → local id
	hit   []bool          // hit[i]: rows.Row(i) came from the cache
	miss  int             // number of rows to compute
	slots [][]int32       // per-miss sampled CSR slots (nil for hits)
	rows  *tensor.Tensor  // the level's activations, hits and computed
}

func newLevelSet(verts []int32, dim int) *levelSet {
	vs := append([]int32(nil), verts...)
	slices.Sort(vs)
	ls := &levelSet{
		verts: vs,
		idx:   make(map[int32]int32, len(vs)),
		hit:   make([]bool, len(vs)),
		slots: make([][]int32, len(vs)),
		rows:  tensor.Get(len(vs), dim),
	}
	for i, v := range vs {
		ls.idx[v] = int32(i)
	}
	return ls
}

// forwardLeveled computes logits for the deduped seed set and returns the
// logits matrix over the sorted seed space plus the parent-id → row map.
// ver is the model version the caller's replica is synced to; it gates
// every cache probe and admission so a concurrent checkpoint reload can
// neither serve stale rows nor be poisoned by them.
//
// sp is the already-open StageSample span the caller begins right at the
// batch's demux/sample boundary, so call-entry overhead (stack growth,
// scheduler delay at the call site) is attributed to sampling rather
// than falling into an unspanned gap — the trace-coverage test holds the
// stage spans to ≥95% of the batch span. It stays one continuous span
// across the whole top-down phase, pausing only around real cache probes
// (which record their own StageCache spans).
func (e *Engine) forwardLeveled(batchID, ver uint64, seeds []int32, replica *nn.Model, pt *core.Partitioner, ectx *exec.Ctx, sp obs.Span) (*tensor.Tensor, map[int32]int32, error) {
	dims := replica.LayerDims()
	L := len(dims) - 1
	sets := make([]*levelSet, L+1)

	// Top-down frontier construction: probe the cache for each level's
	// targets first, then expand only the misses — a cached interior
	// vertex prunes its entire sampled subtree from the batch, which is
	// where the partition- and FLOP-side wins come from.
	cur := seeds
	for l := L; l >= 1; l-- {
		ls := newLevelSet(cur, dims[l])
		if e.cache != nil {
			sp.End()
			e.probeCache(batchID, ver, l, ls)
			sp = obs.Begin(obs.StageSample, batchID)
		} else {
			ls.miss = len(ls.verts)
		}
		fan := e.opts.Fanouts[L-l]
		var next []int32
		seen := make(map[int32]struct{}, ls.miss*(fan+1))
		for i, v := range ls.verts {
			if ls.hit[i] {
				continue
			}
			slots := graph.DetSample(nil, e.csr, v, fan, e.opts.Seed)
			ls.slots[i] = slots
			// The target's own level-(l-1) row feeds the layer's self
			// term, so it joins the level below alongside its sources.
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				next = append(next, v)
			}
			for _, s := range slots {
				src := e.csr.Col[s]
				if _, ok := seen[src]; !ok {
					seen[src] = struct{}{}
					next = append(next, src)
				}
			}
		}
		sets[l] = ls
		cur = next
	}

	// Level 0: input features — cached gathered rows, parent gather for
	// the rest.
	ls0 := newLevelSet(cur, dims[0])
	sets[0] = ls0
	if e.cache != nil {
		sp.End()
		e.probeCache(batchID, ver, 0, ls0)
	} else {
		ls0.miss = len(ls0.verts)
		sp.End()
	}
	if ls0.miss > 0 {
		sp = obs.Begin(obs.StageCollective, batchID)
		for i, v := range ls0.verts {
			if !ls0.hit[i] {
				copy(ls0.rows.Row(i), e.ds.Features.Row(int(v)))
			}
		}
		sp.End()
		e.admitLevel(batchID, ver, 0, ls0)
	}

	// Bottom-up execution: one block per layer, each over the level
	// below's vertex space, under the frozen joint plan.
	for l := 1; l <= L; l++ {
		ls, prev := sets[l], sets[l-1]
		if ls.miss == 0 {
			continue
		}
		sp := obs.Begin(obs.StagePartition, batchID)
		g := e.buildBlock(ls, prev)
		part := train.ReusePlanWith(pt, e.plan, g)
		gc := nn.NewGraphCtx(g)
		sp.End()
		out, err := kernels.RunModelLayer(ectx, gc, replica, l-1, prev.rows, part, e.plan.OpPlan)
		if err != nil {
			freeLevelSets(sets)
			return nil, nil, err
		}
		// Splice computed rows into the level, applying the between-layer
		// activation exactly as kernels.RunModel does (ReLU after every
		// layer but the last, elementwise v > 0 ? v : 0).
		sp = obs.Begin(obs.StageCollective, batchID)
		relu := l < L
		for i, v := range ls.verts {
			if ls.hit[i] {
				continue
			}
			src := out.Row(int(prev.idx[v]))
			dst := ls.rows.Row(i)
			if relu {
				for j, x := range src {
					if x > 0 {
						dst[j] = x
					} else {
						dst[j] = 0
					}
				}
			} else {
				copy(dst, src)
			}
		}
		sp.End()
		tensor.Put(out)
		e.admitLevel(batchID, ver, l, ls)
	}

	top := sets[L]
	for l := 0; l < L; l++ {
		tensor.Put(sets[l].rows)
	}
	return top.rows, top.idx, nil
}

// buildBlock assembles the bipartite-style block graph for one layer:
// edges from sampled sources into the level's miss targets, in the level
// below's (sorted-parent-order) local id space. Targets are emitted in
// ascending parent order, each one's edges contiguous in DetSample order
// — the canonical edge stream the bitwise-parity argument relies on.
func (e *Engine) buildBlock(ls, prev *levelSet) *graph.Graph {
	g := &graph.Graph{NumVertices: len(prev.verts), NumTypes: e.ds.Graph.NumTypes}
	typed := e.ds.Graph.Type != nil
	for i, v := range ls.verts {
		if ls.hit[i] {
			continue
		}
		d := prev.idx[v]
		for _, s := range ls.slots[i] {
			g.Src = append(g.Src, prev.idx[e.csr.Col[s]])
			g.Dst = append(g.Dst, d)
			if typed {
				g.Type = append(g.Type, e.csr.EType[s])
			}
		}
	}
	if g.Type == nil {
		g.NumTypes = 1
	}
	return g
}

// probeCache splices cached rows into the level and marks the hits.
func (e *Engine) probeCache(batchID, ver uint64, level int, ls *levelSet) {
	if e.cache == nil {
		ls.miss = len(ls.verts)
		return
	}
	sp := obs.Begin(obs.StageCache, batchID)
	for i, v := range ls.verts {
		if e.cache.Get(ver, level, v, ls.rows.Row(i)) {
			ls.hit[i] = true
		} else {
			ls.miss++
		}
	}
	sp.End()
}

// admitLevel offers every freshly computed row of the level to the cache
// (score-based admission decides what sticks).
func (e *Engine) admitLevel(batchID, ver uint64, level int, ls *levelSet) {
	if e.cache == nil {
		return
	}
	sp := obs.Begin(obs.StageCache, batchID)
	for i, v := range ls.verts {
		if ls.hit[i] {
			continue
		}
		deg := e.csr.RowPtr[v+1] - e.csr.RowPtr[v]
		e.cache.Put(ver, level, v, deg, ls.rows.Row(i))
	}
	sp.End()
}

func freeLevelSets(sets []*levelSet) {
	for _, ls := range sets {
		if ls != nil && ls.rows != nil {
			tensor.Put(ls.rows)
		}
	}
}
