package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisegraph/internal/fault"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// The sharded-serving battery: the fleet must be an implementation detail
// of /predict — bitwise-identical logits at every shard count, engine and
// worker count; per-shard caches that change performance but never bits;
// and the drain/accounting invariants holding fleet-wide under injected
// shard.rpc faults.

// predictLogits runs one Predict and returns the logits rows.
func predictLogits(t *testing.T, e *Engine, nodes []int32) [][]float32 {
	t.Helper()
	pred, err := e.Predict(context.Background(), nodes, true)
	if err != nil {
		t.Fatalf("Predict(%v): %v", nodes, err)
	}
	return pred.Logits
}

// TestShardedParityMatrix is the tentpole guarantee: logits from the
// sharded tier are bitwise-identical to single-node serving across
// 1/2/4 shards × 1/2 replicas × all three engines × 1/8 workers. Every
// shard rebuilds its blocks with the same deterministic sampler and
// canonical edge order, and every replica of a span is the same pure
// function of (request, model version), so not one float may differ —
// whichever replica the rotation or a hedge hands the call to.
func TestShardedParityMatrix(t *testing.T) {
	const v = 60
	ds := testDataset(t, v, 300, 12, 5, 2, 11)
	m := testModel(t, ds, nn.RGCN)
	ref := testEngine(t, ds, m, Options{Workers: 1, Seed: 9})

	requests := [][]int32{
		{0, 7, 59},
		{3, 3, 12, 30},
		{58, 1, 44, 44, 2},
	}
	want := make([][][]float32, len(requests))
	for i, nodes := range requests {
		want[i] = predictLogits(t, ref, nodes)
	}

	for _, shards := range []int{1, 2, 4} {
		for _, replicas := range []int{1, 2} {
			for _, engine := range kernels.EngineNames() {
				for _, workers := range []int{1, 8} {
					name := fmt.Sprintf("shards=%d/r=%d/%s/workers=%d", shards, replicas, engine, workers)
					t.Run(name, func(t *testing.T) {
						e := testEngine(t, ds, m, Options{
							Shards: shards, Replicas: replicas, Workers: workers, Engine: engine,
							Seed: 9, Plan: ref.Plan(),
						})
						if (shards > 1 || replicas > 1) && e.Fleet() == nil {
							t.Fatal("sharded options built no fleet")
						}
						if fl := e.Fleet(); fl != nil && fl.Replicas() != replicas {
							t.Fatalf("fleet has %d replicas, want %d", fl.Replicas(), replicas)
						}
						for i, nodes := range requests {
							got := predictLogits(t, e, nodes)
							for j := range got {
								for k := range got[j] {
									if got[j][k] != want[i][j][k] {
										t.Fatalf("request %d node %d logit %d: %v != single-node %v",
											i, j, k, got[j][k], want[i][j][k])
									}
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestShardedCacheParityAndShortCircuit pins the per-shard cache: a
// repeated request returns bitwise-identical logits, and once the seed
// frontier is fully cached the router short-circuits — the repeat issues
// zero Compute RPCs (the top-down probe finds every top-level row shard-
// side, so nothing below ever expands).
func TestShardedCacheParityAndShortCircuit(t *testing.T) {
	const v = 60
	ds := testDataset(t, v, 240, 12, 5, 1, 4)
	m := testModel(t, ds, nn.SAGE)
	ref := testEngine(t, ds, m, Options{Workers: 1, Seed: 13})
	nodes := []int32{2, 17, 40, 55}
	want := predictLogits(t, ref, nodes)

	e := testEngine(t, ds, m, Options{
		Shards: 4, Workers: 2, Seed: 13, Plan: ref.Plan(),
		CacheBudget: 4 << 20,
	})
	computes := func() uint64 {
		var n uint64
		for _, ss := range e.Fleet().Stats() {
			n += ss.Computes
		}
		return n
	}
	first := predictLogits(t, e, nodes)
	afterFirst := computes()
	if afterFirst == 0 {
		t.Fatal("cold request issued no Compute RPCs")
	}
	second := predictLogits(t, e, nodes)
	if got := computes(); got != afterFirst {
		t.Fatalf("fully cached repeat issued %d Compute RPCs", got-afterFirst)
	}
	for j := range want {
		for k := range want[j] {
			if first[j][k] != want[j][k] || second[j][k] != want[j][k] {
				t.Fatalf("cached logits diverge at row %d col %d: %v / %v vs %v",
					j, k, first[j][k], second[j][k], want[j][k])
			}
		}
	}
	st := e.Stats()
	if !st.CacheEnabled || st.CacheHits == 0 {
		t.Fatalf("fleet cache recorded no hits (enabled=%v hits=%d)", st.CacheEnabled, st.CacheHits)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("snapshot shards=%d perShard=%d, want 4/4", st.Shards, len(st.PerShard))
	}
}

// TestCacheWarmFirstHit pins the -cache-warm contract in both serving
// modes: after startup warm-up of the top-K in-degree vertices, the very
// first request already hits the cache.
func TestCacheWarmFirstHit(t *testing.T) {
	const v = 50
	ds := testDataset(t, v, 200, 10, 4, 1, 8)
	m := testModel(t, ds, nn.SAGE)
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := testEngine(t, ds, m, Options{
				Shards: shards, Workers: 1, Seed: 21,
				CacheBudget: 4 << 20, CacheWarm: v,
			})
			if hits := e.Stats().CacheHits; hits != 0 {
				t.Fatalf("warm-up itself recorded %d hits; wanted a cold-miss fill", hits)
			}
			predictLogits(t, e, []int32{0, 25, 49})
			st := e.Stats()
			if st.CacheHits == 0 {
				t.Fatal("first request after warm-up hit nothing")
			}
		})
	}
}

// TestCacheWarmValidation: warm-up without a cache to warm is a
// configuration error, not a silent no-op.
func TestCacheWarmValidation(t *testing.T) {
	ds := testDataset(t, 20, 60, 8, 3, 1, 2)
	m := testModel(t, ds, nn.SAGE)
	if _, err := NewEngine(ds, m, Options{CacheWarm: 5}); err == nil {
		t.Fatal("CacheWarm without CacheBudget accepted")
	}
	if _, err := NewEngine(ds, m, Options{ShardPlacement: "bogus"}); err == nil {
		t.Fatal("unknown shard placement accepted")
	}
}

// TestShardedChaosFleetDrain drives the fleet under injected shard.rpc
// faults — errors, and stragglers split by the tight ShardTimeout into
// hedges and timeouts — and proves the fleet-wide drain invariant: every
// admitted request answered exactly once, router in-flight AND every
// shard's in-flight at zero after shutdown.
func TestShardedChaosFleetDrain(t *testing.T) {
	const vertices = 80
	ds := testDataset(t, vertices, 320, 10, 4, 1, 31)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Shards: 4, Workers: 2, BatchCap: 8, BatchDelay: time.Millisecond,
		QueueDepth: 64, Seed: 17, ShardTimeout: 2 * time.Millisecond,
	})
	sched := &fault.Schedule{
		Seed: 4242,
		Sites: map[string]fault.SiteConfig{
			fault.SiteShardRPC: {ErrorRate: 0.05, LatencyRate: 0.10, Delay: 2 * time.Millisecond},
		},
	}
	const clients, perClient = 8, 40
	var ok, injected, shed, expired, other atomic.Int64
	fault.WithSchedule(sched, func() {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := tensor.NewRNG(uint64(c)*131 + 7)
				for i := 0; i < perClient; i++ {
					_, err := e.Predict(context.Background(), []int32{int32(rng.Intn(vertices))}, false)
					switch {
					case err == nil:
						ok.Add(1)
					case errors.Is(err, ErrOverloaded):
						shed.Add(1)
					case errors.Is(err, context.DeadlineExceeded):
						expired.Add(1)
					case fault.IsInjected(err):
						injected.Add(1)
					default:
						other.Add(1)
						t.Errorf("unexpected error class: %v", err)
					}
				}
			}(c)
		}
		wg.Wait()

		st := chaosInvariant(t, e)
		if got := ok.Load() + injected.Load() + shed.Load() + expired.Load() + other.Load(); got != clients*perClient {
			t.Fatalf("request outcomes %d, want %d — a request vanished", got, clients*perClient)
		}
		if ok.Load() == 0 {
			t.Fatal("no request succeeded under a mild fault schedule")
		}
		retries, hedges, timeouts, _ := e.Fleet().Resilience()
		if retries == 0 {
			t.Fatal("injected rpc errors produced no retries")
		}
		if hedges+timeouts == 0 {
			t.Fatal("injected stragglers produced neither hedges nor timeouts")
		}
		if st.ShardInFlight != 0 {
			t.Fatalf("shard in-flight %d after settle", st.ShardInFlight)
		}

		// The SIGTERM half: drain the engine under the still-active fault
		// schedule and assert the invariant fleet-wide.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown under faults: %v", err)
		}
		if n := e.InFlight(); n != 0 {
			t.Fatalf("router in-flight %d after drain", n)
		}
		if n := e.Fleet().InFlight(); n != 0 {
			t.Fatalf("fleet in-flight %d after drain", n)
		}
	})
}

// TestShardedReloadCoherence pins version coherence across the fleet: a
// checkpoint reload mid-traffic flushes every shard's cache and no
// request ever observes a torn parameter set — logits always equal a
// quiet single-node forward under whichever version served them.
func TestShardedReloadCoherence(t *testing.T) {
	const v = 50
	ds := testDataset(t, v, 200, 10, 4, 1, 19)
	m := testModel(t, ds, nn.SAGE)
	ref := testEngine(t, ds, m, Options{Workers: 1, Seed: 23})
	nodes := []int32{5, 11, 33}
	before := predictLogits(t, ref, nodes)

	m2 := testModel(t, ds, nn.SAGE)
	rng := tensor.NewRNG(99)
	for _, p := range m2.Params() {
		d := p.Value.Data()
		for i := range d {
			d[i] += 0.05 * rng.Float32()
		}
	}
	ref2 := testEngine(t, ds, m2, Options{Workers: 1, Seed: 23, Plan: ref.Plan()})
	after := predictLogits(t, ref2, nodes)

	e := testEngine(t, ds, m, Options{
		Shards: 2, Workers: 2, Seed: 23, Plan: ref.Plan(), CacheBudget: 1 << 20,
	})
	got := predictLogits(t, e, nodes)
	for j := range before {
		for k := range before[j] {
			if got[j][k] != before[j][k] {
				t.Fatalf("pre-reload row %d col %d: %v != %v", j, k, got[j][k], before[j][k])
			}
		}
	}
	if err := e.Reload(m2); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	got = predictLogits(t, e, nodes)
	for j := range after {
		for k := range after[j] {
			if got[j][k] != after[j][k] {
				t.Fatalf("post-reload row %d col %d: %v != %v (stale cache or torn params)",
					j, k, got[j][k], after[j][k])
			}
		}
	}
}

// TestCacheWarmSelectionEquivalence pins the bounded top-K selection
// that replaced the unconditional O(V log V) sort in warm-up: for every
// k the heap path and the full-sort path must produce the identical
// hottest-first order (in-degree descending, id ascending on ties).
func TestCacheWarmSelectionEquivalence(t *testing.T) {
	const v = 200
	ds := testDataset(t, v, 900, 8, 3, 1, 17)
	m := testModel(t, ds, nn.SAGE)
	e := testEngine(t, ds, m, Options{Workers: 1, Seed: 3})

	deg := func(x int32) int32 { return e.csr.RowPtr[x+1] - e.csr.RowPtr[x] }
	ref := make([]int32, v)
	for i := range ref {
		ref[i] = int32(i)
	}
	sort.Slice(ref, func(a, b int) bool {
		if deg(ref[a]) != deg(ref[b]) {
			return deg(ref[a]) > deg(ref[b])
		}
		return ref[a] < ref[b]
	})

	// Every k from empty through full graph, crossing the v/4 heap/sort
	// threshold both ways.
	for _, k := range []int{1, 2, 3, 7, v/4 - 1, v / 4, v/4 + 1, v / 2, v} {
		got := e.hottestVertices(k)
		if len(got) != k {
			t.Fatalf("k=%d: returned %d vertices", k, len(got))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("k=%d: position %d is vertex %d (deg %d), want %d (deg %d)",
					k, i, got[i], deg(got[i]), ref[i], deg(ref[i]))
			}
		}
	}
	if got := e.hottestVertices(0); len(got) != 0 {
		t.Fatalf("k=0 returned %d vertices", len(got))
	}
}
