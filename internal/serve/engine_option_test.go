package serve

import (
	"context"
	"strings"
	"testing"

	"wisegraph/internal/nn"
)

// TestEngineOptionSelectsExecutionEngine serves the same deterministic
// request under every execution engine and requires identical logits —
// engines are a dataflow choice, never a numeric one — and rejects
// unknown engine names at construction.
func TestEngineOptionSelectsExecutionEngine(t *testing.T) {
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	nodes := []int32{0, 7, 41, 59}
	var want [][]float32
	for _, engine := range []string{"", "blocked", "fused", "device"} {
		m := testModel(t, ds, nn.SAGE)
		e := testEngine(t, ds, m, Options{Workers: 1, Seed: 3, Engine: engine})
		pred, err := e.Predict(context.Background(), nodes, true)
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		if want == nil {
			want = pred.Logits
			continue
		}
		for i := range want {
			for j := range want[i] {
				if pred.Logits[i][j] != want[i][j] {
					t.Fatalf("engine %q: logits[%d][%d] = %v, want %v",
						engine, i, j, pred.Logits[i][j], want[i][j])
				}
			}
		}
	}
	m := testModel(t, ds, nn.SAGE)
	if _, err := NewEngine(ds, m, Options{Workers: 1, Engine: "warp"}); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("NewEngine(engine=warp) = %v, want unknown-engine error", err)
	}
}
