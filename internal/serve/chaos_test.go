package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisegraph/internal/fault"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// The chaos battery: drive the serving engine under injected batch faults
// and stragglers and prove the accounting invariant survives — every
// admitted request is answered exactly once (admitted = completed +
// canceled, in-flight drains to zero), nothing is silently dropped, and
// client-visible failures are the injector's, never the engine's.

// chaosInvariant asserts the drain invariant after load has settled.
func chaosInvariant(t *testing.T, e *Engine) Snapshot {
	t.Helper()
	waitInFlightZero(t, e)
	st := e.Stats()
	if st.Admitted != st.Completed+st.Canceled {
		t.Fatalf("accounting leak: admitted %d != completed %d + canceled %d",
			st.Admitted, st.Completed, st.Canceled)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after drain", st.InFlight)
	}
	return st
}

func TestChaosDrainInvariantUnderFaults(t *testing.T) {
	const vertices = 80
	ds := testDataset(t, vertices, 320, 10, 4, 1, 2)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 2, BatchCap: 8, BatchDelay: time.Millisecond,
		QueueDepth: 64, Seed: 5,
	})
	sched := &fault.Schedule{
		Seed: 1234,
		Sites: map[string]fault.SiteConfig{
			fault.SiteServeBatch: {ErrorRate: 0.08, LatencyRate: 0.15, Delay: 2 * time.Millisecond},
		},
	}
	const clients, perClient = 8, 40
	var ok, injected, shed, expired, other atomic.Int64
	fault.WithSchedule(sched, func() {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := tensor.NewRNG(uint64(c)*77 + 1)
				for i := 0; i < perClient; i++ {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if i%10 == 9 {
						// A slice of requests with near-expired deadlines
						// exercises the canceled leg of the invariant.
						ctx, cancel = context.WithTimeout(ctx, 50*time.Microsecond)
					}
					_, err := e.Predict(ctx, []int32{int32(rng.Intn(vertices))}, false)
					cancel()
					switch {
					case err == nil:
						ok.Add(1)
					case errors.Is(err, ErrOverloaded):
						shed.Add(1)
					case errors.Is(err, context.DeadlineExceeded):
						expired.Add(1)
					case fault.IsInjected(err):
						injected.Add(1)
					default:
						other.Add(1)
						t.Errorf("unexpected error class: %v", err)
					}
				}
			}(c)
		}
		wg.Wait()

		st := chaosInvariant(t, e)
		if got := ok.Load() + injected.Load() + shed.Load() + expired.Load() + other.Load(); got != clients*perClient {
			t.Fatalf("request outcomes %d, want %d — a request vanished", got, clients*perClient)
		}
		if st.BatchFaults == 0 {
			t.Fatal("schedule injected no batch faults; chaos test proves nothing")
		}
		if st.DegradedRetries == 0 {
			t.Fatal("batch faults fired but no half-batch degradation ran")
		}
		if ok.Load() == 0 {
			t.Fatal("no request succeeded under a mild fault schedule")
		}
	})
}

// TestChaosTotalFailureStillAccounted pins the worst case: a 100% batch
// error rate means every batch and both degraded halves fail, so every
// admitted request must come back with an injected error — completed,
// counted, never stuck.
func TestChaosTotalFailureStillAccounted(t *testing.T) {
	const vertices = 40
	ds := testDataset(t, vertices, 160, 8, 3, 1, 3)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 1, BatchCap: 4, BatchDelay: time.Millisecond, Seed: 6,
	})
	fault.WithSchedule(&fault.Schedule{
		Seed:  7,
		Sites: map[string]fault.SiteConfig{fault.SiteServeBatch: {ErrorRate: 1}},
	}, func() {
		var wg sync.WaitGroup
		var injected, other atomic.Int64
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					_, err := e.Predict(context.Background(), []int32{int32((c*10 + i) % vertices)}, false)
					if fault.IsInjected(err) {
						injected.Add(1)
					} else {
						other.Add(1)
					}
				}
			}(c)
		}
		wg.Wait()
		st := chaosInvariant(t, e)
		if other.Load() != 0 {
			t.Fatalf("%d requests did not fail with the injected error", other.Load())
		}
		if injected.Load() != 40 {
			t.Fatalf("%d injected failures, want 40", injected.Load())
		}
		if st.Completed != st.Admitted {
			t.Fatalf("completed %d != admitted %d under total failure", st.Completed, st.Admitted)
		}
	})
}

// TestChaosBatchTimeoutDegrades forces modeled stragglers past the
// per-batch budget: they must take the timeout path (counted as batch
// timeouts, degraded, eventually failed) instead of sleeping the worker
// for the full spike.
func TestChaosBatchTimeoutDegrades(t *testing.T) {
	const vertices = 40
	ds := testDataset(t, vertices, 160, 8, 3, 1, 4)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 1, BatchCap: 4, BatchDelay: time.Millisecond,
		BatchTimeout: 10 * time.Millisecond, Seed: 8,
	})
	fault.WithSchedule(&fault.Schedule{
		Seed: 21,
		Sites: map[string]fault.SiteConfig{
			// Jitter spans [25ms, 75ms): every spike overruns the 10ms
			// budget, so every draw is a timeout, never a sleep.
			fault.SiteServeBatch: {LatencyRate: 1, Delay: 50 * time.Millisecond},
		},
	}, func() {
		start := time.Now()
		var wg sync.WaitGroup
		var injected atomic.Int64
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					_, err := e.Predict(context.Background(), []int32{int32((c*5 + i) % vertices)}, false)
					if fault.IsInjected(err) {
						injected.Add(1)
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := chaosInvariant(t, e)
		if st.BatchTimeouts == 0 {
			t.Fatal("no batch timeouts recorded under a 100% over-budget straggler schedule")
		}
		if st.DegradedRetries == 0 {
			t.Fatal("timeouts fired but no degradation ran")
		}
		if injected.Load() == 0 {
			t.Fatal("no request surfaced the timeout")
		}
		// 20 requests × up to 3 draws each at ≥25ms would cost >1.5s if the
		// engine slept through stragglers instead of timing them out.
		if elapsed > time.Second {
			t.Fatalf("load took %v — stragglers were slept through, not timed out", elapsed)
		}
	})
}
