package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
)

// TestCanceledNotCompleted is the regression test for the accounting bug
// where a request whose deadline expired in the queue was counted both as
// canceled AND completed, and its timed-out queue latency was fed into
// the served-latency histogram (inflating p99 under overload — exactly
// when p99 matters). Canceled requests must count once, as canceled, and
// completed + canceled must partition the admitted requests.
func TestCanceledNotCompleted(t *testing.T) {
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 1, BatchCap: 4, BatchDelay: time.Millisecond, QueueDepth: 16, Seed: 3,
	})
	release := make(chan struct{})
	var gate sync.Once
	e.testHookBatchStart = func() { <-release } // closed channel passes all later batches

	// One request occupies the worker behind the gate.
	firstErr := make(chan error, 1)
	go func() {
		_, err := e.Predict(context.Background(), []int32{0}, false)
		firstErr <- err
	}()
	waitFor(t, func() bool { return e.Stats().Admitted >= 1 })

	// Four more with deadlines that expire while they wait in the queue.
	const expired = 4
	var wg sync.WaitGroup
	for i := 0; i < expired; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := e.Predict(ctx, []int32{int32(i + 1)}, false); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("queued request %d: got %v, want DeadlineExceeded", i, err)
			}
		}(i)
	}
	wg.Wait() // all four deadlines have fired
	gate.Do(func() { close(release) })
	if err := <-firstErr; err != nil {
		t.Fatalf("gated request: %v", err)
	}
	waitInFlightZero(t, e)

	st := e.Stats()
	if st.Admitted != 1+expired {
		t.Fatalf("admitted = %d, want %d", st.Admitted, 1+expired)
	}
	// The partition invariant: every admitted request is exactly one of
	// completed/canceled (the double-count bug made the sum overshoot).
	if st.Completed+st.Canceled != st.Admitted {
		t.Fatalf("completed %d + canceled %d != admitted %d", st.Completed, st.Canceled, st.Admitted)
	}
	if st.Canceled != expired {
		t.Errorf("canceled = %d, want %d", st.Canceled, expired)
	}
	// The latency histogram saw only the genuinely served requests, so the
	// ≥20ms queue timeouts of the canceled ones cannot inflate p99.
	if got := e.stats.latency.Count(); got != st.Completed {
		t.Errorf("latency histogram count = %d, want completed = %d", got, st.Completed)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestBatchAtExactCap: when BatchCap requests are already waiting, the
// batcher must dispatch the moment the batch fills, not wait out the fill
// deadline.
func TestBatchAtExactCap(t *testing.T) {
	const cap = 4
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 1, BatchCap: cap, BatchDelay: 10 * time.Second, QueueDepth: 16, Seed: 3,
	})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Predict(context.Background(), []int32{int32(i)}, false); err != nil {
				t.Errorf("Predict %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("full batch waited for the fill deadline (%v elapsed)", elapsed)
	}
	st := e.Stats()
	if st.Batches != 1 || st.BatchSizeDist[cap] != 1 {
		t.Fatalf("batches = %d, dist = %v; want one batch of exactly %d", st.Batches, st.BatchSizeDist, cap)
	}
	waitInFlightZero(t, e)
}

// TestFlushSplitsFullBatches drives the drain-flush path directly on a
// hand-built engine: a queue of 10 requests with BatchCap 4 must come out
// as batches of 4, 4, 2 — split into full batches, nothing dropped.
func TestFlushSplitsFullBatches(t *testing.T) {
	e := &Engine{
		opts:    Options{BatchCap: 4},
		queue:   make(chan *request, 16),
		batches: make(chan []*request, 16),
	}
	for i := 0; i < 10; i++ {
		e.queue <- &request{}
	}
	e.flush(nil)
	close(e.batches)
	var sizes []int
	total := 0
	for b := range e.batches {
		sizes = append(sizes, len(b))
		total += len(b)
	}
	if total != 10 {
		t.Fatalf("flush dispatched %d requests, want 10", total)
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("batch sizes = %v, want [4 4 2]", sizes)
	}

	// A partial batch handed in from the filling state is topped up first.
	e2 := &Engine{
		opts:    Options{BatchCap: 4},
		queue:   make(chan *request, 16),
		batches: make(chan []*request, 16),
	}
	partial := []*request{{}, {}, {}}
	for i := 0; i < 2; i++ {
		e2.queue <- &request{}
	}
	e2.flush(partial)
	close(e2.batches)
	sizes = nil
	for b := range e2.batches {
		sizes = append(sizes, len(b))
	}
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 1 {
		t.Fatalf("partial flush sizes = %v, want [4 1]", sizes)
	}
}

// TestDemuxPropertyCrossRequestDedup is a property test of the seed-dedup
// demux: many randomly generated requests with heavily overlapping node
// sets run as ONE micro-batch (runBatch invoked directly, so coalescing
// is deterministic), alongside a probe request that queries every
// distinct node exactly once. Every request's logits row for node n must
// be bit-identical to the probe's row for n — i.e. demux hands each
// caller exactly the forward-pass row its node mapped to, regardless of
// duplication within a request, across requests, or arrival order.
func TestDemuxPropertyCrossRequestDedup(t *testing.T) {
	const v = 60
	ds := testDataset(t, v, 240, 12, 5, 1, 1)
	m := testModel(t, ds, nn.SAGE)
	e := testEngine(t, ds, m, Options{Workers: 1, BatchCap: 64, Seed: 3})

	prng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		const nreq = 12
		reqs := make([]*request, 0, nreq+1)
		seen := map[int32]bool{}
		var distinct []int32
		for i := 0; i < nreq; i++ {
			n := 1 + prng.Intn(6)
			nodes := make([]int32, n)
			for j := range nodes {
				// Small id space forces overlap and within-request dupes.
				nodes[j] = int32(prng.Intn(12))
				if !seen[nodes[j]] {
					seen[nodes[j]] = true
					distinct = append(distinct, nodes[j])
				}
			}
			reqs = append(reqs, &request{
				ctx: context.Background(), nodes: nodes, wantLogits: true,
				enqueued: time.Now(), done: make(chan result, 1),
			})
		}
		probe := &request{
			ctx: context.Background(), nodes: distinct, wantLogits: true,
			enqueued: time.Now(), done: make(chan result, 1),
		}
		reqs = append(reqs, probe)

		// Private worker state, same construction as Engine.worker.
		replica, err := e.newReplica()
		if err != nil {
			t.Fatal(err)
		}
		pt := core.NewPartitioner()
		e.inflight.Add(int64(len(reqs))) // runBatch decrements via finish
		e.runBatch(reqs, replica, 0, pt, exec.NewCtx(device.New(device.A100())))
		pt.Release()

		want := map[int32][]float32{}
		pres := <-probe.done
		if pres.err != nil {
			t.Fatalf("trial %d: probe failed: %v", trial, pres.err)
		}
		for j, n := range distinct {
			want[n] = pres.pred.Logits[j]
		}
		for i, r := range reqs[:nreq] {
			res := <-r.done
			if res.err != nil {
				t.Fatalf("trial %d req %d: %v", trial, i, res.err)
			}
			for j, n := range r.nodes {
				if res.pred.Classes[j] != argmax(want[n]) {
					t.Fatalf("trial %d req %d node %d: class %d != argmax of probe row",
						trial, i, n, res.pred.Classes[j])
				}
				for k, g := range res.pred.Logits[j] {
					if g != want[n][k] {
						t.Fatalf("trial %d req %d node %d logit %d: %v != probe %v (demux row mismatch)",
							trial, i, n, k, g, want[n][k])
					}
				}
			}
		}
	}
}

// TestServeTraceStages is the tracing acceptance check: one served
// micro-batch records all five pipeline stages under the batch's id, and
// the stage spans account for (nearly) the whole batch span — the trace
// is a faithful decomposition, not a sampling. Timing on a loaded CI host
// is noisy, so the coverage bound gets a few attempts.
func TestServeTraceStages(t *testing.T) {
	obs.Enable(1 << 10)
	defer obs.Disable()

	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{Workers: 1, Seed: 3})

	wantStages := []obs.Stage{obs.StageSample, obs.StagePartition, obs.StageExec, obs.StageCollective, obs.StageDemux}
	const attempts = 5
	var lastCoverage float64
	// A wide seed set keeps the fixed cost of span transitions (call
	// boundaries between stages, inflated ~10x under the race detector)
	// small relative to the in-span work the coverage bound measures.
	seeds := make([]int32, 40)
	for i := range seeds {
		seeds[i] = int32(i * 3 % 60)
	}
	for attempt := 0; attempt < attempts; attempt++ {
		obs.Enable(1 << 10) // fresh ring per attempt
		if _, err := e.Predict(context.Background(), seeds, false); err != nil {
			t.Fatalf("Predict: %v", err)
		}
		spans := obs.Spans()

		var batchID uint64
		var batchDur time.Duration
		for _, s := range spans {
			if s.Stage == obs.StageBatch {
				batchID, batchDur = s.ID, s.Dur
			}
		}
		if batchID == 0 {
			t.Fatal("no batch span recorded")
		}
		var sum time.Duration
		got := map[obs.Stage]bool{}
		for _, s := range spans {
			if s.ID == batchID && s.Stage != obs.StageBatch {
				got[s.Stage] = true
				sum += s.Dur
			}
		}
		for _, st := range wantStages {
			if !got[st] {
				t.Fatalf("stage %v missing from trace (got %v)", st, got)
			}
		}
		if batchDur <= 0 {
			t.Fatal("batch span has no duration")
		}
		lastCoverage = float64(sum) / float64(batchDur)
		if lastCoverage >= 0.95 && lastCoverage <= 1.05 {
			return
		}
	}
	t.Fatalf("stage spans cover %.1f%% of the batch span after %d attempts, want within 5%% of 100%%",
		100*lastCoverage, attempts)
}
