package serve

import (
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 observations of 1µs (bucket 10, upper bound 1024ns) and 10 of
	// 1ms (bucket 20, upper bound 2^20 ns).
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	wantMean := time.Duration((90*1000 + 10*1_000_000) / 100)
	if got := h.Mean(); got != wantMean {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
	if got := h.Quantile(0.50); got != 1024*time.Nanosecond {
		t.Errorf("p50 = %v, want 1.024µs", got)
	}
	if got := h.Quantile(0.99); got != time.Duration(1<<20) {
		t.Errorf("p99 = %v, want %v", got, time.Duration(1<<20))
	}
	// Quantiles are upper bounds: p50 must not exceed p99.
	if h.Quantile(0.5) > h.Quantile(0.99) {
		t.Error("p50 > p99")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("zero-duration quantile = %v, want 1ns", got)
	}
	// Far beyond the top bucket still lands in the last bucket.
	var h2 Histogram
	h2.Observe(time.Duration(1<<62) + 5)
	if got := h2.Quantile(0.5); got != time.Duration(1)<<(histBuckets-1) {
		t.Errorf("overflow quantile = %v, want top bucket bound", got)
	}
}

func TestQPSRing(t *testing.T) {
	var r qpsRing
	for i := 0; i < 5; i++ {
		r.Mark(100)
	}
	for i := 0; i < 5; i++ {
		r.Mark(101)
	}
	if got := r.Recent(102); got != 1.0 { // 10 completions over the 10s window
		t.Errorf("Recent(102) = %v, want 1.0", got)
	}
	// The in-progress second is excluded.
	r.Mark(102)
	if got := r.Recent(102); got != 1.0 {
		t.Errorf("Recent(102) after marking sec 102 = %v, want 1.0", got)
	}
	// Slot reuse: second 116 maps onto 100's slot and resets it.
	r.Mark(116)
	if got := r.Recent(117); got != 0.1 { // only sec 116 in [107,117)
		t.Errorf("Recent(117) = %v, want 0.1", got)
	}
}

func TestStatsSnapshot(t *testing.T) {
	s := newStats(4)
	s.recordBatch(2)
	s.recordBatch(2)
	s.recordBatch(2)
	s.recordBatch(4)
	s.recordBatch(99) // clamped to the cap bucket
	s.recordDone(time.Millisecond)
	s.recordDone(3 * time.Millisecond)
	s.admitted.Add(2)

	snap := s.snapshot(1, 3)
	if snap.Batches != 5 {
		t.Errorf("Batches = %d, want 5", snap.Batches)
	}
	if snap.BatchSizeDist[2] != 3 || snap.BatchSizeDist[4] != 2 {
		t.Errorf("BatchSizeDist = %v, want {2:3, 4:2}", snap.BatchSizeDist)
	}
	wantAvg := float64(2*3+4*2) / 5
	if snap.AvgBatchSize != wantAvg {
		t.Errorf("AvgBatchSize = %v, want %v", snap.AvgBatchSize, wantAvg)
	}
	if snap.Completed != 2 || snap.Admitted != 2 {
		t.Errorf("Completed/Admitted = %d/%d, want 2/2", snap.Completed, snap.Admitted)
	}
	if snap.InFlight != 1 || snap.QueueDepth != 3 {
		t.Errorf("InFlight/QueueDepth = %d/%d, want 1/3", snap.InFlight, snap.QueueDepth)
	}
	if snap.LatencyMeanMs <= 0 || snap.LatencyP99Ms < snap.LatencyP50Ms {
		t.Errorf("latency stats inconsistent: %+v", snap)
	}
}
