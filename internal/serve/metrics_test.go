package serve

import (
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 observations of 1µs (bucket 10, upper bound 1024ns) and 10 of
	// 1ms (bucket 20, upper bound 2^20 ns).
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	wantMean := time.Duration((90*1000 + 10*1_000_000) / 100)
	if got := h.Mean(); got != wantMean {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
	// Interpolated quantiles land inside their bucket, not on its upper
	// bound (the old estimator pinned p50 to 1024ns — up to 2× high).
	if got := h.Quantile(0.50); got < 512*time.Nanosecond || got >= 1024*time.Nanosecond {
		t.Errorf("p50 = %v, want within [512ns, 1024ns)", got)
	}
	if got := h.Quantile(0.99); got < time.Duration(1<<19) || got > time.Duration(1<<20) {
		t.Errorf("p99 = %v, want within [%v, %v]", got, time.Duration(1<<19), time.Duration(1<<20))
	}
	if h.Quantile(0.5) > h.Quantile(0.99) {
		t.Error("p50 > p99")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("zero-duration quantile = %v, want 1ns", got)
	}
	// Far beyond the top bucket still lands in the last bucket; the
	// interpolated estimate stays inside it.
	var h2 Histogram
	h2.Observe(time.Duration(1<<62) + 5)
	lo := time.Duration(1) << (histBuckets - 2)
	hi := time.Duration(1) << (histBuckets - 1)
	if got := h2.Quantile(0.5); got < lo || got > hi {
		t.Errorf("overflow quantile = %v, want within [%v, %v]", got, lo, hi)
	}
}

func TestQPSRing(t *testing.T) {
	var r qpsRing
	for i := 0; i < 5; i++ {
		r.Mark(100)
	}
	for i := 0; i < 5; i++ {
		r.Mark(101)
	}
	if got := r.Recent(102, 60); got != 1.0 { // 10 completions over the 10s window
		t.Errorf("Recent(102, 60) = %v, want 1.0", got)
	}
	// The in-progress second is excluded.
	r.Mark(102)
	if got := r.Recent(102, 60); got != 1.0 {
		t.Errorf("Recent(102, 60) after marking sec 102 = %v, want 1.0", got)
	}
	// Slot reuse: second 116 maps onto 100's slot and resets it.
	r.Mark(116)
	if got := r.Recent(117, 60); got != 0.1 { // only sec 116 in [107,117)
		t.Errorf("Recent(117, 60) = %v, want 0.1", got)
	}
}

// TestQPSRingShortUptime is the regression test for the window bug: a
// server up for 2 seconds that completed 10 requests in those seconds
// was reporting 1 QPS (10/window) instead of 5 (10/uptime).
func TestQPSRingShortUptime(t *testing.T) {
	var r qpsRing
	for i := 0; i < 5; i++ {
		r.Mark(100)
		r.Mark(101)
	}
	if got := r.Recent(102, 2.9); got != 5.0 {
		t.Errorf("Recent with 2.9s uptime = %v, want 10/2 = 5.0", got)
	}
	// Sub-second uptime divides by 1, never 0: only the last full second
	// (101, 5 marks) is summed.
	if got := r.Recent(102, 0.4); got != 5.0 {
		t.Errorf("Recent with 0.4s uptime = %v, want 5/1 = 5.0", got)
	}
	// Uptime past the window reverts to the full-window average.
	if got := r.Recent(102, 3600); got != 1.0 {
		t.Errorf("Recent with long uptime = %v, want 1.0", got)
	}
}

func TestStatsSnapshot(t *testing.T) {
	s := newStats(4)
	s.recordBatch(2)
	s.recordBatch(2)
	s.recordBatch(2)
	s.recordBatch(4)
	s.recordBatch(99) // clamped to the cap bucket
	s.recordDone(time.Millisecond)
	s.recordDone(3 * time.Millisecond)
	s.admitted.Add(2)

	snap := s.snapshot(1, 3)
	if snap.Batches != 5 {
		t.Errorf("Batches = %d, want 5", snap.Batches)
	}
	if snap.BatchSizeDist[2] != 3 || snap.BatchSizeDist[4] != 2 {
		t.Errorf("BatchSizeDist = %v, want {2:3, 4:2}", snap.BatchSizeDist)
	}
	wantAvg := float64(2*3+4*2) / 5
	if snap.AvgBatchSize != wantAvg {
		t.Errorf("AvgBatchSize = %v, want %v", snap.AvgBatchSize, wantAvg)
	}
	if snap.Completed != 2 || snap.Admitted != 2 {
		t.Errorf("Completed/Admitted = %d/%d, want 2/2", snap.Completed, snap.Admitted)
	}
	if snap.InFlight != 1 || snap.QueueDepth != 3 {
		t.Errorf("InFlight/QueueDepth = %d/%d, want 1/3", snap.InFlight, snap.QueueDepth)
	}
	if snap.LatencyMeanMs <= 0 || snap.LatencyP99Ms < snap.LatencyP50Ms {
		t.Errorf("latency stats inconsistent: %+v", snap)
	}
}
