// Package serve is the online inference subsystem: it loads a checkpointed
// model plus its graph, freezes an inference context (CSR, one-shot-tuned
// joint plan reused across every request, per-worker partitioners and
// RNGs), and answers node-classification queries through the gTask
// execution path.
//
// The core is a dynamic micro-batcher: concurrent requests are coalesced —
// up to a size cap or a fill deadline, whichever comes first — into one
// sampled-subgraph forward pass whose results are demultiplexed back to
// the callers. Batch size is a workload-partition knob chosen online, the
// serving-side analogue of WiseGraph's operation-partition dimension.
// Around it sits the robustness machinery a production endpoint needs:
// a bounded admission queue with load shedding, per-request deadlines and
// context cancellation, a fixed worker pool, and graceful drain on
// shutdown (admitted requests are answered; new ones are rejected).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wisegraph/internal/core"
	"wisegraph/internal/dataset"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/fault"
	"wisegraph/internal/graph"
	"wisegraph/internal/hotcache"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/shard"
	"wisegraph/internal/tensor"
)

// Sentinel errors surfaced to transport layers (mapped to HTTP statuses).
var (
	// ErrOverloaded means the admission queue is full: the request was
	// shed immediately instead of queuing unboundedly (HTTP 429).
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrDraining means the engine is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: draining")
)

// Options tune the engine. Zero values pick serving defaults.
type Options struct {
	// Workers is the number of forward-pass workers, each with its own
	// model replica, RNG, partitioner and execution context (default 2).
	Workers int
	// BatchCap is the most requests one micro-batch coalesces (default 16).
	BatchCap int
	// BatchDelay is how long the batcher waits for a batch to fill after
	// its first request arrives (default 2ms). Lower favors latency,
	// higher favors throughput.
	BatchDelay time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are shed
	// with ErrOverloaded (default 4×BatchCap).
	QueueDepth int
	// Deadline is the default per-request deadline applied when the
	// caller's context has none (default 2s).
	Deadline time.Duration
	// BatchTimeout is the per-micro-batch execution budget (default
	// 500ms). The forward pass itself is not preemptible, so the budget
	// governs the modeled stragglers the fault injector produces: an
	// injected latency spike at or beyond it counts as a batch timeout
	// and takes the degradation path instead of being slept through.
	BatchTimeout time.Duration
	// MaxNodes bounds the node count of a single request (default 256).
	MaxNodes int
	// Fanouts are the neighbor-sampling fan-outs, one per model layer
	// (default 10 per layer).
	Fanouts []int
	// Spec is the simulated accelerator (default A100).
	Spec *device.Spec
	// Plan is a pre-tuned joint plan; nil runs a one-shot tune on a
	// representative sampled subgraph at startup (§6.3 reuse).
	Plan *joint.Result
	// Engine names the execution engine workers run layers with (one of
	// kernels.EngineNames; "" = blocked). Engines are bitwise-identical,
	// so this is a dataflow/accounting choice, not a numeric one.
	Engine string
	// Seed keys the deterministic per-vertex neighbor sampler (and the
	// one-shot plan tune). Serving numerics are a pure function of
	// (vertex, seed, params, graph), never of batch composition.
	Seed uint64
	// CacheBudget bounds the hot-vertex embedding cache in bytes; 0
	// disables caching. The cache holds per-layer rows keyed by
	// (level, vertex) and is invalidated wholesale on Reload. It changes
	// performance only: cached logits are bitwise-equal to uncached.
	CacheBudget int64
	// CacheShards is the cache's lock-stripe count (default 8).
	CacheShards int
	// CacheWarm pre-admits up to K top-in-degree vertices per layer at
	// startup by running warm-up forwards over them before the first
	// request is accepted; 0 disables warm-up. Warm-up changes first-
	// request latency only — cached rows are bitwise-equal to computed.
	CacheWarm int
	// Shards > 1 serves through the sharded tier (internal/shard): the
	// CSR and feature rows split into contiguous per-shard ranges, a
	// router fans each micro-batch's frontier out to the owners, and
	// CacheBudget becomes a PER-SHARD budget (each simulated node brings
	// its own RAM). Logits stay bitwise-identical to single-node serving.
	Shards int
	// Replicas serves each shard span with R interchangeable nodes
	// (default 1 = unreplicated): the router fails over and hedges reads
	// across a span's replicas, first answer wins. Both RPC kinds are
	// pure functions of (request, model version), so any replica's answer
	// is bitwise the answer. With ShardAddrs, the flat address list must
	// group into R-way replica sets (all replicas of span 0 first).
	Replicas int
	// ShardPlacement picks the shard boundary policy: "vertex", "edge"
	// (default) or "cost" — see internal/shard.ParsePlacement.
	ShardPlacement string
	// ShardTimeout is the per-RPC deadline in the sharded tier: a modeled
	// straggler at or beyond it counts as a shard timeout and is retried
	// (default 250ms).
	ShardTimeout time.Duration
	// ShardAddrs routes the sharded tier over TCP: one wisegraph-shard
	// daemon address per shard. Non-empty addresses override Shards (the
	// shard count is the address count), each daemon is handshaken with
	// the full fleet configuration at startup, and logits stay bitwise-
	// identical to single-node serving. Cache budgets live daemon-side
	// (each daemon sizes its own cache from its own flags), but CacheWarm
	// still warms those caches through the fleet. Reload is rejected over
	// TCP: daemons own their checkpoints.
	ShardAddrs []string
}

// Validate rejects nonsensical configurations with a descriptive error
// instead of a late panic or silent misbehavior. Zero values are fine
// (they select defaults); negative knobs and mismatched fan-outs are not.
func (o Options) Validate(layers int) error {
	switch {
	case o.Workers < 0:
		return fmt.Errorf("serve: negative worker count %d", o.Workers)
	case o.BatchCap < 0:
		return fmt.Errorf("serve: negative batch cap %d", o.BatchCap)
	case o.QueueDepth < 0:
		return fmt.Errorf("serve: negative queue depth %d", o.QueueDepth)
	case o.MaxNodes < 0:
		return fmt.Errorf("serve: negative per-request node cap %d", o.MaxNodes)
	case o.BatchDelay < 0 || o.Deadline < 0 || o.BatchTimeout < 0:
		return fmt.Errorf("serve: negative duration option (delay %v, deadline %v, batch timeout %v)",
			o.BatchDelay, o.Deadline, o.BatchTimeout)
	case o.CacheBudget < 0:
		return fmt.Errorf("serve: negative cache budget %d bytes", o.CacheBudget)
	case o.CacheShards < 0:
		return fmt.Errorf("serve: negative cache shard count %d", o.CacheShards)
	case o.CacheBudget > 0 && layers <= 0:
		return fmt.Errorf("serve: cache enabled (budget %d) but model has no layers to cache", o.CacheBudget)
	case o.CacheWarm < 0:
		return fmt.Errorf("serve: negative cache warm-up count %d", o.CacheWarm)
	case o.Shards < 0:
		return fmt.Errorf("serve: negative shard count %d", o.Shards)
	case o.Replicas < 0:
		return fmt.Errorf("serve: negative replica count %d", o.Replicas)
	case o.ShardTimeout < 0:
		return fmt.Errorf("serve: negative shard timeout %v", o.ShardTimeout)
	case o.CacheWarm > 0 && o.CacheBudget <= 0 && len(o.ShardAddrs) == 0:
		// Remote fleets are exempt: their cache budgets are daemon-side
		// flags the router never sees, so warm-up is meaningful there
		// even with no router-side budget.
		return fmt.Errorf("serve: cache warm-up %d requested with caching disabled", o.CacheWarm)
	}
	if r := max(o.Replicas, 1); len(o.ShardAddrs) > 0 {
		if len(o.ShardAddrs)%r != 0 {
			return fmt.Errorf("serve: %d shard addresses cannot form %d-way replica groups", len(o.ShardAddrs), r)
		}
		if o.Shards > 1 && o.Shards != len(o.ShardAddrs)/r {
			return fmt.Errorf("serve: %d shards requested but %d shard addresses at %d replicas give %d",
				o.Shards, len(o.ShardAddrs), r, len(o.ShardAddrs)/r)
		}
	}
	if _, err := shard.ParsePlacement(o.ShardPlacement); err != nil {
		return err
	}
	if len(o.Fanouts) > 0 && len(o.Fanouts) != layers {
		return fmt.Errorf("serve: %d fan-outs for a %d-layer model (need one per layer)", len(o.Fanouts), layers)
	}
	for i, f := range o.Fanouts {
		if f < 1 {
			return fmt.Errorf("serve: fan-out[%d] = %d, want >= 1", i, f)
		}
	}
	return nil
}

func (o Options) withDefaults(layers int) Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.BatchCap <= 0 {
		o.BatchCap = 16
	}
	if o.BatchDelay <= 0 {
		o.BatchDelay = 2 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.BatchCap
	}
	if o.Deadline <= 0 {
		o.Deadline = 2 * time.Second
	}
	if o.BatchTimeout <= 0 {
		o.BatchTimeout = 500 * time.Millisecond
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 256
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = make([]int, layers)
		for i := range o.Fanouts {
			o.Fanouts[i] = 10
		}
	}
	if o.Spec == nil {
		spec := device.A100()
		o.Spec = &spec
	}
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if len(o.ShardAddrs) > 0 {
		o.Shards = len(o.ShardAddrs) / o.Replicas
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 250 * time.Millisecond
	}
	return o
}

// Prediction is the answer for one request: the predicted class per
// queried node and, when asked for, the raw logits rows.
type Prediction struct {
	Classes []int32
	Logits  [][]float32
}

type result struct {
	pred Prediction
	err  error
}

type request struct {
	ctx        context.Context
	nodes      []int32
	wantLogits bool
	enqueued   time.Time
	done       chan result // buffered(1); completed exactly once
}

// Engine is the serving engine. Build with NewEngine, query with Predict,
// stop with Shutdown.
type Engine struct {
	ds    *dataset.Dataset
	csr   *graph.CSR
	model *nn.Model // parameter source for worker replicas
	plan  *joint.Result
	opts  Options

	// cache is the hot-vertex embedding cache (nil when disabled).
	// modelMu orders Reload's parameter swap against workers re-syncing
	// their replicas; modelVersion makes (params, version) reads atomic —
	// a worker syncs under RLock and then tags every cache operation of
	// its batches with the version its replica actually holds.
	cache        *hotcache.Cache
	modelMu      sync.RWMutex
	modelVersion atomic.Uint64

	// fleet is the sharded serving tier (nil when Shards <= 1). In
	// sharded mode e.cache is nil — each shard owns its range's cache —
	// and workers route forwards through the fleet instead of running
	// them on their own replicas.
	fleet *shard.Fleet

	// admitMu orders admission against the drain flip: Predict admits
	// under RLock, Shutdown flips draining under Lock, so once Shutdown
	// holds the lock no new request can slip into the queue.
	admitMu  sync.RWMutex
	draining bool

	queue    chan *request
	stop     chan struct{} // closed once by Shutdown
	stopOnce sync.Once
	batches  chan []*request
	workerWG sync.WaitGroup

	inflight atomic.Int64
	stats    *Stats
	drained  chan struct{} // closed when workers have fully exited

	// devs are the workers' simulated devices, retained so /metrics can
	// aggregate the timing model's per-kernel counters across the pool.
	devs []*device.Device

	// testHookBatchStart, when non-nil, runs before each micro-batch
	// executes. Tests use it to stall or pace workers deterministically
	// (overload is impossible to provoke reliably by timing alone on a
	// single-CPU host); production code never sets it.
	testHookBatchStart func()
}

// NewEngine freezes an inference context over ds and model and starts the
// batcher plus the worker pool. The model is not used directly after this
// call: each worker owns a replica (parameters copied, activation caches
// private) so concurrent forwards never share mutable state.
func NewEngine(ds *dataset.Dataset, model *nn.Model, opts Options) (*Engine, error) {
	if model.Cfg.InDim != ds.Dim() {
		return nil, fmt.Errorf("serve: model expects %d input features, dataset has %d", model.Cfg.InDim, ds.Dim())
	}
	if model.Cfg.OutDim < ds.Classes() {
		return nil, fmt.Errorf("serve: model has %d outputs, dataset has %d classes", model.Cfg.OutDim, ds.Classes())
	}
	if err := opts.Validate(model.Cfg.Layers); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(model.Cfg.Layers)
	e := &Engine{
		ds:      ds,
		csr:     ds.Graph.BuildCSRByDst(),
		model:   model,
		opts:    opts,
		queue:   make(chan *request, opts.QueueDepth),
		stop:    make(chan struct{}),
		batches: make(chan []*request, opts.Workers),
		stats:   newStats(opts.BatchCap),
		drained: make(chan struct{}),
	}
	sharded := opts.Shards > 1 || opts.Replicas > 1 || len(opts.ShardAddrs) > 0
	if !sharded {
		e.cache = hotcache.New(hotcache.Config{Budget: opts.CacheBudget, Shards: opts.CacheShards})
	}
	e.plan = opts.Plan
	if e.plan == nil {
		e.plan = e.tunePlan()
	}
	if !kernels.ValidPlanFor(model.Cfg.Kind, e.plan.GraphPlan) {
		return nil, fmt.Errorf("serve: plan %v cannot execute %v", e.plan.GraphPlan, model.Cfg.Kind)
	}
	if eng, err := kernels.Select(opts.Engine); err != nil {
		return nil, err
	} else if err := eng.Probe(model.Cfg.Kind, e.plan.GraphPlan); err != nil {
		return nil, err
	}
	if sharded {
		pl, err := shard.ParsePlacement(opts.ShardPlacement)
		if err != nil {
			return nil, err
		}
		cfg := shard.Config{
			Shards:      opts.Shards,
			Replicas:    opts.Replicas,
			Placement:   pl,
			Workers:     opts.Workers,
			Fanouts:     opts.Fanouts,
			Seed:        opts.Seed,
			Engine:      opts.Engine,
			Spec:        opts.Spec,
			CacheBudget: opts.CacheBudget,
			CacheShards: opts.CacheShards,
			Timeout:     opts.ShardTimeout,
		}
		if len(opts.ShardAddrs) > 0 {
			e.fleet, err = shard.NewRemoteFleet(e.csr, ds.Features, ds.Graph.NumTypes, model, e.plan, cfg, opts.ShardAddrs)
		} else {
			e.fleet, err = shard.NewFleet(e.csr, ds.Features, ds.Graph.NumTypes, model, e.plan, cfg)
		}
		if err != nil {
			return nil, err
		}
	}
	if opts.CacheWarm > 0 {
		if err := e.warmCache(); err != nil {
			if e.fleet != nil {
				e.fleet.Close()
			}
			return nil, fmt.Errorf("serve: cache warm-up: %w", err)
		}
	}
	go e.batcher()
	for w := 0; w < opts.Workers; w++ {
		replica, err := e.newReplica()
		if err != nil {
			return nil, err
		}
		dev := device.New(*opts.Spec)
		e.devs = append(e.devs, dev)
		e.workerWG.Add(1)
		ectx := exec.NewCtx(dev)
		ectx.Engine = opts.Engine
		go e.worker(w, replica, ectx)
	}
	go func() {
		e.workerWG.Wait()
		// Workers gone → no caller can dispatch another shard RPC; drain
		// the fleet's worker pools before declaring the engine drained so
		// the in-flight = 0 invariant holds fleet-wide at shutdown.
		if e.fleet != nil {
			e.fleet.Close()
		}
		close(e.drained)
	}()
	return e, nil
}

// tunePlan runs the one-shot joint optimization on a representative
// sampled subgraph — the §6.3 pattern: search once, reuse the plan for
// every request with an O(E) partition.
func (e *Engine) tunePlan() *joint.Result {
	v := e.ds.Graph.NumVertices
	n := e.opts.BatchCap * e.opts.MaxNodes
	if n > v {
		n = v
	}
	if n < 1 {
		n = 1
	}
	seeds := make([]int32, n)
	stride := v / n
	if stride < 1 {
		stride = 1
	}
	for i := range seeds {
		seeds[i] = int32(i * stride % v)
	}
	rng := tensor.NewRNG(e.opts.Seed ^ 0x73657276) // "serv"
	sub := graph.NeighborSample(e.ds.Graph, e.csr, seeds, e.opts.Fanouts, rng)
	hidden := e.model.Cfg.Hidden
	return joint.Search(sub.Graph, e.model.Cfg.Kind, hidden, hidden, e.model.Cfg.NumTypes,
		joint.Options{Spec: *e.opts.Spec})
}

// newReplica stamps out a private copy of the model for one worker.
func (e *Engine) newReplica() (*nn.Model, error) {
	replica, err := nn.NewModel(e.model.Cfg)
	if err != nil {
		return nil, err
	}
	if err := replica.CopyParamsFrom(e.model); err != nil {
		return nil, err
	}
	return replica, nil
}

// Predict answers a node-classification query for the given parent-graph
// vertex ids. It blocks until the request's micro-batch completes, the
// context is done, or the request is shed at admission.
func (e *Engine) Predict(ctx context.Context, nodes []int32, wantLogits bool) (*Prediction, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("serve: empty node list")
	}
	if len(nodes) > e.opts.MaxNodes {
		return nil, fmt.Errorf("serve: %d nodes exceeds per-request cap %d", len(nodes), e.opts.MaxNodes)
	}
	v := int32(e.ds.Graph.NumVertices)
	for _, n := range nodes {
		if n < 0 || n >= v {
			return nil, fmt.Errorf("serve: node %d out of range [0,%d)", n, v)
		}
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.Deadline)
		defer cancel()
	}
	r := &request{
		ctx:        ctx,
		nodes:      nodes,
		wantLogits: wantLogits,
		enqueued:   time.Now(),
		done:       make(chan result, 1),
	}

	e.admitMu.RLock()
	if e.draining {
		e.admitMu.RUnlock()
		e.stats.rejected.Add(1)
		return nil, ErrDraining
	}
	select {
	case e.queue <- r:
		e.inflight.Add(1)
		e.stats.admitted.Add(1)
		e.admitMu.RUnlock()
	default:
		e.admitMu.RUnlock()
		e.stats.shed.Add(1)
		return nil, ErrOverloaded
	}

	select {
	case res := <-r.done:
		if res.err != nil {
			return nil, res.err
		}
		return &res.pred, nil
	case <-ctx.Done():
		// The request stays in the pipeline; the worker finishes it (and
		// decrements in-flight) when its batch comes up.
		return nil, ctx.Err()
	}
}

// finish completes a request exactly once: delivers the result, records
// latency, and decrements the in-flight count.
func (e *Engine) finish(r *request, res result) {
	select {
	case r.done <- res:
	default: // already finished (cannot happen: finish is called once)
	}
	e.stats.recordDone(time.Since(r.enqueued))
	e.inflight.Add(-1)
}

// cancel resolves a request whose context expired before its micro-batch
// ran: the error is delivered and in-flight decremented, but the request
// counts as canceled, not completed — its latency is its queue timeout,
// which must not pollute the served-latency histogram.
func (e *Engine) cancel(r *request, err error) {
	select {
	case r.done <- result{err: err}:
	default:
	}
	e.stats.recordCanceled()
	e.inflight.Add(-1)
}

// worker executes micro-batches with per-worker state: a model replica,
// a reusable partitioner, and a simulated-device context. Nothing mutable
// is shared between workers, so the pool scales without locks on the
// compute path. Before each batch the worker re-syncs its replica if a
// Reload published new parameters; the version it syncs to tags every
// cache operation of the batch, so a mid-batch reload can neither serve
// this replica stale rows nor admit its rows into the refreshed cache.
func (e *Engine) worker(id int, replica *nn.Model, ectx *exec.Ctx) {
	defer e.workerWG.Done()
	pt := core.NewPartitioner()
	defer pt.Release()
	var wver uint64 // replicas are stamped from version 0 at construction
	for batch := range e.batches {
		if e.fleet != nil {
			// Sharded: hold the model read-lock across the whole batch so
			// every shard RPC carries one coherent version — shard workers
			// re-sync their replicas from the shared source on a version
			// change, which is only safe while Reload's writer is excluded.
			e.modelMu.RLock()
			e.runBatch(batch, replica, e.modelVersion.Load(), pt, ectx)
			e.modelMu.RUnlock()
			continue
		}
		if e.modelVersion.Load() != wver {
			e.modelMu.RLock()
			wver = e.modelVersion.Load()
			err := replica.CopyParamsFrom(e.model)
			e.modelMu.RUnlock()
			if err != nil {
				// Impossible unless Reload's architecture check is broken;
				// fail the batch loudly rather than serve half-old params.
				for _, r := range batch {
					e.cancel(r, fmt.Errorf("serve: replica re-sync failed: %w", err))
				}
				continue
			}
		}
		e.runBatch(batch, replica, wver, pt, ectx)
	}
}

// Reload swaps in newly trained parameters for the same architecture:
// the shared parameter source is updated under the model lock, the model
// version is bumped and the hot-vertex cache flushed to it inside the
// same critical section. Workers re-sync under the read lock, so none
// can adopt (and tag cache reads with) version N until the flush has
// completed — otherwise a Get(N) during the sweep window could hit a
// not-yet-cleared row computed under the old parameters. In-flight
// batches on old replicas keep serving the old parameters coherently —
// their cache reads and writes carry the old version and are rejected
// from the moment the version is published.
func (e *Engine) Reload(m *nn.Model) error {
	if e.fleet != nil && e.fleet.Remote() {
		// Remote shards hold their own copy of the checkpoint, validated
		// against the router's by parameter hash at handshake; swapping
		// the router's copy alone would break bitwise parity. Roll the
		// daemons and restart instead.
		return fmt.Errorf("serve: reload is not supported over TCP shards (daemons own their checkpoints)")
	}
	if m.Cfg != e.model.Cfg {
		return fmt.Errorf("serve: reload across architectures: %+v vs %+v", m.Cfg, e.model.Cfg)
	}
	e.modelMu.Lock()
	if err := e.model.CopyParamsFrom(m); err != nil {
		e.modelMu.Unlock()
		return err
	}
	ver := e.modelVersion.Add(1)
	e.cache.InvalidateTo(ver)
	if e.fleet != nil {
		e.fleet.InvalidateTo(ver)
	}
	e.modelMu.Unlock()
	return nil
}

// runBatch is one coalesced forward pass: dedupe seeds across requests,
// run the leveled deterministic forward (probing the hot-vertex cache at
// every layer boundary), and demultiplex logits rows back to each caller.
func (e *Engine) runBatch(batch []*request, replica *nn.Model, ver uint64, pt *core.Partitioner, ectx *exec.Ctx) {
	if h := e.testHookBatchStart; h != nil {
		h()
	}
	// Drop requests whose deadline already passed while queued: they are
	// canceled, never completed, and their timed-out queue latencies stay
	// out of the served-latency histogram.
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			e.cancel(r, err)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	e.stats.recordBatch(len(live))
	e.execBatch(live, replica, ver, pt, ectx, true)
}

// execBatch executes one micro-batch over live requests. When the batch
// fails — an injected serve.batch fault, a modeled straggler overrunning
// the BatchTimeout budget, or the forward pass itself erroring — it
// degrades gracefully: one retry at half batch size (fresh fault draws)
// while mayRetry holds, after which the requests are failed.
func (e *Engine) execBatch(live []*request, replica *nn.Model, ver uint64, pt *core.Partitioner, ectx *exec.Ctx, mayRetry bool) {
	if f := fault.Check(fault.SiteServeBatch); f != nil {
		if f.Kind == fault.KindLatency {
			if f.Delay >= e.opts.BatchTimeout {
				e.stats.batchTimeouts.Add(1)
				e.failBatch(live, replica, ver, pt, ectx, mayRetry,
					fmt.Errorf("serve: batch overran %v budget: %w", e.opts.BatchTimeout, f.Err()))
				return
			}
			time.Sleep(f.Delay)
		} else {
			e.stats.batchFaults.Add(1)
			e.failBatch(live, replica, ver, pt, ectx, mayRetry, f.Err())
			return
		}
	}

	batchID := obs.NewID()
	ectx.TraceID = batchID // exec stages are recorded inside RunModelLayer
	spBatch := obs.Begin(obs.StageBatch, batchID)

	// Dedupe seeds across the batch, remembering each request's nodes.
	// The mux direction of coalescing counts as demux time (same
	// bookkeeping, opposite direction).
	sp := obs.Begin(obs.StageDemux, batchID)
	seedOf := make(map[int32]struct{}, len(live)*4)
	var seeds []int32
	for _, r := range live {
		for _, n := range r.nodes {
			if _, ok := seedOf[n]; !ok {
				seedOf[n] = struct{}{}
				seeds = append(seeds, n)
			}
		}
	}
	sp.End()

	// The sample span opens here, at the boundary, and is handed into the
	// forward so the call transition itself stays inside a span (the trace
	// must decompose the batch with no systematic gaps).
	var (
		logits *tensor.Tensor
		rowOf  map[int32]int32
		err    error
	)
	if e.fleet != nil {
		logits, rowOf, err = e.fleet.Forward(batchID, ver, seeds, obs.Begin(obs.StageSample, batchID))
	} else {
		logits, rowOf, err = e.forwardLeveled(batchID, ver, seeds, replica, pt, ectx, obs.Begin(obs.StageSample, batchID))
	}
	if err != nil {
		spBatch.End()
		e.stats.batchFaults.Add(1)
		e.failBatch(live, replica, ver, pt, ectx, mayRetry, fmt.Errorf("serve: forward failed: %w", err))
		return
	}

	sp = obs.Begin(obs.StageDemux, batchID)
	for _, r := range live {
		pred := Prediction{Classes: make([]int32, len(r.nodes))}
		if r.wantLogits {
			pred.Logits = make([][]float32, len(r.nodes))
		}
		for j, n := range r.nodes {
			lr := logits.Row(int(rowOf[n]))
			pred.Classes[j] = argmax(lr)
			if r.wantLogits {
				pred.Logits[j] = append([]float32(nil), lr...)
			}
		}
		e.finish(r, result{pred: pred})
	}
	sp.End()
	spBatch.End()
	tensor.Put(logits)
}

// failBatch resolves a failed micro-batch. With retry budget left it
// splits the batch in half and re-executes each half once — the graceful-
// degradation path: a fault that poisons a big coalesced batch should not
// fail every rider when smaller batches would have succeeded. Out of
// budget, every request is completed with the failure.
func (e *Engine) failBatch(live []*request, replica *nn.Model, ver uint64, pt *core.Partitioner, ectx *exec.Ctx, mayRetry bool, err error) {
	if mayRetry {
		e.stats.degraded.Add(1)
		mid := (len(live) + 1) / 2
		e.execBatch(live[:mid], replica, ver, pt, ectx, false)
		if mid < len(live) {
			e.execBatch(live[mid:], replica, ver, pt, ectx, false)
		}
		return
	}
	for _, r := range live {
		e.finish(r, result{err: err})
	}
}

func argmax(row []float32) int32 {
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return int32(bi)
}

// Shutdown drains the engine: new requests are rejected with ErrDraining,
// everything already admitted is answered, the batcher flushes the queue
// without waiting out fill deadlines, and workers exit once the last
// micro-batch completes. Returns ctx.Err() if the deadline passes first.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.admitMu.Lock()
	e.draining = true
	e.admitMu.Unlock()
	e.stopOnce.Do(func() { close(e.stop) })
	select {
	case <-e.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (e *Engine) Draining() bool {
	e.admitMu.RLock()
	defer e.admitMu.RUnlock()
	return e.draining
}

// InFlight returns the number of admitted-but-unanswered requests.
func (e *Engine) InFlight() int64 { return e.inflight.Load() }

// QueueDepth returns the current admission-queue occupancy.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// Plan exposes the frozen joint plan (for logging and tests).
func (e *Engine) Plan() *joint.Result { return e.plan }

// Options exposes the resolved options.
func (e *Engine) Options() Options { return e.opts }

// Stats returns a point-in-time metrics snapshot (the /statsz payload).
func (e *Engine) Stats() Snapshot {
	snap := e.stats.snapshot(e.inflight.Load(), len(e.queue))
	snap.Engine = e.engineName()
	if cs, ok := e.cacheStats(); ok {
		snap.CacheEnabled = true
		snap.CacheHits = cs.Hits
		snap.CacheMisses = cs.Misses
		if total := cs.Hits + cs.Misses; total > 0 {
			snap.CacheHitRate = float64(cs.Hits) / float64(total)
		}
		snap.CacheAdmitted = cs.Admitted
		snap.CacheEvicted = cs.Evicted
		snap.CacheRejected = cs.Rejected
		snap.CacheFlushes = cs.Flushes
		snap.CacheBytesResident = cs.Bytes
		snap.CacheEntries = cs.Entries
		snap.CacheCapacityBytes = cs.Capacity
	}
	if e.fleet != nil {
		snap.Shards = e.fleet.Size()
		snap.ShardReplicas = e.fleet.Replicas()
		snap.ShardPlacement = e.fleet.Placement().String()
		snap.PerShard = e.fleet.Stats()
		snap.ShardRetries, snap.ShardHedges, snap.ShardTimeouts, snap.ShardFailures = e.fleet.Resilience()
		snap.ShardInFlight = e.fleet.InFlight()
	}
	dev, _ := e.DeviceStats()
	snap.DeviceFLOPs = dev.FLOPs
	if snap.Completed > 0 {
		snap.FLOPsPerRequest = dev.FLOPs / float64(snap.Completed)
	}
	return snap
}

// Cache exposes the hot-vertex cache (nil when disabled, and nil in
// sharded mode — each shard owns its range's cache); tests and the
// metrics endpoint read its counters.
func (e *Engine) Cache() *hotcache.Cache { return e.cache }

// Fleet exposes the sharded serving tier (nil in single-node mode).
func (e *Engine) Fleet() *shard.Fleet { return e.fleet }

// cacheStats returns the caching accounting in effect: the single-node
// cache's, or the per-shard caches aggregated fleet-wide.
func (e *Engine) cacheStats() (hotcache.Stats, bool) {
	switch {
	case e.cache != nil:
		return e.cache.Snapshot(), true
	case e.fleet != nil && !e.fleet.Remote() && e.opts.CacheBudget > 0:
		return e.fleet.CacheStats(), true
	}
	return hotcache.Stats{}, false
}

// engineName is the resolved execution-engine name ("" means blocked).
func (e *Engine) engineName() string {
	if e.opts.Engine == "" {
		return "blocked"
	}
	return e.opts.Engine
}
