package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"wisegraph/internal/dataset"
	"wisegraph/internal/graph"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// testDataset synthesizes a small random dataset directly (no scaling
// machinery) so serving tests stay fast under -race.
func testDataset(t testing.TB, v, edges, dim, classes, numTypes int, seed uint64) *dataset.Dataset {
	t.Helper()
	rng := tensor.NewRNG(seed)
	g := &graph.Graph{NumVertices: v, NumTypes: numTypes}
	for i := 0; i < edges; i++ {
		g.Src = append(g.Src, int32(rng.Intn(v)))
		g.Dst = append(g.Dst, int32(rng.Intn(v)))
		if numTypes > 1 {
			g.Type = append(g.Type, int32(rng.Intn(numTypes)))
		}
	}
	feats := tensor.New(v, dim)
	data := feats.Data()
	for i := range data {
		data[i] = rng.Float32()
	}
	labels := make([]int32, v)
	for i := range labels {
		labels[i] = int32(rng.Intn(classes))
	}
	return &dataset.Dataset{
		Spec:     dataset.Spec{Name: "test", Classes: classes, NumTypes: numTypes},
		Scale:    1,
		Graph:    g,
		Features: feats,
		Labels:   labels,
	}
}

func testModel(t testing.TB, ds *dataset.Dataset, kind nn.ModelKind) *nn.Model {
	t.Helper()
	m, err := nn.NewModel(nn.Config{
		Kind: kind, InDim: ds.Dim(), Hidden: 8, OutDim: ds.Classes(),
		Layers: 2, NumTypes: ds.Graph.NumTypes, Seed: 7,
	})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func testEngine(t testing.TB, ds *dataset.Dataset, m *nn.Model, opts Options) *Engine {
	t.Helper()
	e, err := NewEngine(ds, m, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return e
}

func waitInFlightZero(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.InFlight() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("in-flight never drained: %d", e.InFlight())
}

func TestPredictBasic(t *testing.T) {
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{Workers: 1, Seed: 3})

	pred, err := e.Predict(context.Background(), []int32{0, 7, 59}, true)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if len(pred.Classes) != 3 || len(pred.Logits) != 3 {
		t.Fatalf("got %d classes, %d logits rows, want 3/3", len(pred.Classes), len(pred.Logits))
	}
	for j, c := range pred.Classes {
		if c < 0 || int(c) >= ds.Classes() {
			t.Fatalf("class[%d]=%d out of range [0,%d)", j, c, ds.Classes())
		}
		if len(pred.Logits[j]) != ds.Classes() {
			t.Fatalf("logits[%d] has %d cols, want %d", j, len(pred.Logits[j]), ds.Classes())
		}
		if argmax(pred.Logits[j]) != c {
			t.Fatalf("class[%d]=%d disagrees with argmax of returned logits", j, c)
		}
	}
}

// TestBatchDemuxParity checks the heart of the micro-batcher: coalescing
// requests (with overlapping, duplicated seeds) into one forward pass must
// return bit-identical results to issuing each request alone. Fan-outs
// cover every in-neighbor, so sampling is deterministic and each vertex
// that contributes aggregation keeps its full in-degree in both the
// per-request and the unioned subgraph — outputs must match exactly.
func TestBatchDemuxParity(t *testing.T) {
	const v = 60
	ds := testDataset(t, v, 240, 12, 5, 1, 1)
	m := testModel(t, ds, nn.SAGE)
	full := []int{v, v} // >= max in-degree: sampling takes every edge
	e := testEngine(t, ds, m, Options{
		Workers: 1, BatchCap: 8, BatchDelay: 30 * time.Millisecond, Fanouts: full, Seed: 3,
	})

	// Overlapping node sets: node 3 appears in every request, requests 0/4
	// are identical — exercises cross-request seed dedupe.
	reqs := make([][]int32, 8)
	for i := range reqs {
		reqs[i] = []int32{int32(i % 4), int32((i*7 + 11) % v), 3}
	}

	// Reference: sequential, one request per batch.
	want := make([]*Prediction, len(reqs))
	for i, nodes := range reqs {
		p, err := e.Predict(context.Background(), nodes, true)
		if err != nil {
			t.Fatalf("sequential Predict %d: %v", i, err)
		}
		want[i] = p
	}

	// Batched: all requests released together, coalesced by the batcher.
	got := make([]*Prediction, len(reqs))
	errs := make([]error, len(reqs))
	var start, done sync.WaitGroup
	start.Add(1)
	for i := range reqs {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			got[i], errs[i] = e.Predict(context.Background(), reqs[i], true)
		}(i)
	}
	start.Done()
	done.Wait()

	// Coalescing changes float summation order (the unioned subgraph
	// partitions differently), so logits agree to rounding, not bitwise.
	const eps = 1e-4
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("batched Predict %d: %v", i, errs[i])
		}
		for j := range reqs[i] {
			var margin float32 = 1 // reference gap between top-1 and top-2
			top := want[i].Classes[j]
			for k, w := range want[i].Logits[j] {
				g := got[i].Logits[j][k]
				if d := abs32(g - w); d > eps*max32(1, abs32(w)) {
					t.Fatalf("req %d node %d logit %d: batched %v != sequential %v",
						i, reqs[i][j], k, g, w)
				}
				if int32(k) != top {
					if gap := want[i].Logits[j][top] - w; gap < margin {
						margin = gap
					}
				}
			}
			// argmax may only flip on a genuine near-tie.
			if got[i].Classes[j] != top && margin > 2*eps {
				t.Errorf("req %d node %d: batched class %d != sequential %d (margin %v)",
					i, reqs[i][j], got[i].Classes[j], top, margin)
			}
		}
	}
	waitInFlightZero(t, e)
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// TestPredictAllModelKinds runs one request through every evaluated model
// so each gTask compute path is exercised behind the serving engine.
func TestPredictAllModelKinds(t *testing.T) {
	for _, kind := range []nn.ModelKind{nn.GCN, nn.SAGE, nn.SAGELSTM, nn.GAT, nn.RGCN} {
		t.Run(kind.String(), func(t *testing.T) {
			types := 1
			if kind == nn.RGCN {
				types = 3
			}
			ds := testDataset(t, 50, 200, 10, 4, types, 2)
			e := testEngine(t, ds, testModel(t, ds, kind), Options{Workers: 1, Seed: 5})
			pred, err := e.Predict(context.Background(), []int32{1, 2, 3}, false)
			if err != nil {
				t.Fatalf("Predict: %v", err)
			}
			if len(pred.Classes) != 3 {
				t.Fatalf("got %d classes, want 3", len(pred.Classes))
			}
		})
	}
}

func TestPredictValidation(t *testing.T) {
	ds := testDataset(t, 40, 160, 8, 4, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{Workers: 1, MaxNodes: 4})
	ctx := context.Background()
	for name, nodes := range map[string][]int32{
		"empty":    {},
		"negative": {-1},
		"too-big":  {40},
		"over-cap": {0, 1, 2, 3, 4},
	} {
		if _, err := e.Predict(ctx, nodes, false); err == nil {
			t.Errorf("%s: Predict accepted invalid input %v", name, nodes)
		}
	}
}

// TestShedWhenQueueFull stalls the worker pool behind a gate and keeps
// adding requests until the tiny pipeline (queue 1 + batcher + dispatch +
// worker) is full: the next arrival must be refused immediately with
// ErrOverloaded, and once the gate opens every admitted request completes.
func TestShedWhenQueueFull(t *testing.T) {
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 1, BatchCap: 1, QueueDepth: 1, Seed: 3,
	})
	release := make(chan struct{})
	e.testHookBatchStart = func() { <-release }

	const maxTries = 64
	var wg sync.WaitGroup
	errCh := make(chan error, maxTries)
	launched := 0
	for i := 0; i < maxTries && e.Stats().Shed == 0; i++ {
		launched++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Predict(context.Background(), []int32{int32(i % 60)}, false)
			errCh <- err
		}(i)
		time.Sleep(time.Millisecond) // let the pipeline absorb what it can
	}
	close(release)
	wg.Wait()
	close(errCh)

	var shed, completed, other int
	for err := range errCh {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			other++
			t.Errorf("unexpected error: %v", err)
		}
	}
	if other != 0 {
		t.Fatalf("%d requests failed with unexpected errors", other)
	}
	if shed == 0 {
		t.Fatalf("pipeline never shed (launched %d of max %d with workers stalled)", launched, maxTries)
	}
	if completed == 0 {
		t.Fatal("no admitted request completed after release")
	}
	if completed+shed != launched {
		t.Fatalf("completed %d + shed %d != launched %d", completed, shed, launched)
	}
	if e.Stats().Shed == 0 {
		t.Fatal("stats recorded zero shed")
	}
	waitInFlightZero(t, e)
}

func TestPredictContextCanceled(t *testing.T) {
	ds := testDataset(t, 40, 160, 8, 4, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Predict(ctx, []int32{1}, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The worker still owes the abandoned request its in-flight decrement.
	waitInFlightZero(t, e)
	if e.Stats().Canceled == 0 {
		t.Error("canceled request not counted")
	}
}

// TestDrain checks graceful shutdown: everything admitted before Shutdown
// is answered, later arrivals get ErrDraining, and the engine ends with
// zero in-flight requests.
func TestDrain(t *testing.T) {
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 2, BatchCap: 4, BatchDelay: 5 * time.Millisecond, QueueDepth: 64,
	})

	const n = 24
	var wg sync.WaitGroup
	errsCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Predict(context.Background(), []int32{int32(i % 60)}, false)
			errsCh <- err
		}(i)
	}

	time.Sleep(2 * time.Millisecond) // let a few requests get admitted
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	close(errsCh)

	var served, rejected int
	for err := range errsCh {
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrDraining), errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatalf("unexpected error during drain: %v", err)
		}
	}
	if served+rejected != n {
		t.Fatalf("served %d + rejected %d != %d", served, rejected, n)
	}
	if got := e.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", got)
	}
	if !e.Draining() {
		t.Fatal("Draining() false after Shutdown")
	}
	if _, err := e.Predict(context.Background(), []int32{0}, false); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Predict: got %v, want ErrDraining", err)
	}
	// Shutdown is idempotent.
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestEngineRejectsMismatchedModel(t *testing.T) {
	ds := testDataset(t, 40, 160, 8, 4, 1, 1)
	m, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: ds.Dim() + 1, Hidden: 8, OutDim: ds.Classes(), Layers: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(ds, m, Options{}); err == nil {
		t.Fatal("NewEngine accepted a model with the wrong input dim")
	}
}
