package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free latency histogram: power-of-two buckets over
// nanoseconds, each an atomic counter. Observation is one atomic add on
// the hot path (no locks, no allocation); quantiles are computed from a
// snapshot of the counters, so they are approximate to within one bucket
// (~2× resolution), which is plenty for p50/p95/p99 serving dashboards.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// histBuckets covers 1 ns .. ~2.3 h (2^63 ns overflows long before that
// matters; bucket b holds durations in [2^(b-1), 2^b) ns).
const histBuckets = 43

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1])
// from a point-in-time snapshot of the buckets.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for b, c := range counts {
		cum += c
		if cum > rank {
			if b == 0 {
				return 1
			}
			// upper bound of the bucket range [2^(b-1), 2^b)
			return time.Duration(uint64(1) << uint(b))
		}
	}
	return time.Duration(uint64(1) << uint(histBuckets-1))
}

// qpsRing tracks completions per wall-clock second over a short window so
// /statsz can report recent throughput, not just the lifetime average.
// Slots are (second, count) atomics; a slot is lazily reset by the first
// marker of a new second (CAS decides the winner, losers just add).
type qpsRing struct {
	secs   [qpsSlots]atomic.Int64
	counts [qpsSlots]atomic.Uint64
}

const (
	qpsSlots  = 16
	qpsWindow = 10 // seconds summed by Recent
)

// Mark records one completion at the given wall-clock second.
func (r *qpsRing) Mark(sec int64) {
	i := int(sec % qpsSlots)
	if old := r.secs[i].Load(); old != sec {
		if r.secs[i].CompareAndSwap(old, sec) {
			r.counts[i].Store(0)
		}
	}
	r.counts[i].Add(1)
}

// Recent returns completions/second averaged over the last full window
// (excluding the in-progress second, which would bias low).
func (r *qpsRing) Recent(sec int64) float64 {
	var total uint64
	for i := 0; i < qpsSlots; i++ {
		s := r.secs[i].Load()
		if s >= sec-qpsWindow && s < sec {
			total += r.counts[i].Load()
		}
	}
	return float64(total) / qpsWindow
}

// Stats aggregates every serving counter. All fields are atomics updated
// lock-free on the request path; Snapshot assembles a JSON-friendly view.
type Stats struct {
	start time.Time

	admitted  atomic.Uint64 // entered the admission queue
	completed atomic.Uint64 // got a response (including per-request errors)
	shed      atomic.Uint64 // 429: queue full
	rejected  atomic.Uint64 // 503: draining
	canceled  atomic.Uint64 // request context expired before compute
	batches   atomic.Uint64

	// batchSizes[n] counts micro-batches that coalesced n requests
	// (index 0 unused; len = BatchCap+1).
	batchSizes []atomic.Uint64

	latency Histogram
	qps     qpsRing
}

func newStats(batchCap int) *Stats {
	return &Stats{start: time.Now(), batchSizes: make([]atomic.Uint64, batchCap+1)}
}

func (s *Stats) recordBatch(n int) {
	s.batches.Add(1)
	if n >= len(s.batchSizes) {
		n = len(s.batchSizes) - 1
	}
	s.batchSizes[n].Add(1)
}

func (s *Stats) recordDone(lat time.Duration) {
	s.completed.Add(1)
	s.latency.Observe(lat)
	s.qps.Mark(time.Now().Unix())
}

// Snapshot is the /statsz payload.
type Snapshot struct {
	UptimeSeconds    float64        `json:"uptimeSeconds"`
	Admitted         uint64         `json:"admitted"`
	Completed        uint64         `json:"completed"`
	Shed             uint64         `json:"shed"`
	RejectedDraining uint64         `json:"rejectedDraining"`
	Canceled         uint64         `json:"canceled"`
	InFlight         int64          `json:"inFlight"`
	QueueDepth       int            `json:"queueDepth"`
	Batches          uint64         `json:"batches"`
	AvgBatchSize     float64        `json:"avgBatchSize"`
	BatchSizeDist    map[int]uint64 `json:"batchSizeDist"`
	LifetimeQPS      float64        `json:"lifetimeQPS"`
	RecentQPS        float64        `json:"recentQPS"`
	LatencyMeanMs    float64        `json:"latencyMeanMs"`
	LatencyP50Ms     float64        `json:"latencyP50Ms"`
	LatencyP95Ms     float64        `json:"latencyP95Ms"`
	LatencyP99Ms     float64        `json:"latencyP99Ms"`
}

func (s *Stats) snapshot(inFlight int64, queueDepth int) Snapshot {
	up := time.Since(s.start).Seconds()
	completed := s.completed.Load()
	dist := make(map[int]uint64)
	var sizeSum uint64
	for n := range s.batchSizes {
		if c := s.batchSizes[n].Load(); c > 0 {
			dist[n] = c
			sizeSum += uint64(n) * c
		}
	}
	batches := s.batches.Load()
	avg := 0.0
	if batches > 0 {
		avg = float64(sizeSum) / float64(batches)
	}
	lifetime := 0.0
	if up > 0 {
		lifetime = float64(completed) / up
	}
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	return Snapshot{
		UptimeSeconds:    up,
		Admitted:         s.admitted.Load(),
		Completed:        completed,
		Shed:             s.shed.Load(),
		RejectedDraining: s.rejected.Load(),
		Canceled:         s.canceled.Load(),
		InFlight:         inFlight,
		QueueDepth:       queueDepth,
		Batches:          batches,
		AvgBatchSize:     avg,
		BatchSizeDist:    dist,
		LifetimeQPS:      lifetime,
		RecentQPS:        s.qps.Recent(time.Now().Unix()),
		LatencyMeanMs:    ms(s.latency.Mean()),
		LatencyP50Ms:     ms(s.latency.Quantile(0.50)),
		LatencyP95Ms:     ms(s.latency.Quantile(0.95)),
		LatencyP99Ms:     ms(s.latency.Quantile(0.99)),
	}
}
