package serve

import (
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"wisegraph/internal/device"
	"wisegraph/internal/fault"
	"wisegraph/internal/obs"
	"wisegraph/internal/shard"
)

// Histogram is the lock-free power-of-two latency histogram, shared with
// the observability layer (internal/obs) so serving latencies and stage
// timings use one implementation and one quantile estimator.
type Histogram = obs.Histogram

// histBuckets is kept for the serve tests' bucket-geometry assertions.
const histBuckets = obs.NumBuckets

// qpsRing tracks completions per wall-clock second over a short window so
// /statsz can report recent throughput, not just the lifetime average.
// Slots are (second, count) atomics; a slot is lazily reset by the first
// marker of a new second (CAS decides the winner, losers just add).
type qpsRing struct {
	secs   [qpsSlots]atomic.Int64
	counts [qpsSlots]atomic.Uint64
}

const (
	qpsSlots  = 16
	qpsWindow = 10 // seconds summed by Recent
)

// Mark records one completion at the given wall-clock second.
func (r *qpsRing) Mark(sec int64) {
	i := int(sec % qpsSlots)
	if old := r.secs[i].Load(); old != sec {
		if r.secs[i].CompareAndSwap(old, sec) {
			r.counts[i].Store(0)
		}
	}
	r.counts[i].Add(1)
}

// Recent returns completions/second averaged over the last full window
// (excluding the in-progress second, which would bias low). The divisor
// is capped at the full seconds of uptime so a freshly started server
// (or a short bench run) reports its actual recent rate instead of a
// near-zero number diluted by seconds that never happened.
func (r *qpsRing) Recent(sec int64, uptime float64) float64 {
	window := int64(qpsWindow)
	if up := int64(uptime); up < window {
		window = up
	}
	if window < 1 {
		window = 1
	}
	var total uint64
	for i := 0; i < qpsSlots; i++ {
		s := r.secs[i].Load()
		if s >= sec-window && s < sec {
			total += r.counts[i].Load()
		}
	}
	return float64(total) / float64(window)
}

// Stats aggregates every serving counter. All fields are atomics updated
// lock-free on the request path; Snapshot assembles a JSON-friendly view.
//
// Invariant: every admitted request is eventually counted in exactly one
// of completed or canceled, so admitted = completed + canceled + in-flight
// at all times (shed and rejected requests are never admitted).
type Stats struct {
	start time.Time

	admitted  atomic.Uint64 // entered the admission queue
	completed atomic.Uint64 // computed a response (including per-request errors)
	shed      atomic.Uint64 // 429: queue full
	rejected  atomic.Uint64 // 503: draining
	canceled  atomic.Uint64 // request context expired before compute
	batches   atomic.Uint64

	// resilience counters (fault-injection aware)
	batchFaults   atomic.Uint64 // batches failed by a fault or forward error
	batchTimeouts atomic.Uint64 // batches whose modeled straggler overran BatchTimeout
	degraded      atomic.Uint64 // graceful-degradation retries at half batch size

	// batchSizes[n] counts micro-batches that coalesced n requests
	// (index 0 unused; len = BatchCap+1).
	batchSizes []atomic.Uint64

	latency Histogram
	qps     qpsRing
}

func newStats(batchCap int) *Stats {
	return &Stats{start: time.Now(), batchSizes: make([]atomic.Uint64, batchCap+1)}
}

func (s *Stats) recordBatch(n int) {
	s.batches.Add(1)
	if n >= len(s.batchSizes) {
		n = len(s.batchSizes) - 1
	}
	s.batchSizes[n].Add(1)
}

// recordDone counts one computed response. Only completed requests feed
// the latency histogram and QPS ring; canceled requests go through
// recordCanceled so their queue-timeout latencies cannot pollute p99.
func (s *Stats) recordDone(lat time.Duration) {
	s.completed.Add(1)
	s.latency.Observe(lat)
	s.qps.Mark(time.Now().Unix())
}

// recordCanceled counts one request whose context expired before its
// micro-batch ran.
func (s *Stats) recordCanceled() {
	s.canceled.Add(1)
}

// Snapshot is the /statsz payload.
type Snapshot struct {
	UptimeSeconds    float64        `json:"uptimeSeconds"`
	Admitted         uint64         `json:"admitted"`
	Completed        uint64         `json:"completed"`
	Shed             uint64         `json:"shed"`
	RejectedDraining uint64         `json:"rejectedDraining"`
	Canceled         uint64         `json:"canceled"`
	InFlight         int64          `json:"inFlight"`
	QueueDepth       int            `json:"queueDepth"`
	Batches          uint64         `json:"batches"`
	BatchFaults      uint64         `json:"batchFaults"`
	BatchTimeouts    uint64         `json:"batchTimeouts"`
	DegradedRetries  uint64         `json:"degradedRetries"`
	AvgBatchSize     float64        `json:"avgBatchSize"`
	BatchSizeDist    map[int]uint64 `json:"batchSizeDist"`
	LifetimeQPS      float64        `json:"lifetimeQPS"`
	RecentQPS        float64        `json:"recentQPS"`
	LatencyMeanMs    float64        `json:"latencyMeanMs"`
	LatencyP50Ms     float64        `json:"latencyP50Ms"`
	LatencyP95Ms     float64        `json:"latencyP95Ms"`
	LatencyP99Ms     float64        `json:"latencyP99Ms"`

	// Engine is the execution engine name (blocked|fused|device).
	Engine string `json:"engine"`

	// Hot-vertex cache accounting (all zero when the cache is disabled).
	CacheEnabled       bool    `json:"cacheEnabled"`
	CacheHits          uint64  `json:"cacheHits"`
	CacheMisses        uint64  `json:"cacheMisses"`
	CacheHitRate       float64 `json:"cacheHitRate"` // hits / (hits+misses)
	CacheAdmitted      uint64  `json:"cacheAdmitted"`
	CacheEvicted       uint64  `json:"cacheEvicted"`
	CacheRejected      uint64  `json:"cacheRejected"`
	CacheFlushes       uint64  `json:"cacheFlushes"`
	CacheBytesResident int64   `json:"cacheBytesResident"`
	CacheEntries       int     `json:"cacheEntries"`
	CacheCapacityBytes int64   `json:"cacheCapacityBytes"`

	// Modeled compute from the simulated devices, summed across workers.
	// FLOPsPerRequest = DeviceFLOPs / Completed — the redundant-compute
	// metric the hot-vertex cache is meant to push down.
	DeviceFLOPs     float64 `json:"deviceFLOPs"`
	FLOPsPerRequest float64 `json:"flopsPerRequest"`

	// Sharded serving tier (all absent/zero in single-node mode). The
	// cache fields above aggregate the per-shard caches fleet-wide;
	// PerShard carries the per-shard breakdown including each shard's
	// router-side RPC QPS and latency quantiles.
	Shards         int           `json:"shards,omitempty"`
	ShardReplicas  int           `json:"shardReplicas,omitempty"`
	ShardPlacement string        `json:"shardPlacement,omitempty"`
	ShardRetries   uint64        `json:"shardRetries,omitempty"`
	ShardHedges    uint64        `json:"shardHedges,omitempty"`
	ShardTimeouts  uint64        `json:"shardTimeouts,omitempty"`
	ShardFailures  uint64        `json:"shardFailures,omitempty"`
	ShardInFlight  int64         `json:"shardInFlight,omitempty"`
	PerShard       []shard.Stats `json:"perShard,omitempty"`
}

func (s *Stats) snapshot(inFlight int64, queueDepth int) Snapshot {
	up := time.Since(s.start).Seconds()
	completed := s.completed.Load()
	dist := make(map[int]uint64)
	var sizeSum uint64
	for n := range s.batchSizes {
		if c := s.batchSizes[n].Load(); c > 0 {
			dist[n] = c
			sizeSum += uint64(n) * c
		}
	}
	batches := s.batches.Load()
	avg := 0.0
	if batches > 0 {
		avg = float64(sizeSum) / float64(batches)
	}
	lifetime := 0.0
	if up > 0 {
		lifetime = float64(completed) / up
	}
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	return Snapshot{
		UptimeSeconds:    up,
		Admitted:         s.admitted.Load(),
		Completed:        completed,
		Shed:             s.shed.Load(),
		RejectedDraining: s.rejected.Load(),
		Canceled:         s.canceled.Load(),
		InFlight:         inFlight,
		QueueDepth:       queueDepth,
		Batches:          batches,
		BatchFaults:      s.batchFaults.Load(),
		BatchTimeouts:    s.batchTimeouts.Load(),
		DegradedRetries:  s.degraded.Load(),
		AvgBatchSize:     avg,
		BatchSizeDist:    dist,
		LifetimeQPS:      lifetime,
		RecentQPS:        s.qps.Recent(time.Now().Unix(), up),
		LatencyMeanMs:    ms(s.latency.Mean()),
		LatencyP50Ms:     ms(s.latency.Quantile(0.50)),
		LatencyP95Ms:     ms(s.latency.Quantile(0.95)),
		LatencyP99Ms:     ms(s.latency.Quantile(0.99)),
	}
}

// WriteMetrics writes the full Prometheus text exposition for this
// engine: the serving counters, the request-latency and batch-size
// histograms, the per-stage timing histograms from the observability
// layer, and the per-kernel counters aggregated across the worker pool's
// simulated devices.
func (e *Engine) WriteMetrics(w io.Writer) error {
	s := e.stats
	p := obs.NewPromWriter(w)
	p.Gauge("wisegraph_serve_uptime_seconds", "", time.Since(s.start).Seconds())
	p.Counter("wisegraph_serve_admitted_total", "", float64(s.admitted.Load()))
	p.Counter("wisegraph_serve_completed_total", "", float64(s.completed.Load()))
	p.Counter("wisegraph_serve_canceled_total", "", float64(s.canceled.Load()))
	p.Counter("wisegraph_serve_shed_total", "", float64(s.shed.Load()))
	p.Counter("wisegraph_serve_rejected_draining_total", "", float64(s.rejected.Load()))
	p.Counter("wisegraph_serve_batches_total", "", float64(s.batches.Load()))
	p.Counter("wisegraph_serve_batch_faults_total", "", float64(s.batchFaults.Load()))
	p.Counter("wisegraph_serve_batch_timeouts_total", "", float64(s.batchTimeouts.Load()))
	p.Counter("wisegraph_serve_degraded_retries_total", "", float64(s.degraded.Load()))
	p.Gauge("wisegraph_serve_in_flight", "", float64(e.inflight.Load()))
	p.Gauge("wisegraph_serve_queue_depth", "", float64(len(e.queue)))
	up := time.Since(s.start).Seconds()
	p.Gauge("wisegraph_serve_recent_qps", "", s.qps.Recent(time.Now().Unix(), up))
	p.Histogram("wisegraph_serve_latency_seconds", "", &s.latency)

	// Hot-vertex cache accounting (only exported when the cache is on;
	// in sharded mode these aggregate the per-shard caches).
	if cs, ok := e.cacheStats(); ok {
		p.Counter("wisegraph_serve_cache_hits_total", "", float64(cs.Hits))
		p.Counter("wisegraph_serve_cache_misses_total", "", float64(cs.Misses))
		p.Counter("wisegraph_serve_cache_admitted_total", "", float64(cs.Admitted))
		p.Counter("wisegraph_serve_cache_evicted_total", "", float64(cs.Evicted))
		p.Counter("wisegraph_serve_cache_rejected_total", "", float64(cs.Rejected))
		p.Counter("wisegraph_serve_cache_flushes_total", "", float64(cs.Flushes))
		p.Gauge("wisegraph_serve_cache_bytes_resident", "", float64(cs.Bytes))
		p.Gauge("wisegraph_serve_cache_entries", "", float64(cs.Entries))
		p.Gauge("wisegraph_serve_cache_capacity_bytes", "", float64(cs.Capacity))
	}

	// Sharded-tier accounting: per-shard RPC traffic, resilience counters
	// and cache residency, labeled by shard id.
	if e.fleet != nil {
		p.Gauge("wisegraph_serve_shards", "", float64(e.fleet.Size()))
		for _, ss := range e.fleet.Stats() {
			l := `shard="` + strconv.Itoa(ss.ID) + `"`
			p.Counter("wisegraph_shard_rpcs_total", l, float64(ss.RPCs))
			p.Counter("wisegraph_shard_computes_total", l, float64(ss.Computes))
			p.Counter("wisegraph_shard_retries_total", l, float64(ss.Retries))
			p.Counter("wisegraph_shard_hedges_total", l, float64(ss.Hedges))
			p.Counter("wisegraph_shard_timeouts_total", l, float64(ss.Timeouts))
			p.Counter("wisegraph_shard_failures_total", l, float64(ss.Failures))
			p.Counter("wisegraph_shard_bytes_in_total", l, float64(ss.BytesIn))
			p.Counter("wisegraph_shard_bytes_out_total", l, float64(ss.BytesOut))
			p.Gauge("wisegraph_shard_in_flight", l, float64(ss.InFlight))
			p.Counter("wisegraph_shard_cache_hits_total", l, float64(ss.CacheHits))
			p.Counter("wisegraph_shard_cache_misses_total", l, float64(ss.CacheMisses))
			p.Gauge("wisegraph_shard_cache_bytes_resident", l, float64(ss.CacheBytes))
			for _, rs := range ss.Replicas {
				rl := l + `,replica="` + strconv.Itoa(rs.Replica) + `"`
				p.Gauge("wisegraph_shard_replica_health", rl, rs.Health)
				p.Counter("wisegraph_shard_replica_wins_total", rl, float64(rs.Wins))
				p.Counter("wisegraph_shard_replica_fails_total", rl, float64(rs.Fails))
			}
		}
	}

	// Batch-size distribution as an explicit-bounds histogram.
	bounds := make([]float64, 0, len(s.batchSizes)-1)
	counts := make([]uint64, 0, len(s.batchSizes)-1)
	var sizeSum float64
	for n := 1; n < len(s.batchSizes); n++ {
		c := s.batchSizes[n].Load()
		bounds = append(bounds, float64(n))
		counts = append(counts, c)
		sizeSum += float64(n) * float64(c)
	}
	p.HistogramFromBuckets("wisegraph_serve_batch_size", "", bounds, counts, sizeSum)

	// Per-stage timings (sample/partition/exec/collective/demux/batch/step).
	p.StageHistograms("wisegraph_stage_duration_seconds")

	// Fault-injection accounting (only present when a schedule is active).
	if snap := fault.Snapshot(); snap != nil {
		sites := make([]string, 0, len(snap))
		for site := range snap {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		for _, site := range sites {
			c := snap[site]
			p.Counter("wisegraph_fault_draws_total", `site="`+site+`"`, float64(c.Draws))
			p.Counter("wisegraph_fault_injected_total", `site="`+site+`",kind="error"`, float64(c.Errors))
			p.Counter("wisegraph_fault_injected_total", `site="`+site+`",kind="corrupt"`, float64(c.Corrupts))
			p.Counter("wisegraph_fault_injected_total", `site="`+site+`",kind="latency"`, float64(c.Latencies))
		}
	}

	// Per-kernel counters from the timing model, across all workers.
	agg, kernels := e.DeviceStats()
	names := make([]string, 0, len(kernels))
	for name := range kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ks := kernels[name]
		l := `kernel="` + name + `"`
		p.Counter("wisegraph_device_kernel_launches_total", l, float64(ks.Launches))
		p.Counter("wisegraph_device_kernel_sim_seconds_total", l, ks.SimSeconds)
		p.Counter("wisegraph_device_kernel_flops_total", l, ks.FLOPs)
		p.Counter("wisegraph_device_kernel_bytes_total", l, ks.Bytes)
	}
	cats := make([]string, 0, len(agg.ByCategory))
	for cat := range agg.ByCategory {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		p.Counter("wisegraph_device_sim_seconds_total", `category="`+cat+`"`, agg.ByCategory[cat])
	}
	p.Counter("wisegraph_device_kernels_total", "", float64(agg.Kernels))
	return p.Err()
}

// DeviceStats aggregates the simulated-device accounting across the
// worker pool — plus, in sharded mode, across every shard worker's
// device, where the fleet's compute actually runs.
func (e *Engine) DeviceStats() (device.Stats, map[string]device.KernelStats) {
	total := device.Stats{ByCategory: map[string]float64{}}
	kernels := map[string]device.KernelStats{}
	devs := e.devs
	if e.fleet != nil {
		devs = append(append([]*device.Device(nil), devs...), e.fleet.Devices()...)
	}
	for _, d := range devs {
		st := d.Stats()
		total.SimSeconds += st.SimSeconds
		total.Kernels += st.Kernels
		total.FLOPs += st.FLOPs
		total.Bytes += st.Bytes
		for cat, v := range st.ByCategory {
			total.ByCategory[cat] += v
		}
		for name, ks := range d.KernelStats() {
			m := kernels[name]
			m.Launches += ks.Launches
			m.SimSeconds += ks.SimSeconds
			m.FLOPs += ks.FLOPs
			m.Bytes += ks.Bytes
			kernels[name] = m
		}
	}
	return total, kernels
}
