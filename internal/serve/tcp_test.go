package serve

import (
	"bufio"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wisegraph/internal/dataset"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
)

// The cross-process battery: real wisegraph-shard daemons on localhost
// TCP must serve logits bitwise-identical to single-node serving, and a
// SIGTERM must drain them to in-flight=0. This is the only test that
// crosses a process boundary — everything wire-level below it is covered
// in internal/shard.

// shardDaemon is one spawned wisegraph-shard process.
type shardDaemon struct {
	cmd  *exec.Cmd
	addr string

	mu   sync.Mutex
	out  []string
	done chan struct{}
}

// startShardDaemon spawns the built daemon binary with flags that mirror
// exactly what the router-side test reconstructs in-process, and waits
// for its listen address.
func startShardDaemon(t *testing.T, bin string) *shardDaemon {
	t.Helper()
	d := &shardDaemon{done: make(chan struct{})}
	d.cmd = exec.Command(bin,
		"-dataset", "AR", "-scale", "400", "-seed", "1", "-noise", "0.8",
		"-model", "RGCN", "-hidden", "16", "-layers", "2",
		"-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	d.cmd.Stderr = d.cmd.Stdout
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("starting wisegraph-shard: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		defer close(d.done)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.out = append(d.out, line)
			d.mu.Unlock()
			if a, ok := strings.CutPrefix(line, "wisegraph-shard listening on "); ok {
				addrCh <- a
			}
		}
	}()
	t.Cleanup(func() {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	})
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("wisegraph-shard never reported a listen address; output:\n%s", d.output())
	}
	return d
}

func (d *shardDaemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return strings.Join(d.out, "\n")
}

// drain sends SIGTERM and asserts the daemon reports a clean drain.
func (d *shardDaemon) drain(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-d.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; output:\n%s", d.output())
	}
	d.cmd.Wait()
	if !strings.Contains(d.output(), "drained: in-flight=0") {
		t.Fatalf("daemon did not drain cleanly; output:\n%s", d.output())
	}
}

// TestTCPCrossProcessBitwise is the end-to-end acceptance test for the
// TCP transport: spawn real wisegraph-shard processes, point a serve
// engine at them with -shard-addrs semantics, and demand logits bitwise-
// identical to single-node serving at 1/2/4 process-shards × every
// engine. Both ends reconstruct the AR replica and the untrained RGCN
// checkpoint from the same flags, and the Hello handshake (parameter
// hash, recomputed boundaries, model shape) proves it before any RPC.
func TestTCPCrossProcessBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "wisegraph-shard")
	build := exec.Command("go", "build", "-o", bin, "wisegraph/cmd/wisegraph-shard")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building wisegraph-shard: %v\n%s", err, out)
	}

	// The router side: the same dataset and checkpoint the daemon flags
	// reconstruct (LoadDataset and loadModel are deterministic in these
	// parameters — the ParamSum handshake would catch any drift).
	ds, err := dataset.Load("AR", dataset.Options{Scale: 400, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.RGCN, InDim: ds.Dim(), Hidden: 16, OutDim: ds.Classes(),
		Layers: 2, NumTypes: ds.Graph.NumTypes, Seed: 1,
	})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}

	base := Options{Workers: 2, Seed: 9, Fanouts: []int{4, 4}, ShardTimeout: 10 * time.Second}
	ref := testEngine(t, ds, m, base)
	v := int32(ds.Graph.NumVertices)
	requests := [][]int32{
		{0, 5, v - 1},
		{v / 2, 3, 3, v / 3},
	}
	want := make([][][]float32, len(requests))
	for i, nodes := range requests {
		want[i] = predictLogits(t, ref, nodes)
	}

	for _, shards := range []int{1, 2, 4} {
		for _, engine := range kernels.EngineNames() {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, engine), func(t *testing.T) {
				// Fresh daemons per combination: a daemon's identity is
				// sticky to the first Hello it accepts, and the engine
				// rides in the Hello.
				daemons := make([]*shardDaemon, shards)
				opts := base
				opts.Engine = engine
				opts.Plan = ref.Plan()
				opts.ShardAddrs = make([]string, shards)
				for i := range daemons {
					daemons[i] = startShardDaemon(t, bin)
					opts.ShardAddrs[i] = daemons[i].addr
				}
				e, err := NewEngine(ds, m, opts)
				if err != nil {
					t.Fatalf("NewEngine over TCP: %v", err)
				}
				if fl := e.Fleet(); fl == nil || !fl.Remote() {
					t.Fatal("shard addresses built no remote fleet")
				}
				for i, nodes := range requests {
					got := predictLogits(t, e, nodes)
					for j := range got {
						for k := range got[j] {
							if got[j][k] != want[i][j][k] {
								t.Fatalf("request %d node %d logit %d: %v over TCP, want %v single-node",
									i, j, k, got[j][k], want[i][j][k])
							}
						}
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := e.Shutdown(ctx); err != nil {
					t.Fatalf("shutdown: %v", err)
				}
				for _, d := range daemons {
					d.drain(t)
				}
			})
		}
	}
}
