package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"wisegraph/internal/dataset"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// The cross-process battery: real wisegraph-shard daemons on localhost
// TCP must serve logits bitwise-identical to single-node serving — at
// every (shards × replicas) point, including across a SIGKILLed replica
// mid-load — and a SIGTERM must drain them to in-flight=0. These are the
// only tests that cross a process boundary; everything wire-level below
// is covered in internal/shard.

// buildShardBin compiles cmd/wisegraph-shard once per calling test.
func buildShardBin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wisegraph-shard")
	build := exec.Command("go", "build", "-o", bin, "wisegraph/cmd/wisegraph-shard")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building wisegraph-shard: %v\n%s", err, out)
	}
	return bin
}

// shardDaemon is one spawned wisegraph-shard process.
type shardDaemon struct {
	cmd  *exec.Cmd
	addr string

	mu    sync.Mutex
	out   []string
	maddr string // metrics listen address, if -metrics-addr was given
	done  chan struct{}
}

// startShardDaemon spawns the built daemon binary with flags that mirror
// exactly what the router-side test reconstructs in-process, and waits
// for its listen address. extra flags are appended (e.g. -metrics-addr).
func startShardDaemon(t *testing.T, bin string, extra ...string) *shardDaemon {
	t.Helper()
	d := &shardDaemon{done: make(chan struct{})}
	args := []string{
		"-dataset", "AR", "-scale", "400", "-seed", "1", "-noise", "0.8",
		"-model", "RGCN", "-hidden", "16", "-layers", "2",
		"-addr", "127.0.0.1:0", "-workers", "2",
	}
	d.cmd = exec.Command(bin, append(args, extra...)...)
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	d.cmd.Stderr = d.cmd.Stdout
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("starting wisegraph-shard: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		defer close(d.done)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.out = append(d.out, line)
			if a, ok := strings.CutPrefix(line, "wisegraph-shard metrics on "); ok {
				d.maddr = a
			}
			d.mu.Unlock()
			if a, ok := strings.CutPrefix(line, "wisegraph-shard listening on "); ok {
				addrCh <- a
			}
		}
	}()
	t.Cleanup(func() {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	})
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("wisegraph-shard never reported a listen address; output:\n%s", d.output())
	}
	return d
}

// metricsAddr waits for the daemon to report its /metrics listener.
func (d *shardDaemon) metricsAddr(t *testing.T) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		a := d.maddr
		d.mu.Unlock()
		if a != "" {
			return a
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never reported a metrics address; output:\n%s", d.output())
	return ""
}

func (d *shardDaemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return strings.Join(d.out, "\n")
}

// drain sends SIGTERM and asserts the daemon reports a clean drain.
func (d *shardDaemon) drain(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-d.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; output:\n%s", d.output())
	}
	d.cmd.Wait()
	if !strings.Contains(d.output(), "drained: in-flight=0") {
		t.Fatalf("daemon did not drain cleanly; output:\n%s", d.output())
	}
}

// TestTCPCrossProcessBitwise is the end-to-end acceptance test for the
// TCP transport: spawn real wisegraph-shard processes, point a serve
// engine at them with -shard-addrs semantics, and demand logits bitwise-
// identical to single-node serving at 1/2/4 process-shards × every
// engine × 1/2 replicas (R=2 rides the default engine only, to bound the
// daemon spawn count — the replica ladder is engine-blind either way).
// Both ends reconstruct the AR replica and the untrained RGCN checkpoint
// from the same flags, and the Hello handshake (parameter hash,
// recomputed boundaries, model shape, replica identity) proves it before
// any RPC.
func TestTCPCrossProcessBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	bin := buildShardBin(t)

	// The router side: the same dataset and checkpoint the daemon flags
	// reconstruct (LoadDataset and loadModel are deterministic in these
	// parameters — the ParamSum handshake would catch any drift).
	ds, err := dataset.Load("AR", dataset.Options{Scale: 400, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.RGCN, InDim: ds.Dim(), Hidden: 16, OutDim: ds.Classes(),
		Layers: 2, NumTypes: ds.Graph.NumTypes, Seed: 1,
	})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}

	base := Options{Workers: 2, Seed: 9, Fanouts: []int{4, 4}, ShardTimeout: 10 * time.Second}
	ref := testEngine(t, ds, m, base)
	v := int32(ds.Graph.NumVertices)
	requests := [][]int32{
		{0, 5, v - 1},
		{v / 2, 3, 3, v / 3},
	}
	want := make([][][]float32, len(requests))
	for i, nodes := range requests {
		want[i] = predictLogits(t, ref, nodes)
	}

	for _, shards := range []int{1, 2, 4} {
		for _, engine := range kernels.EngineNames() {
			for _, replicas := range []int{1, 2} {
				if replicas > 1 && engine != "" && engine != kernels.EngineNames()[0] {
					continue // R=2 on the default engine only
				}
				t.Run(fmt.Sprintf("shards=%d/%s/r=%d", shards, engine, replicas), func(t *testing.T) {
					// Fresh daemons per combination: a daemon's identity is
					// sticky to the first Hello it accepts, and the engine
					// and replica id ride in the Hello.
					daemons := make([]*shardDaemon, shards*replicas)
					opts := base
					opts.Engine = engine
					opts.Replicas = replicas
					opts.Plan = ref.Plan()
					opts.ShardAddrs = make([]string, len(daemons))
					for i := range daemons {
						daemons[i] = startShardDaemon(t, bin)
						opts.ShardAddrs[i] = daemons[i].addr
					}
					e, err := NewEngine(ds, m, opts)
					if err != nil {
						t.Fatalf("NewEngine over TCP: %v", err)
					}
					if fl := e.Fleet(); fl == nil || !fl.Remote() {
						t.Fatal("shard addresses built no remote fleet")
					} else if fl.Size() != shards || fl.Replicas() != replicas {
						t.Fatalf("fleet is %d spans x %d replicas, want %dx%d",
							fl.Size(), fl.Replicas(), shards, replicas)
					}
					for i, nodes := range requests {
						got := predictLogits(t, e, nodes)
						for j := range got {
							for k := range got[j] {
								if got[j][k] != want[i][j][k] {
									t.Fatalf("request %d node %d logit %d: %v over TCP, want %v single-node",
										i, j, k, got[j][k], want[i][j][k])
								}
							}
						}
					}
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					if err := e.Shutdown(ctx); err != nil {
						t.Fatalf("shutdown: %v", err)
					}
					for _, d := range daemons {
						d.drain(t)
					}
				})
			}
		}
	}
}

// TestReplicaFailoverBitwise is the chaos half of the replica tentpole:
// 2 spans × 2 replicas of real daemon processes under continuous load,
// one replica SIGKILLed mid-batch. Not one request may error, not one
// logit may differ from single-node serving, the router's health table
// must demote the dead replica, a survivor's /metrics endpoint must
// scrape as valid Prometheus 0.0.4 text, and the survivors must still
// drain to in-flight=0 on SIGTERM.
func TestReplicaFailoverBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	bin := buildShardBin(t)

	ds, err := dataset.Load("AR", dataset.Options{Scale: 400, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.RGCN, InDim: ds.Dim(), Hidden: 16, OutDim: ds.Classes(),
		Layers: 2, NumTypes: ds.Graph.NumTypes, Seed: 1,
	})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}

	base := Options{Workers: 2, Seed: 9, Fanouts: []int{4, 4}, ShardTimeout: 10 * time.Second}
	ref := testEngine(t, ds, m, base)
	v := int32(ds.Graph.NumVertices)
	requests := [][]int32{
		{0, 5, v - 1},
		{v / 2, 3, 3, v / 3},
		{7, v - 2, v / 4},
	}
	want := make([][][]float32, len(requests))
	for i, nodes := range requests {
		want[i] = predictLogits(t, ref, nodes)
	}

	// 2 spans × 2 replicas: address order is AssignReplicas order — index
	// s*R+r, so daemons[1] is span 0, replica 1 (the kill target).
	const shards, replicas = 2, 2
	daemons := make([]*shardDaemon, shards*replicas)
	opts := base
	opts.Replicas = replicas
	opts.Plan = ref.Plan()
	opts.ShardAddrs = make([]string, len(daemons))
	for i := range daemons {
		daemons[i] = startShardDaemon(t, bin, "-metrics-addr", "127.0.0.1:0")
		opts.ShardAddrs[i] = daemons[i].addr
	}
	e, err := NewEngine(ds, m, opts)
	if err != nil {
		t.Fatalf("NewEngine over TCP: %v", err)
	}

	// Continuous load from 4 clients; every reply is checked bitwise
	// against the single-node reference the whole way through the kill.
	stop := make(chan struct{})
	var served, mismatches atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := tensor.NewRNG(uint64(c)*977 + 11)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := rng.Intn(len(requests))
				pred, err := e.Predict(context.Background(), requests[req], true)
				if err != nil {
					select {
					case errCh <- fmt.Errorf("client %d request %d: %w", c, i, err):
					default:
					}
					return
				}
				for j := range pred.Logits {
					for k := range pred.Logits[j] {
						if pred.Logits[j][k] != want[req][j][k] {
							mismatches.Add(1)
						}
					}
				}
				served.Add(1)
			}
		}(c)
	}

	// Let the fleet serve with all replicas up, then kill -9 span 0's
	// replica 1 mid-load. In-flight RPCs on the dying connection fail over
	// to replica 0; nothing surfaces.
	time.Sleep(400 * time.Millisecond)
	if err := daemons[1].cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("request error across replica kill: %v", err)
	default:
	}
	if n := served.Load(); n < 8 {
		t.Fatalf("only %d requests served across the kill window", n)
	}
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d logit mismatches across replica kill — failover changed bits", n)
	}

	fl := e.Fleet()
	if dead, live := fl.Health(0, 1), fl.Health(0, 0); dead >= live {
		t.Fatalf("dead replica health %v not demoted below live %v", dead, live)
	}
	if _, _, _, failures := fl.Resilience(); failures != 0 {
		t.Fatalf("%d surfaced failures with a live replica per span", failures)
	}

	// A survivor's /metrics must scrape as valid Prometheus 0.0.4 text
	// and carry the daemon-side RPC counters.
	resp, err := http.Get("http://" + daemons[0].metricsAddr(t) + "/metrics")
	if err != nil {
		t.Fatalf("scraping survivor /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Fatalf("metrics Content-Type %q, want text exposition 0.0.4", got)
	}
	if err := obs.ValidateExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("survivor /metrics is not valid exposition: %v\n%s", err, body)
	}
	for _, metric := range []string{"wisegraph_shard_rpcs_total", "wisegraph_shard_replica", "wisegraph_shard_in_flight"} {
		if !strings.Contains(string(body), metric) {
			t.Fatalf("survivor /metrics missing %s:\n%s", metric, body)
		}
	}
	if resp, err := http.Get("http://" + daemons[0].metricsAddr(t) + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("survivor /healthz: %v (%v)", err, resp)
	} else {
		resp.Body.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, d := range daemons {
		if i == 1 {
			continue // SIGKILLed; nothing drains
		}
		d.drain(t)
		if !strings.Contains(d.output(), "replica=") {
			t.Fatalf("survivor %d drain line carries no replica identity:\n%s", i, d.output())
		}
	}
}
