package serve

import (
	"context"
	"io"
	"testing"
	"time"

	"wisegraph/internal/dataset"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// BenchmarkPredict measures the sequential per-request cost of the full
// serving path — admission, sampling, gather, plan-reuse partition,
// forward, demux — on a realistic dataset replica. Run with -cpuprofile
// to see where a request's time goes (the per-subgraph matmul dominates;
// see the serving section of EXPERIMENTS.md).
func BenchmarkPredict(b *testing.B) {
	ds, err := dataset.Load("AR", dataset.Options{Scale: 1600, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: ds.Dim(), Hidden: 64, OutDim: ds.Classes(), Layers: 3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(ds, m, Options{Workers: 1, BatchCap: 1, BatchDelay: time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Shutdown(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Predict(context.Background(), []int32{int32(i % ds.Graph.NumVertices)}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictObserved is BenchmarkPredict with the observability
// layer on: tracing ring live, per-stage spans and histograms recorded
// for every request. Compare against BenchmarkPredict to measure the
// hot-path instrumentation overhead; the acceptance bar is <2% on both
// ns/op and allocs/op (spans are stack values, so allocs must not move).
func BenchmarkPredictObserved(b *testing.B) {
	obs.Enable(obs.DefaultRingSize)
	defer obs.Disable()
	ds, err := dataset.Load("AR", dataset.Options{Scale: 1600, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: ds.Dim(), Hidden: 64, OutDim: ds.Classes(), Layers: 3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(ds, m, Options{Workers: 1, BatchCap: 1, BatchDelay: time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Shutdown(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Predict(context.Background(), []int32{int32(i % ds.Graph.NumVertices)}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteMetrics prices one /metrics scrape (off the request hot
// path — a scraper calls this every 15s or so).
func BenchmarkWriteMetrics(b *testing.B) {
	ds, err := dataset.Load("AR", dataset.Options{Scale: 1600, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: ds.Dim(), Hidden: 64, OutDim: ds.Classes(), Layers: 3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(ds, m, Options{Workers: 1, BatchCap: 1, BatchDelay: time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Shutdown(context.Background())
	if _, err := e.Predict(context.Background(), []int32{0}, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.WriteMetrics(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictZipf prices the serving hot path under Zipf-1.2 node
// popularity — the skew the hot-vertex cache is built for — with the
// cache off and on. The cached variant is warmed to steady state before
// timing, so the pair measures the cross-request reuse win (check.sh
// holds the cached path to within 10% of itself across commits and the
// EXPERIMENTS table is generated from the same setup).
func BenchmarkPredictZipf(b *testing.B) {
	ds, err := dataset.Load("AR", dataset.Options{Scale: 1600, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		budget int64
	}{
		{"uncached", 0},
		{"cached", 64 << 20},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m, err := nn.NewModel(nn.Config{
				Kind: nn.SAGE, InDim: ds.Dim(), Hidden: 64, OutDim: ds.Classes(), Layers: 3, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			e, err := NewEngine(ds, m, Options{
				Workers: 1, BatchCap: 1, BatchDelay: time.Microsecond,
				Seed: 1, CacheBudget: bc.budget,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Shutdown(context.Background())
			picker := newNodePicker(ds.Graph.NumVertices, 1.2)
			rng := tensor.NewRNG(7)
			if bc.budget > 0 {
				for i := 0; i < 1500; i++ { // steady-state warmup
					if _, err := e.Predict(context.Background(), []int32{picker.pick(rng)}, false); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Predict(context.Background(), []int32{picker.pick(rng)}, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
