package serve

import (
	"context"
	"testing"
	"time"

	"wisegraph/internal/dataset"
	"wisegraph/internal/nn"
)

// BenchmarkPredict measures the sequential per-request cost of the full
// serving path — admission, sampling, gather, plan-reuse partition,
// forward, demux — on a realistic dataset replica. Run with -cpuprofile
// to see where a request's time goes (the per-subgraph matmul dominates;
// see the serving section of EXPERIMENTS.md).
func BenchmarkPredict(b *testing.B) {
	ds, err := dataset.Load("AR", dataset.Options{Scale: 1600, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: ds.Dim(), Hidden: 64, OutDim: ds.Classes(), Layers: 3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(ds, m, Options{Workers: 1, BatchCap: 1, BatchDelay: time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Shutdown(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Predict(context.Background(), []int32{int32(i % ds.Graph.NumVertices)}, false); err != nil {
			b.Fatal(err)
		}
	}
}
