package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wisegraph/internal/nn"
)

func TestHTTPHandler(t *testing.T) {
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{Workers: 1})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	t.Run("predict", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/predict", "application/json",
			strings.NewReader(`{"nodes":[0,1,2],"logits":true}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		var pr PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		if len(pr.Classes) != 3 || len(pr.Logits) != 3 {
			t.Fatalf("got %d classes, %d logits rows", len(pr.Classes), len(pr.Logits))
		}
		if pr.LatencyMs <= 0 {
			t.Error("latencyMs not reported")
		}
	})

	t.Run("bad-json", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("bad-node", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/predict", "application/json",
			strings.NewReader(`{"nodes":[9999]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/predict")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
	})

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if h.Status != "ok" || h.Vertices != 60 || h.Classes != 5 || h.Model == "" {
			t.Fatalf("healthz = %+v", h)
		}
	})

	t.Run("statsz", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		if snap.Completed == 0 || snap.Batches == 0 {
			t.Fatalf("statsz shows no traffic after predict: %+v", snap)
		}
	})

	t.Run("draining", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
		}
		resp, err = http.Post(srv.URL+"/predict", "application/json",
			strings.NewReader(`{"nodes":[0]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining predict status %d, want 503", resp.StatusCode)
		}
	})
}

func TestStatusFor(t *testing.T) {
	cases := map[error]int{
		ErrOverloaded:            http.StatusTooManyRequests,
		ErrDraining:              http.StatusServiceUnavailable,
		context.DeadlineExceeded: http.StatusGatewayTimeout,
		context.Canceled:         499,
	}
	for err, want := range cases {
		if got := statusFor(err); got != want {
			t.Errorf("statusFor(%v) = %d, want %d", err, got, want)
		}
	}
}
