package serve

import "time"

// batcher is the dynamic micro-batching state machine. It has three
// states:
//
//	idle     — no pending request: block until one arrives (or drain).
//	filling  — a batch is open: keep pulling requests until the batch
//	           reaches BatchCap or BatchDelay elapses since the batch
//	           opened, whichever comes first. The timer starts at the
//	           first request, so a lone request waits at most BatchDelay.
//	draining — stop is closed: flush everything still queued into final
//	           batches immediately (no fill waits), then close the
//	           dispatch channel so workers exit after the last batch.
//
// The batcher is the only goroutine that reads the admission queue and the
// only writer of the dispatch channel, so no further synchronization is
// needed; backpressure comes from the dispatch channel's Workers-sized
// buffer (the batcher blocks once every worker is busy and the buffer is
// full, which in turn lets the admission queue fill and shed).
func (e *Engine) batcher() {
	defer close(e.batches)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// idle: wait for the request that opens the next batch.
		var first *request
		select {
		case first = <-e.queue:
		case <-e.stop:
			e.flush(nil)
			return
		}

		// filling: coalesce until full, deadline, or drain.
		batch := append(make([]*request, 0, e.opts.BatchCap), first)
		timer.Reset(e.opts.BatchDelay)
		stopping := false
	fill:
		for len(batch) < e.opts.BatchCap {
			select {
			case r := <-e.queue:
				batch = append(batch, r)
			case <-timer.C:
				break fill
			case <-e.stop:
				stopping = true
				break fill
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if stopping {
			e.flush(batch)
			return
		}
		e.batches <- batch
	}
}

// flush drains every request still in the admission queue into final
// batches (plus the partially filled one handed in) and dispatches them.
// Admission is already closed by the time stop is closed — Shutdown flips
// the draining flag under the write lock first — so the queue can only
// shrink here.
func (e *Engine) flush(batch []*request) {
	for {
		select {
		case r := <-e.queue:
			batch = append(batch, r)
			if len(batch) == e.opts.BatchCap {
				e.batches <- batch
				batch = nil
			}
		default:
			if len(batch) > 0 {
				e.batches <- batch
			}
			return
		}
	}
}
