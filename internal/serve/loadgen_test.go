package serve

import (
	"testing"
	"time"

	"wisegraph/internal/nn"
)

// TestBatchingThroughputAdvantage is the core serving claim: at equal
// worker count, coalescing requests into micro-batches (cap 16) must beat
// one-request-per-forward (cap 1) under concurrent closed-loop load,
// because the per-forward fixed costs — plan reuse partition, graph
// context, kernel dispatch — amortize across the batch. The acceptance
// bar is 2×; the test asserts a conservative 1.3× so CI noise (and -race
// overhead) cannot flake it, while EXPERIMENTS.md records real numbers.
func TestBatchingThroughputAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	ds := testDataset(t, 80, 320, 16, 8, 1, 1)
	m := testModel(t, ds, nn.SAGE)

	const (
		clients = 16
		dur     = 400 * time.Millisecond
	)
	load := LoadOptions{Clients: clients, NodesPerReq: 1, Duration: dur, Seed: 11}
	unbatched := testEngine(t, ds, m, Options{
		Workers: 1, BatchCap: 1, QueueDepth: 64, Seed: 3,
	})
	repUnbatched := RunClosedLoop(unbatched, load)

	batched := testEngine(t, ds, m, Options{
		Workers: 1, BatchCap: 16, BatchDelay: 500 * time.Microsecond, QueueDepth: 64, Seed: 3,
	})
	repBatched := RunClosedLoop(batched, load)

	t.Logf("cap=1:  %v", repUnbatched)
	t.Logf("cap=16: %v", repBatched)
	if repUnbatched.Completed == 0 || repBatched.Completed == 0 {
		t.Fatal("a configuration completed zero requests")
	}
	if repUnbatched.Errors != 0 || repBatched.Errors != 0 {
		t.Fatalf("load errors: unbatched=%d batched=%d", repUnbatched.Errors, repBatched.Errors)
	}
	if repBatched.Throughput < 1.3*repUnbatched.Throughput {
		t.Fatalf("batching advantage too small: cap16 %.1f qps vs cap1 %.1f qps",
			repBatched.Throughput, repUnbatched.Throughput)
	}
	// The batched engine must actually have coalesced.
	st := batched.Stats()
	if st.AvgBatchSize <= 1.5 {
		t.Errorf("avg batch size %.2f: micro-batching did not coalesce", st.AvgBatchSize)
	}
}

// TestClosedLoopShedsNotStalls overloads a tiny pipeline and checks the
// failure mode is shedding (fast 429-style refusals) rather than
// stalling: completions keep flowing and shed requests are counted.
func TestClosedLoopShedsNotStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 1, BatchCap: 1, QueueDepth: 1, Seed: 3,
	})
	// Pace the worker to ~2ms per batch so 24 closed-loop clients offer
	// far more than the service rate (timing alone cannot provoke
	// overload on a single-CPU host).
	e.testHookBatchStart = func() { time.Sleep(2 * time.Millisecond) }
	rep := RunClosedLoop(e, LoadOptions{Clients: 24, NodesPerReq: 1, Duration: 300 * time.Millisecond, Seed: 17})
	t.Logf("%v", rep)
	if rep.Completed == 0 {
		t.Fatal("overloaded engine completed nothing (stalled)")
	}
	if rep.Shed == 0 {
		t.Fatal("overloaded engine shed nothing")
	}
	if rep.Errors != 0 {
		t.Fatalf("unexpected errors: %d", rep.Errors)
	}
	if got := e.Stats().Shed; got == 0 {
		t.Fatal("engine stats recorded zero shed")
	}
}
