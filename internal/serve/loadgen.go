package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wisegraph/internal/tensor"
)

// LoadOptions configure a closed-loop load run.
type LoadOptions struct {
	// Clients is the number of closed-loop virtual users; each issues its
	// next request as soon as the previous one answers (no think time), so
	// offered load rises until the engine's admission queue pushes back.
	Clients int
	// NodesPerReq is how many node ids each request carries.
	NodesPerReq int
	// Duration is how long the run offers load.
	Duration time.Duration
	// Seed derives the per-client RNG streams.
	Seed uint64
	// Zipf skews node popularity: node id r is drawn with probability
	// ∝ 1/(r+1)^Zipf. Zero means uniform. Serving traffic is typically
	// hotspot-skewed (YCSB-style), which is the regime where micro-batch
	// coalescing pays: duplicate and overlapping hot-node queries are
	// sampled, gathered and computed once per batch.
	Zipf float64
}

// LoadReport summarizes one closed-loop load run.
type LoadReport struct {
	Clients    int
	Duration   time.Duration
	Completed  uint64
	Shed       uint64  // 429s: load the engine refused instead of stalling on
	Errors     uint64  // non-shed failures
	Throughput float64 // completed requests/second
	MeanLat    time.Duration
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
}

func (r LoadReport) String() string {
	return fmt.Sprintf("clients=%d dur=%v done=%d shed=%d err=%d qps=%.1f p50=%v p95=%v p99=%v",
		r.Clients, r.Duration.Round(time.Millisecond), r.Completed, r.Shed, r.Errors,
		r.Throughput, r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond))
}

// shedBackoff is how long a closed-loop client sleeps after being shed, so
// a full queue degrades into bounded retry pressure instead of a busy spin.
const shedBackoff = 500 * time.Microsecond

// nodePicker draws node ids under the configured popularity distribution.
// It is immutable after construction and shared by every client.
type nodePicker struct {
	n   int
	cum []float64 // nil ⇒ uniform
}

func newNodePicker(n int, zipf float64) *nodePicker {
	p := &nodePicker{n: n}
	if zipf <= 0 {
		return p
	}
	p.cum = make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), zipf)
		p.cum[r] = total
	}
	return p
}

func (p *nodePicker) pick(rng *tensor.RNG) int32 {
	if p.cum == nil {
		return int32(rng.Intn(p.n))
	}
	u := rng.Float64() * p.cum[p.n-1]
	return int32(sort.SearchFloat64s(p.cum, u))
}

// RunClosedLoop drives the engine in-process with closed-loop load.
func RunClosedLoop(e *Engine, o LoadOptions) LoadReport {
	picker := newNodePicker(e.ds.Graph.NumVertices, o.Zipf)
	issue := func(rng *tensor.RNG) error {
		nodes := make([]int32, o.NodesPerReq)
		for i := range nodes {
			nodes[i] = picker.pick(rng)
		}
		_, err := e.Predict(context.Background(), nodes, false)
		return err
	}
	isShed := func(err error) bool { return errors.Is(err, ErrOverloaded) }
	return runClosedLoop(o, issue, isShed)
}

// RunClosedLoopHTTP is RunClosedLoop over the wire: clients POST /predict
// against baseURL. maxNode bounds the node ids (the client does not know
// the graph size; pass what the server reports or a known bound).
func RunClosedLoopHTTP(baseURL string, maxNode int, o LoadOptions) LoadReport {
	// The default transport keeps only 2 idle connections per host; with
	// dozens of closed-loop clients that means constant dial/teardown and
	// the generator bottlenecks on connection churn instead of the server.
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * o.Clients,
			MaxIdleConnsPerHost: 2 * o.Clients,
			IdleConnTimeout:     30 * time.Second,
		},
	}
	url := baseURL + "/predict"
	picker := newNodePicker(maxNode, o.Zipf)
	issue := func(rng *tensor.RNG) error {
		nodes := make([]int32, o.NodesPerReq)
		for i := range nodes {
			nodes[i] = picker.pick(rng)
		}
		body, _ := json.Marshal(PredictRequest{Nodes: nodes})
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var pr PredictResponse
		if resp.StatusCode != http.StatusOK {
			var er errorResponse
			json.NewDecoder(resp.Body).Decode(&er)
			if resp.StatusCode == http.StatusTooManyRequests {
				return fmt.Errorf("%w: %s", ErrOverloaded, er.Error)
			}
			return fmt.Errorf("http %d: %s", resp.StatusCode, er.Error)
		}
		return json.NewDecoder(resp.Body).Decode(&pr)
	}
	isShed := func(err error) bool { return errors.Is(err, ErrOverloaded) }
	return runClosedLoop(o, issue, isShed)
}

func runClosedLoop(o LoadOptions, issue func(rng *tensor.RNG) error, isShed func(error) bool) LoadReport {
	var (
		hist       Histogram
		completed  atomic.Uint64
		shed, errs atomic.Uint64
		wg         sync.WaitGroup
		deadline   = time.Now().Add(o.Duration)
	)
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := tensor.NewRNG(o.Seed ^ (uint64(c+1) * 0x2545f4914f6cdd1d))
			for time.Now().Before(deadline) {
				start := time.Now()
				err := issue(rng)
				switch {
				case err == nil:
					completed.Add(1)
					hist.Observe(time.Since(start))
				case isShed(err):
					shed.Add(1)
					time.Sleep(shedBackoff)
				default:
					errs.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	done := completed.Load()
	return LoadReport{
		Clients:    o.Clients,
		Duration:   o.Duration,
		Completed:  done,
		Shed:       shed.Load(),
		Errors:     errs.Load(),
		Throughput: float64(done) / o.Duration.Seconds(),
		MeanLat:    hist.Mean(),
		P50:        hist.Quantile(0.50),
		P95:        hist.Quantile(0.95),
		P99:        hist.Quantile(0.99),
	}
}
