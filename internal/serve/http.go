package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"time"

	"wisegraph/internal/obs"
)

// PredictRequest is the /predict request body.
type PredictRequest struct {
	// Nodes are parent-graph vertex ids to classify.
	Nodes []int32 `json:"nodes"`
	// Logits asks for the raw logits rows alongside the argmax classes.
	Logits bool `json:"logits,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// PredictResponse is the /predict response body.
type PredictResponse struct {
	Classes   []int32     `json:"classes"`
	Logits    [][]float32 `json:"logits,omitempty"`
	LatencyMs float64     `json:"latencyMs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz body; it doubles as service discovery for
// load clients (graph size bounds the valid node ids).
type HealthResponse struct {
	Status   string `json:"status"`
	Model    string `json:"model"`
	Vertices int    `json:"vertices"`
	Classes  int    `json:"classes"`
}

// HandlerOption customizes the serve mux beyond the always-on routes.
type HandlerOption func(*http.ServeMux)

// WithPprof mounts the stdlib net/http/pprof profiler under /debug/pprof/.
// It is opt-in (a flag on wisegraph-serve) because profile endpoints can
// stall the process and should not be exposed by default.
func WithPprof() HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// NewHandler exposes an engine over stdlib net/http:
//
//	POST /predict     — classify nodes (JSON in/out)
//	GET  /healthz     — liveness + drain state
//	GET  /statsz      — serving metrics snapshot (JSON)
//	GET  /metrics     — Prometheus text exposition
//	GET  /debug/trace — recent spans as Chrome trace-event JSON
//
// Options add routes (e.g. WithPprof).
func NewHandler(e *Engine, options ...HandlerOption) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		ctx := r.Context()
		if req.TimeoutMs > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
			defer cancel()
		}
		start := time.Now()
		pred, err := e.Predict(ctx, req.Nodes, req.Logits)
		if err != nil {
			status := statusFor(err)
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeErr(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, PredictResponse{
			Classes:   pred.Classes,
			Logits:    pred.Logits,
			LatencyMs: float64(time.Since(start)) / 1e6,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		code := http.StatusOK
		if e.Draining() {
			status = "draining"
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, HealthResponse{
			Status:   status,
			Model:    e.model.Cfg.Kind.String(),
			Vertices: e.ds.Graph.NumVertices,
			Classes:  e.ds.Classes(),
		})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := e.WriteMetrics(w); err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if !obs.Enabled() {
			writeErr(w, http.StatusNotFound, "tracing disabled (ring size 0)")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w)
	})
	for _, opt := range options {
		opt(mux)
	}
	return mux
}

// statusFor maps engine errors to HTTP statuses: the backpressure policy
// is visible to clients (429 = shed, retry against a less loaded replica;
// 503 = draining, retry elsewhere; 504 = deadline).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
