package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisegraph/internal/fault"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// TestCacheParityBitwise is the acceptance check for the hot-vertex
// cache: for every execution engine and worker count, a cache-enabled
// engine must return logits BITWISE-equal to a cache-disabled one on an
// overlapping (Zipf-ish skewed) request stream — while actually hitting
// the cache, so the equality is exercised on spliced rows, not on an
// idle cache. The serving forward is a pure function per (vertex, level),
// so cache size is a pure performance knob.
func TestCacheParityBitwise(t *testing.T) {
	const v = 60
	ds := testDataset(t, v, 240, 12, 5, 1, 1)
	m := testModel(t, ds, nn.SAGE)

	for _, eng := range kernels.EngineNames() {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/w%d", eng, workers), func(t *testing.T) {
				base := Options{Workers: workers, Engine: eng, Seed: 3}
				off := testEngine(t, ds, m, base)
				withCache := base
				withCache.CacheBudget = 1 << 20
				withCache.Plan = off.Plan() // identical frozen plan: isolate the cache
				on := testEngine(t, ds, m, withCache)

				prng := rand.New(rand.NewSource(99))
				for i := 0; i < 40; i++ {
					nodes := make([]int32, 1+prng.Intn(4))
					for j := range nodes {
						// Skewed id space: most requests land on a hot
						// head so later iterations run against a warm
						// cache with real cross-request reuse.
						if prng.Intn(4) > 0 {
							nodes[j] = int32(prng.Intn(8))
						} else {
							nodes[j] = int32(prng.Intn(v))
						}
					}
					want, err := off.Predict(context.Background(), nodes, true)
					if err != nil {
						t.Fatalf("iter %d uncached: %v", i, err)
					}
					got, err := on.Predict(context.Background(), nodes, true)
					if err != nil {
						t.Fatalf("iter %d cached: %v", i, err)
					}
					for j := range nodes {
						if got.Classes[j] != want.Classes[j] {
							t.Fatalf("iter %d node %d: class %d != %d", i, nodes[j], got.Classes[j], want.Classes[j])
						}
						for k := range want.Logits[j] {
							if got.Logits[j][k] != want.Logits[j][k] {
								t.Fatalf("iter %d node %d logit %d: cached %v != uncached %v (bitwise)",
									i, nodes[j], k, got.Logits[j][k], want.Logits[j][k])
							}
						}
					}
				}
				st := on.Stats()
				if !st.CacheEnabled || st.CacheHits == 0 {
					t.Fatalf("cache never hit (enabled=%v hits=%d) — parity was not exercised", st.CacheEnabled, st.CacheHits)
				}
				if off.Stats().CacheEnabled {
					t.Fatal("cache-disabled engine reports CacheEnabled")
				}
			})
		}
	}
}

// TestCacheReloadInvalidationParity: a checkpoint reload must flush every
// cached row, and post-reload predictions must be bitwise-equal to a
// fresh engine serving the new parameters — no stale embedding can leak
// through the cache across a parameter swap.
func TestCacheReloadInvalidationParity(t *testing.T) {
	const v = 60
	ds := testDataset(t, v, 240, 12, 5, 1, 1)
	mA := testModel(t, ds, nn.SAGE)

	// mB: same architecture (Reload requires identical Cfg), different
	// parameter values.
	mB := testModel(t, ds, nn.SAGE)
	alt, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: ds.Dim(), Hidden: 8, OutDim: ds.Classes(),
		Layers: 2, NumTypes: ds.Graph.NumTypes, Seed: 4242,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mB.CopyParamsFrom(alt); err != nil {
		t.Fatal(err)
	}

	e := testEngine(t, ds, mA, Options{Workers: 2, Seed: 3, CacheBudget: 1 << 20})
	nodes := []int32{0, 3, 7, 11, 42}

	// Warm the cache on model A.
	var beforeReload *Prediction
	for i := 0; i < 10; i++ {
		if beforeReload, err = e.Predict(context.Background(), nodes, true); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	if st := e.Stats(); st.CacheHits == 0 {
		t.Fatal("warmup produced no cache hits; the reload test proves nothing")
	}

	if err := e.Reload(mB); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	got, err := e.Predict(context.Background(), nodes, true)
	if err != nil {
		t.Fatalf("post-reload predict: %v", err)
	}

	// Ground truth: a fresh engine that has only ever seen model B.
	fresh := testEngine(t, ds, mB, Options{Workers: 1, Seed: 3, Plan: e.Plan()})
	want, err := fresh.Predict(context.Background(), nodes, true)
	if err != nil {
		t.Fatalf("fresh predict: %v", err)
	}
	changed := false
	for j := range nodes {
		for k := range want.Logits[j] {
			if got.Logits[j][k] != want.Logits[j][k] {
				t.Fatalf("node %d logit %d: post-reload %v != fresh-engine %v (stale cache row leaked)",
					nodes[j], k, got.Logits[j][k], want.Logits[j][k])
			}
			if got.Logits[j][k] != beforeReload.Logits[j][k] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("reload changed no logit — parameters did not actually swap")
	}
	if st := e.Stats(); st.CacheFlushes != 1 {
		t.Fatalf("cache flushes = %d after one reload, want 1", st.CacheFlushes)
	}

	// A reload across architectures must be refused outright.
	bad, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: ds.Dim(), Hidden: 16, OutDim: ds.Classes(),
		Layers: 2, NumTypes: ds.Graph.NumTypes, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reload(bad); err == nil {
		t.Fatal("Reload accepted a model with a different architecture")
	}
}

// TestOptionsValidate pins the descriptive-rejection contract: broken
// configurations fail engine construction with an error naming the knob,
// instead of panicking later or silently misbehaving.
func TestOptionsValidate(t *testing.T) {
	const layers = 2
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero-values-select-defaults", Options{}, true},
		{"negative-workers", Options{Workers: -1}, false},
		{"negative-batch-cap", Options{BatchCap: -4}, false},
		{"negative-queue-depth", Options{QueueDepth: -1}, false},
		{"negative-max-nodes", Options{MaxNodes: -2}, false},
		{"negative-batch-delay", Options{BatchDelay: -time.Second}, false},
		{"negative-deadline", Options{Deadline: -time.Second}, false},
		{"negative-batch-timeout", Options{BatchTimeout: -time.Second}, false},
		{"negative-cache-budget", Options{CacheBudget: -1}, false},
		{"negative-cache-shards", Options{CacheShards: -8}, false},
		{"fanouts-length-mismatch", Options{Fanouts: []int{10}}, false},
		{"zero-fanout", Options{Fanouts: []int{10, 0}}, false},
		{"valid-fanouts", Options{Fanouts: []int{10, 5}}, true},
		{"valid-cache", Options{CacheBudget: 1 << 20, CacheShards: 4}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate(layers)
			if tc.ok && err != nil {
				t.Fatalf("Validate rejected a sane config: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate accepted a nonsensical config")
			}
		})
	}
	// Cache with a zero-layer model is nonsense regardless of budget sign.
	if err := (Options{CacheBudget: 1}).Validate(0); err == nil {
		t.Fatal("Validate accepted a cache over a model with no layers")
	}
	// NewEngine surfaces the validation error.
	ds := testDataset(t, 20, 60, 8, 3, 1, 1)
	if _, err := NewEngine(ds, testModel(t, ds, nn.SAGE), Options{CacheBudget: -1}); err == nil {
		t.Fatal("NewEngine built an engine from an invalid config")
	}
}

// TestChaosCacheDrainInvariant re-runs the fault-schedule drain invariant
// with the hot-vertex cache enabled: injected batch faults, degraded
// retries and expired deadlines must still account for every request,
// and the cache must neither wedge the drain nor change any outcome
// class — while actually serving hits under fire.
func TestChaosCacheDrainInvariant(t *testing.T) {
	const vertices = 80
	ds := testDataset(t, vertices, 320, 10, 4, 1, 2)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 2, BatchCap: 8, BatchDelay: time.Millisecond,
		QueueDepth: 64, Seed: 5, CacheBudget: 1 << 20,
	})
	sched := &fault.Schedule{
		Seed: 1234,
		Sites: map[string]fault.SiteConfig{
			fault.SiteServeBatch: {ErrorRate: 0.08, LatencyRate: 0.15, Delay: 2 * time.Millisecond},
		},
	}
	const clients, perClient = 8, 40
	var ok, failed atomic.Int64
	fault.WithSchedule(sched, func() {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := tensor.NewRNG(uint64(c)*77 + 1)
				for i := 0; i < perClient; i++ {
					// Zipf-ish skew: hammer a hot head of the id space.
					n := int32(rng.Intn(vertices))
					if rng.Intn(3) > 0 {
						n = int32(rng.Intn(8))
					}
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					_, err := e.Predict(ctx, []int32{n}, false)
					cancel()
					switch {
					case err == nil:
						ok.Add(1)
					case errors.Is(err, ErrOverloaded), errors.Is(err, context.DeadlineExceeded), fault.IsInjected(err):
						failed.Add(1)
					default:
						failed.Add(1)
						t.Errorf("unexpected error class: %v", err)
					}
				}
			}(c)
		}
		wg.Wait()

		st := chaosInvariant(t, e)
		if got := ok.Load() + failed.Load(); got != clients*perClient {
			t.Fatalf("request outcomes %d, want %d — a request vanished", got, clients*perClient)
		}
		if st.BatchFaults == 0 {
			t.Fatal("schedule injected no batch faults; chaos test proves nothing")
		}
		if ok.Load() == 0 {
			t.Fatal("no request succeeded under a mild fault schedule")
		}
		if st.CacheHits == 0 {
			t.Fatal("cache never hit under skewed chaos traffic")
		}
	})
}
