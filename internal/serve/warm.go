package serve

import (
	"sort"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// warmCache pre-populates the hot-vertex cache before the first request
// is admitted: it runs warm-up forwards over the CacheWarm top-in-degree
// vertices (the frequency-independent prior for what Zipf-ish traffic
// will hit, and exactly what the cache's degree-amplified admission score
// favors), so every level's rows for those subtrees are computed once at
// startup instead of on the first unlucky requests. Runs synchronously in
// NewEngine — in sharded mode through the fleet, so each shard warms the
// rows of its own range.
func (e *Engine) warmCache() error {
	k := e.opts.CacheWarm
	v := e.ds.Graph.NumVertices
	if k > v {
		k = v
	}
	order := make([]int32, v)
	for i := range order {
		order[i] = int32(i)
	}
	deg := func(x int32) int32 { return e.csr.RowPtr[x+1] - e.csr.RowPtr[x] }
	sort.Slice(order, func(a, b int) bool {
		da, db := deg(order[a]), deg(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	hot := order[:k]
	ver := e.modelVersion.Load()

	// Single-node warm-up needs private forward state (workers have not
	// started yet); the sharded fleet computes on its own worker pools.
	var (
		replica *nn.Model
		pt      *core.Partitioner
		ectx    *exec.Ctx
	)
	if e.fleet == nil {
		var err error
		if replica, err = e.newReplica(); err != nil {
			return err
		}
		pt = core.NewPartitioner()
		defer pt.Release()
		ectx = exec.NewCtx(device.New(*e.opts.Spec))
		ectx.Engine = e.opts.Engine
	}
	for lo := 0; lo < len(hot); lo += e.opts.MaxNodes {
		hi := lo + e.opts.MaxNodes
		if hi > len(hot) {
			hi = len(hot)
		}
		batchID := obs.NewID()
		var (
			logits *tensor.Tensor
			err    error
		)
		if e.fleet != nil {
			logits, _, err = e.fleet.Forward(batchID, ver, hot[lo:hi], obs.Begin(obs.StageSample, batchID))
		} else {
			logits, _, err = e.forwardLeveled(batchID, ver, hot[lo:hi], replica, pt, ectx, obs.Begin(obs.StageSample, batchID))
		}
		if err != nil {
			return err
		}
		tensor.Put(logits)
	}
	return nil
}
