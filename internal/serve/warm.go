package serve

import (
	"sort"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// warmCache pre-populates the hot-vertex cache before the first request
// is admitted: it runs warm-up forwards over the CacheWarm top-in-degree
// vertices (the frequency-independent prior for what Zipf-ish traffic
// will hit, and exactly what the cache's degree-amplified admission score
// favors), so every level's rows for those subtrees are computed once at
// startup instead of on the first unlucky requests. Runs synchronously in
// NewEngine — in sharded mode through the fleet, so each shard warms the
// rows of its own range.
func (e *Engine) warmCache() error {
	k := e.opts.CacheWarm
	v := e.ds.Graph.NumVertices
	if k > v {
		k = v
	}
	if k <= 0 {
		return nil
	}
	hot := e.hottestVertices(k)
	ver := e.modelVersion.Load()

	// Single-node warm-up needs private forward state (workers have not
	// started yet); the sharded fleet computes on its own worker pools.
	var (
		replica *nn.Model
		pt      *core.Partitioner
		ectx    *exec.Ctx
	)
	if e.fleet == nil {
		var err error
		if replica, err = e.newReplica(); err != nil {
			return err
		}
		pt = core.NewPartitioner()
		defer pt.Release()
		ectx = exec.NewCtx(device.New(*e.opts.Spec))
		ectx.Engine = e.opts.Engine
	}
	for lo := 0; lo < len(hot); lo += e.opts.MaxNodes {
		hi := lo + e.opts.MaxNodes
		if hi > len(hot) {
			hi = len(hot)
		}
		batchID := obs.NewID()
		var (
			logits *tensor.Tensor
			err    error
		)
		if e.fleet != nil {
			logits, _, err = e.fleet.Forward(batchID, ver, hot[lo:hi], obs.Begin(obs.StageSample, batchID))
		} else {
			logits, _, err = e.forwardLeveled(batchID, ver, hot[lo:hi], replica, pt, ectx, obs.Begin(obs.StageSample, batchID))
		}
		if err != nil {
			return err
		}
		tensor.Put(logits)
	}
	return nil
}

// hottestVertices returns the k top-in-degree vertices, hottest first,
// ties broken toward the lower id. Small k runs a bounded O(V log K)
// heap selection instead of sorting every vertex — warming a few hundred
// vertices must not cost an O(V log V) sort over millions — while large
// k (a quarter of the graph or more, where the heap's constant factors
// stop paying) falls back to the full sort. Both paths produce the
// identical deterministic order.
func (e *Engine) hottestVertices(k int) []int32 {
	v := e.ds.Graph.NumVertices
	if k <= 0 {
		return nil
	}
	deg := func(x int32) int32 { return e.csr.RowPtr[x+1] - e.csr.RowPtr[x] }
	hotter := func(a, b int32) bool {
		da, db := deg(a), deg(b)
		if da != db {
			return da > db
		}
		return a < b
	}
	if k >= v/4 {
		order := make([]int32, v)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool { return hotter(order[a], order[b]) })
		return order[:k]
	}
	// Min-heap of the k hottest seen so far, root = coldest kept: a new
	// vertex hotter than the root evicts it, everything else is skipped
	// in O(1).
	h := make([]int32, 0, k)
	down := func(i, n int) {
		for {
			c := 2*i + 1
			if c >= n {
				return
			}
			if c+1 < n && hotter(h[c], h[c+1]) {
				c++
			}
			if !hotter(h[i], h[c]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !hotter(h[p], h[i]) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	for x := int32(0); x < int32(v); x++ {
		if len(h) < k {
			h = append(h, x)
			up(len(h) - 1)
		} else if hotter(x, h[0]) {
			h[0] = x
			down(0, len(h))
		}
	}
	// Heap-sort in place: repeatedly move the coldest kept to the tail,
	// leaving the slice hottest-first.
	for i := len(h) - 1; i > 0; i-- {
		h[0], h[i] = h[i], h[0]
		down(0, i)
	}
	return h
}
