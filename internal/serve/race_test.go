package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// TestConcurrentPredictRace hammers one engine from many goroutines while
// metrics and health accessors run concurrently. Its value is under
// `go test -race`: it exercises every piece of shared serving state — the
// frozen joint plan, the graph's lazy degree caches, the admission
// lock/queue, per-worker RNG and partitioner isolation, and the lock-free
// stats — and fails if any of them races.
func TestConcurrentPredictRace(t *testing.T) {
	ds := testDataset(t, 80, 320, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 4, BatchCap: 8, BatchDelay: time.Millisecond, QueueDepth: 128,
	})

	const (
		goroutines = 12
		perClient  = 25
	)
	var wg sync.WaitGroup
	for c := 0; c < goroutines; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := tensor.NewRNG(uint64(c + 1))
			for i := 0; i < perClient; i++ {
				n := 1 + rng.Intn(4)
				nodes := make([]int32, n)
				for j := range nodes {
					nodes[j] = int32(rng.Intn(80))
				}
				pred, err := e.Predict(context.Background(), nodes, c%3 == 0)
				switch {
				case err == nil:
					if len(pred.Classes) != n {
						t.Errorf("client %d: got %d classes, want %d", c, len(pred.Classes), n)
						return
					}
				case errors.Is(err, ErrOverloaded):
					time.Sleep(200 * time.Microsecond)
				default:
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}

	// Concurrent observers over the same shared state.
	stopObs := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stopObs:
				return
			default:
				_ = e.Stats()
				_ = e.QueueDepth()
				_ = e.Draining()
				_ = e.InFlight()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	wg.Wait()
	close(stopObs)
	obsWG.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := e.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", got)
	}
}

// TestConcurrentShutdownRace races Shutdown against a stream of Predicts:
// every request must resolve (answer, shed, or draining) and the drain
// must still reach zero in-flight.
func TestConcurrentShutdownRace(t *testing.T) {
	ds := testDataset(t, 60, 240, 12, 5, 1, 1)
	e := testEngine(t, ds, testModel(t, ds, nn.SAGE), Options{
		Workers: 2, BatchCap: 4, BatchDelay: time.Millisecond, QueueDepth: 32,
	})

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := e.Predict(context.Background(), []int32{int32((c*20 + i) % 60)}, false)
				if err != nil && !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrDraining) {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}

	time.Sleep(time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if got := e.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", got)
	}
}
