package nn

import (
	"math"
	"testing"

	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/tensor"
)

// testGraph returns a small typed graph with skew and isolated vertices.
func testGraph() *graph.Graph {
	return &graph.Graph{
		NumVertices: 7,
		NumTypes:    3,
		Src:         []int32{0, 1, 2, 2, 3, 4, 4, 4, 0, 6},
		Dst:         []int32{1, 2, 1, 3, 4, 0, 1, 5, 5, 0},
		Type:        []int32{0, 1, 2, 0, 1, 2, 0, 1, 2, 0},
	}
}

func testInput(v, f int, seed uint64) *tensor.Tensor {
	x := tensor.New(v, f)
	tensor.Uniform(x, tensor.NewRNG(seed), -1, 1)
	return x
}

func TestGraphCtxConsistency(t *testing.T) {
	g := testGraph()
	gc := NewGraphCtx(g)
	if gc.NumEdges() != g.NumEdges() || gc.NumVertices() != g.NumVertices {
		t.Fatal("sizes wrong")
	}
	// every CSR slot: DstByDst matches the row it sits in, InvDeg = 1/deg
	for v := 0; v < g.NumVertices; v++ {
		lo, hi := gc.CSR.RowPtr[v], gc.CSR.RowPtr[v+1]
		for s := lo; s < hi; s++ {
			if gc.DstByDst[s] != int32(v) {
				t.Fatalf("slot %d dst %d, want %d", s, gc.DstByDst[s], v)
			}
			want := 1 / float32(hi-lo)
			if gc.InvDeg[s] != want {
				t.Fatalf("slot %d invdeg %v, want %v", s, gc.InvDeg[s], want)
			}
		}
	}
	// type grouping covers all slots with matching types
	total := 0
	for ty := 0; ty < g.NumTypes; ty++ {
		for _, s := range typeEdges(gc, ty) {
			if gc.CSR.EType[s] != int32(ty) {
				t.Fatalf("type grouping wrong at slot %d", s)
			}
			total++
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("type groups cover %d of %d edges", total, g.NumEdges())
	}
}

func TestEdgeSpMMMatchesNaive(t *testing.T) {
	g := testGraph()
	gc := NewGraphCtx(g)
	x := testInput(7, 5, 1)
	out := tensor.New(7, 5)
	EdgeSpMM(out, x, gc.SrcByDst, gc.DstByDst, gc.InvDeg)
	want := tensor.New(7, 5)
	for s := range gc.SrcByDst {
		xr := x.Row(int(gc.SrcByDst[s]))
		wr := want.Row(int(gc.DstByDst[s]))
		for j, v := range xr {
			wr[j] += gc.InvDeg[s] * v
		}
	}
	for i := range out.Data() {
		if math.Abs(float64(out.Data()[i]-want.Data()[i])) > 1e-5 {
			t.Fatalf("EdgeSpMM mismatch at %d", i)
		}
	}
}

// gradCheck verifies analytic parameter and input gradients against
// central differences for the full model loss.
func gradCheck(t *testing.T, kind ModelKind, tol float64) {
	t.Helper()
	g := testGraph()
	gc := NewGraphCtx(g)
	cfg := Config{Kind: kind, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Heads: 2, NumTypes: 3, Seed: 11}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb every parameter (including zero-initialized biases) so no
	// pre-activation sits exactly on the ReLU kink: isolated vertices
	// otherwise have out = bias = 0 exactly, where the numeric derivative
	// and the subgradient legitimately disagree.
	prng := tensor.NewRNG(99)
	for _, p := range m.Params() {
		for i := range p.Value.Data() {
			p.Value.Data()[i] += 0.05 * (prng.Float32() - 0.5)
		}
	}
	x := testInput(7, 4, 2)
	labels := []int32{0, 1, 2, 0, 1, 2, 0}
	mask := []int32{0, 2, 3, 5, 6}

	lossAt := func() float64 {
		logits := m.Forward(gc, x)
		return m.Loss(logits, labels, mask, nil)
	}

	// analytic gradients
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	logits := m.Forward(gc, x)
	grad := tensor.New(logits.Shape()...)
	m.Loss(logits, labels, mask, grad)
	m.Backward(gc, grad)

	const eps = 2e-3
	checked := 0
	for _, p := range m.Params() {
		// probe a few positions per parameter
		probes := []int{0, p.Value.Len() / 2, p.Value.Len() - 1}
		for _, i := range probes {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + eps
			lp := lossAt()
			p.Value.Data()[i] = orig - eps
			lm := lossAt()
			p.Value.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(p.Grad.Data()[i])
			if math.Abs(num-ana) > tol*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %.6f vs numeric %.6f", p.Name, i, ana, num)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

func TestGradCheckGCN(t *testing.T)      { gradCheck(t, GCN, 2e-2) }
func TestGradCheckSAGE(t *testing.T)     { gradCheck(t, SAGE, 2e-2) }
func TestGradCheckRGCN(t *testing.T)     { gradCheck(t, RGCN, 2e-2) }
func TestGradCheckGAT(t *testing.T)      { gradCheck(t, GAT, 3e-2) }
func TestGradCheckSAGELSTM(t *testing.T) { gradCheck(t, SAGELSTM, 3e-2) }

func TestModelForwardShapes(t *testing.T) {
	g := testGraph()
	gc := NewGraphCtx(g)
	for kind := ModelKind(0); kind < NumModels; kind++ {
		m, err := NewModel(Config{Kind: kind, InDim: 4, Hidden: 8, OutDim: 3, Layers: 3, Heads: 2, NumTypes: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		out := m.Forward(gc, testInput(7, 4, 3))
		if out.Dim(0) != 7 || out.Dim(1) != 3 {
			t.Fatalf("%v: output shape %v", kind, out.Shape())
		}
		if !out.AllFinite() {
			t.Fatalf("%v: non-finite output", kind)
		}
	}
}

func TestTrainingReducesLossAllModels(t *testing.T) {
	res := gen.Generate(gen.Config{
		NumVertices: 120, NumEdges: 600, Kind: gen.PowerLaw, Skew: 0.8,
		NumTypes: 3, NumBlocks: 4, Homophily: 0.85, Seed: 5,
	})
	gc := NewGraphCtx(res.Graph)
	// class-separable features
	rng := tensor.NewRNG(6)
	x := tensor.New(120, 8)
	centers := tensor.New(4, 8)
	tensor.Uniform(centers, rng, -1, 1)
	for i := 0; i < 120; i++ {
		c := centers.Row(int(res.Block[i]))
		row := x.Row(i)
		for j := range row {
			row[j] = c[j] + 0.6*float32(rng.NormFloat64())
		}
	}
	mask := make([]int32, 120)
	for i := range mask {
		mask[i] = int32(i)
	}
	for kind := ModelKind(0); kind < NumModels; kind++ {
		m, err := NewModel(Config{Kind: kind, InDim: 8, Hidden: 12, OutDim: 4, Layers: 2, Heads: 2, NumTypes: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		opt := NewAdam(0.01, m.Params())
		first := m.TrainStep(gc, x, res.Block, mask, opt)
		var last float64
		for it := 0; it < 30; it++ {
			last = m.TrainStep(gc, x, res.Block, mask, opt)
		}
		if last > first*0.8 {
			t.Fatalf("%v: loss did not drop (%.4f → %.4f)", kind, first, last)
		}
		acc := m.Accuracy(gc, x, res.Block, mask)
		if acc < 0.5 {
			t.Fatalf("%v: train accuracy %.3f after 30 steps", kind, acc)
		}
	}
}

func TestAdamStepChangesParams(t *testing.T) {
	rng := tensor.NewRNG(1)
	p := NewParam("w", rng, 3, 3)
	before := p.Value.Clone()
	for i := range p.Grad.Data() {
		p.Grad.Data()[i] = 1
	}
	opt := NewAdam(0.1, []*Param{p})
	opt.Step()
	diff := 0.0
	for i := range p.Value.Data() {
		diff += math.Abs(float64(p.Value.Data()[i] - before.Data()[i]))
	}
	if diff == 0 {
		t.Fatal("Adam did not update parameters")
	}
	opt.ZeroGrads()
	for _, v := range p.Grad.Data() {
		if v != 0 {
			t.Fatal("ZeroGrads failed")
		}
	}
}

func TestModelKindHelpers(t *testing.T) {
	if !RGCN.Complex() || !GAT.Complex() || !SAGELSTM.Complex() || GCN.Complex() || SAGE.Complex() {
		t.Fatal("Complex classification wrong")
	}
	k, err := ParseModel("SAGE-LSTM")
	if err != nil || k != SAGELSTM {
		t.Fatalf("ParseModel: %v %v", k, err)
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("expected error")
	}
	if len(RGCN.IndexAttrs()) != 3 || len(GCN.IndexAttrs()) != 2 {
		t.Fatal("IndexAttrs wrong")
	}
}

func TestLayerDFGsBuild(t *testing.T) {
	for kind := ModelKind(0); kind < NumModels; kind++ {
		g := LayerDFG(kind, 100, 3, 16, 8)
		if g.Output == nil {
			t.Fatalf("%v: no output", kind)
		}
		if len(g.Nodes) < 3 {
			t.Fatalf("%v: suspiciously small DFG", kind)
		}
		// cost must be positive
		stats := statsFor(50, 30, 20, 3)
		w := g.Cost(stats)
		if w.FLOPs <= 0 && w.Bytes <= 0 {
			t.Fatalf("%v: zero workload", kind)
		}
	}
}

func TestNumParamsPositive(t *testing.T) {
	m, _ := NewModel(Config{Kind: GCN, InDim: 4, Hidden: 8, OutDim: 3, Layers: 3, Seed: 1})
	if m.NumParams() < 4*8+8*8+8*3 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
}
