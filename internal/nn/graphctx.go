package nn

import (
	"wisegraph/internal/graph"
	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// GraphCtx precomputes the per-graph arrays every layer needs: CSR-ordered
// edges (grouped by destination, which GAT's softmax and SAGE-LSTM's
// neighbor sequences require), per-edge mean weights, and edges grouped by
// type for RGCN.
type GraphCtx struct {
	G   *graph.Graph
	CSR *graph.CSR

	// SrcByDst / DstByDst are the edge endpoints in CSR (dst-grouped)
	// order; edge slot s of CSR corresponds to SrcByDst[s] → DstByDst[s].
	SrcByDst []int32
	DstByDst []int32
	// InvDeg[s] = 1/in-degree(dst) per CSR slot (mean aggregation).
	InvDeg []float32

	// TypeOrder lists CSR slots grouped by edge type; TypeOffsets[t] ..
	// TypeOffsets[t+1] delimit type t (nil for untyped graphs).
	TypeOrder   []int32
	TypeOffsets []int32

	// Cached destination binnings for the two scatter directions (lazily
	// built; see tensor.BinRows). The index arrays never change for a
	// given graph, so every EdgeSpMM over this context reuses them. Like
	// the layer activation caches, these are not safe for concurrent
	// mutation from multiple goroutines.
	binsByDst *tensor.Bins // dst = DstByDst (forward aggregation)
	binsBySrc *tensor.Bins // dst = SrcByDst (backward/transpose)

	// typeEdges caches the per-relation edge arrays RGCN gathers from
	// (lazily built; the underlying CSR never changes).
	typeEdges []TypeEdges

	// exec selects the layer execution path (see Exec).
	exec Exec

	// srcPtr/srcSlots are the lazily built transpose adjacency: CSR slot
	// ids grouped by source vertex (slot-ascending within each source).
	// The fused backward streams this index instead of scatter-adding
	// per edge.
	srcPtr, srcSlots []int32
}

// Exec selects how layers execute their sparse aggregations.
type Exec int

const (
	// ExecBlocked is the reference dataflow: zero the output, per-edge
	// scatter-add (EdgeSpMMBins), then a separate bias pass.
	ExecBlocked Exec = iota
	// ExecFused streams each output row's CSR segment once, accumulating
	// gather, transform and bias into the row in a single pass without
	// per-edge intermediates. Bitwise-identical to ExecBlocked.
	ExecFused
)

// String names the execution path.
func (e Exec) String() string {
	if e == ExecFused {
		return "fused"
	}
	return "blocked"
}

// SetExec switches the execution path for all layers run over this
// context. Like the cached bins, this is not safe to flip concurrently
// with a running forward/backward.
func (gc *GraphCtx) SetExec(e Exec) { gc.exec = e }

// ExecKind reports the selected execution path.
func (gc *GraphCtx) ExecKind() Exec { return gc.exec }

// BySrc returns (building on first use) the transpose adjacency: ptr has
// NumVertices+1 entries and slots lists CSR slot ids grouped by source
// vertex, slot-ascending within each source. Because the blocked backward
// also applies a source's contributions in ascending slot order (bins are
// sharded by source and processed in slot order), streaming this index
// per source row is bitwise-identical to the scatter.
func (gc *GraphCtx) BySrc() (ptr, slots []int32) {
	if gc.srcPtr == nil {
		v := gc.NumVertices()
		counts := make([]int32, v)
		for _, s := range gc.SrcByDst {
			counts[s]++
		}
		gc.srcPtr = tensor.CountsToOffsets(counts)
		next := append([]int32(nil), gc.srcPtr[:v]...)
		gc.srcSlots = make([]int32, len(gc.SrcByDst))
		for s, src := range gc.SrcByDst {
			gc.srcSlots[next[src]] = int32(s)
			next[src]++
		}
	}
	return gc.srcPtr, gc.srcSlots
}

// TypeEdges holds one relation's edges as parallel arrays: endpoints plus
// the mean-normalization weight of each edge.
type TypeEdges struct {
	Src, Dst []int32
	W        []float32
}

// NewGraphCtx builds the context for g.
func NewGraphCtx(g *graph.Graph) *GraphCtx {
	csr := g.BuildCSRByDst()
	e := g.NumEdges()
	gc := &GraphCtx{G: g, CSR: csr}
	gc.SrcByDst = csr.Col
	gc.DstByDst = make([]int32, e)
	gc.InvDeg = make([]float32, e)
	for v := 0; v < g.NumVertices; v++ {
		lo, hi := csr.RowPtr[v], csr.RowPtr[v+1]
		deg := float32(hi - lo)
		for s := lo; s < hi; s++ {
			gc.DstByDst[s] = int32(v)
			gc.InvDeg[s] = 1 / deg
		}
	}
	if g.Type != nil {
		counts := make([]int32, g.NumTypes)
		for _, t := range csr.EType {
			counts[t]++
		}
		gc.TypeOffsets = tensor.CountsToOffsets(counts)
		next := append([]int32(nil), gc.TypeOffsets[:g.NumTypes]...)
		gc.TypeOrder = make([]int32, e)
		for s := 0; s < e; s++ {
			t := csr.EType[s]
			gc.TypeOrder[next[t]] = int32(s)
			next[t]++
		}
	}
	return gc
}

// BinsByDst returns (building on first use) the destination binning for
// forward aggregation: edges partitioned by DstByDst shard.
func (gc *GraphCtx) BinsByDst() *tensor.Bins {
	gc.binsByDst = gc.edgeBins(gc.binsByDst, gc.DstByDst)
	return gc.binsByDst
}

// BinsBySrc returns the binning for the transpose direction (backward):
// edges partitioned by SrcByDst shard.
func (gc *GraphCtx) BinsBySrc() *tensor.Bins {
	gc.binsBySrc = gc.edgeBins(gc.binsBySrc, gc.SrcByDst)
	return gc.binsBySrc
}

func (gc *GraphCtx) edgeBins(cur *tensor.Bins, dst []int32) *tensor.Bins {
	shards := parallel.Workers(gc.NumVertices(), 1)
	if cur != nil && cur.NumShards() == min(shards, gc.NumVertices()) {
		return cur
	}
	return tensor.BinRows(cur, dst, gc.NumVertices(), shards)
}

// TypeEdgeArrays returns (building on first use) relation t's edge arrays
// in CSR slot order. The arrays are owned by the context; callers must not
// mutate them.
func (gc *GraphCtx) TypeEdgeArrays(t int) *TypeEdges {
	if gc.typeEdges == nil {
		n := len(gc.TypeOffsets) - 1
		gc.typeEdges = make([]TypeEdges, n)
		for tt := 0; tt < n; tt++ {
			slots := gc.TypeOrder[gc.TypeOffsets[tt]:gc.TypeOffsets[tt+1]]
			te := &gc.typeEdges[tt]
			te.Src = make([]int32, len(slots))
			te.Dst = make([]int32, len(slots))
			te.W = make([]float32, len(slots))
			for i, s := range slots {
				te.Src[i] = gc.SrcByDst[s]
				te.Dst[i] = gc.DstByDst[s]
				te.W[i] = gc.InvDeg[s]
			}
		}
	}
	return &gc.typeEdges[t]
}

// NumVertices returns the vertex count.
func (gc *GraphCtx) NumVertices() int { return gc.G.NumVertices }

// NumEdges returns the edge count.
func (gc *GraphCtx) NumEdges() int { return len(gc.SrcByDst) }

// Layer is one trainable graph-convolution layer with cached activations
// for the backward pass.
type Layer interface {
	// Forward computes the layer output for input x [V, in].
	Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor
	// Backward consumes d(loss)/d(out), accumulates parameter gradients,
	// and returns d(loss)/d(x).
	Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor
	// Params lists the layer's trainable parameters.
	Params() []*Param
	// InDim / OutDim report the feature dimensions.
	InDim() int
	OutDim() int
}
