package nn

import (
	"wisegraph/internal/graph"
	"wisegraph/internal/tensor"
)

// GraphCtx precomputes the per-graph arrays every layer needs: CSR-ordered
// edges (grouped by destination, which GAT's softmax and SAGE-LSTM's
// neighbor sequences require), per-edge mean weights, and edges grouped by
// type for RGCN.
type GraphCtx struct {
	G   *graph.Graph
	CSR *graph.CSR

	// SrcByDst / DstByDst are the edge endpoints in CSR (dst-grouped)
	// order; edge slot s of CSR corresponds to SrcByDst[s] → DstByDst[s].
	SrcByDst []int32
	DstByDst []int32
	// InvDeg[s] = 1/in-degree(dst) per CSR slot (mean aggregation).
	InvDeg []float32

	// TypeOrder lists CSR slots grouped by edge type; TypeOffsets[t] ..
	// TypeOffsets[t+1] delimit type t (nil for untyped graphs).
	TypeOrder   []int32
	TypeOffsets []int32
}

// NewGraphCtx builds the context for g.
func NewGraphCtx(g *graph.Graph) *GraphCtx {
	csr := g.BuildCSRByDst()
	e := g.NumEdges()
	gc := &GraphCtx{G: g, CSR: csr}
	gc.SrcByDst = csr.Col
	gc.DstByDst = make([]int32, e)
	gc.InvDeg = make([]float32, e)
	for v := 0; v < g.NumVertices; v++ {
		lo, hi := csr.RowPtr[v], csr.RowPtr[v+1]
		deg := float32(hi - lo)
		for s := lo; s < hi; s++ {
			gc.DstByDst[s] = int32(v)
			gc.InvDeg[s] = 1 / deg
		}
	}
	if g.Type != nil {
		counts := make([]int32, g.NumTypes)
		for _, t := range csr.EType {
			counts[t]++
		}
		gc.TypeOffsets = tensor.CountsToOffsets(counts)
		next := append([]int32(nil), gc.TypeOffsets[:g.NumTypes]...)
		gc.TypeOrder = make([]int32, e)
		for s := 0; s < e; s++ {
			t := csr.EType[s]
			gc.TypeOrder[next[t]] = int32(s)
			next[t]++
		}
	}
	return gc
}

// NumVertices returns the vertex count.
func (gc *GraphCtx) NumVertices() int { return gc.G.NumVertices }

// NumEdges returns the edge count.
func (gc *GraphCtx) NumEdges() int { return len(gc.SrcByDst) }

// Layer is one trainable graph-convolution layer with cached activations
// for the backward pass.
type Layer interface {
	// Forward computes the layer output for input x [V, in].
	Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor
	// Backward consumes d(loss)/d(out), accumulates parameter gradients,
	// and returns d(loss)/d(x).
	Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor
	// Params lists the layer's trainable parameters.
	Params() []*Param
	// InDim / OutDim report the feature dimensions.
	InDim() int
	OutDim() int
}
