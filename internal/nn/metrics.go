package nn

import "fmt"

// Metrics summarizes classification quality over a vertex set.
type Metrics struct {
	Accuracy float64
	// MacroF1 averages per-class F1 over classes that appear.
	MacroF1 float64
	// PerClass holds per-class precision/recall/F1 (index = class id).
	PerClass []ClassMetrics
	// Confusion[i][j] counts vertices of true class i predicted as j.
	Confusion [][]int
}

// ClassMetrics is one class's precision/recall/F1 plus its support.
type ClassMetrics struct {
	Precision, Recall, F1 float64
	Support               int
}

// Evaluate computes metrics from predictions and labels over mask.
func Evaluate(pred, labels []int32, mask []int32, classes int) (Metrics, error) {
	if classes < 1 {
		return Metrics{}, fmt.Errorf("nn: need at least one class")
	}
	m := Metrics{
		Confusion: make([][]int, classes),
		PerClass:  make([]ClassMetrics, classes),
	}
	for i := range m.Confusion {
		m.Confusion[i] = make([]int, classes)
	}
	correct := 0
	for _, v := range mask {
		t, p := labels[v], pred[v]
		if int(t) >= classes || int(p) >= classes || t < 0 || p < 0 {
			return Metrics{}, fmt.Errorf("nn: label/prediction %d/%d out of range [0,%d)", t, p, classes)
		}
		m.Confusion[t][p]++
		if t == p {
			correct++
		}
	}
	if len(mask) > 0 {
		m.Accuracy = float64(correct) / float64(len(mask))
	}
	present := 0
	var f1Sum float64
	for c := 0; c < classes; c++ {
		tp := m.Confusion[c][c]
		fn, fp := 0, 0
		for j := 0; j < classes; j++ {
			if j != c {
				fn += m.Confusion[c][j]
				fp += m.Confusion[j][c]
			}
		}
		cm := &m.PerClass[c]
		cm.Support = tp + fn
		if tp+fp > 0 {
			cm.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			cm.Recall = float64(tp) / float64(tp+fn)
		}
		if cm.Precision+cm.Recall > 0 {
			cm.F1 = 2 * cm.Precision * cm.Recall / (cm.Precision + cm.Recall)
		}
		if cm.Support > 0 {
			present++
			f1Sum += cm.F1
		}
	}
	if present > 0 {
		m.MacroF1 = f1Sum / float64(present)
	}
	return m, nil
}

// String summarizes the metrics.
func (m Metrics) String() string {
	return fmt.Sprintf("acc=%.3f macro-F1=%.3f", m.Accuracy, m.MacroF1)
}
