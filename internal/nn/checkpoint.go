package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"wisegraph/internal/fault"
)

// checkpoint format: magic, version, then (v2) the model Config, then the
// parameter count and per parameter: name length+bytes, dim count, dims,
// float32 payload (all little endian).
//
// v1 checkpoints carry no Config: the loader needs an out-of-band model
// of the right architecture. v2 embeds the Config in the header so a
// server can reconstruct the model from the artifact alone
// (LoadModelFromCheckpoint); v1 files remain readable by LoadCheckpoint.
const (
	ckptMagic     = 0x57534721 // "WSG!"
	ckptVersionV1 = 1
	ckptVersion   = 2
	ckptMaxName   = 1024
	ckptMaxDims   = 8
	ckptMaxDim    = 1 << 28
	ckptMaxParams = 1 << 20
	ckptMaxLayers = 1024
	ckptMaxTypes  = 1 << 20
	ckptMaxHeads  = 1024
)

// SaveCheckpoint writes the model Config and every parameter value to w in
// a compact binary format (format v2). Optimizer state is not saved
// (checkpoints are for inference and warm starts, matching common
// GNN-framework practice).
func (m *Model) SaveCheckpoint(w io.Writer) error {
	if err := fault.CheckErr(fault.SiteCheckpoint); err != nil {
		return fmt.Errorf("nn: checkpoint save: %w", err)
	}
	params := m.Params()
	hdr := []uint32{ckptMagic, ckptVersion}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("nn: writing checkpoint header: %w", err)
	}
	if err := writeConfig(w, m.Cfg); err != nil {
		return fmt.Errorf("nn: writing checkpoint config: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, p.Value.Data()); err != nil {
			return err
		}
	}
	return nil
}

// writeConfig serializes the model Config as fixed-width fields.
func writeConfig(w io.Writer, cfg Config) error {
	fields := []uint32{
		uint32(cfg.Kind), uint32(cfg.InDim), uint32(cfg.Hidden),
		uint32(cfg.OutDim), uint32(cfg.Layers), uint32(cfg.Heads),
		uint32(cfg.NumTypes),
	}
	if err := binary.Write(w, binary.LittleEndian, fields); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, math.Float64bits(cfg.Dropout)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cfg.Seed)
}

// readConfig deserializes and sanity-checks a v2 Config block. The bounds
// reject corrupt headers before they turn into huge allocations.
func readConfig(r io.Reader) (Config, error) {
	var fields [7]uint32
	if err := binary.Read(r, binary.LittleEndian, &fields); err != nil {
		return Config{}, fmt.Errorf("nn: reading checkpoint config: %w", err)
	}
	var dropBits uint64
	if err := binary.Read(r, binary.LittleEndian, &dropBits); err != nil {
		return Config{}, fmt.Errorf("nn: reading checkpoint config: %w", err)
	}
	var seed uint64
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return Config{}, fmt.Errorf("nn: reading checkpoint config: %w", err)
	}
	cfg := Config{
		Kind:     ModelKind(fields[0]),
		InDim:    int(fields[1]),
		Hidden:   int(fields[2]),
		OutDim:   int(fields[3]),
		Layers:   int(fields[4]),
		Heads:    int(fields[5]),
		NumTypes: int(fields[6]),
		Dropout:  math.Float64frombits(dropBits),
		Seed:     seed,
	}
	switch {
	case cfg.Kind < 0 || cfg.Kind >= NumModels:
		return Config{}, fmt.Errorf("nn: checkpoint config: unknown model kind %d (corrupt)", fields[0])
	case cfg.InDim < 1 || cfg.InDim > ckptMaxDim,
		cfg.Hidden < 1 || cfg.Hidden > ckptMaxDim,
		cfg.OutDim < 1 || cfg.OutDim > ckptMaxDim:
		return Config{}, fmt.Errorf("nn: checkpoint config: absurd dims %d/%d/%d (corrupt)", cfg.InDim, cfg.Hidden, cfg.OutDim)
	case cfg.Layers < 1 || cfg.Layers > ckptMaxLayers:
		return Config{}, fmt.Errorf("nn: checkpoint config: absurd layer count %d (corrupt)", cfg.Layers)
	case cfg.Heads < 0 || cfg.Heads > ckptMaxHeads:
		return Config{}, fmt.Errorf("nn: checkpoint config: absurd head count %d (corrupt)", cfg.Heads)
	case cfg.NumTypes < 0 || cfg.NumTypes > ckptMaxTypes:
		return Config{}, fmt.Errorf("nn: checkpoint config: absurd type count %d (corrupt)", cfg.NumTypes)
	case math.IsNaN(cfg.Dropout) || cfg.Dropout < 0 || cfg.Dropout >= 1:
		return Config{}, fmt.Errorf("nn: checkpoint config: dropout %v out of [0,1) (corrupt)", cfg.Dropout)
	}
	return cfg, nil
}

// readHeader consumes magic+version and, for v2, the Config block. ok
// reports whether a config was present (v2).
func readHeader(r io.Reader) (cfg Config, version uint32, ok bool, err error) {
	if err := fault.CheckErr(fault.SiteCheckpoint); err != nil {
		return Config{}, 0, false, fmt.Errorf("nn: checkpoint load: %w", err)
	}
	var hdr [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return Config{}, 0, false, fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if hdr[0] != ckptMagic {
		return Config{}, 0, false, fmt.Errorf("nn: not a checkpoint (magic %#x)", hdr[0])
	}
	switch hdr[1] {
	case ckptVersionV1:
		return Config{}, hdr[1], false, nil
	case ckptVersion:
		cfg, err := readConfig(r)
		if err != nil {
			return Config{}, 0, false, err
		}
		return cfg, hdr[1], true, nil
	default:
		return Config{}, 0, false, fmt.Errorf("nn: unsupported checkpoint version %d", hdr[1])
	}
}

// ReadCheckpointConfig reads the model Config embedded in a v2 checkpoint.
// It fails on v1 checkpoints (which predate embedded configs).
func ReadCheckpointConfig(r io.Reader) (Config, error) {
	cfg, version, ok, err := readHeader(r)
	if err != nil {
		return Config{}, err
	}
	if !ok {
		return Config{}, fmt.Errorf("nn: checkpoint version %d predates embedded configs; pass the model config explicitly", version)
	}
	return cfg, nil
}

// LoadModelFromCheckpoint reconstructs a model from a v2 checkpoint alone:
// it reads the embedded Config, builds the architecture, and restores the
// parameter values.
func LoadModelFromCheckpoint(r io.Reader) (*Model, error) {
	cfg, _, ok, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("nn: checkpoint predates embedded configs; build the model and use LoadCheckpoint")
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, fmt.Errorf("nn: checkpoint config rejected: %w", err)
	}
	if err := m.loadParams(r); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadCheckpoint restores parameter values from r. The model must have
// the same architecture (parameter order, names and shapes) as the one
// that saved the checkpoint. Both v1 and v2 checkpoints are accepted; for
// v2 the embedded config's structural fields are checked first so
// mismatches fail with an architecture-level error instead of a
// parameter-shape one.
func (m *Model) LoadCheckpoint(r io.Reader) error {
	cfg, _, ok, err := readHeader(r)
	if err != nil {
		return err
	}
	if ok {
		if cfg.Kind != m.Cfg.Kind {
			return fmt.Errorf("nn: checkpoint is a %v model, this model is %v", cfg.Kind, m.Cfg.Kind)
		}
		if cfg.InDim != m.Cfg.InDim || cfg.Hidden != m.Cfg.Hidden ||
			cfg.OutDim != m.Cfg.OutDim || cfg.Layers != m.Cfg.Layers {
			return fmt.Errorf("nn: checkpoint architecture %d-%d-%d x%d vs model %d-%d-%d x%d",
				cfg.InDim, cfg.Hidden, cfg.OutDim, cfg.Layers,
				m.Cfg.InDim, m.Cfg.Hidden, m.Cfg.OutDim, m.Cfg.Layers)
		}
	}
	return m.loadParams(r)
}

// loadParams restores the parameter section (count + per-parameter
// records), validating names, shapes and payload values as it goes.
func (m *Model) loadParams(r io.Reader) error {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: reading checkpoint parameter count: %w", err)
	}
	if count > ckptMaxParams {
		return fmt.Errorf("nn: absurd parameter count %d (corrupt checkpoint)", count)
	}
	params := m.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > ckptMaxName {
			return fmt.Errorf("nn: absurd name length %d (corrupt checkpoint)", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: parameter order mismatch: checkpoint %q vs model %q", name, p.Name)
		}
		var dims uint32
		if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
			return err
		}
		if dims > ckptMaxDims {
			return fmt.Errorf("nn: absurd dim count %d (corrupt checkpoint)", dims)
		}
		if int(dims) != p.Value.Dims() {
			return fmt.Errorf("nn: %s: %d dims vs %d", p.Name, dims, p.Value.Dims())
		}
		for i := 0; i < int(dims); i++ {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != p.Value.Dim(i) {
				return fmt.Errorf("nn: %s: dim %d is %d vs %d", p.Name, i, d, p.Value.Dim(i))
			}
		}
		if err := binary.Read(r, binary.LittleEndian, p.Value.Data()); err != nil {
			return err
		}
		for _, v := range p.Value.Data() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("nn: %s: non-finite value in checkpoint", p.Name)
			}
		}
	}
	return nil
}
