package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// checkpoint format: magic, version, param count, then per parameter:
// name length+bytes, dim count, dims, float32 payload (little endian).
const (
	ckptMagic   = 0x57534721 // "WSG!"
	ckptVersion = 1
)

// SaveCheckpoint writes every parameter value to w in a compact binary
// format. Optimizer state is not saved (checkpoints are for inference and
// warm starts, matching common GNN-framework practice).
func (m *Model) SaveCheckpoint(w io.Writer) error {
	params := m.Params()
	hdr := []uint32{ckptMagic, ckptVersion, uint32(len(params))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("nn: writing checkpoint header: %w", err)
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, p.Value.Data()); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint restores parameter values from r. The model must have
// the same architecture (parameter order, names and shapes) as the one
// that saved the checkpoint.
func (m *Model) LoadCheckpoint(r io.Reader) error {
	var hdr [3]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if hdr[0] != ckptMagic {
		return fmt.Errorf("nn: not a checkpoint (magic %#x)", hdr[0])
	}
	if hdr[1] != ckptVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", hdr[1])
	}
	params := m.Params()
	if int(hdr[2]) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", hdr[2], len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 1024 {
			return fmt.Errorf("nn: absurd name length %d (corrupt checkpoint)", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: parameter order mismatch: checkpoint %q vs model %q", name, p.Name)
		}
		var dims uint32
		if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
			return err
		}
		if int(dims) != p.Value.Dims() {
			return fmt.Errorf("nn: %s: %d dims vs %d", p.Name, dims, p.Value.Dims())
		}
		for i := 0; i < int(dims); i++ {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != p.Value.Dim(i) {
				return fmt.Errorf("nn: %s: dim %d is %d vs %d", p.Name, i, d, p.Value.Dim(i))
			}
		}
		if err := binary.Read(r, binary.LittleEndian, p.Value.Data()); err != nil {
			return err
		}
		for _, v := range p.Value.Data() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("nn: %s: non-finite value in checkpoint", p.Name)
			}
		}
	}
	return nil
}
