package nn

import (
	"math"

	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// GATLayer implements multi-head graph attention (the paper's MHA-class
// neural operation):
//
//	Z = h·W                              (heads × Dh packed in columns)
//	s_e,h   = aL_h·Z[src] + aR_h·Z[dst]
//	α_e,h   = softmax over dst's in-edges of LeakyReLU(s)
//	h'[dst] = Σ_e α_e,h · Z[src]         (per head, concatenated)
type GATLayer struct {
	W      *Param // [in, heads*dh]
	AL, AR *Param // [heads, dh]
	B      *Param // [heads*dh]

	heads, dh int
	slope     float32

	// caches and sticky buffers (see bufs.go)
	x, z   *tensor.Tensor
	pl, pr *tensor.Tensor // [V, heads] projections
	scores *tensor.Tensor // [E, heads] pre-activation
	alpha  *tensor.Tensor // [E, heads] attention weights
	xT     *tensor.Tensor
	out    *tensor.Tensor
	dZ     *tensor.Tensor
	dAlpha *tensor.Tensor
	dScore *tensor.Tensor
	dpl    *tensor.Tensor
	dpr    *tensor.Tensor
	dX     *tensor.Tensor
}

// NewGATLayer allocates a layer with the given head count; out must be a
// multiple of heads.
func NewGATLayer(rng *tensor.RNG, in, out, heads int) *GATLayer {
	if out%heads != 0 {
		panic("nn: GAT out dimension must be divisible by heads")
	}
	dh := out / heads
	return &GATLayer{
		W:     NewParam("gat.W", rng, in, out),
		AL:    NewParam("gat.aL", rng, heads, dh),
		AR:    NewParam("gat.aR", rng, heads, dh),
		B:     NewZeroParam("gat.b", out),
		heads: heads, dh: dh, slope: 0.2,
	}
}

// Params implements Layer.
func (l *GATLayer) Params() []*Param { return []*Param{l.W, l.AL, l.AR, l.B} }

// InDim implements Layer.
func (l *GATLayer) InDim() int { return l.W.Value.Dim(0) }

// OutDim implements Layer.
func (l *GATLayer) OutDim() int { return l.W.Value.Dim(1) }

// Heads returns the head count.
func (l *GATLayer) Heads() int { return l.heads }

// project computes p[v,h] = Σ_d a[h,d]·Z[v,h*dh+d] into the sticky
// buffer dst (reallocated on shape change).
func (l *GATLayer) project(dst, z *tensor.Tensor, a *Param) *tensor.Tensor {
	v := z.Rows()
	p := buf2(dst, v, l.heads)
	parallel.For(v, 64, func(i int) {
		zr := z.Row(i)
		pr := p.Row(i)
		for h := 0; h < l.heads; h++ {
			ar := a.Value.Row(h)
			var s float32
			for d := 0; d < l.dh; d++ {
				s += ar[d] * zr[h*l.dh+d]
			}
			pr[h] = s
		}
	})
	return p
}

// Forward implements Layer.
func (l *GATLayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	if gc.ExecKind() == ExecFused {
		return l.forwardFused(gc, x)
	}
	l.x = x
	l.z = tensor.MatMul(buf2(l.z, x.Dim(0), l.OutDim()), x, l.W.Value)
	l.pl = l.project(l.pl, l.z, l.AL)
	l.pr = l.project(l.pr, l.z, l.AR)
	e := gc.NumEdges()
	l.scores = buf2(l.scores, e, l.heads)
	for s := 0; s < e; s++ {
		sr := l.scores.Row(s)
		plr := l.pl.Row(int(gc.SrcByDst[s]))
		prr := l.pr.Row(int(gc.DstByDst[s]))
		for h := 0; h < l.heads; h++ {
			sr[h] = plr[h] + prr[h]
		}
	}
	// LeakyReLU then per-(dst, head) softmax over CSR segments.
	l.alpha = tensor.LeakyReLU(buf2(l.alpha, e, l.heads), l.scores, l.slope)
	l.segmentSoftmaxByHead(gc, l.alpha)

	out := buf2(l.out, gc.NumVertices(), l.OutDim())
	l.out = out
	out.Zero()
	parallel.For(gc.NumVertices(), 16, func(v int) {
		orow := out.Row(v)
		for s := gc.CSR.RowPtr[v]; s < gc.CSR.RowPtr[v+1]; s++ {
			zr := l.z.Row(int(gc.SrcByDst[s]))
			ar := l.alpha.Row(int(s))
			for h := 0; h < l.heads; h++ {
				a := ar[h]
				for d := 0; d < l.dh; d++ {
					orow[h*l.dh+d] += a * zr[h*l.dh+d]
				}
			}
		}
	})
	tensor.AddBias(out, l.B.Value)
	return out
}

// forwardFused runs scores, leaky ReLU, softmax, aggregation and bias as
// one parallel pass per destination segment instead of five full sweeps
// over the [E,heads] buffers. Every per-element operation — including the
// float64 softmax accumulation and the 1/sum scaling — replicates the
// blocked phases exactly, and slots of different destinations never
// interact, so scores/alpha caches and the output are bitwise-identical
// to the blocked forward at every worker count. The [E,heads] attention
// caches stay materialized (the backward pass consumes them; heads ≪ F',
// so they are not the traffic fusion targets).
func (l *GATLayer) forwardFused(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	l.z = tensor.MatMul(buf2(l.z, x.Dim(0), l.OutDim()), x, l.W.Value)
	l.pl = l.project(l.pl, l.z, l.AL)
	l.pr = l.project(l.pr, l.z, l.AR)
	e := gc.NumEdges()
	l.scores = buf2(l.scores, e, l.heads)
	l.alpha = buf2(l.alpha, e, l.heads)
	out := buf2(l.out, gc.NumVertices(), l.OutDim())
	l.out = out
	b := l.B.Value.Data()
	parallel.For(gc.NumVertices(), 16, func(v int) {
		lo, hi := int(gc.CSR.RowPtr[v]), int(gc.CSR.RowPtr[v+1])
		prr := l.pr.Row(v)
		for s := lo; s < hi; s++ {
			sr := l.scores.Row(s)
			ar := l.alpha.Row(s)
			plr := l.pl.Row(int(gc.SrcByDst[s]))
			for h := 0; h < l.heads; h++ {
				sv := plr[h] + prr[h]
				sr[h] = sv
				// leaky ReLU, matching tensor.LeakyReLU bit for bit
				if sv > 0 {
					ar[h] = sv
				} else {
					ar[h] = l.slope * sv
				}
			}
		}
		if lo < hi {
			for h := 0; h < l.heads; h++ {
				maxv := l.alpha.At(lo, h)
				for s := lo + 1; s < hi; s++ {
					if xv := l.alpha.At(s, h); xv > maxv {
						maxv = xv
					}
				}
				var sum float64
				for s := lo; s < hi; s++ {
					ev := math.Exp(float64(l.alpha.At(s, h) - maxv))
					l.alpha.Set(float32(ev), s, h)
					sum += ev
				}
				inv := float32(1 / sum)
				for s := lo; s < hi; s++ {
					l.alpha.Set(l.alpha.At(s, h)*inv, s, h)
				}
			}
		}
		orow := out.Row(v)
		for j := range orow {
			orow[j] = 0
		}
		for s := lo; s < hi; s++ {
			zr := l.z.Row(int(gc.SrcByDst[s]))
			ar := l.alpha.Row(s)
			for h := 0; h < l.heads; h++ {
				a := ar[h]
				for d := 0; d < l.dh; d++ {
					orow[h*l.dh+d] += a * zr[h*l.dh+d]
				}
			}
		}
		for j := range orow {
			orow[j] += b[j]
		}
	})
	return out
}

// segmentSoftmaxByHead normalizes vals [E, heads] per destination segment
// and head, in place.
func (l *GATLayer) segmentSoftmaxByHead(gc *GraphCtx, vals *tensor.Tensor) {
	parallel.For(gc.NumVertices(), 16, func(v int) {
		lo, hi := int(gc.CSR.RowPtr[v]), int(gc.CSR.RowPtr[v+1])
		if lo >= hi {
			return
		}
		for h := 0; h < l.heads; h++ {
			maxv := vals.At(lo, h)
			for s := lo + 1; s < hi; s++ {
				if x := vals.At(s, h); x > maxv {
					maxv = x
				}
			}
			var sum float64
			for s := lo; s < hi; s++ {
				ev := math.Exp(float64(vals.At(s, h) - maxv))
				vals.Set(float32(ev), s, h)
				sum += ev
			}
			inv := float32(1 / sum)
			for s := lo; s < hi; s++ {
				vals.Set(vals.At(s, h)*inv, s, h)
			}
		}
	})
}

// Backward implements Layer.
func (l *GATLayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	accumBiasGrad(l.B.Grad, dOut)
	e := gc.NumEdges()
	dZ := buf2(l.dZ, l.z.Dim(0), l.z.Dim(1))
	l.dZ = dZ
	dZ.Zero()
	dAlpha := buf2(l.dAlpha, e, l.heads)
	l.dAlpha = dAlpha
	// dα_e,h = Σ_d dOut[dst,h,d]·Z[src,h,d] ; dZ[src] += α·dOut[dst]
	for s := 0; s < e; s++ {
		src, dst := int(gc.SrcByDst[s]), int(gc.DstByDst[s])
		zr := l.z.Row(src)
		dzr := dZ.Row(src)
		dor := dOut.Row(dst)
		ar := l.alpha.Row(s)
		dar := dAlpha.Row(s)
		for h := 0; h < l.heads; h++ {
			var g float32
			for d := 0; d < l.dh; d++ {
				g += dor[h*l.dh+d] * zr[h*l.dh+d]
				dzr[h*l.dh+d] += ar[h] * dor[h*l.dh+d]
			}
			dar[h] = g
		}
	}
	// softmax backward per segment: ds = α·(dα − Σ α·dα). Every edge slot
	// lies in exactly one destination segment, so the loop overwrites the
	// whole buffer and no Zero is needed.
	dScore := buf2(l.dScore, e, l.heads)
	l.dScore = dScore
	for v := 0; v < gc.NumVertices(); v++ {
		lo, hi := int(gc.CSR.RowPtr[v]), int(gc.CSR.RowPtr[v+1])
		for h := 0; h < l.heads; h++ {
			var dot float64
			for s := lo; s < hi; s++ {
				dot += float64(l.alpha.At(s, h) * dAlpha.At(s, h))
			}
			for s := lo; s < hi; s++ {
				a := l.alpha.At(s, h)
				dScore.Set(a*(dAlpha.At(s, h)-float32(dot)), s, h)
			}
		}
	}
	// LeakyReLU backward on pre-activation scores (in place).
	dScore = tensor.LeakyReLUGrad(dScore, dScore, l.scores, l.slope)
	// score = pl[src] + pr[dst]
	dpl := buf2(l.dpl, l.pl.Dim(0), l.pl.Dim(1))
	l.dpl = dpl
	dpl.Zero()
	dpr := buf2(l.dpr, l.pr.Dim(0), l.pr.Dim(1))
	l.dpr = dpr
	dpr.Zero()
	for s := 0; s < e; s++ {
		src, dst := int(gc.SrcByDst[s]), int(gc.DstByDst[s])
		dsr := dScore.Row(s)
		plr := dpl.Row(src)
		prr := dpr.Row(dst)
		for h := 0; h < l.heads; h++ {
			plr[h] += dsr[h]
			prr[h] += dsr[h]
		}
	}
	// p = Σ_d a[h,d]·Z[v,h,d]: propagate into dZ, dAL, dAR.
	for v := 0; v < gc.NumVertices(); v++ {
		zr := l.z.Row(v)
		dzr := dZ.Row(v)
		for h := 0; h < l.heads; h++ {
			gl := dpl.At(v, h)
			gr := dpr.At(v, h)
			alr := l.AL.Value.Row(h)
			arr := l.AR.Value.Row(h)
			galr := l.AL.Grad.Row(h)
			garr := l.AR.Grad.Row(h)
			for d := 0; d < l.dh; d++ {
				dzr[h*l.dh+d] += gl*alr[d] + gr*arr[d]
				galr[d] += gl * zr[h*l.dh+d]
				garr[d] += gr * zr[h*l.dh+d]
			}
		}
	}
	l.xT = tensor.Transpose2D(buf2(l.xT, l.x.Dim(1), l.x.Dim(0)), l.x)
	tensor.MatMulAcc(l.W.Grad, l.xT, dZ)
	l.dX = tensor.MatMulTransB(buf2(l.dX, dZ.Dim(0), l.W.Value.Dim(0)), dZ, l.W.Value)
	return l.dX
}
