package nn

import (
	"fmt"

	"wisegraph/internal/tensor"
)

// Config describes a model instance. The paper's setting is 3 layers with
// hidden dimension 256 (32 for multi-GPU full-graph training).
type Config struct {
	Kind     ModelKind
	InDim    int
	Hidden   int
	OutDim   int // number of classes
	Layers   int
	Heads    int // GAT heads (default 4)
	NumTypes int // RGCN relations
	// Dropout is the between-layer drop probability applied during
	// training only (0 disables it).
	Dropout float64
	Seed    uint64
}

// Model is a stack of graph-convolution layers with ReLU between them and
// raw logits at the output.
type Model struct {
	Cfg    Config
	layers []Layer

	// caches
	acts   []*tensor.Tensor // pre-activation outputs per layer
	inputs []*tensor.Tensor // inputs per layer
	masks  []*tensor.Tensor // dropout masks per inter-layer gap

	// sticky buffers reused across iterations (see bufs.go)
	reluBufs []*tensor.Tensor // post-ReLU activations per inter-layer gap
	maskBufs []*tensor.Tensor // dropout mask storage per inter-layer gap
	gradBuf  *tensor.Tensor   // d(loss)/d(logits)

	training bool
	dropRNG  *tensor.RNG
}

// NewModel builds the configured model with Xavier-initialized parameters.
func NewModel(cfg Config) (*Model, error) {
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("nn: need at least one layer")
	}
	if cfg.Heads == 0 {
		cfg.Heads = 4
	}
	if cfg.Dropout < 0 || cfg.Dropout >= 1 {
		return nil, fmt.Errorf("nn: dropout %v out of [0,1)", cfg.Dropout)
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0x6d6f64656c)
	m := &Model{Cfg: cfg, dropRNG: tensor.NewRNG(cfg.Seed ^ 0x64726f70)}
	for li := 0; li < cfg.Layers; li++ {
		in := cfg.Hidden
		if li == 0 {
			in = cfg.InDim
		}
		out := cfg.Hidden
		if li == cfg.Layers-1 {
			out = cfg.OutDim
		}
		var l Layer
		switch cfg.Kind {
		case GCN:
			l = NewGCNLayer(rng, in, out)
		case SAGE:
			l = NewSAGELayer(rng, in, out)
		case SAGELSTM:
			l = NewSAGELSTMLayer(rng, in, out)
		case GAT:
			heads := cfg.Heads
			if li == cfg.Layers-1 || out%heads != 0 {
				heads = 1
			}
			l = NewGATLayer(rng, in, out, heads)
		case RGCN:
			if cfg.NumTypes < 1 {
				return nil, fmt.Errorf("nn: RGCN requires NumTypes ≥ 1")
			}
			l = NewRGCNLayer(rng, cfg.NumTypes, in, out)
		default:
			return nil, fmt.Errorf("nn: unknown model kind %v", cfg.Kind)
		}
		m.layers = append(m.layers, l)
	}
	return m, nil
}

// Layers exposes the layer stack (read-only use).
func (m *Model) Layers() []Layer { return m.layers }

// LayerDims returns the activation widths at every layer boundary:
// LayerDims()[0] is the input feature width and LayerDims()[l] the output
// width of layer l-1, so the slice has len(Layers())+1 entries. The
// serving tier's per-layer embedding cache sizes its rows from this.
func (m *Model) LayerDims() []int {
	dims := make([]int, 0, len(m.layers)+1)
	dims = append(dims, m.Cfg.InDim)
	for _, l := range m.layers {
		dims = append(dims, l.OutDim())
	}
	return dims
}

// Params collects every trainable parameter.
func (m *Model) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// CopyParamsFrom copies every parameter value from src into m. The two
// models must share an architecture (same parameter order, names and
// shapes). Serving workers use this to stamp out per-goroutine model
// replicas from one loaded checkpoint: parameter reads are safe to share,
// but the activation caches inside each layer are not, so every concurrent
// Forward needs its own Model.
func (m *Model) CopyParamsFrom(src *Model) error {
	dst, from := m.Params(), src.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("nn: copy across architectures: %d params vs %d", len(dst), len(from))
	}
	for i, p := range dst {
		q := from[i]
		if p.Name != q.Name || p.Value.Len() != q.Value.Len() {
			return fmt.Errorf("nn: copy across architectures: param %d is %s%v vs %s%v",
				i, p.Name, p.Value.Shape(), q.Name, q.Value.Shape())
		}
		copy(p.Value.Data(), q.Value.Data())
	}
	return nil
}

// NumParams returns the total number of scalar parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

// Forward runs the full model and returns logits [V, OutDim]. Dropout is
// applied between layers only while the model is in training mode (set by
// TrainStep).
func (m *Model) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	m.inputs = m.inputs[:0]
	m.acts = m.acts[:0]
	m.masks = m.masks[:0]
	cur := x
	for len(m.reluBufs) < len(m.layers)-1 {
		m.reluBufs = append(m.reluBufs, nil)
		m.maskBufs = append(m.maskBufs, nil)
	}
	for li, l := range m.layers {
		m.inputs = append(m.inputs, cur)
		out := l.Forward(gc, cur)
		m.acts = append(m.acts, out)
		if li < len(m.layers)-1 {
			m.reluBufs[li] = tensor.ReLU(bufLike(m.reluBufs[li], out), out)
			cur = m.reluBufs[li]
			if m.training && m.Cfg.Dropout > 0 {
				mask := bufLike(m.maskBufs[li], cur)
				m.maskBufs[li] = mask
				m.fillDropoutMask(mask)
				cur = tensor.Mul(cur, cur, mask)
				m.masks = append(m.masks, mask)
			} else {
				m.masks = append(m.masks, nil)
			}
		} else {
			cur = out
		}
	}
	return cur
}

// fillDropoutMask draws an inverted-dropout mask in place: 0 with
// probability p, 1/(1-p) otherwise, so activations keep their expectation.
func (m *Model) fillDropoutMask(mask *tensor.Tensor) {
	p := float32(m.Cfg.Dropout)
	keep := 1 / (1 - p)
	d := mask.Data()
	for i := range d {
		if m.dropRNG.Float32() >= p {
			d[i] = keep
		} else {
			d[i] = 0
		}
	}
}

// Backward propagates d(loss)/d(logits) through the stack, accumulating
// parameter gradients.
func (m *Model) Backward(gc *GraphCtx, dLogits *tensor.Tensor) {
	grad := dLogits
	for li := len(m.layers) - 1; li >= 0; li-- {
		if li < len(m.layers)-1 {
			// undo the inter-layer dropout, then the ReLU. grad at this
			// point is the layer-above's dX buffer (or gradBuf), which is
			// consumed here, so both steps can run in place.
			if li < len(m.masks) && m.masks[li] != nil {
				grad = tensor.Mul(grad, grad, m.masks[li])
			}
			grad = tensor.ReLUGrad(grad, grad, m.acts[li])
		}
		grad = m.layers[li].Backward(gc, grad)
	}
}

// Loss computes masked cross-entropy and, when grad is non-nil, its
// gradient w.r.t. the logits.
func (m *Model) Loss(logits *tensor.Tensor, labels []int32, mask []int32, grad *tensor.Tensor) float64 {
	return tensor.CrossEntropy(logits, labels, mask, grad)
}

// TrainStep runs one full forward/backward/update iteration and returns
// the training loss.
func (m *Model) TrainStep(gc *GraphCtx, x *tensor.Tensor, labels []int32, mask []int32, opt *Adam) float64 {
	opt.ZeroGrads()
	m.training = true
	defer func() { m.training = false }()
	logits := m.Forward(gc, x)
	m.gradBuf = bufLike(m.gradBuf, logits)
	loss := m.Loss(logits, labels, mask, m.gradBuf)
	m.Backward(gc, m.gradBuf)
	opt.Step()
	return loss
}

// Accuracy evaluates classification accuracy over the masked vertices.
func (m *Model) Accuracy(gc *GraphCtx, x *tensor.Tensor, labels []int32, mask []int32) float64 {
	logits := m.Forward(gc, x)
	pred := tensor.ArgMaxRows(logits)
	if len(mask) == 0 {
		return 0
	}
	correct := 0
	for _, v := range mask {
		if pred[v] == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(mask))
}
