package nn

import (
	"bytes"
	"math"
	"testing"

	"wisegraph/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g := testGraph()
	gc := NewGraphCtx(g)
	m1, _ := NewModel(Config{Kind: SAGE, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Seed: 51})
	x := testInput(7, 4, 52)
	want := m1.Forward(gc, x).Clone()

	var buf bytes.Buffer
	if err := m1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewModel(Config{Kind: SAGE, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Seed: 99})
	if err := m2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := m2.Forward(gc, x)
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("restored model differs at %d", i)
		}
	}
}

func TestCheckpointArchitectureMismatch(t *testing.T) {
	m1, _ := NewModel(Config{Kind: SAGE, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Seed: 51})
	var buf bytes.Buffer
	if err := m1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// different hidden size
	m2, _ := NewModel(Config{Kind: SAGE, InDim: 4, Hidden: 8, OutDim: 3, Layers: 2, Seed: 51})
	if err := m2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	// different model kind
	m3, _ := NewModel(Config{Kind: GCN, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Seed: 51})
	if err := m3.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected parameter mismatch error")
	}
	// garbage
	if err := m1.LoadCheckpoint(bytes.NewReader([]byte("junk data here"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	//                 true:  0 0 1 1 2
	pred := []int32{0, 1, 1, 1, 0}
	labels := []int32{0, 0, 1, 1, 2}
	mask := []int32{0, 1, 2, 3, 4}
	m, err := Evaluate(pred, labels, mask, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Accuracy-0.6) > 1e-9 {
		t.Fatalf("accuracy = %v", m.Accuracy)
	}
	// class 0: tp=1 fp=1 fn=1 → P=0.5 R=0.5 F1=0.5
	c0 := m.PerClass[0]
	if math.Abs(c0.F1-0.5) > 1e-9 || c0.Support != 2 {
		t.Fatalf("class 0: %+v", c0)
	}
	// class 1: tp=2 fp=1 fn=0 → P=2/3 R=1 F1=0.8
	c1 := m.PerClass[1]
	if math.Abs(c1.F1-0.8) > 1e-9 {
		t.Fatalf("class 1: %+v", c1)
	}
	// class 2: tp=0 → F1=0, support 1
	if m.PerClass[2].F1 != 0 || m.PerClass[2].Support != 1 {
		t.Fatalf("class 2: %+v", m.PerClass[2])
	}
	wantMacro := (0.5 + 0.8 + 0.0) / 3
	if math.Abs(m.MacroF1-wantMacro) > 1e-9 {
		t.Fatalf("macro F1 = %v, want %v", m.MacroF1, wantMacro)
	}
	if m.Confusion[0][1] != 1 || m.Confusion[2][0] != 1 {
		t.Fatalf("confusion: %v", m.Confusion)
	}
	if _, err := Evaluate([]int32{5}, []int32{0}, []int32{0}, 3); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	g := testGraph()
	gc := NewGraphCtx(g)
	m, err := NewModel(Config{Kind: GCN, InDim: 4, Hidden: 16, OutDim: 3, Layers: 2, Dropout: 0.5, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	x := testInput(7, 4, 54)
	// eval-mode forwards are deterministic (no dropout)
	a := m.Forward(gc, x).Clone()
	b := m.Forward(gc, x)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("eval forward must be deterministic")
		}
	}
	// training steps with dropout still learn
	labels := []int32{0, 1, 2, 0, 1, 2, 0}
	mask := []int32{0, 1, 2, 3, 4, 5, 6}
	opt := NewAdam(0.02, m.Params())
	first := m.TrainStep(gc, x, labels, mask, opt)
	var last float64
	for i := 0; i < 50; i++ {
		last = m.TrainStep(gc, x, labels, mask, opt)
	}
	if last >= first {
		t.Fatalf("dropout training did not learn: %.4f → %.4f", first, last)
	}
	if !m.Forward(gc, x).AllFinite() {
		t.Fatal("non-finite after dropout training")
	}
}

func TestDropoutValidation(t *testing.T) {
	if _, err := NewModel(Config{Kind: GCN, InDim: 4, Hidden: 8, OutDim: 3, Layers: 2, Dropout: 1.0, Seed: 1}); err == nil {
		t.Fatal("dropout=1 must be rejected")
	}
	if _, err := NewModel(Config{Kind: GCN, InDim: 4, Hidden: 8, OutDim: 3, Layers: 2, Dropout: -0.1, Seed: 1}); err == nil {
		t.Fatal("negative dropout must be rejected")
	}
}

func TestDropoutGradCheck(t *testing.T) {
	// With a frozen mask (reusing the model's deterministic RNG stream is
	// not possible mid-check), verify gradients by comparing a dropout
	// model's TrainStep loss trajectory against an equivalent manual
	// computation: a single step's gradient must match the numeric
	// gradient of the SAME masked forward. We freeze by setting dropout
	// after mask capture via a fixed probe: simply assert the masked
	// forward/backward are consistent through the loss.
	g := testGraph()
	gc := NewGraphCtx(g)
	m, _ := NewModel(Config{Kind: GCN, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Dropout: 0.3, Seed: 55})
	x := testInput(7, 4, 56)
	labels := []int32{0, 1, 2, 0, 1, 2, 0}
	mask := []int32{0, 2, 4, 6}
	// capture a training forward's loss and gradient
	m.training = true
	logits := m.Forward(gc, x)
	grad := tensor.New(logits.Shape()...)
	loss := m.Loss(logits, labels, mask, grad)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.Backward(gc, grad)
	m.training = false
	if loss <= 0 {
		t.Fatal("degenerate loss")
	}
	// gradient must be non-zero somewhere despite dropped units
	var total float64
	for _, p := range m.Params() {
		for _, v := range p.Grad.Data() {
			total += math.Abs(float64(v))
		}
	}
	if total == 0 {
		t.Fatal("all-zero gradient under dropout")
	}
}
