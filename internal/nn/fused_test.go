package nn

import (
	"fmt"
	"testing"

	"wisegraph/internal/graph/gen"
	"wisegraph/internal/tensor"
)

// typedGraphCtx builds a typed, hub-skewed graph for cross-engine parity
// tests (RGCN needs edge types; the others ignore them).
func typedGraphCtx(v, e, types int, seed uint64) (*GraphCtx, *gen.Result) {
	res := gen.Generate(gen.Config{
		NumVertices: v, NumEdges: e, Kind: gen.PowerLaw, Skew: 1.0,
		NumTypes: types, NumBlocks: 5, Homophily: 0.8, Seed: seed,
	})
	return NewGraphCtx(res.Graph), res
}

// TestTrainStepBitwiseBlockedVsFused trains every model for a few steps
// under both execution paths and worker counts and requires bit-identical
// losses and final logits: the fused path's restructured dataflow (single
// streaming pass per row, folded bias, no per-edge intermediates) must not
// change a single bit of forward or backward, sequentially or parallel.
func TestTrainStepBitwiseBlockedVsFused(t *testing.T) {
	gc, res := typedGraphCtx(250, 3000, 3, 11)
	rng := tensor.NewRNG(73)
	x := tensor.Uniform(tensor.New(gc.NumVertices(), 11), rng, -1, 1)
	labels := make([]int32, gc.NumVertices())
	copy(labels, res.Block)
	mask := make([]int32, gc.NumVertices())
	for i := range mask {
		mask[i] = int32(i)
	}

	run := func(kind ModelKind, ex Exec, workers int) ([]float64, *tensor.Tensor) {
		var losses []float64
		var logits *tensor.Tensor
		parityWorkers(t, workers, func() {
			gc.SetExec(ex)
			defer gc.SetExec(ExecBlocked)
			m, err := NewModel(Config{
				Kind: kind, InDim: 11, Hidden: 24, OutDim: 5, Layers: 2,
				Heads: 2, NumTypes: 3, Dropout: 0.25, Seed: 17,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := NewAdam(1e-2, m.Params())
			for it := 0; it < 3; it++ {
				losses = append(losses, m.TrainStep(gc, x, labels, mask, opt))
			}
			out := m.Forward(gc, x)
			logits = tensor.New(out.Shape()...)
			logits.CopyFrom(out)
		})
		return losses, logits
	}

	for kind := ModelKind(0); kind < NumModels; kind++ {
		t.Run(kind.String(), func(t *testing.T) {
			wantLoss, wantLogits := run(kind, ExecBlocked, 1)
			for _, cs := range []struct {
				ex      Exec
				workers int
			}{
				{ExecBlocked, 8},
				{ExecFused, 1},
				{ExecFused, 8},
			} {
				gotLoss, gotLogits := run(kind, cs.ex, cs.workers)
				label := fmt.Sprintf("%v workers=%d", cs.ex, cs.workers)
				for i := range wantLoss {
					if gotLoss[i] != wantLoss[i] {
						t.Fatalf("%s: loss[%d] = %v, want %v", label, i, gotLoss[i], wantLoss[i])
					}
				}
				for i, v := range gotLogits.Data() {
					if v != wantLogits.Data()[i] {
						t.Fatalf("%s: logits[%d] = %v, want %v", label, i, v, wantLogits.Data()[i])
					}
				}
			}
		})
	}
}

// TestBySrcIndexCoversEveryEdgeOnce checks the transpose adjacency the
// fused backward streams: every CSR slot appears exactly once, grouped by
// source and slot-ascending within each source.
func TestBySrcIndexCoversEveryEdgeOnce(t *testing.T) {
	gc, _ := typedGraphCtx(120, 1500, 3, 5)
	ptr, slots := gc.BySrc()
	if len(ptr) != gc.NumVertices()+1 || int(ptr[len(ptr)-1]) != gc.NumEdges() {
		t.Fatalf("ptr shape: len=%d last=%d", len(ptr), ptr[len(ptr)-1])
	}
	seen := make([]bool, gc.NumEdges())
	for v := 0; v < gc.NumVertices(); v++ {
		prev := int32(-1)
		for k := ptr[v]; k < ptr[v+1]; k++ {
			s := slots[k]
			if gc.SrcByDst[s] != int32(v) {
				t.Fatalf("slot %d grouped under src %d, but SrcByDst=%d", s, v, gc.SrcByDst[s])
			}
			if s <= prev {
				t.Fatalf("slots not ascending within src %d: %d after %d", v, s, prev)
			}
			prev = s
			if seen[s] {
				t.Fatalf("slot %d listed twice", s)
			}
			seen[s] = true
		}
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("slot %d missing from BySrc", s)
		}
	}
}
