package nn

import "wisegraph/internal/tensor"

// GCNLayer implements h' = Â·(h·W) + b with random-walk normalization
// Â[d,s] = 1/deg(d). Its neural operation is plain addition, placing GCN
// in the paper's "simple" model class.
type GCNLayer struct {
	W, B *Param

	// caches and sticky buffers (see bufs.go)
	x, xw   *tensor.Tensor
	xT      *tensor.Tensor
	out     *tensor.Tensor
	dXW, dX *tensor.Tensor
}

// NewGCNLayer allocates a layer mapping in → out features.
func NewGCNLayer(rng *tensor.RNG, in, out int) *GCNLayer {
	return &GCNLayer{W: NewParam("gcn.W", rng, in, out), B: NewZeroParam("gcn.b", out)}
}

// Params implements Layer.
func (l *GCNLayer) Params() []*Param { return []*Param{l.W, l.B} }

// InDim implements Layer.
func (l *GCNLayer) InDim() int { return l.W.Value.Dim(0) }

// OutDim implements Layer.
func (l *GCNLayer) OutDim() int { return l.W.Value.Dim(1) }

// Forward implements Layer.
func (l *GCNLayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	l.xw = tensor.MatMul(buf2(l.xw, x.Dim(0), l.OutDim()), x, l.W.Value)
	l.out = buf2(l.out, gc.NumVertices(), l.OutDim())
	if gc.ExecKind() == ExecFused {
		// One streaming pass per row: aggregate + bias fused.
		fusedSegSpMM(l.out, l.xw, gc.CSR.RowPtr, nil, gc.SrcByDst, gc.InvDeg, l.B.Value, false)
		return l.out
	}
	l.out.Zero()
	EdgeSpMMBins(l.out, l.xw, gc.SrcByDst, gc.DstByDst, gc.InvDeg, gc.BinsByDst())
	tensor.AddBias(l.out, l.B.Value)
	return l.out
}

// Backward implements Layer.
func (l *GCNLayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	// bias gradient: column sum
	accumBiasGrad(l.B.Grad, dOut)
	// transpose aggregation: dXW[src] += w_e · dOut[dst]
	l.dXW = buf2(l.dXW, l.xw.Dim(0), l.xw.Dim(1))
	if gc.ExecKind() == ExecFused {
		ptr, slots := gc.BySrc()
		fusedSegSpMM(l.dXW, dOut, ptr, slots, gc.DstByDst, gc.InvDeg, nil, false)
	} else {
		l.dXW.Zero()
		EdgeSpMMBins(l.dXW, dOut, gc.DstByDst, gc.SrcByDst, gc.InvDeg, gc.BinsBySrc())
	}
	l.xT = tensor.Transpose2D(buf2(l.xT, l.x.Dim(1), l.x.Dim(0)), l.x)
	tensor.MatMulAcc(l.W.Grad, l.xT, l.dXW)
	l.dX = tensor.MatMulTransB(buf2(l.dX, l.dXW.Dim(0), l.W.Value.Dim(0)), l.dXW, l.W.Value)
	return l.dX
}

// accumBiasGrad adds the column sums of d to g.
func accumBiasGrad(g, d *tensor.Tensor) {
	n := g.Len()
	gd := g.Data()
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j := 0; j < n; j++ {
			gd[j] += row[j]
		}
	}
}

// transposeOf returns xᵀ (fresh tensor).
func transposeOf(x *tensor.Tensor) *tensor.Tensor { return tensor.Transpose2D(nil, x) }

// SAGELayer implements GraphSAGE with mean aggregation:
// h' = h·Wself + mean_neigh(h)·Wneigh + b (simple class).
type SAGELayer struct {
	WSelf, WNeigh, B *Param

	// caches and sticky buffers
	x, agg   *tensor.Tensor
	xT, aggT *tensor.Tensor
	out      *tensor.Tensor
	dx, dAgg *tensor.Tensor
}

// NewSAGELayer allocates a layer mapping in → out features.
func NewSAGELayer(rng *tensor.RNG, in, out int) *SAGELayer {
	return &SAGELayer{
		WSelf:  NewParam("sage.Wself", rng, in, out),
		WNeigh: NewParam("sage.Wneigh", rng, in, out),
		B:      NewZeroParam("sage.b", out),
	}
}

// Params implements Layer.
func (l *SAGELayer) Params() []*Param { return []*Param{l.WSelf, l.WNeigh, l.B} }

// InDim implements Layer.
func (l *SAGELayer) InDim() int { return l.WSelf.Value.Dim(0) }

// OutDim implements Layer.
func (l *SAGELayer) OutDim() int { return l.WSelf.Value.Dim(1) }

// Forward implements Layer.
func (l *SAGELayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	l.agg = buf2(l.agg, gc.NumVertices(), l.InDim())
	l.out = tensor.MatMul(buf2(l.out, x.Dim(0), l.OutDim()), x, l.WSelf.Value)
	if gc.ExecKind() == ExecFused {
		// Aggregate, neighbor transform and bias in one pass per row;
		// agg is still populated identically for the backward pass.
		fusedSAGEForward(l.out, l.agg, x, gc, l.WNeigh.Value, l.B.Value)
		return l.out
	}
	l.agg.Zero()
	EdgeSpMMBins(l.agg, x, gc.SrcByDst, gc.DstByDst, gc.InvDeg, gc.BinsByDst())
	tensor.MatMulAcc(l.out, l.agg, l.WNeigh.Value)
	tensor.AddBias(l.out, l.B.Value)
	return l.out
}

// Backward implements Layer.
func (l *SAGELayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	accumBiasGrad(l.B.Grad, dOut)
	l.xT = tensor.Transpose2D(buf2(l.xT, l.x.Dim(1), l.x.Dim(0)), l.x)
	tensor.MatMulAcc(l.WSelf.Grad, l.xT, dOut)
	l.aggT = tensor.Transpose2D(buf2(l.aggT, l.agg.Dim(1), l.agg.Dim(0)), l.agg)
	tensor.MatMulAcc(l.WNeigh.Grad, l.aggT, dOut)
	l.dx = tensor.MatMulTransB(buf2(l.dx, dOut.Dim(0), l.WSelf.Value.Dim(0)), dOut, l.WSelf.Value)
	l.dAgg = tensor.MatMulTransB(buf2(l.dAgg, dOut.Dim(0), l.WNeigh.Value.Dim(0)), dOut, l.WNeigh.Value)
	// transpose mean aggregation back to sources
	if gc.ExecKind() == ExecFused {
		ptr, slots := gc.BySrc()
		fusedSegSpMM(l.dx, l.dAgg, ptr, slots, gc.DstByDst, gc.InvDeg, nil, true)
	} else {
		EdgeSpMMBins(l.dx, l.dAgg, gc.DstByDst, gc.SrcByDst, gc.InvDeg, gc.BinsBySrc())
	}
	return l.dx
}
