package nn

import "wisegraph/internal/tensor"

// GCNLayer implements h' = Â·(h·W) + b with random-walk normalization
// Â[d,s] = 1/deg(d). Its neural operation is plain addition, placing GCN
// in the paper's "simple" model class.
type GCNLayer struct {
	W, B *Param

	// caches
	x, xw *tensor.Tensor
}

// NewGCNLayer allocates a layer mapping in → out features.
func NewGCNLayer(rng *tensor.RNG, in, out int) *GCNLayer {
	return &GCNLayer{W: NewParam("gcn.W", rng, in, out), B: NewZeroParam("gcn.b", out)}
}

// Params implements Layer.
func (l *GCNLayer) Params() []*Param { return []*Param{l.W, l.B} }

// InDim implements Layer.
func (l *GCNLayer) InDim() int { return l.W.Value.Dim(0) }

// OutDim implements Layer.
func (l *GCNLayer) OutDim() int { return l.W.Value.Dim(1) }

// Forward implements Layer.
func (l *GCNLayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	l.xw = tensor.MatMul(nil, x, l.W.Value)
	out := tensor.New(gc.NumVertices(), l.OutDim())
	EdgeSpMM(out, l.xw, gc.SrcByDst, gc.DstByDst, gc.InvDeg)
	tensor.AddBias(out, l.B.Value)
	return out
}

// Backward implements Layer.
func (l *GCNLayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	// bias gradient: column sum
	accumBiasGrad(l.B.Grad, dOut)
	// transpose aggregation: dXW[src] += w_e · dOut[dst]
	dXW := tensor.New(l.xw.Shape()...)
	EdgeSpMM(dXW, dOut, gc.DstByDst, gc.SrcByDst, gc.InvDeg)
	tensor.MatMulAcc(l.W.Grad, transposeOf(l.x), dXW)
	return tensor.MatMulTransB(nil, dXW, l.W.Value)
}

// accumBiasGrad adds the column sums of d to g.
func accumBiasGrad(g, d *tensor.Tensor) {
	n := g.Len()
	gd := g.Data()
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j := 0; j < n; j++ {
			gd[j] += row[j]
		}
	}
}

// transposeOf returns xᵀ (fresh tensor).
func transposeOf(x *tensor.Tensor) *tensor.Tensor { return tensor.Transpose2D(nil, x) }

// SAGELayer implements GraphSAGE with mean aggregation:
// h' = h·Wself + mean_neigh(h)·Wneigh + b (simple class).
type SAGELayer struct {
	WSelf, WNeigh, B *Param

	x, agg *tensor.Tensor
}

// NewSAGELayer allocates a layer mapping in → out features.
func NewSAGELayer(rng *tensor.RNG, in, out int) *SAGELayer {
	return &SAGELayer{
		WSelf:  NewParam("sage.Wself", rng, in, out),
		WNeigh: NewParam("sage.Wneigh", rng, in, out),
		B:      NewZeroParam("sage.b", out),
	}
}

// Params implements Layer.
func (l *SAGELayer) Params() []*Param { return []*Param{l.WSelf, l.WNeigh, l.B} }

// InDim implements Layer.
func (l *SAGELayer) InDim() int { return l.WSelf.Value.Dim(0) }

// OutDim implements Layer.
func (l *SAGELayer) OutDim() int { return l.WSelf.Value.Dim(1) }

// Forward implements Layer.
func (l *SAGELayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	l.agg = tensor.New(gc.NumVertices(), l.InDim())
	EdgeSpMM(l.agg, x, gc.SrcByDst, gc.DstByDst, gc.InvDeg)
	out := tensor.MatMul(nil, x, l.WSelf.Value)
	tensor.MatMulAcc(out, l.agg, l.WNeigh.Value)
	tensor.AddBias(out, l.B.Value)
	return out
}

// Backward implements Layer.
func (l *SAGELayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	accumBiasGrad(l.B.Grad, dOut)
	tensor.MatMulAcc(l.WSelf.Grad, transposeOf(l.x), dOut)
	tensor.MatMulAcc(l.WNeigh.Grad, transposeOf(l.agg), dOut)
	dx := tensor.MatMulTransB(nil, dOut, l.WSelf.Value)
	dAgg := tensor.MatMulTransB(nil, dOut, l.WNeigh.Value)
	// transpose mean aggregation back to sources
	EdgeSpMM(dx, dAgg, gc.DstByDst, gc.SrcByDst, gc.InvDeg)
	return dx
}
