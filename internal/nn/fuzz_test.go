package nn

import (
	"bytes"
	"math"
	"testing"
)

// fuzzModel builds the small fixed-architecture model the fuzz targets
// decode into.
func fuzzModel(tb testing.TB) *Model {
	m, err := NewModel(Config{Kind: GCN, InDim: 3, Hidden: 4, OutDim: 2, Layers: 2, NumTypes: 1, Seed: 3})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// FuzzCheckpointLoad hammers every checkpoint decoder (v1 and v2 headers,
// embedded configs, parameter records, train states) with mutated bytes:
// any input must either load cleanly or fail with an error — never panic,
// never allocate absurdly, and never leave non-finite values in a model
// it claims to have loaded.
func FuzzCheckpointLoad(f *testing.F) {
	m := fuzzModel(f)
	var ckpt bytes.Buffer
	if err := m.SaveCheckpoint(&ckpt); err != nil {
		f.Fatal(err)
	}
	valid := ckpt.Bytes()

	// Materialize Adam moments so the train-state seed carries them.
	opt := NewAdam(0.01, m.Params())
	for _, p := range opt.Params {
		for i := range p.Grad.Data() {
			p.Grad.Data()[i] = 0.1
		}
	}
	opt.Step()
	var ts bytes.Buffer
	if err := m.SaveTrainState(&ts, opt, []uint64{7, 9}); err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add(ts.Bytes())
	f.Add([]byte{})
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/2])
	for _, i := range []int{0, 4, 8, 12, 40, len(valid) - 4} {
		if i >= 0 && i < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Self-describing path: reconstructs architecture from the bytes.
		// Mutated configs can carry dims that are individually legal but
		// jointly allocate gigabytes; the decoder is exercised for every
		// input, model construction only for sanely-sized architectures.
		if cfg, err := ReadCheckpointConfig(bytes.NewReader(data)); err == nil && modelScalars(cfg) <= 1<<22 {
			if m2, err := LoadModelFromCheckpoint(bytes.NewReader(data)); err == nil {
				for _, p := range m2.Params() {
					for _, v := range p.Value.Data() {
						if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
							t.Fatal("loaded model carries non-finite parameter")
						}
					}
				}
			}
		}
		// Fixed-architecture path (v1 checkpoints and mismatch handling).
		m3 := fuzzModel(t)
		_ = m3.LoadCheckpoint(bytes.NewReader(data))
		// Train-state path (optimizer moments, RNG stream, extra words).
		m4 := fuzzModel(t)
		opt4 := NewAdam(0.01, m4.Params())
		if extra, err := m4.LoadTrainState(bytes.NewReader(data), opt4); err == nil {
			if len(extra) > trainMaxExtra {
				t.Fatalf("extra block of %d words exceeded cap", len(extra))
			}
		}
	})
}

// modelScalars overestimates the scalar parameter count a config implies,
// in int64 so absurd dims can't overflow the guard.
func modelScalars(cfg Config) int64 {
	width := int64(cfg.InDim) + int64(cfg.Hidden)*int64(cfg.Layers) + int64(cfg.OutDim)
	mult := int64(1)
	if cfg.NumTypes > 1 {
		mult = int64(cfg.NumTypes)
	}
	if cfg.Heads > 1 {
		mult *= int64(cfg.Heads)
	}
	// SAGE-LSTM allocates 4 gate matrices per layer; 8 covers every kind.
	return width * (int64(cfg.Hidden) + 1) * mult * 8
}

// FuzzConfigRoundTrip checks that any config block the reader accepts is
// one the writer reproduces byte-for-byte — the decoder and encoder must
// agree on the format or checkpoints written today fail tomorrow.
func FuzzConfigRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := writeConfig(&buf, fuzzModel(f).Cfg); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := readConfig(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeConfig(&out, cfg); err != nil {
			t.Fatalf("accepted config fails to re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("config round trip diverged:\n in %x\nout %x", data[:out.Len()], out.Bytes())
		}
	})
}
