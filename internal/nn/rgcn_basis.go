package nn

import (
	"wisegraph/internal/tensor"
)

// RGCNBasisLayer is RGCN with basis decomposition (Schlichtkrull et al.,
// the regularization the original paper uses for many relations):
//
//	W[t] = Σ_b comb[t,b] · V[b]
//
// so the per-relation weights share B basis matrices. This is the
// extension variant of RGCNLayer: same graph computation, fewer
// parameters, with gradients flowing through the combination.
type RGCNBasisLayer struct {
	WSelf *Param
	// Basis holds B shared matrices, shape [B, in, out].
	Basis *Param
	// Comb holds per-relation combination coefficients, shape [T, B].
	Comb *Param
	B    *Param

	numTypes, bases int

	x        *tensor.Tensor
	weights  *tensor.Tensor   // materialized W[t], cached for backward
	gathered []*tensor.Tensor // per-type gathered inputs
}

// NewRGCNBasisLayer allocates a layer with numTypes relations sharing
// bases basis matrices.
func NewRGCNBasisLayer(rng *tensor.RNG, numTypes, bases, in, out int) *RGCNBasisLayer {
	if bases < 1 || bases > numTypes {
		bases = min(max(bases, 1), numTypes)
	}
	return &RGCNBasisLayer{
		WSelf:    NewParam("rgcnb.Wself", rng, in, out),
		Basis:    NewParam("rgcnb.V", rng, bases, in, out),
		Comb:     NewParam("rgcnb.comb", rng, numTypes, bases),
		B:        NewZeroParam("rgcnb.b", out),
		numTypes: numTypes,
		bases:    bases,
	}
}

// Params implements Layer.
func (l *RGCNBasisLayer) Params() []*Param {
	return []*Param{l.WSelf, l.Basis, l.Comb, l.B}
}

// InDim implements Layer.
func (l *RGCNBasisLayer) InDim() int { return l.WSelf.Value.Dim(0) }

// OutDim implements Layer.
func (l *RGCNBasisLayer) OutDim() int { return l.WSelf.Value.Dim(1) }

// Bases returns the basis count.
func (l *RGCNBasisLayer) Bases() int { return l.bases }

// materializeWeights computes W[t] = Σ_b comb[t,b]·V[b] as a [T, in*out]
// matmul over the flattened bases.
func (l *RGCNBasisLayer) materializeWeights() *tensor.Tensor {
	in, out := l.InDim(), l.OutDim()
	flatBasis := l.Basis.Value.Reshape(l.bases, in*out)
	return tensor.MatMul(nil, l.Comb.Value, flatBasis) // [T, in*out]
}

// Forward implements Layer (same relation-grouped execution as RGCNLayer,
// over materialized weights).
func (l *RGCNBasisLayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	if gc.TypeOffsets == nil {
		panic("nn: RGCN-basis requires a typed graph")
	}
	l.x = x
	l.weights = l.materializeWeights()
	l.gathered = make([]*tensor.Tensor, l.numTypes)
	in, out := l.InDim(), l.OutDim()
	res := tensor.MatMul(nil, x, l.WSelf.Value)
	for t := 0; t < l.numTypes; t++ {
		slots := typeEdges(gc, t)
		if len(slots) == 0 {
			continue
		}
		src := make([]int32, len(slots))
		for i, s := range slots {
			src[i] = gc.SrcByDst[s]
		}
		xt := tensor.GatherRows(nil, x, src)
		l.gathered[t] = xt
		wt := tensor.FromSlice(l.weights.Row(t), in, out)
		msg := tensor.MatMul(nil, xt, wt)
		for i, s := range slots {
			mrow := msg.Row(i)
			orow := res.Row(int(gc.DstByDst[s]))
			we := gc.InvDeg[s]
			for j, v := range mrow {
				orow[j] += we * v
			}
		}
	}
	tensor.AddBias(res, l.B.Value)
	return res
}

// Backward implements Layer.
func (l *RGCNBasisLayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	accumBiasGrad(l.B.Grad, dOut)
	tensor.MatMulAcc(l.WSelf.Grad, transposeOf(l.x), dOut)
	dx := tensor.MatMulTransB(nil, dOut, l.WSelf.Value)
	in, out := l.InDim(), l.OutDim()
	// per-relation weight gradients, then project into basis/comb space
	dW := tensor.New(l.numTypes, in*out)
	for t := 0; t < l.numTypes; t++ {
		slots := typeEdges(gc, t)
		if len(slots) == 0 {
			continue
		}
		dMsg := tensor.New(len(slots), out)
		for i, s := range slots {
			drow := dOut.Row(int(gc.DstByDst[s]))
			mrow := dMsg.Row(i)
			we := gc.InvDeg[s]
			for j, v := range drow {
				mrow[j] = we * v
			}
		}
		xt := l.gathered[t]
		dWt := tensor.MatMulTransA(nil, xt, dMsg) // [in, out]
		copy(dW.Row(t), dWt.Data())
		wt := tensor.FromSlice(l.weights.Row(t), in, out)
		dXt := tensor.MatMulTransB(nil, dMsg, wt)
		for i, s := range slots {
			srow := dXt.Row(i)
			xrow := dx.Row(int(gc.SrcByDst[s]))
			for j, v := range srow {
				xrow[j] += v
			}
		}
	}
	// W = comb · flatBasis ⇒ dComb += dW · flatBasisᵀ ; dBasis += combᵀ · dW
	flatBasis := l.Basis.Value.Reshape(l.bases, in*out)
	tensor.MatMulAcc(l.Comb.Grad, dW, tensor.Transpose2D(nil, flatBasis))
	dBasis := tensor.MatMulTransA(nil, l.Comb.Value, dW) // [bases, in*out]
	tensor.AXPY(l.Basis.Grad.Reshape(l.bases, in*out), 1, dBasis)
	return dx
}
