package nn

import (
	"fmt"
	"math"
	"testing"

	"wisegraph/internal/tensor"
)

// This file is the dense gradient-check battery: where nn_test.go's
// gradCheck probes three entries per parameter as a smoke test, these
// table-driven cases stride through EVERY parameter of every model at
// multiple depths, comparing the hand-written backward passes against
// central finite differences of the (float64-accumulated) cross-entropy
// loss under a relative-error tolerance.

// gradCase is one model configuration to check.
type gradCase struct {
	kind   ModelKind
	layers int
	tol    float64
}

func (c gradCase) name() string { return fmt.Sprintf("%v-L%d", c.kind, c.layers) }

// denseGradCheck checks analytic gradients for up to maxProbes entries of
// every parameter, spread by stride so the probes cover the whole tensor
// (corners and interior) instead of clustering at index 0.
func denseGradCheck(t *testing.T, c gradCase) {
	t.Helper()
	g := testGraph()
	gc := NewGraphCtx(g)
	cfg := Config{
		Kind: c.kind, InDim: 4, Hidden: 5, OutDim: 3,
		Layers: c.layers, Heads: 2, NumTypes: 3, Seed: 31,
	}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Nudge all parameters (biases included) off exact zeros so no
	// pre-activation sits on the ReLU kink, where the subgradient and the
	// symmetric difference quotient legitimately disagree.
	prng := tensor.NewRNG(77)
	for _, p := range m.Params() {
		for i := range p.Value.Data() {
			p.Value.Data()[i] += 0.05 * (prng.Float32() - 0.5)
		}
	}
	x := testInput(7, 4, 13)
	labels := []int32{2, 0, 1, 2, 0, 1, 2}
	mask := []int32{0, 1, 3, 4, 6}

	// CrossEntropy accumulates its loss in float64, which is what keeps
	// the difference quotient usable at eps ~ 1e-3 under float32 params.
	lossAt := func() float64 {
		return m.Loss(m.Forward(gc, x), labels, mask, nil)
	}

	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	logits := m.Forward(gc, x)
	grad := tensor.New(logits.Shape()...)
	m.Loss(logits, labels, mask, grad)
	m.Backward(gc, grad)

	const (
		eps       = 2e-3
		maxProbes = 12
	)
	checked, failures := 0, 0
	for _, p := range m.Params() {
		n := p.Value.Len()
		stride := n / maxProbes
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < n; i += stride {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + eps
			lp := lossAt()
			p.Value.Data()[i] = orig - eps
			lm := lossAt()
			p.Value.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(p.Grad.Data()[i])
			if math.Abs(num-ana) > c.tol*(1+math.Abs(num)) {
				t.Errorf("%s: %s[%d]: analytic %.6g vs numeric %.6g", c.name(), p.Name, i, ana, num)
				failures++
				if failures > 8 {
					t.Fatalf("%s: too many gradient mismatches, stopping", c.name())
				}
			}
			checked++
		}
	}
	if checked < len(m.Params()) {
		t.Fatalf("%s: only %d probes over %d params", c.name(), checked, len(m.Params()))
	}
	t.Logf("%s: %d probes ok", c.name(), checked)
}

// TestDenseGradCheckAllModels runs the battery: all five models, shallow
// and deep. The deep cases matter because backward bugs that cancel in a
// single layer (wrong transpose, dropped normalization) compound and
// surface once gradients flow through stacked aggregations.
func TestDenseGradCheckAllModels(t *testing.T) {
	cases := []gradCase{
		{GCN, 1, 2e-2}, {GCN, 3, 2e-2},
		{SAGE, 1, 2e-2}, {SAGE, 3, 2e-2},
		{RGCN, 1, 2e-2}, {RGCN, 2, 2e-2},
		// Attention and LSTM gates are less numerically tame: the float32
		// forward under a 2e-3 bump warrants the looser tolerance.
		{GAT, 1, 3e-2}, {GAT, 2, 4e-2},
		{SAGELSTM, 1, 3e-2}, {SAGELSTM, 2, 4e-2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name(), func(t *testing.T) { denseGradCheck(t, c) })
	}
}

// TestGradCheckLossGradientMatchesDifference checks d(loss)/d(logits)
// itself — the seed of every backward pass — against central differences
// on raw logits, without any model in the loop.
func TestGradCheckLossGradientMatchesDifference(t *testing.T) {
	rng := tensor.NewRNG(5)
	logits := tensor.New(6, 4)
	tensor.Uniform(logits, rng, -2, 2)
	labels := []int32{1, 3, 0, 2, 1, 0}
	mask := []int32{0, 2, 3, 5}
	grad := tensor.New(6, 4)
	tensor.CrossEntropy(logits, labels, mask, grad)
	const eps = 1e-3
	for i := range logits.Data() {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp := tensor.CrossEntropy(logits, labels, mask, nil)
		logits.Data()[i] = orig - eps
		lm := tensor.CrossEntropy(logits, labels, mask, nil)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		ana := float64(grad.Data()[i])
		if math.Abs(num-ana) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("dLogits[%d]: analytic %.6g vs numeric %.6g", i, ana, num)
		}
	}
}
