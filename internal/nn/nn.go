// Package nn implements the five GNN models the paper evaluates — GCN,
// SAGE, SAGE-LSTM, GAT and RGCN — as trainable reference implementations
// with hand-written forward and backward passes over the tensor substrate.
// These are the numerically authoritative implementations: the partition-
// strategy executors (tensor-centric, graph-centric, gTask-based) are
// cross-checked against them, and the accuracy experiments (paper Figure
// 14) train them end to end.
package nn

import (
	"fmt"
	"math"

	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// ModelKind identifies one of the evaluated models.
type ModelKind int

const (
	// GCN uses addition as its neural operation (paper's "simple" class).
	GCN ModelKind = iota
	// SAGE is GraphSAGE with mean aggregation (simple class).
	SAGE
	// SAGELSTM is GraphSAGE with LSTM aggregation (complex class).
	SAGELSTM
	// GAT uses multi-head attention (complex class).
	GAT
	// RGCN uses a per-relation MLP (complex class).
	RGCN
	// NumModels counts the kinds.
	NumModels
)

// String names the model as in the paper.
func (k ModelKind) String() string {
	switch k {
	case GCN:
		return "GCN"
	case SAGE:
		return "SAGE"
	case SAGELSTM:
		return "SAGE-LSTM"
	case GAT:
		return "GAT"
	case RGCN:
		return "RGCN"
	default:
		return fmt.Sprintf("model(%d)", int(k))
	}
}

// ParseModel resolves a model name.
func ParseModel(name string) (ModelKind, error) {
	for k := ModelKind(0); k < NumModels; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("nn: unknown model %q", name)
}

// Complex reports whether the model performs heavy neural operations
// (MLP/Attention/LSTM) — the class WiseGraph speeds up 2.64× — versus the
// simple addition class (1.13×).
func (k ModelKind) Complex() bool { return k == RGCN || k == GAT || k == SAGELSTM }

// EdgeSpMM accumulates out[dst[e]] += w[e] · x[src[e]] for every edge.
// A nil w means unit weights. Destination rows are sharded across workers
// so accumulation is deterministic and race-free. This one primitive
// implements both the forward aggregation (src→dst) and, with the index
// arrays swapped, its transpose for the backward pass.
func EdgeSpMM(out, x *tensor.Tensor, src, dst []int32, w []float32) {
	EdgeSpMMBins(out, x, src, dst, w, nil)
}

// EdgeSpMMBins is EdgeSpMM with an optional precomputed binning of dst
// over out's rows (built by tensor.BinRows). The full-graph training loop
// caches the bins on its GraphCtx, so every aggregation skips the
// partition pass entirely; a nil bins falls back to binning on the fly.
func EdgeSpMMBins(out, x *tensor.Tensor, src, dst []int32, w []float32, bins *tensor.Bins) {
	rs := x.RowSize()
	if out.RowSize() != rs {
		panic(fmt.Sprintf("nn: EdgeSpMM row sizes %d vs %d", out.RowSize(), rs))
	}
	shards := parallel.Workers(out.Rows(), 1)
	if shards <= 1 || len(src) < 2048 {
		for e := range src {
			edgeSpMMOne(out, x, src, dst, w, e, rs)
		}
		return
	}
	if bins == nil {
		bins = tensor.BinRows(nil, dst, out.Rows(), shards)
	}
	parallel.For(bins.NumShards(), 1, func(sh int) {
		edgeSpMMShard(out, x, src, dst, w, bins.Shard(sh), rs)
	})
}

// edgeSpMMShard processes the edges listed in order (a shard's positions).
func edgeSpMMShard(out, x *tensor.Tensor, src, dst []int32, w []float32, order []int32, rs int) {
	for _, e := range order {
		edgeSpMMOne(out, x, src, dst, w, int(e), rs)
	}
}

func edgeSpMMOne(out, x *tensor.Tensor, src, dst []int32, w []float32, e, rs int) {
	d := int(dst[e])
	xo := x.Data()[int(src[e])*rs : (int(src[e])+1)*rs]
	oo := out.Data()[d*rs : (d+1)*rs]
	if w == nil {
		for j, v := range xo {
			oo[j] += v
		}
	} else {
		we := w[e]
		for j, v := range xo {
			oo[j] += we * v
		}
	}
}

// InvDegreeWeights returns per-edge weights 1/in-degree(dst), the
// mean-aggregation normalization used by SAGE and (as random-walk
// normalization) GCN.
func InvDegreeWeights(dst []int32, inDeg []int32) []float32 {
	w := make([]float32, len(dst))
	for e, d := range dst {
		deg := inDeg[d]
		if deg > 0 {
			w[e] = 1 / float32(deg)
		}
	}
	return w
}

// Param is a trainable tensor with its gradient and Adam state.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
	m, v  *tensor.Tensor // Adam moments
	step  int
}

// NewParam allocates a parameter with Xavier initialization.
func NewParam(name string, rng *tensor.RNG, shape ...int) *Param {
	p := &Param{
		Name:  name,
		Value: tensor.XavierUniform(tensor.New(shape...), rng),
		Grad:  tensor.New(shape...),
	}
	return p
}

// NewZeroParam allocates a zero-initialized parameter (biases).
func NewZeroParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Adam is the Adam optimizer (β₁=0.9, β₂=0.999, ε=1e-8).
type Adam struct {
	LR     float64
	Params []*Param
}

// NewAdam wires an optimizer over params.
func NewAdam(lr float64, params []*Param) *Adam {
	return &Adam{LR: lr, Params: params}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step() {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	for _, p := range a.Params {
		if p.m == nil {
			p.m = tensor.New(p.Value.Shape()...)
			p.v = tensor.New(p.Value.Shape()...)
		}
		p.step++
		c1 := 1 - math.Pow(b1, float64(p.step))
		c2 := 1 - math.Pow(b2, float64(p.step))
		val, g, m, v := p.Value.Data(), p.Grad.Data(), p.m.Data(), p.v.Data()
		lr := a.LR
		parallel.ForRange(len(val), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				gi := float64(g[i])
				mi := b1*float64(m[i]) + (1-b1)*gi
				vi := b2*float64(v[i]) + (1-b2)*gi*gi
				m[i], v[i] = float32(mi), float32(vi)
				val[i] -= float32(lr * (mi / c1) / (math.Sqrt(vi/c2) + eps))
			}
		})
	}
}

// ZeroGrads clears all gradients.
func (a *Adam) ZeroGrads() {
	for _, p := range a.Params {
		p.ZeroGrad()
	}
}
