package nn

import (
	"fmt"

	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// Fused execution (Exec == ExecFused). The layers' sparse aggregations are
// restructured from "zero → per-edge scatter-add → bias pass" into one
// streaming pass per output row: the row's CSR segment is walked once,
// source rows are gathered and multiplied straight into the destination
// row, and the bias is folded into the same pass. No per-edge [E,F]
// intermediate is materialized and every operand crosses memory once.
//
// Bitwise parity with the blocked path is a hard invariant, kept by
// construction: each output element still receives exactly the additions
// 0 (+ c_s ascending by CSR slot) + bias, in that order, and each row is
// owned by exactly one worker, so results are identical for every worker
// count. The parity suite (fused_test.go, kernels/engine_test.go) checks
// this bit for bit across models, plans and worker counts.

// fusedSegSpMM streams out[r] (+)= Σ_s w[s]·x[col[s]] + bias over each
// row's index segment ptr[r]..ptr[r+1]. With slots == nil the segment
// positions are the slot ids themselves (forward: CSR by destination);
// otherwise slots maps positions to CSR slot ids (backward: the BySrc
// transpose). accum keeps the existing row contents (used when a dense
// term was already written); otherwise the row starts at zero, matching
// the blocked Zero → EdgeSpMM order. A nil bias skips the bias fold.
func fusedSegSpMM(out, x *tensor.Tensor, ptr, slots, col []int32, w []float32, bias *tensor.Tensor, accum bool) {
	rs := x.RowSize()
	if out.RowSize() != rs {
		panic(fmt.Sprintf("nn: fusedSegSpMM row sizes %d vs %d", out.RowSize(), rs))
	}
	var b []float32
	if bias != nil {
		b = bias.Data()
	}
	parallel.For(out.Rows(), 16, func(r int) {
		or := out.Row(r)
		if !accum {
			for j := range or {
				or[j] = 0
			}
		}
		for k := ptr[r]; k < ptr[r+1]; k++ {
			s := k
			if slots != nil {
				s = slots[k]
			}
			we := w[s]
			xr := x.Row(int(col[s]))
			for j, v := range xr {
				or[j] += we * v
			}
		}
		for j := range b {
			or[j] += b[j]
		}
	})
}

// vecMatAccRow accumulates dst += a·w for one row vector a, walking k in
// ascending order and skipping zero activations — the element-order
// contract of tensor.MatMulAcc's inner loop, so a per-row call is
// bitwise-identical to the blocked whole-matrix call.
func vecMatAccRow(dst, a []float32, w *tensor.Tensor) {
	n := w.Dim(1)
	for k, av := range a {
		if av == 0 {
			continue
		}
		wr := w.Data()[k*n : (k+1)*n]
		for j, wv := range wr {
			dst[j] += av * wv
		}
	}
}

// fusedSAGEForward fuses SAGE's aggregate → transform → bias chain per
// destination row: the neighbor mean is accumulated into agg's row (the
// backward pass still needs it), immediately pushed through Wneigh into
// the output row — which already holds the x·Wself term — and the bias is
// folded in, all in one pass over the row's CSR segment.
func fusedSAGEForward(out, agg, x *tensor.Tensor, gc *GraphCtx, wNeigh, bias *tensor.Tensor) {
	b := bias.Data()
	parallel.For(out.Rows(), 16, func(v int) {
		ar := agg.Row(v)
		for j := range ar {
			ar[j] = 0
		}
		for s := gc.CSR.RowPtr[v]; s < gc.CSR.RowPtr[v+1]; s++ {
			we := gc.InvDeg[s]
			xr := x.Row(int(gc.SrcByDst[s]))
			for j, xv := range xr {
				ar[j] += we * xv
			}
		}
		or := out.Row(v)
		vecMatAccRow(or, ar, wNeigh)
		for j := range or {
			or[j] += b[j]
		}
	})
}

// fusedRGCNType streams one relation's edges straight from x into the
// output rows — no [Et,in] gather and no [Et,out] message buffer. Within a
// relation each destination's edges form one contiguous run (filtering the
// dst-sorted CSR by type preserves contiguity), so parallelism is by run
// ownership: the worker whose range contains a run's first edge processes
// the whole run, keeping the per-row accumulation order identical at every
// worker count.
func fusedRGCNType(out, x *tensor.Tensor, te *TypeEdges, w *tensor.Tensor) {
	n := len(te.Src)
	outDim := out.Dim(1)
	parallel.ForRange(n, 256, func(lo, hi int) {
		msg := make([]float32, outDim)
		i := lo
		for i < hi && i > 0 && te.Dst[i] == te.Dst[i-1] {
			i++ // skip a run started inside the previous worker's range
		}
		for i < hi {
			d := te.Dst[i]
			j := i + 1
			for j < n && te.Dst[j] == d {
				j++ // a run crossing hi still belongs to this worker
			}
			or := out.Row(int(d))
			for k := i; k < j; k++ {
				tensor.VecMat(msg, x.Row(int(te.Src[k])), w)
				we := te.W[k]
				for jj, v := range msg {
					or[jj] += we * v
				}
			}
			i = j
		}
	})
}
