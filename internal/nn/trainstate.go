package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"wisegraph/internal/tensor"
)

// train-state format: magic, version, the model's dropout-RNG state, a
// caller-supplied extra block (the training loop stores its epoch cursor
// and any sampler RNG states there), an embedded v2 checkpoint, then the
// optimizer state per parameter (step count plus Adam moments).
//
// A checkpoint (SaveCheckpoint) is enough to serve or warm-start; a train
// state is enough to RESUME: restoring it reproduces the exact trajectory
// the uninterrupted run would have taken, bit for bit, because nothing
// that influences future steps — parameters, Adam m/v/step, the dropout
// RNG stream — is left out.
const (
	trainMagic    = 0x57534754 // "WSGT"
	trainVersion  = 1
	trainMaxExtra = 1024
)

// SaveTrainState writes everything needed to resume training exactly:
// the model parameters and config, the dropout RNG state, opt's Adam
// moments and step counters, and the caller's extra words (epoch cursor,
// sampler RNG states). Parameter order must match opt.Params on load.
func (m *Model) SaveTrainState(w io.Writer, opt *Adam, extra []uint64) error {
	if len(extra) > trainMaxExtra {
		return fmt.Errorf("nn: %d extra words exceeds cap %d", len(extra), trainMaxExtra)
	}
	hdr := []uint32{trainMagic, trainVersion}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("nn: writing train-state header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, m.dropRNG.State()); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(extra))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, extra); err != nil {
		return err
	}
	if err := m.SaveCheckpoint(w); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, math.Float64bits(opt.LR)); err != nil {
		return err
	}
	for _, p := range opt.Params {
		if err := binary.Write(w, binary.LittleEndian, uint64(p.step)); err != nil {
			return err
		}
		has := uint8(0)
		if p.m != nil {
			has = 1
		}
		if err := binary.Write(w, binary.LittleEndian, has); err != nil {
			return err
		}
		if has == 1 {
			if err := binary.Write(w, binary.LittleEndian, p.m.Data()); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, p.v.Data()); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadTrainState restores a state written by SaveTrainState into m and
// opt, returning the caller's extra words. The model must match the
// embedded checkpoint's architecture and opt.Params its parameter order.
func (m *Model) LoadTrainState(r io.Reader, opt *Adam) ([]uint64, error) {
	var hdr [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("nn: reading train-state header: %w", err)
	}
	if hdr[0] != trainMagic {
		return nil, fmt.Errorf("nn: not a train state (magic %#x)", hdr[0])
	}
	if hdr[1] != trainVersion {
		return nil, fmt.Errorf("nn: unsupported train-state version %d", hdr[1])
	}
	var dropState uint64
	if err := binary.Read(r, binary.LittleEndian, &dropState); err != nil {
		return nil, err
	}
	var nExtra uint32
	if err := binary.Read(r, binary.LittleEndian, &nExtra); err != nil {
		return nil, err
	}
	if nExtra > trainMaxExtra {
		return nil, fmt.Errorf("nn: absurd extra count %d (corrupt train state)", nExtra)
	}
	extra := make([]uint64, nExtra)
	if err := binary.Read(r, binary.LittleEndian, extra); err != nil {
		return nil, err
	}
	if err := m.LoadCheckpoint(r); err != nil {
		return nil, err
	}
	var lrBits uint64
	if err := binary.Read(r, binary.LittleEndian, &lrBits); err != nil {
		return nil, err
	}
	lr := math.Float64frombits(lrBits)
	if math.IsNaN(lr) || math.IsInf(lr, 0) || lr <= 0 {
		return nil, fmt.Errorf("nn: non-finite learning rate in train state")
	}
	for _, p := range opt.Params {
		var step uint64
		if err := binary.Read(r, binary.LittleEndian, &step); err != nil {
			return nil, err
		}
		if step > 1<<40 {
			return nil, fmt.Errorf("nn: %s: absurd step count %d (corrupt train state)", p.Name, step)
		}
		var has uint8
		if err := binary.Read(r, binary.LittleEndian, &has); err != nil {
			return nil, err
		}
		switch has {
		case 0:
			p.step = int(step)
			p.m, p.v = nil, nil
		case 1:
			if p.m == nil {
				p.m = tensor.New(p.Value.Shape()...)
				p.v = tensor.New(p.Value.Shape()...)
			}
			if err := binary.Read(r, binary.LittleEndian, p.m.Data()); err != nil {
				return nil, err
			}
			if err := binary.Read(r, binary.LittleEndian, p.v.Data()); err != nil {
				return nil, err
			}
			p.step = int(step)
		default:
			return nil, fmt.Errorf("nn: %s: bad moment flag %d (corrupt train state)", p.Name, has)
		}
	}
	opt.LR = lr
	m.dropRNG.SetState(dropState)
	return extra, nil
}
