package nn

import (
	"wisegraph/internal/tensor"
)

// RGCNLayer implements relational GCN (paper Equation 1):
//
//	h'[dst] += mean-norm · (h[src] × W[edge-type]) , plus a self weight:
//	h' = h·Wself + Σ_e norm_e · h[src_e]·W[type_e] + b
//
// Its per-edge MLP is the paper's canonical complex neural operation.
type RGCNLayer struct {
	WSelf *Param
	// W holds one in×out weight per relation, shape [T, in, out].
	W *Param
	B *Param

	numTypes int
	x        *tensor.Tensor
	gathered []*tensor.Tensor // per-type gathered inputs (pooled; released in Backward)

	// sticky buffers (see bufs.go)
	out, dx, xT *tensor.Tensor
}

// NewRGCNLayer allocates a layer with numTypes relations mapping in → out.
func NewRGCNLayer(rng *tensor.RNG, numTypes, in, out int) *RGCNLayer {
	return &RGCNLayer{
		WSelf:    NewParam("rgcn.Wself", rng, in, out),
		W:        NewParam("rgcn.W", rng, numTypes, in, out),
		B:        NewZeroParam("rgcn.b", out),
		numTypes: numTypes,
	}
}

// Params implements Layer.
func (l *RGCNLayer) Params() []*Param { return []*Param{l.WSelf, l.W, l.B} }

// InDim implements Layer.
func (l *RGCNLayer) InDim() int { return l.WSelf.Value.Dim(0) }

// OutDim implements Layer.
func (l *RGCNLayer) OutDim() int { return l.WSelf.Value.Dim(1) }

// typeWeight returns W[t] as a 2-D view.
func (l *RGCNLayer) typeWeight(t int) *tensor.Tensor {
	in, out := l.InDim(), l.OutDim()
	return tensor.FromSlice(l.W.Value.Data()[t*in*out:(t+1)*in*out], in, out)
}

func (l *RGCNLayer) typeWeightGrad(t int) *tensor.Tensor {
	in, out := l.InDim(), l.OutDim()
	return tensor.FromSlice(l.W.Grad.Data()[t*in*out:(t+1)*in*out], in, out)
}

// typeEdges returns the CSR slots of edges with type t.
func typeEdges(gc *GraphCtx, t int) []int32 {
	return gc.TypeOrder[gc.TypeOffsets[t]:gc.TypeOffsets[t+1]]
}

// Forward implements Layer. Edges are processed grouped by relation so
// each group is a dense [Et, in] × [in, out] matmul — the reference
// "relation-batched" execution.
func (l *RGCNLayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	if gc.TypeOffsets == nil {
		panic("nn: RGCN requires a typed graph")
	}
	l.x = x
	if len(l.gathered) != l.numTypes {
		l.gathered = make([]*tensor.Tensor, l.numTypes)
	}
	l.out = tensor.MatMul(buf2(l.out, x.Dim(0), l.OutDim()), x, l.WSelf.Value)
	out := l.out
	fused := gc.ExecKind() == ExecFused
	for t := 0; t < l.numTypes; t++ {
		te := gc.TypeEdgeArrays(t)
		if len(te.Src) == 0 {
			continue
		}
		if fused {
			// Stream edges straight from x into the output rows: no
			// [Et,in] gather and no [Et,out] message materialization.
			// The backward pass regathers transiently (see Backward).
			fusedRGCNType(out, x, te, l.typeWeight(t))
			continue
		}
		xt := tensor.GatherRows(tensor.Get(len(te.Src), l.InDim()), x, te.Src)
		l.gathered[t] = xt
		msg := tensor.MatMul(tensor.Get(len(te.Src), l.OutDim()), xt, l.typeWeight(t))
		// scatter with normalization: out[dst] += w · msg
		for i := range te.Src {
			mrow := msg.Row(i)
			orow := out.Row(int(te.Dst[i]))
			we := te.W[i]
			for j, v := range mrow {
				orow[j] += we * v
			}
		}
		tensor.Put(msg)
	}
	tensor.AddBias(out, l.B.Value)
	return out
}

// Backward implements Layer.
func (l *RGCNLayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	accumBiasGrad(l.B.Grad, dOut)
	l.xT = tensor.Transpose2D(buf2(l.xT, l.x.Dim(1), l.x.Dim(0)), l.x)
	tensor.MatMulAcc(l.WSelf.Grad, l.xT, dOut)
	l.dx = tensor.MatMulTransB(buf2(l.dx, dOut.Dim(0), l.WSelf.Value.Dim(0)), dOut, l.WSelf.Value)
	dx := l.dx
	for t := 0; t < l.numTypes; t++ {
		te := gc.TypeEdgeArrays(t)
		if len(te.Src) == 0 {
			continue
		}
		// dMsg[i] = w_i · dOut[dst_i]
		dMsg := tensor.Get(len(te.Src), l.OutDim())
		for i := range te.Src {
			drow := dOut.Row(int(te.Dst[i]))
			mrow := dMsg.Row(i)
			we := te.W[i]
			for j, v := range drow {
				mrow[j] = we * v
			}
		}
		// dW[t] += xtᵀ · dMsg ; dX[src] += dMsg · W[t]ᵀ
		xt := l.gathered[t]
		if xt == nil {
			// Fused forward skipped the [Et,in] materialization; gather
			// transiently for the gradient matmuls (GatherRows copies
			// bits, so gradients are identical to the blocked path) and
			// release it below with the same Put.
			xt = tensor.GatherRows(tensor.Get(len(te.Src), l.InDim()), l.x, te.Src)
		}
		xtT := tensor.Transpose2D(tensor.Get(xt.Dim(1), xt.Dim(0)), xt)
		tensor.MatMulAcc(l.typeWeightGrad(t), xtT, dMsg)
		tensor.Put(xtT)
		dXt := tensor.MatMulTransB(tensor.Get(len(te.Src), l.InDim()), dMsg, l.typeWeight(t))
		for i := range te.Src {
			srow := dXt.Row(i)
			xrow := dx.Row(int(te.Src[i]))
			for j, v := range srow {
				xrow[j] += v
			}
		}
		tensor.Put(dXt)
		tensor.Put(dMsg)
		tensor.Put(xt)
		l.gathered[t] = nil
	}
	return dx
}
