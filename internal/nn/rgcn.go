package nn

import (
	"wisegraph/internal/tensor"
)

// RGCNLayer implements relational GCN (paper Equation 1):
//
//	h'[dst] += mean-norm · (h[src] × W[edge-type]) , plus a self weight:
//	h' = h·Wself + Σ_e norm_e · h[src_e]·W[type_e] + b
//
// Its per-edge MLP is the paper's canonical complex neural operation.
type RGCNLayer struct {
	WSelf *Param
	// W holds one in×out weight per relation, shape [T, in, out].
	W *Param
	B *Param

	numTypes int
	x        *tensor.Tensor
	gathered []*tensor.Tensor // per-type gathered inputs (cached for backward)
}

// NewRGCNLayer allocates a layer with numTypes relations mapping in → out.
func NewRGCNLayer(rng *tensor.RNG, numTypes, in, out int) *RGCNLayer {
	return &RGCNLayer{
		WSelf:    NewParam("rgcn.Wself", rng, in, out),
		W:        NewParam("rgcn.W", rng, numTypes, in, out),
		B:        NewZeroParam("rgcn.b", out),
		numTypes: numTypes,
	}
}

// Params implements Layer.
func (l *RGCNLayer) Params() []*Param { return []*Param{l.WSelf, l.W, l.B} }

// InDim implements Layer.
func (l *RGCNLayer) InDim() int { return l.WSelf.Value.Dim(0) }

// OutDim implements Layer.
func (l *RGCNLayer) OutDim() int { return l.WSelf.Value.Dim(1) }

// typeWeight returns W[t] as a 2-D view.
func (l *RGCNLayer) typeWeight(t int) *tensor.Tensor {
	in, out := l.InDim(), l.OutDim()
	return tensor.FromSlice(l.W.Value.Data()[t*in*out:(t+1)*in*out], in, out)
}

func (l *RGCNLayer) typeWeightGrad(t int) *tensor.Tensor {
	in, out := l.InDim(), l.OutDim()
	return tensor.FromSlice(l.W.Grad.Data()[t*in*out:(t+1)*in*out], in, out)
}

// typeEdges returns the CSR slots of edges with type t.
func typeEdges(gc *GraphCtx, t int) []int32 {
	return gc.TypeOrder[gc.TypeOffsets[t]:gc.TypeOffsets[t+1]]
}

// Forward implements Layer. Edges are processed grouped by relation so
// each group is a dense [Et, in] × [in, out] matmul — the reference
// "relation-batched" execution.
func (l *RGCNLayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	if gc.TypeOffsets == nil {
		panic("nn: RGCN requires a typed graph")
	}
	l.x = x
	l.gathered = make([]*tensor.Tensor, l.numTypes)
	out := tensor.MatMul(nil, x, l.WSelf.Value)
	for t := 0; t < l.numTypes; t++ {
		slots := typeEdges(gc, t)
		if len(slots) == 0 {
			continue
		}
		src := make([]int32, len(slots))
		dst := make([]int32, len(slots))
		w := make([]float32, len(slots))
		for i, s := range slots {
			src[i] = gc.SrcByDst[s]
			dst[i] = gc.DstByDst[s]
			w[i] = gc.InvDeg[s]
		}
		xt := tensor.GatherRows(nil, x, src)
		l.gathered[t] = xt
		msg := tensor.MatMul(nil, xt, l.typeWeight(t))
		// scatter with normalization: out[dst] += w · msg
		for i := range slots {
			mrow := msg.Row(i)
			orow := out.Row(int(dst[i]))
			we := w[i]
			for j, v := range mrow {
				orow[j] += we * v
			}
		}
	}
	tensor.AddBias(out, l.B.Value)
	return out
}

// Backward implements Layer.
func (l *RGCNLayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	accumBiasGrad(l.B.Grad, dOut)
	tensor.MatMulAcc(l.WSelf.Grad, transposeOf(l.x), dOut)
	dx := tensor.MatMulTransB(nil, dOut, l.WSelf.Value)
	for t := 0; t < l.numTypes; t++ {
		slots := typeEdges(gc, t)
		if len(slots) == 0 {
			continue
		}
		// dMsg[i] = w_i · dOut[dst_i]
		dMsg := tensor.New(len(slots), l.OutDim())
		for i, s := range slots {
			drow := dOut.Row(int(gc.DstByDst[s]))
			mrow := dMsg.Row(i)
			we := gc.InvDeg[s]
			for j, v := range drow {
				mrow[j] = we * v
			}
		}
		// dW[t] += xtᵀ · dMsg ; dX[src] += dMsg · W[t]ᵀ
		xt := l.gathered[t]
		tensor.MatMulAcc(l.typeWeightGrad(t), transposeOf(xt), dMsg)
		dXt := tensor.MatMulTransB(nil, dMsg, l.typeWeight(t))
		for i, s := range slots {
			srow := dXt.Row(i)
			xrow := dx.Row(int(gc.SrcByDst[s]))
			for j, v := range srow {
				xrow[j] += v
			}
		}
	}
	return dx
}
