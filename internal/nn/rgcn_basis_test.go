package nn

import (
	"math"
	"testing"

	"wisegraph/internal/tensor"
)

func TestRGCNBasisGradCheck(t *testing.T) {
	g := testGraph()
	gc := NewGraphCtx(g)
	rng := tensor.NewRNG(31)
	l := NewRGCNBasisLayer(rng, 3, 2, 4, 3)
	x := testInput(7, 4, 32)
	labels := []int32{0, 1, 2, 0, 1, 2, 0}
	mask := []int32{0, 2, 3, 5, 6}

	loss := func() float64 {
		out := l.Forward(gc, x)
		return tensor.CrossEntropy(out, labels, mask, nil)
	}
	out := l.Forward(gc, x)
	grad := tensor.New(out.Shape()...)
	tensor.CrossEntropy(out, labels, mask, grad)
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	l.Backward(gc, grad)

	const eps = 2e-3
	for _, p := range l.Params() {
		for _, i := range []int{0, p.Value.Len() / 2, p.Value.Len() - 1} {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + eps
			lp := loss()
			p.Value.Data()[i] = orig - eps
			lm := loss()
			p.Value.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(p.Grad.Data()[i])
			if math.Abs(num-ana) > 2e-2*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %.6f vs numeric %.6f", p.Name, i, ana, num)
			}
		}
	}
}

func TestRGCNBasisMatchesFullRGCNWhenBasesEqualTypes(t *testing.T) {
	// With B == T and comb = identity, the basis layer IS plain RGCN.
	g := testGraph()
	gc := NewGraphCtx(g)
	rng := tensor.NewRNG(33)
	full := NewRGCNLayer(rng, 3, 4, 3)
	basis := NewRGCNBasisLayer(tensor.NewRNG(34), 3, 3, 4, 3)
	basis.WSelf.Value.CopyFrom(full.WSelf.Value)
	basis.B.Value.CopyFrom(full.B.Value)
	basis.Basis.Value.CopyFrom(full.W.Value)
	basis.Comb.Value.Zero()
	for i := 0; i < 3; i++ {
		basis.Comb.Value.Set(1, i, i)
	}
	x := testInput(7, 4, 35)
	a := full.Forward(gc, x)
	b := basis.Forward(gc, x)
	for i := range a.Data() {
		if math.Abs(float64(a.Data()[i]-b.Data()[i])) > 1e-4 {
			t.Fatalf("outputs differ at %d: %v vs %v", i, a.Data()[i], b.Data()[i])
		}
	}
}

func TestRGCNBasisFewerParams(t *testing.T) {
	rng := tensor.NewRNG(36)
	full := NewRGCNLayer(rng, 16, 32, 32)
	basis := NewRGCNBasisLayer(rng, 16, 4, 32, 32)
	count := func(ps []*Param) int {
		n := 0
		for _, p := range ps {
			n += p.Value.Len()
		}
		return n
	}
	if count(basis.Params()) >= count(full.Params()) {
		t.Fatalf("basis decomposition must shrink parameters: %d vs %d",
			count(basis.Params()), count(full.Params()))
	}
}

func TestRGCNBasisTrains(t *testing.T) {
	g := testGraph()
	gc := NewGraphCtx(g)
	rng := tensor.NewRNG(37)
	l := NewRGCNBasisLayer(rng, 3, 2, 4, 3)
	x := testInput(7, 4, 38)
	labels := []int32{0, 1, 2, 0, 1, 2, 0}
	mask := []int32{0, 1, 2, 3, 4, 5, 6}
	opt := NewAdam(0.02, l.Params())
	var first, last float64
	for it := 0; it < 40; it++ {
		opt.ZeroGrads()
		out := l.Forward(gc, x)
		grad := tensor.New(out.Shape()...)
		loss := tensor.CrossEntropy(out, labels, mask, grad)
		l.Backward(gc, grad)
		opt.Step()
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("basis RGCN did not learn: %.4f → %.4f", first, last)
	}
}
