package nn

import (
	"testing"

	"wisegraph/internal/graph/gen"
	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// BenchmarkTrainStep measures one steady-state full forward/backward/
// update iteration on a power-law graph at the paper's hidden dimension
// (256). Allocation counts here are the headline number for the buffer-
// pooling work: steady-state training should approach zero allocations
// per iteration. Numbers recorded in EXPERIMENTS.md.
func BenchmarkTrainStep(b *testing.B) {
	old := benchSetWorkers(4)
	b.Cleanup(func() { benchSetWorkers(old) })
	res := gen.Generate(gen.Config{
		NumVertices: 2000, NumEdges: 30000,
		Kind: gen.PowerLaw, Skew: 1.0,
		NumBlocks: 7, Homophily: 0.9, Seed: 21,
	})
	g := res.Graph
	gc := NewGraphCtx(g)
	rng := tensor.NewRNG(33)
	x := tensor.Uniform(tensor.New(g.NumVertices, 64), rng, -1, 1)
	labels := make([]int32, g.NumVertices)
	for i := range labels {
		labels[i] = res.Block[i]
	}
	mask := make([]int32, g.NumVertices)
	for i := range mask {
		mask[i] = int32(i)
	}
	for _, kind := range []ModelKind{GCN, SAGE} {
		b.Run(kind.String(), func(b *testing.B) {
			m, err := NewModel(Config{
				Kind: kind, InDim: 64, Hidden: 256, OutDim: 7, Layers: 3, Seed: 5,
			})
			if err != nil {
				b.Fatal(err)
			}
			opt := NewAdam(1e-3, m.Params())
			m.TrainStep(gc, x, labels, mask, opt) // warm caches
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.TrainStep(gc, x, labels, mask, opt)
			}
		})
	}
}

func benchSetWorkers(n int) int {
	return parallel.SetMaxWorkers(n)
}
