package nn

import (
	"wisegraph/internal/core"
	"wisegraph/internal/dfg"
)

// IndexAttrs returns the edge attributes a model's indexing operations
// consume — the key attributes WiseGraph identifies from the DFG (paper
// §4.1) and feeds into graph partition plan generation.
func (k ModelKind) IndexAttrs() []core.Attr {
	switch k {
	case RGCN:
		return []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType}
	default:
		return []core.Attr{core.AttrSrcID, core.AttrDstID}
	}
}

// LayerDFG builds the symbolic data-flow graph of one conv layer, the
// input to DFG transformation and the cost model. numV/numTypes size the
// fixed inputs; in/out are feature dimensions.
//
// Per-model notes:
//   - GCN is written transform-then-aggregate (Linear already per-vertex),
//     so operation partition finds little to improve — matching Figure 16d.
//   - SAGE is written per-edge (Linear after the src gather) so the
//     indexing-swapping rule can hoist the Linear to unique sources —
//     the duplication the paper removes on PA-S (Figure 17b).
//   - RGCN is Equation (1) verbatim: the BMM over per-edge (h[src],
//     W[type]) pairs that unique extraction + Index-2D rewrites into an
//     outer product (Figure 9).
//   - GAT models the attention projections; its per-edge softmax and
//     weighting are priced by the executors, not the symbolic DFG.
//   - SAGE-LSTM models only the data movement: its recurrent cell is
//     sequential per destination, which is exactly why the paper finds
//     operation partition contributes little for LSTM (Figure 16c) while
//     graph partition (degree batching) contributes a lot.
func LayerDFG(k ModelKind, numV, numTypes, in, out int) *dfg.Graph {
	g := &dfg.Graph{}
	edges := dfg.Card{Kind: dfg.CardEdges}
	dsts := dfg.Card{Kind: dfg.CardUniq, Attr: core.AttrDstID}
	switch k {
	case GCN:
		h := g.Input("H", numV, in)
		w := g.Input("W", in, out)
		xw := g.Linear(h, w)
		xs := g.Index(xw, "src-id", edges)
		o := g.IndexAdd(xs, "dst-id", "num-dst", dsts)
		g.SetOutput(o)
	case SAGE:
		h := g.Input("H", numV, in)
		w := g.Input("Wneigh", in, out)
		hs := g.Index(h, "src-id", edges)
		msg := g.Linear(hs, w)
		agg := g.IndexAdd(msg, "dst-id", "num-dst", dsts)
		g.SetOutput(agg)
	case SAGELSTM:
		h := g.Input("H", numV, in)
		hs := g.Index(h, "src-id", edges)
		agg := g.IndexAdd(hs, "dst-id", "num-dst", dsts)
		g.SetOutput(agg)
	case GAT:
		h := g.Input("H", numV, in)
		w := g.Input("W", in, out)
		al := g.Input("aL", out, 1)
		ar := g.Input("aR", out, 1)
		z := g.Linear(h, w)
		zs := g.Index(z, "src-id", edges)
		zd := g.Index(z, "dst-id", edges)
		pl := g.Linear(zs, al)
		pr := g.Linear(zd, ar)
		s := g.Activation(dfg.OpLeakyReLU, g.EWAdd(pl, pr), 0.2)
		zs2 := g.Index(z, "src-id", edges)
		o := g.IndexAdd(zs2, "dst-id", "num-dst", dsts)
		g.SetOutput(o)
		g.ExtraOutputs = []*dfg.Node{s}
	case RGCN:
		h := g.Input("H", numV, in)
		w := g.Input("W", numTypes, in, out)
		hs := g.Index(h, "src-id", edges)
		wt := g.Index(w, "edge-type", edges)
		msg := g.BMM(hs, wt)
		o := g.IndexAdd(msg, "dst-id", "num-dst", dsts)
		g.SetOutput(o)
	}
	return g
}

// AttrOfKeys maps the index keys used by LayerDFG to edge attributes, the
// binding DFG transformations need.
func AttrOfKeys() map[string]core.Attr {
	return map[string]core.Attr{
		"src-id":    core.AttrSrcID,
		"dst-id":    core.AttrDstID,
		"edge-type": core.AttrEdgeType,
	}
}
