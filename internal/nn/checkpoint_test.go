package nn

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func ckptModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(Config{Kind: SAGE, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Dropout: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// saveV1 writes a checkpoint in the legacy v1 layout (no embedded config)
// so the compatibility path stays covered after the v2 switch.
func saveV1(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	params := m.Params()
	if err := binary.Write(&buf, binary.LittleEndian, []uint32{ckptMagic, ckptVersionV1, uint32(len(params))}); err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		name := []byte(p.Name)
		binary.Write(&buf, binary.LittleEndian, uint32(len(name)))
		buf.Write(name)
		shape := p.Value.Shape()
		binary.Write(&buf, binary.LittleEndian, uint32(len(shape)))
		for _, d := range shape {
			binary.Write(&buf, binary.LittleEndian, uint32(d))
		}
		binary.Write(&buf, binary.LittleEndian, p.Value.Data())
	}
	return buf.Bytes()
}

func TestCheckpointV2EmbedsConfig(t *testing.T) {
	m := ckptModel(t)
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cfg, err := ReadCheckpointConfig(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cfg != m.Cfg {
		t.Fatalf("embedded config %+v, want %+v", cfg, m.Cfg)
	}
}

func TestLoadModelFromCheckpointAlone(t *testing.T) {
	m := ckptModel(t)
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModelFromCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cfg != m.Cfg {
		t.Fatalf("reconstructed config %+v, want %+v", m2.Cfg, m.Cfg)
	}
	g := testGraph()
	gc := NewGraphCtx(g)
	x := testInput(7, 4, 11)
	want := m.Forward(gc, x).Clone()
	got := m2.Forward(gc, x)
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("reconstructed model differs at %d", i)
		}
	}
}

func TestLoadCheckpointV1Compat(t *testing.T) {
	m := ckptModel(t)
	v1 := saveV1(t, m)
	m2, err := NewModel(Config{Kind: SAGE, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadCheckpoint(bytes.NewReader(v1)); err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Value.Data() {
			if p1[i].Value.Data()[j] != p2[i].Value.Data()[j] {
				t.Fatalf("param %d differs after v1 load", i)
			}
		}
	}
	if _, err := ReadCheckpointConfig(bytes.NewReader(v1)); err == nil {
		t.Fatal("ReadCheckpointConfig must reject v1 (no embedded config)")
	}
	if _, err := LoadModelFromCheckpoint(bytes.NewReader(v1)); err == nil {
		t.Fatal("LoadModelFromCheckpoint must reject v1")
	}
}

func TestLoadCheckpointConfigMismatch(t *testing.T) {
	m := ckptModel(t)
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := NewModel(Config{Kind: GCN, InDim: 4, Hidden: 6, OutDim: 3, Layers: 2, Seed: 1})
	if err := other.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("kind mismatch must be rejected")
	}
	wider, _ := NewModel(Config{Kind: SAGE, InDim: 4, Hidden: 8, OutDim: 3, Layers: 2, Seed: 1})
	if err := wider.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("hidden-dim mismatch must be rejected")
	}
}

// TestCheckpointTruncatedAndCorrupt feeds every strict prefix of a valid
// checkpoint, plus single-byte corruptions across the header and config
// region, to all three loaders: they must return an error (never panic,
// never spin, never succeed on a strict prefix).
func TestCheckpointTruncatedAndCorrupt(t *testing.T) {
	m := ckptModel(t)
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	fresh := func() *Model { return ckptModel(t) }
	loaders := map[string]func(data []byte) error{
		"LoadCheckpoint": func(data []byte) error {
			return fresh().LoadCheckpoint(bytes.NewReader(data))
		},
		"LoadModelFromCheckpoint": func(data []byte) error {
			_, err := LoadModelFromCheckpoint(bytes.NewReader(data))
			return err
		},
	}

	// Truncation: every prefix length must error out cleanly.
	for name, load := range loaders {
		for n := 0; n < len(full); n++ {
			if err := load(full[:n]); err == nil {
				t.Fatalf("%s accepted a %d/%d-byte prefix", name, n, len(full))
			}
		}
		if err := load(full); err != nil {
			t.Fatalf("%s rejected the intact checkpoint: %v", name, err)
		}
	}

	// Header/config corruption: flipping any single byte in the structural
	// region (before the float payloads) must be detected. Payload bytes
	// are only checked for non-finite values, so restrict to the front.
	structural := 2*4 + 7*4 + 8 + 8 + 4 // magic+version, config ints, dropout, seed, param count
	for off := 0; off < structural; off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xff
		if err := fresh().LoadCheckpoint(bytes.NewReader(mut)); err == nil {
			// LoadCheckpoint restores parameters into an existing model, so
			// Heads/NumTypes/Dropout/Seed (bytes 28..51) are genuinely
			// don't-care for it; every other structural byte must trip a
			// check (magic, version, kind, dims, layer and param counts).
			if off < 28 || off >= 52 {
				t.Fatalf("byte %d corruption not detected by LoadCheckpoint", off)
			}
		}
	}

	// Non-finite payload corruption: write a NaN into the first parameter.
	mut := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(mut[len(mut)-4:], 0x7fc00000) // NaN
	if err := fresh().LoadCheckpoint(bytes.NewReader(mut)); err == nil {
		t.Fatal("NaN payload not detected")
	}

	// Unknown version.
	mut = append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(mut[4:8], 99)
	if err := fresh().LoadCheckpoint(bytes.NewReader(mut)); err == nil {
		t.Fatal("unknown version not detected")
	}

	// Reader that errors mid-stream.
	if err := fresh().LoadCheckpoint(io.LimitReader(bytes.NewReader(full), 10)); err == nil {
		t.Fatal("short reader not detected")
	}
}

func TestCopyParamsFrom(t *testing.T) {
	m := ckptModel(t)
	rep := ckptModel(t)
	// disturb the replica so the copy is observable
	rep.Params()[0].Value.Data()[0] = 1234
	if err := rep.CopyParamsFrom(m); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Params(), rep.Params()
	for i := range p1 {
		for j := range p1[i].Value.Data() {
			if p1[i].Value.Data()[j] != p2[i].Value.Data()[j] {
				t.Fatalf("param %d differs after copy", i)
			}
		}
	}
	other, _ := NewModel(Config{Kind: SAGE, InDim: 4, Hidden: 8, OutDim: 3, Layers: 2, Seed: 1})
	if err := other.CopyParamsFrom(m); err == nil {
		t.Fatal("architecture mismatch must be rejected")
	}
}
