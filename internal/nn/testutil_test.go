package nn

import (
	"wisegraph/internal/core"
	"wisegraph/internal/dfg"
)

// statsFor builds TaskStats for tests.
func statsFor(edges, uniqSrc, uniqDst, uniqType int) dfg.TaskStats {
	return dfg.TaskStats{Edges: edges, Uniq: map[core.Attr]int{
		core.AttrSrcID:    uniqSrc,
		core.AttrDstID:    uniqDst,
		core.AttrEdgeType: uniqType,
	}}
}
