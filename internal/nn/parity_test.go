package nn

import (
	"math"
	"testing"

	"wisegraph/internal/graph/gen"
	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// Parity tests for the pooled/binned execution paths: sticky buffers,
// cached bins and the persistent worker pool must not change a single bit
// of the training computation relative to the sequential reference.

func parityWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := parallel.SetMaxWorkers(n)
	defer parallel.SetMaxWorkers(old)
	fn()
}

// powerLawGraphCtx builds a hub-skewed test graph shaped like the
// benchmark workload (many edges landing on few destinations).
func powerLawGraphCtx(v, e int, seed uint64) (*GraphCtx, *gen.Result) {
	res := gen.Generate(gen.Config{
		NumVertices: v, NumEdges: e,
		Kind: gen.PowerLaw, Skew: 1.0,
		NumBlocks: 5, Homophily: 0.8, Seed: seed,
	})
	return NewGraphCtx(res.Graph), res
}

func TestEdgeSpMMBinsBitwiseEqualSeq(t *testing.T) {
	gc, _ := powerLawGraphCtx(300, 4000, 7)
	rng := tensor.NewRNG(71)
	x := tensor.Uniform(tensor.New(gc.NumVertices(), 19), rng, -1, 1)

	// sequential reference: plain accumulation in edge order
	want := tensor.New(gc.NumVertices(), 19)
	rs := 19
	for e := range gc.SrcByDst {
		d := int(gc.DstByDst[e])
		xo := x.Data()[int(gc.SrcByDst[e])*rs : (int(gc.SrcByDst[e])+1)*rs]
		oo := want.Data()[d*rs : (d+1)*rs]
		w := gc.InvDeg[e]
		for j, v := range xo {
			oo[j] += w * v
		}
	}
	for _, workers := range []int{2, 8} {
		parityWorkers(t, workers, func() {
			got := tensor.New(gc.NumVertices(), 19)
			EdgeSpMMBins(got, x, gc.SrcByDst, gc.DstByDst, gc.InvDeg, gc.BinsByDst())
			for i, v := range got.Data() {
				if v != want.Data()[i] {
					t.Fatalf("workers=%d: binned[%d]=%v, seq=%v", workers, i, v, want.Data()[i])
				}
			}
			// on-the-fly binning (nil bins) must agree as well
			got2 := tensor.New(gc.NumVertices(), 19)
			EdgeSpMMBins(got2, x, gc.SrcByDst, gc.DstByDst, gc.InvDeg, nil)
			for i, v := range got2.Data() {
				if v != want.Data()[i] {
					t.Fatalf("workers=%d: unbinned[%d]=%v, seq=%v", workers, i, v, want.Data()[i])
				}
			}
		})
	}
}

// TestTrainStepBitwiseAcrossWorkerCounts trains the same model twice —
// once sequentially, once with the worker pool, binned scatter and blocked
// matmul active — and requires bit-identical losses and logits. Buffer
// reuse across the three iterations is exercised in both runs.
func TestTrainStepBitwiseAcrossWorkerCounts(t *testing.T) {
	gc, res := powerLawGraphCtx(400, 6000, 9)
	rng := tensor.NewRNG(72)
	x := tensor.Uniform(tensor.New(gc.NumVertices(), 23), rng, -1, 1)
	labels := make([]int32, gc.NumVertices())
	copy(labels, res.Block)
	mask := make([]int32, gc.NumVertices())
	for i := range mask {
		mask[i] = int32(i)
	}

	run := func(workers int, kind ModelKind) ([]float64, *tensor.Tensor) {
		var losses []float64
		var logits *tensor.Tensor
		parityWorkers(t, workers, func() {
			m, err := NewModel(Config{
				Kind: kind, InDim: 23, Hidden: 48, OutDim: 5, Layers: 3,
				Dropout: 0.3, Seed: 13,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := NewAdam(1e-2, m.Params())
			for it := 0; it < 3; it++ {
				losses = append(losses, m.TrainStep(gc, x, labels, mask, opt))
			}
			out := m.Forward(gc, x)
			logits = tensor.New(out.Shape()...)
			logits.CopyFrom(out)
		})
		return losses, logits
	}

	for _, kind := range []ModelKind{GCN, SAGE} {
		seqLoss, seqLogits := run(1, kind)
		parLoss, parLogits := run(8, kind)
		for i := range seqLoss {
			if seqLoss[i] != parLoss[i] {
				t.Fatalf("%v iter %d: loss %v (seq) vs %v (parallel)", kind, i, seqLoss[i], parLoss[i])
			}
		}
		for i, v := range parLogits.Data() {
			if v != seqLogits.Data()[i] {
				t.Fatalf("%v: logit[%d] %v (seq) vs %v (parallel)", kind, i, seqLogits.Data()[i], v)
			}
		}
		if math.IsNaN(seqLoss[len(seqLoss)-1]) {
			t.Fatalf("%v: training diverged", kind)
		}
	}
}

// TestForwardStableUnderBufferReuse runs the same forward pass repeatedly
// on one model instance: with sticky buffers, any missing Zero() or stale
// aliasing would change the result between calls.
func TestForwardStableUnderBufferReuse(t *testing.T) {
	gc, _ := powerLawGraphCtx(200, 2500, 11)
	rng := tensor.NewRNG(73)
	x := tensor.Uniform(tensor.New(gc.NumVertices(), 16), rng, -1, 1)
	resT := gen.Generate(gen.Config{
		NumVertices: 200, NumEdges: 2500,
		Kind: gen.PowerLaw, Skew: 1.0, NumTypes: 3, Seed: 11,
	})
	gcTyped := NewGraphCtx(resT.Graph)
	for _, kind := range []ModelKind{GCN, SAGE, GAT, SAGELSTM, RGCN} {
		gc := gc
		if kind == RGCN {
			gc = gcTyped
		}
		m, err := NewModel(Config{
			Kind: kind, InDim: 16, Hidden: 32, OutDim: 4, Layers: 2, Seed: 3,
			NumTypes: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		parityWorkers(t, 4, func() {
			first := tensor.New(gc.NumVertices(), 4)
			first.CopyFrom(m.Forward(gc, x))
			for rep := 0; rep < 3; rep++ {
				out := m.Forward(gc, x)
				for i, v := range out.Data() {
					if v != first.Data()[i] {
						t.Fatalf("%v: forward drifted at rep %d, elem %d: %v vs %v",
							kind, rep, i, v, first.Data()[i])
					}
				}
			}
		})
	}
}
