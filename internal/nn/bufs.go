package nn

import "wisegraph/internal/tensor"

// Sticky-buffer helpers. Layers keep their intermediates (XW, aggregates,
// gradients) as fields and re-request them every iteration through these
// helpers: when the shape is unchanged — always, in steady-state training —
// the same tensor comes back, so the hot loop allocates nothing. On a shape
// change (e.g. a differently sized sampled subgraph) the old buffer is
// recycled into the tensor pool and a pooled replacement is drawn.
//
// Reused buffers keep last iteration's values: callers that accumulate
// (EdgeSpMM, scatter loops) must Zero() explicitly; callers that overwrite
// (MatMul, Transpose2D, ReLU) need not.

// buf2 returns t when it already has shape [m, n], else a pooled tensor of
// that shape (recycling t).
func buf2(t *tensor.Tensor, m, n int) *tensor.Tensor {
	if t != nil && t.Dims() == 2 && t.Dim(0) == m && t.Dim(1) == n {
		return t
	}
	tensor.Put(t)
	return tensor.Get(m, n)
}

// bufLike returns t when it already has ref's shape, else a pooled tensor
// of that shape (recycling t).
func bufLike(t, ref *tensor.Tensor) *tensor.Tensor {
	if t != nil && t.SameShape(ref) {
		return t
	}
	tensor.Put(t)
	return tensor.Get(ref.Shape()...)
}
