package nn

import (
	"math"

	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// SAGELSTMLayer implements GraphSAGE with an LSTM aggregator (the paper's
// LSTM-class neural operation): for every destination vertex, an LSTM
// consumes its in-neighbors' features in edge order and the final hidden
// state is combined with the self feature:
//
//	h'[v] = h[v]·Wself + LSTM(h[src_1..k])·Wneigh + b
type SAGELSTMLayer struct {
	WSelf, WNeigh, B *Param
	// LSTM cell parameters: gates packed [i f o g].
	Wx *Param // [in, 4*hidden]
	Wh *Param // [hidden, 4*hidden]
	Bg *Param // [4*hidden]

	hidden int

	// caches for BPTT, per CSR edge slot (sticky buffers, see bufs.go)
	x      *tensor.Tensor
	gates  *tensor.Tensor // [E, 4*hidden] post-activation gate values
	cells  *tensor.Tensor // [E, hidden] c_t
	hPrev  *tensor.Tensor // [E, hidden] h_{t-1} entering each step
	cPrev  *tensor.Tensor // [E, hidden] c_{t-1}
	hFinal *tensor.Tensor // [V, hidden]

	out, xT, hT, dx, dHFinal *tensor.Tensor
}

// NewSAGELSTMLayer allocates a layer with LSTM hidden size = out.
func NewSAGELSTMLayer(rng *tensor.RNG, in, out int) *SAGELSTMLayer {
	return &SAGELSTMLayer{
		WSelf:  NewParam("lstm.Wself", rng, in, out),
		WNeigh: NewParam("lstm.Wneigh", rng, out, out),
		B:      NewZeroParam("lstm.b", out),
		Wx:     NewParam("lstm.Wx", rng, in, 4*out),
		Wh:     NewParam("lstm.Wh", rng, out, 4*out),
		Bg:     NewZeroParam("lstm.bg", 4*out),
		hidden: out,
	}
}

// Params implements Layer.
func (l *SAGELSTMLayer) Params() []*Param {
	return []*Param{l.WSelf, l.WNeigh, l.B, l.Wx, l.Wh, l.Bg}
}

// InDim implements Layer.
func (l *SAGELSTMLayer) InDim() int { return l.WSelf.Value.Dim(0) }

// OutDim implements Layer.
func (l *SAGELSTMLayer) OutDim() int { return l.WSelf.Value.Dim(1) }

// Forward implements Layer. Vertices run in parallel; each vertex's
// neighbor sequence runs sequentially (the data dependence the paper's
// Figure 18b batching works around).
func (l *SAGELSTMLayer) Forward(gc *GraphCtx, x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	v := gc.NumVertices()
	e := gc.NumEdges()
	hd := l.hidden
	// Every edge slot is visited by exactly one vertex segment, so the
	// per-slot caches are fully overwritten; only hFinal needs zeroing
	// (vertices without in-edges keep h = 0).
	l.gates = buf2(l.gates, e, 4*hd)
	l.cells = buf2(l.cells, e, hd)
	l.hPrev = buf2(l.hPrev, e, hd)
	l.cPrev = buf2(l.cPrev, e, hd)
	l.hFinal = buf2(l.hFinal, v, hd)
	l.hFinal.Zero()

	parallel.For(v, 4, func(vi int) {
		lo, hi := int(gc.CSR.RowPtr[vi]), int(gc.CSR.RowPtr[vi+1])
		if lo >= hi {
			return
		}
		h := make([]float32, hd)
		c := make([]float32, hd)
		z := make([]float32, 4*hd)
		for s := lo; s < hi; s++ {
			copy(l.hPrev.Row(s), h)
			copy(l.cPrev.Row(s), c)
			xr := x.Row(int(gc.SrcByDst[s]))
			// z = x·Wx + h·Wh + bg
			copy(z, l.Bg.Value.Data())
			mulAccVec(z, xr, l.Wx.Value)
			mulAccVec(z, h, l.Wh.Value)
			g := l.gates.Row(s)
			for j := 0; j < hd; j++ {
				i := sigmoid32(z[j])
				f := sigmoid32(z[hd+j])
				o := sigmoid32(z[2*hd+j])
				gg := float32(math.Tanh(float64(z[3*hd+j])))
				g[j], g[hd+j], g[2*hd+j], g[3*hd+j] = i, f, o, gg
				c[j] = f*c[j] + i*gg
				h[j] = o * float32(math.Tanh(float64(c[j])))
			}
			copy(l.cells.Row(s), c)
		}
		copy(l.hFinal.Row(vi), h)
	})

	l.out = tensor.MatMul(buf2(l.out, x.Dim(0), l.OutDim()), x, l.WSelf.Value)
	tensor.MatMulAcc(l.out, l.hFinal, l.WNeigh.Value)
	tensor.AddBias(l.out, l.B.Value)
	return l.out
}

// mulAccVec computes z += x·W for row vector x and 2-D W.
func mulAccVec(z, x []float32, w *tensor.Tensor) {
	n := w.Dim(1)
	for p, xv := range x {
		if xv == 0 {
			continue
		}
		wr := w.Data()[p*n : (p+1)*n]
		for j, wv := range wr {
			z[j] += xv * wv
		}
	}
}

// Backward implements Layer (full BPTT through every vertex's neighbor
// sequence). It runs single-threaded for deterministic weight-gradient
// accumulation; the accuracy experiments train the other models, so LSTM
// backward throughput is not on any measured path.
func (l *SAGELSTMLayer) Backward(gc *GraphCtx, dOut *tensor.Tensor) *tensor.Tensor {
	accumBiasGrad(l.B.Grad, dOut)
	l.xT = tensor.Transpose2D(buf2(l.xT, l.x.Dim(1), l.x.Dim(0)), l.x)
	tensor.MatMulAcc(l.WSelf.Grad, l.xT, dOut)
	l.hT = tensor.Transpose2D(buf2(l.hT, l.hFinal.Dim(1), l.hFinal.Dim(0)), l.hFinal)
	tensor.MatMulAcc(l.WNeigh.Grad, l.hT, dOut)
	l.dx = tensor.MatMulTransB(buf2(l.dx, dOut.Dim(0), l.WSelf.Value.Dim(0)), dOut, l.WSelf.Value)
	dx := l.dx
	l.dHFinal = tensor.MatMulTransB(buf2(l.dHFinal, dOut.Dim(0), l.WNeigh.Value.Dim(0)), dOut, l.WNeigh.Value)
	dHFinal := l.dHFinal

	hd := l.hidden
	dz := make([]float32, 4*hd)
	dh := make([]float32, hd)
	dc := make([]float32, hd)
	for vi := 0; vi < gc.NumVertices(); vi++ {
		lo, hi := int(gc.CSR.RowPtr[vi]), int(gc.CSR.RowPtr[vi+1])
		if lo >= hi {
			continue
		}
		copy(dh, dHFinal.Row(vi))
		for j := range dc {
			dc[j] = 0
		}
		for s := hi - 1; s >= lo; s-- {
			g := l.gates.Row(s)
			c := l.cells.Row(s)
			cp := l.cPrev.Row(s)
			hp := l.hPrev.Row(s)
			for j := 0; j < hd; j++ {
				i, f, o, gg := g[j], g[hd+j], g[2*hd+j], g[3*hd+j]
				tc := float32(math.Tanh(float64(c[j])))
				do := dh[j] * tc
				dcj := dc[j] + dh[j]*o*(1-tc*tc)
				di := dcj * gg
				dgg := dcj * i
				df := dcj * cp[j]
				dc[j] = dcj * f
				dz[j] = di * i * (1 - i)
				dz[hd+j] = df * f * (1 - f)
				dz[2*hd+j] = do * o * (1 - o)
				dz[3*hd+j] = dgg * (1 - gg*gg)
			}
			// dWx += xᵀ·dz ; dWh += hprevᵀ·dz ; dbg += dz
			src := int(gc.SrcByDst[s])
			xr := l.x.Row(src)
			outerAcc(l.Wx.Grad, xr, dz)
			outerAcc(l.Wh.Grad, hp, dz)
			bg := l.Bg.Grad.Data()
			for j, v := range dz {
				bg[j] += v
			}
			// dx[src] += dz·Wxᵀ ; dh = dz·Whᵀ
			dxr := dx.Row(src)
			matTVecAcc(dxr, dz, l.Wx.Value)
			for j := range dh {
				dh[j] = 0
			}
			matTVecAcc(dh, dz, l.Wh.Value)
		}
	}
	return dx
}

// outerAcc accumulates g += aᵀ·b for row vectors a [m], b [n] into g [m,n].
func outerAcc(g *tensor.Tensor, a, b []float32) {
	n := len(b)
	gd := g.Data()
	for p, av := range a {
		if av == 0 {
			continue
		}
		row := gd[p*n : (p+1)*n]
		for j, bv := range b {
			row[j] += av * bv
		}
	}
}

// matTVecAcc accumulates out += v·Wᵀ for v [n] and W [m,n] into out [m].
func matTVecAcc(out, v []float32, w *tensor.Tensor) {
	n := w.Dim(1)
	wd := w.Data()
	for p := range out {
		row := wd[p*n : (p+1)*n]
		var s float32
		for j, x := range v {
			s += x * row[j]
		}
		out[p] += s
	}
}

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}
