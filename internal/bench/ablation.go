package bench

import (
	"fmt"

	"wisegraph/internal/core"
	"wisegraph/internal/dfg"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/opt"
	"wisegraph/internal/pattern"
)

var searchAttrs = []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree}

// Fig17 reproduces the duplication-aware DFG transformation ablation: the
// normalized execution split (indexing vs neural) of the original DFG and
// the transformed DFG, plus the neural-workload reduction.
func Fig17(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "DFG transformation: normalized time split and neural-work reduction",
		Header: []string{"dataset", "model", "base-idx%", "base-NN%", "opt-idx%", "opt-NN%", "NN-reduction%"},
	}
	h := cfg.hidden()
	for _, dsName := range []string{"AR", "PA-S"} {
		ds, err := cfg.loadDataset(dsName)
		if err != nil {
			return nil, err
		}
		for _, kind := range []nn.ModelKind{nn.RGCN, nn.GAT, nn.SAGE} {
			res := joint.Search(ds.Graph, kind, h, h, ds.Graph.NumTypes, joint.Options{Spec: spec()})
			pp := pattern.Analyze(res.Partition, searchAttrs)
			stats := pp.RegularStats()
			layer := nn.LayerDFG(kind, ds.Graph.NumVertices, ds.Graph.NumTypes, h, h)
			base := layer.Cost(stats)
			info := opt.Info{AttrOf: nn.AttrOfKeys(), Dup: map[string]bool{
				"src-id":    pp.Duplicated(core.AttrSrcID),
				"edge-type": pp.Duplicated(core.AttrEdgeType),
				"dst-id":    pp.Duplicated(core.AttrDstID),
			}}
			_, best := opt.SelectBest(opt.Transform(layer, info), stats)
			t.AddRow(dsName, kind.String(),
				f2(pctIdx(base)), f2(100-pctIdx(base)),
				f2(pctIdx(best)), f2(100-pctIdx(best)),
				f2(reduction(base.NeuralFLOPs, best.NeuralFLOPs)))
		}
	}
	t.Notes = append(t.Notes, "paper: RGCN on AR cuts neural work by 92.7%; SAGE has no duplication on AR but 78.5% on PA-S")
	return t, nil
}

func pctIdx(w dfg.Workload) float64 {
	// time proxy: bytes at 10 FLOP/B balance
	idx := 10 * w.IndexBytes
	tot := w.FLOPs + 10*w.Bytes
	if tot == 0 {
		return 0
	}
	return idx / tot * 100
}

func reduction(base, opt float64) float64 {
	if base == 0 {
		return 0
	}
	r := (1 - opt/base) * 100
	if r < 0 {
		return 0
	}
	return r
}

// Fig18 sweeps the batching factor K: RGCN with uniq(src-id)=K &
// uniq(edge-type)=1 and SAGE-LSTM with uniq(dst-id)=K &
// uniq(dst-degree)=min, reporting throughput (edges/second).
func Fig18(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig18",
		Title:  "throughput (M edges/s) vs batching factor K",
		Header: []string{"model", "K", "throughput"},
	}
	h := cfg.hidden()
	ks := []int{1, 4, 16, 32, 64, 128, 256, 1024}
	if cfg.Quick {
		ks = []int{1, 32, 256}
	}
	e := float64(ds.Graph.NumEdges())
	sweep := func(kind nn.ModelKind, mkPlan func(k int) core.GraphPlan, op kernels.Plan) {
		for _, k := range ks {
			gp := mkPlan(k)
			part := core.PartitionGraph(ds.Graph, gp, searchAttrs)
			sh := kernels.LayerShape{Kind: kind, F: h, Fp: h, Types: ds.Graph.NumTypes}
			thisOp := op
			if k == 1 {
				thisOp = kernels.Plan{} // a single-element batch is edge-by-edge
			}
			sched := joint.UniformSchedule(spec(), part, sh, thisOp)
			secs := joint.LayerTime(spec(), sh, ds.Graph.NumVertices, sched)
			t.AddRow(kind.String(), fmt.Sprintf("%d", k), f2(e/secs/1e6))
		}
		// K = INF: whole graph in one task (tensor-centric equivalent)
		part := core.PartitionGraph(ds.Graph, core.WholeGraph(), searchAttrs)
		sh := kernels.LayerShape{Kind: kind, F: h, Fp: h, Types: ds.Graph.NumTypes}
		if kernels.ValidPlanFor(kind, core.WholeGraph()) {
			sched := joint.UniformSchedule(spec(), part, sh, op)
			secs := joint.LayerTime(spec(), sh, ds.Graph.NumVertices, sched)
			t.AddRow(kind.String(), "INF", f2(e/secs/1e6))
		}
	}
	sweep(nn.RGCN, func(k int) core.GraphPlan {
		return core.GraphPlan{Name: fmt.Sprintf("src-%d-type-1", k), Restrictions: []core.Restriction{
			{Attr: core.AttrSrcID, Kind: core.Exact, Limit: k},
			{Attr: core.AttrEdgeType, Kind: core.Exact, Limit: 1},
		}}
	}, kernels.Plan{Batched: true, Dedup: true})
	sweep(nn.SAGELSTM, func(k int) core.GraphPlan {
		return core.GraphPlan{Name: fmt.Sprintf("dst-%d-degmin", k), Restrictions: []core.Restriction{
			{Attr: core.AttrDstID, Kind: core.Exact, Limit: k},
			{Attr: core.AttrDstDegree, Kind: core.Min},
		}}
	}, kernels.Plan{Batched: true})
	t.Notes = append(t.Notes, "paper: batching improves RGCN 4.33x over the better of non-batched/tensor-centric; LSTM 6.10x")
	return t, nil
}

// Fig19 compares uniform vs differentiated outlier execution per model
// on AR: the outlier share of time and the reduction from differentiated
// scheduling.
func Fig19(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig19",
		Title:  "differentiated outlier execution (per-layer makespan, simulated µs)",
		Header: []string{"model", "plan", "outliers", "uniform", "differentiated", "reduction%"},
	}
	h := cfg.hidden()
	sp := spec()
	for _, kind := range evalModels() {
		res := joint.Search(ds.Graph, kind, h, h, ds.Graph.NumTypes, joint.Options{Spec: sp})
		part := res.Partition
		cls := joint.Classify(part)
		sh := kernels.LayerShape{Kind: kind, F: h, Fp: h, Types: ds.Graph.NumTypes}
		uni := joint.UniformSchedule(sp, part, sh, res.OpPlan).Makespan(sp.NumUnits)
		best, _ := joint.BestSchedule(sp, part, sh, res.OpPlan, cls)
		diff := best.Makespan(sp.NumUnits)
		t.AddRow(kind.String(), res.GraphPlan.Name,
			fmt.Sprintf("%d/%d", cls.Outliers(), part.NumTasks()),
			f2(uni*1e6), f2(diff*1e6), f2(reduction(uni, diff)))
	}
	t.Notes = append(t.Notes, "paper: outliers take 52.9% of time on average; differentiated execution cuts total time by 33.1%")
	return t, nil
}
