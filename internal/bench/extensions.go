package bench

import (
	"fmt"
	"runtime"
	"time"

	"wisegraph/internal/core"
	"wisegraph/internal/dist"
	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/pattern"
	"wisegraph/internal/tensor"
	"wisegraph/internal/train"
)

// ExtReorder demonstrates the paper's §4.3 claim that Metis-style
// clustering reorders and gTask partitioning compose: reorder first for
// locality, then partition. It reports per-task duplication and modeled
// time before and after two reorders (BFS clustering and balanced label
// propagation).
func ExtReorder(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-reorder",
		Title:  "EXTENSION — reorder + gTask partition composition (§4.3)",
		Header: []string{"ordering", "plan", "tasks", "med-uniq-src", "dup-src%", "layer-ms"},
	}
	h := cfg.hidden()
	sp := spec()
	plan := core.GraphPlan{Name: "2d-64", Restrictions: []core.Restriction{
		{Attr: core.AttrDstID, Kind: core.Exact, Limit: 64},
		{Attr: core.AttrSrcID, Kind: core.Exact, Limit: 64},
	}}
	sh := kernels.LayerShape{Kind: nn.RGCN, F: h, Fp: h, Types: ds.Graph.NumTypes}
	op := kernels.Plan{Batched: true, Dedup: true}
	eval := func(label string, g *graph.Graph) {
		part := core.PartitionGraph(g, plan, searchAttrs)
		pp := pattern.Analyze(part, searchAttrs)
		secs := joint.LayerTime(sp, sh, g.NumVertices, joint.UniformSchedule(sp, part, sh, op))
		t.AddRow(label, plan.Name, fmt.Sprintf("%d", part.NumTasks()),
			fmt.Sprintf("%d", pp.MedianUniq[core.AttrSrcID]),
			f2(pp.DupFraction[core.AttrSrcID]*100), ms(secs))
	}
	eval("original", ds.Graph)

	bfs := ds.Graph.Clone()
	bfs.RelabelVertices(graph.ClusterReorder(bfs))
	eval("bfs-cluster", bfs)

	lp := ds.Graph.Clone()
	blocks := graph.LabelPropagationBlocks(lp, 64, 8, cfg.Seed)
	lp.RelabelVertices(graph.BlocksToRelabel(blocks))
	eval("label-prop", lp)

	t.Notes = append(t.Notes, "reordering clusters connected vertices into nearby ids, so id-restricted gTasks capture more shared sources (higher duplication ⇒ more dedup)")
	return t, nil
}

// ExtEngine runs the real distributed engine and cross-checks the
// measured communication volumes against the analytic placement model —
// plus the label-propagation partition's measured reduction.
func ExtEngine(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("PA")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-engine",
		Title:  "EXTENSION — executable multi-device engine: measured comm volume (MB)",
		Header: []string{"partition", "strategy", "measured", "model", "match"},
	}
	g := ds.Graph
	f, fp := 32, 16
	rng := tensor.NewRNG(cfg.Seed + 41)
	layer := nn.NewGCNLayer(rng, f, fp)
	x := tensor.New(g.NumVertices, f)
	tensor.Uniform(x, rng, -1, 1)

	run := func(label string, gg *graph.Graph) error {
		e := dist.NewEngine(dist.NewCluster(4), gg)
		gs := dist.Analyze(gg, 4)
		cases := []struct {
			strat dist.Strategy
			model float64
		}{
			{dist.DPPre, float64(gs.UniqRemoteSrc) * float64(f) * 4},
			{dist.DPPost, float64(gs.UniqRemoteSrc) * float64(fp) * 4},
		}
		for _, c := range cases {
			e.ResetComm()
			if _, err := e.GCNForward(layer, e.Shard(x), c.strat); err != nil {
				return err
			}
			got := e.CommBytes()
			match := "OK"
			if diff := got - c.model; diff > 1 || diff < -1 {
				match = "MISMATCH"
			}
			t.AddRow(label, c.strat.String(), f2(got/1e6), f2(c.model/1e6), match)
		}
		// tensor parallel
		e.ResetComm()
		e.GCNForwardTP(layer, e.ShardColumns(x))
		tpModel := 3.0 * float64(g.NumVertices) * float64(fp) * 4
		got := e.CommBytes()
		match := "OK"
		if diff := got - tpModel; diff > 1 || diff < -1 {
			match = "MISMATCH"
		}
		t.AddRow(label, "TP", f2(got/1e6), f2(tpModel/1e6), match)
		return nil
	}
	// The replica's planted communities are contiguous id ranges, so the
	// contiguous partition is already community-aligned. Shuffle vertex
	// ids first (as real datasets arrive) to give the partitioner
	// something to recover.
	shuffled := g.Clone()
	perm := make([]int32, g.NumVertices)
	for i := range perm {
		perm[i] = int32(i)
	}
	srng := tensor.NewRNG(cfg.Seed + 43)
	for i := len(perm) - 1; i > 0; i-- {
		j := srng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	shuffled.RelabelVertices(perm)
	if err := run("shuffled", shuffled); err != nil {
		return nil, err
	}
	lp := shuffled.Clone()
	blocks := graph.LabelPropagationBlocks(lp, 4, 8, cfg.Seed)
	lp.RelabelVertices(graph.BlocksToRelabel(blocks))
	if err := run("shuffled+label-prop", lp); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "label propagation recovers the hidden communities and cuts the data-parallel exchange volume (the ROC effect, measured on real execution rather than modeled)")
	return t, nil
}

// ExtPipeline measures the wall-clock effect of overlapping sampling +
// partitioning with training across CPU workers (the executable version
// of Figure 21b).
func ExtPipeline(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("PA")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-pipeline",
		Title:  "EXTENSION — asynchronous sampling pipeline (wall-clock)",
		Header: []string{"mode", "iters", "wall", "per-iter"},
	}
	iters := 30
	if cfg.Quick {
		iters = 10
	}
	mk := func(seed uint64) *train.Sampled {
		s, _ := train.NewSampled(ds, nn.Config{Kind: nn.SAGE, Hidden: cfg.hidden(), Layers: 2, Seed: seed},
			0.01, []int{10, 10}, 128, seed)
		return s
	}
	sp := spec()
	// serial: sample+partition inline with training
	serial := mk(cfg.Seed + 1)
	plan := serial.TunePlans(sp, 1)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		serial.Iteration()
		sub := serial.NextBatch()
		train.ReusePlan(plan, sub.Graph)
	}
	serialWall := time.Since(t0)
	t.AddRow("serial", fmt.Sprintf("%d", iters), serialWall.Round(time.Millisecond).String(),
		(serialWall / time.Duration(iters)).Round(time.Microsecond).String())
	// pipelined: 4 CPU workers prepare batches concurrently
	pipe := mk(cfg.Seed + 1)
	t1 := time.Now()
	pipe.TrainPipelined(plan, 4, iters)
	pipeWall := time.Since(t1)
	t.AddRow("pipelined-4", fmt.Sprintf("%d", iters), pipeWall.Round(time.Millisecond).String(),
		(pipeWall / time.Duration(iters)).Round(time.Microsecond).String())
	speedup := float64(serialWall) / float64(pipeWall)
	cores := runtime.GOMAXPROCS(0)
	note := fmt.Sprintf("overlap speedup: %.2fx on %d CPU core(s)", speedup, cores)
	if cores <= 1 {
		note += " — a single core cannot overlap anything; on a multi-core host the prepared-batch queue hides the sampling+partition latency (the paper's GPU trains while CPUs sample)"
	}
	t.Notes = append(t.Notes, note)
	return t, nil
}

// ExtStages introspects the composed micro-kernel programs (paper §5.3):
// for RGCN's regular gTask it lists every stage's traffic and arithmetic
// under the three operation plans, showing where batching and dedup
// save work.
func ExtStages(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-stages",
		Title:  "EXTENSION — composed micro-kernel stages for RGCN's regular gTask",
		Header: []string{"plan", "stage", "kind", "KB", "KFLOP"},
	}
	h := cfg.hidden()
	res := joint.Search(ds.Graph, nn.RGCN, h, h, ds.Graph.NumTypes, joint.Options{Spec: spec()})
	pp := pattern.Analyze(res.Partition, searchAttrs)
	st := kernels.TaskStatsOf{
		Edges:    pp.MedianEdges,
		UniqSrc:  pp.MedianUniq[core.AttrSrcID],
		UniqDst:  pp.MedianUniq[core.AttrDstID],
		UniqType: pp.MedianUniq[core.AttrEdgeType],
		MaxDeg:   pp.MedianEdges/maxIntB(pp.MedianUniq[core.AttrDstID], 1) + 1,
	}
	sh := kernels.LayerShape{Kind: nn.RGCN, F: h, Fp: h, Types: ds.Graph.NumTypes}
	for _, pl := range []struct {
		name string
		plan kernels.Plan
	}{
		{"edge-wise", kernels.Plan{}},
		{"batched", kernels.Plan{Batched: true}},
		{"batched+dedup", kernels.Plan{Batched: true, Dedup: true}},
	} {
		prog := kernels.Compose(sh, pl.plan)
		for _, s := range prog.Stages {
			var kb, kf float64
			if s.Elems != nil {
				kb = s.Elems(st) * 4 / 1e3
			}
			if s.FLOPs != nil {
				kf = s.FLOPs(st) / 1e3
			}
			t.AddRow(pl.name, s.Name, s.Kind.String(), f2(kb), f2(kf))
		}
		flops, bytes := prog.Totals(st)
		t.AddRow(pl.name, "TOTAL", "", f2(bytes/1e3), f2(flops/1e3))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("regular gTask of plan %v: %d edges, uniq(src)=%d uniq(type)=%d uniq(dst)=%d",
			res.GraphPlan.Name, st.Edges, st.UniqSrc, st.UniqType, st.UniqDst),
		"edge-wise reloads the weight matrix per edge; batching fetches it once per type; dedup shrinks the matmul to unique (src,type) pairs")
	return t, nil
}

func maxIntB(a, b int) int {
	if a > b {
		return a
	}
	return b
}
