package bench

import (
	"errors"
	"fmt"
	"math"

	"wisegraph/internal/baseline"
	"wisegraph/internal/dataset"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
)

// trainMultiplier scales a forward-pass time to a full training iteration
// (forward + two backward matmul-equivalents), matching the per-category
// multipliers the baseline executors use.
const trainMultiplier = 3.0

// WiseIteration tunes the joint plan once for (g, kind) and prices one
// training iteration across the given layer dims. It returns the modeled
// seconds and the search result (for reuse and reporting).
func WiseIteration(sp device.Spec, g *graph.Graph, kind nn.ModelKind, dims []int, numTypes int) (float64, *joint.Result) {
	hidden := dims[len(dims)/2]
	res := joint.Search(g, kind, hidden, hidden, numTypes, joint.Options{Spec: sp})
	var total float64
	for li := 0; li+1 < len(dims); li++ {
		sh := kernels.LayerShape{Kind: kind, F: dims[li], Fp: dims[li+1], Types: numTypes}
		var sched joint.Schedule
		if res.Differentiated {
			sched, _ = joint.BestSchedule(sp, res.Partition, sh, res.OpPlan, res.Classification)
		} else {
			sched = joint.UniformSchedule(sp, res.Partition, sh, res.OpPlan)
		}
		total += joint.LayerTime(sp, sh, g.NumVertices, sched)
	}
	return total * trainMultiplier, res
}

// baselineIteration prices one training iteration of sys on the dataset's
// model; returns (seconds, oom, unsupported).
func baselineIteration(sys baseline.System, ds *dataset.Dataset, kind nn.ModelKind, hidden, layers int) (float64, bool, bool) {
	m, err := nn.NewModel(nn.Config{
		Kind: kind, InDim: ds.Dim(), Hidden: hidden, OutDim: ds.Classes(),
		Layers: layers, NumTypes: ds.Graph.NumTypes, Seed: 1,
	})
	if err != nil {
		return 0, false, true
	}
	gc := nn.NewGraphCtx(ds.Graph)
	ctx := exec.NewCtx(device.New(spec()))
	ctx.Compute = false
	ctx.Training = true
	ctx.PaperScale = float64(ds.Scale)
	_, err = sys.RunModel(ctx, gc, m, nil)
	switch {
	case errors.Is(err, exec.ErrOOM):
		return 0, true, false
	case errors.Is(err, baseline.ErrUnsupported):
		return 0, false, true
	case err != nil:
		return 0, false, true
	}
	return ctx.Dev.Stats().SimSeconds, false, false
}

// Fig13 reproduces the single-GPU per-iteration comparison: five models ×
// five datasets × the baseline systems and WiseGraph (simulated ms;
// "OOM" marks the paper's white blocks).
func Fig13(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "single-GPU per-iteration time (simulated ms)",
		Header: []string{"model", "dataset", "PyG-T", "DGL", "Seastar-G", "GNNA-G", "TCGNN-G", "Our-gT", "speedup"},
	}
	systems := baseline.Systems()
	var spAll, spComplex, spSimple []float64
	for _, kind := range evalModels() {
		for _, dsName := range singleGPUDatasets() {
			ds, err := cfg.loadDataset(dsName)
			if err != nil {
				return nil, err
			}
			row := []string{kind.String(), dsName}
			best := 0.0
			for _, sys := range systems {
				secs, oom, unsup := baselineIteration(sys, ds, kind, cfg.hidden(), cfg.layers())
				switch {
				case unsup:
					row = append(row, "-")
				case oom:
					row = append(row, "OOM")
				default:
					row = append(row, ms(secs))
					if best == 0 || secs < best {
						best = secs
					}
				}
			}
			dims := modelDims(ds.Dim(), cfg.hidden(), ds.Classes(), cfg.layers())
			wise, _ := WiseIteration(spec(), ds.Graph, kind, dims, ds.Graph.NumTypes)
			row = append(row, ms(wise))
			speedup := 0.0
			if best > 0 && wise > 0 {
				speedup = best / wise
				row = append(row, f2(speedup)+"x")
				spAll = append(spAll, speedup)
				if kind.Complex() {
					spComplex = append(spComplex, speedup)
				} else {
					spSimple = append(spSimple, speedup)
				}
			} else {
				row = append(row, "-")
			}
			t.AddRow(row...)
		}
		if cfg.Quick {
			break // one model is enough for smoke tests
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean speedup vs best baseline: all=%.2fx complex=%.2fx simple=%.2fx (paper: 2.04x / 2.64x / 1.13x)",
			geomean(spAll), geomean(spComplex), geomean(spSimple)))
	return t, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
