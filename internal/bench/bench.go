// Package bench regenerates every table and figure of the paper's
// evaluation (§2.2 and §7) on the simulated substrate. Each experiment
// returns a Table that cmd/wgbench prints and optionally writes as CSV;
// root-level testing.B benchmarks wrap the same entry points.
//
// Absolute numbers are simulated milliseconds on the modeled A100 — the
// claims under test are the *shapes*: who wins, by what factor, and where
// the crossovers sit. EXPERIMENTS.md records paper-vs-measured for each.
package bench

import (
	"fmt"
	"io"
	"strings"

	"wisegraph/internal/dataset"
	"wisegraph/internal/device"
	"wisegraph/internal/nn"
)

// Config controls experiment scale.
type Config struct {
	// Scale overrides the per-dataset scale divisor (0 = default).
	Scale int
	// Hidden is the hidden dimension (0 = 64; the paper uses 256 on the
	// full-size datasets).
	Hidden int
	// Layers is the model depth (0 = 3, as in the paper).
	Layers int
	// Epochs for accuracy experiments (0 = 40).
	Epochs int
	Seed   uint64
	// Quick shrinks sweeps for test runs.
	Quick bool
	// Engine names the execution engine used by experiments that run real
	// numerics (see kernels.EngineNames; "" = blocked). Recorded in the
	// results JSON so benchmark trajectories are attributable.
	Engine string
}

// EngineName reports the effective execution engine ("blocked" for "").
func (c Config) EngineName() string {
	if c.Engine == "" {
		return "blocked"
	}
	return c.Engine
}

func (c Config) hidden() int {
	if c.Hidden == 0 {
		return 64
	}
	return c.Hidden
}

func (c Config) layers() int {
	if c.Layers == 0 {
		return 3
	}
	return c.Layers
}

func (c Config) epochs() int {
	if c.Epochs == 0 {
		return 40
	}
	return c.Epochs
}

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig13"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		esc := make([]string, len(r))
		for i, c := range r {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			esc[i] = c
		}
		b.WriteString(strings.Join(esc, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// ms formats seconds as milliseconds.
func ms(secs float64) string { return fmt.Sprintf("%.3f", secs*1e3) }

// f2 formats with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// spec returns the modeled device.
func spec() device.Spec { return device.A100() }

// loadDataset materializes a (possibly scaled) dataset for experiments.
func (c Config) loadDataset(name string) (*dataset.Dataset, error) {
	return dataset.Load(name, dataset.Options{Scale: c.Scale, Seed: c.Seed})
}

// singleGPUDatasets lists the Figure 13 datasets.
func singleGPUDatasets() []string { return []string{"AR", "PR", "RE", "PA-S", "FS-S"} }

// evalModels lists the five evaluated models (complex first, as in the
// paper's figure order).
func evalModels() []nn.ModelKind {
	return []nn.ModelKind{nn.RGCN, nn.GAT, nn.SAGELSTM, nn.SAGE, nn.GCN}
}

// modelDims builds the layer dimension chain for a model on a dataset:
// input → hidden×(layers-1) → classes.
func modelDims(inDim, hidden, classes, layers int) []int {
	dims := []int{inDim}
	for i := 0; i < layers-1; i++ {
		dims = append(dims, hidden)
	}
	return append(dims, classes)
}

// specAlias mirrors dataset.Spec for table rendering.
type specAlias = dataset.Spec

func specAliases() []specAlias { return dataset.Specs }
