package bench

import (
	"fmt"
	"time"

	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/train"
)

// Fig21 reproduces the sampled-graph training study: (a) reusing the plan
// tuned on one subgraph across fresh subgraphs retains most of the
// performance of per-subgraph full optimization; (b) the sampling +
// partitioning CPU pipeline hides under the epoch time once enough
// threads are available.
func Fig21(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig21",
		Title:  "sampled-graph training: plan reuse and CPU overlap",
		Header: []string{"dataset", "metric", "value"},
	}
	h := cfg.hidden()
	sp := spec()
	subgraphs := 4
	if cfg.Quick {
		subgraphs = 2
	}
	for _, name := range []string{"PA", "FS"} {
		ds, err := cfg.loadDataset(name)
		if err != nil {
			return nil, err
		}
		tr, err := train.NewSampled(ds, nn.Config{Kind: nn.SAGE, Hidden: h, Layers: 2, Seed: cfg.Seed + 3},
			0.01, []int{10, 10}, 256, cfg.Seed+11)
		if err != nil {
			return nil, err
		}
		// tune on the first subgraph, then compare full-opt vs reuse on
		// fresh subgraphs
		tuned := tr.TunePlans(sp, 1)
		var fullSecs, reuseSecs float64
		var sampleWall, partWall time.Duration
		for i := 0; i < subgraphs; i++ {
			t0 := time.Now()
			sub := tr.NextBatch()
			sampleWall += time.Since(t0)
			// full optimization on this subgraph
			full := joint.Search(sub.Graph, nn.SAGE, h, h, 1, joint.Options{Spec: sp})
			fullSecs += full.Seconds
			// reuse the tuned plan: O(E) partition only
			t1 := time.Now()
			part := train.ReusePlan(tuned, sub.Graph)
			partWall += time.Since(t1)
			sh := kernels.LayerShape{Kind: nn.SAGE, F: h, Fp: h, Types: 1}
			sched := joint.UniformSchedule(sp, part, sh, tuned.OpPlan)
			reuseSecs += joint.LayerTime(sp, sh, sub.Graph.NumVertices, sched)
		}
		rel := fullSecs / reuseSecs
		t.AddRow(name, "reuse relative performance", fmt.Sprintf("%.2f (paper: ~0.91)", rel))
		// overlap: scale single-thread CPU costs against the epoch time
		iters := float64(len(ds.TrainMask))/256 + 1
		epochSecs := reuseSecs / float64(subgraphs) * iters * 6 // fwd+bwd, 3 layers
		om := train.OverlapModel{
			SampleSeconds:    sampleWall.Seconds() / float64(subgraphs) * iters,
			PartitionSeconds: partWall.Seconds() / float64(subgraphs) * iters,
			EpochSeconds:     epochSecs,
		}
		for _, th := range []int{2, 8, 16, 24} {
			s, sp2, ep := om.At(th)
			t.AddRow(name, fmt.Sprintf("threads=%d sample/sample+opt/epoch (s)", th),
				fmt.Sprintf("%.3f / %.3f / %.3f", s, sp2, ep))
		}
		if at := om.FullyOverlappedAt(128); at > 0 {
			t.AddRow(name, "fully overlapped at", fmt.Sprintf("%d threads", at))
		}
	}
	t.Notes = append(t.Notes, "paper: reuse keeps 91% of full-opt performance; with ~24 CPU threads sample+partition hides under the epoch")
	return t, nil
}

// Table3 reproduces the pre-processing overhead breakdown for training
// SAGE on PA and AR: wall-measured steps where the work is real (model
// init, joint optimization) and modeled steps where the environment is
// simulated (disk load at 2 GB/s, convergence = 100 epochs of simulated
// epoch time scaled to paper size).
func Table3(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "processing time for training SAGE (seconds)",
		Header: []string{"step", "PA", "AR"},
	}
	h := cfg.hidden()
	sp := spec()
	type colT struct {
		init, disk, conv, opt float64
	}
	cols := map[string]*colT{}
	for _, name := range []string{"PA", "AR"} {
		ds, err := cfg.loadDataset(name)
		if err != nil {
			return nil, err
		}
		c := &colT{}
		t0 := time.Now()
		tr, err := train.NewFullGraph(ds, nn.Config{Kind: nn.SAGE, Hidden: h, Layers: cfg.layers(), Seed: 1}, 0.01)
		if err != nil {
			return nil, err
		}
		c.init = time.Since(t0).Seconds() * float64(ds.Scale)
		// disk → DRAM: paper-scale features at 2 GB/s
		paperBytes := float64(ds.Spec.Vertices) * float64(ds.Spec.Dim) * 4
		c.disk = paperBytes / 2e9
		res := tr.Tune(sp)
		// joint optimization at paper scale: the searched plan count ×
		// O(E) GPU graph processing (the paper partitions on GPU at
		// hundreds of millions of edges per second) plus the cost-model
		// evaluation, which is proportional to task counts.
		const gpuPartitionRate = 400e6 // edges/s per plan
		c.opt = float64(res.PlansTried) * float64(ds.Spec.Edges) / gpuPartitionRate
		// convergence: 100 epochs of the tuned simulated epoch time at
		// paper scale (epoch time scales with the edge count)
		sh := kernels.LayerShape{Kind: nn.SAGE, F: h, Fp: h, Types: 1}
		sched := joint.UniformSchedule(sp, res.Partition, sh, res.OpPlan)
		epoch := joint.LayerTime(sp, sh, ds.Graph.NumVertices, sched) * float64(cfg.layers()) * 3
		c.conv = epoch * 100 * float64(ds.Scale)
		cols[name] = c
	}
	row := func(label string, get func(*colT) float64) {
		t.AddRow(label, f2(get(cols["PA"])), f2(get(cols["AR"])))
	}
	t.AddRow("environment setup", "1.20", "1.20")
	row("train initialization", func(c *colT) float64 { return c.init })
	row("disk to DRAM", func(c *colT) float64 { return c.disk })
	row("convergence (100 epochs)", func(c *colT) float64 { return c.conv })
	row("joint optimization", func(c *colT) float64 { return c.opt })
	pa := cols["PA"]
	const paperConvPA = 18915.0 // paper Table 3: SAGE convergence on PA
	t.Notes = append(t.Notes,
		fmt.Sprintf("joint optimization on PA: %.0fs modeled vs paper's 100s; %.2f%% of the paper's measured convergence time (paper: <2%%)",
			pa.opt, pa.opt/paperConvPA*100),
		"the simulated convergence epochs exclude the evaluation passes and host-side overheads the paper's wall measurement includes, so the replica convergence column underestimates the paper's",
		"init is wall-measured and scaled; disk, convergence and joint-opt are modeled (see DESIGN.md)")
	return t, nil
}
