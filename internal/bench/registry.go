package bench

import (
	"fmt"
	"sort"
)

// Experiment is a runnable paper experiment.
type Experiment struct {
	ID    string
	Desc  string
	Run   func(Config) (*Table, error)
	Heavy bool // skipped by "all" in quick mode
}

// Experiments returns the full registry, sorted by id.
func Experiments() []Experiment {
	exps := []Experiment{
		{ID: "table1", Desc: "dataset statistics (paper Table 1)", Run: Table1},
		{ID: "fig3a", Desc: "compute/memory ratio of graph-centric approaches (paper Fig. 3a)", Run: Fig3a},
		{ID: "fig3b", Desc: "tensor-centric time breakdown (paper Fig. 3b)", Run: Fig3b},
		{ID: "fig13", Desc: "single-GPU per-iteration comparison (paper Fig. 13)", Run: Fig13, Heavy: true},
		{ID: "table2", Desc: "multi-GPU epoch time (paper Table 2)", Run: Table2},
		{ID: "fig14", Desc: "accuracy parity DGL vs WiseGraph (paper Fig. 14a)", Run: Fig14, Heavy: true},
		{ID: "fig14b", Desc: "accuracy curve SAGE on AR (paper Fig. 14b)", Run: Fig14b},
		{ID: "fig15", Desc: "graph partition plans per model (paper Fig. 15)", Run: Fig15, Heavy: true},
		{ID: "fig16", Desc: "throughput vs search steps (paper Fig. 16)", Run: Fig16},
		{ID: "fig17", Desc: "DFG transformation ablation (paper Fig. 17)", Run: Fig17},
		{ID: "fig18", Desc: "batching factor sweep (paper Fig. 18)", Run: Fig18},
		{ID: "fig19", Desc: "differentiated outlier execution (paper Fig. 19)", Run: Fig19},
		{ID: "fig20", Desc: "placement vs hidden dimension (paper Fig. 20)", Run: Fig20},
		{ID: "fig21", Desc: "sampled-graph plan reuse and overlap (paper Fig. 21)", Run: Fig21},
		{ID: "table3", Desc: "pre-processing overhead (paper Table 3)", Run: Table3},
		{ID: "ext-reorder", Desc: "EXTENSION: reorder + gTask composition (paper §4.3)", Run: ExtReorder},
		{ID: "ext-engine", Desc: "EXTENSION: executable multi-device engine, measured volumes", Run: ExtEngine},
		{ID: "ext-engines", Desc: "EXTENSION: blocked vs fused vs device execution engines (wall ms, bytes-moved)", Run: ExtEngines},
		{ID: "ext-pipeline", Desc: "EXTENSION: async sampling pipeline wall-clock", Run: ExtPipeline},
		{ID: "ext-stages", Desc: "EXTENSION: composed micro-kernel stage breakdown (paper §5.3)", Run: ExtStages},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
