package bench

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1, Epochs: 10} }

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", s)
	}
	return v
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Experiments() {
		tb, err := e.Run(quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if tb.ID != e.ID {
			t.Fatalf("experiment %s returned table %s", e.ID, tb.ID)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", e.ID)
		}
		if len(tb.Header) == 0 {
			t.Fatalf("%s: missing header", e.ID)
		}
		// every row has at most header width (ragged short rows allowed)
		for _, r := range tb.Rows {
			if len(r) > len(tb.Header) {
				t.Fatalf("%s: row wider than header: %v", e.ID, r)
			}
		}
	}
}

func TestFindExperiment(t *testing.T) {
	if _, err := Find("fig18"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a", "b"}}
	tb.AddRow("1", "2,3")
	var sb strings.Builder
	tb.Fprint(&sb)
	if !strings.Contains(sb.String(), "== x: t ==") {
		t.Fatalf("rendering: %q", sb.String())
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "\"2,3\"") {
		t.Fatalf("CSV escaping: %q", csv)
	}
}

func TestFig13ShapeWiseGraphWins(t *testing.T) {
	tb, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// quick mode runs RGCN only; WiseGraph must beat the best baseline
	// on every dataset (the paper's complex-model claim).
	for _, r := range tb.Rows {
		sp := r[len(r)-1]
		if sp == "-" {
			continue
		}
		if v := cell(t, sp); v < 1.0 {
			t.Fatalf("WiseGraph lost on %s/%s: speedup %v", r[0], r[1], v)
		}
	}
}

func TestFig13OOMPattern(t *testing.T) {
	tb, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// tensor-centric must OOM on the paper-scale dense graphs (PR, RE)
	// for RGCN while WiseGraph never does.
	oomSeen := false
	for _, r := range tb.Rows {
		if r[1] == "PR" || r[1] == "RE" {
			if r[2] == "OOM" {
				oomSeen = true
			}
		}
		if r[len(r)-2] == "OOM" {
			t.Fatalf("WiseGraph OOM on %s/%s", r[0], r[1])
		}
	}
	if !oomSeen {
		t.Fatal("expected tensor-centric OOM on PR/RE at paper scale")
	}
}

func TestTable2ShapeWiseGraphBest(t *testing.T) {
	tb, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		wise := cell(t, r[5])
		for i := 1; i <= 4; i++ {
			if r[i] == "N/A" {
				continue
			}
			if v := cell(t, r[i]); v < wise {
				t.Fatalf("%s: %s (%v) beat WiseGraph (%v)", r[0], tb.Header[i], v, wise)
			}
		}
	}
}

func TestFig3aShapeGapGrowsWithComplexity(t *testing.T) {
	tb, err := Fig3a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// relative gap (optimal / vertex-centric) must grow Addition → MHA → MLP
	var gaps []float64
	for _, r := range tb.Rows {
		vc := cell(t, r[1])
		opt := cell(t, r[3])
		gaps = append(gaps, opt/vc)
	}
	if !(gaps[0] < gaps[1] && gaps[1] < gaps[2]) {
		t.Fatalf("gap must grow with op complexity: %v", gaps)
	}
}

func TestFig3bShapeNeuralMinority(t *testing.T) {
	tb, err := Fig3b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if v := cell(t, r[1]); v >= 50 {
			t.Fatalf("%s: neural fraction %v%%, want < 50%% (paper: < 40%%)", r[0], v)
		}
	}
}

func TestFig18ShapeBatchedPeak(t *testing.T) {
	tb, err := Fig18(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// For each model: K=1 must be far below the best K, and INF (when
	// present) below the best K too (the crossover shape of Figure 18).
	best := map[string]float64{}
	k1 := map[string]float64{}
	inf := map[string]float64{}
	for _, r := range tb.Rows {
		v := cell(t, r[2])
		if v > best[r[0]] {
			best[r[0]] = v
		}
		switch r[1] {
		case "1":
			k1[r[0]] = v
		case "INF":
			inf[r[0]] = v
		}
	}
	for model, b := range best {
		if k1[model]*4 > b {
			t.Fatalf("%s: K=1 (%v) not ≥4x below peak (%v); paper reports 4.33x/6.10x gains", model, k1[model], b)
		}
		if v, ok := inf[model]; ok && v >= b {
			t.Fatalf("%s: INF (%v) should lose to batched peak (%v)", model, v, b)
		}
	}
}

func TestFig14AccuracyParity(t *testing.T) {
	tb, err := Fig14(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if d := cell(t, r[4]); d > 0.01 || d < -0.01 {
			t.Fatalf("%s/%s: accuracy delta %v exceeds 1%%", r[0], r[1], d)
		}
	}
}

func TestFig16ThroughputMonotone(t *testing.T) {
	tb, err := Fig16(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	final := map[string]float64{}
	dgl := map[string]float64{}
	for _, r := range tb.Rows {
		v := cell(t, r[4])
		if v+1e-9 < last[r[0]] {
			t.Fatalf("%s: best-so-far throughput decreased", r[0])
		}
		last[r[0]] = v
		final[r[0]] = v
		dgl[r[0]] = cell(t, r[5])
	}
	// the search must end above the DGL reference for every model
	for m, v := range final {
		if v <= dgl[m] {
			t.Fatalf("%s: final throughput %v did not beat DGL %v", m, v, dgl[m])
		}
	}
}
