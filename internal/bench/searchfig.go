package bench

import (
	"fmt"
	"sort"

	"wisegraph/internal/baseline"
	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
)

// Fig16 reproduces the throughput-vs-search-step curves: the three search
// stages (graph partition → operation partition → joint optimization)
// with best-so-far throughput, plus the DGL reference line.
func Fig16(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig16",
		Title:  "throughput (M edges/s) vs search stage and step on AR",
		Header: []string{"model", "step", "stage", "candidate", "throughput", "DGL"},
	}
	h := cfg.hidden()
	gc := nn.NewGraphCtx(ds.Graph)
	for _, kind := range []nn.ModelKind{nn.RGCN, nn.GAT, nn.SAGELSTM, nn.GCN} {
		// DGL reference throughput for this model (one layer equivalent:
		// iteration time over layers).
		dglThroughput := 0.0
		m, err := nn.NewModel(nn.Config{
			Kind: kind, InDim: h, Hidden: h, OutDim: h, Layers: cfg.layers(),
			NumTypes: ds.Graph.NumTypes, Seed: 1,
		})
		if err == nil {
			ctx := exec.NewCtx(device.New(spec()))
			ctx.Compute = false
			if _, err := baseline.DGL().RunModel(ctx, gc, m, nil); err == nil {
				perLayer := ctx.Dev.Stats().SimSeconds / float64(cfg.layers())
				dglThroughput = float64(ds.Graph.NumEdges()) / perLayer / 1e6
			}
		}
		res := joint.Search(ds.Graph, kind, h, h, ds.Graph.NumTypes, joint.Options{Spec: spec()})
		for i, s := range res.Trace {
			t.AddRow(kind.String(), fmt.Sprintf("%d", i), s.Stage, s.Desc,
				f2(s.Throughput/1e6), f2(dglThroughput))
		}
	}
	t.Notes = append(t.Notes,
		"paper: graph partition helps LSTM/GCN most; operation partition helps RGCN up to 15x; joint optimization improves all")
	return t, nil
}

// Fig15 emits the partition visualizations: per-edge task assignments for
// vertex-centric and the per-model searched plans, over a window of the
// AR graph (CSV-friendly: src, dst, task).
func Fig15(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig15",
		Title:  "graph partition plans found per model (tasks over the AR graph)",
		Header: []string{"partition", "plan", "tasks", "median-edges", "max-edges"},
	}
	h := cfg.hidden()
	summarize := func(label string, plan core.GraphPlan) {
		part := core.PartitionGraph(ds.Graph, plan, searchAttrs)
		med, max := taskSizeStats(part)
		t.AddRow(label, plan.String(), fmt.Sprintf("%d", part.NumTasks()),
			fmt.Sprintf("%d", med), fmt.Sprintf("%d", max))
	}
	summarize("vertex-centric", core.VertexCentric())
	for _, kind := range []nn.ModelKind{nn.RGCN, nn.GAT, nn.SAGELSTM, nn.SAGE, nn.GCN} {
		res := joint.Search(ds.Graph, kind, h, h, ds.Graph.NumTypes, joint.Options{Spec: spec()})
		summarize("gTask/"+kind.String(), res.GraphPlan)
	}
	t.Notes = append(t.Notes,
		"paper Figure 15: RGCN groups by edge-type, GAT by shared sources, SAGE-LSTM by destination degree, SAGE/GCN by bounded edges per task",
		"per-edge task ids for scatter plots: wgpartition -dataset AR -model <M> -csv")
	return t, nil
}

func taskSizeStats(p *core.Partition) (median, max int) {
	n := p.NumTasks()
	if n == 0 {
		return 0, 0
	}
	lens := make([]int, n)
	for i := range lens {
		lens[i] = p.TaskLen(i)
		if lens[i] > max {
			max = lens[i]
		}
	}
	sort.Ints(lens)
	return lens[n/2], max
}
