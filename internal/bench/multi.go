package bench

import (
	"fmt"

	"wisegraph/internal/dist"
	"wisegraph/internal/nn"
)

// Table2 reproduces the multi-GPU epoch times: full-graph training on PA
// and FS (hidden=32, as the paper does to avoid memory issues) under DGL,
// ROC, DGCL and WiseGraph, and sampled-graph training on PA-S and FS-S
// with DGL, P3 and WiseGraph.
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "multi-GPU epoch time (simulated s, 4 devices over PCIe-4.0)",
		Header: []string{"dataset", "DGL", "ROC", "DGCL", "P3", "WiseGraph", "speedup"},
	}
	c := dist.NewCluster(4)
	fullHidden := 32
	for _, name := range []string{"PA", "FS"} {
		ds, err := cfg.loadDataset(name)
		if err != nil {
			return nil, err
		}
		gs := scaleStats(dist.Analyze(ds.Graph, c.N), ds.Scale)
		dims := modelDims(ds.Dim(), fullHidden, ds.Classes(), cfg.layers())
		iter := func(p dist.Policy) float64 {
			return dist.IterationTime(c, gs, nn.GCN, dims, p)
		}
		dgl := iter(dist.PolicyDGL)
		wise := iter(dist.PolicyWise)
		t.AddRow(name, f2(dgl), f2(iter(dist.PolicyROC)), f2(iter(dist.PolicyDGCL)), "N/A",
			f2(wise), f2(dgl/wise)+"x")
	}
	for _, name := range []string{"PA-S", "FS-S"} {
		ds, err := cfg.loadDataset(name)
		if err != nil {
			return nil, err
		}
		gs := dist.Analyze(ds.Graph, c.N)
		dims := modelDims(ds.Dim(), cfg.hidden(), ds.Classes(), cfg.layers())
		// sampled training: an epoch touches every training vertex at
		// paper scale; the per-iteration time scales by the number of
		// mini-batches (the per-batch subgraph stays replica-sized).
		batches := float64(len(ds.TrainMask))*float64(ds.Scale)/1024 + 1
		iter := func(p dist.Policy) float64 {
			return dist.IterationTime(c, gs, nn.GCN, dims, p) * batches
		}
		dgl := iter(dist.PolicyDGL)
		wise := iter(dist.PolicyWise)
		best := dgl
		p3 := iter(dist.PolicyP3)
		if p3 < best {
			best = p3
		}
		t.AddRow(name, f2(dgl), "N/A", "N/A", f2(p3), f2(wise), f2(best/wise)+"x")
	}
	t.Notes = append(t.Notes,
		"paper: WiseGraph 2.27x over the best system on full graphs, 1.83x on sampled graphs; P3 sometimes loses to plain data parallel",
		"full-graph rows price the paper-size graph (replica statistics scaled up); sampled rows scale the batch count")
	return t, nil
}

// scaleStats inflates replica statistics back to paper size so collective
// volumes and compute are priced at the original scale while per-step
// latencies stay fixed.
func scaleStats(gs dist.GraphStats, scale int) dist.GraphStats {
	gs.V *= scale
	gs.E *= scale
	gs.CrossEdges *= scale
	gs.UniqRemoteSrc *= scale
	gs.MaxDeviceEdges *= scale
	return gs
}

// Fig20 sweeps the hidden dimension for the first GCN layer on PA-S and
// FS-S under DGL, P3 and WiseGraph (multi-device execution time).
func Fig20(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig20",
		Title:  "multi-device first-layer time vs hidden dimension (simulated ms)",
		Header: []string{"dataset", "hidden", "DGL", "P3", "Our"},
	}
	c := dist.NewCluster(4)
	sweep := []int{32, 64, 128, 256, 512, 1024}
	if cfg.Quick {
		sweep = []int{32, 256, 1024}
	}
	for _, name := range []string{"PA-S", "FS-S"} {
		ds, err := cfg.loadDataset(name)
		if err != nil {
			return nil, err
		}
		gs := dist.Analyze(ds.Graph, c.N)
		for _, hid := range sweep {
			dims := []int{ds.Dim(), hid}
			row := []string{name, fmt.Sprintf("%d", hid)}
			for _, p := range []dist.Policy{dist.PolicyDGL, dist.PolicyP3, dist.PolicyWise} {
				row = append(row, ms(dist.IterationTime(c, gs, nn.GCN, dims, p)))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes, "paper: static DGL/P3 strategies lose at some dimensions; adaptive placement is always best")
	return t, nil
}
