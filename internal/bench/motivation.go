package bench

import (
	"fmt"

	"wisegraph/internal/baseline"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
)

// fig3Models maps the paper's neural-operation classes to models:
// Addition → GCN, MHA → GAT, MLP → RGCN.
func fig3Models() []struct {
	op   string
	kind nn.ModelKind
} {
	return []struct {
		op   string
		kind nn.ModelKind
	}{
		{"Addition", nn.GCN},
		{"MHA", nn.GAT},
		{"MLP", nn.RGCN},
	}
}

// Table1 prints the evaluated datasets: paper-scale statistics and the
// materialized scaled replicas.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "evaluated graph datasets (paper scale → materialized replica)",
		Header: []string{"dataset", "paperV", "paperE", "dim", "classes", "scale", "V", "E", "avgdeg", "maxdeg"},
	}
	for _, s := range dsSpecs() {
		ds, err := cfg.loadDataset(s.Name)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.Vertices), fmt.Sprintf("%d", s.Edges),
			fmt.Sprintf("%d", s.Dim), fmt.Sprintf("%d", s.Classes),
			fmt.Sprintf("1/%d", ds.Scale),
			fmt.Sprintf("%d", ds.Graph.NumVertices), fmt.Sprintf("%d", ds.Graph.NumEdges()),
			f2(ds.Graph.AvgDegree()), fmt.Sprintf("%d", ds.Graph.MaxInDegree()))
	}
	return t, nil
}

// Fig3a reproduces the compute/memory ratio of the vertex- and
// edge-centric approaches against the optimal (full-reuse) ratio for the
// three neural-operation classes.
func Fig3a(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	gc := nn.NewGraphCtx(ds.Graph)
	t := &Table{
		ID:     "fig3a",
		Title:  "compute/memory ratio (FLOP/B) of graph-centric approaches vs optimal",
		Header: []string{"neural-op", "vertex-centric", "edge-centric", "optimal"},
	}
	h := cfg.hidden()
	for _, mc := range fig3Models() {
		m, err := nn.NewModel(nn.Config{
			Kind: mc.kind, InDim: h, Hidden: h, OutDim: h, Layers: 1,
			NumTypes: ds.Graph.NumTypes, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		lw := baseline.NewLayerWork(gc, m.Layers()[0], mc.kind)
		ratio := func(strat baseline.Strategy) float64 {
			ctx := exec.NewCtx(device.New(spec()))
			ctx.Compute = false
			if err := baseline.AccountStrategy(ctx, lw, strat, false); err != nil {
				return 0
			}
			return ctx.Dev.ComputeMemoryRatio()
		}
		opt := optimalRatio(lw)
		t.AddRow(mc.op, f2(ratio(baseline.VertexCentric)), f2(ratio(baseline.EdgeCentric)), f2(opt))
	}
	t.Notes = append(t.Notes, "paper: Addition near optimal; the gap grows for MHA and MLP (graph-centric MLP ≈1% of peak)")
	return t, nil
}

// optimalRatio is necessary FLOPs over necessary bytes. "Necessary"
// counts what any execution must touch: the dense transforms, one read
// per unique weight, and — for addition-class aggregation — the per-edge
// source-row stream (there is no computation to amortize it against).
// What is NOT necessary is re-reading weight matrices per edge, which is
// exactly the traffic the graph-centric MLP/MHA kernels pay.
func optimalRatio(lw baseline.LayerWork) float64 {
	v := float64(lw.V)
	e := float64(lw.E)
	f := float64(lw.F)
	fp := float64(lw.Fp)
	var flops, bytes float64
	switch lw.Kind {
	case nn.GCN:
		flops = e*fp + 2*v*f*fp
		bytes = (e*fp + v*f + f*fp + v*fp) * 4
	case nn.SAGE:
		flops = e*f + 4*v*f*fp
		bytes = (e*f + v*f + 2*f*fp + v*fp) * 4
	case nn.GAT:
		flops = 2*v*f*fp + 4*e*fp
		bytes = (v*f + f*fp + 4*e + v*fp) * 4
	case nn.RGCN:
		flops = 2 * e * f * fp
		bytes = (v*f + float64(lw.Types)*f*fp + v*fp + e) * 4
	case nn.SAGELSTM:
		flops = 2 * e * (f + fp) * 4 * fp
		bytes = (e*f + (f+fp)*4*fp + v*fp) * 4
	}
	if bytes == 0 {
		return 0
	}
	return flops / bytes
}

// Fig3b reproduces the tensor-centric execution-time breakdown: the
// fraction spent in neural kernels vs indexing/data movement.
func Fig3b(cfg Config) (*Table, error) {
	ds, err := cfg.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	gc := nn.NewGraphCtx(ds.Graph)
	t := &Table{
		ID:     "fig3b",
		Title:  "tensor-centric time breakdown (% of iteration)",
		Header: []string{"neural-op", "neural%", "other%"},
	}
	h := cfg.hidden()
	for _, mc := range fig3Models() {
		m, err := nn.NewModel(nn.Config{
			Kind: mc.kind, InDim: h, Hidden: h, OutDim: h, Layers: cfg.layers(),
			NumTypes: ds.Graph.NumTypes, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		ctx := exec.NewCtx(device.New(spec()))
		ctx.Compute = false
		if _, err := baseline.PyG().RunModel(ctx, gc, m, nil); err != nil {
			return nil, err
		}
		st := ctx.Dev.Stats()
		neural := st.ByCategory["neural"] / st.SimSeconds * 100
		t.AddRow(mc.op, f2(neural), f2(100-neural))
	}
	t.Notes = append(t.Notes, "paper: neural time < 40% across models; the rest is global-memory data movement")
	return t, nil
}

// dsSpecs re-exports dataset specs for the harness.
func dsSpecs() []specAlias { return specAliases() }
