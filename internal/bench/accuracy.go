package bench

import (
	"fmt"

	"wisegraph/internal/dataset"
	"wisegraph/internal/nn"
	"wisegraph/internal/train"
)

// accuracyDataset loads a dataset tuned for learnability (lower feature
// noise, higher homophily), as the accuracy experiments need models that
// actually converge at replica scale.
func (c Config) accuracyDataset(name string) (*dataset.Dataset, error) {
	return dataset.Load(name, dataset.Options{
		Scale: c.Scale, Seed: c.Seed, Homophily: 0.85, FeatureNoise: 0.8, FeatureDim: 32,
	})
}

// Fig14 reproduces the accuracy comparison: GAT and SAGE trained on AR,
// PR and PA, with "DGL" (reference execution) and "Our" (same training,
// final accuracy evaluated through the gTask execution path) — parity
// within 1% is the claim under test.
func Fig14(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "test accuracy: DGL (reference) vs WiseGraph (gTask execution)",
		Header: []string{"model", "dataset", "DGL", "Our", "delta"},
	}
	datasets := []string{"AR", "PR", "PA"}
	models := []nn.ModelKind{nn.GAT, nn.SAGE}
	if cfg.Quick {
		datasets = []string{"AR"}
		models = []nn.ModelKind{nn.SAGE}
	}
	for _, kind := range models {
		for _, dsName := range datasets {
			ds, err := cfg.accuracyDataset(dsName)
			if err != nil {
				return nil, err
			}
			tr, err := train.NewFullGraph(ds, nn.Config{
				Kind: kind, Hidden: 32, Layers: 2, Heads: 4, Seed: cfg.Seed + 7,
			}, 0.01)
			if err != nil {
				return nil, err
			}
			if err := tr.UseEngine(cfg.Engine); err != nil {
				return nil, err
			}
			tr.Run(cfg.epochs())
			ref := tr.Model.Accuracy(tr.GC, ds.Features, ds.Labels, ds.TestMask)
			res := tr.Tune(spec())
			ours, err := tr.GTaskTestAccuracy(res)
			if err != nil {
				return nil, err
			}
			t.AddRow(kind.String(), dsName,
				fmt.Sprintf("%.3f", ref), fmt.Sprintf("%.3f", ours),
				fmt.Sprintf("%+.4f", ours-ref))
		}
	}
	t.Notes = append(t.Notes, "paper: accuracy difference within 1% on all OGB datasets; here the executions share numerics so the delta is float noise")
	return t, nil
}

// Fig14b produces the accuracy curve: SAGE on AR over the training run
// (the paper's 100-epoch curve).
func Fig14b(cfg Config) (*Table, error) {
	ds, err := cfg.accuracyDataset("AR")
	if err != nil {
		return nil, err
	}
	tr, err := train.NewFullGraph(ds, nn.Config{Kind: nn.SAGE, Hidden: 32, Layers: 2, Seed: cfg.Seed + 9}, 0.01)
	if err != nil {
		return nil, err
	}
	if err := tr.UseEngine(cfg.Engine); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig14b",
		Title:  "accuracy curve: SAGE on AR",
		Header: []string{"epoch", "loss", "val-acc", "test-acc"},
	}
	for _, st := range tr.Run(cfg.epochs()) {
		t.AddRow(fmt.Sprintf("%d", st.Epoch), fmt.Sprintf("%.4f", st.Loss),
			fmt.Sprintf("%.3f", st.ValAcc), fmt.Sprintf("%.3f", st.TestAcc))
	}
	return t, nil
}
