package bench

import (
	"fmt"
	"time"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
)

// engineAttrs are the partition attributes the engines experiment indexes.
var engineAttrs = []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree}

// ExtEngines compares the pluggable execution engines on every model:
// measured wall-clock of the real forward numerics (best of a few reps)
// and each engine's modeled global-memory traffic for the aggregation
// path. The blocked model walks memory roughly three times per edge
// (gather pass, per-edge read-modify-write, per-edge weight refetch for
// RGCN); the fused model streams every operand once plus one accumulator
// load+store per destination run; "costmodel" is the composed micro-kernel
// program's prediction for the paper's target kernel (what the device
// engine accounts stage by stage).
func ExtEngines(c Config) (*Table, error) {
	ds, err := c.loadDataset("AR")
	if err != nil {
		return nil, err
	}
	hidden := c.hidden()
	reps := 3
	if c.Quick {
		reps = 1
	}
	gc := nn.NewGraphCtx(ds.Graph)
	gp := core.VertexCentric()
	part := core.PartitionGraph(ds.Graph, gp, engineAttrs)
	t := &Table{
		ID:    "ext-engines",
		Title: fmt.Sprintf("execution engines: blocked vs fused on AR, F=%d (wall ms of real numerics; modeled aggregation-path MB)", hidden),
		Header: []string{"model", "blocked ms", "fused ms", "speedup",
			"blocked MB", "fused MB", "bytes x", "costmodel MB"},
	}
	for _, kind := range evalModels() {
		op := kernels.Plan{Batched: true}
		if kind == nn.RGCN {
			op.Dedup = true
		}
		m, err := nn.NewModel(nn.Config{
			Kind: kind, InDim: ds.Dim(), Hidden: hidden, OutDim: ds.Classes(),
			Layers: c.layers(), NumTypes: ds.Graph.NumTypes, Seed: c.Seed,
		})
		if err != nil {
			return nil, err
		}
		layerBytes := func(engine string) (float64, error) {
			eng, err := kernels.Select(engine)
			if err != nil {
				return 0, err
			}
			var total float64
			for _, l := range m.Layers() {
				sh := kernels.LayerShape{Kind: kind, F: l.InDim(), Fp: l.OutDim(), Types: m.Cfg.NumTypes}
				total += eng.LayerBytes(sh, part, op)
			}
			return total, nil
		}
		wall := func(engine string) (float64, error) {
			best := 0.0
			for r := 0; r < reps; r++ {
				ctx := exec.NewCtx(device.New(spec()))
				ctx.Engine = engine
				start := time.Now()
				if _, err := kernels.RunModel(ctx, gc, m, ds.Features, part, op); err != nil {
					return 0, err
				}
				if el := time.Since(start).Seconds(); r == 0 || el < best {
					best = el
				}
			}
			return best, nil
		}
		blockedT, err := wall("blocked")
		if err != nil {
			return nil, err
		}
		fusedT, err := wall("fused")
		if err != nil {
			return nil, err
		}
		blockedB, err := layerBytes("blocked")
		if err != nil {
			return nil, err
		}
		fusedB, err := layerBytes("fused")
		if err != nil {
			return nil, err
		}
		costB, err := layerBytes("device")
		if err != nil {
			return nil, err
		}
		t.AddRow(kind.String(), ms(blockedT), ms(fusedT), f2(blockedT/fusedT),
			f2(blockedB/1e6), f2(fusedB/1e6), f2(blockedB/fusedB), f2(costB/1e6))
	}
	t.Notes = append(t.Notes,
		"engines are bitwise-identical (see TestEnginesBitwiseParityAcrossPlansAndWorkers); only dataflow differs",
		"fused wins bytes-moved on the bandwidth-bound shapes (GCN/GraphSAGE at F>=64): one stream per edge plus one accumulator load+store per destination run, vs three memory walks per edge blocked",
		"SAGE-LSTM shows bytes x = 1.00 by design: the recurrence already streams one source row per step with (h,c) register-resident, so there is nothing left to fuse",
		"GAT's win is smaller: the score/softmax passes are shared between engines, so fusion only removes the aggregation pass's per-edge read-modify-write",
		"wall-clock speedups on this CPU substrate are modest because the shared dense matmuls dominate; bytes-moved is the device-model win the paper targets",
		"SAGE fused wall time can trail blocked here: its zero-materialization path trades the cache-blocked [V,F]x[F,F'] matmul for per-row vector-matrix products, a bandwidth-vs-FLOPs trade that pays on the modeled device, not on CPU",
	)
	return t, nil
}
