// Package device simulates the accelerator the paper runs on. The paper's
// numbers come from NVIDIA A100 GPUs; this environment has no GPU, so every
// kernel executes its numeric work for real on CPU workers while an analytic
// timing model accounts what the same kernel would cost on the modeled
// device: launch overhead, compute time on the SIMT or tensor-core path,
// memory traffic against HBM bandwidth, and parallelism efficiency across
// execution units.
//
// The model is deliberately simple — per kernel,
//
//	t = launch + max(FLOPs / (peak·eff), Bytes / bandwidth)
//
// with eff = min(1, parallelism/units) — because every effect the paper
// measures (compute/memory ratio, kernel-count overhead, batching, load
// imbalance, communication volume) is a first-order function of exactly
// these quantities. Absolute times are not meaningful; ratios are.
package device

import (
	"fmt"
	"sort"
	"sync"

	"wisegraph/internal/fault"
)

// Spec describes a simulated accelerator.
type Spec struct {
	Name string
	// TensorCoreFLOPS is the dense-matmul (TF32 tensor core) peak, FLOP/s.
	TensorCoreFLOPS float64
	// SIMTFLOPS is the scalar-path peak, FLOP/s.
	SIMTFLOPS float64
	// MemBandwidth is device-memory bandwidth, bytes/s.
	MemBandwidth float64
	// LaunchOverhead is fixed per-kernel launch latency, seconds.
	LaunchOverhead float64
	// NumUnits is the number of execution units (SMs).
	NumUnits int
}

// A100 returns the spec of the paper's evaluation GPU (A100-PCIe-40GB).
func A100() Spec {
	return Spec{
		Name:            "A100-PCIe",
		TensorCoreFLOPS: 156e12,
		SIMTFLOPS:       19.5e12,
		MemBandwidth:    1555e9,
		LaunchOverhead:  5e-6,
		NumUnits:        108,
	}
}

// Category classifies kernels for time-breakdown reporting (Figure 3b and
// Figure 17 split execution into indexing vs neural time).
type Category int

const (
	CatIndexing Category = iota
	CatNeural
	CatComm
	CatOther
	numCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatIndexing:
		return "indexing"
	case CatNeural:
		return "neural"
	case CatComm:
		return "comm"
	default:
		return "other"
	}
}

// Kernel describes one launch for the timing model.
type Kernel struct {
	Name string
	Cat  Category
	// FLOPs is the floating-point work of the kernel.
	FLOPs float64
	// Bytes is total device-memory traffic (reads + writes).
	Bytes float64
	// Parallelism is the number of independent work items the kernel can
	// spread across execution units (e.g. number of gTasks, rows, edges).
	// Zero means fully parallel.
	Parallelism float64
	// TensorCore selects the dense-matmul peak instead of the SIMT peak.
	// Only batched matrix work qualifies (paper §5.3: batching enables
	// tensor cores).
	TensorCore bool
	// UnitTimes, if non-nil, gives per-work-item times; the kernel's
	// duration is then the makespan of list-scheduling those items onto
	// NumUnits units (models the long-tail effect of outlier gTasks).
	UnitTimes []float64
}

// Time returns the modeled duration of k on spec (excluding launch).
func (s Spec) Time(k Kernel) float64 {
	if k.UnitTimes != nil {
		return Makespan(k.UnitTimes, s.NumUnits)
	}
	peak := s.SIMTFLOPS
	if k.TensorCore {
		peak = s.TensorCoreFLOPS
	}
	eff := 1.0
	if k.Parallelism > 0 && k.Parallelism < float64(s.NumUnits) {
		eff = k.Parallelism / float64(s.NumUnits)
	}
	tc := 0.0
	if k.FLOPs > 0 {
		tc = k.FLOPs / (peak * eff)
	}
	tm := 0.0
	if k.Bytes > 0 {
		tm = k.Bytes / s.MemBandwidth
	}
	if tm > tc {
		return tm
	}
	return tc
}

// Makespan list-schedules per-item times onto units in the given order
// (each item goes to the earliest-free unit) and returns the finish time.
// Order matters: scheduling long items late produces the long-tail effect
// the paper's differentiated execution removes.
func Makespan(times []float64, units int) float64 {
	if units < 1 {
		units = 1
	}
	if len(times) == 0 {
		return 0
	}
	// Earliest-free-unit scheduling with a small binary heap.
	h := make([]float64, units)
	for _, t := range times {
		// pop min (h[0]), add t, push back
		h[0] += t
		siftDown(h)
	}
	var max float64
	for _, v := range h {
		if v > max {
			max = v
		}
	}
	return max
}

func siftDown(h []float64) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// LPTMakespan schedules items longest-processing-time-first, the balanced
// order differentiated scheduling approximates by raising overfill-gTask
// priority.
func LPTMakespan(times []float64, units int) float64 {
	s := append([]float64(nil), times...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return Makespan(s, units)
}

// KernelStats accumulates the timing-model accounting for one kernel
// name — the per-kernel breakdown the observability layer exposes on
// /metrics (FeatGraph-style per-kernel characterization).
type KernelStats struct {
	Launches   int64
	SimSeconds float64
	FLOPs      float64
	Bytes      float64
}

// Device accumulates simulated time and traffic across kernel launches.
// It is safe for concurrent use.
type Device struct {
	Spec Spec

	mu       sync.Mutex
	simTime  float64
	kernels  int64
	flops    float64
	bytes    float64
	byCat    [numCategories]float64
	byKernel map[string]*KernelStats

	// fault accounting: injected launch failures are modeled as a
	// relaunch (the launch overhead and kernel time are paid twice) and
	// injected stragglers as extra kernel time. The numeric work always
	// runs exactly once — faults perturb the timing model, never results.
	relaunches       int64
	stragglerSeconds float64
}

// New returns a device with the given spec.
func New(spec Spec) *Device {
	return &Device{Spec: spec, byKernel: make(map[string]*KernelStats)}
}

// Launch accounts kernel k and, if body is non-nil, executes it for real.
// The modeled time includes the fixed launch overhead — the cost the
// tensor-centric approach pays once per operation and fused gTask kernels
// pay once per partition.
func (d *Device) Launch(k Kernel, body func()) {
	if body != nil {
		body()
	}
	t := d.Spec.LaunchOverhead + d.Spec.Time(k)
	var relaunch int64
	var straggle float64
	if f := fault.Check(fault.SiteDeviceLaunch); f != nil {
		switch f.Kind {
		case fault.KindError, fault.KindCorrupt:
			// Failed (or corrupted-and-discarded) launch: the retry pays
			// the whole kernel again.
			relaunch, t = 1, 2*t
		case fault.KindLatency:
			straggle = f.Delay.Seconds()
			t += straggle
		}
	}
	d.mu.Lock()
	d.relaunches += relaunch
	d.stragglerSeconds += straggle
	d.simTime += t
	d.kernels++
	d.flops += k.FLOPs
	d.bytes += k.Bytes
	if k.Cat >= 0 && k.Cat < numCategories {
		d.byCat[k.Cat] += t
	}
	ks := d.byKernel[k.Name]
	if ks == nil {
		// One allocation per distinct kernel name for the device's
		// lifetime; steady-state launches only update counters in place.
		ks = &KernelStats{}
		if d.byKernel == nil {
			d.byKernel = make(map[string]*KernelStats)
		}
		d.byKernel[k.Name] = ks
	}
	ks.Launches++
	ks.SimSeconds += t
	ks.FLOPs += k.FLOPs
	ks.Bytes += k.Bytes
	d.mu.Unlock()
}

// AddTime adds raw modeled seconds in a category without a kernel launch
// (used by the communication model).
func (d *Device) AddTime(cat Category, seconds float64) {
	d.mu.Lock()
	d.simTime += seconds
	if cat >= 0 && cat < numCategories {
		d.byCat[cat] += seconds
	}
	d.mu.Unlock()
}

// Stats is a snapshot of accumulated accounting.
type Stats struct {
	SimSeconds float64
	Kernels    int64
	FLOPs      float64
	Bytes      float64
	ByCategory map[string]float64
	// Relaunches counts injected launch failures absorbed by relaunching;
	// StragglerSeconds is the simulated time injected latency spikes added.
	Relaunches       int64
	StragglerSeconds float64
}

// Stats returns a snapshot.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	by := make(map[string]float64, int(numCategories))
	for c := Category(0); c < numCategories; c++ {
		if d.byCat[c] != 0 {
			by[c.String()] = d.byCat[c]
		}
	}
	return Stats{
		SimSeconds: d.simTime, Kernels: d.kernels, FLOPs: d.flops, Bytes: d.bytes, ByCategory: by,
		Relaunches: d.relaunches, StragglerSeconds: d.stragglerSeconds,
	}
}

// KernelStats returns a snapshot of the per-kernel-name accounting.
func (d *Device) KernelStats() map[string]KernelStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]KernelStats, len(d.byKernel))
	for name, ks := range d.byKernel {
		out[name] = *ks
	}
	return out
}

// Reset zeroes all counters.
func (d *Device) Reset() {
	d.mu.Lock()
	d.simTime, d.kernels, d.flops, d.bytes = 0, 0, 0, 0
	d.relaunches, d.stragglerSeconds = 0, 0
	d.byCat = [numCategories]float64{}
	d.byKernel = make(map[string]*KernelStats)
	d.mu.Unlock()
}

// ComputeMemoryRatio returns accumulated FLOPs per byte, the metric of the
// paper's Figure 3(a).
func (d *Device) ComputeMemoryRatio() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.bytes == 0 {
		return 0
	}
	return d.flops / d.bytes
}

// RooflineRatio returns the spec's balance point (FLOPs per byte at which
// compute and memory time are equal on the SIMT path) — the "optimal"
// line in Figure 3(a).
func (s Spec) RooflineRatio() float64 { return s.SIMTFLOPS / s.MemBandwidth }

// String describes the spec.
func (s Spec) String() string {
	return fmt.Sprintf("%s{%.0fTF simt, %.0fTF tc, %.0fGB/s, %d units}",
		s.Name, s.SIMTFLOPS/1e12, s.TensorCoreFLOPS/1e12, s.MemBandwidth/1e9, s.NumUnits)
}
