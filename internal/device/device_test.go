package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeComputeVsMemoryBound(t *testing.T) {
	s := Spec{SIMTFLOPS: 1e12, TensorCoreFLOPS: 8e12, MemBandwidth: 1e11, NumUnits: 100}
	// compute-bound: 1e12 FLOPs, tiny bytes → 1 second
	tc := s.Time(Kernel{FLOPs: 1e12, Bytes: 1})
	if math.Abs(tc-1) > 1e-9 {
		t.Fatalf("compute-bound time = %v, want 1", tc)
	}
	// memory-bound: tiny FLOPs, 1e11 bytes → 1 second
	tm := s.Time(Kernel{FLOPs: 1, Bytes: 1e11})
	if math.Abs(tm-1) > 1e-9 {
		t.Fatalf("memory-bound time = %v, want 1", tm)
	}
	// max, not sum
	both := s.Time(Kernel{FLOPs: 1e12, Bytes: 1e11})
	if math.Abs(both-1) > 1e-9 {
		t.Fatalf("roofline must take max: %v", both)
	}
}

func TestTensorCorePathFaster(t *testing.T) {
	s := A100()
	k := Kernel{FLOPs: 1e12}
	slow := s.Time(k)
	k.TensorCore = true
	fast := s.Time(k)
	if fast >= slow {
		t.Fatalf("tensor-core path must be faster: %v vs %v", fast, slow)
	}
	if math.Abs(slow/fast-s.TensorCoreFLOPS/s.SIMTFLOPS) > 0.01 {
		t.Fatalf("speedup %v, want %v", slow/fast, s.TensorCoreFLOPS/s.SIMTFLOPS)
	}
}

func TestLowParallelismPenalty(t *testing.T) {
	s := A100()
	full := s.Time(Kernel{FLOPs: 1e12, Parallelism: float64(s.NumUnits)})
	half := s.Time(Kernel{FLOPs: 1e12, Parallelism: float64(s.NumUnits) / 2})
	single := s.Time(Kernel{FLOPs: 1e12, Parallelism: 1})
	if !(single > half && half > full) {
		t.Fatalf("parallelism penalty not monotone: %v %v %v", single, half, full)
	}
	if math.Abs(half/full-2) > 0.01 {
		t.Fatalf("half parallelism should double time: %v", half/full)
	}
}

func TestMakespanBasics(t *testing.T) {
	// 4 equal items on 2 units → 2 rounds
	if m := Makespan([]float64{1, 1, 1, 1}, 2); math.Abs(m-2) > 1e-9 {
		t.Fatalf("makespan = %v, want 2", m)
	}
	// long item last creates a tail: [1,1,1,9] on 2 units in order → 1+9=10
	tail := Makespan([]float64{1, 1, 1, 9}, 2)
	lpt := LPTMakespan([]float64{1, 1, 1, 9}, 2)
	if lpt >= tail {
		t.Fatalf("LPT must beat in-order for tail-heavy loads: %v vs %v", lpt, tail)
	}
	if math.Abs(lpt-9) > 1e-9 {
		t.Fatalf("LPT makespan = %v, want 9", lpt)
	}
	if Makespan(nil, 4) != 0 {
		t.Fatal("empty makespan must be 0")
	}
}

func TestMakespanSingleUnitIsSum(t *testing.T) {
	m := Makespan([]float64{1, 2, 3}, 1)
	if math.Abs(m-6) > 1e-9 {
		t.Fatalf("single unit = %v, want 6", m)
	}
}

func TestDeviceAccumulation(t *testing.T) {
	d := New(Spec{SIMTFLOPS: 1e12, TensorCoreFLOPS: 1e12, MemBandwidth: 1e12, LaunchOverhead: 0.5, NumUnits: 1})
	ran := false
	d.Launch(Kernel{Name: "k1", Cat: CatNeural, FLOPs: 1e12}, func() { ran = true })
	if !ran {
		t.Fatal("body must execute")
	}
	d.Launch(Kernel{Name: "k2", Cat: CatIndexing, Bytes: 1e12}, nil)
	st := d.Stats()
	if st.Kernels != 2 {
		t.Fatalf("kernels = %d", st.Kernels)
	}
	// each kernel: 0.5 launch + 1.0 work
	if math.Abs(st.SimSeconds-3) > 1e-9 {
		t.Fatalf("sim time = %v, want 3", st.SimSeconds)
	}
	if math.Abs(st.ByCategory["neural"]-1.5) > 1e-9 || math.Abs(st.ByCategory["indexing"]-1.5) > 1e-9 {
		t.Fatalf("category split: %v", st.ByCategory)
	}
	if d.ComputeMemoryRatio() != 1 {
		t.Fatalf("compute/memory = %v", d.ComputeMemoryRatio())
	}
	d.Reset()
	if d.Stats().SimSeconds != 0 || d.Stats().Kernels != 0 {
		t.Fatal("reset failed")
	}
}

func TestAddTime(t *testing.T) {
	d := New(A100())
	d.AddTime(CatComm, 2.5)
	st := d.Stats()
	if st.SimSeconds != 2.5 || st.ByCategory["comm"] != 2.5 {
		t.Fatalf("AddTime accounting: %+v", st)
	}
}

func TestA100SanityNumbers(t *testing.T) {
	s := A100()
	if s.TensorCoreFLOPS <= s.SIMTFLOPS {
		t.Fatal("tensor core peak must exceed SIMT peak")
	}
	if s.RooflineRatio() < 5 || s.RooflineRatio() > 50 {
		t.Fatalf("A100 balance point %v FLOP/B out of plausible range", s.RooflineRatio())
	}
}

// Property: makespan is bounded below by both max(item) and sum/units, and
// above by sum (classic list-scheduling bounds).
func TestPropMakespanBounds(t *testing.T) {
	f := func(raw []uint16, unitsSmall uint8) bool {
		if len(raw) == 0 {
			return true
		}
		units := int(unitsSmall%8) + 1
		times := make([]float64, len(raw))
		var sum, max float64
		for i, r := range raw {
			times[i] = float64(r%1000) / 100
			sum += times[i]
			if times[i] > max {
				max = times[i]
			}
		}
		m := Makespan(times, units)
		lower := sum / float64(units)
		if max > lower {
			lower = max
		}
		return m >= lower-1e-9 && m <= sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: LPT satisfies Graham's list-scheduling bound
// makespan ≤ sum/m + (m-1)/m · maxItem, which holds for ANY order —
// unlike the 4/3 ratio, this is checkable without knowing OPT.
func TestPropLPTQuality(t *testing.T) {
	f := func(raw []uint16, unitsSmall uint8) bool {
		if len(raw) == 0 {
			return true
		}
		units := int(unitsSmall%8) + 1
		times := make([]float64, len(raw))
		var sum, max float64
		for i, r := range raw {
			times[i] = float64(r%1000)/100 + 0.01
			sum += times[i]
			if times[i] > max {
				max = times[i]
			}
		}
		m := float64(units)
		bound := sum/m + (m-1)/m*max
		return LPTMakespan(times, units) <= bound+1e-9 &&
			Makespan(times, units) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelStats checks the per-kernel-name accounting that feeds the
// /metrics per-gTask kernel counters.
func TestKernelStats(t *testing.T) {
	d := New(A100())
	k1 := Kernel{Name: "gtask.fused", Cat: CatNeural, FLOPs: 1e9, Bytes: 1e6}
	k2 := Kernel{Name: "sage.self", Cat: CatNeural, FLOPs: 2e9, Bytes: 2e6, TensorCore: true}
	d.Launch(k1, nil)
	d.Launch(k1, nil)
	d.Launch(k2, nil)

	ks := d.KernelStats()
	if len(ks) != 2 {
		t.Fatalf("got %d kernel entries, want 2: %v", len(ks), ks)
	}
	fused := ks["gtask.fused"]
	if fused.Launches != 2 || fused.FLOPs != 2e9 || fused.Bytes != 2e6 {
		t.Errorf("gtask.fused stats = %+v", fused)
	}
	wantT := 2 * (d.Spec.LaunchOverhead + d.Spec.Time(k1))
	if math.Abs(fused.SimSeconds-wantT) > 1e-12 {
		t.Errorf("gtask.fused SimSeconds = %v, want %v", fused.SimSeconds, wantT)
	}
	if ks["sage.self"].Launches != 1 {
		t.Errorf("sage.self launches = %d, want 1", ks["sage.self"].Launches)
	}
	// Snapshot is a copy: mutating it must not affect the device.
	fused.Launches = 99
	if d.KernelStats()["gtask.fused"].Launches != 2 {
		t.Error("KernelStats snapshot aliases internal state")
	}
	// Zero-value Device (no New) must not panic.
	var dz Device
	dz.Spec = A100()
	dz.Launch(k1, nil)
	if dz.KernelStats()["gtask.fused"].Launches != 1 {
		t.Error("zero-value Device did not account the kernel")
	}
	d.Reset()
	if len(d.KernelStats()) != 0 {
		t.Error("Reset did not clear kernel stats")
	}
}
