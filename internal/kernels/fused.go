package kernels

import (
	"fmt"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/dfg"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// fusedEngine streams each destination run of a gTask exactly once:
// a source row is gathered, multiplied, and added into a register-resident
// destination accumulator, with one accumulator load + store per run
// instead of one read-modify-write per edge and no per-edge [E,F']
// intermediate. Tasks are visited in partition order and contributions
// within a run in task-edge order, so the floating-point summation order —
// and therefore every output bit — is identical to the blocked engine for
// every graph plan, operation plan, and worker count.
type fusedEngine struct{}

func (fusedEngine) Name() string { return "fused" }

func (fusedEngine) Probe(kind nn.ModelKind, plan core.GraphPlan) error {
	return probePlan(kind, plan)
}

func (fusedEngine) LayerBytes(sh LayerShape, part *core.Partition, plan Plan) float64 {
	var total float64
	for ti := 0; ti < part.NumTasks(); ti++ {
		runs := taskRuns(part.Graph.Dst, part.TaskEdges(ti))
		total += fusedTaskBytes(sh, StatsOf(part, ti), runs, plan)
	}
	return total
}

func (fusedEngine) RunLayer(ctx *exec.Ctx, gc *nn.GraphCtx, layer nn.Layer, sh LayerShape, x *tensor.Tensor, part *core.Partition, plan Plan) (*tensor.Tensor, error) {
	for _, k := range DenseKernels(sh, gc.NumVertices()) {
		ctx.Launch(k, nil)
	}
	// One streaming kernel per layer. Arithmetic work is unchanged from
	// the blocked program (the same multiplies and adds run, in the same
	// order); only the traffic model differs.
	prog := Compose(sh, plan)
	n := part.NumTasks()
	times := make([]float64, n)
	var flops, bytes float64
	for ti := 0; ti < n; ti++ {
		st := StatsOf(part, ti)
		runs := taskRuns(part.Graph.Dst, part.TaskEdges(ti))
		tf, _ := prog.Totals(st)
		tb := fusedTaskBytes(sh, st, runs, plan)
		flops += tf
		bytes += tb
		times[ti] = perUnit(ctx.Dev.Spec, tf, tb, prog.TC(st))
	}
	ctx.Launch(device.Kernel{
		Name: "gtask.stream", Cat: device.CatNeural,
		FLOPs: flops, Bytes: bytes, UnitTimes: times,
	}, nil)
	if !ctx.Compute {
		return nil, nil
	}
	return computeLayerFused(gc, layer, x, part, plan)
}

// taskRuns counts the maximal same-destination edge runs in one task — the
// fused engine's streaming granularity (one accumulator load/store each).
func taskRuns(dst []int32, edges []int32) int {
	runs := 0
	for i := 0; i < len(edges); {
		d := dst[edges[i]]
		j := i + 1
		for j < len(edges) && dst[edges[j]] == d {
			j++
		}
		runs++
		i = j
	}
	return runs
}

// forEachTaskRun visits every edge task by task, grouped into maximal
// same-destination runs (consecutive task edges sharing a dst). Run order
// and within-run edge order match forEachTaskEdge exactly.
func forEachTaskRun(part *core.Partition, dst []int32, fn func(d int32, run []int32)) {
	for ti := 0; ti < part.NumTasks(); ti++ {
		edges := part.TaskEdges(ti)
		for i := 0; i < len(edges); {
			d := dst[edges[i]]
			j := i + 1
			for j < len(edges) && dst[edges[j]] == d {
				j++
			}
			fn(d, edges[i:j])
			i = j
		}
	}
}

// singleRunPerDst reports whether every destination's edges form exactly
// one run across the whole partition — the condition under which SAGE's
// neighbor mean never needs the [V,F] aggregation buffer at all (each
// accumulator is complete when its run ends, so it can flow straight into
// the dense transform).
func singleRunPerDst(part *core.Partition, dst []int32, v int) bool {
	seen := make([]bool, v)
	ok := true
	forEachTaskRun(part, dst, func(d int32, _ []int32) {
		if seen[d] {
			ok = false
		}
		seen[d] = true
	})
	return ok
}

// vecMatAcc accumulates dst += a·w for one row vector a, walking k in
// ascending order and skipping zero activations — the exact element-order
// contract of tensor.MatMulAcc's inner loop, so a per-row call is
// bitwise-identical to the blocked whole-matrix call.
func vecMatAcc(dst, a []float32, w *tensor.Tensor) {
	n := w.Dim(1)
	for k, av := range a {
		if av == 0 {
			continue
		}
		wr := w.Data()[k*n : (k+1)*n]
		for j, wv := range wr {
			dst[j] += av * wv
		}
	}
}

// computeLayerFused is the streaming computation over gTasks. Every branch
// is bitwise-equal to computeLayer: a run-local accumulator that loads the
// current output row, adds contributions in task-edge order and stores the
// row back performs the identical additions in the identical order as the
// blocked per-edge read-modify-write.
func computeLayerFused(gc *nn.GraphCtx, layer nn.Layer, x *tensor.Tensor, part *core.Partition, plan Plan) (*tensor.Tensor, error) {
	g := gc.G
	invDeg := invDegOf(g)
	switch l := layer.(type) {
	case *nn.GCNLayer:
		xw := tensor.MatMul(tensor.Get(x.Dim(0), l.OutDim()), x, l.W.Value)
		defer tensor.Put(xw)
		out := tensor.Get(g.NumVertices, l.OutDim())
		acc := make([]float32, l.OutDim())
		forEachTaskRun(part, g.Dst, func(d int32, run []int32) {
			or := out.Row(int(d))
			copy(acc, or)
			for _, e := range run {
				w := invDeg(e)
				for j, v := range xw.Row(int(g.Src[e])) {
					acc[j] += w * v
				}
			}
			copy(or, acc)
		})
		tensor.AddBias(out, l.B.Value)
		return out, nil

	case *nn.SAGELayer:
		out := tensor.MatMul(tensor.Get(x.Dim(0), l.OutDim()), x, l.WSelf.Value)
		acc := make([]float32, l.InDim())
		if singleRunPerDst(part, g.Dst, g.NumVertices) {
			// Zero-materialization fast path: the neighbor mean lives
			// only in the accumulator and feeds the dense transform the
			// moment its run completes.
			forEachTaskRun(part, g.Dst, func(d int32, run []int32) {
				for j := range acc {
					acc[j] = 0
				}
				for _, e := range run {
					w := invDeg(e)
					for j, v := range x.Row(int(g.Src[e])) {
						acc[j] += w * v
					}
				}
				vecMatAcc(out.Row(int(d)), acc, l.WNeigh.Value)
			})
		} else {
			// A destination's edges fragment across runs: partial means
			// must meet in memory before the dense transform (the partial
			// products Σ₁·W + Σ₂·W would not be bitwise (Σ₁+Σ₂)·W), so
			// keep the [V,F] buffer but stream each run through the
			// accumulator.
			agg := tensor.Get(g.NumVertices, l.InDim())
			defer tensor.Put(agg)
			forEachTaskRun(part, g.Dst, func(d int32, run []int32) {
				ar := agg.Row(int(d))
				copy(acc, ar)
				for _, e := range run {
					w := invDeg(e)
					for j, v := range x.Row(int(g.Src[e])) {
						acc[j] += w * v
					}
				}
				copy(ar, acc)
			})
			tensor.MatMulAcc(out, agg, l.WNeigh.Value)
		}
		tensor.AddBias(out, l.B.Value)
		return out, nil

	case *nn.RGCNLayer:
		return computeRGCNFused(g, l, x, part, plan, invDeg)

	case *nn.GATLayer:
		return computeGATFused(gc, l, x, part)

	case *nn.SAGELSTMLayer:
		// The recurrence already streams one source row per step and
		// holds (h, c) in registers; there is nothing left to fuse.
		return computeLSTM(g, l, x, part)
	}
	return nil, fmt.Errorf("kernels: unsupported layer type %T", layer)
}

// computeRGCNFused keeps the dedup'd outer-product micro-kernel (the
// duplicated-data DFG transformation must survive fusion) but streams the
// scatter through run accumulators instead of per-edge read-modify-writes.
func computeRGCNFused(g *graphT, l *nn.RGCNLayer, x *tensor.Tensor, part *core.Partition, plan Plan, invDeg func(int32) float32) (*tensor.Tensor, error) {
	in, outDim := l.InDim(), l.OutDim()
	out := tensor.MatMul(tensor.Get(x.Dim(0), outDim), x, l.WSelf.Value)
	acc := make([]float32, outDim)
	msg := make([]float32, outDim)
	for ti := 0; ti < part.NumTasks(); ti++ {
		edges := part.TaskEdges(ti)
		if plan.Dedup {
			srcs := make([]int32, len(edges))
			typs := make([]int32, len(edges))
			for i, e := range edges {
				srcs[i] = g.Src[e]
				typs[i] = g.EdgeType(int(e))
			}
			uSrc, mSrc := dfg.UniqueExtract(srcs)
			uTyp, mTyp := dfg.UniqueExtract(typs)
			prod := tensor.Get(len(uSrc), len(uTyp), outDim)
			for i, sv := range uSrc {
				xr := x.Row(int(sv))
				for j, tv := range uTyp {
					w := tensor.FromSlice(l.W.Value.Data()[int(tv)*in*outDim:(int(tv)+1)*in*outDim], in, outDim)
					tensor.VecMat(prod.Data()[(i*len(uTyp)+j)*outDim:(i*len(uTyp)+j+1)*outDim], xr, w)
				}
			}
			for i := 0; i < len(edges); {
				d := g.Dst[edges[i]]
				j := i + 1
				for j < len(edges) && g.Dst[edges[j]] == d {
					j++
				}
				or := out.Row(int(d))
				copy(acc, or)
				for k := i; k < j; k++ {
					pr := prod.Data()[(int(mSrc[k])*len(uTyp)+int(mTyp[k]))*outDim : (int(mSrc[k])*len(uTyp)+int(mTyp[k])+1)*outDim]
					w := invDeg(edges[k])
					for jj, v := range pr {
						acc[jj] += w * v
					}
				}
				copy(or, acc)
				i = j
			}
			tensor.Put(prod)
		} else {
			for i := 0; i < len(edges); {
				d := g.Dst[edges[i]]
				j := i + 1
				for j < len(edges) && g.Dst[edges[j]] == d {
					j++
				}
				or := out.Row(int(d))
				copy(acc, or)
				for k := i; k < j; k++ {
					e := edges[k]
					tv := g.EdgeType(int(e))
					w := tensor.FromSlice(l.W.Value.Data()[int(tv)*in*outDim:(int(tv)+1)*in*outDim], in, outDim)
					tensor.VecMat(msg, x.Row(int(g.Src[e])), w)
					we := invDeg(e)
					for jj, v := range msg {
						acc[jj] += we * v
					}
				}
				copy(or, acc)
				i = j
			}
		}
	}
	tensor.AddBias(out, l.B.Value)
	return out, nil
}

// computeGATFused shares the exact score/softmax phases with the blocked
// path (normalization must be global per destination regardless of task
// splits) and streams only the weighted aggregation through run
// accumulators. The per-head attention coefficients stay materialized in
// [E,heads] — heads ≪ F', so this is not the traffic the fusion targets.
func computeGATFused(gc *nn.GraphCtx, l *nn.GATLayer, x *tensor.Tensor, part *core.Partition) (*tensor.Tensor, error) {
	g := gc.G
	heads := l.Heads()
	dh := l.OutDim() / heads
	z, score, sum := gatScores(gc, l, x, part)
	defer tensor.Put(z)
	defer tensor.Put(score)
	defer tensor.Put(sum)
	out := tensor.Get(g.NumVertices, l.OutDim())
	acc := make([]float32, l.OutDim())
	forEachTaskRun(part, g.Dst, func(d int32, run []int32) {
		or := out.Row(int(d))
		copy(acc, or)
		su := sum.Row(int(d))
		for _, ei := range run {
			sr := score.Row(int(ei))
			zr := z.Row(int(g.Src[ei]))
			for h := 0; h < heads; h++ {
				if su[h] == 0 {
					continue
				}
				a := sr[h] / su[h]
				for dd := 0; dd < dh; dd++ {
					acc[h*dh+dd] += a * zr[h*dh+dd]
				}
			}
		}
		copy(or, acc)
	})
	tensor.AddBias(out, l.B.Value)
	return out, nil
}

// fusedTaskBytes models the streaming kernel's global-memory traffic for
// one task: source rows cross once per edge, the index arrays once, each
// destination run costs one accumulator load + store (instead of a
// read-modify-write per edge), and weights stay resident across the task —
// no per-edge [e,F'] store/reload and no per-edge weight refetch.
func fusedTaskBytes(sh LayerShape, st TaskStatsOf, runs int, plan Plan) float64 {
	f, fp := float64(sh.F), float64(sh.Fp)
	e := float64(st.Edges)
	r := float64(runs)
	switch sh.Kind {
	case nn.GCN, nn.SAGE:
		w := fp
		if sh.Kind == nn.SAGE {
			w = f
		}
		return (e*w + e + 2*r*w) * fb
	case nn.RGCN:
		if plan.Dedup {
			// pair products written once, re-read per edge through the
			// dedup maps; run accumulators replace per-edge rmw
			pairs := float64(st.UniqSrc) * float64(st.UniqType)
			return (float64(st.UniqSrc)*f + float64(st.UniqType)*f*fp +
				pairs*fp + e*fp + 2*e + 2*r*fp) * fb
		}
		return (e*f + float64(st.UniqType)*f*fp + e + 2*r*fp) * fb
	case nn.GAT:
		return (e*fp + 4*e + 2*r*fp) * fb
	case nn.SAGELSTM:
		// Identical execution to blocked (see computeLayerFused), so
		// identical traffic.
		_, b := Compose(sh, plan).Totals(st)
		return b
	}
	return 0
}
