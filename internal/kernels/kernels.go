// Package kernels is WiseGraph's gTask executor: it runs a GNN layer as
// one fused kernel whose work items are the gTasks of a graph partition
// plan, with micro-kernels composed per the operation partition plan
// (paper §5.3). Batched data patterns select batched (tensor-core-
// eligible) micro-kernel implementations; duplicated data patterns enable
// the dedup'd (transformed-DFG) compute; tasks without batched data fall
// back to edge-by-edge processing.
//
// The package provides both the per-task cost model (consumed by the
// joint optimizer and the bench harness) and a real fused computation
// path that is cross-checked against the reference layers.
package kernels

import (
	"fmt"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/nn"
)

// Plan is an operation partition plan for a given graph partition.
type Plan struct {
	// Dedup applies the duplicated-data DFG transformation: compute per
	// unique (src[,type]) value instead of per edge.
	Dedup bool
	// Batched selects batched micro-kernels; false forces edge-by-edge
	// processing (the paper's Figure 10b vs 10c).
	Batched bool
}

// String renders the plan.
func (p Plan) String() string {
	return fmt.Sprintf("opplan{dedup=%v batched=%v}", p.Dedup, p.Batched)
}

// TaskCost is the modeled cost of one gTask under a plan.
type TaskCost struct {
	Edges   int
	FLOPs   float64
	Bytes   float64
	Seconds float64 // on one execution unit
}

// LayerShape carries the dimensions task costing needs.
type LayerShape struct {
	Kind  nn.ModelKind
	F, Fp int
	Types int
}

const fb = 4.0

// perUnit returns time of (flops, bytes) on a single execution unit, on
// the tensor-core path when tc is set and the batch is large enough.
func perUnit(spec device.Spec, flops, bytes float64, tc bool) float64 {
	units := float64(spec.NumUnits)
	peak := spec.SIMTFLOPS
	if tc {
		peak = spec.TensorCoreFLOPS
	}
	t := flops / (peak / units)
	if tm := bytes / (spec.MemBandwidth / units); tm > t {
		t = tm
	}
	return t
}

// TaskStatsOf extracts the per-task statistics costing needs.
type TaskStatsOf struct {
	Edges    int
	UniqSrc  int
	UniqDst  int
	UniqType int
	MaxDeg   int // largest per-dst edge count inside the task
}

// StatsOf reads task ti's statistics from the partition. Attributes not
// collected default to worst case (no duplication).
func StatsOf(p *core.Partition, ti int) TaskStatsOf {
	s := TaskStatsOf{Edges: p.TaskLen(ti)}
	get := func(a core.Attr) int {
		if p.Uniq[a] == nil {
			return s.Edges
		}
		return int(p.TaskUniq(ti, a))
	}
	s.UniqSrc = get(core.AttrSrcID)
	s.UniqDst = get(core.AttrDstID)
	s.UniqType = get(core.AttrEdgeType)
	// Max per-dst run length: edges of one dst are contiguous when dst
	// participates in the sort key; approximate with edges/uniqDst and
	// refine with an exact scan for LSTM costing (padding waste).
	s.MaxDeg = (s.Edges + s.UniqDst - 1) / s.UniqDst
	return s
}

// CostTask prices one gTask by composing its micro-kernel program
// (paper §5.3) and summing the stages' work. The data patterns select
// the program: batched data picks batch-loading micro-kernels, duplicated
// data the unique-loading + shared-compute ones, and their absence the
// edge-by-edge fallback.
func CostTask(spec device.Spec, sh LayerShape, st TaskStatsOf, plan Plan) TaskCost {
	prog := Compose(sh, plan)
	flops, bytes := prog.Totals(st)
	return TaskCost{
		Edges:   st.Edges,
		FLOPs:   flops,
		Bytes:   bytes,
		Seconds: perUnit(spec, flops, bytes, prog.TC(st)),
	}
}

// CostPartition prices every task of a partition.
func CostPartition(spec device.Spec, p *core.Partition, sh LayerShape, plan Plan) []TaskCost {
	out := make([]TaskCost, p.NumTasks())
	for ti := range out {
		out[ti] = CostTask(spec, sh, StatsOf(p, ti), plan)
	}
	return out
}

// DenseKernels returns the per-layer dense kernels WiseGraph launches
// outside the fused gTask kernel (the shared transforms: XW for GCN,
// self/neigh weights, GAT projections). These run on tensor cores at full
// efficiency for every strategy.
func DenseKernels(sh LayerShape, v int) []device.Kernel {
	f := float64(sh.F)
	fp := float64(sh.Fp)
	vf := float64(v)
	mm := func(name string, m, k, n float64) device.Kernel {
		return device.Kernel{Name: name, Cat: device.CatNeural, TensorCore: true,
			FLOPs: 2 * m * k * n, Bytes: (m*k + k*n + m*n) * fb}
	}
	switch sh.Kind {
	case nn.GCN:
		return []device.Kernel{mm("gcn.xw", vf, f, fp)}
	case nn.SAGE:
		return []device.Kernel{mm("sage.self", vf, f, fp), mm("sage.neigh", vf, f, fp)}
	case nn.RGCN:
		return []device.Kernel{mm("rgcn.self", vf, f, fp)}
	case nn.GAT:
		return []device.Kernel{
			mm("gat.z", vf, f, fp),
			mm("gat.proj", vf, fp, 2),
		}
	case nn.SAGELSTM:
		return []device.Kernel{mm("lstm.self", vf, f, fp), mm("lstm.neigh", vf, fp, fp)}
	}
	return nil
}

// ValidPlanFor reports whether a graph partition plan can legally execute
// the model: SAGE-LSTM's recurrent aggregation needs each destination's
// edges contiguous in one task and in stable order, i.e. a plan whose
// restrictions include dst-id and do not reorder within a destination.
func ValidPlanFor(kind nn.ModelKind, plan core.GraphPlan) bool {
	if kind != nn.SAGELSTM {
		return true
	}
	if _, ok := plan.Restricted(core.AttrDstID); !ok {
		return false
	}
	// sorting by src-id inside a dst would permute the LSTM sequence
	if _, ok := plan.Restricted(core.AttrSrcID); ok {
		return false
	}
	// a per-dst edge cap splits a sequence across tasks
	if _, ok := plan.Restricted(core.AttrEdgeID); ok {
		return false
	}
	return true
}
