package kernels

import (
	"fmt"
	"strings"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// Engine is one strategy for executing a GNN layer over the gTasks of a
// graph partition. All engines are bitwise-identical in their numeric
// output — they differ only in dataflow (how many times each operand
// crosses memory) and in the kernels they account against the simulated
// device:
//
//   - "blocked": the reference gather → matmul → scatter-add passes, one
//     cost-model kernel per layer (the historical path).
//   - "fused": streams each destination run exactly once — source rows are
//     gathered, multiplied and accumulated into a register-resident
//     destination accumulator without materializing the per-edge [E,F']
//     intermediate.
//   - "device": blocked numerics, but every micro-kernel stage of the
//     composed program (micro.go) is launched as its own named kernel so
//     device.KernelStats exposes a per-stage breakdown that can be checked
//     against the fused engine's bytes-moved model.
type Engine interface {
	// Name is the stable identifier used by -engine flags and benchmarks.
	Name() string
	// Probe reports whether the engine can execute the model under the
	// graph partition plan. A nil error is a commitment: RunLayer must
	// then produce output bitwise-equal to the blocked engine.
	Probe(kind nn.ModelKind, plan core.GraphPlan) error
	// RunLayer accounts and (when ctx.Compute) computes one layer.
	RunLayer(ctx *exec.Ctx, gc *nn.GraphCtx, layer nn.Layer, sh LayerShape, x *tensor.Tensor, part *core.Partition, plan Plan) (*tensor.Tensor, error)
	// LayerBytes returns the engine's modeled global-memory traffic for
	// one layer's aggregation path (the fused gTask kernel; the shared
	// dense transforms are identical across engines and excluded).
	LayerBytes(sh LayerShape, part *core.Partition, plan Plan) float64
}

// EngineNames lists the selectable engines in stable order.
func EngineNames() []string { return []string{"blocked", "fused", "device"} }

// Select resolves an engine by name; "" selects the blocked reference.
func Select(name string) (Engine, error) {
	switch name {
	case "", "blocked":
		return blockedEngine{}, nil
	case "fused":
		return fusedEngine{}, nil
	case "device":
		return deviceEngine{}, nil
	}
	return nil, fmt.Errorf("kernels: unknown engine %q (have %s)", name, strings.Join(EngineNames(), "|"))
}

// probePlan is the shared capability check: every engine handles every
// model, subject to the plan-validity rules of ValidPlanFor.
func probePlan(kind nn.ModelKind, plan core.GraphPlan) error {
	if !ValidPlanFor(kind, plan) {
		return fmt.Errorf("kernels: plan %v cannot execute %v", plan, kind)
	}
	return nil
}

// composedLayerBytes sums the composed program's modeled traffic over the
// partition's tasks — the cost model's prediction for the paper's target
// fused kernel (what the device engine accounts stage by stage).
func composedLayerBytes(sh LayerShape, part *core.Partition, plan Plan) float64 {
	prog := Compose(sh, plan)
	var total float64
	for ti := 0; ti < part.NumTasks(); ti++ {
		_, b := prog.Totals(StatsOf(part, ti))
		total += b
	}
	return total
}

// blockedTaskBytes models the traffic of computeLayer's actual dataflow
// for one task: separate gather → transform → scatter passes where every
// edge costs a source-row read plus a destination-row read-modify-write
// (three row crossings per edge), RGCN's edge-by-edge path refetches the
// type weight per edge, and the dedup'd path materializes the pair-
// product buffer it then re-reads per edge.
func blockedTaskBytes(sh LayerShape, st TaskStatsOf, plan Plan) float64 {
	f, fp := float64(sh.F), float64(sh.Fp)
	e := float64(st.Edges)
	switch sh.Kind {
	case nn.GCN, nn.SAGE:
		w := fp
		if sh.Kind == nn.SAGE {
			w = f
		}
		return (3*e*w + e) * fb
	case nn.RGCN:
		if plan.Dedup {
			pairs := float64(st.UniqSrc) * float64(st.UniqType)
			return (float64(st.UniqSrc)*f + float64(st.UniqType)*f*fp +
				pairs*fp + e*fp + 2*e + 2*e*fp) * fb
		}
		// per edge: source row, per-edge weight refetch, message-buffer
		// write + read, destination read-modify-write, type id
		return (e*f + e*f*fp + 2*e*fp + 2*e*fp + e) * fb
	case nn.GAT:
		// aggregation pass: z row per edge, destination read-modify-
		// write, plus the score/softmax index traffic
		return (3*e*fp + 4*e) * fb
	case nn.SAGELSTM:
		// the recurrence streams identically under every engine
		_, b := Compose(sh, plan).Totals(st)
		return b
	}
	return 0
}

// blockedLayerBytes sums blockedTaskBytes over the partition.
func blockedLayerBytes(sh LayerShape, part *core.Partition, plan Plan) float64 {
	var total float64
	for ti := 0; ti < part.NumTasks(); ti++ {
		total += blockedTaskBytes(sh, StatsOf(part, ti), plan)
	}
	return total
}

// blockedEngine is the reference path: separate gather, matmul and
// scatter-add passes accounted as one fused cost-model kernel per layer.
type blockedEngine struct{}

func (blockedEngine) Name() string { return "blocked" }

func (blockedEngine) Probe(kind nn.ModelKind, plan core.GraphPlan) error {
	return probePlan(kind, plan)
}

func (blockedEngine) LayerBytes(sh LayerShape, part *core.Partition, plan Plan) float64 {
	return blockedLayerBytes(sh, part, plan)
}

func (blockedEngine) RunLayer(ctx *exec.Ctx, gc *nn.GraphCtx, layer nn.Layer, sh LayerShape, x *tensor.Tensor, part *core.Partition, plan Plan) (*tensor.Tensor, error) {
	// Shared dense transforms.
	for _, k := range DenseKernels(sh, gc.NumVertices()) {
		ctx.Launch(k, nil)
	}
	// Fused gTask kernel: one launch, tasks as work items.
	costs := CostPartition(ctx.Dev.Spec, part, sh, plan)
	times := make([]float64, len(costs))
	var flops, bytes float64
	for i, c := range costs {
		times[i] = c.Seconds
		flops += c.FLOPs
		bytes += c.Bytes
	}
	ctx.Launch(device.Kernel{
		Name: "gtask.fused", Cat: device.CatNeural,
		FLOPs: flops, Bytes: bytes, UnitTimes: times,
	}, nil)
	if !ctx.Compute {
		return nil, nil
	}
	return computeLayer(gc, layer, x, part, plan)
}

// deviceEngine runs blocked numerics but accounts the composed program
// stage by stage: each micro-kernel (load-src, load-ids, accumulate,
// store-edge, ...) is launched as its own kernel named "gtask.<stage>",
// with per-task unit times, so the cost model's stage-level predictions
// land in device.KernelStats where they can be diffed against the fused
// engine's bytes-moved claims.
type deviceEngine struct{}

func (deviceEngine) Name() string { return "device" }

func (deviceEngine) Probe(kind nn.ModelKind, plan core.GraphPlan) error {
	return probePlan(kind, plan)
}

func (deviceEngine) LayerBytes(sh LayerShape, part *core.Partition, plan Plan) float64 {
	return composedLayerBytes(sh, part, plan)
}

func (deviceEngine) RunLayer(ctx *exec.Ctx, gc *nn.GraphCtx, layer nn.Layer, sh LayerShape, x *tensor.Tensor, part *core.Partition, plan Plan) (*tensor.Tensor, error) {
	for _, k := range DenseKernels(sh, gc.NumVertices()) {
		ctx.Launch(k, nil)
	}
	prog := Compose(sh, plan)
	n := part.NumTasks()
	stats := make([]TaskStatsOf, n)
	for ti := range stats {
		stats[ti] = StatsOf(part, ti)
	}
	for _, s := range prog.Stages {
		var flops, bytes float64
		times := make([]float64, n)
		for ti, st := range stats {
			var sf, sb float64
			if s.FLOPs != nil {
				sf = s.FLOPs(st)
			}
			if s.Elems != nil {
				sb = s.Elems(st) * fb
			}
			flops += sf
			bytes += sb
			times[ti] = perUnit(ctx.Dev.Spec, sf, sb, s.Kind == StageCompute && prog.TC(st))
		}
		cat := device.CatIndexing
		if s.Kind == StageCompute || s.Kind == StageReduce {
			cat = device.CatNeural
		}
		ctx.Launch(device.Kernel{
			Name: "gtask." + s.Name, Cat: cat,
			FLOPs: flops, Bytes: bytes, UnitTimes: times,
		}, nil)
	}
	if !ctx.Compute {
		return nil, nil
	}
	return computeLayer(gc, layer, x, part, plan)
}
