package kernels

import (
	"math"
	"testing"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

func allAttrs() []core.Attr {
	return []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree}
}

func setup(t *testing.T, kind nn.ModelKind) (*nn.GraphCtx, *nn.Model, *tensor.Tensor) {
	t.Helper()
	res := gen.Generate(gen.Config{NumVertices: 150, NumEdges: 1200, Kind: gen.PowerLaw, Skew: 1.0, NumTypes: 4, Seed: 9})
	gc := nn.NewGraphCtx(res.Graph)
	m, err := nn.NewModel(nn.Config{Kind: kind, InDim: 6, Hidden: 8, OutDim: 4, Layers: 2, Heads: 2, NumTypes: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(150, 6)
	tensor.Uniform(x, tensor.NewRNG(4), -1, 1)
	return gc, m, x
}

// plansFor returns a representative set of graph plans valid for the model.
func plansFor(kind nn.ModelKind) []core.GraphPlan {
	var plans []core.GraphPlan
	for _, p := range core.EnumeratePlans(kind.IndexAttrs(), core.DefaultPlanSpace(kind == nn.RGCN)) {
		if ValidPlanFor(kind, p) {
			plans = append(plans, p)
		}
	}
	if ValidPlanFor(kind, core.WholeGraph()) {
		plans = append(plans, core.WholeGraph())
	}
	return plans
}

func TestGTaskExecutionMatchesReference(t *testing.T) {
	for kind := nn.ModelKind(0); kind < nn.NumModels; kind++ {
		gc, m, x := setup(t, kind)
		want := m.Forward(gc, x)
		for _, gp := range plansFor(kind) {
			part := core.PartitionGraph(gc.G, gp, allAttrs())
			for _, op := range []Plan{{}, {Batched: true}, {Batched: true, Dedup: true}} {
				ctx := exec.NewCtx(device.New(device.A100()))
				got, err := RunModel(ctx, gc, m, x, part, op)
				if err != nil {
					t.Fatalf("%v plan %v %v: %v", kind, gp, op, err)
				}
				for i := range got.Data() {
					if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 2e-3 {
						t.Fatalf("%v plan %v %v: output differs at %d: %v vs %v",
							kind, gp, op, i, got.Data()[i], want.Data()[i])
					}
				}
			}
		}
	}
}

func TestLSTMPlanValidity(t *testing.T) {
	vc := core.VertexCentric()
	if !ValidPlanFor(nn.SAGELSTM, vc) {
		t.Fatal("vertex-centric must be valid for LSTM")
	}
	ec := core.EdgeCentric()
	if ValidPlanFor(nn.SAGELSTM, ec) {
		t.Fatal("edge-centric splits LSTM sequences; must be invalid")
	}
	twoD := core.GraphPlan{Restrictions: []core.Restriction{
		{Attr: core.AttrDstID, Kind: core.Exact, Limit: 4},
		{Attr: core.AttrSrcID, Kind: core.Exact, Limit: 4},
	}}
	if ValidPlanFor(nn.SAGELSTM, twoD) {
		t.Fatal("src-restricted plans permute LSTM sequences; must be invalid")
	}
	if !ValidPlanFor(nn.GCN, ec) {
		t.Fatal("other models accept any plan")
	}
	// RunModel must reject invalid plans
	gc, m, x := setup(t, nn.SAGELSTM)
	part := core.PartitionGraph(gc.G, ec, allAttrs())
	ctx := exec.NewCtx(device.New(device.A100()))
	if _, err := RunModel(ctx, gc, m, x, part, Plan{}); err == nil {
		t.Fatal("expected plan-validity error")
	}
}

func TestBatchingImprovesTaskCost(t *testing.T) {
	// Paper Figure 18a: RGCN gTask uniq(src)=K & uniq(type)=1 — batched
	// beats edge-by-edge by a large factor.
	spec := device.A100()
	sh := LayerShape{Kind: nn.RGCN, F: 128, Fp: 256, Types: 8}
	st := TaskStatsOf{Edges: 128, UniqSrc: 32, UniqDst: 64, UniqType: 1, MaxDeg: 2}
	edgewise := CostTask(spec, sh, st, Plan{})
	batched := CostTask(spec, sh, st, Plan{Batched: true})
	dedup := CostTask(spec, sh, st, Plan{Batched: true, Dedup: true})
	if !(dedup.Seconds < batched.Seconds && batched.Seconds < edgewise.Seconds) {
		t.Fatalf("cost ordering wrong: dedup=%g batched=%g edgewise=%g",
			dedup.Seconds, batched.Seconds, edgewise.Seconds)
	}
	if edgewise.Seconds/dedup.Seconds < 4 {
		t.Fatalf("dedup+batch speedup %.2f×, want ≥ 4× (paper reports 4.33×)",
			edgewise.Seconds/dedup.Seconds)
	}
}

func TestLSTMBatchingUniformDegreesWinsOverSkewed(t *testing.T) {
	// Paper Figure 18b: batching K destinations with uniform degrees
	// (uniq(dst-degree)=min) avoids padding waste.
	spec := device.A100()
	sh := LayerShape{Kind: nn.SAGELSTM, F: 64, Fp: 64}
	uniform := TaskStatsOf{Edges: 128, UniqSrc: 128, UniqDst: 32, UniqType: 1, MaxDeg: 4}
	skewed := TaskStatsOf{Edges: 128, UniqSrc: 128, UniqDst: 32, UniqType: 1, MaxDeg: 64}
	cu := CostTask(spec, sh, uniform, Plan{Batched: true})
	cs := CostTask(spec, sh, skewed, Plan{Batched: true})
	if cu.Seconds >= cs.Seconds {
		t.Fatalf("uniform-degree task %g should beat skewed %g", cu.Seconds, cs.Seconds)
	}
	// batching must also beat sequential edge-by-edge
	seq := CostTask(spec, sh, uniform, Plan{})
	if cu.Seconds >= seq.Seconds {
		t.Fatalf("batched LSTM %g should beat edge-by-edge %g", cu.Seconds, seq.Seconds)
	}
}

func TestCostPartitionCoversAllTasks(t *testing.T) {
	gc, m, x := setup(t, nn.GCN)
	_ = m
	_ = x
	part := core.PartitionGraph(gc.G, core.VertexCentric(), allAttrs())
	costs := CostPartition(device.A100(), part, LayerShape{Kind: nn.GCN, F: 8, Fp: 8}, Plan{Batched: true})
	if len(costs) != part.NumTasks() {
		t.Fatalf("%d costs for %d tasks", len(costs), part.NumTasks())
	}
	total := 0
	for _, c := range costs {
		if c.Seconds < 0 || c.FLOPs < 0 {
			t.Fatalf("negative cost %+v", c)
		}
		total += c.Edges
	}
	if total != gc.NumEdges() {
		t.Fatalf("costs cover %d of %d edges", total, gc.NumEdges())
	}
}

func TestGTaskFusedLaunchesOneKernelPerLayerPlusDense(t *testing.T) {
	gc, m, x := setup(t, nn.RGCN)
	part := core.PartitionGraph(gc.G, core.VertexCentric(), allAttrs())
	ctx := exec.NewCtx(device.New(device.A100()))
	ctx.Compute = false
	if _, err := RunModel(ctx, gc, m, x, part, Plan{Batched: true, Dedup: true}); err != nil {
		t.Fatal(err)
	}
	st := ctx.Dev.Stats()
	// per layer: dense kernels (1 for RGCN self) + 1 fused = 2; 2 layers = 4
	if st.Kernels != 4 {
		t.Fatalf("kernels = %d, want 4", st.Kernels)
	}
}

func TestDenseKernelsPerModel(t *testing.T) {
	for kind := nn.ModelKind(0); kind < nn.NumModels; kind++ {
		ks := DenseKernels(LayerShape{Kind: kind, F: 16, Fp: 8}, 100)
		if len(ks) == 0 {
			t.Fatalf("%v: no dense kernels", kind)
		}
		for _, k := range ks {
			if !k.TensorCore || k.FLOPs <= 0 {
				t.Fatalf("%v: dense kernel %+v must be TC with work", kind, k)
			}
		}
	}
}
