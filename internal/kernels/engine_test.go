package kernels

import (
	"math"
	"strings"
	"testing"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

func TestSelectEngine(t *testing.T) {
	for _, name := range append([]string{""}, EngineNames()...) {
		eng, err := Select(name)
		if err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "blocked"
		}
		if eng.Name() != want {
			t.Fatalf("Select(%q).Name() = %q", name, eng.Name())
		}
	}
	if _, err := Select("warp"); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("Select(warp) = %v, want unknown-engine error", err)
	}
}

// runEngine executes one forward pass under the named engine and worker
// count and returns a private copy of the logits.
func runEngine(t *testing.T, engine string, workers int, gc *nn.GraphCtx, m *nn.Model, x *tensor.Tensor, part *core.Partition, op Plan) []float32 {
	t.Helper()
	old := parallel.SetMaxWorkers(workers)
	defer parallel.SetMaxWorkers(old)
	ctx := exec.NewCtx(device.New(device.A100()))
	ctx.Engine = engine
	got, err := RunModel(ctx, gc, m, x, part, op)
	if err != nil {
		t.Fatalf("engine %q: %v", engine, err)
	}
	out := make([]float32, len(got.Data()))
	copy(out, got.Data())
	return out
}

var opPlans = []Plan{{}, {Batched: true}, {Batched: true, Dedup: true}}

// TestEnginesBitwiseParityAcrossPlansAndWorkers is the engine contract
// test: for every model, every valid graph plan, every operation plan and
// 1/N workers, the fused and device engines must reproduce the blocked
// engine's forward output bit for bit.
func TestEnginesBitwiseParityAcrossPlansAndWorkers(t *testing.T) {
	for kind := nn.ModelKind(0); kind < nn.NumModels; kind++ {
		t.Run(kind.String(), func(t *testing.T) {
			gc, m, x := setup(t, kind)
			for _, gp := range plansFor(kind) {
				part := core.PartitionGraph(gc.G, gp, allAttrs())
				for _, op := range opPlans {
					want := runEngine(t, "blocked", 1, gc, m, x, part, op)
					for _, cs := range []struct {
						engine  string
						workers int
					}{
						{"blocked", 8},
						{"fused", 1},
						{"fused", 8},
						{"device", 1},
						{"device", 8},
					} {
						got := runEngine(t, cs.engine, cs.workers, gc, m, x, part, op)
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("plan %v op %+v engine %s workers=%d: out[%d] = %v, want %v",
									gp, op, cs.engine, cs.workers, i, got[i], want[i])
							}
						}
					}
				}
			}
		})
	}
}

// layerParityAllPlans isolates a single layer of the given model kind and
// checks, for every valid graph plan and operation plan, that the gTask
// computation stays within tolerance of the plan-free reference forward
// and that all engines agree bitwise.
func layerParityAllPlans(t *testing.T, kind nn.ModelKind) {
	gc, _, x := setup(t, kind)
	m, err := nn.NewModel(nn.Config{Kind: kind, InDim: 6, Hidden: 8, OutDim: 4, Layers: 1, Heads: 2, NumTypes: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Forward(gc, x)
	ref := make([]float32, len(want.Data()))
	copy(ref, want.Data())
	for _, gp := range plansFor(kind) {
		part := core.PartitionGraph(gc.G, gp, allAttrs())
		for _, op := range opPlans {
			blocked := runEngine(t, "blocked", 1, gc, m, x, part, op)
			for i := range blocked {
				if math.Abs(float64(blocked[i]-ref[i])) > 2e-3 {
					t.Fatalf("%v plan %v op %+v: out[%d] = %v, reference %v", kind, gp, op, i, blocked[i], ref[i])
				}
			}
			for _, engine := range []string{"fused", "device"} {
				got := runEngine(t, engine, 1, gc, m, x, part, op)
				for i := range blocked {
					if got[i] != blocked[i] {
						t.Fatalf("%v plan %v op %+v engine %s: out[%d] = %v, want %v",
							kind, gp, op, engine, i, got[i], blocked[i])
					}
				}
			}
		}
	}
}

func TestComputeGATParityAllPlans(t *testing.T) { layerParityAllPlans(t, nn.GAT) }

func TestComputeLSTMParityAllPlans(t *testing.T) { layerParityAllPlans(t, nn.SAGELSTM) }

// TestFusedEngineMovesFewerBytes pins the fusion's reason to exist: on the
// bandwidth-bound shapes (GCN/GraphSAGE at F=64) the streaming dataflow
// must model strictly less traffic than the blocked three-pass dataflow on
// destination-contiguous plans, and never more on any plan.
func TestFusedEngineMovesFewerBytes(t *testing.T) {
	for _, kind := range []nn.ModelKind{nn.GCN, nn.SAGE} {
		gc, _, _ := setup(t, kind)
		sh := LayerShape{Kind: kind, F: 64, Fp: 64, Types: 4}
		for _, gp := range plansFor(kind) {
			part := core.PartitionGraph(gc.G, gp, allAttrs())
			for _, op := range opPlans {
				fusedB := fusedEngine{}.LayerBytes(sh, part, op)
				blockedB := blockedEngine{}.LayerBytes(sh, part, op)
				if fusedB > blockedB {
					t.Fatalf("%v plan %v op %+v: fused %.0f B > blocked %.0f B", kind, gp, op, fusedB, blockedB)
				}
			}
		}
		for _, gp := range []core.GraphPlan{core.VertexCentric(), core.WholeGraph()} {
			part := core.PartitionGraph(gc.G, gp, allAttrs())
			fusedB := fusedEngine{}.LayerBytes(sh, part, Plan{Batched: true})
			blockedB := blockedEngine{}.LayerBytes(sh, part, Plan{Batched: true})
			if fusedB >= blockedB {
				t.Fatalf("%v plan %v: fused %.0f B, want < blocked %.0f B", kind, gp, fusedB, blockedB)
			}
		}
	}
}

// TestDeviceEnginePerStageKernels checks the device engine's accounting:
// every micro-kernel stage of the composed program lands in KernelStats as
// its own "gtask.<stage>" kernel, and their bytes sum to the composed cost
// model's per-layer prediction.
func TestDeviceEnginePerStageKernels(t *testing.T) {
	gc, m, x := setup(t, nn.RGCN)
	gp := core.VertexCentric()
	part := core.PartitionGraph(gc.G, gp, allAttrs())
	op := Plan{Batched: true, Dedup: true}
	ctx := exec.NewCtx(device.New(device.A100()))
	ctx.Engine = "device"
	if _, err := RunModel(ctx, gc, m, x, part, op); err != nil {
		t.Fatal(err)
	}
	stats := ctx.Dev.KernelStats()
	var wantBytes float64
	stageNames := map[string]bool{}
	for _, layer := range m.Layers() {
		sh := LayerShape{Kind: nn.RGCN, F: layer.InDim(), Fp: layer.OutDim(), Types: m.Cfg.NumTypes}
		wantBytes += deviceEngine{}.LayerBytes(sh, part, op)
		for _, s := range Compose(sh, op).Stages {
			stageNames["gtask."+s.Name] = true
		}
	}
	var gotBytes float64
	for name := range stageNames {
		ks, ok := stats[name]
		if !ok {
			t.Fatalf("stage kernel %q missing from KernelStats", name)
		}
		if ks.Launches == 0 {
			t.Fatalf("stage kernel %q never launched", name)
		}
		gotBytes += ks.Bytes
	}
	if math.Abs(gotBytes-wantBytes) > 1e-6*wantBytes {
		t.Fatalf("per-stage bytes %.0f, composed model predicts %.0f", gotBytes, wantBytes)
	}
	if _, ok := stats["gtask.fused"]; ok {
		t.Fatal("device engine must not launch the blocked engine's monolithic kernel")
	}
}

// TestFusedEngineKernelAccounting checks that the fused engine launches one
// streaming kernel per layer whose bytes equal its LayerBytes model.
func TestFusedEngineKernelAccounting(t *testing.T) {
	gc, m, x := setup(t, nn.GCN)
	part := core.PartitionGraph(gc.G, core.VertexCentric(), allAttrs())
	op := Plan{Batched: true}
	ctx := exec.NewCtx(device.New(device.A100()))
	ctx.Engine = "fused"
	if _, err := RunModel(ctx, gc, m, x, part, op); err != nil {
		t.Fatal(err)
	}
	ks, ok := ctx.Dev.KernelStats()["gtask.stream"]
	if !ok {
		t.Fatal("fused engine launched no gtask.stream kernel")
	}
	if ks.Launches != int64(len(m.Layers())) {
		t.Fatalf("gtask.stream launches = %d, want %d (one per layer)", ks.Launches, len(m.Layers()))
	}
	var wantBytes float64
	for _, layer := range m.Layers() {
		sh := LayerShape{Kind: nn.GCN, F: layer.InDim(), Fp: layer.OutDim(), Types: m.Cfg.NumTypes}
		wantBytes += fusedEngine{}.LayerBytes(sh, part, op)
	}
	if math.Abs(ks.Bytes-wantBytes) > 1e-6*wantBytes {
		t.Fatalf("gtask.stream bytes %.0f, LayerBytes model %.0f", ks.Bytes, wantBytes)
	}
}
