package kernels

import (
	"fmt"
	"math"
	"slices"

	"wisegraph/internal/core"
	"wisegraph/internal/dfg"
	"wisegraph/internal/exec"
	"wisegraph/internal/graph"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// RunModel executes a full forward pass with the gTask strategy: shared
// dense transforms as per-layer tensor-core kernels, then one fused kernel
// per layer whose work items are the partition's gTasks. The layer
// execution itself goes through the Engine selected by ctx.Engine (see
// engine.go); the numeric output is computed by the engine (not delegated
// to the reference), so tests can verify the gTask machinery end to end.
func RunModel(ctx *exec.Ctx, gc *nn.GraphCtx, m *nn.Model, x *tensor.Tensor, part *core.Partition, plan Plan) (*tensor.Tensor, error) {
	eng, err := Select(ctx.Engine)
	if err != nil {
		return nil, err
	}
	if err := eng.Probe(m.Cfg.Kind, part.Plan); err != nil {
		return nil, err
	}
	sp := obs.Begin(obs.StageExec, ctx.TraceID)
	defer sp.End()
	cur := x
	for li, layer := range m.Layers() {
		sh := LayerShape{Kind: m.Cfg.Kind, F: layer.InDim(), Fp: layer.OutDim(), Types: m.Cfg.NumTypes}
		out, err := eng.RunLayer(ctx, gc, layer, sh, cur, part, plan)
		if err != nil {
			return nil, err
		}
		if ctx.Compute {
			prev := cur
			if li < len(m.Layers())-1 {
				cur = tensor.ReLU(tensor.Get(out.Shape()...), out)
				tensor.Put(out)
			} else {
				cur = out
			}
			if prev != x {
				tensor.Put(prev)
			}
		}
	}
	if !ctx.Compute {
		return nil, nil
	}
	return cur, nil
}

// RunModelLayer executes exactly one layer of the model through the
// engine selected by ctx.Engine — the layer-boundary entry the serving
// tier's leveled forward uses so it can splice cached embedding rows in
// between layers. No activation is applied: the caller owns the ReLU (and
// must match RunModel's placement — after every layer but the last) so
// cached rows and freshly computed rows go through identical math. The
// span accounting mirrors RunModel: the call is recorded under StageExec
// against ctx.TraceID.
func RunModelLayer(ctx *exec.Ctx, gc *nn.GraphCtx, m *nn.Model, li int, x *tensor.Tensor, part *core.Partition, plan Plan) (*tensor.Tensor, error) {
	sp := obs.Begin(obs.StageExec, ctx.TraceID)
	defer sp.End()
	eng, err := Select(ctx.Engine)
	if err != nil {
		return nil, err
	}
	if err := eng.Probe(m.Cfg.Kind, part.Plan); err != nil {
		return nil, err
	}
	layers := m.Layers()
	if li < 0 || li >= len(layers) {
		return nil, fmt.Errorf("kernels: layer %d out of range [0,%d)", li, len(layers))
	}
	layer := layers[li]
	sh := LayerShape{Kind: m.Cfg.Kind, F: layer.InDim(), Fp: layer.OutDim(), Types: m.Cfg.NumTypes}
	return eng.RunLayer(ctx, gc, layer, sh, x, part, plan)
}

// invDegOf returns the mean-normalization weight of an edge (1/in-degree
// of its destination, 0 for isolated destinations).
func invDegOf(g *graphT) func(int32) float32 {
	inDeg := g.InDegrees()
	return func(e int32) float32 {
		d := inDeg[g.Dst[e]]
		if d == 0 {
			return 0
		}
		return 1 / float32(d)
	}
}

// computeLayer is the blocked-engine computation over gTasks: separate
// gather, transform and scatter-add passes with per-edge read-modify-write
// accumulation.
func computeLayer(gc *nn.GraphCtx, layer nn.Layer, x *tensor.Tensor, part *core.Partition, plan Plan) (*tensor.Tensor, error) {
	g := gc.G
	invDeg := invDegOf(g)
	switch l := layer.(type) {
	case *nn.GCNLayer:
		xw := tensor.MatMul(tensor.Get(x.Dim(0), l.OutDim()), x, l.W.Value)
		defer tensor.Put(xw)
		out := tensor.Get(g.NumVertices, l.OutDim())
		forEachTaskEdge(part, func(e int32) {
			src, dst := g.Src[e], g.Dst[e]
			w := invDeg(e)
			xr := xw.Row(int(src))
			or := out.Row(int(dst))
			for j, v := range xr {
				or[j] += w * v
			}
		})
		tensor.AddBias(out, l.B.Value)
		return out, nil

	case *nn.SAGELayer:
		agg := tensor.Get(g.NumVertices, l.InDim())
		defer tensor.Put(agg)
		forEachTaskEdge(part, func(e int32) {
			src, dst := g.Src[e], g.Dst[e]
			w := invDeg(e)
			xr := x.Row(int(src))
			or := agg.Row(int(dst))
			for j, v := range xr {
				or[j] += w * v
			}
		})
		out := tensor.MatMul(tensor.Get(x.Dim(0), l.OutDim()), x, l.WSelf.Value)
		tensor.MatMulAcc(out, agg, l.WNeigh.Value)
		tensor.AddBias(out, l.B.Value)
		return out, nil

	case *nn.RGCNLayer:
		return computeRGCN(g, l, x, part, plan, invDeg)

	case *nn.GATLayer:
		return computeGAT(gc, l, x, part)

	case *nn.SAGELSTMLayer:
		return computeLSTM(g, l, x, part)
	}
	return nil, fmt.Errorf("kernels: unsupported layer type %T", layer)
}

// forEachTaskEdge visits every edge task by task.
func forEachTaskEdge(part *core.Partition, fn func(e int32)) {
	for ti := 0; ti < part.NumTasks(); ti++ {
		for _, e := range part.TaskEdges(ti) {
			fn(e)
		}
	}
}

// computeRGCN runs the RGCN aggregation per task, with the dedup'd
// outer-product micro-kernel (paper Figure 10c) when the plan asks for it.
func computeRGCN(g *graphT, l *nn.RGCNLayer, x *tensor.Tensor, part *core.Partition, plan Plan, invDeg func(int32) float32) (*tensor.Tensor, error) {
	in, outDim := l.InDim(), l.OutDim()
	out := tensor.MatMul(tensor.Get(x.Dim(0), outDim), x, l.WSelf.Value)
	msg := make([]float32, outDim)
	for ti := 0; ti < part.NumTasks(); ti++ {
		edges := part.TaskEdges(ti)
		if plan.Dedup {
			// unique-value extraction on src and type, then the
			// outer-product compute + 2-D indexing.
			srcs := make([]int32, len(edges))
			typs := make([]int32, len(edges))
			for i, e := range edges {
				srcs[i] = g.Src[e]
				typs[i] = g.EdgeType(int(e))
			}
			uSrc, mSrc := dfg.UniqueExtract(srcs)
			uTyp, mTyp := dfg.UniqueExtract(typs)
			// pair products [m, n, outDim]
			prod := tensor.Get(len(uSrc), len(uTyp), outDim)
			for i, sv := range uSrc {
				xr := x.Row(int(sv))
				for j, tv := range uTyp {
					w := tensor.FromSlice(l.W.Value.Data()[int(tv)*in*outDim:(int(tv)+1)*in*outDim], in, outDim)
					tensor.VecMat(prod.Data()[(i*len(uTyp)+j)*outDim:(i*len(uTyp)+j+1)*outDim], xr, w)
				}
			}
			for i, e := range edges {
				pr := prod.Data()[(int(mSrc[i])*len(uTyp)+int(mTyp[i]))*outDim : (int(mSrc[i])*len(uTyp)+int(mTyp[i])+1)*outDim]
				w := invDeg(e)
				or := out.Row(int(g.Dst[e]))
				for j, v := range pr {
					or[j] += w * v
				}
			}
			tensor.Put(prod)
		} else {
			for _, e := range edges {
				tv := g.EdgeType(int(e))
				w := tensor.FromSlice(l.W.Value.Data()[int(tv)*in*outDim:(int(tv)+1)*in*outDim], in, outDim)
				tensor.VecMat(msg, x.Row(int(g.Src[e])), w)
				we := invDeg(e)
				or := out.Row(int(g.Dst[e]))
				for j, v := range msg {
					or[j] += we * v
				}
			}
		}
	}
	tensor.AddBias(out, l.B.Value)
	return out, nil
}

// gatScores runs the GAT phases shared by every engine: the dense Z
// transform, attention projections, per-edge leaky-ReLU scores, and the
// per-(dst,head) stable softmax. The softmax runs over the whole edge set
// (three passes) so normalization is exact regardless of how tasks split
// a destination's in-edges. It returns Z, the normalized score numerators
// and the per-destination sums; the caller owns all three (tensor.Put).
func gatScores(gc *nn.GraphCtx, l *nn.GATLayer, x *tensor.Tensor, part *core.Partition) (z, score, sum *tensor.Tensor) {
	g := gc.G
	heads := l.Heads()
	dh := l.OutDim() / heads
	z = tensor.MatMul(tensor.Get(x.Dim(0), l.OutDim()), x, l.W.Value)
	v := g.NumVertices
	// projections
	pl := tensor.Get(v, heads)
	pr := tensor.Get(v, heads)
	defer tensor.Put(pl)
	defer tensor.Put(pr)
	for vi := 0; vi < v; vi++ {
		zr := z.Row(vi)
		plr, prr := pl.Row(vi), pr.Row(vi)
		for h := 0; h < heads; h++ {
			alr, arr := l.AL.Value.Row(h), l.AR.Value.Row(h)
			var sl, sr float32
			for d := 0; d < dh; d++ {
				sl += alr[d] * zr[h*dh+d]
				sr += arr[d] * zr[h*dh+d]
			}
			plr[h], prr[h] = sl, sr
		}
	}
	e := g.NumEdges()
	score = tensor.Get(e, heads)
	forEachTaskEdge(part, func(ei int32) {
		sr := score.Row(int(ei))
		plr := pl.Row(int(g.Src[ei]))
		prr := pr.Row(int(g.Dst[ei]))
		for h := 0; h < heads; h++ {
			s := plr[h] + prr[h]
			if s < 0 {
				s *= 0.2 // leaky relu, slope matches nn.GATLayer
			}
			sr[h] = s
		}
	})
	// per-dst stable softmax over the whole edge set (three passes)
	maxS := tensor.Get(v, heads)
	defer tensor.Put(maxS)
	for i, d := 0, maxS.Data(); i < len(d); i++ {
		d[i] = float32(math.Inf(-1))
	}
	for ei := 0; ei < e; ei++ {
		mr := maxS.Row(int(g.Dst[ei]))
		sr := score.Row(ei)
		for h := 0; h < heads; h++ {
			if sr[h] > mr[h] {
				mr[h] = sr[h]
			}
		}
	}
	sum = tensor.Get(v, heads)
	for ei := 0; ei < e; ei++ {
		d := int(g.Dst[ei])
		sr := score.Row(ei)
		mr := maxS.Row(d)
		zr := sum.Row(d)
		for h := 0; h < heads; h++ {
			ev := float32(math.Exp(float64(sr[h] - mr[h])))
			sr[h] = ev
			zr[h] += ev
		}
	}
	return z, score, sum
}

// computeGAT is the blocked GAT path: shared score/softmax phases, then a
// per-edge read-modify-write aggregation over the tasks.
func computeGAT(gc *nn.GraphCtx, l *nn.GATLayer, x *tensor.Tensor, part *core.Partition) (*tensor.Tensor, error) {
	g := gc.G
	heads := l.Heads()
	dh := l.OutDim() / heads
	z, score, sum := gatScores(gc, l, x, part)
	defer tensor.Put(z)
	defer tensor.Put(score)
	defer tensor.Put(sum)
	out := tensor.Get(g.NumVertices, l.OutDim())
	forEachTaskEdge(part, func(ei int32) {
		src, dst := int(g.Src[ei]), int(g.Dst[ei])
		sr := score.Row(int(ei))
		zr := z.Row(src)
		or := out.Row(dst)
		su := sum.Row(dst)
		for h := 0; h < heads; h++ {
			if su[h] == 0 {
				continue
			}
			a := sr[h] / su[h]
			for d := 0; d < dh; d++ {
				or[h*dh+d] += a * zr[h*dh+d]
			}
		}
	})
	tensor.AddBias(out, l.B.Value)
	return out, nil
}

// computeLSTM runs the per-destination recurrences task by task. The
// validity filter guarantees each destination's edges are contiguous in
// one task and in original (CSR-equivalent) order.
func computeLSTM(g *graphT, l *nn.SAGELSTMLayer, x *tensor.Tensor, part *core.Partition) (*tensor.Tensor, error) {
	hd := l.OutDim()
	f := l.InDim()
	hFinal := tensor.Get(g.NumVertices, hd)
	defer tensor.Put(hFinal)
	h := make([]float32, hd)
	c := make([]float32, hd)
	zbuf := make([]float32, 4*hd)
	for ti := 0; ti < part.NumTasks(); ti++ {
		edges := part.TaskEdges(ti)
		i := 0
		for i < len(edges) {
			dst := g.Dst[edges[i]]
			j := i
			for j < len(edges) && g.Dst[edges[j]] == dst {
				j++
			}
			// run the LSTM over edges[i:j] in ascending edge order
			run := append([]int32(nil), edges[i:j]...)
			slices.Sort(run)
			for k := range h {
				h[k], c[k] = 0, 0
			}
			for _, e := range run {
				xr := x.Row(int(g.Src[e]))
				copy(zbuf, l.Bg.Value.Data())
				mulAccRow(zbuf, xr, l.Wx.Value)
				mulAccRow(zbuf, h, l.Wh.Value)
				for k := 0; k < hd; k++ {
					ig := sigm(zbuf[k])
					fg := sigm(zbuf[hd+k])
					og := sigm(zbuf[2*hd+k])
					gg := float32(math.Tanh(float64(zbuf[3*hd+k])))
					c[k] = fg*c[k] + ig*gg
					h[k] = og * float32(math.Tanh(float64(c[k])))
				}
			}
			copy(hFinal.Row(int(dst)), h)
			i = j
		}
	}
	_ = f
	out := tensor.MatMul(tensor.Get(x.Dim(0), hd), x, l.WSelf.Value)
	tensor.MatMulAcc(out, hFinal, l.WNeigh.Value)
	tensor.AddBias(out, l.B.Value)
	return out, nil
}

// graphT aliases the graph type to keep signatures short.
type graphT = graph.Graph

func sigm(x float32) float32 { return float32(1 / (1 + math.Exp(-float64(x)))) }

func mulAccRow(z, x []float32, w *tensor.Tensor) {
	n := w.Dim(1)
	for p, xv := range x {
		if xv == 0 {
			continue
		}
		wr := w.Data()[p*n : (p+1)*n]
		for j, wv := range wr {
			z[j] += xv * wv
		}
	}
}
