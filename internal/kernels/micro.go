package kernels

import (
	"fmt"
	"strings"

	"wisegraph/internal/nn"
)

// StageKind classifies a micro-kernel (paper §5.3: "multiple
// micro-kernels for data loading and computation, each representing a
// specific operation"; composing them yields the fused gTask kernel).
type StageKind int

const (
	// StageLoad streams rows from global memory, one per edge.
	StageLoad StageKind = iota
	// StageLoadUnique loads each unique row once (duplicated-data reuse).
	StageLoadUnique
	// StageLoadWeights fetches weight matrices.
	StageLoadWeights
	// StageLoadIndex reads index/mapping arrays.
	StageLoadIndex
	// StageCompute performs arithmetic (matmul, additions, cell steps).
	StageCompute
	// StageStore writes per-edge results.
	StageStore
	// StageReduce accumulates into per-destination rows.
	StageReduce
)

// String names the stage kind.
func (k StageKind) String() string {
	switch k {
	case StageLoad:
		return "load"
	case StageLoadUnique:
		return "load-unique"
	case StageLoadWeights:
		return "load-weights"
	case StageLoadIndex:
		return "load-index"
	case StageCompute:
		return "compute"
	case StageStore:
		return "store"
	default:
		return "reduce"
	}
}

// Stage is one micro-kernel: its memory footprint and arithmetic work as
// functions of the gTask's statistics.
type Stage struct {
	Kind StageKind
	Name string
	// Elems returns the number of float32/int32 elements the stage moves
	// through global memory.
	Elems func(TaskStatsOf) float64
	// FLOPs returns the stage's arithmetic work (nil for pure movement).
	FLOPs func(TaskStatsOf) float64
}

// Program is a composed fused kernel: the stage sequence plus the
// condition under which the compute stages qualify for tensor cores
// (batched matrix work with enough rows).
type Program struct {
	Stages     []Stage
	TensorCore func(TaskStatsOf) bool
}

// Totals sums the program's work over a task's statistics.
func (p Program) Totals(st TaskStatsOf) (flops, bytes float64) {
	for _, s := range p.Stages {
		if s.Elems != nil {
			bytes += s.Elems(st) * fb
		}
		if s.FLOPs != nil {
			flops += s.FLOPs(st)
		}
	}
	return flops, bytes
}

// TC reports tensor-core eligibility for the task.
func (p Program) TC(st TaskStatsOf) bool {
	return p.TensorCore != nil && p.TensorCore(st)
}

// String lists the composed stages.
func (p Program) String() string {
	names := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		names[i] = s.Name
	}
	return "[" + strings.Join(names, " → ") + "]"
}

// helper constructors

func stage(kind StageKind, name string, elems, flops func(TaskStatsOf) float64) Stage {
	return Stage{Kind: kind, Name: name, Elems: elems, FLOPs: flops}
}

// Compose builds the fused-kernel program for a layer under an operation
// plan — the kernel-generation step of the paper's Figure 10: with
// batched data the program loads batches and runs matrix micro-kernels;
// without it, the edge-by-edge fallback.
func Compose(sh LayerShape, plan Plan) Program {
	f := float64(sh.F)
	fp := float64(sh.Fp)
	e := func(st TaskStatsOf) float64 { return float64(st.Edges) }
	uSrc := func(st TaskStatsOf) float64 { return float64(st.UniqSrc) }
	uDst := func(st TaskStatsOf) float64 { return float64(st.UniqDst) }
	uTyp := func(st TaskStatsOf) float64 { return float64(st.UniqType) }

	switch sh.Kind {
	case nn.GCN, nn.SAGE:
		w := fp
		if sh.Kind == nn.SAGE {
			w = f
		}
		add := stage(StageCompute, "accumulate", nil, func(st TaskStatsOf) float64 { return e(st) * w })
		switch {
		case plan.Batched && plan.Dedup:
			return Program{Stages: []Stage{
				stage(StageLoadUnique, "load-unique-src", func(st TaskStatsOf) float64 { return uSrc(st) * w }, nil),
				stage(StageLoadIndex, "load-maps", e, nil),
				add,
				stage(StageReduce, "reduce-dst", func(st TaskStatsOf) float64 { return uDst(st) * w }, nil),
			}}
		case plan.Batched:
			return Program{Stages: []Stage{
				stage(StageLoad, "load-src", func(st TaskStatsOf) float64 { return e(st) * w }, nil),
				stage(StageLoadIndex, "load-ids", e, nil),
				add,
				stage(StageReduce, "reduce-dst", func(st TaskStatsOf) float64 { return uDst(st) * w }, nil),
			}}
		default:
			return Program{Stages: []Stage{
				stage(StageLoad, "load-src", func(st TaskStatsOf) float64 { return e(st) * w }, nil),
				stage(StageLoadIndex, "load-ids", e, nil),
				add,
				stage(StageStore, "store-edge", func(st TaskStatsOf) float64 { return e(st) * w }, nil),
			}}
		}

	case nn.RGCN:
		switch {
		case plan.Dedup:
			return Program{
				Stages: []Stage{
					stage(StageLoadUnique, "load-unique-src", func(st TaskStatsOf) float64 { return uSrc(st) * f }, nil),
					stage(StageLoadWeights, "load-type-weights", func(st TaskStatsOf) float64 { return uTyp(st) * f * fp }, nil),
					stage(StageCompute, "outer-mm", nil, func(st TaskStatsOf) float64 { return 2 * uSrc(st) * uTyp(st) * f * fp }),
					stage(StageLoadIndex, "load-2d-maps", func(st TaskStatsOf) float64 { return 2 * e(st) }, nil),
					stage(StageReduce, "reduce-dst", func(st TaskStatsOf) float64 { return uDst(st) * fp }, nil),
				},
				TensorCore: func(st TaskStatsOf) bool {
					return plan.Batched && float64(st.UniqSrc)*float64(st.UniqType) >= 16
				},
			}
		case plan.Batched:
			return Program{
				Stages: []Stage{
					stage(StageLoad, "load-src", func(st TaskStatsOf) float64 { return e(st) * f }, nil),
					stage(StageLoadWeights, "load-type-weights", func(st TaskStatsOf) float64 { return uTyp(st) * f * fp }, nil),
					stage(StageCompute, "batched-mm", nil, func(st TaskStatsOf) float64 { return 2 * e(st) * f * fp }),
					stage(StageStore, "store-edge", func(st TaskStatsOf) float64 { return e(st) * fp }, nil),
				},
				TensorCore: func(st TaskStatsOf) bool { return float64(st.Edges) >= 16 },
			}
		default:
			return Program{Stages: []Stage{
				stage(StageLoad, "load-src", func(st TaskStatsOf) float64 { return e(st) * f }, nil),
				stage(StageLoadWeights, "reload-weights-per-edge", func(st TaskStatsOf) float64 { return e(st) * f * fp }, nil),
				stage(StageCompute, "vec-mat-per-edge", nil, func(st TaskStatsOf) float64 { return 2 * e(st) * f * fp }),
				stage(StageStore, "store-edge", func(st TaskStatsOf) float64 { return e(st) * fp }, nil),
			}}
		}

	case nn.GAT:
		score := stage(StageCompute, "score+softmax", nil, func(st TaskStatsOf) float64 { return 4 * e(st) * fp })
		agg := stage(StageCompute, "weighted-agg", nil, func(st TaskStatsOf) float64 { return e(st) * fp })
		idx := stage(StageLoadIndex, "load-scores+ids", func(st TaskStatsOf) float64 { return 4 * e(st) }, nil)
		switch {
		case plan.Batched && plan.Dedup:
			return Program{Stages: []Stage{
				stage(StageLoadUnique, "load-unique-z", func(st TaskStatsOf) float64 { return uSrc(st) * fp }, nil),
				idx, score, agg,
				stage(StageReduce, "reduce-dst", func(st TaskStatsOf) float64 { return uDst(st) * fp }, nil),
			}}
		case plan.Batched:
			return Program{Stages: []Stage{
				stage(StageLoad, "load-z", func(st TaskStatsOf) float64 { return e(st) * fp }, nil),
				idx, score, agg,
				stage(StageReduce, "reduce-dst", func(st TaskStatsOf) float64 { return uDst(st) * fp }, nil),
			}}
		default:
			return Program{Stages: []Stage{
				stage(StageLoad, "load-z", func(st TaskStatsOf) float64 { return e(st) * fp }, nil),
				idx, score, agg,
				stage(StageStore, "store-edge", func(st TaskStatsOf) float64 { return e(st) * fp }, nil),
			}}
		}

	case nn.SAGELSTM:
		hd := fp
		cellF := 2 * (f + hd) * 4 * hd
		if plan.Batched {
			padded := func(st TaskStatsOf) float64 { return float64(st.UniqDst) * float64(st.MaxDeg) }
			return Program{
				Stages: []Stage{
					stage(StageLoad, "load-padded-seq", func(st TaskStatsOf) float64 { return padded(st) * f }, nil),
					stage(StageLoadWeights, "load-cell-weights-per-step", func(st TaskStatsOf) float64 {
						return float64(st.MaxDeg) * (f + hd) * 4 * hd / 8
					}, nil),
					stage(StageCompute, "lockstep-cells", nil, func(st TaskStatsOf) float64 { return padded(st) * cellF }),
					stage(StageStore, "store-hidden", func(st TaskStatsOf) float64 { return float64(st.UniqDst) * hd }, nil),
				},
				TensorCore: func(st TaskStatsOf) bool { return float64(st.UniqDst) >= 16 },
			}
		}
		return Program{Stages: []Stage{
			stage(StageLoad, "load-seq", func(st TaskStatsOf) float64 { return e(st) * f }, nil),
			stage(StageLoadWeights, "reload-cell-weights", func(st TaskStatsOf) float64 { return e(st) * (f + hd) * 4 * hd }, nil),
			stage(StageCompute, "sequential-cells", nil, func(st TaskStatsOf) float64 { return e(st) * cellF }),
			stage(StageStore, "store-hidden", func(st TaskStatsOf) float64 { return e(st) * hd }, nil),
		}}
	}
	panic(fmt.Sprintf("kernels: no program for model %v", sh.Kind))
}
