package kernels

import (
	"strings"
	"testing"

	"wisegraph/internal/nn"
)

func TestComposeProgramsForAllModelsAndPlans(t *testing.T) {
	st := TaskStatsOf{Edges: 100, UniqSrc: 40, UniqDst: 20, UniqType: 2, MaxDeg: 5}
	for kind := nn.ModelKind(0); kind < nn.NumModels; kind++ {
		sh := LayerShape{Kind: kind, F: 32, Fp: 16, Types: 4}
		for _, plan := range []Plan{{}, {Batched: true}, {Batched: true, Dedup: true}} {
			p := Compose(sh, plan)
			if len(p.Stages) < 3 {
				t.Fatalf("%v %v: degenerate program %v", kind, plan, p)
			}
			flops, bytes := p.Totals(st)
			if flops <= 0 || bytes <= 0 {
				t.Fatalf("%v %v: zero work (flops=%v bytes=%v)", kind, plan, flops, bytes)
			}
			// a program must contain at least one compute stage and one
			// load stage
			var hasCompute, hasLoad bool
			for _, s := range p.Stages {
				switch s.Kind {
				case StageCompute:
					hasCompute = true
				case StageLoad, StageLoadUnique:
					hasLoad = true
				}
			}
			if !hasCompute || !hasLoad {
				t.Fatalf("%v %v: missing stages in %v", kind, plan, p)
			}
		}
	}
}

func TestDedupProgramsLoadUnique(t *testing.T) {
	sh := LayerShape{Kind: nn.RGCN, F: 32, Fp: 16, Types: 4}
	dedup := Compose(sh, Plan{Batched: true, Dedup: true})
	if !strings.Contains(dedup.String(), "load-unique") {
		t.Fatalf("dedup program %v lacks unique loading", dedup)
	}
	if !strings.Contains(dedup.String(), "outer-mm") {
		t.Fatalf("dedup program %v lacks the outer-product micro-kernel", dedup)
	}
	edge := Compose(sh, Plan{})
	if !strings.Contains(edge.String(), "reload-weights-per-edge") {
		t.Fatalf("edge-wise program %v must reload weights per edge", edge)
	}
}

func TestProgramTotalsMatchDuplicationIntuition(t *testing.T) {
	// With heavy duplication the dedup program must do strictly less
	// compute AND less traffic than the batched one, which must beat the
	// edge-wise one on traffic.
	sh := LayerShape{Kind: nn.RGCN, F: 64, Fp: 64, Types: 8}
	st := TaskStatsOf{Edges: 512, UniqSrc: 32, UniqDst: 64, UniqType: 1, MaxDeg: 8}
	fd, bd := Compose(sh, Plan{Batched: true, Dedup: true}).Totals(st)
	fbt, bbt := Compose(sh, Plan{Batched: true}).Totals(st)
	fe, be := Compose(sh, Plan{}).Totals(st)
	if !(fd < fbt && fbt == fe) {
		t.Fatalf("flops ordering: dedup %v, batched %v, edge %v", fd, fbt, fe)
	}
	if !(bd < bbt && bbt < be) {
		t.Fatalf("bytes ordering: dedup %v, batched %v, edge %v", bd, bbt, be)
	}
}

func TestTensorCoreEligibility(t *testing.T) {
	sh := LayerShape{Kind: nn.RGCN, F: 32, Fp: 16, Types: 4}
	p := Compose(sh, Plan{Batched: true, Dedup: true})
	big := TaskStatsOf{Edges: 100, UniqSrc: 8, UniqDst: 4, UniqType: 4}
	small := TaskStatsOf{Edges: 4, UniqSrc: 2, UniqDst: 2, UniqType: 1}
	if !p.TC(big) {
		t.Fatal("32 unique pairs should use tensor cores")
	}
	if p.TC(small) {
		t.Fatal("2-row batch cannot fill a tensor-core tile")
	}
	// addition kernels never use tensor cores
	add := Compose(LayerShape{Kind: nn.GCN, F: 32, Fp: 16}, Plan{Batched: true})
	if add.TC(big) {
		t.Fatal("addition micro-kernels have no matrix work")
	}
}

func TestStageKindNames(t *testing.T) {
	for k := StageLoad; k <= StageReduce; k++ {
		if k.String() == "" {
			t.Fatalf("stage kind %d unnamed", k)
		}
	}
}
