// Package parallel provides small helpers for data-parallel loops across
// CPU workers. It is the execution backend for the simulated accelerator:
// kernels run for real on goroutines while the device model accounts time.
package parallel

import (
	"runtime"
	"sync"
)

// MaxWorkers is the default number of workers used by For. It is a variable
// so tests and the bench harness can pin it for reproducible scaling curves.
var MaxWorkers = runtime.GOMAXPROCS(0)

// For runs fn(i) for every i in [0, n) across up to MaxWorkers goroutines.
// grain is the minimum number of iterations per task; use a larger grain for
// cheap bodies to amortize scheduling. fn must be safe for concurrent calls
// with distinct i.
func For(n, grain int, fn func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForRange splits [0, n) into contiguous chunks of at least grain iterations
// and runs fn(lo, hi) for each chunk across up to MaxWorkers goroutines.
func ForRange(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := MaxWorkers
	if workers < 1 {
		workers = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks < workers {
		workers = chunks
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	// Distribute chunks over workers via an atomic-free striped split:
	// each worker takes every workers-th chunk, which balances skewed
	// per-index costs better than one contiguous block per worker.
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for c := w; c < chunks; c += workers {
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Workers reports the effective worker count For would use for n iterations
// with the given grain.
func Workers(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	w := MaxWorkers
	if w < 1 {
		w = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks < w {
		w = chunks
	}
	return w
}
