// Package parallel provides small helpers for data-parallel loops across
// CPU workers. It is the execution backend for the simulated accelerator:
// kernels run for real on goroutines while the device model accounts time.
//
// Loops are executed by a persistent worker pool (see pool.go) rather
// than per-call goroutines, so a training iteration that issues thousands
// of small parallel regions pays no spawn cost on any of them.
package parallel

import (
	"runtime"
	"sync/atomic"
)

// maxWorkers is the target number of workers used by For/ForRange,
// accessed atomically so tests and the bench harness can pin it for
// reproducible scaling curves while other goroutines run loops.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// MaxWorkers returns the current worker-count cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// SetMaxWorkers sets the worker-count cap (clamped to ≥ 1) and returns
// the previous value. Safe for concurrent use; loops already in flight
// keep the worker count they started with.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// For runs fn(i) for every i in [0, n) across up to MaxWorkers workers.
// grain is the minimum number of iterations per task; use a larger grain
// for cheap bodies to amortize scheduling. fn must be safe for concurrent
// calls with distinct i.
func For(n, grain int, fn func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForRange splits [0, n) into contiguous chunks of at least grain
// iterations and runs fn(lo, hi) for each chunk across up to MaxWorkers
// workers. Chunks are claimed dynamically off an atomic cursor, which
// balances skewed per-index costs; the calling goroutine participates,
// so the loop makes progress even when every pool worker is busy.
func ForRange(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := MaxWorkers()
	if workers < 1 {
		workers = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks < workers {
		workers = chunks
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	runOnPool(n, grain, chunks, workers-1, fn)
}

// Workers reports the effective worker count For would use for n
// iterations with the given grain.
func Workers(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	w := MaxWorkers()
	if w < 1 {
		w = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks < w {
		w = chunks
	}
	return w
}
