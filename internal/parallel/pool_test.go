package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Nested parallel loops must complete (chunk-counted completion means the
// caller is self-sufficient even if every pool worker is busy).
func TestNestedForRange(t *testing.T) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	const outer, inner = 37, 53
	var total int64
	For(outer, 1, func(i int) {
		For(inner, 1, func(j int) {
			atomic.AddInt64(&total, 1)
		})
	})
	if total != outer*inner {
		t.Fatalf("nested loops ran %d of %d bodies", total, outer*inner)
	}
}

// Deeply nested loops from many concurrent callers must not deadlock.
func TestConcurrentCallersWithNesting(t *testing.T) {
	old := SetMaxWorkers(3)
	defer SetMaxWorkers(old)
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ForRange(100, 5, func(lo, hi int) {
				For(hi-lo, 1, func(i int) {
					atomic.AddInt64(&total, 1)
				})
			})
		}()
	}
	wg.Wait()
	if total != 8*100 {
		t.Fatalf("ran %d of %d bodies", total, 8*100)
	}
}

// SetMaxWorkers must be safe to call while loops are running (the race
// detector verifies no torn reads).
func TestSetMaxWorkersConcurrent(t *testing.T) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetMaxWorkers(1 + i%8)
			}
		}
	}()
	var total int64
	for rep := 0; rep < 50; rep++ {
		For(200, 3, func(i int) { atomic.AddInt64(&total, 1) })
	}
	close(stop)
	wg.Wait()
	if total != 50*200 {
		t.Fatalf("ran %d of %d bodies", total, 50*200)
	}
	if SetMaxWorkers(4) < 1 {
		t.Fatal("MaxWorkers fell below 1")
	}
	SetMaxWorkers(MaxWorkers())
}

// The pool must respect grain boundaries and cover every index exactly
// once under a worker count far above GOMAXPROCS.
func TestManyWorkersOversubscribed(t *testing.T) {
	old := SetMaxWorkers(64)
	defer SetMaxWorkers(old)
	n := 10007
	seen := make([]int32, n)
	ForRange(n, 11, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi || (hi-lo) > 11 {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}
