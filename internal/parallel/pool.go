package parallel

import (
	"sync"
	"sync/atomic"
)

// The persistent worker pool. Workers are spawned lazily the first time a
// parallel loop wants help and then live for the life of the process,
// blocked on the task channel when idle. A ForRange call publishes one
// job; helpers and the caller claim fixed-size chunks off the job's
// atomic cursor until none remain.
//
// Completion is counted per chunk (not per helper), so a loop finishes
// correctly even if no helper ever picks the job up — the caller drains
// the cursor itself. This also makes nested parallel loops safe: a worker
// executing a chunk that itself calls ForRange cannot deadlock, because
// every caller is self-sufficient.

// job is one parallel loop dispatched to the pool.
type job struct {
	fn     func(lo, hi int)
	n      int
	grain  int
	chunks int
	cursor atomic.Int64
	wg     sync.WaitGroup // counts unfinished chunks
}

// run claims and executes chunks until the cursor passes the end. Safe to
// call from any number of goroutines concurrently.
func (j *job) run() {
	for {
		c := int(j.cursor.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		lo := c * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		j.wg.Done()
	}
}

// poolCap bounds the number of pool goroutines. Idle workers cost only a
// blocked goroutine, but a runaway SetMaxWorkers should not spawn
// unboundedly.
const poolCap = 256

var pool = struct {
	tasks   chan *job
	spawned atomic.Int64
}{
	// The buffer bounds outstanding help requests; submission never
	// blocks (a full channel just means less help for that loop).
	tasks: make(chan *job, 4*poolCap),
}

// ensureWorkers grows the pool to at least k goroutines (capped).
func ensureWorkers(k int) {
	if k > poolCap {
		k = poolCap
	}
	for {
		cur := pool.spawned.Load()
		if cur >= int64(k) {
			return
		}
		if pool.spawned.CompareAndSwap(cur, cur+1) {
			go func() {
				for j := range pool.tasks {
					j.run()
				}
			}()
		}
	}
}

// runOnPool executes the loop with up to `helpers` pool workers assisting
// the calling goroutine.
func runOnPool(n, grain, chunks, helpers int, fn func(lo, hi int)) {
	j := &job{fn: fn, n: n, grain: grain, chunks: chunks}
	j.wg.Add(chunks)
	ensureWorkers(helpers)
	for i := 0; i < helpers; i++ {
		select {
		case pool.tasks <- j:
		default:
			i = helpers // queue full: proceed with the help already enqueued
		}
	}
	j.run()
	// Chunks may still be executing in helpers; wait for the last one.
	j.wg.Wait()
}
