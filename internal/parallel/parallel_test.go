package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		counts := make([]int32, n)
		For(n, 3, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForRangeCoversExactly(t *testing.T) {
	n := 1003
	var total int64
	ForRange(n, 17, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != int64(n) {
		t.Fatalf("covered %d of %d", total, n)
	}
}

func TestForRangeSingleWorkerPath(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	sum := 0 // no atomics needed: single worker
	ForRange(100, 10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0, 1) != 0 {
		t.Fatal("zero work needs zero workers")
	}
	if w := Workers(5, 10); w != 1 {
		t.Fatalf("one chunk → one worker, got %d", w)
	}
	if w := Workers(1000000, 1); w != MaxWorkers() {
		t.Fatalf("big work should use all workers, got %d", w)
	}
}

// Property: parallel sum equals sequential sum for arbitrary slices.
func TestPropParallelSum(t *testing.T) {
	f := func(xs []int32, grainSmall uint8) bool {
		grain := int(grainSmall%32) + 1
		var want int64
		for _, x := range xs {
			want += int64(x)
		}
		var got int64
		For(len(xs), grain, func(i int) { atomic.AddInt64(&got, int64(xs[i])) })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForRangeMultiWorkerPath(t *testing.T) {
	old := SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	n := 997
	var total int64
	seen := make([]int32, n)
	ForRange(n, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != int64(n) {
		t.Fatalf("multi-worker covered %d of %d", total, n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}
