// Package baseline implements the partition strategies of the systems the
// paper compares against (Figure 13): the tensor-centric family (PyG,
// DGL-T) that runs one GPU kernel per operation over whole-graph tensors,
// and the graph-centric family (Seastar, GNNAdvisor, TC-GNN) that fuses
// all operations into one kernel over fine-grained graph parts.
//
// Every strategy computes numerically identical results — partition choice
// never changes semantics — so executors take the numeric output from the
// reference layer and differ in the kernels they account on the simulated
// device: kernel count, FLOPs, memory traffic, parallelism, tensor-core
// eligibility, load balance, and workspace (the OOM driver).
package baseline

import (
	"errors"
	"fmt"

	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// ErrUnsupported marks model/system combinations the original system does
// not implement (blank cells in Figure 13).
var ErrUnsupported = errors.New("baseline: model not supported by this system")

// Strategy is the partition family.
type Strategy int

const (
	// TensorCentric partitions operations into separate kernels over
	// whole-graph tensors.
	TensorCentric Strategy = iota
	// VertexCentric fuses all operations into one kernel partitioned by
	// destination vertex.
	VertexCentric
	// EdgeCentric fuses with one task per edge.
	EdgeCentric
	// TensorCoreTile is TC-GNN's dense-tile condensation.
	TensorCoreTile
)

// System is a named baseline with its strategy and scheduling behaviour.
type System struct {
	Name string
	// StrategyFor returns the strategy the system uses for a model (DGL
	// switches family by model class).
	StrategyFor func(k nn.ModelKind) Strategy
	// Supports reports whether the system implements the model.
	Supports func(k nn.ModelKind) bool
	// Balanced schedules vertex tasks longest-first (GNNAdvisor's
	// neighbor grouping); unbalanced systems run in natural order.
	Balanced bool
}

// PyG is tensor-centric for every model.
func PyG() System {
	return System{
		Name:        "PyG-T",
		StrategyFor: func(nn.ModelKind) Strategy { return TensorCentric },
		Supports:    func(nn.ModelKind) bool { return true },
	}
}

// DGL uses tensor-centric kernels for complex models and graph-centric
// fused SpMM for the simple ones (paper §7.1).
func DGL() System {
	return System{
		Name: "DGL",
		StrategyFor: func(k nn.ModelKind) Strategy {
			if k.Complex() {
				return TensorCentric
			}
			return VertexCentric
		},
		Supports: func(nn.ModelKind) bool { return true },
	}
}

// Seastar is vertex-centric for everything except LSTM aggregation.
func Seastar() System {
	return System{
		Name:        "Seastar-G",
		StrategyFor: func(nn.ModelKind) Strategy { return VertexCentric },
		Supports:    func(k nn.ModelKind) bool { return k != nn.SAGELSTM },
	}
}

// GNNAdvisor is vertex-centric with neighbor-grouped load balancing; it
// targets the simple models.
func GNNAdvisor() System {
	return System{
		Name:        "GNNA-G",
		StrategyFor: func(nn.ModelKind) Strategy { return VertexCentric },
		Supports:    func(k nn.ModelKind) bool { return k == nn.GCN || k == nn.SAGE },
		Balanced:    true,
	}
}

// TCGNN condenses the adjacency into dense tiles for tensor cores; it
// supports the simple models.
func TCGNN() System {
	return System{
		Name:        "TCGNN-G",
		StrategyFor: func(nn.ModelKind) Strategy { return TensorCoreTile },
		Supports:    func(k nn.ModelKind) bool { return k == nn.GCN || k == nn.SAGE },
	}
}

// Systems lists all single-GPU baselines.
func Systems() []System {
	return []System{PyG(), DGL(), Seastar(), GNNAdvisor(), TCGNN()}
}

// LayerWork captures the quantities the accounting needs for one layer.
type LayerWork struct {
	Kind  nn.ModelKind
	V, E  int
	F, Fp int
	Types int
	// EdgesPerType[t] counts type-t edges (RGCN grouping).
	EdgesPerType []int
	// InDeg is the per-vertex in-degree (vertex-centric task sizes).
	InDeg []int32
	// MaxDeg is the largest in-degree (LSTM padding).
	MaxDeg int
	// Tiles counts non-empty 16×16 adjacency tiles (TC-GNN workload).
	Tiles int
}

// NewLayerWork derives the workload description of layer over gc.
func NewLayerWork(gc *nn.GraphCtx, layer nn.Layer, kind nn.ModelKind) LayerWork {
	w := LayerWork{
		Kind:  kind,
		V:     gc.NumVertices(),
		E:     gc.NumEdges(),
		F:     layer.InDim(),
		Fp:    layer.OutDim(),
		InDeg: gc.G.InDegrees(),
	}
	w.MaxDeg = int(gc.G.MaxInDegree())
	if gc.TypeOffsets != nil {
		w.Types = gc.G.NumTypes
		for t := 0; t < w.Types; t++ {
			w.EdgesPerType = append(w.EdgesPerType, int(gc.TypeOffsets[t+1]-gc.TypeOffsets[t]))
		}
	}
	w.Tiles = countTiles(gc)
	return w
}

// countTiles counts the non-empty 16×16 adjacency tiles — the work TC-GNN
// actually schedules onto tensor cores. Sparse graphs have nearly one
// edge per tile, so the dense-tile padding wastes most of the MMA slots.
func countTiles(gc *nn.GraphCtx) int {
	seen := make(map[int64]struct{}, gc.NumEdges()/2)
	for s := range gc.SrcByDst {
		key := int64(gc.DstByDst[s]/16)<<32 | int64(gc.SrcByDst[s]/16)
		seen[key] = struct{}{}
	}
	return len(seen)
}

// RunModel runs a full forward pass of m under the system's strategy:
// numeric output from the reference layers (when ctx.Compute), kernels
// accounted per strategy. It returns ErrOOM/ErrUnsupported as appropriate.
func (s System) RunModel(ctx *exec.Ctx, gc *nn.GraphCtx, m *nn.Model, x *tensor.Tensor) (*tensor.Tensor, error) {
	if !s.Supports(m.Cfg.Kind) {
		return nil, fmt.Errorf("%w: %s on %v", ErrUnsupported, s.Name, m.Cfg.Kind)
	}
	cur := x
	for li, layer := range m.Layers() {
		lw := NewLayerWork(gc, layer, m.Cfg.Kind)
		if err := s.accountLayer(ctx, lw); err != nil {
			return nil, err
		}
		if ctx.Compute {
			out := layer.Forward(gc, cur)
			if li < len(m.Layers())-1 {
				cur = tensor.ReLU(nil, out)
			} else {
				cur = out
			}
		}
	}
	if !ctx.Compute {
		return nil, nil
	}
	return cur, nil
}

// AccountStrategy prices one layer under an explicit strategy (used by
// the bench harness for the Figure 3 motivation experiments).
func AccountStrategy(ctx *exec.Ctx, lw LayerWork, strat Strategy, balanced bool) error {
	switch strat {
	case TensorCentric:
		return accountTensorCentric(ctx, lw)
	case VertexCentric:
		return accountVertexCentric(ctx, lw, balanced)
	case EdgeCentric:
		return accountEdgeCentric(ctx, lw)
	case TensorCoreTile:
		return accountTensorCoreTile(ctx, lw)
	}
	return fmt.Errorf("baseline: unknown strategy")
}

// accountLayer dispatches to the strategy's accounting.
func (s System) accountLayer(ctx *exec.Ctx, lw LayerWork) error {
	switch s.StrategyFor(lw.Kind) {
	case TensorCentric:
		return accountTensorCentric(ctx, lw)
	case VertexCentric:
		return accountVertexCentric(ctx, lw, s.Balanced)
	case EdgeCentric:
		return accountEdgeCentric(ctx, lw)
	case TensorCoreTile:
		return accountTensorCoreTile(ctx, lw)
	}
	return fmt.Errorf("baseline: unknown strategy")
}

// perUnit returns the time of a single work item on one execution unit.
func perUnit(spec device.Spec, flops, bytes float64) float64 {
	units := float64(spec.NumUnits)
	tc := flops / (spec.SIMTFLOPS / units)
	tm := bytes / (spec.MemBandwidth / units)
	if tm > tc {
		return tm
	}
	return tc
}
