package baseline

import (
	"sort"

	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/nn"
)

const fb = 4.0 // float32 bytes

// accountTensorCentric prices the one-kernel-per-operation execution:
// indexing kernels materialize per-edge tensors in global memory (the
// paper's §2.2 "large redundancy of global memory data movement") while
// the neural kernels run at full dense efficiency on tensor cores.
func accountTensorCentric(ctx *exec.Ctx, lw LayerWork) error {
	v := float64(lw.V)
	e := float64(lw.E)
	f := float64(lw.F)
	fp := float64(lw.Fp)

	gather := func(name string, rows, width float64) error {
		if err := ctx.Alloc(rows * width * fb); err != nil {
			return err
		}
		ctx.Launch(device.Kernel{
			Name: name, Cat: device.CatIndexing,
			Bytes: (2*rows*width + rows) * fb,
		}, nil)
		return nil
	}
	scatter := func(name string, rows, width float64) {
		ctx.Launch(device.Kernel{
			Name: name, Cat: device.CatIndexing,
			FLOPs: rows * width,
			Bytes: (3*rows*width + rows) * fb,
		}, nil)
	}
	denseMM := func(name string, m, k, n float64) {
		ctx.Launch(device.Kernel{
			Name: name, Cat: device.CatNeural, TensorCore: true,
			FLOPs: 2 * m * k * n,
			Bytes: (m*k + k*n + m*n) * fb,
		}, nil)
	}

	switch lw.Kind {
	case nn.GCN:
		denseMM("gcn.xw", v, f, fp)
		if err := gather("gcn.gather", e, fp); err != nil {
			return err
		}
		scatter("gcn.scatter", e, fp)
	case nn.SAGE:
		denseMM("sage.self", v, f, fp)
		if err := gather("sage.gather", e, f); err != nil {
			return err
		}
		scatter("sage.scatter", e, f)
		denseMM("sage.neigh", v, f, fp)
	case nn.RGCN:
		// Relation-grouped execution (PyG/DGL RGCNConv): per type, gather
		// that type's sources, dense matmul, scatter. The full per-edge
		// message tensor [E, F'] stays live across the loop.
		if err := ctx.Alloc(e * maxf(f, fp) * fb); err != nil {
			return err
		}
		denseMM("rgcn.self", v, f, fp)
		for t, et := range lw.EdgesPerType {
			if et == 0 {
				continue
			}
			ef := float64(et)
			if err := gather(kname("rgcn.gather", t), ef, f); err != nil {
				return err
			}
			denseMM(kname("rgcn.mm", t), ef, f, fp)
			scatter(kname("rgcn.scatter", t), ef, fp)
		}
	case nn.GAT:
		denseMM("gat.z", v, f, fp)
		if err := ctx.Alloc(2 * e * fp * fb); err != nil {
			return err
		}
		if err := gather("gat.zsrc", e, fp); err != nil {
			return err
		}
		if err := gather("gat.zdst", e, fp); err != nil {
			return err
		}
		// score + leaky-relu kernel
		ctx.Launch(device.Kernel{Name: "gat.score", Cat: device.CatNeural,
			FLOPs: 4 * e * fp, Bytes: (2*e*fp + 2*e) * fb}, nil)
		// segment softmax: three passes over the edge scores
		for _, pass := range []string{"max", "expsum", "norm"} {
			ctx.Launch(device.Kernel{Name: "gat.softmax." + pass, Cat: device.CatNeural,
				FLOPs: e, Bytes: 2 * e * fb}, nil)
		}
		// weighted scatter of per-edge messages
		scatter("gat.aggregate", e, fp)
	case nn.SAGELSTM:
		// Degree-bucketed LSTM (DGL): bucket vertices by in-degree; each
		// bucket of degree d runs d sequential dense cell steps. Kernel
		// count explodes with the number of distinct degrees — the
		// tensor-centric cost the paper reports for LSTM.
		if err := ctx.Alloc(e * f * fb); err != nil {
			return err
		}
		if err := gather("lstm.gather", e, f); err != nil {
			return err
		}
		buckets := degreeBuckets(lw.InDeg)
		hd := fp
		for deg, count := range buckets {
			cf := float64(count)
			for step := 0; step < deg; step++ {
				ctx.Launch(device.Kernel{Name: "lstm.step", Cat: device.CatNeural, TensorCore: true,
					FLOPs:       2 * cf * (f + hd) * 4 * hd,
					Bytes:       (cf*(f+hd) + (f+hd)*4*hd + cf*4*hd) * fb,
					Parallelism: cf,
				}, nil)
			}
		}
		denseMM("lstm.self", v, f, fp)
		denseMM("lstm.neigh", v, fp, fp)
	}
	return nil
}

// accountVertexCentric prices the fused one-kernel-per-layer execution
// with one task per destination vertex and edge-by-edge inner compute: no
// data reuse across edges (weights re-fetched per edge), no tensor cores,
// load balance set by the degree distribution.
func accountVertexCentric(ctx *exec.Ctx, lw LayerWork, balanced bool) error {
	accountDenseTransforms(ctx, lw)
	flopsPerEdge, bytesPerEdge := perEdgeCost(lw)
	spec := ctx.Dev.Spec
	times := make([]float64, 0, lw.V)
	var totFlops, totBytes float64
	for _, d := range lw.InDeg {
		if d == 0 {
			continue
		}
		df := float64(d)
		times = append(times, perUnit(spec, df*flopsPerEdge, df*bytesPerEdge))
		totFlops += df * flopsPerEdge
		totBytes += df * bytesPerEdge
	}
	if balanced {
		sort.Sort(sort.Reverse(sort.Float64Slice(times)))
	}
	ctx.Launch(device.Kernel{
		Name: "fused.vertex", Cat: device.CatNeural,
		FLOPs: totFlops, Bytes: totBytes,
		UnitTimes: times,
	}, nil)
	return nil
}

// accountEdgeCentric prices one task per edge (perfectly balanced, still
// no reuse or tensor cores).
func accountEdgeCentric(ctx *exec.Ctx, lw LayerWork) error {
	accountDenseTransforms(ctx, lw)
	flopsPerEdge, bytesPerEdge := perEdgeCost(lw)
	e := float64(lw.E)
	t := perUnit(ctx.Dev.Spec, flopsPerEdge, bytesPerEdge)
	// e identical tasks: makespan ≈ ceil(e/units)·t — model directly.
	units := float64(ctx.Dev.Spec.NumUnits)
	rounds := (e + units - 1) / units
	ctx.Launch(device.Kernel{
		Name: "fused.edge", Cat: device.CatNeural,
		FLOPs:     e * flopsPerEdge,
		Bytes:     e * bytesPerEdge,
		UnitTimes: []float64{rounds * t}, // a single synthetic critical path
	}, nil)
	return nil
}

// accountTensorCoreTile prices TC-GNN: adjacency condensed into 16×16
// dense tiles processed on tensor cores, with intra-tile reuse.
func accountTensorCoreTile(ctx *exec.Ctx, lw LayerWork) error {
	v := float64(lw.V)
	f := float64(lw.F)
	fp := float64(lw.Fp)
	tiles := float64(lw.Tiles)
	// dense transform on tensor cores
	ctx.Launch(device.Kernel{Name: "tcgnn.xw", Cat: device.CatNeural, TensorCore: true,
		FLOPs: 2 * v * f * fp, Bytes: (v*f + f*fp + v*fp) * fb}, nil)
	// tile aggregation: every non-empty 16×16 tile runs a full dense MMA
	// against the feature panel regardless of how few edges it holds —
	// the padding waste that makes TC-GNN lose on sparse graphs (paper
	// Figure 13d/e) and win only where tiles are dense.
	ctx.Launch(device.Kernel{Name: "tcgnn.spmm", Cat: device.CatNeural, TensorCore: true,
		FLOPs: tiles * 2 * 16 * 16 * fp,
		Bytes: (tiles*16*fp*2 + v*fp) * fb}, nil)
	return nil
}

// accountDenseTransforms charges the shared dense feature transforms
// (X·W, projections) that fused graph-centric kernels still perform —
// the same tensor-core kernels every strategy runs; only models whose
// per-edge cost does not already include the transform need them.
func accountDenseTransforms(ctx *exec.Ctx, lw LayerWork) {
	v := float64(lw.V)
	f := float64(lw.F)
	fp := float64(lw.Fp)
	mm := func(name string, m, k, n float64) {
		ctx.Launch(device.Kernel{Name: name, Cat: device.CatNeural, TensorCore: true,
			FLOPs: 2 * m * k * n, Bytes: (m*k + k*n + m*n) * fb}, nil)
	}
	switch lw.Kind {
	case nn.GCN:
		mm("fused.xw", v, f, fp)
	case nn.SAGE:
		mm("fused.self", v, f, fp)
		mm("fused.neigh", v, f, fp)
	}
	// RGCN/GAT/LSTM recompute weights per edge inside the fused kernel —
	// that inefficiency IS the per-edge cost, so nothing extra here
	// (except RGCN/LSTM self weights, negligible next to per-edge work).
}

// l2ReuseFactor models on-chip caching of the shared weight matrix during
// edge-by-edge compute: each SM re-reads W from L2 rather than HBM, so
// the effective per-edge weight traffic is a fraction of the full matrix.
const l2ReuseFactor = 8

// perEdgeCost returns the FLOPs and bytes of one fused edge-by-edge step:
// no batching or tensor cores, and weight traffic only amortized by the
// cache (the graph-centric inefficiency of paper Figure 3a).
func perEdgeCost(lw LayerWork) (flops, bytes float64) {
	f := float64(lw.F)
	fp := float64(lw.Fp)
	switch lw.Kind {
	case nn.GCN:
		// addition over transformed rows: load XW[src], accumulate
		return fp, (fp + 1) * fb
	case nn.SAGE:
		// addition over raw features: load X[src], accumulate
		return f, (f + 1) * fb
	case nn.RGCN:
		// per-edge vector–matrix multiply, weight re-fetched per edge
		// (amortized by the cache across an SM's edges)
		return 2 * f * fp, (f + f*fp/l2ReuseFactor + fp) * fb
	case nn.GAT:
		// per-edge projection recompute + score + weighted accumulate
		return 2*f*fp + 4*fp, (f + f*fp/l2ReuseFactor + fp) * fb
	case nn.SAGELSTM:
		// one LSTM cell per edge, weights re-fetched through the cache
		hd := fp
		return 2 * (f + hd) * 4 * hd, (f + (f+hd)*4*hd/l2ReuseFactor + hd) * fb
	}
	return 0, 0
}

// degreeBuckets maps degree → vertex count (zero degrees skipped).
func degreeBuckets(inDeg []int32) map[int]int {
	b := make(map[int]int)
	for _, d := range inDeg {
		if d > 0 {
			b[int(d)]++
		}
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func kname(base string, t int) string {
	// small helper avoiding fmt in the hot accounting loop
	const digits = "0123456789"
	if t < 10 {
		return base + "." + digits[t:t+1]
	}
	return base + "." + digits[t/10:t/10+1] + digits[t%10:t%10+1]
}
