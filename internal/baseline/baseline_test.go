package baseline

import (
	"errors"
	"math"
	"testing"

	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

func testSetup(t *testing.T, kind nn.ModelKind) (*nn.GraphCtx, *nn.Model, *tensor.Tensor) {
	t.Helper()
	res := gen.Generate(gen.Config{NumVertices: 200, NumEdges: 1500, Kind: gen.PowerLaw, Skew: 1.0, NumTypes: 4, Seed: 3})
	gc := nn.NewGraphCtx(res.Graph)
	m, err := nn.NewModel(nn.Config{Kind: kind, InDim: 8, Hidden: 12, OutDim: 5, Layers: 2, Heads: 2, NumTypes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(200, 8)
	tensor.Uniform(x, tensor.NewRNG(7), -1, 1)
	return gc, m, x
}

func TestRunModelMatchesReferenceAllSystems(t *testing.T) {
	for kind := nn.ModelKind(0); kind < nn.NumModels; kind++ {
		gc, m, x := testSetup(t, kind)
		want := forwardReference(gc, m, x)
		for _, sys := range Systems() {
			if !sys.Supports(kind) {
				continue
			}
			ctx := exec.NewCtx(device.New(device.A100()))
			got, err := sys.RunModel(ctx, gc, m, x)
			if err != nil {
				t.Fatalf("%s on %v: %v", sys.Name, kind, err)
			}
			for i := range got.Data() {
				if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-4 {
					t.Fatalf("%s on %v: output differs at %d", sys.Name, kind, i)
				}
			}
		}
	}
}

// forwardReference runs the plain model forward.
func forwardReference(gc *nn.GraphCtx, m *nn.Model, x *tensor.Tensor) *tensor.Tensor {
	return m.Forward(gc, x)
}

func TestUnsupportedCombos(t *testing.T) {
	cases := []struct {
		sys  System
		kind nn.ModelKind
	}{
		{Seastar(), nn.SAGELSTM},
		{GNNAdvisor(), nn.RGCN},
		{GNNAdvisor(), nn.GAT},
		{TCGNN(), nn.RGCN},
		{TCGNN(), nn.SAGELSTM},
	}
	for _, c := range cases {
		gc, m, x := testSetup(t, c.kind)
		ctx := exec.NewCtx(device.New(device.A100()))
		_, err := c.sys.RunModel(ctx, gc, m, x)
		if !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%s on %v: err = %v, want ErrUnsupported", c.sys.Name, c.kind, err)
		}
	}
}

func TestTensorCentricLaunchesManyKernels(t *testing.T) {
	gc, m, x := testSetup(t, nn.RGCN)
	ctxT := exec.NewCtx(device.New(device.A100()))
	ctxT.Compute = false
	if _, err := PyG().RunModel(ctxT, gc, m, x); err != nil {
		t.Fatal(err)
	}
	ctxG := exec.NewCtx(device.New(device.A100()))
	ctxG.Compute = false
	if _, err := Seastar().RunModel(ctxG, gc, m, x); err != nil {
		t.Fatal(err)
	}
	kt := ctxT.Dev.Stats().Kernels
	kg := ctxG.Dev.Stats().Kernels
	if kt <= kg {
		t.Fatalf("tensor-centric launched %d kernels vs graph-centric %d", kt, kg)
	}
	// graph-centric fuses to one kernel per layer
	if kg != int64(len(m.Layers())) {
		t.Fatalf("graph-centric kernels = %d, want %d", kg, len(m.Layers()))
	}
}

func TestTensorCentricOOMAtPaperScale(t *testing.T) {
	gc, m, x := testSetup(t, nn.GAT)
	ctx := exec.NewCtx(device.New(device.A100()))
	ctx.Compute = false
	ctx.PaperScale = 1e6 // model a billion-edge graph
	_, err := PyG().RunModel(ctx, gc, m, x)
	if !errors.Is(err, exec.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	// graph-centric survives the same scale (no per-edge materialization)
	ctx2 := exec.NewCtx(device.New(device.A100()))
	ctx2.Compute = false
	ctx2.PaperScale = 1e6
	if _, err := Seastar().RunModel(ctx2, gc, m, x); err != nil {
		t.Fatalf("graph-centric must not OOM: %v", err)
	}
}

func TestBalancedSchedulingHelpsOnSkew(t *testing.T) {
	gc, m, x := testSetup(t, nn.SAGE)
	run := func(sys System) float64 {
		ctx := exec.NewCtx(device.New(device.A100()))
		ctx.Compute = false
		if _, err := sys.RunModel(ctx, gc, m, x); err != nil {
			t.Fatal(err)
		}
		return ctx.Dev.Stats().SimSeconds
	}
	seastar := run(Seastar())
	gnna := run(GNNAdvisor())
	if gnna > seastar+1e-12 {
		t.Fatalf("balanced scheduling slower: GNNA %.3g vs Seastar %.3g", gnna, seastar)
	}
}

func TestComputeMemoryRatioShape(t *testing.T) {
	// Paper Figure 3(a): graph-centric compute/memory ratio is near the
	// roofline for Addition models and far below it for MLP-class models
	// relative to what batching achieves.
	ratioFor := func(kind nn.ModelKind) float64 {
		gc, m, x := testSetup(t, kind)
		ctx := exec.NewCtx(device.New(device.A100()))
		ctx.Compute = false
		if _, err := Seastar().RunModel(ctx, gc, m, x); err != nil {
			t.Fatal(err)
		}
		_ = gc
		_ = x
		_ = m
		return ctx.Dev.ComputeMemoryRatio()
	}
	add := ratioFor(nn.GCN)
	mlp := ratioFor(nn.RGCN)
	if add <= 0 || mlp <= 0 {
		t.Fatalf("ratios: add=%v mlp=%v", add, mlp)
	}
	// The per-edge MLP re-fetches its F×F' weight per edge, pinning the
	// ratio near 2 regardless of dimensions — the Figure 3a gap.
	if mlp > 3 {
		t.Fatalf("graph-centric MLP ratio %v, want ≈2 (no reuse)", mlp)
	}
}

func TestTensorCentricBreakdownIndexingDominates(t *testing.T) {
	// Paper Figure 3(b): tensor-centric neural time < 40%, the rest is
	// data movement.
	gc, m, x := testSetup(t, nn.SAGE)
	ctx := exec.NewCtx(device.New(device.A100()))
	ctx.Compute = false
	if _, err := PyG().RunModel(ctx, gc, m, x); err != nil {
		t.Fatal(err)
	}
	st := ctx.Dev.Stats()
	neural := st.ByCategory["neural"]
	frac := neural / st.SimSeconds
	if frac >= 0.5 {
		t.Fatalf("neural fraction = %.2f, want < 0.5 (indexing should dominate)", frac)
	}
}

func TestTrainingAccountingIncreasesTime(t *testing.T) {
	gc, m, x := testSetup(t, nn.GCN)
	run := func(training bool) float64 {
		ctx := exec.NewCtx(device.New(device.A100()))
		ctx.Compute = false
		ctx.Training = training
		if _, err := PyG().RunModel(ctx, gc, m, x); err != nil {
			t.Fatal(err)
		}
		return ctx.Dev.Stats().SimSeconds
	}
	fwd := run(false)
	train := run(true)
	if train <= fwd {
		t.Fatalf("training time %v must exceed inference %v", train, fwd)
	}
}

func TestDGLSwitchesStrategyByModelClass(t *testing.T) {
	d := DGL()
	if d.StrategyFor(nn.RGCN) != TensorCentric || d.StrategyFor(nn.GAT) != TensorCentric {
		t.Fatal("DGL must be tensor-centric for complex models")
	}
	if d.StrategyFor(nn.GCN) != VertexCentric || d.StrategyFor(nn.SAGE) != VertexCentric {
		t.Fatal("DGL must be graph-centric for simple models")
	}
}

func TestEdgeCentricAccounting(t *testing.T) {
	gc, m, x := testSetup(t, nn.GCN)
	lw := NewLayerWork(gc, m.Layers()[0], nn.GCN)
	ctx := exec.NewCtx(device.New(device.A100()))
	ctx.Compute = false
	if err := accountEdgeCentric(ctx, lw); err != nil {
		t.Fatal(err)
	}
	st := ctx.Dev.Stats()
	// one dense-transform kernel (GCN's X·W) plus the fused edge kernel
	if st.Kernels != 2 || st.SimSeconds <= 0 {
		t.Fatalf("edge-centric stats: %+v", st)
	}
	_ = x
}
