package tensor

import (
	"sync"

	"wisegraph/internal/parallel"
)

// Destination binning for scatter reductions. Instead of every worker
// rescanning the full edge list and skipping edges outside its shard
// (O(workers × E)), the index array is partitioned once into per-shard
// position lists (O(E)) and each worker walks only its own list. Shards
// partition the destination-row range, so no two workers ever write the
// same row, and the per-shard lists keep the original edge order, so each
// destination row accumulates its contributions in exactly the order the
// sequential loop would — results are bitwise identical.

// Bins is a stable partition of index positions by destination shard.
// Shard s owns destination rows [s·rowsPer, (s+1)·rowsPer).
type Bins struct {
	shards  int
	rowsPer int
	offsets []int32 // len shards+1
	order   []int32 // positions grouped by shard, original order within
}

// NumShards returns the shard count the bins were built for.
func (b *Bins) NumShards() int { return b.shards }

// Shard returns the index positions owned by shard s, in original order.
func (b *Bins) Shard(s int) []int32 {
	return b.order[b.offsets[s]:b.offsets[s+1]]
}

// Len returns the number of binned positions.
func (b *Bins) Len() int { return len(b.order) }

// BinRows partitions positions of idx by destination shard for rows
// destination rows split across shards workers. reuse, when non-nil, is
// overwritten and returned to avoid reallocation.
func BinRows(reuse *Bins, idx []int32, rows, shards int) *Bins {
	if shards < 1 {
		shards = 1
	}
	if shards > rows && rows > 0 {
		shards = rows
	}
	b := reuse
	if b == nil {
		b = &Bins{}
	}
	b.shards = shards
	b.rowsPer = (rows + shards - 1) / shards
	if b.rowsPer < 1 {
		b.rowsPer = 1
	}
	b.offsets = growInt32(b.offsets, shards+1)
	b.order = growInt32(b.order, len(idx))
	counts := b.offsets // reuse as scratch: counts[s+1] accumulates shard s
	for i := range counts {
		counts[i] = 0
	}
	per := int32(b.rowsPer)
	for _, ix := range idx {
		counts[ix/per+1]++
	}
	for s := 0; s < shards; s++ {
		counts[s+1] += counts[s]
	}
	next := getInt32(shards)
	copy(next, counts[:shards])
	for i, ix := range idx {
		s := ix / per
		b.order[next[s]] = int32(i)
		next[s]++
	}
	putInt32(next)
	return b
}

// growInt32 returns a slice of length n, reusing s's storage when it is
// large enough.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

// int32Pool recycles scratch index slices across scatter calls so the
// binned path allocates nothing in steady state.
var int32Pool = sync.Pool{New: func() any { s := make([]int32, 0, 1024); return &s }}

func getInt32(n int) []int32 {
	p := int32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	return (*p)[:n]
}

func putInt32(s []int32) {
	s = s[:0]
	int32Pool.Put(&s)
}

// binsPool recycles whole Bins values for scatter calls that cannot keep
// one alive across iterations.
var binsPool = sync.Pool{New: func() any { return &Bins{} }}

// scatterShards picks the shard count for a scatter over rows
// destination rows and nnz index entries.
func scatterShards(rows, nnz int) int {
	w := parallel.Workers(rows, 1)
	if w > nnz {
		w = nnz
	}
	return w
}
