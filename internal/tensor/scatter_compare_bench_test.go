package tensor

import (
	"fmt"
	"testing"

	"wisegraph/internal/parallel"
)

// BenchmarkScatterCompare pits three scatter-add strategies against each
// other in the same process (immune to machine-load drift between
// sessions), at increasing worker counts:
//
//   - skipscan: the pre-binning algorithm — every worker rescans the full
//     edge list and applies only entries whose destination falls in its
//     range shard, O(workers·E) index reads. Its scan cost grows linearly
//     with the worker count.
//   - binned: ScatterAddRows as shipped — one stable counting-sort pass
//     partitions positions by destination shard, then each shard applies
//     its own positions, O(E + shards) total index work.
//   - prebinned: the training-loop configuration — the binning is built
//     once (cached on GraphCtx in real training, since index arrays are
//     static per graph) and only the apply pass is timed.
func BenchmarkScatterCompare(b *testing.B) {
	rng := NewRNG(13)
	const rows, cols, nnz = 4096, 256, 60000
	src := Uniform(New(nnz, cols), rng, -1, 1)
	idx := powerLawIdx(rng, nnz, rows)
	dst := New(rows, cols)

	for _, workers := range []int{4, 16} {
		b.Run(fmt.Sprintf("skipscan-w%d", workers), func(b *testing.B) {
			benchWorkers(b, workers)
			shards := parallel.Workers(rows, 1)
			rowsPer := (rows + shards - 1) / shards
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				dst.Zero()
				parallel.For(shards, 1, func(s int) {
					lo, hi := int32(s*rowsPer), int32((s+1)*rowsPer)
					for i, ix := range idx {
						if ix < lo || ix >= hi {
							continue
						}
						d := dst.Data()[int(ix)*cols : (int(ix)+1)*cols]
						sr := src.Data()[i*cols : (i+1)*cols]
						for j, v := range sr {
							d[j] += v
						}
					}
				})
			}
		})
		b.Run(fmt.Sprintf("binned-w%d", workers), func(b *testing.B) {
			benchWorkers(b, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				dst.Zero()
				ScatterAddRows(dst, src, idx)
			}
		})
		b.Run(fmt.Sprintf("prebinned-w%d", workers), func(b *testing.B) {
			benchWorkers(b, workers)
			bins := BinRows(nil, idx, rows, scatterShards(rows, nnz))
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				dst.Zero()
				ScatterAddRowsBinned(dst, src, idx, bins)
			}
		})
	}
}
