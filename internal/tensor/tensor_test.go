package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			c.Set(float32(s), i, j)
		}
	}
	return c
}

func randTensor(rng *RNG, shape ...int) *Tensor {
	t := New(shape...)
	Uniform(t, rng, -1, 1)
	return t
}

func tensorsClose(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape mismatch: got %v want %v", got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		if !almostEq(float64(got.Data()[i]), float64(want.Data()[i]), tol) {
			t.Fatalf("element %d: got %v want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestNewShapeAndAccess(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 || a.Dims() != 2 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("unexpected metadata: %v len=%d", a.Shape(), a.Len())
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", a.At(1, 2))
	}
	if a.Row(1)[2] != 5 {
		t.Fatalf("Row view broken")
	}
}

func TestReshapeInference(t *testing.T) {
	a := New(4, 6)
	b := a.Reshape(2, -1)
	if b.Dim(1) != 12 {
		t.Fatalf("inferred dim = %d, want 12", b.Dim(1))
	}
	b.Set(7, 0, 0)
	if a.At(0, 0) != 7 {
		t.Fatalf("Reshape must alias storage")
	}
}

func TestReshapeBadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for incompatible reshape")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 13}, {64, 32, 48}} {
		a := randTensor(rng, dims[0], dims[1])
		b := randTensor(rng, dims[1], dims[2])
		got := MatMul(nil, a, b)
		tensorsClose(t, got, naiveMatMul(a, b), 1e-4)
	}
}

func TestMatMulAccAccumulates(t *testing.T) {
	rng := NewRNG(2)
	a := randTensor(rng, 4, 3)
	b := randTensor(rng, 3, 5)
	base := randTensor(rng, 4, 5)
	dst := base.Clone()
	MatMulAcc(dst, a, b)
	want := Add(nil, base, naiveMatMul(a, b))
	tensorsClose(t, dst, want, 1e-4)
}

func TestMatMulTransB(t *testing.T) {
	rng := NewRNG(3)
	a := randTensor(rng, 6, 7)
	b := randTensor(rng, 5, 7)
	got := MatMulTransB(nil, a, b)
	want := naiveMatMul(a, Transpose2D(nil, b))
	tensorsClose(t, got, want, 1e-4)
}

func TestMatMulTransA(t *testing.T) {
	rng := NewRNG(4)
	a := randTensor(rng, 7, 4)
	b := randTensor(rng, 7, 5)
	got := MatMulTransA(nil, a, b)
	want := naiveMatMul(Transpose2D(nil, a), b)
	tensorsClose(t, got, want, 1e-4)
}

func TestVecMatMatchesMatMul(t *testing.T) {
	rng := NewRNG(5)
	x := randTensor(rng, 1, 9)
	b := randTensor(rng, 9, 4)
	out := make([]float32, 4)
	VecMat(out, x.Data(), b)
	want := naiveMatMul(x, b)
	for j := range out {
		if !almostEq(float64(out[j]), float64(want.At(0, j)), 1e-4) {
			t.Fatalf("VecMat[%d] = %v, want %v", j, out[j], want.At(0, j))
		}
	}
}

func TestBatchedMatMul(t *testing.T) {
	rng := NewRNG(6)
	a := randTensor(rng, 3, 4, 5)
	b := randTensor(rng, 3, 5, 2)
	got := BatchedMatMul(nil, a, b)
	for i := 0; i < 3; i++ {
		ai := FromSlice(a.Data()[i*20:(i+1)*20], 4, 5)
		bi := FromSlice(b.Data()[i*10:(i+1)*10], 5, 2)
		want := naiveMatMul(ai, bi)
		gi := FromSlice(got.Data()[i*8:(i+1)*8], 4, 2)
		tensorsClose(t, gi, want, 1e-4)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(7)
	a := randTensor(rng, 5, 8)
	back := Transpose2D(nil, Transpose2D(nil, a))
	tensorsClose(t, back, a, 0)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3, -4}, 2, 2)
	b := FromSlice([]float32{2, 2, 2, 2}, 2, 2)
	tensorsClose(t, Add(nil, a, b), FromSlice([]float32{3, 0, 5, -2}, 2, 2), 0)
	tensorsClose(t, Sub(nil, a, b), FromSlice([]float32{-1, -4, 1, -6}, 2, 2), 0)
	tensorsClose(t, Mul(nil, a, b), FromSlice([]float32{2, -4, 6, -8}, 2, 2), 0)
	tensorsClose(t, Scale(nil, a, 0.5), FromSlice([]float32{0.5, -1, 1.5, -2}, 2, 2), 0)
	tensorsClose(t, ReLU(nil, a), FromSlice([]float32{1, 0, 3, 0}, 2, 2), 0)
	tensorsClose(t, LeakyReLU(nil, a, 0.1), FromSlice([]float32{1, -0.2, 3, -0.4}, 2, 2), 1e-6)
}

func TestAXPYAndAddBias(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float32{10, 10, 10, 10}, 2, 2)
	AXPY(a, 0.5, x)
	tensorsClose(t, a, FromSlice([]float32{6, 7, 8, 9}, 2, 2), 0)
	bias := FromSlice([]float32{1, -1}, 2)
	AddBias(a, bias)
	tensorsClose(t, a, FromSlice([]float32{7, 6, 9, 8}, 2, 2), 0)
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := NewRNG(8)
	a := randTensor(rng, 10, 7)
	s := SoftmaxRows(nil, a)
	for i := 0; i < 10; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v < 0 {
				t.Fatalf("negative softmax output %v", v)
			}
			sum += float64(v)
		}
		if !almostEq(sum, 1, 1e-5) {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestLogSoftmaxMatchesSoftmax(t *testing.T) {
	rng := NewRNG(9)
	a := randTensor(rng, 4, 6)
	ls := LogSoftmaxRows(nil, a)
	s := SoftmaxRows(nil, a)
	for i := range ls.Data() {
		if !almostEq(float64(ls.Data()[i]), math.Log(float64(s.Data()[i])), 1e-4) {
			t.Fatalf("log-softmax mismatch at %d", i)
		}
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := NewRNG(10)
	logits := randTensor(rng, 5, 4)
	labels := []int32{0, 3, 1, 2, 0}
	mask := []int32{0, 2, 4}
	grad := New(5, 4)
	loss := CrossEntropy(logits, labels, mask, grad)
	if loss <= 0 {
		t.Fatalf("loss = %v, want > 0", loss)
	}
	// numeric gradient check at a few positions
	eps := float32(1e-3)
	for _, pos := range [][2]int{{0, 0}, {2, 1}, {4, 3}, {1, 2}} {
		orig := logits.At(pos[0], pos[1])
		logits.Set(orig+eps, pos[0], pos[1])
		lp := CrossEntropy(logits, labels, mask, nil)
		logits.Set(orig-eps, pos[0], pos[1])
		lm := CrossEntropy(logits, labels, mask, nil)
		logits.Set(orig, pos[0], pos[1])
		num := (lp - lm) / float64(2*eps)
		if !almostEq(num, float64(grad.At(pos[0], pos[1])), 2e-3) {
			t.Fatalf("grad[%v] = %v, numeric %v", pos, grad.At(pos[0], pos[1]), num)
		}
	}
	// masked-out row 1 must have zero gradient
	for j := 0; j < 4; j++ {
		if grad.At(1, j) != 0 {
			t.Fatalf("masked row has gradient %v", grad.At(1, j))
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	rng := NewRNG(11)
	src := randTensor(rng, 6, 3)
	idx := []int32{5, 0, 0, 2}
	g := GatherRows(nil, src, idx)
	for i, ix := range idx {
		for j := 0; j < 3; j++ {
			if g.At(i, j) != src.At(int(ix), j) {
				t.Fatalf("gather mismatch at (%d,%d)", i, j)
			}
		}
	}
	dst := New(6, 3)
	ScatterAddRows(dst, g, idx)
	// row 0 received two copies, rows 2 and 5 one, others zero
	for j := 0; j < 3; j++ {
		if !almostEq(float64(dst.At(0, j)), 2*float64(src.At(0, j)), 1e-5) {
			t.Fatalf("scatter row 0 wrong")
		}
		if dst.At(1, j) != 0 || dst.At(3, j) != 0 || dst.At(4, j) != 0 {
			t.Fatalf("untouched rows must be zero")
		}
	}
}

func TestScatterAddLargeParallelPath(t *testing.T) {
	rng := NewRNG(12)
	n := 2000
	src := randTensor(rng, n, 4)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(rng.Intn(37))
	}
	dst := New(37, 4)
	ScatterAddRows(dst, src, idx)
	want := New(37, 4)
	for i, ix := range idx {
		for j := 0; j < 4; j++ {
			want.Set(want.At(int(ix), j)+src.At(i, j), int(ix), j)
		}
	}
	tensorsClose(t, dst, want, 1e-3)
}

func TestSegmentSum(t *testing.T) {
	src := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 4, 2)
	offsets := []int32{0, 2, 2, 4}
	out := SegmentSum(nil, src, offsets)
	want := FromSlice([]float32{4, 6, 0, 0, 12, 14}, 3, 2)
	tensorsClose(t, out, want, 0)
}

func TestSegmentSoftmax(t *testing.T) {
	vals := []float32{1, 2, 3, 10, -5, 0.5}
	SegmentSoftmax(vals, []int32{0, 3, 5, 6})
	var s1, s2 float64
	for _, v := range vals[:3] {
		s1 += float64(v)
	}
	for _, v := range vals[3:5] {
		s2 += float64(v)
	}
	if !almostEq(s1, 1, 1e-5) || !almostEq(s2, 1, 1e-5) || !almostEq(float64(vals[5]), 1, 1e-5) {
		t.Fatalf("segment softmax sums: %v %v %v", s1, s2, vals[5])
	}
}

func TestGather2DScatter2D(t *testing.T) {
	rng := NewRNG(13)
	src := randTensor(rng, 3, 4, 2) // R=3, C=4, inner=2
	ri := []int32{0, 2, 2, 1}
	ci := []int32{3, 0, 0, 1}
	g := Gather2D(nil, src, ri, ci)
	for i := range ri {
		for j := 0; j < 2; j++ {
			if g.At(i, j) != src.At(int(ri[i]), int(ci[i]), j) {
				t.Fatalf("gather2d mismatch at (%d,%d)", i, j)
			}
		}
	}
	dst := New(3, 4, 2)
	Scatter2DAdd(dst, g, ri, ci)
	for j := 0; j < 2; j++ {
		if !almostEq(float64(dst.At(2, 0, j)), 2*float64(src.At(2, 0, j)), 1e-5) {
			t.Fatalf("scatter2d duplicate accumulation wrong")
		}
	}
}

func TestCountsToOffsets(t *testing.T) {
	off := CountsToOffsets([]int32{2, 0, 3})
	want := []int32{0, 2, 2, 5}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("offsets %v, want %v", off, want)
		}
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float32{0, 5, 1, 9, 2, 3}, 2, 3)
	got := ArgMaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("argmax = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed must give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatalf("different seeds should diverge")
	}
}

func TestXavierBounds(t *testing.T) {
	w := XavierUniform(New(64, 32), NewRNG(3))
	limit := math.Sqrt(6.0 / 96.0)
	for _, v := range w.Data() {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("xavier value %v exceeds limit %v", v, limit)
		}
	}
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ.
func TestPropMatMulTransposeIdentity(t *testing.T) {
	f := func(seed uint64, msmall, ksmall, nsmall uint8) bool {
		m, k, n := int(msmall%7)+1, int(ksmall%7)+1, int(nsmall%7)+1
		rng := NewRNG(seed)
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		left := Transpose2D(nil, MatMul(nil, a, b))
		right := MatMul(nil, Transpose2D(nil, b), Transpose2D(nil, a))
		for i := range left.Data() {
			if !almostEq(float64(left.Data()[i]), float64(right.Data()[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: scatter-add conserves mass — sum(dst) == sum(src).
func TestPropScatterConservesMass(t *testing.T) {
	f := func(seed uint64, rowsSmall, bucketSmall uint8) bool {
		rows := int(rowsSmall%50) + 1
		buckets := int(bucketSmall%10) + 1
		rng := NewRNG(seed)
		src := randTensor(rng, rows, 3)
		idx := make([]int32, rows)
		for i := range idx {
			idx[i] = int32(rng.Intn(buckets))
		}
		dst := New(buckets, 3)
		ScatterAddRows(dst, src, idx)
		return almostEq(dst.Sum(), src.Sum(), 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: GatherRows then SegmentSum with unit segments is identity.
func TestPropGatherIdentity(t *testing.T) {
	f := func(seed uint64, nSmall uint8) bool {
		n := int(nSmall%20) + 1
		rng := NewRNG(seed)
		src := randTensor(rng, n, 2)
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		g := GatherRows(nil, src, idx)
		for i := range g.Data() {
			if g.Data()[i] != src.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
