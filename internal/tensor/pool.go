package tensor

import (
	"math/bits"
	"sync"
)

// Buffer pooling. Training runs the same DFG every iteration, so every
// intermediate tensor it allocates has the same shape as last iteration's
// — the allocator work and GC pressure are pure overhead. Two reuse
// mechanisms cover the callers:
//
//   - Get/Put: a process-wide, size-bucketed recycle pool (sync.Pool
//     backed). Concurrency-safe; the storage survives between users, so
//     Get zero-fills before handing a tensor out.
//   - Arena: a single-owner free list that also recycles the Tensor
//     structs and shape slices themselves, reaching zero allocations in
//     steady state. Not concurrency-safe; intended for one evaluator
//     (e.g. a DFG interpretation) that Resets between iterations.
//
// Pooled storage is always a power-of-two capacity so a bucket index is
// recoverable from cap() alone.

const poolBuckets = 31

var storagePool [poolBuckets]sync.Pool

// bucketFor returns the smallest b with 1<<b ≥ n (n ≥ 1).
func bucketFor(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a zero-filled tensor of the given shape, reusing recycled
// storage when available. Pair with Put to recycle.
func Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in Get")
		}
		n *= d
	}
	if n == 0 {
		return New(shape...)
	}
	return &Tensor{data: getStorage(n), shape: append([]int(nil), shape...)}
}

// getStorage returns a zeroed []float32 of length n with pow2 capacity.
func getStorage(n int) []float32 {
	b := bucketFor(n)
	if b >= poolBuckets {
		return make([]float32, n)
	}
	if p, ok := storagePool[b].Get().(*[]float32); ok {
		d := (*p)[:n]
		for i := range d {
			d[i] = 0
		}
		return d
	}
	return make([]float32, n, 1<<b)
}

// Put recycles t's storage into the pool. The caller must not use t (or
// any view sharing its storage, e.g. from Reshape) afterwards; t is
// emptied to make accidental reuse fail fast.
func Put(t *Tensor) {
	if t == nil {
		return
	}
	putStorage(t.data)
	t.data = nil
	t.shape = nil
}

func putStorage(d []float32) {
	c := cap(d)
	if c == 0 || c&(c-1) != 0 { // only pow2 capacities are bucket-addressable
		return
	}
	b := bits.Len(uint(c)) - 1
	if b >= poolBuckets {
		return
	}
	s := d[:0]
	storagePool[b].Put(&s)
}

// Arena allocates tensors whose lifetime ends together: Get hands out
// zeroed tensors, Reset reclaims every one of them (structs included) for
// the next round. The zero value is ready to use. Not safe for concurrent
// use, and tensors obtained from an arena must not escape a Reset — that
// includes views created with Reshape.
type Arena struct {
	free [poolBuckets][]*Tensor
	used []*Tensor
}

// Get returns a zero-filled tensor of the given shape owned by the arena.
func (a *Arena) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in Arena.Get")
		}
		n *= d
	}
	if n == 0 {
		t := New(shape...)
		a.used = append(a.used, t)
		return t
	}
	b := bucketFor(n)
	var t *Tensor
	if b < poolBuckets {
		if fl := a.free[b]; len(fl) > 0 {
			t = fl[len(fl)-1]
			a.free[b] = fl[:len(fl)-1]
		}
	}
	if t == nil {
		t = &Tensor{data: getStorage(n)}
	} else {
		t.data = t.data[:cap(t.data)][:n]
		for i := range t.data {
			t.data[i] = 0
		}
	}
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = append([]int(nil), shape...)
	}
	a.used = append(a.used, t)
	return t
}

// Reset reclaims every tensor Get handed out since the last Reset. All of
// them become invalid; copy anything that must survive first.
func (a *Arena) Reset() {
	for i, t := range a.used {
		a.used[i] = nil
		c := cap(t.data)
		if c == 0 || c&(c-1) != 0 {
			continue
		}
		if b := bits.Len(uint(c)) - 1; b < poolBuckets {
			a.free[b] = append(a.free[b], t)
		}
	}
	a.used = a.used[:0]
}

// i32BucketPool recycles []int32 scratch with the same power-of-two bucketing
// as the float32 storage pool. The graph partitioner is the main client:
// radix-sort columns, histograms and stamp arrays are all int32 and are
// reallocated per PartitionGraph call without it.
var i32BucketPool [poolBuckets]sync.Pool

// GetI32 returns a zero-filled []int32 of length n with power-of-two
// capacity, reusing recycled storage when available. Pair with PutI32.
func GetI32(n int) []int32 {
	if n == 0 {
		return nil
	}
	b := bucketFor(n)
	if b >= poolBuckets {
		return make([]int32, n)
	}
	if p, ok := i32BucketPool[b].Get().(*[]int32); ok {
		d := (*p)[:n]
		for i := range d {
			d[i] = 0
		}
		return d
	}
	return make([]int32, n, 1<<b)
}

// PutI32 recycles s into the pool. The caller must not use s afterwards.
func PutI32(s []int32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 { // only pow2 capacities are bucket-addressable
		return
	}
	b := bits.Len(uint(c)) - 1
	if b >= poolBuckets {
		return
	}
	d := s[:0]
	i32BucketPool[b].Put(&d)
}

// float32Pool recycles small scratch slices (softmax probabilities etc.).
var float32Pool = sync.Pool{New: func() any { s := make([]float32, 0, 256); return &s }}

func getFloat32(n int) []float32 {
	p := float32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	return (*p)[:n]
}

func putFloat32(s []float32) {
	s = s[:0]
	float32Pool.Put(&s)
}
