package tensor

import "math"

// RNG is a small deterministic xorshift64* generator. All randomness in the
// repository flows through explicit RNG values so every experiment is
// reproducible from its seed.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// State returns the generator's internal state, for checkpointing: a
// generator restored with SetState continues the exact same stream, which
// is what makes train-resume trajectories bit-identical.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously captured with State.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a pseudo-random float32 in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u > 1e-12 {
			v := r.Float64()
			return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
		}
	}
}

// Fork returns an independent generator derived from r and a stream id,
// so parallel components can draw without sharing state.
func (r *RNG) Fork(stream uint64) *RNG {
	return NewRNG(r.Uint64() ^ (stream * 0xbf58476d1ce4e5b9))
}

// Uniform fills t with values drawn uniformly from [lo, hi).
func Uniform(t *Tensor, rng *RNG, lo, hi float32) *Tensor {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float32()
	}
	return t
}

// XavierUniform fills a weight tensor using Glorot/Xavier initialization
// with fan-in = second-to-last dimension and fan-out = last dimension.
func XavierUniform(t *Tensor, rng *RNG) *Tensor {
	d := t.Dims()
	fanIn, fanOut := 1, 1
	if d >= 2 {
		fanIn = t.Dim(d - 2)
		fanOut = t.Dim(d - 1)
	} else if d == 1 {
		fanOut = t.Dim(0)
	}
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return Uniform(t, rng, -limit, limit)
}
