package tensor

import (
	"strings"
	"testing"
)

// Property tests for the binned/blocked/pooled fast paths: each parallel
// or buffer-reusing path must produce output bitwise identical to its
// sequential reference, including under power-law (hub-skewed) index
// distributions, because the paper's accuracy-parity claim (Figure 14)
// assumes execution strategy never changes the numbers.

// refScatterAdd is the trivially-correct sequential accumulation.
func refScatterAdd(dst, src *Tensor, idx []int32) {
	rs := src.RowSize()
	for i, ix := range idx {
		d := dst.Data()[int(ix)*rs : (int(ix)+1)*rs]
		s := src.Data()[i*rs : (i+1)*rs]
		for j, v := range s {
			d[j] += v
		}
	}
}

func TestScatterAddRowsBinnedBitwiseEqualSeq(t *testing.T) {
	rng := NewRNG(101)
	for _, tc := range []struct{ rows, cols, nnz, shards int }{
		{rows: 512, cols: 17, nnz: 5000, shards: 8},
		{rows: 64, cols: 3, nnz: 2000, shards: 5},
		{rows: 4096, cols: 32, nnz: 20000, shards: 16},
	} {
		idx := powerLawIdx(rng, tc.nnz, tc.rows)
		src := Uniform(New(tc.nnz, tc.cols), rng, -1, 1)
		want := New(tc.rows, tc.cols)
		refScatterAdd(want, src, idx)
		withWorkers(t, tc.shards, func() {
			got := New(tc.rows, tc.cols)
			bins := BinRows(nil, idx, tc.rows, tc.shards)
			ScatterAddRowsBinned(got, src, idx, bins)
			for i, v := range got.Data() {
				if v != want.Data()[i] {
					t.Fatalf("rows=%d: binned[%d]=%v, seq=%v", tc.rows, i, v, want.Data()[i])
				}
			}
			// the dispatching entry point must agree too
			got2 := New(tc.rows, tc.cols)
			ScatterAddRows(got2, src, idx)
			for i, v := range got2.Data() {
				if v != want.Data()[i] {
					t.Fatalf("rows=%d: auto[%d]=%v, seq=%v", tc.rows, i, v, want.Data()[i])
				}
			}
		})
	}
}

func TestScatter2DAddBitwiseEqualSeq(t *testing.T) {
	rng := NewRNG(102)
	const r, c, inner, nnz = 40, 30, 5, 4000
	ri := powerLawIdx(rng, nnz, r)
	ci := powerLawIdx(rng, nnz, c)
	src := Uniform(New(nnz, inner), rng, -1, 1)
	want := New(r, c, inner)
	for i := 0; i < nnz; i++ {
		off := (int(ri[i])*c + int(ci[i])) * inner
		s := src.Data()[i*inner : (i+1)*inner]
		d := want.Data()[off : off+inner]
		for j, v := range s {
			d[j] += v
		}
	}
	withWorkers(t, 8, func() {
		got := New(r, c, inner)
		Scatter2DAdd(got, src, ri, ci)
		for i, v := range got.Data() {
			if v != want.Data()[i] {
				t.Fatalf("binned[%d]=%v, seq=%v", i, v, want.Data()[i])
			}
		}
	})
}

func TestBinRowsPartitionIsStable(t *testing.T) {
	rng := NewRNG(103)
	const rows, nnz, shards = 100, 3000, 7
	idx := powerLawIdx(rng, nnz, rows)
	bins := BinRows(nil, idx, rows, shards)
	if bins.Len() != nnz {
		t.Fatalf("bins cover %d positions, want %d", bins.Len(), nnz)
	}
	seen := make([]bool, nnz)
	lastPos := make(map[int32]int32)
	for s := 0; s < bins.NumShards(); s++ {
		for _, p := range bins.Shard(s) {
			if seen[p] {
				t.Fatalf("position %d appears twice", p)
			}
			seen[p] = true
			// Determinism hinges on stability: positions sharing a
			// destination must appear in ascending (original) order.
			if lp, ok := lastPos[idx[p]]; ok && p < lp {
				t.Fatalf("destination %d: position %d after %d", idx[p], p, lp)
			}
			lastPos[idx[p]] = p
		}
	}
	for p, ok := range seen {
		if !ok {
			t.Fatalf("position %d missing from bins", p)
		}
	}
}

// TestMatMulBlockedBitwiseEqualNaive exercises the cache-blocked K-panel
// path (k*n > matmulPanel) against a naive ascending-k accumulation, which
// shares its per-element summation order.
func TestMatMulBlockedBitwiseEqualNaive(t *testing.T) {
	rng := NewRNG(104)
	const m, k, n = 48, 300, 256 // k*n = 76800 > matmulPanel
	if k*n <= matmulPanel {
		t.Fatal("test sizes no longer trigger the blocked path")
	}
	a := Uniform(New(m, k), rng, -1, 1)
	b := Uniform(New(k, n), rng, -1, 1)
	want := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.At(i, p)
			for j := 0; j < n; j++ {
				want.Data()[i*n+j] += av * b.At(p, j)
			}
		}
	}
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers, func() {
			got := MatMul(nil, a, b)
			for i, v := range got.Data() {
				if v != want.Data()[i] {
					t.Fatalf("workers=%d: blocked[%d]=%v, naive=%v", workers, i, v, want.Data()[i])
				}
			}
		})
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	a := Get(7, 9)
	if a.Dim(0) != 7 || a.Dim(1) != 9 {
		t.Fatalf("Get shape %v", a.Shape())
	}
	for i := range a.Data() {
		a.Data()[i] = 42
	}
	Put(a)
	if a.Data() != nil {
		t.Fatal("Put must poison the tensor")
	}
	// a recycled tensor must come back zero-filled
	b := Get(7, 9)
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("recycled Get not zeroed at %d: %v", i, v)
		}
	}
	Put(b)
	// zero-sized shapes bypass the pool but must still work
	z := Get(0, 5)
	if z.Len() != 0 {
		t.Fatalf("zero Get length %d", z.Len())
	}
	Put(z)
}

func TestArenaReuseAndReset(t *testing.T) {
	var ar Arena
	a := ar.Get(3, 4)
	b := ar.Get(8)
	a.Data()[0] = 1
	b.Data()[0] = 2
	ar.Reset()
	c := ar.Get(3, 4)
	for i, v := range c.Data() {
		if v != 0 {
			t.Fatalf("arena reuse not zeroed at %d: %v", i, v)
		}
	}
	if c != a {
		t.Fatal("arena must recycle the Tensor struct for a same-bucket request")
	}
	// shape can change across Reset as long as the bucket fits
	ar.Reset()
	d := ar.Get(12) // 12 ≤ 16 = bucket of 3*4
	if d.Len() != 12 {
		t.Fatalf("arena reshaped length %d", d.Len())
	}
}

func TestGather2DEmptySourcePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Gather2D on empty source must panic")
		}
		if !strings.Contains(r.(string), "empty leading dimension") {
			t.Fatalf("unclear panic: %v", r)
		}
	}()
	Gather2D(nil, New(0, 4), []int32{}, []int32{})
}

func TestScatter2DAddEmptyDestPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Scatter2DAdd on empty destination must panic")
		}
		if !strings.Contains(r.(string), "empty leading dimension") {
			t.Fatalf("unclear panic: %v", r)
		}
	}()
	Scatter2DAdd(New(4, 0), New(0, 1), []int32{}, []int32{})
}
