package tensor

import "testing"

func TestGetI32ZeroFilledAndRecycled(t *testing.T) {
	s := GetI32(100)
	if len(s) != 100 || cap(s) != 128 {
		t.Fatalf("len=%d cap=%d, want 100/128", len(s), cap(s))
	}
	for i := range s {
		s[i] = int32(i + 1)
	}
	PutI32(s)
	r := GetI32(70)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %d", i, v)
		}
	}
	PutI32(r)
}

func TestGetI32Empty(t *testing.T) {
	if s := GetI32(0); s != nil {
		t.Fatalf("GetI32(0) = %v, want nil", s)
	}
	PutI32(nil) // must not panic
}

func TestPutI32NonPow2Ignored(t *testing.T) {
	s := make([]int32, 100) // cap 100, not a power of two
	PutI32(s)               // silently dropped, must not corrupt the pool
	r := GetI32(100)
	if cap(r) != 128 {
		t.Fatalf("cap=%d, want 128", cap(r))
	}
	PutI32(r)
}
