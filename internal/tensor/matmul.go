package tensor

import (
	"fmt"

	"wisegraph/internal/parallel"
)

// MatMul computes C = A × B for 2-D tensors A [M,K] and B [K,N], writing
// into dst [M,N] (allocated if nil) and returning it. The multiply is
// parallelized over row blocks; inner loops are written k-outer so the
// compiler vectorizes the N-dimension AXPY.
func MatMul(dst, a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v × %v", a.Shape(), b.Shape()))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d vs %d", k, k2))
	}
	dst = ensure(dst, m, n)
	matmulInto(dst.data, a.data, b.data, m, k, n, true)
	return dst
}

// MatMulAcc computes dst += A × B without zeroing dst first.
func MatMulAcc(dst, a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMulAcc inner dimensions %d vs %d", k, b.Dim(0)))
	}
	if dst == nil {
		dst = New(m, n)
	}
	matmulInto(dst.data, a.data, b.data, m, k, n, false)
	return dst
}

// matmulPanel is the number of B elements kept hot per K-panel in the
// blocked path (≈256 KiB of float32, sized for a per-core L2 slice).
const matmulPanel = 1 << 16

// matmulInto computes c (+)= a×b with a [m,k], b [k,n], c [m,n] flat.
//
// When B exceeds the panel budget the K dimension is processed in
// cache-blocked panels: each panel of B rows is swept across a block of
// output rows before moving on, so B streams through cache once per row
// block instead of once per output row. Blocking only re-orders the
// (i, panel) iteration — within one output element the k-summation order
// is unchanged, so results are bitwise identical to the unblocked loop.
func matmulInto(c, a, b []float32, m, k, n int, zero bool) {
	grain := 1
	if m > 0 {
		// target ~64k multiply-adds per task
		grain = 1 + 65536/(k*n+1)
	}
	kc := 0 // K-panel height; 0 means unblocked
	if k*n > matmulPanel && n > 0 {
		kc = matmulPanel / n
		if kc < 8 {
			kc = 8
		}
		if grain < 16 {
			grain = 16 // row blocks large enough to amortize panel sweeps
		}
	}
	parallel.ForRange(m, grain, func(lo, hi int) {
		if kc == 0 || kc >= k {
			for i := lo; i < hi; i++ {
				mulAddRow(c[i*n:(i+1)*n], a[i*k:(i+1)*k], b, 0, k, n, zero)
			}
			return
		}
		for p0 := 0; p0 < k; p0 += kc {
			p1 := p0 + kc
			if p1 > k {
				p1 = k
			}
			for i := lo; i < hi; i++ {
				mulAddRow(c[i*n:(i+1)*n], a[i*k:(i+1)*k], b, p0, p1, n, zero && p0 == 0)
			}
		}
	})
}

// mulAddRow computes ci (+)= ai[p0:p1] × b[p0:p1, :] for one output row.
func mulAddRow(ci, ai, b []float32, p0, p1, n int, zero bool) {
	if zero {
		for j := range ci {
			ci[j] = 0
		}
	}
	for p := p0; p < p1; p++ {
		av := ai[p]
		if av == 0 {
			continue
		}
		bp := b[p*n : (p+1)*n]
		for j, bv := range bp {
			ci[j] += av * bv
		}
	}
}

// MatMulTransB computes C = A × Bᵀ for A [M,K], B [N,K] into dst [M,N].
func MatMulTransB(dst, a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions %d vs %d", k, k2))
	}
	dst = ensure(dst, m, n)
	grain := 1 + 65536/(k*n+1)
	parallel.ForRange(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.data[i*k : (i+1)*k]
			ci := dst.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.data[j*k : (j+1)*k]
				var s float32
				for p, av := range ai {
					s += av * bj[p]
				}
				ci[j] = s
			}
		}
	})
	return dst
}

// MatMulTransA computes C = Aᵀ × B for A [K,M], B [K,N] into dst [M,N].
// This is the shape needed for weight gradients (Xᵀ·dY).
func MatMulTransA(dst, a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA leading dimensions %d vs %d", k, k2))
	}
	dst = ensure(dst, m, n)
	dst.Zero()
	// Parallelize over output rows (columns of A) to avoid write races.
	grain := 1 + 65536/(k*n+1)
	parallel.ForRange(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := dst.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.data[p*m+i]
				if av == 0 {
					continue
				}
				bp := b.data[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
	return dst
}

// VecMat computes y = x × B for x [K] (or [1,K]) and B [K,N] into dst [N].
// It is the edge-by-edge "micro-kernel without batched data" path from the
// paper's Figure 10(b).
func VecMat(dst []float32, x []float32, b *Tensor) {
	k, n := b.Dim(0), b.Dim(1)
	if len(x) != k || len(dst) != n {
		panic(fmt.Sprintf("tensor: VecMat shapes x[%d] B%v dst[%d]", len(x), b.Shape(), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for p := 0; p < k; p++ {
		av := x[p]
		if av == 0 {
			continue
		}
		bp := b.data[p*n : (p+1)*n]
		for j, bv := range bp {
			dst[j] += av * bv
		}
	}
}

// BatchedMatMul computes C[i] = A[i] × B[i] for A [B,M,K], B [B,K,N] into
// dst [B,M,N]. Batches are independent and run in parallel.
func BatchedMatMul(dst, a, b *Tensor) *Tensor {
	if a.Dims() != 3 || b.Dims() != 3 || a.Dim(0) != b.Dim(0) || a.Dim(2) != b.Dim(1) {
		panic(fmt.Sprintf("tensor: BatchedMatMul shapes %v × %v", a.Shape(), b.Shape()))
	}
	bs, m, k := a.Dim(0), a.Dim(1), a.Dim(2)
	n := b.Dim(2)
	if dst == nil {
		dst = New(bs, m, n)
	}
	parallel.For(bs, 1, func(i int) {
		as := a.data[i*m*k : (i+1)*m*k]
		bsl := b.data[i*k*n : (i+1)*k*n]
		cs := dst.data[i*m*n : (i+1)*m*n]
		for r := 0; r < m; r++ {
			cr := cs[r*n : (r+1)*n]
			for j := range cr {
				cr[j] = 0
			}
			ar := as[r*k : (r+1)*k]
			for p := 0; p < k; p++ {
				av := ar[p]
				if av == 0 {
					continue
				}
				bp := bsl[p*n : (p+1)*n]
				for j, bv := range bp {
					cr[j] += av * bv
				}
			}
		}
	})
	return dst
}

// Transpose2D returns Aᵀ for a 2-D tensor.
func Transpose2D(dst, a *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	dst = ensure(dst, n, m)
	parallel.ForRange(m, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				dst.data[j*m+i] = a.data[i*n+j]
			}
		}
	})
	return dst
}

// ensure returns dst if it already has the given 2-D shape, else a new
// tensor. Panics if dst is non-nil with the wrong shape, which catches
// buffer-reuse bugs early.
func ensure(dst *Tensor, m, n int) *Tensor {
	if dst == nil {
		return New(m, n)
	}
	if dst.Dims() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: destination shape %v, want [%d %d]", dst.Shape(), m, n))
	}
	return dst
}
