// Package tensor implements the dense-tensor substrate WiseGraph's neural
// operations run on: contiguous row-major float32 tensors with parallel
// blocked matrix multiply, elementwise kernels, and the gather/scatter
// primitives indexing operations compile to.
//
// The package replaces the PyTorch/cuDNN layer the paper builds on. It is
// deliberately minimal — only the operators the five evaluated GNN models
// (GCN, SAGE, SAGE-LSTM, GAT, RGCN) and their gradients require — but each
// operator is a real implementation, not a stub: numerics are exact enough
// to train models to the accuracies reported in EXPERIMENTS.md.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor. The zero value is an empty
// scalar-less tensor; use the constructors.
type Tensor struct {
	data  []float32
	shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data (without copying) in a tensor of the given shape.
// len(data) must equal the product of the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...)}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Shape returns the tensor's dimensions. The caller must not mutate it.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Rows returns the size of the leading dimension (0 for a 0-d tensor).
func (t *Tensor) Rows() int {
	if len(t.shape) == 0 {
		return 0
	}
	return t.shape[0]
}

// RowSize returns the number of elements per leading-dimension row.
func (t *Tensor) RowSize() int {
	if len(t.shape) == 0 {
		return 0
	}
	n := 1
	for _, d := range t.shape[1:] {
		n *= d
	}
	return n
}

// Row returns a view of row i of the leading dimension as a flat slice.
func (t *Tensor) Row(i int) []float32 {
	rs := t.RowSize()
	return t.data[i*rs : (i+1)*rs]
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a view with a new shape; the element count must match.
// One dimension may be -1 to be inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for shape %v from %d elements", shape, len(t.data)))
		}
		out[infer] = len(t.data) / n
		n *= out[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with %d elements", shape, len(t.data)))
	}
	return &Tensor{data: t.data, shape: out}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{data: d, shape: append([]int(nil), t.shape...)}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// CopyFrom copies src's elements into t. Shapes must have equal length.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d vs %d", len(src.data), len(t.data)))
	}
	copy(t.data, src.data)
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	k := len(t.data)
	if k > 8 {
		k = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:k])
}

// Sum returns the sum of all elements (in float64 for stability).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// AllFinite reports whether every element is finite (no NaN/Inf).
func (t *Tensor) AllFinite() bool {
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
