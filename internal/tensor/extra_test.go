package tensor

import (
	"math"
	"strings"
	"testing"

	"wisegraph/internal/parallel"
)

// withWorkers forces a worker count so the parallel code paths execute
// even on single-core machines.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := parallel.SetMaxWorkers(n)
	defer parallel.SetMaxWorkers(old)
	fn()
}

func TestFullAndCopyFrom(t *testing.T) {
	a := Full(3, 2, 2)
	for _, v := range a.Data() {
		if v != 3 {
			t.Fatalf("Full value %v", v)
		}
	}
	b := New(2, 2)
	b.CopyFrom(a)
	if b.At(1, 1) != 3 {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched length must panic")
		}
	}()
	New(3).CopyFrom(a)
}

func TestSameShapeAndString(t *testing.T) {
	a := New(2, 3)
	if !a.SameShape(New(2, 3)) || a.SameShape(New(3, 2)) || a.SameShape(New(6)) {
		t.Fatal("SameShape wrong")
	}
	if !strings.Contains(a.String(), "Tensor[2 3]") {
		t.Fatalf("String = %q", a.String())
	}
	if a.Shape()[0] != 2 {
		t.Fatal("Shape accessor")
	}
}

func TestMaxAbsAndAllFinite(t *testing.T) {
	a := FromSlice([]float32{1, -5, 2}, 3)
	if a.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if !a.AllFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	a.Data()[1] = float32(math.NaN())
	if a.AllFinite() {
		t.Fatal("NaN not detected")
	}
	a.Data()[1] = float32(math.Inf(1))
	if a.AllFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestSigmoidTanhValues(t *testing.T) {
	x := FromSlice([]float32{0, 2, -2}, 3)
	s := Sigmoid(nil, x)
	if math.Abs(float64(s.Data()[0])-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", s.Data()[0])
	}
	if math.Abs(float64(s.Data()[1])-1/(1+math.Exp(-2))) > 1e-5 {
		t.Fatalf("sigmoid(2) = %v", s.Data()[1])
	}
	th := Tanh(nil, x)
	if math.Abs(float64(th.Data()[2])-math.Tanh(-2)) > 1e-5 {
		t.Fatalf("tanh(-2) = %v", th.Data()[2])
	}
}

func TestReLUGradAndLeakyGrad(t *testing.T) {
	a := FromSlice([]float32{2, -3, 0.5, -0.1}, 4)
	g := FromSlice([]float32{1, 1, 1, 1}, 4)
	rg := ReLUGrad(nil, g, a)
	want := []float32{1, 0, 1, 0}
	for i := range want {
		if rg.Data()[i] != want[i] {
			t.Fatalf("ReLUGrad[%d] = %v", i, rg.Data()[i])
		}
	}
	lg := LeakyReLUGrad(nil, g, a, 0.2)
	want = []float32{1, 0.2, 1, 0.2}
	for i := range want {
		if math.Abs(float64(lg.Data()[i]-want[i])) > 1e-6 {
			t.Fatalf("LeakyReLUGrad[%d] = %v", i, lg.Data()[i])
		}
	}
}

func TestRNGNormalAndFork(t *testing.T) {
	rng := NewRNG(5)
	var sum, sumSq float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.1 || math.Abs(variance-1) > 0.15 {
		t.Fatalf("normal stats off: mean %v var %v", mean, variance)
	}
	a := NewRNG(7)
	f1 := a.Fork(1)
	f2 := a.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams must differ")
	}
	// zero seed remaps to a usable state
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	rng.Intn(0)
}

func TestScatterAddParallelShardPath(t *testing.T) {
	withWorkers(t, 4, func() {
		rng := NewRNG(8)
		n := 4096
		src := New(n, 3)
		Uniform(src, rng, -1, 1)
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(rng.Intn(64))
		}
		dst := New(64, 3)
		ScatterAddRows(dst, src, idx)
		if !almostEq(dst.Sum(), src.Sum(), 1e-2) {
			t.Fatalf("parallel scatter lost mass: %v vs %v", dst.Sum(), src.Sum())
		}
	})
}

func TestScatter2DParallelShardPath(t *testing.T) {
	withWorkers(t, 4, func() {
		rng := NewRNG(9)
		n := 4096
		src := New(n, 2)
		Uniform(src, rng, -1, 1)
		ri := make([]int32, n)
		ci := make([]int32, n)
		for i := range ri {
			ri[i] = int32(rng.Intn(8))
			ci[i] = int32(rng.Intn(8))
		}
		dst := New(8, 8, 2)
		Scatter2DAdd(dst, src, ri, ci)
		if !almostEq(dst.Sum(), src.Sum(), 1e-2) {
			t.Fatalf("parallel scatter2d lost mass: %v vs %v", dst.Sum(), src.Sum())
		}
	})
}

func TestMatMulParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		rng := NewRNG(10)
		a := New(64, 32)
		Uniform(a, rng, -1, 1)
		b := New(32, 48)
		Uniform(b, rng, -1, 1)
		got := MatMul(nil, a, b)
		want := naiveMatMul(a, b)
		for i := range got.Data() {
			if !almostEq(float64(got.Data()[i]), float64(want.Data()[i]), 1e-4) {
				t.Fatalf("parallel matmul differs at %d", i)
			}
		}
	})
}

func TestEnsurePanicsOnWrongShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul into wrong-shaped destination must panic")
		}
	}()
	MatMul(New(3, 3), New(2, 2), New(2, 2))
}

func TestEnsureLikePanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add into wrong-length destination must panic")
		}
	}()
	Add(New(5), New(2, 2), New(2, 2))
}

func TestCheckSamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes must panic")
		}
	}()
	Add(nil, New(2, 2), New(4))
}
