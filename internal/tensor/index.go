package tensor

import (
	"fmt"

	"wisegraph/internal/parallel"
)

// GatherRows writes src[idx[i]] into dst row i: the indexing operation that
// moves embeddings from vertices to edges. dst must have len(idx) rows of
// src's row size (allocated if nil).
func GatherRows(dst, src *Tensor, idx []int32) *Tensor {
	rs := src.RowSize()
	if dst == nil {
		dst = New(len(idx), rs)
	}
	if dst.Rows() != len(idx) || dst.RowSize() != rs {
		panic(fmt.Sprintf("tensor: GatherRows dst %v, want [%d %d]", dst.Shape(), len(idx), rs))
	}
	parallel.For(len(idx), 64, func(i int) {
		copy(dst.data[i*rs:(i+1)*rs], src.data[int(idx[i])*rs:(int(idx[i])+1)*rs])
	})
	return dst
}

// ScatterAddRows accumulates src row i into dst[idx[i]]: the index-add
// reduction onto destination vertices. dst rows are updated sequentially
// per destination to stay deterministic; parallelism comes from a one-pass
// binning of the index positions by destination shard (see Bins), so no
// two workers touch the same row and nobody rescans the full edge list.
func ScatterAddRows(dst, src *Tensor, idx []int32) {
	rs := src.RowSize()
	if dst.RowSize() != rs {
		panic(fmt.Sprintf("tensor: ScatterAddRows row sizes %d vs %d", dst.RowSize(), rs))
	}
	n := dst.Rows()
	shards := scatterShards(n, len(idx))
	if shards <= 1 || len(idx) < 1024 {
		scatterAddSeq(dst.data, src.data, idx, rs)
		return
	}
	bins := binsPool.Get().(*Bins)
	BinRows(bins, idx, n, shards)
	ScatterAddRowsBinned(dst, src, idx, bins)
	binsPool.Put(bins)
}

// ScatterAddRowsBinned is ScatterAddRows with a caller-provided binning
// of idx (built by BinRows over dst's rows). Callers whose index arrays
// are stable across iterations — the full-graph training loop — build the
// bins once and amortize the partition pass to zero.
func ScatterAddRowsBinned(dst, src *Tensor, idx []int32, bins *Bins) {
	rs := src.RowSize()
	if dst.RowSize() != rs {
		panic(fmt.Sprintf("tensor: ScatterAddRows row sizes %d vs %d", dst.RowSize(), rs))
	}
	if bins.Len() != len(idx) {
		panic(fmt.Sprintf("tensor: bins cover %d positions, index has %d", bins.Len(), len(idx)))
	}
	parallel.For(bins.NumShards(), 1, func(s int) {
		for _, i := range bins.Shard(s) {
			ix := int(idx[i])
			d := dst.data[ix*rs : (ix+1)*rs]
			sr := src.data[int(i)*rs : (int(i)+1)*rs]
			for j, v := range sr {
				d[j] += v
			}
		}
	})
}

// scatterAddSeq is the sequential reference scatter-add, also the small-
// input fast path.
func scatterAddSeq(dst, src []float32, idx []int32, rs int) {
	for i, ix := range idx {
		d := dst[int(ix)*rs : (int(ix)+1)*rs]
		s := src[i*rs : (i+1)*rs]
		for j, v := range s {
			d[j] += v
		}
	}
}

// SegmentSum reduces contiguous segments of src (rows [offsets[s],
// offsets[s+1])) by summation into dst row s. offsets has len(segments)+1
// entries. This is the reduction kernel for gTasks whose edges are sorted
// by destination.
func SegmentSum(dst, src *Tensor, offsets []int32) *Tensor {
	rs := src.RowSize()
	segs := len(offsets) - 1
	if dst == nil {
		dst = New(segs, rs)
	}
	parallel.For(segs, 8, func(s int) {
		out := dst.data[s*rs : (s+1)*rs]
		for j := range out {
			out[j] = 0
		}
		for r := offsets[s]; r < offsets[s+1]; r++ {
			row := src.data[int(r)*rs : (int(r)+1)*rs]
			for j, v := range row {
				out[j] += v
			}
		}
	})
	return dst
}

// SegmentSoftmax computes, per contiguous segment of a column vector
// src [E,1]-like flat slice, a numerically stable softmax in place.
// Used for GAT attention normalization over each destination's in-edges.
func SegmentSoftmax(vals []float32, offsets []int32) {
	parallel.For(len(offsets)-1, 8, func(s int) {
		lo, hi := int(offsets[s]), int(offsets[s+1])
		if lo >= hi {
			return
		}
		seg := vals[lo:hi]
		softmaxInto(seg, seg)
	})
}

// Gather2D indexes a [R,C,*] tensor with paired row/col indices, writing
// src[ri[i], ci[i]] into dst row i. It implements the Index-2D operation
// produced by merging two indexing operations during indexing swapping.
func Gather2D(dst, src *Tensor, ri, ci []int32) *Tensor {
	if src.Dims() < 2 {
		panic(fmt.Sprintf("tensor: Gather2D needs ≥2-D source, got %v", src.Shape()))
	}
	if len(ri) != len(ci) {
		panic(fmt.Sprintf("tensor: Gather2D index lengths %d vs %d", len(ri), len(ci)))
	}
	r, c := src.Dim(0), src.Dim(1)
	if r == 0 || c == 0 {
		panic(fmt.Sprintf("tensor: Gather2D source %v has an empty leading dimension", src.Shape()))
	}
	inner := src.Len() / (r * c)
	if dst == nil {
		dst = New(len(ri), inner)
	}
	parallel.For(len(ri), 64, func(i int) {
		off := (int(ri[i])*c + int(ci[i])) * inner
		copy(dst.data[i*inner:(i+1)*inner], src.data[off:off+inner])
	})
	return dst
}

// Scatter2DAdd accumulates src row i into dst[ri[i], ci[i]]: the backward
// of Gather2D. Sequential per (row,col) bucket; parallelism comes from a
// one-pass binning of the flattened buckets by destination shard.
func Scatter2DAdd(dst, src *Tensor, ri, ci []int32) {
	r, c := dst.Dim(0), dst.Dim(1)
	if r == 0 || c == 0 {
		panic(fmt.Sprintf("tensor: Scatter2DAdd destination %v has an empty leading dimension", dst.Shape()))
	}
	if len(ri) != len(ci) {
		panic(fmt.Sprintf("tensor: Scatter2DAdd index lengths %d vs %d", len(ri), len(ci)))
	}
	inner := dst.Len() / (r * c)
	shards := scatterShards(r*c, len(ri))
	if shards <= 1 || len(ri) < 1024 {
		for i := range ri {
			off := (int(ri[i])*c + int(ci[i])) * inner
			s := src.data[i*inner : (i+1)*inner]
			d := dst.data[off : off+inner]
			for j, v := range s {
				d[j] += v
			}
		}
		return
	}
	// Flatten (row, col) into bucket ids, then bin as 1-D destinations.
	buckets := getInt32(len(ri))
	for i := range ri {
		buckets[i] = ri[i]*int32(c) + ci[i]
	}
	bins := binsPool.Get().(*Bins)
	BinRows(bins, buckets, r*c, shards)
	parallel.For(bins.NumShards(), 1, func(s int) {
		for _, i := range bins.Shard(s) {
			off := int(buckets[i]) * inner
			sr := src.data[int(i)*inner : (int(i)+1)*inner]
			d := dst.data[off : off+inner]
			for j, v := range sr {
				d[j] += v
			}
		}
	})
	binsPool.Put(bins)
	putInt32(buckets)
}

// CountsToOffsets converts per-segment counts into an offsets array of
// length len(counts)+1 (exclusive prefix sum).
func CountsToOffsets(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	return off
}
