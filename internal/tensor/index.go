package tensor

import (
	"fmt"

	"wisegraph/internal/parallel"
)

// GatherRows writes src[idx[i]] into dst row i: the indexing operation that
// moves embeddings from vertices to edges. dst must have len(idx) rows of
// src's row size (allocated if nil).
func GatherRows(dst, src *Tensor, idx []int32) *Tensor {
	rs := src.RowSize()
	if dst == nil {
		dst = New(len(idx), rs)
	}
	if dst.Rows() != len(idx) || dst.RowSize() != rs {
		panic(fmt.Sprintf("tensor: GatherRows dst %v, want [%d %d]", dst.Shape(), len(idx), rs))
	}
	parallel.For(len(idx), 64, func(i int) {
		copy(dst.data[i*rs:(i+1)*rs], src.data[int(idx[i])*rs:(int(idx[i])+1)*rs])
	})
	return dst
}

// ScatterAddRows accumulates src row i into dst[idx[i]]: the index-add
// reduction onto destination vertices. dst rows are updated sequentially
// per destination to stay deterministic; parallelism comes from sharding
// the destination space so no two workers touch the same row.
func ScatterAddRows(dst, src *Tensor, idx []int32) {
	rs := src.RowSize()
	if dst.RowSize() != rs {
		panic(fmt.Sprintf("tensor: ScatterAddRows row sizes %d vs %d", dst.RowSize(), rs))
	}
	n := dst.Rows()
	workers := parallel.Workers(n, 1)
	if workers <= 1 || len(idx) < 1024 {
		for i, ix := range idx {
			d := dst.data[int(ix)*rs : (int(ix)+1)*rs]
			s := src.data[i*rs : (i+1)*rs]
			for j, v := range s {
				d[j] += v
			}
		}
		return
	}
	// Shard destination rows: worker w owns rows with row % workers == w.
	parallel.For(workers, 1, func(w int) {
		for i, ix := range idx {
			if int(ix)%workers != w {
				continue
			}
			d := dst.data[int(ix)*rs : (int(ix)+1)*rs]
			s := src.data[i*rs : (i+1)*rs]
			for j, v := range s {
				d[j] += v
			}
		}
	})
}

// SegmentSum reduces contiguous segments of src (rows [offsets[s],
// offsets[s+1])) by summation into dst row s. offsets has len(segments)+1
// entries. This is the reduction kernel for gTasks whose edges are sorted
// by destination.
func SegmentSum(dst, src *Tensor, offsets []int32) *Tensor {
	rs := src.RowSize()
	segs := len(offsets) - 1
	if dst == nil {
		dst = New(segs, rs)
	}
	parallel.For(segs, 8, func(s int) {
		out := dst.data[s*rs : (s+1)*rs]
		for j := range out {
			out[j] = 0
		}
		for r := offsets[s]; r < offsets[s+1]; r++ {
			row := src.data[int(r)*rs : (int(r)+1)*rs]
			for j, v := range row {
				out[j] += v
			}
		}
	})
	return dst
}

// SegmentSoftmax computes, per contiguous segment of a column vector
// src [E,1]-like flat slice, a numerically stable softmax in place.
// Used for GAT attention normalization over each destination's in-edges.
func SegmentSoftmax(vals []float32, offsets []int32) {
	parallel.For(len(offsets)-1, 8, func(s int) {
		lo, hi := int(offsets[s]), int(offsets[s+1])
		if lo >= hi {
			return
		}
		seg := vals[lo:hi]
		softmaxInto(seg, seg)
	})
}

// Gather2D indexes a [R,C,*] tensor with paired row/col indices, writing
// src[ri[i], ci[i]] into dst row i. It implements the Index-2D operation
// produced by merging two indexing operations during indexing swapping.
func Gather2D(dst, src *Tensor, ri, ci []int32) *Tensor {
	if src.Dims() < 2 {
		panic(fmt.Sprintf("tensor: Gather2D needs ≥2-D source, got %v", src.Shape()))
	}
	if len(ri) != len(ci) {
		panic(fmt.Sprintf("tensor: Gather2D index lengths %d vs %d", len(ri), len(ci)))
	}
	r, c := src.Dim(0), src.Dim(1)
	inner := src.Len() / (r * c)
	if dst == nil {
		dst = New(len(ri), inner)
	}
	parallel.For(len(ri), 64, func(i int) {
		off := (int(ri[i])*c + int(ci[i])) * inner
		copy(dst.data[i*inner:(i+1)*inner], src.data[off:off+inner])
	})
	return dst
}

// Scatter2DAdd accumulates src row i into dst[ri[i], ci[i]]: the backward
// of Gather2D. Sequential per (row,col) bucket via destination sharding.
func Scatter2DAdd(dst, src *Tensor, ri, ci []int32) {
	r, c := dst.Dim(0), dst.Dim(1)
	inner := dst.Len() / (r * c)
	workers := parallel.Workers(r*c, 1)
	if workers <= 1 || len(ri) < 1024 {
		for i := range ri {
			off := (int(ri[i])*c + int(ci[i])) * inner
			s := src.data[i*inner : (i+1)*inner]
			d := dst.data[off : off+inner]
			for j, v := range s {
				d[j] += v
			}
		}
		return
	}
	parallel.For(workers, 1, func(w int) {
		for i := range ri {
			bucket := int(ri[i])*c + int(ci[i])
			if bucket%workers != w {
				continue
			}
			off := bucket * inner
			s := src.data[i*inner : (i+1)*inner]
			d := dst.data[off : off+inner]
			for j, v := range s {
				d[j] += v
			}
		}
	})
}

// CountsToOffsets converts per-segment counts into an offsets array of
// length len(counts)+1 (exclusive prefix sum).
func CountsToOffsets(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	return off
}
