package tensor

import (
	"fmt"
	"math"

	"wisegraph/internal/parallel"
)

const ewGrain = 4096 // elements per parallel task for cheap elementwise ops

// Add computes dst = a + b elementwise. Shapes must match; dst may alias a.
func Add(dst, a, b *Tensor) *Tensor {
	checkSame(a, b, "Add")
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] = a.data[i] + b.data[i]
		}
	})
	return dst
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b *Tensor) *Tensor {
	checkSame(a, b, "Sub")
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] = a.data[i] - b.data[i]
		}
	})
	return dst
}

// Mul computes dst = a ⊙ b (Hadamard product).
func Mul(dst, a, b *Tensor) *Tensor {
	checkSame(a, b, "Mul")
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] = a.data[i] * b.data[i]
		}
	})
	return dst
}

// Scale computes dst = s·a.
func Scale(dst, a *Tensor, s float32) *Tensor {
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] = s * a.data[i]
		}
	})
	return dst
}

// AXPY computes dst += s·a in place.
func AXPY(dst *Tensor, s float32, a *Tensor) {
	checkSame(dst, a, "AXPY")
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] += s * a.data[i]
		}
	})
}

// AddBias adds a bias row vector b [N] to every row of a [M,N] in place.
func AddBias(a, b *Tensor) {
	n := b.Len()
	if a.RowSize() != n {
		panic(fmt.Sprintf("tensor: AddBias row size %d vs bias %d", a.RowSize(), n))
	}
	parallel.For(a.Rows(), 64, func(i int) {
		row := a.Row(i)
		for j, bv := range b.data {
			row[j] += bv
		}
	})
}

// ReLU computes dst = max(a, 0).
func ReLU(dst, a *Tensor) *Tensor {
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := a.data[i]; v > 0 {
				dst.data[i] = v
			} else {
				dst.data[i] = 0
			}
		}
	})
	return dst
}

// ReLUGrad computes dst = grad ⊙ 1[a > 0].
func ReLUGrad(dst, grad, a *Tensor) *Tensor {
	checkSame(grad, a, "ReLUGrad")
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if a.data[i] > 0 {
				dst.data[i] = grad.data[i]
			} else {
				dst.data[i] = 0
			}
		}
	})
	return dst
}

// LeakyReLU computes dst = a if a > 0 else slope·a.
func LeakyReLU(dst, a *Tensor, slope float32) *Tensor {
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := a.data[i]; v > 0 {
				dst.data[i] = v
			} else {
				dst.data[i] = slope * v
			}
		}
	})
	return dst
}

// LeakyReLUGrad computes dst = grad ⊙ (1 if a > 0 else slope).
func LeakyReLUGrad(dst, grad, a *Tensor, slope float32) *Tensor {
	checkSame(grad, a, "LeakyReLUGrad")
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if a.data[i] > 0 {
				dst.data[i] = grad.data[i]
			} else {
				dst.data[i] = slope * grad.data[i]
			}
		}
	})
	return dst
}

// Sigmoid computes dst = 1/(1+e^{-a}).
func Sigmoid(dst, a *Tensor) *Tensor {
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] = sigmoid32(a.data[i])
		}
	})
	return dst
}

// Tanh computes dst = tanh(a).
func Tanh(dst, a *Tensor) *Tensor {
	dst = ensureLike(dst, a)
	parallel.ForRange(len(a.data), ewGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.data[i] = float32(math.Tanh(float64(a.data[i])))
		}
	})
	return dst
}

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// SoftmaxRows computes a numerically stable softmax along the last
// dimension of a 2-D tensor.
func SoftmaxRows(dst, a *Tensor) *Tensor {
	dst = ensureLike(dst, a)
	n := a.RowSize()
	parallel.For(a.Rows(), 16, func(i int) {
		row := a.data[i*n : (i+1)*n]
		out := dst.data[i*n : (i+1)*n]
		softmaxInto(out, row)
	})
	return dst
}

func softmaxInto(out, row []float32) {
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range row {
		e := math.Exp(float64(v - maxv))
		out[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range out {
		out[j] *= inv
	}
}

// LogSoftmaxRows computes log-softmax along rows of a 2-D tensor.
func LogSoftmaxRows(dst, a *Tensor) *Tensor {
	dst = ensureLike(dst, a)
	n := a.RowSize()
	parallel.For(a.Rows(), 16, func(i int) {
		row := a.data[i*n : (i+1)*n]
		out := dst.data[i*n : (i+1)*n]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		lse := float32(math.Log(sum)) + maxv
		for j, v := range row {
			out[j] = v - lse
		}
	})
	return dst
}

// CrossEntropy returns the mean negative log-likelihood of logits [M,C]
// under integer labels, restricted to rows in mask (all rows if mask nil).
// grad, if non-nil, receives d(loss)/d(logits) (zero outside the mask).
func CrossEntropy(logits *Tensor, labels []int32, mask []int32, grad *Tensor) float64 {
	m, c := logits.Dim(0), logits.Dim(1)
	if grad != nil {
		grad.Zero()
	}
	rows := mask
	if rows == nil {
		rows = make([]int32, m)
		for i := range rows {
			rows[i] = int32(i)
		}
	}
	if len(rows) == 0 {
		return 0
	}
	inv := float32(1) / float32(len(rows))
	var loss float64
	probs := getFloat32(c)
	defer putFloat32(probs)
	for _, ri := range rows {
		row := logits.data[int(ri)*c : (int(ri)+1)*c]
		softmaxInto(probs, row)
		p := probs[labels[ri]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
		if grad != nil {
			g := grad.data[int(ri)*c : (int(ri)+1)*c]
			for j, pv := range probs {
				g[j] = pv * inv
			}
			g[labels[ri]] -= inv
		}
	}
	return loss / float64(len(rows))
}

// ArgMaxRows returns the index of the maximum element of each row.
func ArgMaxRows(a *Tensor) []int32 {
	m := a.Rows()
	n := a.RowSize()
	out := make([]int32, m)
	parallel.For(m, 64, func(i int) {
		row := a.data[i*n : (i+1)*n]
		best := 0
		for j, v := range row[1:] {
			if v > row[best] {
				best = j + 1
			}
		}
		out[i] = int32(best)
	})
	return out
}

func checkSame(a, b *Tensor, op string) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape(), b.Shape()))
	}
}

func ensureLike(dst, a *Tensor) *Tensor {
	if dst == nil {
		return New(a.shape...)
	}
	if len(dst.data) != len(a.data) {
		panic(fmt.Sprintf("tensor: destination length %d, want %d", len(dst.data), len(a.data)))
	}
	return dst
}
