package tensor

import (
	"math"
	"testing"

	"wisegraph/internal/parallel"
)

// Allocation-tracking benchmarks for the hot-path kernels. The workloads
// mirror the paper-shape regime that stresses scatter reductions: a
// power-law destination distribution (few hubs receive most edges) over
// hidden-dimension-256 rows. Before/after numbers live in EXPERIMENTS.md
// ("Execution substrate" section).

// benchWorkers pins the worker count for the duration of the benchmark so
// the parallel code paths run even on single-core CI machines.
func benchWorkers(b *testing.B, n int) {
	b.Helper()
	old := setWorkersForTest(n)
	b.Cleanup(func() { setWorkersForTest(old) })
}

// powerLawIdx draws n destination indices in [0, rows) with a power-law
// mass concentrated on low row ids (hubs), the in-degree skew of
// citation/social graphs.
func powerLawIdx(rng *RNG, n, rows int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		u := rng.Float64()
		r := int(math.Pow(u, 3) * float64(rows))
		if r >= rows {
			r = rows - 1
		}
		idx[i] = int32(r)
	}
	return idx
}

func BenchmarkMatMul(b *testing.B) {
	benchWorkers(b, 4)
	rng := NewRNG(11)
	a := Uniform(New(512, 256), rng, -1, 1)
	w := Uniform(New(256, 256), rng, -1, 1)
	dst := New(512, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, w)
	}
}

func BenchmarkGatherRows(b *testing.B) {
	benchWorkers(b, 4)
	rng := NewRNG(12)
	src := Uniform(New(4096, 256), rng, -1, 1)
	idx := powerLawIdx(rng, 60000, 4096)
	dst := New(len(idx), 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherRows(dst, src, idx)
	}
}

func BenchmarkScatterAddRows(b *testing.B) {
	benchWorkers(b, 4)
	rng := NewRNG(13)
	src := Uniform(New(60000, 256), rng, -1, 1)
	idx := powerLawIdx(rng, 60000, 4096)
	dst := New(4096, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScatterAddRows(dst, src, idx)
	}
}

func BenchmarkSegmentSum(b *testing.B) {
	benchWorkers(b, 4)
	rng := NewRNG(14)
	src := Uniform(New(60000, 256), rng, -1, 1)
	// Power-law segment sizes: sort the same skewed indices into counts.
	counts := make([]int32, 4096)
	for _, ix := range powerLawIdx(rng, 60000, 4096) {
		counts[ix]++
	}
	offsets := CountsToOffsets(counts)
	dst := New(4096, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SegmentSum(dst, src, offsets)
	}
}

func setWorkersForTest(n int) int {
	return parallel.SetMaxWorkers(n)
}
