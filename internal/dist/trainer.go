package dist

import (
	"fmt"
	"sync"

	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// Trainer trains a multi-layer GCN across the engine's devices with data
// parallelism: features and labels are sharded by vertex block, weights
// are replicated (gradients all-reduced), and every layer runs the
// distributed forward/backward with the placement chosen per layer. It is
// the executable counterpart of Table 2's full-graph multi-GPU training —
// tests verify loss and parameters track single-device training exactly.
type Trainer struct {
	E     *Engine
	Model *nn.Model
	Opt   *nn.Adam
	// Placement per layer (chosen once from the volume model).
	Placements []Strategy

	xParts []*tensor.Tensor // sharded input features
	labels []int32
	masks  [][]int32 // per-device local training indices

	// caches per layer for backward
	layerIn  [][]*tensor.Tensor
	layerOut [][]*tensor.Tensor
}

// NewTrainer shards the dataset across the engine's devices and picks a
// placement per layer from the changing-data-volume model.
func NewTrainer(e *Engine, m *nn.Model, features *tensor.Tensor, labels []int32, trainMask []int32, lr float64) (*Trainer, error) {
	for _, l := range m.Layers() {
		switch l.(type) {
		case *nn.GCNLayer, *nn.SAGELayer:
		default:
			return nil, fmt.Errorf("dist: distributed training supports GCN and SAGE layers, got %T", l)
		}
	}
	t := &Trainer{
		E:      e,
		Model:  m,
		Opt:    nn.NewAdam(lr, m.Params()),
		xParts: e.Shard(features),
		labels: labels,
	}
	gs := Analyze(e.G, e.C.N)
	for _, l := range m.Layers() {
		p := PlaceLayer(e.C, gs, nn.GCN, l.InDim(), l.OutDim(), DPPre, true, true)
		if q := PlaceLayer(e.C, gs, nn.GCN, l.InDim(), l.OutDim(), DPPost, true, true); q.Total() < p.Total() {
			p = q
		}
		t.Placements = append(t.Placements, p.Strategy)
	}
	// per-device training vertices (local indices)
	t.masks = make([][]int32, e.C.N)
	for _, v := range trainMask {
		d := e.Owner(v)
		lo, _ := e.Block(d)
		t.masks[d] = append(t.masks[d], v-lo)
	}
	return t, nil
}

// forward runs the distributed forward pass, caching per-layer
// activations. The error is non-nil only when a halo exchange exhausted
// its retry budget under fault injection.
func (t *Trainer) forward() ([]*tensor.Tensor, error) {
	cur := t.xParts
	t.layerIn = t.layerIn[:0]
	t.layerOut = t.layerOut[:0]
	layers := t.Model.Layers()
	for li, l := range layers {
		t.layerIn = append(t.layerIn, cur)
		var out []*tensor.Tensor
		var err error
		switch lt := l.(type) {
		case *nn.GCNLayer:
			out, err = t.E.GCNForward(lt, cur, t.Placements[li])
		case *nn.SAGELayer:
			out, err = t.E.SAGEForward(lt, cur)
		}
		if err != nil {
			return nil, fmt.Errorf("dist: layer %d forward: %w", li, err)
		}
		t.layerOut = append(t.layerOut, out)
		if li < len(layers)-1 {
			next := make([]*tensor.Tensor, len(out))
			for d, o := range out {
				next[d] = tensor.ReLU(nil, o)
			}
			cur = next
		} else {
			cur = out
		}
	}
	return cur, nil
}

// Step runs one distributed training iteration and returns the global
// training loss (identical to the single-device loss: the masked mean is
// weighted by per-device counts). The error is non-nil only when a halo
// exchange exhausted its retry budget under fault injection; the step
// applied no update in that case.
func (t *Trainer) Step() (float64, error) {
	t.Opt.ZeroGrads()
	logits, err := t.forward()
	if err != nil {
		return 0, err
	}
	// per-device masked cross-entropy with a global mean
	n := t.E.C.N
	grads := make([]*tensor.Tensor, n)
	losses := make([]float64, n)
	total := 0
	for d := 0; d < n; d++ {
		total += len(t.masks[d])
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			lo, hi := t.E.Block(d)
			localLabels := t.labels[lo:hi]
			grad := tensor.New(logits[d].Shape()...)
			// per-device loss over its local mask, weighted to the
			// global mean
			l := tensor.CrossEntropy(logits[d], localLabels, t.masks[d], grad)
			w := float64(len(t.masks[d])) / float64(total)
			tensor.Scale(grad, grad, float32(w))
			losses[d] = l * w
			grads[d] = grad
		}(d)
	}
	wg.Wait()
	// Reduce in device order after the join: float addition is not
	// associative, and summing in goroutine completion order would make
	// the reported loss depend on scheduling (the bit-identical fault
	// parity test catches exactly this).
	lossSum := 0.0
	for d := 0; d < n; d++ {
		lossSum += losses[d]
	}
	// distributed backward through the stack
	layers := t.Model.Layers()
	cur := grads
	for li := len(layers) - 1; li >= 0; li-- {
		if li < len(layers)-1 {
			for d := range cur {
				cur[d] = tensor.ReLUGrad(nil, cur[d], t.layerOut[li][d])
			}
		}
		switch lt := layers[li].(type) {
		case *nn.GCNLayer:
			cur = t.E.GCNBackward(lt, t.layerIn[li], cur)
		case *nn.SAGELayer:
			cur, err = t.E.SAGEBackward(lt, t.layerIn[li], cur)
			if err != nil {
				return 0, fmt.Errorf("dist: layer %d backward: %w", li, err)
			}
		}
	}
	t.Opt.Step()
	return lossSum, nil
}

// Accuracy evaluates classification accuracy over the given global vertex
// ids using the distributed forward pass.
func (t *Trainer) Accuracy(mask []int32) (float64, error) {
	parts, err := t.forward()
	if err != nil {
		return 0, err
	}
	logits := t.E.Unshard(parts)
	pred := tensor.ArgMaxRows(logits)
	if len(mask) == 0 {
		return 0, nil
	}
	correct := 0
	for _, v := range mask {
		if pred[v] == t.labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(mask)), nil
}
