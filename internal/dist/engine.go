package dist

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"wisegraph/internal/fault"
	"wisegraph/internal/graph"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// Engine executes data-parallel GNN layers across simulated devices with
// real tensors: vertices are partitioned into contiguous blocks, each
// device owns its block's feature rows, and the indexing operations
// exchange exactly the rows the placement model prices. It is the
// executable counterpart of the analytic policies above — tests verify
// that distributed outputs and gradients match single-device execution
// bit-for-near-bit, and that the measured communication volumes equal
// the model's.
type Engine struct {
	C Cluster
	G *graph.Graph
	// BlockOf maps vertex → owning device; blocks are contiguous.
	blockStart []int32 // len N+1

	// Per device: in-edges whose destination it owns.
	devEdges [][]int32
	// remoteNeeds[d] lists, per peer p, the unique remote sources device
	// d needs from p (deduplicated — the paper's communication volume).
	remoteNeeds [][][]int32

	// exec selects the aggregation dataflow: ExecBlocked walks devEdges
	// with a read-modify-write per edge, ExecFused streams each output row
	// exactly once through aggPtr/aggEdges (built lazily below).
	exec nn.Exec
	// aggPtr[d]/aggEdges[d] group devEdges[d] by local destination row,
	// stably — within a row, edges keep their devEdges order, so the
	// floating-point accumulation order per row (the only order that
	// affects bits) is identical to the blocked walk.
	aggOnce  sync.Once
	aggPtr   [][]int32
	aggEdges [][]int32

	// accounting
	mu        sync.Mutex
	commBytes float64

	// resilience accounting for the exchange path (see fetchWithRetry)
	retries atomic.Uint64 // failed fetch attempts that were retried
	hedges  atomic.Uint64 // straggling fetches abandoned for a re-issue
}

// NewEngine partitions g's vertices into c.N contiguous blocks and
// precomputes the exchange lists.
func NewEngine(c Cluster, g *graph.Graph) *Engine {
	n := c.N
	e := &Engine{C: c, G: g, blockStart: make([]int32, n+1)}
	for d := 0; d <= n; d++ {
		e.blockStart[d] = int32(d * g.NumVertices / n)
	}
	e.devEdges = make([][]int32, n)
	need := make([]map[int32]struct{}, n)
	for d := range need {
		need[d] = map[int32]struct{}{}
	}
	for ei := range g.Src {
		d := e.Owner(g.Dst[ei])
		e.devEdges[d] = append(e.devEdges[d], int32(ei))
		if e.Owner(g.Src[ei]) != d {
			need[d][g.Src[ei]] = struct{}{}
		}
	}
	e.remoteNeeds = make([][][]int32, n)
	for d := 0; d < n; d++ {
		e.remoteNeeds[d] = make([][]int32, n)
		for v := range need[d] {
			p := e.Owner(v)
			e.remoteNeeds[d][p] = append(e.remoteNeeds[d][p], v)
		}
		for p := range e.remoteNeeds[d] {
			sortInt32s(e.remoteNeeds[d][p])
		}
	}
	return e
}

// UseExec selects the aggregation dataflow for subsequent forward passes
// (nn.ExecFused streams destination rows; the default walks edges). Both
// produce bit-identical outputs — see TestDistAggregateBlockedVsFused.
func (e *Engine) UseExec(x nn.Exec) { e.exec = x }

// buildAggIndex groups each device's in-edges by local destination row
// with a counting sort that preserves devEdges order within a row.
func (e *Engine) buildAggIndex() {
	e.aggOnce.Do(func() {
		n := e.C.N
		e.aggPtr = make([][]int32, n)
		e.aggEdges = make([][]int32, n)
		for d := 0; d < n; d++ {
			lo, hi := e.Block(d)
			rows := int(hi - lo)
			ptr := make([]int32, rows+1)
			for _, ei := range e.devEdges[d] {
				ptr[e.G.Dst[ei]-lo+1]++
			}
			for r := 0; r < rows; r++ {
				ptr[r+1] += ptr[r]
			}
			edges := make([]int32, len(e.devEdges[d]))
			next := append([]int32(nil), ptr[:rows]...)
			for _, ei := range e.devEdges[d] {
				r := e.G.Dst[ei] - lo
				edges[next[r]] = ei
				next[r]++
			}
			e.aggPtr[d] = ptr
			e.aggEdges[d] = edges
		}
	})
}

// Owner returns the device owning vertex v.
func (e *Engine) Owner(v int32) int {
	return BlockOf(v, e.C.N, e.G.NumVertices)
}

// Block returns device d's vertex range [lo, hi).
func (e *Engine) Block(d int) (lo, hi int32) { return e.blockStart[d], e.blockStart[d+1] }

// CommBytes reports the cumulative bytes exchanged.
func (e *Engine) CommBytes() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commBytes
}

// ResetComm zeroes the communication counter.
func (e *Engine) ResetComm() {
	e.mu.Lock()
	e.commBytes = 0
	e.mu.Unlock()
}

func (e *Engine) account(bytes float64) {
	e.mu.Lock()
	e.commBytes += bytes
	e.mu.Unlock()
}

// Shard splits a full [V, F] tensor into per-device row blocks (views
// into fresh storage — each device owns an independent copy of its rows,
// as on real hardware).
func (e *Engine) Shard(x *tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, e.C.N)
	f := x.RowSize()
	for d := 0; d < e.C.N; d++ {
		lo, hi := e.Block(d)
		t := tensor.New(int(hi-lo), f)
		copy(t.Data(), x.Data()[int(lo)*f:int(hi)*f])
		out[d] = t
	}
	return out
}

// Unshard reassembles per-device blocks into a full tensor.
func (e *Engine) Unshard(parts []*tensor.Tensor) *tensor.Tensor {
	f := parts[0].RowSize()
	out := tensor.New(e.G.NumVertices, f)
	for d, p := range parts {
		lo := int(e.blockStart[d])
		copy(out.Data()[lo*f:lo*f+p.Len()], p.Data())
	}
	return out
}

// Retry ladder for the exchange path. A peer fetch gets exchangeAttempts
// tries; failed attempts back off exponentially from backoffBase with
// deterministic jitter, and a fetch the injector marks as straggling
// longer than hedgeAfter is abandoned and re-issued immediately (the
// hedge) instead of being waited out — safe because fetches are
// idempotent row copies.
const (
	exchangeAttempts = 5
	backoffBase      = 100 * time.Microsecond
	hedgeAfter       = time.Millisecond
)

// Resilience reports the exchange path's retry and hedge counts.
func (e *Engine) Resilience() (retries, hedges uint64) {
	return e.retries.Load(), e.hedges.Load()
}

// fetchPeer copies device d's remote needs from peer p's block into recv
// and returns the bytes moved. It is idempotent: a retried or hedged
// fetch overwrites the same keys with the same rows, which is what makes
// the resilience ladder numerics-preserving.
func (e *Engine) fetchPeer(d, p int, src *tensor.Tensor, recv map[int32][]float32) float64 {
	lo := e.blockStart[p]
	f := src.RowSize()
	var vol float64
	for _, v := range e.remoteNeeds[d][p] {
		row := recv[v]
		if row == nil {
			row = make([]float32, f)
			recv[v] = row
		}
		copy(row, src.Row(int(v-lo)))
		vol += float64(f) * 4
	}
	return vol
}

// fetchWithRetry runs one peer fetch under the fault injector's
// dist.exchange site: injected errors and detected corruption are retried
// with exponential backoff plus jitter, short straggles are waited out,
// and long straggles are hedged (abandoned and re-issued). Bounded: after
// exchangeAttempts failed attempts the error surfaces to the caller.
func (e *Engine) fetchWithRetry(d, p int, src *tensor.Tensor, recv map[int32][]float32) error {
	backoff := backoffBase
	for attempt := 0; attempt < exchangeAttempts; attempt++ {
		f := fault.Check(fault.SiteExchange)
		if f != nil && f.Kind == fault.KindLatency {
			if f.Delay >= hedgeAfter {
				// Hedge: don't wait out the straggler — re-issue at once.
				// The abandoned attempt costs nothing here because the
				// simulated transfer never started computing.
				e.hedges.Add(1)
				f = fault.Check(fault.SiteExchange)
			} else {
				time.Sleep(f.Delay)
				f = nil
			}
		}
		if f != nil && f.Kind == fault.KindLatency {
			// The hedge itself straggles: wait it out, it still succeeds.
			time.Sleep(f.Delay)
			f = nil
		}
		if f == nil {
			e.account(e.fetchPeer(d, p, src, recv))
			return nil
		}
		// Injected error or corruption-detected: back off and retry.
		e.retries.Add(1)
		if attempt < exchangeAttempts-1 {
			jitter := time.Duration(uint64(backoff) * (f.Seq%128 + 128) / 256)
			time.Sleep(jitter)
			backoff *= 2
		} else {
			return fmt.Errorf("dist: exchange fetch dev%d<-dev%d failed after %d attempts: %w",
				d, p, exchangeAttempts, f.Err())
		}
	}
	return nil
}

// exchange performs the all-to-all feature fetch: device d receives the
// rows of its remote needs from their owners. Returns, per device, a map
// from global vertex id to the received row (backed by remote tensors'
// copies). Accounts the deduplicated communication volume. Per-peer
// fetches run through the retry/hedge ladder; the error is non-nil only
// when a fetch exhausted its attempts under fault injection.
func (e *Engine) exchange(parts []*tensor.Tensor) ([]map[int32][]float32, error) {
	sp := obs.Begin(obs.StageCollective, obs.NewID())
	defer sp.End()
	n := e.C.N
	out := make([]map[int32][]float32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			recv := map[int32][]float32{}
			for p := 0; p < n; p++ {
				if err := e.fetchWithRetry(d, p, parts[p], recv); err != nil {
					errs[d] = err
					return
				}
			}
			out[d] = recv
		}(d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// aggregate runs the normalized sum aggregation out[dst] += w·in[src] on
// every device over its own in-edges, resolving local rows directly and
// remote rows from the exchanged table. Under nn.ExecFused each output row
// is streamed exactly once (all its contributions arrive consecutively via
// the grouped index) instead of being re-read and re-written per edge; the
// per-row accumulation order is unchanged, so the bits are too.
func (e *Engine) aggregate(parts []*tensor.Tensor, recv []map[int32][]float32, width int, invDeg []float32) []*tensor.Tensor {
	n := e.C.N
	fused := e.exec == nn.ExecFused
	if fused {
		e.buildAggIndex()
	}
	out := make([]*tensor.Tensor, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			lo, hi := e.Block(d)
			agg := tensor.New(int(hi-lo), width)
			addEdge := func(ei int32, or []float32) {
				src := e.G.Src[ei]
				var row []float32
				if sd := e.Owner(src); sd == d {
					row = parts[d].Row(int(src - lo))
				} else {
					row = recv[d][src]
				}
				w := invDeg[ei]
				for j, v := range row {
					or[j] += w * v
				}
			}
			if fused {
				ptr, edges := e.aggPtr[d], e.aggEdges[d]
				for r := 0; r < int(hi-lo); r++ {
					or := agg.Row(r)
					for k := ptr[r]; k < ptr[r+1]; k++ {
						addEdge(edges[k], or)
					}
				}
			} else {
				for _, ei := range e.devEdges[d] {
					addEdge(ei, agg.Row(int(e.G.Dst[ei]-lo)))
				}
			}
			out[d] = agg
		}(d)
	}
	wg.Wait()
	return out
}

// GCNForward runs one distributed GCN layer (h' = Â·(h·W) + b) under the
// chosen placement and returns the per-device outputs.
//
//   - DPPre: exchange the f-wide inputs, then every device computes
//     XW for the rows it needs (duplicate compute on halo rows).
//   - DPPost: every owner computes XW for its own rows once, then the
//     fp-wide results are exchanged (the changing-data-volume win).
//
// Both produce identical numerics; only volume and compute differ.
func (e *Engine) GCNForward(layer *nn.GCNLayer, xParts []*tensor.Tensor, strat Strategy) ([]*tensor.Tensor, error) {
	invDeg := invDegWeights(e.G)
	switch strat {
	case DPPre:
		recv, err := e.exchange(xParts) // f-wide halo rows
		if err != nil {
			return nil, err
		}
		// locally transform owned rows AND received halo rows
		n := e.C.N
		xw := make([]*tensor.Tensor, n)
		recvXW := make([]map[int32][]float32, n)
		var wg sync.WaitGroup
		wg.Add(n)
		for d := 0; d < n; d++ {
			go func(d int) {
				defer wg.Done()
				xw[d] = tensor.MatMul(nil, xParts[d], layer.W.Value)
				m := map[int32][]float32{}
				for v, row := range recv[d] {
					out := make([]float32, layer.OutDim())
					tensor.VecMat(out, row, layer.W.Value)
					m[v] = out
				}
				recvXW[d] = m
			}(d)
		}
		wg.Wait()
		agg := e.aggregate(xw, recvXW, layer.OutDim(), invDeg)
		for _, a := range agg {
			tensor.AddBias(a, layer.B.Value)
		}
		return agg, nil
	case DPPost:
		n := e.C.N
		xw := make([]*tensor.Tensor, n)
		var wg sync.WaitGroup
		wg.Add(n)
		for d := 0; d < n; d++ {
			go func(d int) {
				defer wg.Done()
				xw[d] = tensor.MatMul(nil, xParts[d], layer.W.Value)
			}(d)
		}
		wg.Wait()
		recv, err := e.exchange(xw) // fp-wide transformed halo rows
		if err != nil {
			return nil, err
		}
		agg := e.aggregate(xw, recv, layer.OutDim(), invDeg)
		for _, a := range agg {
			tensor.AddBias(a, layer.B.Value)
		}
		return agg, nil
	default:
		return nil, fmt.Errorf("dist: strategy %v not executable for GCN (tensor parallel needs column-sharded weights)", strat)
	}
}

// SAGEForward runs one distributed SAGE layer: mean-aggregate the raw
// features (f-wide exchange), then transform locally.
func (e *Engine) SAGEForward(layer *nn.SAGELayer, xParts []*tensor.Tensor) ([]*tensor.Tensor, error) {
	invDeg := invDegWeights(e.G)
	recv, err := e.exchange(xParts)
	if err != nil {
		return nil, err
	}
	agg := e.aggregate(xParts, recv, layer.InDim(), invDeg)
	n := e.C.N
	out := make([]*tensor.Tensor, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			o := tensor.MatMul(nil, xParts[d], layer.WSelf.Value)
			tensor.MatMulAcc(o, agg[d], layer.WNeigh.Value)
			tensor.AddBias(o, layer.B.Value)
			out[d] = o
		}(d)
	}
	wg.Wait()
	return out, nil
}

// GCNBackward runs the distributed backward of GCNForward (either
// strategy — gradients are identical): given per-device d(loss)/d(out),
// it accumulates layer gradients (with an all-reduce over the per-device
// partial weight gradients, accounted) and returns per-device d(loss)/dx.
func (e *Engine) GCNBackward(layer *nn.GCNLayer, xParts, dOutParts []*tensor.Tensor) []*tensor.Tensor {
	invDeg := invDegWeights(e.G)
	n := e.C.N
	// bias gradient: per-device column sums, then all-reduce.
	for d := 0; d < n; d++ {
		accumBias(layer.B.Grad, dOutParts[d])
	}
	// reverse aggregation: dXW[src] += w·dOut[dst]. Each device owns the
	// dst rows; contributions to remote sources are sent back to their
	// owners (the transpose all-to-all — same volume as forward).
	fp := layer.OutDim()
	dXW := make([]*tensor.Tensor, n)
	remote := make([]map[int32][]float32, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			lo, hi := e.Block(d)
			local := tensor.New(int(hi-lo), fp)
			rem := map[int32][]float32{}
			for _, ei := range e.devEdges[d] {
				src := e.G.Src[ei]
				dst := e.G.Dst[ei]
				w := invDeg[ei]
				dor := dOutParts[d].Row(int(dst - lo))
				var target []float32
				if e.Owner(src) == d {
					target = local.Row(int(src - lo))
				} else {
					target = rem[src]
					if target == nil {
						target = make([]float32, fp)
						rem[src] = target
					}
				}
				for j, v := range dor {
					target[j] += w * v
				}
			}
			dXW[d] = local
			remote[d] = rem
		}(d)
	}
	wg.Wait()
	// deliver remote gradient contributions to their owners (accounted).
	for d := 0; d < n; d++ {
		for v, row := range remote[d] {
			owner := e.Owner(v)
			lo := e.blockStart[owner]
			target := dXW[owner].Row(int(v - lo))
			for j, x := range row {
				target[j] += x
			}
			e.account(float64(len(row)) * 4)
		}
	}
	// per-device weight gradients + dx, then all-reduce dW (accounted).
	dxParts := make([]*tensor.Tensor, n)
	partials := make([]*tensor.Tensor, n)
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			partials[d] = tensor.MatMulTransA(nil, xParts[d], dXW[d])
			dxParts[d] = tensor.MatMulTransB(nil, dXW[d], layer.W.Value)
		}(d)
	}
	wg.Wait()
	for d := 0; d < n; d++ {
		tensor.AXPY(layer.W.Grad, 1, partials[d])
	}
	// ring all-reduce volume: 2·(N-1)/N per device over the weight size
	e.account(2 * float64(n-1) * float64(layer.W.Grad.Len()) * 4)
	return dxParts
}

func accumBias(g *tensor.Tensor, d *tensor.Tensor) {
	n := g.Len()
	gd := g.Data()
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j := 0; j < n; j++ {
			gd[j] += row[j]
		}
	}
}

// invDegWeights returns per-edge 1/in-degree(dst).
func invDegWeights(g *graph.Graph) []float32 {
	deg := g.InDegrees()
	w := make([]float32, g.NumEdges())
	for e, d := range g.Dst {
		if deg[d] > 0 {
			w[e] = 1 / float32(deg[d])
		}
	}
	return w
}

func sortInt32s(xs []int32) { slices.Sort(xs) }
