package dist

import (
	"testing"

	"wisegraph/internal/graph/gen"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// TestDistAggregateBlockedVsFused pins the fused aggregation dataflow to
// the blocked one bit for bit: grouping a device's in-edges by output row
// (stably) must not change any per-row accumulation order, for GCN under
// both placements and for SAGE.
func TestDistAggregateBlockedVsFused(t *testing.T) {
	e, gc, x := engineSetup(t)
	rng := tensor.NewRNG(21)
	gcn := nn.NewGCNLayer(rng, 10, 6)
	sage := nn.NewSAGELayer(rng, 10, 6)
	_ = gc

	type runFn func(e *Engine) *tensor.Tensor
	runs := map[string]runFn{
		"gcn-dppre": func(e *Engine) *tensor.Tensor {
			parts, err := e.GCNForward(gcn, e.Shard(x), DPPre)
			if err != nil {
				t.Fatal(err)
			}
			return e.Unshard(parts)
		},
		"gcn-dppost": func(e *Engine) *tensor.Tensor {
			parts, err := e.GCNForward(gcn, e.Shard(x), DPPost)
			if err != nil {
				t.Fatal(err)
			}
			return e.Unshard(parts)
		},
		"sage": func(e *Engine) *tensor.Tensor {
			parts, err := e.SAGEForward(sage, e.Shard(x))
			if err != nil {
				t.Fatal(err)
			}
			return e.Unshard(parts)
		},
	}
	for name, run := range runs {
		want := run(e)
		fusedE := NewEngine(e.C, e.G)
		fusedE.UseExec(nn.ExecFused)
		got := run(fusedE)
		closeAll(t, got, want, 0, name)
	}
}

// TestDistTrainingBlockedVsFusedBitwise trains the same model under both
// aggregation dataflows and requires identical losses and parameters —
// forward and backward (SAGEBackward recomputes the aggregation) must be
// untouched by the fused streaming.
func TestDistTrainingBlockedVsFusedBitwise(t *testing.T) {
	res := gen.Generate(gen.Config{
		NumVertices: 200, NumEdges: 1600, Kind: gen.PowerLaw, Skew: 0.9,
		NumBlocks: 4, Homophily: 0.85, Seed: 14,
	})
	x := tensor.New(200, 8)
	tensor.Uniform(x, tensor.NewRNG(15), -1, 1)
	mask := make([]int32, 0, 100)
	for v := int32(0); v < 200; v += 2 {
		mask = append(mask, v)
	}
	train := func(exec nn.Exec) ([]float64, *nn.Model) {
		m, err := nn.NewModel(nn.Config{Kind: nn.SAGE, InDim: 8, Hidden: 12, OutDim: 4, Layers: 2, Seed: 16})
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(NewCluster(4), res.Graph)
		e.UseExec(exec)
		tr, err := NewTrainer(e, m, x, res.Block, mask, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for step := 0; step < 3; step++ {
			loss, err := tr.Step()
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, loss)
		}
		return losses, m
	}
	wantLoss, wantM := train(nn.ExecBlocked)
	gotLoss, gotM := train(nn.ExecFused)
	for i := range wantLoss {
		if gotLoss[i] != wantLoss[i] {
			t.Fatalf("loss[%d] = %v, want %v", i, gotLoss[i], wantLoss[i])
		}
	}
	wp, gp := wantM.Params(), gotM.Params()
	for i := range wp {
		for j, v := range wp[i].Value.Data() {
			if gp[i].Value.Data()[j] != v {
				t.Fatalf("param %s[%d] = %v, want %v", wp[i].Name, j, gp[i].Value.Data()[j], v)
			}
		}
	}
}
