package dist

import (
	"sync"

	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// ShardColumns splits x [V, F] into per-device column shards [V, F/N]
// (tensor parallel layout: every device holds all rows, a slice of the
// embedding dimension — paper Figure 11b).
func (e *Engine) ShardColumns(x *tensor.Tensor) []*tensor.Tensor {
	n := e.C.N
	f := x.RowSize()
	out := make([]*tensor.Tensor, n)
	for d := 0; d < n; d++ {
		lo := d * f / n
		hi := (d + 1) * f / n
		t := tensor.New(x.Rows(), hi-lo)
		for r := 0; r < x.Rows(); r++ {
			copy(t.Row(r), x.Row(r)[lo:hi])
		}
		out[d] = t
	}
	return out
}

// GCNForwardTP runs one GCN layer tensor-parallel with the paper's
// Figure 11(d) placement: because aggregation reduces data volume at the
// vertex dimension, the index-add runs on all devices over their local
// column shards (no communication), then the weight transform's partial
// outputs are reduce-scattered so each device ends with its own block of
// complete output rows. Numerically identical to the data-parallel paths.
func (e *Engine) GCNForwardTP(layer *nn.GCNLayer, colParts []*tensor.Tensor) []*tensor.Tensor {
	n := e.C.N
	f := layer.InDim()
	fp := layer.OutDim()
	invDeg := invDegWeights(e.G)

	// Phase 1 (local): aggregate each column shard over ALL vertices —
	// every device has every row of its columns, so no exchange.
	// Phase 2 (local): partial = agg_d × W[cols_d, :].
	partials := make([]*tensor.Tensor, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			agg := tensor.New(e.G.NumVertices, colParts[d].RowSize())
			nn.EdgeSpMM(agg, colParts[d], e.G.Src, e.G.Dst, invDeg)
			lo := d * f / n
			hi := (d + 1) * f / n
			wSlice := tensor.New(hi-lo, fp)
			for r := lo; r < hi; r++ {
				copy(wSlice.Row(r-lo), layer.W.Value.Row(r))
			}
			partials[d] = tensor.MatMul(nil, agg, wSlice)
		}(d)
	}
	wg.Wait()

	// Phase 3 (reduce-scatter): each device receives and sums the other
	// devices' partials for its block rows. Cross-device traffic:
	// (N-1) partial blocks of V/N × fp per destination.
	out := make([]*tensor.Tensor, n)
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			lo, hi := e.Block(d)
			rows := int(hi - lo)
			acc := tensor.New(rows, fp)
			var vol float64
			for p := 0; p < n; p++ {
				part := partials[p]
				for r := 0; r < rows; r++ {
					src := part.Row(int(lo) + r)
					dst := acc.Row(r)
					for j, v := range src {
						dst[j] += v
					}
				}
				if p != d {
					vol += float64(rows*fp) * 4
				}
			}
			tensor.AddBias(acc, layer.B.Value)
			out[d] = acc
			e.account(vol)
		}(d)
	}
	wg.Wait()
	return out
}
