// Package dist simulates multi-device GNN training (paper §5.4): vertex
// embeddings partitioned across devices, collective communication over a
// PCIe-4.0-class interconnect, and the operation placement decision —
// whether to communicate before or after a computation — driven by the
// changing-data-volume pattern.
//
// The real system runs NCCL over 4× A100; here collectives are priced
// with an α+β cost model and per-device compute with the same device
// model the single-GPU path uses. Communication *volumes* are computed
// exactly from the partitioned graph, which is all the placement decision
// depends on.
package dist

import (
	"fmt"

	"wisegraph/internal/device"
	"wisegraph/internal/graph"
)

// LinkSpec models the interconnect between devices.
type LinkSpec struct {
	// Alpha is the fixed per-collective latency (seconds).
	Alpha float64
	// Bandwidth is per-device effective bandwidth (bytes/second).
	Bandwidth float64
}

// PCIe4 returns the paper's interconnect (PCIe-4.0 x16, ~25 GB/s, NCCL
// launch latency ~20 µs).
func PCIe4() LinkSpec { return LinkSpec{Alpha: 20e-6, Bandwidth: 25e9} }

// Cluster is a set of identical devices joined by a link.
type Cluster struct {
	N    int
	Dev  device.Spec
	Link LinkSpec
}

// NewCluster builds an n-device cluster (paper: 4× A100 over PCIe-4.0).
func NewCluster(n int) Cluster {
	return Cluster{N: n, Dev: device.A100(), Link: PCIe4()}
}

// AllToAll returns the time for an all-to-all where each device
// contributes totalBytes/N and receives (N-1)/N of it from peers.
func (c Cluster) AllToAll(totalBytes float64) float64 {
	if c.N <= 1 {
		return 0
	}
	per := totalBytes / float64(c.N) * float64(c.N-1) / float64(c.N)
	return c.Link.Alpha + per/c.Link.Bandwidth
}

// AllReduce returns ring all-reduce time for totalBytes per device.
func (c Cluster) AllReduce(totalBytes float64) float64 {
	if c.N <= 1 {
		return 0
	}
	return c.Link.Alpha + 2*totalBytes*float64(c.N-1)/float64(c.N)/c.Link.Bandwidth
}

// ReduceScatter returns reduce-scatter time for totalBytes per device.
func (c Cluster) ReduceScatter(totalBytes float64) float64 {
	if c.N <= 1 {
		return 0
	}
	return c.Link.Alpha + totalBytes*float64(c.N-1)/float64(c.N)/c.Link.Bandwidth
}

// AllGather returns all-gather time for totalBytes assembled per device.
func (c Cluster) AllGather(totalBytes float64) float64 {
	return c.ReduceScatter(totalBytes)
}

// GraphStats summarizes the communication-relevant structure of a graph
// partitioned into contiguous vertex blocks, one per device.
type GraphStats struct {
	V, E int
	// CrossEdges counts edges whose source lives on a different device
	// than their destination.
	CrossEdges int
	// UniqRemoteSrc counts distinct (device, remote source) pairs — the
	// deduplicated communication volume.
	UniqRemoteSrc int
	// MaxDeviceEdges is the largest per-device edge count (compute
	// makespan across devices).
	MaxDeviceEdges int
}

// Analyze partitions g's vertices into n contiguous blocks and computes
// the cross-device statistics.
func Analyze(g *graph.Graph, n int) GraphStats {
	if n < 1 {
		n = 1
	}
	gs := GraphStats{V: g.NumVertices, E: g.NumEdges()}
	blockOf := func(v int32) int { return BlockOf(v, n, g.NumVertices) }
	perDev := make([]int, n)
	seen := make(map[int64]struct{})
	for e := range g.Src {
		src, dst := g.Src[e], g.Dst[e]
		db := blockOf(dst)
		perDev[db]++
		if blockOf(src) != db {
			gs.CrossEdges++
			key := int64(db)*int64(g.NumVertices) + int64(src)
			if _, ok := seen[key]; !ok {
				seen[key] = struct{}{}
				gs.UniqRemoteSrc++
			}
		}
	}
	for _, pe := range perDev {
		if pe > gs.MaxDeviceEdges {
			gs.MaxDeviceEdges = pe
		}
	}
	return gs
}

// BlockOf returns the contiguous block owning vertex v when numV vertices
// split into n blocks with boundaries d·numV/n — consistent with the
// engine's blockStart ranges even when numV is not divisible by n.
func BlockOf(v int32, n, numV int) int {
	d := int(v) * n / numV
	for d+1 < n && (d+1)*numV/n <= int(v) {
		d++
	}
	for d > 0 && d*numV/n > int(v) {
		d--
	}
	return d
}

// String describes the stats.
func (gs GraphStats) String() string {
	return fmt.Sprintf("dist{V=%d E=%d cross=%d uniqRemote=%d}", gs.V, gs.E, gs.CrossEdges, gs.UniqRemoteSrc)
}
