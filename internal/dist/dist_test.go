package dist

import (
	"testing"

	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/nn"
)

func TestCollectiveCosts(t *testing.T) {
	c := NewCluster(4)
	if c.AllToAll(0) != c.Link.Alpha {
		t.Fatal("zero-volume all-to-all should cost one alpha")
	}
	// single device: no communication
	one := NewCluster(1)
	if one.AllToAll(1e9) != 0 || one.AllReduce(1e9) != 0 {
		t.Fatal("single-device collectives must be free")
	}
	// all-reduce moves twice the data of reduce-scatter
	ar := c.AllReduce(1e9) - c.Link.Alpha
	rs := c.ReduceScatter(1e9) - c.Link.Alpha
	if ar/rs < 1.99 || ar/rs > 2.01 {
		t.Fatalf("all-reduce/reduce-scatter ratio %v, want 2", ar/rs)
	}
	// more volume, more time
	if c.AllToAll(2e9) <= c.AllToAll(1e9) {
		t.Fatal("collective cost must grow with volume")
	}
}

func TestAnalyzeCrossEdges(t *testing.T) {
	// 4 vertices on 2 devices: {0,1} and {2,3}
	g := &graph.Graph{NumVertices: 4, NumTypes: 1,
		Src: []int32{0, 2, 3, 1, 0},
		Dst: []int32{1, 1, 1, 3, 1},
	}
	gs := Analyze(g, 2)
	// edges into dst 1 (device 0) from srcs 2 and 3 (device 1) → 2 cross;
	// edge 1→3 crosses into device 1 → 3 cross total
	if gs.CrossEdges != 3 {
		t.Fatalf("cross edges = %d, want 3", gs.CrossEdges)
	}
	// unique remote (device,src) pairs: (dev0,2), (dev0,3), (dev1,1)
	if gs.UniqRemoteSrc != 3 {
		t.Fatalf("unique remote srcs = %d, want 3", gs.UniqRemoteSrc)
	}
	// duplicates dedup: add another 2→1 edge
	g.Src = append(g.Src, 2)
	g.Dst = append(g.Dst, 0)
	gs = Analyze(g, 2)
	if gs.UniqRemoteSrc != 3 {
		t.Fatalf("repeated remote src must not add volume: %d", gs.UniqRemoteSrc)
	}
	if gs.CrossEdges != 4 {
		t.Fatalf("cross edges = %d, want 4", gs.CrossEdges)
	}
}

func testGS() (Cluster, GraphStats) {
	g := gen.Generate(gen.Config{NumVertices: 2000, NumEdges: 30000, Kind: gen.PowerLaw, Skew: 1.0, Seed: 3}).Graph
	return NewCluster(4), Analyze(g, 4)
}

func TestDPPostWinsWhenOutputSmaller(t *testing.T) {
	c, gs := testGS()
	// shrinking layer: 256 → 32. Shipping outputs beats shipping inputs.
	pre := PlaceLayer(c, gs, nn.GCN, 256, 32, DPPre, true, false)
	post := PlaceLayer(c, gs, nn.GCN, 256, 32, DPPost, true, false)
	if post.CommBytes >= pre.CommBytes {
		t.Fatalf("post volume %v must beat pre %v for shrinking layers", post.CommBytes, pre.CommBytes)
	}
	// expanding layer: 32 → 256: pre wins.
	pre2 := PlaceLayer(c, gs, nn.GCN, 32, 256, DPPre, true, false)
	post2 := PlaceLayer(c, gs, nn.GCN, 32, 256, DPPost, true, false)
	if pre2.CommBytes >= post2.CommBytes {
		t.Fatalf("pre volume %v must beat post %v for expanding layers", pre2.CommBytes, post2.CommBytes)
	}
}

func TestChooseLayerIsMinimum(t *testing.T) {
	c, gs := testGS()
	for _, dims := range [][2]int{{256, 32}, {32, 256}, {128, 128}} {
		best := ChooseLayer(c, gs, nn.SAGE, dims[0], dims[1], true, true)
		for _, s := range []Strategy{DPPre, DPPost, TP} {
			p := PlaceLayer(c, gs, nn.SAGE, dims[0], dims[1], s, true, true)
			if p.Total() < best.Total()-1e-12 {
				t.Fatalf("ChooseLayer missed better strategy %v for %v", s, dims)
			}
		}
	}
}

func TestWisePolicyNeverLosesToStaticPolicies(t *testing.T) {
	c, gs := testGS()
	dims := []int{384, 32, 32, 64}
	wise := IterationTime(c, gs, nn.GCN, dims, PolicyWise)
	for _, pol := range []Policy{PolicyDGCL, PolicyP3} {
		if got := IterationTime(c, gs, nn.GCN, dims, pol); got < wise-1e-12 {
			t.Fatalf("%v beat WiseGraph: %v vs %v", pol, got, wise)
		}
	}
}

func TestP3CrossoverWithHiddenDim(t *testing.T) {
	// Paper Table 2 / Figure 20: P3's static hybrid wins for large input
	// dims (FS-S, dim 384) and loses for small hidden dims where data
	// parallel suffices (PA-S, dim 128).
	c, gs := testGS()
	// large input dim: P3's layer-1 TP avoids the huge feature all-to-all
	p3Large := IterationTime(c, gs, nn.GCN, []int{1024, 32, 32}, PolicyP3)
	dglLarge := IterationTime(c, gs, nn.GCN, []int{1024, 32, 32}, PolicyDGL)
	if p3Large >= dglLarge {
		t.Fatalf("P3 should win at large input dim: %v vs %v", p3Large, dglLarge)
	}
	// small dims with a large vertex set: TP's V×F' reduce-scatter hurts
	p3Small := IterationTime(c, gs, nn.GCN, []int{16, 256, 256}, PolicyP3)
	dglSmall := IterationTime(c, gs, nn.GCN, []int{16, 256, 256}, PolicyDGL)
	if p3Small <= dglSmall {
		t.Fatalf("P3 should lose at small input dim: %v vs %v", p3Small, dglSmall)
	}
}

func TestIterationTimeOrderingTable2(t *testing.T) {
	// Table 2 shape: WiseGraph < ROC < DGL on full graphs. The replica
	// stats are scaled to a paper-size graph so volumes dominate the
	// fixed collective latencies, as they do on the real billion-edge
	// datasets.
	c, gs := testGS()
	gs.V *= 1000
	gs.E *= 1000
	gs.CrossEdges *= 1000
	gs.UniqRemoteSrc *= 1000
	gs.MaxDeviceEdges *= 1000
	dims := []int{128, 32, 32, 32}
	wise := IterationTime(c, gs, nn.GCN, dims, PolicyWise)
	roc := IterationTime(c, gs, nn.GCN, dims, PolicyROC)
	dgl := IterationTime(c, gs, nn.GCN, dims, PolicyDGL)
	dgcl := IterationTime(c, gs, nn.GCN, dims, PolicyDGCL)
	if !(wise < roc && roc < dgl) {
		t.Fatalf("ordering wrong: wise=%v roc=%v dgl=%v", wise, roc, dgl)
	}
	if wise*1.5 > dgl {
		t.Fatalf("WiseGraph speedup over DGL only %.2f×, want ≥ 1.5×", dgl/wise)
	}
	if dgcl <= roc {
		t.Fatalf("DGCL's coordination overhead should cost it vs ROC: %v vs %v", dgcl, roc)
	}
}
