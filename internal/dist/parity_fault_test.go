package dist

import (
	"fmt"
	"testing"
	"time"

	"wisegraph/internal/fault"
	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// This file is the distributed correctness battery: forward and backward
// parity against the single-device reference at 1, 2 and 4 simulated
// devices, then the same runs under an injected straggler-and-error
// schedule to prove the retry/hedge ladder changes timing, never numbers.

func parityGraph(t *testing.T) (*graph.Graph, *nn.GraphCtx, *tensor.Tensor) {
	t.Helper()
	res := gen.Generate(gen.Config{NumVertices: 240, NumEdges: 2000, Kind: gen.PowerLaw, Skew: 0.9, Seed: 4})
	x := tensor.New(240, 10)
	tensor.Uniform(x, tensor.NewRNG(5), -1, 1)
	return res.Graph, nn.NewGraphCtx(res.Graph), x
}

// distSAGEForward builds a fresh engine at n devices with deterministic
// layer weights and returns the unsharded distributed forward output.
func distSAGEForward(t *testing.T, n int, g *graph.Graph, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	e := NewEngine(NewCluster(n), g)
	layer := nn.NewSAGELayer(tensor.NewRNG(7), 10, 6)
	parts, err := e.SAGEForward(layer, e.Shard(x))
	if err != nil {
		t.Fatalf("%d devices: %v", n, err)
	}
	return e.Unshard(parts)
}

func distGCNForward(t *testing.T, n int, g *graph.Graph, x *tensor.Tensor, strat Strategy) *tensor.Tensor {
	t.Helper()
	e := NewEngine(NewCluster(n), g)
	layer := nn.NewGCNLayer(tensor.NewRNG(6), 10, 6)
	parts, err := e.GCNForward(layer, e.Shard(x), strat)
	if err != nil {
		t.Fatalf("%d devices: %v", n, err)
	}
	return e.Unshard(parts)
}

// distSAGEBackward returns the unsharded dX of the distributed backward at
// n devices, with deterministic weights and upstream gradient.
func distSAGEBackward(t *testing.T, n int, g *graph.Graph, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	e := NewEngine(NewCluster(n), g)
	layer := nn.NewSAGELayer(tensor.NewRNG(7), 10, 6)
	dOut := tensor.New(240, 6)
	tensor.Uniform(dOut, tensor.NewRNG(8), -1, 1)
	xParts := e.Shard(x)
	if _, err := e.SAGEForward(layer, xParts); err != nil {
		t.Fatalf("%d devices forward: %v", n, err)
	}
	dxParts, err := e.SAGEBackward(layer, xParts, e.Shard(dOut))
	if err != nil {
		t.Fatalf("%d devices backward: %v", n, err)
	}
	return e.Unshard(dxParts)
}

// TestForwardBackwardParityAcrossDeviceCounts checks GCN (both placements)
// and SAGE forward plus SAGE backward against the single-device reference
// at every partition width. 1 device is the degenerate no-exchange case; 2
// and 4 exercise growing halo volumes.
func TestForwardBackwardParityAcrossDeviceCounts(t *testing.T) {
	g, gc, x := parityGraph(t)
	sageRef := nn.NewSAGELayer(tensor.NewRNG(7), 10, 6).Forward(gc, x)
	gcnRef := nn.NewGCNLayer(tensor.NewRNG(6), 10, 6).Forward(gc, x)
	for _, n := range []int{1, 2, 4} {
		closeAll(t, distSAGEForward(t, n, g, x), sageRef, 1e-4, fmt.Sprintf("sage fwd @%d", n))
		closeAll(t, distGCNForward(t, n, g, x, DPPre), gcnRef, 1e-4, fmt.Sprintf("gcn dp-pre @%d", n))
		closeAll(t, distGCNForward(t, n, g, x, DPPost), gcnRef, 1e-4, fmt.Sprintf("gcn dp-post @%d", n))
	}
	// Backward dX across device counts must agree with each other (the
	// 1-device run is the exchange-free reference).
	ref := distSAGEBackward(t, 1, g, x)
	for _, n := range []int{2, 4} {
		closeAll(t, distSAGEBackward(t, n, g, x), ref, 1e-3, fmt.Sprintf("sage dX @%d", n))
	}
}

// stragglerSchedule injects a heavy mix at the exchange site: 10% hard
// errors (retried with backoff), 40% stragglers at 2ms (all beyond the
// 1ms hedge threshold, so they are abandoned and re-issued, not slept).
func stragglerSchedule() *fault.Schedule {
	return &fault.Schedule{
		Seed: 42,
		Sites: map[string]fault.SiteConfig{
			fault.SiteExchange: {ErrorRate: 0.1, LatencyRate: 0.4, Delay: 2 * time.Millisecond},
		},
	}
}

// TestFaultedExchangeBitIdenticalToUnfaulted is the central resilience
// claim: under injected errors and stragglers the distributed forward,
// backward and multi-step training losses are BIT-IDENTICAL to the
// unfaulted runs — retries and hedges re-copy idempotent rows, so they
// may only change timing. The test also asserts faults actually fired.
func TestFaultedExchangeBitIdenticalToUnfaulted(t *testing.T) {
	g, _, x := parityGraph(t)
	for _, n := range []int{2, 4} {
		fwdClean := distSAGEForward(t, n, g, x)
		bwdClean := distSAGEBackward(t, n, g, x)
		var fwdFaulted, bwdFaulted *tensor.Tensor
		fault.WithSchedule(stragglerSchedule(), func() {
			fwdFaulted = distSAGEForward(t, n, g, x)
			bwdFaulted = distSAGEBackward(t, n, g, x)
			snap := fault.Snapshot()[fault.SiteExchange]
			if snap.Errors == 0 || snap.Latencies == 0 {
				t.Fatalf("@%d devices: schedule fired %d errors / %d latencies; chaos test proves nothing", n, snap.Errors, snap.Latencies)
			}
		})
		closeAll(t, fwdFaulted, fwdClean, 0, fmt.Sprintf("faulted fwd @%d", n))
		closeAll(t, bwdFaulted, bwdClean, 0, fmt.Sprintf("faulted dX @%d", n))
	}
}

// trainLosses runs a fresh distributed GCN trainer for steps iterations
// and returns the loss sequence.
func trainLosses(t *testing.T, g *graph.Graph, x *tensor.Tensor, steps int) []float64 {
	t.Helper()
	m, err := nn.NewModel(nn.Config{Kind: nn.GCN, InDim: 10, Hidden: 8, OutDim: 4, Layers: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int32, 240)
	mask := make([]int32, 240)
	for i := range labels {
		labels[i] = int32(i % 4)
		mask[i] = int32(i)
	}
	e := NewEngine(NewCluster(4), g)
	tr, err := NewTrainer(e, m, x, labels, mask, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, steps)
	for s := range out {
		loss, err := tr.Step()
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		out[s] = loss
	}
	return out
}

// TestFaultedTrainingLossTrajectoryBitIdentical trains end to end under
// the straggler schedule and requires the loss sequence to match the
// clean run exactly — not approximately.
func TestFaultedTrainingLossTrajectoryBitIdentical(t *testing.T) {
	g, _, x := parityGraph(t)
	clean := trainLosses(t, g, x, 4)
	var faulted []float64
	fault.WithSchedule(stragglerSchedule(), func() {
		faulted = trainLosses(t, g, x, 4)
	})
	for s := range clean {
		if clean[s] != faulted[s] {
			t.Fatalf("step %d: clean loss %v, faulted loss %v (must be bit-identical)", s, clean[s], faulted[s])
		}
	}
}

// TestExchangeBudgetExhaustionSurfaces pins the failure mode: at a 100%
// error rate every retry burns out and the error must surface through
// every layer (exchange → forward → trainer) as an injected fault, not a
// panic or a silent wrong answer.
func TestExchangeBudgetExhaustionSurfaces(t *testing.T) {
	g, _, x := parityGraph(t)
	e := NewEngine(NewCluster(4), g)
	layer := nn.NewSAGELayer(tensor.NewRNG(7), 10, 6)
	fault.WithSchedule(&fault.Schedule{
		Seed:  9,
		Sites: map[string]fault.SiteConfig{fault.SiteExchange: {ErrorRate: 1}},
	}, func() {
		if _, err := e.SAGEForward(layer, e.Shard(x)); err == nil {
			t.Fatal("expected exchange budget exhaustion")
		} else if !fault.IsInjected(err) {
			t.Fatalf("error lost its injected marker: %v", err)
		}
		retries, _ := e.Resilience()
		if retries == 0 {
			t.Fatal("no retries recorded before giving up")
		}
	})
}
