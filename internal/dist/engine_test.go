package dist

import (
	"math"
	"testing"

	"wisegraph/internal/graph/gen"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

func engineSetup(t *testing.T) (*Engine, *nn.GraphCtx, *tensor.Tensor) {
	t.Helper()
	res := gen.Generate(gen.Config{NumVertices: 240, NumEdges: 2000, Kind: gen.PowerLaw, Skew: 0.9, Seed: 4})
	g := res.Graph
	e := NewEngine(NewCluster(4), g)
	x := tensor.New(240, 10)
	tensor.Uniform(x, tensor.NewRNG(5), -1, 1)
	return e, nn.NewGraphCtx(g), x
}

func closeAll(t *testing.T, got, want *tensor.Tensor, tol float64, what string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: length %d vs %d", what, got.Len(), want.Len())
	}
	for i := range got.Data() {
		if math.Abs(float64(got.Data()[i]-want.Data()[i])) > tol {
			t.Fatalf("%s differs at %d: %v vs %v", what, i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestShardUnshardRoundTrip(t *testing.T) {
	e, _, x := engineSetup(t)
	parts := e.Shard(x)
	if len(parts) != 4 {
		t.Fatalf("%d shards", len(parts))
	}
	back := e.Unshard(parts)
	closeAll(t, back, x, 0, "roundtrip")
	// shards are independent copies
	parts[0].Data()[0] += 1
	if back.Data()[0] == parts[0].Data()[0] {
		t.Fatal("shards must not alias the unsharded tensor")
	}
}

func TestGCNForwardMatchesReferenceBothStrategies(t *testing.T) {
	e, gc, x := engineSetup(t)
	rng := tensor.NewRNG(6)
	layer := nn.NewGCNLayer(rng, 10, 6)
	want := layer.Forward(gc, x)
	for _, strat := range []Strategy{DPPre, DPPost} {
		e.ResetComm()
		parts, err := e.GCNForward(layer, e.Shard(x), strat)
		if err != nil {
			t.Fatal(err)
		}
		got := e.Unshard(parts)
		closeAll(t, got, want, 1e-4, strat.String())
		if e.CommBytes() <= 0 {
			t.Fatalf("%v: no communication accounted", strat)
		}
	}
}

func TestGCNForwardVolumeMatchesPlacementModel(t *testing.T) {
	// The engine's measured exchange volume must equal what PlaceLayer
	// prices: uniqRemoteSrc × width × 4 bytes.
	e, _, x := engineSetup(t)
	gs := Analyze(e.G, 4)
	rng := tensor.NewRNG(6)
	layer := nn.NewGCNLayer(rng, 10, 6)

	e.ResetComm()
	if _, err := e.GCNForward(layer, e.Shard(x), DPPre); err != nil {
		t.Fatal(err)
	}
	wantPre := float64(gs.UniqRemoteSrc) * 10 * 4
	if math.Abs(e.CommBytes()-wantPre) > 1 {
		t.Fatalf("DP-pre volume %v, model %v", e.CommBytes(), wantPre)
	}

	e.ResetComm()
	if _, err := e.GCNForward(layer, e.Shard(x), DPPost); err != nil {
		t.Fatal(err)
	}
	wantPost := float64(gs.UniqRemoteSrc) * 6 * 4
	if math.Abs(e.CommBytes()-wantPost) > 1 {
		t.Fatalf("DP-post volume %v, model %v", e.CommBytes(), wantPost)
	}
	if wantPost >= wantPre {
		t.Fatal("shrinking layer must ship less after the transform")
	}
}

func TestSAGEForwardMatchesReference(t *testing.T) {
	e, gc, x := engineSetup(t)
	rng := tensor.NewRNG(7)
	layer := nn.NewSAGELayer(rng, 10, 5)
	want := layer.Forward(gc, x)
	parts, err := e.SAGEForward(layer, e.Shard(x))
	if err != nil {
		t.Fatal(err)
	}
	got := e.Unshard(parts)
	closeAll(t, got, want, 1e-4, "sage")
}

func TestGCNBackwardMatchesReference(t *testing.T) {
	e, gc, x := engineSetup(t)
	rng := tensor.NewRNG(8)
	ref := nn.NewGCNLayer(rng, 10, 6)
	dup := nn.NewGCNLayer(tensor.NewRNG(99), 10, 6)
	dup.W.Value.CopyFrom(ref.W.Value)
	dup.B.Value.CopyFrom(ref.B.Value)

	// reference forward+backward
	_ = ref.Forward(gc, x)
	dOut := tensor.New(240, 6)
	tensor.Uniform(dOut, tensor.NewRNG(9), -1, 1)
	wantDX := ref.Backward(gc, dOut)

	// distributed forward+backward
	xParts := e.Shard(x)
	if _, err := e.GCNForward(dup, xParts, DPPost); err != nil {
		t.Fatal(err)
	}
	gotDX := e.Unshard(e.GCNBackward(dup, xParts, e.Shard(dOut)))

	closeAll(t, gotDX, wantDX, 1e-3, "dX")
	closeAll(t, dup.W.Grad, ref.W.Grad, 1e-2, "dW")
	closeAll(t, dup.B.Grad, ref.B.Grad, 1e-2, "dB")
}

func TestEngineOwnerAndBlocks(t *testing.T) {
	e, _, _ := engineSetup(t)
	// every vertex is owned by exactly the block containing it
	for d := 0; d < 4; d++ {
		lo, hi := e.Block(d)
		for v := lo; v < hi; v++ {
			if e.Owner(v) != d {
				t.Fatalf("vertex %d: owner %d, block %d", v, e.Owner(v), d)
			}
		}
	}
	// blocks cover all vertices
	if e.blockStart[0] != 0 || int(e.blockStart[4]) != e.G.NumVertices {
		t.Fatalf("blocks %v", e.blockStart)
	}
}

func TestGCNForwardTPMatchesReference(t *testing.T) {
	e, gc, x := engineSetup(t)
	rng := tensor.NewRNG(10)
	layer := nn.NewGCNLayer(rng, 12, 8) // f divisible by N=4
	x12 := tensor.New(240, 12)
	tensor.Uniform(x12, tensor.NewRNG(11), -1, 1)
	want := layer.Forward(gc, x12)
	e.ResetComm()
	got := e.Unshard(e.GCNForwardTP(layer, e.ShardColumns(x12)))
	closeAll(t, got, want, 1e-4, "tensor-parallel")
	// reduce-scatter traffic: (N-1) × V × fp × 4 bytes
	wantVol := 3.0 * 240 * 8 * 4
	if math.Abs(e.CommBytes()-wantVol) > 1 {
		t.Fatalf("TP volume %v, want %v", e.CommBytes(), wantVol)
	}
	_ = x
}

func TestShardColumnsRoundTrip(t *testing.T) {
	e, _, _ := engineSetup(t)
	x := tensor.New(240, 12)
	tensor.Uniform(x, tensor.NewRNG(12), -1, 1)
	parts := e.ShardColumns(x)
	total := 0
	for _, p := range parts {
		if p.Rows() != 240 {
			t.Fatalf("column shard must keep all rows, got %d", p.Rows())
		}
		total += p.RowSize()
	}
	if total != 12 {
		t.Fatalf("column shards cover %d of 12 columns", total)
	}
	// spot-check values
	if parts[0].At(5, 0) != x.At(5, 0) {
		t.Fatal("shard 0 column 0 mismatch")
	}
}

func TestDistributedTrainingMatchesSingleDevice(t *testing.T) {
	res := gen.Generate(gen.Config{
		NumVertices: 200, NumEdges: 1600, Kind: gen.PowerLaw, Skew: 0.9,
		NumBlocks: 4, Homophily: 0.85, Seed: 14,
	})
	g := res.Graph
	labels := res.Block
	x := tensor.New(200, 8)
	tensor.Uniform(x, tensor.NewRNG(15), -1, 1)
	mask := make([]int32, 0, 120)
	for v := int32(0); v < 200; v += 2 {
		mask = append(mask, v)
	}

	mkModel := func() *nn.Model {
		m, err := nn.NewModel(nn.Config{Kind: nn.GCN, InDim: 8, Hidden: 12, OutDim: 4, Layers: 2, Seed: 16})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// single-device reference
	ref := mkModel()
	gc := nn.NewGraphCtx(g)
	refOpt := nn.NewAdam(0.01, ref.Params())
	// distributed
	e := NewEngine(NewCluster(4), g)
	dm := mkModel()
	tr, err := NewTrainer(e, dm, x, labels, mask, 0.01)
	if err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 5; step++ {
		refLoss := ref.TrainStep(gc, x, labels, mask, refOpt)
		distLoss, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(refLoss-distLoss) > 1e-3*(1+math.Abs(refLoss)) {
			t.Fatalf("step %d: loss diverged: ref %.6f vs dist %.6f", step, refLoss, distLoss)
		}
	}
	// parameters must track closely after 5 updates
	refP := ref.Params()
	dstP := dm.Params()
	for i := range refP {
		for j := range refP[i].Value.Data() {
			d := math.Abs(float64(refP[i].Value.Data()[j] - dstP[i].Value.Data()[j]))
			if d > 5e-3 {
				t.Fatalf("param %s[%d] diverged by %v", refP[i].Name, j, d)
			}
		}
	}
	// and accuracies agree
	refAcc := ref.Accuracy(gc, x, labels, mask)
	distAcc, err := tr.Accuracy(mask)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(refAcc-distAcc) > 0.02 {
		t.Fatalf("accuracy diverged: %.3f vs %.3f", refAcc, distAcc)
	}
}

func TestTrainerRejectsNonGCN(t *testing.T) {
	res := gen.Generate(gen.Config{NumVertices: 50, NumEdges: 200, Kind: gen.Uniform, Seed: 17})
	e := NewEngine(NewCluster(2), res.Graph)
	m, _ := nn.NewModel(nn.Config{Kind: nn.GAT, InDim: 8, Hidden: 8, OutDim: 4, Layers: 2, Heads: 2, Seed: 18})
	x := tensor.New(50, 8)
	if _, err := NewTrainer(e, m, x, make([]int32, 50), nil, 0.01); err == nil {
		t.Fatal("expected unsupported-layer error")
	}
}

func TestSAGEBackwardMatchesReference(t *testing.T) {
	e, gc, x := engineSetup(t)
	rng := tensor.NewRNG(20)
	ref := nn.NewSAGELayer(rng, 10, 6)
	dup := nn.NewSAGELayer(tensor.NewRNG(21), 10, 6)
	dup.WSelf.Value.CopyFrom(ref.WSelf.Value)
	dup.WNeigh.Value.CopyFrom(ref.WNeigh.Value)
	dup.B.Value.CopyFrom(ref.B.Value)

	_ = ref.Forward(gc, x)
	dOut := tensor.New(240, 6)
	tensor.Uniform(dOut, tensor.NewRNG(22), -1, 1)
	wantDX := ref.Backward(gc, dOut)

	xParts := e.Shard(x)
	if _, err := e.SAGEForward(dup, xParts); err != nil {
		t.Fatal(err)
	}
	dxParts, err := e.SAGEBackward(dup, xParts, e.Shard(dOut))
	if err != nil {
		t.Fatal(err)
	}
	gotDX := e.Unshard(dxParts)
	closeAll(t, gotDX, wantDX, 1e-3, "sage dX")
	closeAll(t, dup.WSelf.Grad, ref.WSelf.Grad, 1e-2, "sage dWself")
	closeAll(t, dup.WNeigh.Grad, ref.WNeigh.Grad, 1e-2, "sage dWneigh")
	closeAll(t, dup.B.Grad, ref.B.Grad, 1e-2, "sage dB")
}

func TestGATForwardMatchesReference(t *testing.T) {
	e, gc, x := engineSetup(t)
	rng := tensor.NewRNG(23)
	layer := nn.NewGATLayer(rng, 10, 8, 2)
	want := layer.Forward(gc, x)
	e.ResetComm()
	parts, err := e.GATForward(layer, e.Shard(x))
	if err != nil {
		t.Fatal(err)
	}
	got := e.Unshard(parts)
	closeAll(t, got, want, 2e-4, "gat distributed")
	// attention exchanges the fp-wide transformed rows (DP-post volume)
	gs := Analyze(e.G, 4)
	wantVol := float64(gs.UniqRemoteSrc) * 8 * 4
	if math.Abs(e.CommBytes()-wantVol) > 1 {
		t.Fatalf("GAT volume %v, want %v", e.CommBytes(), wantVol)
	}
}

func TestDistributedSAGETrainingMatchesSingleDevice(t *testing.T) {
	res := gen.Generate(gen.Config{
		NumVertices: 160, NumEdges: 1200, Kind: gen.PowerLaw, Skew: 0.9,
		NumBlocks: 4, Homophily: 0.85, Seed: 25,
	})
	g := res.Graph
	x := tensor.New(160, 6)
	tensor.Uniform(x, tensor.NewRNG(26), -1, 1)
	mask := make([]int32, 0, 80)
	for v := int32(0); v < 160; v += 2 {
		mask = append(mask, v)
	}
	mk := func() *nn.Model {
		m, _ := nn.NewModel(nn.Config{Kind: nn.SAGE, InDim: 6, Hidden: 10, OutDim: 4, Layers: 2, Seed: 27})
		return m
	}
	ref := mk()
	gc := nn.NewGraphCtx(g)
	refOpt := nn.NewAdam(0.01, ref.Params())
	e := NewEngine(NewCluster(4), g)
	tr, err := NewTrainer(e, mk(), x, res.Block, mask, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		refLoss := ref.TrainStep(gc, x, res.Block, mask, refOpt)
		distLoss, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(refLoss-distLoss) > 1e-3*(1+math.Abs(refLoss)) {
			t.Fatalf("step %d: %.6f vs %.6f", step, refLoss, distLoss)
		}
	}
}
