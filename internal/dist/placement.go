package dist

import (
	"wisegraph/internal/nn"
)

// Strategy is a per-layer parallelization with an operation placement
// (paper Figure 11).
type Strategy int

const (
	// DPPre is data parallel, communicate-then-compute (Figure 11a,
	// DistDGL): all-to-all the remote source features, then run the
	// layer locally.
	DPPre Strategy = iota
	// DPPost is data parallel with the neural operation placed on the
	// owning (remote) device (Figure 11c): transform first, all-to-all
	// the — smaller — outputs.
	DPPost
	// TP is tensor parallel (Figure 11b/d): features split along the
	// embedding dimension; indexing is local, the neural operation needs
	// a reduce-scatter of its output.
	TP
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case DPPre:
		return "DP-pre"
	case DPPost:
		return "DP-post"
	default:
		return "TP"
	}
}

// LayerPlacement is a priced per-layer decision.
type LayerPlacement struct {
	Strategy  Strategy
	CommBytes float64
	CommSecs  float64
	CompSecs  float64
}

// Total returns comm + compute (synchronous execution).
func (p LayerPlacement) Total() float64 { return p.CommSecs + p.CompSecs }

const fb = 4.0

// PlaceLayer prices one strategy for a layer with in-dim f and out-dim fp.
// dedupVolume sends each remote source once (WiseGraph/ROC); without it
// every cross edge re-sends its source row (naive per-edge gather).
func PlaceLayer(c Cluster, gs GraphStats, kind nn.ModelKind, f, fp int, strat Strategy, dedupVolume, fused bool) LayerPlacement {
	ff := float64(f)
	ffp := float64(fp)
	remoteRows := float64(gs.CrossEdges)
	if dedupVolume {
		remoteRows = float64(gs.UniqRemoteSrc)
	}
	var p LayerPlacement
	p.Strategy = strat
	switch strat {
	case DPPre:
		p.CommBytes = remoteRows * ff * fb
		p.CommSecs = c.AllToAll(p.CommBytes)
		p.CompSecs = computeSecs(c, gs, kind, ff, ffp, 1, fused)
	case DPPost:
		// transform on the owner, ship the (fp-wide) result: the
		// changing-data-volume win when fp < f.
		p.CommBytes = remoteRows * ffp * fb
		p.CommSecs = c.AllToAll(p.CommBytes)
		p.CompSecs = computeSecs(c, gs, kind, ff, ffp, 1, fused)
	case TP:
		// indexing local (each device holds all rows, f/N columns);
		// neural output needs a reduce-scatter over all destinations.
		p.CommBytes = float64(gs.V) * ffp * fb
		p.CommSecs = c.ReduceScatter(p.CommBytes)
		p.CompSecs = computeSecs(c, gs, kind, ff, ffp, c.N, fused)
	}
	return p
}

// computeSecs models the per-device layer compute: the dense transform at
// full tensor-core rate plus the aggregation traffic, on the device with
// the most edges. colSplit > 1 divides the feature dimension (TP).
func computeSecs(c Cluster, gs GraphStats, kind nn.ModelKind, f, fp float64, colSplit int, fused bool) float64 {
	v := float64(gs.V) / float64(c.N)
	e := float64(gs.MaxDeviceEdges)
	fLocal := f / float64(colSplit)
	// Aggregation traffic per edge: separate-kernel execution (the
	// baselines) materializes and re-reads per-edge rows; WiseGraph's
	// fused batched gTask kernels touch each unique row once (the
	// single-GPU efficiency the paper's MGG comparison attributes 2.9x
	// to).
	aggBytes := 3 * e * fp
	if fused {
		aggBytes = e * fp / 4
	}
	var flops, bytes float64
	switch kind {
	case nn.RGCN, nn.GAT, nn.SAGELSTM:
		flops = 2*v*fLocal*fp + 2*e*fp // transform + heavier per-edge work
		bytes = (v*fLocal + aggBytes + v*fp) * fb
	default:
		flops = 2 * v * fLocal * fp
		bytes = (v*fLocal + aggBytes + v*fp) * fb
	}
	tc := flops / c.Dev.TensorCoreFLOPS
	tm := bytes / c.Dev.MemBandwidth
	if tm > tc {
		return tm + c.Dev.LaunchOverhead
	}
	return tc + c.Dev.LaunchOverhead
}

// ChooseLayer returns the best-priced strategy for the layer — the
// adaptive placement WiseGraph applies per layer.
func ChooseLayer(c Cluster, gs GraphStats, kind nn.ModelKind, f, fp int, dedupVolume, fused bool) LayerPlacement {
	best := PlaceLayer(c, gs, kind, f, fp, DPPre, dedupVolume, fused)
	for _, s := range []Strategy{DPPost, TP} {
		if p := PlaceLayer(c, gs, kind, f, fp, s, dedupVolume, fused); p.Total() < best.Total() {
			best = p
		}
	}
	return best
}

// Policy is a multi-GPU system's (static or adaptive) strategy choice.
type Policy int

const (
	// PolicyDGL: data parallel, communicate-then-compute with
	// deduplicated feature gathers (DistDGL ships each needed remote
	// vertex once), on a contiguous-block partition.
	PolicyDGL Policy = iota
	// PolicyROC: data parallel with a locality-optimized partition
	// (dedup'd volume, fewer cross edges).
	PolicyROC
	// PolicyDGCL: data parallel with a communication planner that incurs
	// extra coordination latency per step.
	PolicyDGCL
	// PolicyP3: tensor parallel for the input layer, data parallel after
	// (static hybrid).
	PolicyP3
	// PolicyWise: per-layer adaptive placement with dedup'd volume.
	PolicyWise
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyDGL:
		return "DGL"
	case PolicyROC:
		return "ROC"
	case PolicyDGCL:
		return "DGCL"
	case PolicyP3:
		return "P3"
	default:
		return "WiseGraph"
	}
}

// rocCrossFactor models ROC's learned partitioner: ~40% fewer cross
// edges than contiguous blocks.
const rocCrossFactor = 0.6

// dgclCommPenalty models DGCL's decentralized peer-to-peer transfer plan:
// many small staged copies reach lower effective bandwidth than one fused
// collective (the paper's Table 2 shows DGCL behind DGL on these graphs).
const dgclCommPenalty = 1.3

// IterationTime prices one training iteration (forward + backward) of a
// model with the given layer dimensions under a policy. dims has one
// entry per layer boundary: dims[0] = input, dims[i] = output of layer i.
func IterationTime(c Cluster, gs GraphStats, kind nn.ModelKind, dims []int, policy Policy) float64 {
	var total float64
	gsUse := gs
	for li := 0; li+1 < len(dims); li++ {
		f, fp := dims[li], dims[li+1]
		var p LayerPlacement
		switch policy {
		case PolicyDGL:
			p = PlaceLayer(c, gsUse, kind, f, fp, DPPre, true, false)
		case PolicyROC:
			r := gsUse
			r.CrossEdges = int(float64(r.CrossEdges) * rocCrossFactor)
			r.UniqRemoteSrc = int(float64(r.UniqRemoteSrc) * rocCrossFactor)
			p = PlaceLayer(c, r, kind, f, fp, DPPre, true, false)
		case PolicyDGCL:
			p = PlaceLayer(c, gsUse, kind, f, fp, DPPre, true, false)
			p.CommSecs *= dgclCommPenalty
		case PolicyP3:
			// P3's static hybrid: TP for the input layer, DGL-style data
			// parallel for the rest.
			if li == 0 {
				p = PlaceLayer(c, gsUse, kind, f, fp, TP, true, false)
			} else {
				p = PlaceLayer(c, gsUse, kind, f, fp, DPPre, true, false)
			}
		case PolicyWise:
			p = ChooseLayer(c, gsUse, kind, f, fp, true, true)
		}
		total += p.Total()
	}
	// backward: mirrored communication and compute (transpose collectives
	// have the same volume), plus a gradient all-reduce on the weights
	// (negligible volume next to features, priced at one alpha per layer).
	total *= 2
	total += float64(len(dims)-1) * c.Link.Alpha
	return total
}
