package dist

import (
	"math"
	"sync"

	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
)

// SAGEBackward runs the distributed backward of SAGEForward: given
// per-device d(loss)/d(out) it accumulates the layer's gradients (weight
// partials all-reduced) and returns per-device d(loss)/dx.
func (e *Engine) SAGEBackward(layer *nn.SAGELayer, xParts, dOutParts []*tensor.Tensor) ([]*tensor.Tensor, error) {
	n := e.C.N
	invDeg := invDegWeights(e.G)
	f := layer.InDim()
	for d := 0; d < n; d++ {
		accumBias(layer.B.Grad, dOutParts[d])
	}
	// recompute the forward aggregation (needed for dWneigh)
	recv, err := e.exchange(xParts)
	if err != nil {
		return nil, err
	}
	agg := e.aggregate(xParts, recv, f, invDeg)

	// local dense gradients + dAgg
	dAgg := make([]*tensor.Tensor, n)
	dx := make([]*tensor.Tensor, n)
	selfPart := make([]*tensor.Tensor, n)
	neighPart := make([]*tensor.Tensor, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			selfPart[d] = tensor.MatMulTransA(nil, xParts[d], dOutParts[d])
			neighPart[d] = tensor.MatMulTransA(nil, agg[d], dOutParts[d])
			dx[d] = tensor.MatMulTransB(nil, dOutParts[d], layer.WSelf.Value)
			dAgg[d] = tensor.MatMulTransB(nil, dOutParts[d], layer.WNeigh.Value)
		}(d)
	}
	wg.Wait()
	for d := 0; d < n; d++ {
		tensor.AXPY(layer.WSelf.Grad, 1, selfPart[d])
		tensor.AXPY(layer.WNeigh.Grad, 1, neighPart[d])
	}
	e.account(2 * float64(n-1) * float64(layer.WSelf.Grad.Len()+layer.WNeigh.Grad.Len()) * 4)

	// reverse aggregation of dAgg back to source owners
	remote := make([]map[int32][]float32, n)
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			lo, _ := e.Block(d)
			rem := map[int32][]float32{}
			for _, ei := range e.devEdges[d] {
				src := e.G.Src[ei]
				dst := e.G.Dst[ei]
				w := invDeg[ei]
				dor := dAgg[d].Row(int(dst - lo))
				var target []float32
				if e.Owner(src) == d {
					target = dx[d].Row(int(src - lo))
				} else {
					target = rem[src]
					if target == nil {
						target = make([]float32, f)
						rem[src] = target
					}
				}
				for j, v := range dor {
					target[j] += w * v
				}
			}
			remote[d] = rem
		}(d)
	}
	wg.Wait()
	for d := 0; d < n; d++ {
		for v, row := range remote[d] {
			owner := e.Owner(v)
			lo := e.blockStart[owner]
			target := dx[owner].Row(int(v - lo))
			for j, x := range row {
				target[j] += x
			}
			e.account(float64(len(row)) * 4)
		}
	}
	return dx, nil
}

// GATForward runs one distributed GAT layer. Destinations are block-
// partitioned, so each destination's full in-edge set — and therefore its
// softmax normalization — is local to its owner; the exchange ships the
// transformed rows (Z) of remote sources, whose attention projections are
// then computed locally from the received rows.
func (e *Engine) GATForward(layer *nn.GATLayer, xParts []*tensor.Tensor) ([]*tensor.Tensor, error) {
	n := e.C.N
	heads := layer.Heads()
	dh := layer.OutDim() / heads
	// local transforms
	z := make([]*tensor.Tensor, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			z[d] = tensor.MatMul(nil, xParts[d], layer.W.Value)
		}(d)
	}
	wg.Wait()
	// halo exchange of transformed rows (fp-wide — the DP-post placement;
	// attention needs Z[src], never raw x[src])
	recv, err := e.exchange(z)
	if err != nil {
		return nil, err
	}

	project := func(zr []float32, a *nn.Param, h int) float32 {
		ar := a.Value.Row(h)
		var s float32
		for dd := 0; dd < dh; dd++ {
			s += ar[dd] * zr[h*dh+dd]
		}
		return s
	}

	out := make([]*tensor.Tensor, n)
	wg.Add(n)
	for d := 0; d < n; d++ {
		go func(d int) {
			defer wg.Done()
			lo, hi := e.Block(d)
			rows := int(hi - lo)
			o := tensor.New(rows, layer.OutDim())
			// group this device's edges by destination
			byDst := make(map[int32][]int32)
			for _, ei := range e.devEdges[d] {
				byDst[e.G.Dst[ei]] = append(byDst[e.G.Dst[ei]], ei)
			}
			srcRow := func(src int32) []float32 {
				if e.Owner(src) == d {
					return z[d].Row(int(src - lo))
				}
				return recv[d][src]
			}
			for dst, edges := range byDst {
				zdst := z[d].Row(int(dst - lo))
				orow := o.Row(int(dst - lo))
				for h := 0; h < heads; h++ {
					pr := project(zdst, layer.AR, h)
					// scores with leaky-relu, then a stable softmax
					scores := make([]float64, len(edges))
					maxS := -1e30
					for i, ei := range edges {
						s := float64(project(srcRow(e.G.Src[ei]), layer.AL, h) + pr)
						if s < 0 {
							s *= 0.2
						}
						scores[i] = s
						if s > maxS {
							maxS = s
						}
					}
					var sum float64
					for i := range scores {
						scores[i] = exp64(scores[i] - maxS)
						sum += scores[i]
					}
					for i, ei := range edges {
						a := float32(scores[i] / sum)
						zr := srcRow(e.G.Src[ei])
						for dd := 0; dd < dh; dd++ {
							orow[h*dh+dd] += a * zr[h*dh+dd]
						}
					}
				}
			}
			tensor.AddBias(o, layer.B.Value)
			out[d] = o
		}(d)
	}
	wg.Wait()
	return out, nil
}

func exp64(x float64) float64 { return math.Exp(x) }
