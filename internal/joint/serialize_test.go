package joint

import (
	"strings"
	"testing"

	"wisegraph/internal/device"
	"wisegraph/internal/nn"
)

func TestPlanSerializationRoundTrip(t *testing.T) {
	g := skewedGraph(12)
	res := Search(g, nn.RGCN, 32, 32, 4, Options{Spec: device.A100()})
	data, err := res.MarshalPlan()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Fatalf("plan file missing version: %s", data)
	}
	kind, gp, op, diff, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != nn.RGCN {
		t.Fatalf("model %v", kind)
	}
	if gp.Name != res.GraphPlan.Name || len(gp.Restrictions) != len(res.GraphPlan.Restrictions) {
		t.Fatalf("graph plan mismatch: %v vs %v", gp, res.GraphPlan)
	}
	for i, r := range gp.Restrictions {
		o := res.GraphPlan.Restrictions[i]
		if r.Attr != o.Attr || r.Kind != o.Kind || (r.Kind == 0 && r.Limit != o.Limit) {
			t.Fatalf("restriction %d mismatch: %v vs %v", i, r, o)
		}
	}
	if op != res.OpPlan || diff != res.Differentiated {
		t.Fatalf("op plan mismatch: %v/%v vs %v/%v", op, diff, res.OpPlan, res.Differentiated)
	}
}

func TestUnmarshalPlanRejectsGarbage(t *testing.T) {
	if _, _, _, _, err := UnmarshalPlan([]byte("not json")); err == nil {
		t.Fatal("expected JSON error")
	}
	if _, _, _, _, err := UnmarshalPlan([]byte(`{"version":99}`)); err == nil {
		t.Fatal("expected version error")
	}
	if _, _, _, _, err := UnmarshalPlan([]byte(`{"version":1,"model":"bogus"}`)); err == nil {
		t.Fatal("expected model error")
	}
	bad := `{"version":1,"model":"GCN","restrictions":[{"attr":"nope","kind":"exact","limit":1}]}`
	if _, _, _, _, err := UnmarshalPlan([]byte(bad)); err == nil {
		t.Fatal("expected attribute error")
	}
	bad2 := `{"version":1,"model":"GCN","restrictions":[{"attr":"dst-id","kind":"weird"}]}`
	if _, _, _, _, err := UnmarshalPlan([]byte(bad2)); err == nil {
		t.Fatal("expected kind error")
	}
}
