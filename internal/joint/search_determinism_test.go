package joint

import (
	"reflect"
	"testing"

	"wisegraph/internal/device"
	"wisegraph/internal/nn"
	"wisegraph/internal/parallel"
)

// TestSearchDeterministicAcrossWorkerCounts runs the same search under
// different pool widths and requires bit-for-bit identical Results:
// candidate evaluation is concurrent, but the replay that builds the
// trace, incumbent and counters is sequential in enumeration order.
func TestSearchDeterministicAcrossWorkerCounts(t *testing.T) {
	defer parallel.SetMaxWorkers(parallel.MaxWorkers())
	g := skewedGraph(9)
	for _, kind := range []nn.ModelKind{nn.RGCN, nn.GCN, nn.SAGELSTM} {
		parallel.SetMaxWorkers(1)
		want := Search(g, kind, 32, 32, 4, Options{Spec: device.A100()})
		for _, w := range []int{2, 4, 8} {
			parallel.SetMaxWorkers(w)
			got := Search(g, kind, 32, 32, 4, Options{Spec: device.A100()})
			if got.GraphPlan.String() != want.GraphPlan.String() {
				t.Fatalf("%v workers=%d: plan %v, want %v", kind, w, got.GraphPlan, want.GraphPlan)
			}
			if got.OpPlan != want.OpPlan || got.Differentiated != want.Differentiated {
				t.Fatalf("%v workers=%d: op %v/%v, want %v/%v",
					kind, w, got.OpPlan, got.Differentiated, want.OpPlan, want.Differentiated)
			}
			if got.Seconds != want.Seconds {
				t.Fatalf("%v workers=%d: seconds %v, want %v", kind, w, got.Seconds, want.Seconds)
			}
			if got.PlansTried != want.PlansTried || got.PlansPruned != want.PlansPruned || got.CacheHits != want.CacheHits {
				t.Fatalf("%v workers=%d: counters tried=%d pruned=%d hits=%d, want %d/%d/%d",
					kind, w, got.PlansTried, got.PlansPruned, got.CacheHits,
					want.PlansTried, want.PlansPruned, want.CacheHits)
			}
			if !reflect.DeepEqual(got.Trace, want.Trace) {
				t.Fatalf("%v workers=%d: trace diverged\n got  %+v\n want %+v", kind, w, got.Trace, want.Trace)
			}
			if !reflect.DeepEqual(got.Partition.TaskOffsets, want.Partition.TaskOffsets) ||
				!reflect.DeepEqual(got.Partition.Order, want.Partition.Order) {
				t.Fatalf("%v workers=%d: selected partition diverged", kind, w)
			}
			if !reflect.DeepEqual(got.Classification.Counts, want.Classification.Counts) {
				t.Fatalf("%v workers=%d: classification %v, want %v",
					kind, w, got.Classification.Counts, want.Classification.Counts)
			}
		}
	}
}

// TestSearchTraceRecordsPrunedPlans checks that structurally pruned plans
// appear in the trace by name with the "pruned" stage.
func TestSearchTraceRecordsPrunedPlans(t *testing.T) {
	g := skewedGraph(10)
	res := Search(g, nn.GCN, 32, 32, 1, Options{Spec: device.A100()})
	if res.PlansPruned == 0 {
		t.Skip("no plans pruned at this scale")
	}
	n := 0
	for _, s := range res.Trace {
		if s.Stage == "pruned" {
			n++
			if s.Desc == "" {
				t.Fatal("pruned trace step is missing the plan name")
			}
			if s.Seconds != 0 {
				t.Fatalf("pruned step has modeled time %v", s.Seconds)
			}
		}
	}
	if n != res.PlansPruned {
		t.Fatalf("%d pruned steps in trace, PlansPruned=%d", n, res.PlansPruned)
	}
}
