package joint

import (
	"strings"
	"testing"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
)

func skewedGraph(seed uint64) *graph.Graph {
	return gen.Generate(gen.Config{
		NumVertices: 400, NumEdges: 4000, Kind: gen.PowerLaw, Skew: 1.1,
		NumTypes: 4, Seed: seed,
	}).Graph
}

func attrs() []core.Attr {
	return []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree}
}

func TestClassifyFindsUnderfill(t *testing.T) {
	// plan demanding 64-edge batches on a sparse uniform graph → most
	// tasks underfill... use dst-batch with a big limit on a tiny graph.
	g := gen.Generate(gen.Config{NumVertices: 100, NumEdges: 120, Kind: gen.Uniform, Seed: 1}).Graph
	plan := core.GraphPlan{Name: "dst64", Restrictions: []core.Restriction{
		{Attr: core.AttrDstID, Kind: core.Exact, Limit: 64},
	}}
	part := core.PartitionGraph(g, plan, attrs())
	cls := Classify(part)
	// the final task usually cannot fill 64 unique dsts... ensure the
	// classifier at least runs and is consistent
	if len(cls.Kind) != part.NumTasks() {
		t.Fatalf("classification size %d vs %d tasks", len(cls.Kind), part.NumTasks())
	}
	total := 0
	for _, c := range cls.Counts {
		total += c
	}
	if total != part.NumTasks() {
		t.Fatalf("counts sum %d vs %d", total, part.NumTasks())
	}
}

func TestClassifyFindsOverfillOnHubs(t *testing.T) {
	// vertex-centric on a power-law graph: hub destinations become
	// overfill tasks (edges ≫ median)
	g := skewedGraph(2)
	part := core.PartitionGraph(g, core.VertexCentric(), attrs())
	cls := Classify(part)
	if cls.Counts[Overfill] == 0 {
		t.Fatal("expected overfill tasks on a power-law graph")
	}
}

func TestClassifyFindsFrequentValues(t *testing.T) {
	// dst=1 & edge-id=K: a hub destination spans many tasks → frequent
	g := skewedGraph(3)
	plan := core.GraphPlan{Name: "dst1-edge8", Restrictions: []core.Restriction{
		{Attr: core.AttrDstID, Kind: core.Exact, Limit: 1},
		{Attr: core.AttrEdgeID, Kind: core.Exact, Limit: 8},
	}}
	part := core.PartitionGraph(g, plan, attrs())
	cls := Classify(part)
	if cls.Counts[Frequent] == 0 {
		t.Fatal("expected frequent-value tasks for split hubs")
	}
}

func TestDifferentiatedBeatsUniformOnSkew(t *testing.T) {
	// Paper Figure 19: differentiated execution reduces total time.
	g := skewedGraph(4)
	spec := device.A100()
	sh := kernels.LayerShape{Kind: nn.RGCN, F: 64, Fp: 64, Types: 4}
	part := core.PartitionGraph(g, core.VertexCentric(), attrs())
	cls := Classify(part)
	if cls.Outliers() == 0 {
		t.Skip("no outliers at this scale")
	}
	op := kernels.Plan{Batched: true}
	uni := UniformSchedule(spec, part, sh, op).Makespan(spec.NumUnits)
	diff := DifferentiatedSchedule(spec, part, sh, op, cls).Makespan(spec.NumUnits)
	if diff >= uni {
		t.Fatalf("differentiated %.3g must beat uniform %.3g", diff, uni)
	}
}

func TestScheduleMakespanMonotone(t *testing.T) {
	s := Schedule{Times: []float64{1, 2, 3}, Precompute: 0.5}
	m1 := s.Makespan(1)
	m2 := s.Makespan(2)
	if m1 != 6.5 || m2 >= m1 {
		t.Fatalf("makespans %v %v", m1, m2)
	}
}

func TestSearchProducesThreeStagesAndImproves(t *testing.T) {
	g := skewedGraph(5)
	for _, kind := range []nn.ModelKind{nn.RGCN, nn.GCN, nn.SAGELSTM} {
		res := Search(g, kind, 32, 32, 4, Options{Spec: device.A100()})
		if res.Partition == nil || res.Seconds <= 0 {
			t.Fatalf("%v: empty result", kind)
		}
		stages := map[string]bool{}
		for _, s := range res.Trace {
			stages[s.Stage] = true
		}
		for _, want := range []string{"graph-partition", "operation-partition", "joint"} {
			if !stages[want] {
				t.Fatalf("%v: stage %q missing from trace", kind, want)
			}
		}
		// throughput is monotone non-decreasing along the trace
		prev := 0.0
		for i, s := range res.Trace {
			if s.Throughput+1e-9 < prev {
				t.Fatalf("%v: throughput decreased at step %d", kind, i)
			}
			prev = s.Throughput
		}
		// the final plan beats the initial naive plan
		if res.Trace[0].Seconds < res.Seconds {
			t.Fatalf("%v: search ended worse than it started", kind)
		}
		if res.PlansTried < 3 {
			t.Fatalf("%v: only %d plans tried", kind, res.PlansTried)
		}
	}
}

func TestSearchRGCNFindsDedup(t *testing.T) {
	// On a typed power-law graph RGCN's winning plan should use the
	// dedup'd (transformed-DFG) kernels — the paper's headline result.
	g := skewedGraph(6)
	res := Search(g, nn.RGCN, 64, 64, 4, Options{Spec: device.A100()})
	if !res.OpPlan.Dedup {
		t.Fatalf("RGCN search selected %v; expected dedup kernels", res.OpPlan)
	}
	// And the chosen graph plan should restrict edge-type (Figure 15b).
	if _, ok := res.GraphPlan.Restricted(core.AttrEdgeType); !ok {
		t.Logf("chosen plan: %v (edge-type not restricted — acceptable but unexpected)", res.GraphPlan)
	}
}

func TestSearchPrunesAndCaches(t *testing.T) {
	g := skewedGraph(7)
	res := Search(g, nn.GCN, 32, 32, 1, Options{Spec: device.A100()})
	if res.CacheHits == 0 {
		t.Fatal("expected partition cache hits across stages")
	}
}

func TestSearchLSTMPrefersDegreePlans(t *testing.T) {
	// Figure 15d: SAGE-LSTM groups destinations by degree.
	g := skewedGraph(8)
	res := Search(g, nn.SAGELSTM, 32, 32, 1, Options{Spec: device.A100()})
	if !kernels.ValidPlanFor(nn.SAGELSTM, res.GraphPlan) {
		t.Fatalf("invalid plan selected: %v", res.GraphPlan)
	}
	if !strings.Contains(res.GraphPlan.Name, "deg") && !strings.Contains(res.GraphPlan.Name, "dst") {
		t.Fatalf("LSTM plan %v does not batch destinations", res.GraphPlan)
	}
}
