package joint

import (
	"fmt"
	"runtime"
	"testing"

	"wisegraph/internal/device"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/nn"
	"wisegraph/internal/parallel"
)

// BenchmarkJointSearch measures a full three-stage search on a typed
// power-law graph, at one worker and at the machine's CPU count. The
// Result is identical in both configurations (see
// TestSearchDeterministicAcrossWorkerCounts); only wall-clock differs.
func BenchmarkJointSearch(b *testing.B) {
	g := gen.Generate(gen.Config{
		NumVertices: 8000, NumEdges: 80000,
		Kind: gen.PowerLaw, Skew: 1.0, NumTypes: 4, Seed: 13,
	}).Graph
	g.InDegrees()
	g.OutDegrees()
	workers := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workers = append(workers, n)
	}
	defer parallel.SetMaxWorkers(parallel.MaxWorkers())
	for _, kind := range []nn.ModelKind{nn.RGCN, nn.GCN} {
		for _, w := range workers {
			b.Run(fmt.Sprintf("%v/workers=%d", kind, w), func(b *testing.B) {
				parallel.SetMaxWorkers(w)
				for i := 0; i < b.N; i++ {
					Search(g, kind, 64, 64, 4, Options{Spec: device.A100()})
				}
			})
		}
	}
}
