package joint

import (
	"encoding/json"
	"fmt"
	"math"

	"wisegraph/internal/core"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
)

// PlanFile is the serializable form of a tuned execution plan — the
// artifact of one-shot joint optimization that sampled-graph training
// reuses across subgraphs (and across processes).
type PlanFile struct {
	Version        int               `json:"version"`
	Model          string            `json:"model"`
	GraphPlanName  string            `json:"graphPlan"`
	Restrictions   []RestrictionFile `json:"restrictions"`
	Dedup          bool              `json:"dedup"`
	Batched        bool              `json:"batched"`
	Differentiated bool              `json:"differentiated"`
	ModeledSeconds float64           `json:"modeledSeconds"`
}

// RestrictionFile serializes one gTask restriction.
type RestrictionFile struct {
	Attr  string `json:"attr"`
	Kind  string `json:"kind"` // "exact" or "min"
	Limit int    `json:"limit,omitempty"`
}

// MarshalPlan serializes the search result's execution plan.
func (r *Result) MarshalPlan() ([]byte, error) {
	pf := PlanFile{
		Version:        1,
		Model:          r.Kind.String(),
		GraphPlanName:  r.GraphPlan.Name,
		Dedup:          r.OpPlan.Dedup,
		Batched:        r.OpPlan.Batched,
		Differentiated: r.Differentiated,
		ModeledSeconds: r.Seconds,
	}
	// The modeled time is advisory metadata; a plan tuned without a
	// device model carries ±Inf, which JSON cannot represent — drop it
	// rather than fail to serialize an otherwise valid plan.
	if math.IsInf(pf.ModeledSeconds, 0) || math.IsNaN(pf.ModeledSeconds) {
		pf.ModeledSeconds = 0
	}
	for _, restr := range r.GraphPlan.Restrictions {
		rf := RestrictionFile{Attr: restr.Attr.String(), Limit: restr.Limit}
		if restr.Kind == core.Min {
			rf.Kind = "min"
			rf.Limit = 0
		} else {
			rf.Kind = "exact"
		}
		pf.Restrictions = append(pf.Restrictions, rf)
	}
	return json.MarshalIndent(pf, "", "  ")
}

// UnmarshalPlan reconstructs the plan triple (graph plan, operation plan,
// differentiated flag) from serialized bytes. The caller applies the
// graph plan with core.PartitionGraph.
func UnmarshalPlan(data []byte) (nn.ModelKind, core.GraphPlan, kernels.Plan, bool, error) {
	var pf PlanFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return 0, core.GraphPlan{}, kernels.Plan{}, false, err
	}
	if pf.Version != 1 {
		return 0, core.GraphPlan{}, kernels.Plan{}, false, fmt.Errorf("joint: unsupported plan version %d", pf.Version)
	}
	kind, err := nn.ParseModel(pf.Model)
	if err != nil {
		return 0, core.GraphPlan{}, kernels.Plan{}, false, err
	}
	gp := core.GraphPlan{Name: pf.GraphPlanName}
	for _, rf := range pf.Restrictions {
		attr, err := core.ParseAttr(rf.Attr)
		if err != nil {
			return 0, core.GraphPlan{}, kernels.Plan{}, false, err
		}
		switch rf.Kind {
		case "exact":
			gp.Restrictions = append(gp.Restrictions, core.Restriction{Attr: attr, Kind: core.Exact, Limit: rf.Limit})
		case "min":
			gp.Restrictions = append(gp.Restrictions, core.Restriction{Attr: attr, Kind: core.Min})
		default:
			return 0, core.GraphPlan{}, kernels.Plan{}, false, fmt.Errorf("joint: unknown restriction kind %q", rf.Kind)
		}
	}
	return kind, gp, kernels.Plan{Dedup: pf.Dedup, Batched: pf.Batched}, pf.Differentiated, nil
}
