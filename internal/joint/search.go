package joint

import (
	"fmt"
	"sync"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/dfg"
	"wisegraph/internal/graph"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/opt"
	"wisegraph/internal/parallel"
	"wisegraph/internal/pattern"
)

// Options configures the search.
type Options struct {
	Spec device.Spec
	// PlanSpace controls graph-plan enumeration (defaults per model).
	PlanSpace *core.PlanSpace
	// PruneFactor rejects candidate plans whose cost-model estimate is
	// this many times worse than the incumbent (paper §6.3 pruning).
	PruneFactor float64
}

// Step is one tuning step of the search trace (paper Figure 16's x-axis).
type Step struct {
	Stage      string // "graph-partition", "pruned", "operation-partition", "joint"
	Desc       string
	Seconds    float64 // modeled per-layer time of this candidate (0 for pruned plans)
	Throughput float64 // edges/second of the best plan so far
}

// Result is the selected execution plan with search diagnostics.
type Result struct {
	Kind      nn.ModelKind
	GraphPlan core.GraphPlan
	Partition *core.Partition
	// OpPlan executes regular gTasks; outliers are handled by the
	// differentiated schedule.
	OpPlan         kernels.Plan
	Classification Classification
	Differentiated bool
	Seconds        float64
	Trace          []Step

	PlansTried  int
	PlansPruned int
	CacheHits   int
}

// statAttrs are collected for every partition the search builds.
var statAttrs = []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree}

// LayerTime models one layer's execution: the shared dense kernels plus
// the fused gTask kernel under the given schedule.
func LayerTime(spec device.Spec, sh kernels.LayerShape, v int, sched Schedule) float64 {
	t := 0.0
	for _, k := range kernels.DenseKernels(sh, v) {
		t += spec.LaunchOverhead + spec.Time(k)
	}
	t += spec.LaunchOverhead + sched.Makespan(spec.NumUnits)
	return t
}

// opEval is one (operation plan, modeled time) pair from a candidate's
// stage-2 sweep.
type opEval struct {
	op   kernels.Plan
	secs float64
}

// candEval is everything the concurrent phase computes for one graph
// plan. All of it is a pure function of (g, kind, shape, plan), so
// workers fill these in any order and the sequential replay below
// consumes them in enumeration order.
type candEval struct {
	gp        core.GraphPlan
	part      *core.Partition
	naiveSecs float64  // stage 1: original DFG, edge-wise kernels
	ops       []opEval // stage 2: tuned operation plans
}

// Search explores the joint space for one representative layer of the
// model (F → Fp) over graph g and returns the best execution plan found,
// with the full tuning trace.
//
// Candidate plans are partitioned and cost-modeled concurrently on the
// internal/parallel pool (each evaluation is pure; partitions are shared
// through a singleflight cache), then the trace, incumbent and counters
// are replayed sequentially in enumeration order — the Result is
// identical for any worker count.
func Search(g *graph.Graph, kind nn.ModelKind, f, fp, numTypes int, opts Options) *Result {
	if opts.PruneFactor == 0 {
		opts.PruneFactor = 3
	}
	space := core.DefaultPlanSpace(kind == nn.RGCN)
	if opts.PlanSpace != nil {
		space = *opts.PlanSpace
	}
	sh := kernels.LayerShape{Kind: kind, F: f, Fp: fp, Types: numTypes}
	res := &Result{Kind: kind}

	// Singleflight partition cache: the first goroutine to ask for a plan
	// builds its partition, concurrent askers block on the entry's Once.
	type partEntry struct {
		once sync.Once
		part *core.Partition
	}
	var cacheMu sync.Mutex
	partCache := map[string]*partEntry{}
	partitionOf := func(p core.GraphPlan) *core.Partition {
		key := p.String()
		cacheMu.Lock()
		ent, ok := partCache[key]
		if !ok {
			ent = &partEntry{}
			partCache[key] = ent
		}
		cacheMu.Unlock()
		ent.once.Do(func() { ent.part = core.PartitionGraph(g, p, statAttrs) })
		return ent.part
	}
	// touch replays the sequential implementation's cache-lookup sequence
	// so CacheHits stays meaningful (and worker-count independent): every
	// plan re-requested after its first build counts once.
	seen := map[string]bool{}
	touch := func(p core.GraphPlan) {
		key := p.String()
		if seen[key] {
			res.CacheHits++
		} else {
			seen[key] = true
		}
	}

	e := float64(g.NumEdges())
	record := func(stage, desc string, secs float64) {
		best := res.Seconds
		if best == 0 || secs < best {
			best = secs
		}
		res.Trace = append(res.Trace, Step{Stage: stage, Desc: desc, Seconds: secs, Throughput: e / best})
	}
	consider := func(stage string, gp core.GraphPlan, part *core.Partition, op kernels.Plan, cls *Classification, differentiated bool, secs float64) {
		record(stage, fmt.Sprintf("%s %s diff=%v", gp.Name, op, differentiated), secs)
		if res.Seconds == 0 || secs < res.Seconds {
			res.Seconds = secs
			res.GraphPlan = gp
			res.Partition = part
			res.OpPlan = op
			res.Differentiated = differentiated
			if cls != nil {
				res.Classification = *cls
			}
		}
		res.PlansTried++
	}
	uniformSecs := func(part *core.Partition, op kernels.Plan) float64 {
		return LayerTime(opts.Spec, sh, g.NumVertices, UniformSchedule(opts.Spec, part, sh, op))
	}

	// ---- Enumeration and pruning (sequential, structural estimates only) ----
	// Initial point: edge-centric with naive (edge-wise) kernels.
	init := core.EdgeCentric()
	if !kernels.ValidPlanFor(kind, init) {
		init = core.VertexCentric()
	}
	var pruned []core.GraphPlan
	var candidates []core.GraphPlan
	for _, gp := range core.EnumeratePlans(kind.IndexAttrs(), space) {
		if !kernels.ValidPlanFor(kind, gp) {
			continue
		}
		if pruneEstimate(g, gp) {
			pruned = append(pruned, gp)
			continue
		}
		candidates = append(candidates, gp)
	}

	// ---- Concurrent evaluation ----
	// Work item 0 is the initial plan (stage 1 only); the rest are the
	// candidates, which also get the stage-2 operation-plan sweep: for
	// every surviving graph plan, the DFG transformation engine decides —
	// from that plan's own gTask-level data patterns — whether
	// duplication-aware rewrites pay off, then the kernel plans are swept.
	// Tuning per graph plan is what makes the search *joint*: the best
	// operation plan differs across graph plans (paper §1).
	items := append([]core.GraphPlan{init}, candidates...)
	evals := make([]*candEval, len(items))
	parallel.For(len(items), 1, func(i int) {
		gp := items[i]
		part := partitionOf(gp)
		ev := &candEval{gp: gp, part: part, naiveSecs: uniformSecs(part, kernels.Plan{})}
		if i > 0 {
			pp := pattern.Analyze(part, statAttrs)
			dup := map[string]bool{
				"src-id":    pp.Duplicated(core.AttrSrcID),
				"edge-type": pp.Duplicated(core.AttrEdgeType),
				"dst-id":    pp.Duplicated(core.AttrDstID),
			}
			// Each worker builds its own layer DFG: construction is cheap
			// and deterministic, and it keeps candidates free of shared
			// mutable state.
			layerDFG := nn.LayerDFG(kind, g.NumVertices, numTypes, f, fp)
			cands := opt.Transform(layerDFG, opt.Info{AttrOf: nn.AttrOfKeys(), Dup: dup})
			bestDFG, _ := opt.SelectBest(cands, pp.RegularStats())
			opPlans := []kernels.Plan{{Batched: true}}
			if hasTransformedIndex(bestDFG) {
				opPlans = append(opPlans, kernels.Plan{Batched: true, Dedup: true})
			}
			for _, op := range opPlans {
				ev.ops = append(ev.ops, opEval{op: op, secs: uniformSecs(part, op)})
			}
		}
		evals[i] = ev
	})

	// ---- Sequential replay: stage 1 (graph partition, paper §4) ----
	touch(init)
	consider("graph-partition", evals[0].gp, evals[0].part, kernels.Plan{}, nil, false, evals[0].naiveSecs)
	for _, gp := range pruned {
		res.PlansPruned++
		tp := 0.0
		if res.Seconds > 0 {
			tp = e / res.Seconds
		}
		res.Trace = append(res.Trace, Step{Stage: "pruned", Desc: gp.String(), Throughput: tp})
	}
	for _, ev := range evals[1:] {
		touch(ev.gp)
		consider("graph-partition", ev.gp, ev.part, kernels.Plan{}, nil, false, ev.naiveSecs)
	}

	// ---- Stage 2 replay (operation partition, paper §5) ----
	for _, ev := range evals[1:] {
		touch(ev.gp)
		for _, oe := range ev.ops {
			consider("operation-partition", ev.gp, ev.part, oe.op, nil, false, oe.secs)
		}
	}

	// ---- Stage 3: joint optimization (paper §6) ----
	finalGP := res.GraphPlan
	touch(finalGP)
	finalPart := partitionOf(finalGP)
	cls := Classify(finalPart)
	secs := LayerTime(opts.Spec, sh, g.NumVertices, DifferentiatedSchedule(opts.Spec, finalPart, sh, res.OpPlan, cls))
	consider("joint", finalGP, finalPart, res.OpPlan, &cls, true, secs)
	return res
}

// pruneEstimate applies the cost model's cheap structural filter before
// partitioning: plans with predicted parallelism too low to fill the
// device, or with per-task batches too small for its batch width, are
// ruled out without testing (paper §6.3 "inefficient execution plans will
// be ruled out without testing").
func pruneEstimate(g *graph.Graph, gp core.GraphPlan) bool {
	estTasks := estimateTasks(g, gp)
	// a handful of giant tasks cannot fill the device at all; the
	// per-unit cost model already penalizes milder underfill, so only the
	// extreme cases are pruned without testing
	return estTasks < 4
}

// estimateTasks predicts the task count of a plan from aggregate graph
// statistics only (no partitioning).
func estimateTasks(g *graph.Graph, gp core.GraphPlan) int {
	e := g.NumEdges()
	v := g.NumVertices
	est := 1
	if k, ok := gp.Restricted(core.AttrEdgeID); ok {
		est = maxInt(est, e/maxInt(k, 1))
	}
	if k, ok := gp.Restricted(core.AttrDstID); ok {
		est = maxInt(est, v/maxInt(k, 1))
	}
	if k, ok := gp.Restricted(core.AttrSrcID); ok {
		est = maxInt(est, v/maxInt(k, 1))
	}
	if _, ok := gp.Restricted(core.AttrEdgeType); ok {
		est = maxInt(est, g.NumTypes)
	}
	if _, ok := gp.Restricted(core.AttrDstDegree); ok {
		est = maxInt(est, 8) // degree classes
	}
	return est
}

// hasTransformedIndex reports whether the selected DFG used unique-value
// extraction: a ".map" key survives either as a map-gather (OpIndex) or
// merged into an Index-2D after indexing swapping.
func hasTransformedIndex(g *dfg.Graph) bool {
	isMap := func(key string) bool {
		return len(key) > 4 && key[len(key)-4:] == ".map"
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case dfg.OpIndex:
			if isMap(n.IdxKey) {
				return true
			}
		case dfg.OpIndex2D:
			if isMap(n.IdxKey) || isMap(n.IdxKey2) {
				return true
			}
		}
	}
	return false
}
