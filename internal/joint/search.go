package joint

import (
	"fmt"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/dfg"
	"wisegraph/internal/graph"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/opt"
	"wisegraph/internal/pattern"
)

// Options configures the search.
type Options struct {
	Spec device.Spec
	// PlanSpace controls graph-plan enumeration (defaults per model).
	PlanSpace *core.PlanSpace
	// PruneFactor rejects candidate plans whose cost-model estimate is
	// this many times worse than the incumbent (paper §6.3 pruning).
	PruneFactor float64
}

// Step is one tuning step of the search trace (paper Figure 16's x-axis).
type Step struct {
	Stage      string // "graph-partition", "operation-partition", "joint"
	Desc       string
	Seconds    float64 // modeled per-layer time of this candidate
	Throughput float64 // edges/second of the best plan so far
}

// Result is the selected execution plan with search diagnostics.
type Result struct {
	Kind      nn.ModelKind
	GraphPlan core.GraphPlan
	Partition *core.Partition
	// OpPlan executes regular gTasks; outliers are handled by the
	// differentiated schedule.
	OpPlan         kernels.Plan
	Classification Classification
	Differentiated bool
	Seconds        float64
	Trace          []Step

	PlansTried  int
	PlansPruned int
	CacheHits   int
}

// statAttrs are collected for every partition the search builds.
var statAttrs = []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree}

// LayerTime models one layer's execution: the shared dense kernels plus
// the fused gTask kernel under the given schedule.
func LayerTime(spec device.Spec, sh kernels.LayerShape, v int, sched Schedule) float64 {
	t := 0.0
	for _, k := range kernels.DenseKernels(sh, v) {
		t += spec.LaunchOverhead + spec.Time(k)
	}
	t += spec.LaunchOverhead + sched.Makespan(spec.NumUnits)
	return t
}

// Search explores the joint space for one representative layer of the
// model (F → Fp) over graph g and returns the best execution plan found,
// with the full tuning trace.
func Search(g *graph.Graph, kind nn.ModelKind, f, fp, numTypes int, opts Options) *Result {
	if opts.PruneFactor == 0 {
		opts.PruneFactor = 3
	}
	space := core.DefaultPlanSpace(kind == nn.RGCN)
	if opts.PlanSpace != nil {
		space = *opts.PlanSpace
	}
	sh := kernels.LayerShape{Kind: kind, F: f, Fp: fp, Types: numTypes}
	res := &Result{Kind: kind}
	partCache := map[string]*core.Partition{}
	partitionOf := func(p core.GraphPlan) *core.Partition {
		key := p.String()
		if cached, ok := partCache[key]; ok {
			res.CacheHits++
			return cached
		}
		part := core.PartitionGraph(g, p, statAttrs)
		partCache[key] = part
		return part
	}
	e := float64(g.NumEdges())
	record := func(stage, desc string, secs float64) {
		best := res.Seconds
		if best == 0 || secs < best {
			best = secs
		}
		res.Trace = append(res.Trace, Step{Stage: stage, Desc: desc, Seconds: secs, Throughput: e / best})
	}
	consider := func(stage string, gp core.GraphPlan, part *core.Partition, op kernels.Plan, cls *Classification, differentiated bool) float64 {
		var sched Schedule
		if differentiated && cls != nil {
			sched = DifferentiatedSchedule(opts.Spec, part, sh, op, *cls)
		} else {
			sched = UniformSchedule(opts.Spec, part, sh, op)
		}
		secs := LayerTime(opts.Spec, sh, g.NumVertices, sched)
		record(stage, fmt.Sprintf("%s %s diff=%v", gp.Name, op, differentiated), secs)
		if res.Seconds == 0 || secs < res.Seconds {
			res.Seconds = secs
			res.GraphPlan = gp
			res.Partition = part
			res.OpPlan = op
			res.Differentiated = differentiated
			if cls != nil {
				res.Classification = *cls
			}
		}
		res.PlansTried++
		return secs
	}

	// ---- Stage 1: graph partition (paper §4) ----
	// Initial point: edge-centric with naive (edge-wise) kernels.
	init := core.EdgeCentric()
	if !kernels.ValidPlanFor(kind, init) {
		init = core.VertexCentric()
	}
	consider("graph-partition", init, partitionOf(init), kernels.Plan{}, nil, false)

	var candidates []core.GraphPlan
	for _, gp := range core.EnumeratePlans(kind.IndexAttrs(), space) {
		if !kernels.ValidPlanFor(kind, gp) {
			continue
		}
		if pruneEstimate(opts, g, gp) {
			res.PlansPruned++
			continue
		}
		candidates = append(candidates, gp)
		// Stage 1 evaluates graph plans with the original DFG and naive
		// (edge-wise) kernels — the paper's Figure 16 initial setting —
		// so the operation-partition stage's contribution is visible.
		consider("graph-partition", gp, partitionOf(gp), kernels.Plan{}, nil, false)
	}

	// ---- Stage 2: operation partition (paper §5), jointly with the
	// graph plans ----
	// For every surviving graph plan, let the DFG transformation engine
	// decide — from that plan's own gTask-level data patterns — whether
	// duplication-aware rewrites pay off, then sweep the kernel plans.
	// Tuning per graph plan is what makes the search *joint*: the best
	// operation plan differs across graph plans (paper §1).
	layerDFG := nn.LayerDFG(kind, g.NumVertices, numTypes, f, fp)
	for _, gp := range candidates {
		part := partitionOf(gp)
		pp := pattern.Analyze(part, statAttrs)
		dup := map[string]bool{
			"src-id":    pp.Duplicated(core.AttrSrcID),
			"edge-type": pp.Duplicated(core.AttrEdgeType),
			"dst-id":    pp.Duplicated(core.AttrDstID),
		}
		cands := opt.Transform(layerDFG, opt.Info{AttrOf: nn.AttrOfKeys(), Dup: dup})
		bestDFG, _ := opt.SelectBest(cands, pp.RegularStats())
		opPlans := []kernels.Plan{{Batched: true}}
		if hasTransformedIndex(bestDFG) {
			opPlans = append(opPlans, kernels.Plan{Batched: true, Dedup: true})
		}
		for _, op := range opPlans {
			consider("operation-partition", gp, part, op, nil, false)
		}
	}

	// ---- Stage 3: joint optimization (paper §6) ----
	finalGP := res.GraphPlan
	finalPart := partitionOf(finalGP)
	cls := Classify(finalPart)
	consider("joint", finalGP, finalPart, res.OpPlan, &cls, true)
	return res
}

// pruneEstimate applies the cost model's cheap structural filter before
// partitioning: plans with predicted parallelism too low to fill the
// device, or with per-task batches too small for its batch width, are
// ruled out without testing (paper §6.3 "inefficient execution plans will
// be ruled out without testing").
func pruneEstimate(opts Options, g *graph.Graph, gp core.GraphPlan) bool {
	estTasks := estimateTasks(g, gp)
	// a handful of giant tasks cannot fill the device at all; the
	// per-unit cost model already penalizes milder underfill, so only the
	// extreme cases are pruned without testing
	_ = opts
	return estTasks < 4
}

// estimateTasks predicts the task count of a plan from aggregate graph
// statistics only (no partitioning).
func estimateTasks(g *graph.Graph, gp core.GraphPlan) int {
	e := g.NumEdges()
	v := g.NumVertices
	est := 1
	if k, ok := gp.Restricted(core.AttrEdgeID); ok {
		est = maxInt(est, e/maxInt(k, 1))
	}
	if k, ok := gp.Restricted(core.AttrDstID); ok {
		est = maxInt(est, v/maxInt(k, 1))
	}
	if k, ok := gp.Restricted(core.AttrSrcID); ok {
		est = maxInt(est, v/maxInt(k, 1))
	}
	if _, ok := gp.Restricted(core.AttrEdgeType); ok {
		est = maxInt(est, g.NumTypes)
	}
	if _, ok := gp.Restricted(core.AttrDstDegree); ok {
		est = maxInt(est, 8) // degree classes
	}
	return est
}

// hasTransformedIndex reports whether the selected DFG used unique-value
// extraction: a ".map" key survives either as a map-gather (OpIndex) or
// merged into an Index-2D after indexing swapping.
func hasTransformedIndex(g *dfg.Graph) bool {
	isMap := func(key string) bool {
		return len(key) > 4 && key[len(key)-4:] == ".map"
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case dfg.OpIndex:
			if isMap(n.IdxKey) {
				return true
			}
		case dfg.OpIndex2D:
			if isMap(n.IdxKey) || isMap(n.IdxKey2) {
				return true
			}
		}
	}
	return false
}
