// Package joint implements WiseGraph's joint optimization (paper §6):
// identifying outlier gTasks caused by graph irregularity, rescheduling
// them with differentiated resources and priorities, and searching the
// combined space of graph partition plans and operation partition plans
// for the execution plan with the least modeled time.
package joint

import (
	"sort"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/kernels"
)

// OutlierKind classifies a gTask (paper §6.1).
type OutlierKind int

const (
	// Regular tasks follow the power-law bulk: moderate size, near the
	// plan's batch targets.
	Regular OutlierKind = iota
	// Underfill tasks could not reach an Exact restriction's batch size;
	// batched execution pads them with redundant work.
	Underfill
	// Overfill tasks have far more edges than the median because an
	// unrestricted attribute exploded (high-degree hubs); they cause the
	// long-tail effect.
	Overfill
	// Frequent tasks share a restricted-attribute value that appears in
	// many tasks (a hub split across tasks); their common workload can be
	// precomputed once.
	Frequent
)

// String names the kind.
func (k OutlierKind) String() string {
	switch k {
	case Underfill:
		return "underfill"
	case Overfill:
		return "overfill"
	case Frequent:
		return "frequent"
	default:
		return "regular"
	}
}

// Classification assigns an OutlierKind to every task of a partition.
type Classification struct {
	Kind   []OutlierKind
	Counts map[OutlierKind]int
	// MedianEdges is the regular-task size reference.
	MedianEdges int
}

// Outliers returns the number of non-regular tasks.
func (c Classification) Outliers() int {
	return c.Counts[Underfill] + c.Counts[Overfill] + c.Counts[Frequent]
}

// classification thresholds
const (
	underfillFrac  = 0.5 // uniq < typical-batch/2 ⇒ underfill
	overfillFactor = 4   // edges > 4× median ⇒ overfill
	frequentTasks  = 16  // restricted id value in ≥ 16 tasks ⇒ frequent (a real hub)
)

// Classify identifies outlier gTasks for a partition under its plan.
func Classify(part *core.Partition) Classification {
	n := part.NumTasks()
	c := Classification{
		Kind:   make([]OutlierKind, n),
		Counts: map[OutlierKind]int{},
	}
	if n == 0 {
		return c
	}
	// median edges
	lens := make([]int, n)
	for ti := 0; ti < n; ti++ {
		lens[ti] = part.TaskLen(ti)
	}
	c.MedianEdges = medianInt(lens)

	// frequent values: for every Exact restriction with a small limit,
	// count how many tasks contain each value.
	type attrLimit struct {
		attr  core.Attr
		limit int
	}
	var restricted []attrLimit
	for _, r := range part.Plan.Restrictions {
		if r.Kind == core.Exact && r.Attr != core.AttrEdgeID {
			restricted = append(restricted, attrLimit{r.Attr, r.Limit})
		}
	}
	// Frequent-value detection only applies to identity attributes: a
	// vertex id recurring across tasks marks a hub split by the plan,
	// whose per-value workload can be shared. Low-cardinality attributes
	// (edge-type, degree) naturally recur everywhere and are not hubs.
	idOnly := restricted[:0]
	for _, rl := range restricted {
		if rl.attr == core.AttrSrcID || rl.attr == core.AttrDstID {
			idOnly = append(idOnly, rl)
		}
	}
	restricted = idOnly

	reader := core.NewAttrReader(part.Graph)
	taskValues := make([]map[core.Attr][]int32, n)
	valueTasks := map[core.Attr]map[int32]int{}
	for _, rl := range restricted {
		valueTasks[rl.attr] = map[int32]int{}
	}
	for ti := 0; ti < n; ti++ {
		if len(restricted) == 0 {
			break
		}
		taskValues[ti] = map[core.Attr][]int32{}
		for _, rl := range restricted {
			seen := map[int32]struct{}{}
			for _, e := range part.TaskEdges(ti) {
				v := reader.Value(rl.attr, int(e))
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					taskValues[ti][rl.attr] = append(taskValues[ti][rl.attr], v)
					valueTasks[rl.attr][v]++
				}
			}
		}
	}

	// Underfill is judged against the *typical* batch the plan achieves:
	// if most tasks reach only k < limit unique values, k is the real
	// batch width and only tasks far below it are outliers. Judging
	// against the raw limit would mark the bulk as outliers on sparse
	// graphs, inverting the power-law regular/outlier split.
	medianUniq := map[core.Attr]int{}
	for _, r := range part.Plan.Restrictions {
		if r.Kind != core.Exact || r.Limit <= 1 || part.Uniq[r.Attr] == nil {
			continue
		}
		us := make([]int, n)
		for ti := 0; ti < n; ti++ {
			us[ti] = int(part.TaskUniq(ti, r.Attr))
		}
		m := medianInt(us)
		if m > r.Limit {
			m = r.Limit
		}
		medianUniq[r.Attr] = m
	}

	for ti := 0; ti < n; ti++ {
		kind := Regular
		// Overfill: far above the median size.
		if lens[ti] > overfillFactor*c.MedianEdges {
			kind = Overfill
		}
		// Underfill: far below the typical batch width.
		if kind == Regular {
			for attr, m := range medianUniq {
				if float64(part.TaskUniq(ti, attr)) < underfillFrac*float64(m) {
					kind = Underfill
					break
				}
			}
		}
		// Frequent: a restricted value shared by many tasks.
		if kind == Regular {
			for _, rl := range restricted {
				for _, v := range taskValues[ti][rl.attr] {
					if valueTasks[rl.attr][v] >= frequentTasks {
						kind = Frequent
						break
					}
				}
				if kind != Regular {
					break
				}
			}
		}
		c.Kind[ti] = kind
		c.Counts[kind]++
	}
	return c
}

// Schedule is a concrete execution order with per-item times for one fused
// kernel launch.
type Schedule struct {
	Times []float64
	// Precompute is a one-off cost paid before the fused kernel
	// (frequent-value common-workload extraction).
	Precompute float64
}

// Makespan returns the schedule's finish time on the given unit count.
func (s Schedule) Makespan(units int) float64 {
	return s.Precompute + device.Makespan(s.Times, units)
}

// UniformSchedule runs every task with the same operation plan in natural
// order — the baseline execution of paper Figure 19 (left bars).
func UniformSchedule(spec device.Spec, part *core.Partition, sh kernels.LayerShape, plan kernels.Plan) Schedule {
	costs := kernels.CostPartition(spec, part, sh, plan)
	times := make([]float64, len(costs))
	for i, c := range costs {
		times[i] = c.Seconds
	}
	return Schedule{Times: times}
}

// DifferentiatedSchedule applies §6.2's outlier handling:
//   - underfill tasks break into edge-wise execution and run last,
//   - overfill tasks split into median-sized chunks (more thread blocks)
//     and run first, removing the long tail,
//   - frequent tasks fetch precomputed common workloads: the shared work
//     is paid once in Precompute and the tasks keep only their indexing
//     traffic.
func DifferentiatedSchedule(spec device.Spec, part *core.Partition, sh kernels.LayerShape, plan kernels.Plan, cls Classification) Schedule {
	var first, middle, last []float64
	var precompute float64
	frequentShared := map[string]bool{}
	for ti := 0; ti < part.NumTasks(); ti++ {
		st := kernels.StatsOf(part, ti)
		switch cls.Kind[ti] {
		case Underfill:
			// edge-wise execution removes the padding redundancy
			c := kernels.CostTask(spec, sh, st, kernels.Plan{})
			cb := kernels.CostTask(spec, sh, st, plan)
			if cb.Seconds < c.Seconds {
				c = cb
			}
			last = append(last, c.Seconds)
		case Overfill:
			c := kernels.CostTask(spec, sh, st, plan)
			chunks := st.Edges / maxInt(cls.MedianEdges, 1)
			if chunks < 1 {
				chunks = 1
			}
			per := c.Seconds / float64(chunks)
			for k := 0; k < chunks; k++ {
				first = append(first, per)
			}
		case Frequent:
			c := kernels.CostTask(spec, sh, st, plan)
			// Pay the shared neural workload once per frequent-value
			// group as a normal (parallel) work item scheduled first;
			// afterwards the group's tasks only fetch the precomputed
			// data (model: 30% of their cost).
			key := frequentKey(part, ti)
			if !frequentShared[key] {
				frequentShared[key] = true
				first = append(first, 0.7*c.Seconds)
			}
			middle = append(middle, 0.3*c.Seconds)
		default:
			c := kernels.CostTask(spec, sh, st, plan)
			middle = append(middle, c.Seconds)
		}
	}
	times := make([]float64, 0, len(first)+len(middle)+len(last))
	times = append(times, first...)
	times = append(times, middle...)
	times = append(times, last...)
	return Schedule{Times: times, Precompute: precompute}
}

// BestSchedule returns the better of the uniform and differentiated
// schedules (WiseGraph measures candidates and keeps the winner), along
// with whether the differentiated one was selected.
func BestSchedule(spec device.Spec, part *core.Partition, sh kernels.LayerShape, plan kernels.Plan, cls Classification) (Schedule, bool) {
	uni := UniformSchedule(spec, part, sh, plan)
	diff := DifferentiatedSchedule(spec, part, sh, plan, cls)
	if diff.Makespan(spec.NumUnits) < uni.Makespan(spec.NumUnits) {
		return diff, true
	}
	return uni, false
}

// frequentKey identifies a frequent-task group by its first restricted
// value (tasks sharing the hub value share the precomputed workload).
func frequentKey(part *core.Partition, ti int) string {
	reader := core.NewAttrReader(part.Graph)
	for _, r := range part.Plan.Restrictions {
		if r.Kind == core.Exact && r.Attr != core.AttrEdgeID {
			e := part.TaskEdges(ti)[0]
			return r.Attr.String() + ":" + itoa(int(reader.Value(r.Attr, int(e))))
		}
	}
	return "task:" + itoa(ti)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	neg := x < 0
	if neg {
		x = -x
	}
	var buf [16]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func medianInt(xs []int) int {
	cp := append([]int(nil), xs...)
	sort.Ints(cp)
	return cp[len(cp)/2]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
