package obs

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	wantSum := time.Duration(90*1000 + 10*1_000_000)
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}
	if got := h.Mean(); got != wantSum/100 {
		t.Errorf("Mean = %v, want %v", got, wantSum/100)
	}
	// p50 lands in the 1µs bucket [512ns, 1024ns) and must be interior:
	// the upper-bound bug returned exactly 1024ns.
	p50 := h.Quantile(0.50)
	if p50 < 512*time.Nanosecond || p50 >= 1024*time.Nanosecond {
		t.Errorf("p50 = %v, want within [512ns, 1024ns)", p50)
	}
	// p99 lands in the 1ms bucket [2^19, 2^20).
	p99 := h.Quantile(0.99)
	if p99 < time.Duration(1<<19) || p99 > time.Duration(1<<20) {
		t.Errorf("p99 = %v, want within [%v, %v]", p99, time.Duration(1<<19), time.Duration(1<<20))
	}
	if p50 > p99 {
		t.Error("p50 > p99")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("zero-duration quantile = %v, want 1ns", got)
	}
	// Far beyond the top bucket still lands in the last bucket; the
	// interpolated value stays inside it.
	var h2 Histogram
	h2.Observe(time.Duration(1<<62) + 5)
	lo := time.Duration(1) << (NumBuckets - 2)
	hi := time.Duration(1) << (NumBuckets - 1)
	if got := h2.Quantile(0.5); got < lo || got > hi {
		t.Errorf("overflow quantile = %v, want within [%v, %v]", got, lo, hi)
	}
	// q is clamped.
	if h2.Quantile(-1) > h2.Quantile(2) {
		t.Error("clamped quantiles out of order")
	}
}

// TestQuantileInterpolationPinned pins p50/p95/p99 against the exact
// quantiles of a known log-uniform distribution — the distribution for
// which geometric in-bucket interpolation is the right model — and
// requires agreement within 5%. The upper-bound implementation this
// replaces was off by up to 2× (one full bucket).
func TestQuantileInterpolationPinned(t *testing.T) {
	const n = 20000
	var h Histogram
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		// log-uniform over [1µs, 1.024ms] — spans buckets 10..20.
		v := 1000 * math.Pow(2, 10*float64(i)/float64(n-1))
		vals[i] = v
		h.Observe(time.Duration(v))
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.50, 0.95, 0.99} {
		exact := vals[int(q*float64(n-1))]
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("q=%.2f: interpolated %.0fns vs exact %.0fns (%.1f%% off, want <5%%)",
				q, got, exact, 100*rel)
		}
	}
	// The old upper-bound estimate for p50 would have been 2^15.5-ish
	// rounded up to a bucket bound; check we are not pinned to a bound.
	p50 := uint64(h.Quantile(0.5))
	for b := 0; b < NumBuckets; b++ {
		if p50 == BucketUpperNs(b) {
			t.Errorf("p50 = %d sits exactly on a bucket bound — interpolation not applied", p50)
		}
	}
}

// TestQuantileSingleObservation: one sample lands on the geometric
// midpoint of its bucket at q=0.5 (lo·√2).
func TestQuantileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(700 * time.Nanosecond) // bucket 10: [512, 1024)
	want := 512 * math.Sqrt2
	if got := float64(h.Quantile(0.5)); math.Abs(got-want) > 1 {
		t.Errorf("single-sample p50 = %v, want geometric midpoint %.0f", got, want)
	}
	if got := h.Quantile(0); got != 512*time.Nanosecond {
		t.Errorf("q=0 = %v, want bucket lower bound 512ns", got)
	}
	if got := h.Quantile(1); got != 1024*time.Nanosecond {
		t.Errorf("q=1 = %v, want bucket upper bound 1.024µs", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(time.Microsecond)
	counts, count, sumNs := h.Snapshot()
	if count != 2 || sumNs != 2000 {
		t.Fatalf("Snapshot count=%d sum=%d, want 2/2000", count, sumNs)
	}
	if counts[10] != 2 { // 1000ns → bucket 10
		t.Errorf("bucket 10 = %d, want 2", counts[10])
	}
}
