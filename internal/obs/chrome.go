package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChromeTrace writes the current ring contents as Chrome
// trace-event JSON (the object form, {"traceEvents": [...]}), loadable
// in chrome://tracing and Perfetto. Each span is a complete ("X") event;
// the unit-of-work id becomes the thread id, so the stages of one
// request batch or training step line up on one row.
func WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	for i, r := range Spans() {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		// ts/dur are microseconds (the trace-event convention).
		if _, err := fmt.Fprintf(bw,
			`{"name":%q,"cat":"wisegraph","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d}`,
			r.Stage.String(), float64(r.Start)/1e3, float64(r.Dur)/1e3, r.ID); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
