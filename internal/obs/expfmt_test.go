package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestValidateExpositionAcceptsPromWriter: everything PromWriter can
// emit — counters, gauges, labeled series, histograms with elided
// buckets, stage families — must pass the validator. The two are the two
// halves of one contract.
func TestValidateExpositionAcceptsPromWriter(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("wisegraph_rpcs_total", "", 42)
	p.Counter("wisegraph_rpcs_total", `type="expand"`, 41)
	p.Gauge("wisegraph_in_flight", `shard="0",replica="1"`, 3)
	p.Gauge("wisegraph_weird_values", "", -0.25e-9)
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Second)
	p.Histogram("wisegraph_rpc_duration_seconds", `type="expand"`, &h)
	p.HistogramFromBuckets("wisegraph_batch_size", "", []float64{1, 8, 64}, []uint64{2, 0, 1}, 73)
	p.StageHistograms("wisegraph_stage_duration_seconds")
	if err := p.Err(); err != nil {
		t.Fatalf("PromWriter: %v", err)
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("validator rejected PromWriter output: %v\n%s", err, buf.String())
	}
}

// TestValidateExpositionRejects: each malformation a stray printf could
// introduce must be caught, with the offending line in the error.
func TestValidateExpositionRejects(t *testing.T) {
	for name, tc := range map[string]struct {
		in   string
		want string
	}{
		"empty":            {"", "empty exposition"},
		"untypedSample":    {"wisegraph_x 1\n", "no preceding TYPE"},
		"badValue":         {"# TYPE wisegraph_x gauge\nwisegraph_x 1.2.3\n", "malformed sample"},
		"unquotedLabel":    {"# TYPE wisegraph_x gauge\nwisegraph_x{shard=0} 1\n", "malformed sample"},
		"missingValue":     {"# TYPE wisegraph_x gauge\nwisegraph_x{shard=\"0\"}\n", "malformed sample"},
		"badName":          {"# TYPE wisegraph_x gauge\n9graph 1\n", "malformed sample"},
		"unknownType":      {"# TYPE wisegraph_x flotilla\nwisegraph_x 1\n", "unknown metric type"},
		"truncatedType":    {"# TYPE wisegraph_x\n", "malformed TYPE"},
		"duplicateType":    {"# TYPE wisegraph_x gauge\n# TYPE wisegraph_x counter\n", "duplicate TYPE"},
		"bucketNoFamily":   {"# TYPE wisegraph_x gauge\nwisegraph_y_bucket{le=\"+Inf\"} 3\n", "no preceding TYPE"},
		"bucketWrongKind":  {"# TYPE wisegraph_x gauge\nwisegraph_x_bucket{le=\"+Inf\"} 3\n", "no preceding TYPE"},
		"plainTextLeakage": {"panic: runtime error\n", "malformed sample"},
	} {
		err := ValidateExposition(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: accepted %q", name, tc.in)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestValidateExpositionHistogramSuffixes: _bucket/_sum/_count resolve
// through a histogram TYPE; comments, blanks and timestamps are legal.
func TestValidateExpositionHistogramSuffixes(t *testing.T) {
	in := strings.Join([]string{
		"# HELP wisegraph_lat request latency",
		"# TYPE wisegraph_lat histogram",
		`wisegraph_lat_bucket{le="0.1"} 1`,
		`wisegraph_lat_bucket{le="+Inf"} 2`,
		"wisegraph_lat_sum 0.5",
		"wisegraph_lat_count 2",
		"",
		"# TYPE wisegraph_up gauge",
		"wisegraph_up 1 1712000000000",
		"wisegraph_up_nan NaN",
	}, "\n") + "\n"
	// The NaN sample has no TYPE — split the check in two.
	if err := ValidateExposition(strings.NewReader(strings.Replace(in, "wisegraph_up_nan", "wisegraph_up", 1))); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if err := ValidateExposition(strings.NewReader(in)); err == nil {
		t.Fatal("undeclared wisegraph_up_nan accepted")
	}
}
