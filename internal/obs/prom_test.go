package obs

import (
	"bufio"
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample matches one exposition-format sample line.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|NaN|\+Inf)$`)

// parseProm validates every line of a text exposition and returns the
// samples as name{labels} → value.
func parseProm(t *testing.T, data []byte) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not parse as a Prometheus sample: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

func TestPromWriterCountersAndGauges(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("x_total", "", 3)
	p.Counter("y_total", `kernel="a"`, 1)
	p.Counter("y_total", `kernel="b"`, 2)
	p.Gauge("z", "", -1.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, buf.Bytes())
	if samples["x_total"] != 3 || samples[`y_total{kernel="a"}`] != 1 || samples[`y_total{kernel="b"}`] != 2 || samples["z"] != -1.5 {
		t.Fatalf("samples = %v", samples)
	}
	// One TYPE line per family, even with several label sets.
	if got := strings.Count(buf.String(), "# TYPE y_total counter"); got != 1 {
		t.Errorf("y_total TYPE lines = %d, want 1", got)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 5; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Millisecond)

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Histogram("lat_seconds", `stage="exec"`, &h)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, buf.Bytes())
	if samples[`lat_seconds_count{stage="exec"}`] != 6 {
		t.Fatalf("count sample missing: %v", samples)
	}
	if samples[`lat_seconds_bucket{stage="exec",le="+Inf"}`] != 6 {
		t.Fatalf("+Inf bucket != count: %v", samples)
	}
	// Buckets are cumulative and monotone.
	var prev float64
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		v, _ := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if v < prev {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		prev = v
	}
}

func TestPromWriterBatchSizeHistogram(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	bounds := []float64{1, 2, 3, 4}
	counts := []uint64{0, 3, 0, 2}
	p.HistogramFromBuckets("batch_size", "", bounds, counts, 2*3+4*2)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, buf.Bytes())
	if samples[`batch_size_bucket{le="2"}`] != 3 {
		t.Errorf("le=2 bucket = %v, want 3", samples[`batch_size_bucket{le="2"}`])
	}
	if samples[`batch_size_bucket{le="4"}`] != 5 || samples[`batch_size_bucket{le="+Inf"}`] != 5 {
		t.Errorf("cumulative tail wrong: %v", samples)
	}
	if samples["batch_size_count"] != 5 || samples["batch_size_sum"] != 14 {
		t.Errorf("sum/count wrong: %v", samples)
	}
}

func TestStageHistogramsEmitAllStages(t *testing.T) {
	Enable(16)
	defer Disable()
	Begin(StageSample, NewID()).End()
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.StageHistograms("wisegraph_stage_duration_seconds")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, buf.Bytes())
	for s := Stage(0); s < NumStages; s++ {
		key := `wisegraph_stage_duration_seconds_count{stage="` + s.String() + `"}`
		if _, ok := samples[key]; !ok {
			t.Errorf("stage %v missing from exposition", s)
		}
	}
}
