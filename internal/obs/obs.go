// Package obs is the observability layer: lock-free, zero-dependency
// phase tracing and metrics threaded through the whole stack. Per-stage
// spans (sample → partition → gTask exec → collective → demux) are
// recorded into a fixed ring buffer and accumulated into per-stage
// latency histograms; the ring exports as Chrome trace-event JSON
// (chrome://tracing, Perfetto) and the histograms feed the Prometheus
// /metrics endpoint.
//
// The hot path is allocation-free by the same discipline as the serving
// metrics: a Span is a stack value, Begin is one atomic pointer load
// (plus a clock read when tracing is on), and End is a handful of atomic
// stores into a preallocated slot. When tracing is disabled the entire
// cost of an instrumented region is the Begin's single atomic load.
//
// Tracing state is process-global, like runtime/trace: instrumentation
// points call Begin/End unconditionally and binaries opt in with Enable.
package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies an instrumented phase of the pipeline.
type Stage uint8

// The five pipeline stages plus two umbrella stages that bracket a whole
// unit of work (a serve micro-batch, a training step).
const (
	// StageSample is neighbor sampling (subgraph construction).
	StageSample Stage = iota
	// StagePartition is the O(E) gTask partition under the frozen plan.
	StagePartition
	// StageExec is the gTask forward/backward execution.
	StageExec
	// StageCollective is data movement: the feature gather on one device,
	// the all-to-all halo exchange and gradient all-reduce across devices.
	StageCollective
	// StageDemux is request coalescing bookkeeping: cross-request seed
	// dedup going in, logit-row demultiplexing coming out.
	StageDemux
	// StageBatch brackets one serve micro-batch end to end.
	StageBatch
	// StageStep brackets one training step end to end.
	StageStep
	// StageCache is hot-vertex cache traffic on the serving path: probing
	// cached embedding rows before sampling and admitting freshly computed
	// rows after a layer. Appended after the original stages so existing
	// numeric stage values (and recorded traces) stay stable.
	StageCache
	// NumStages is the number of distinct stages.
	NumStages
)

// String names the stage (also the Chrome trace event name and the
// Prometheus stage label).
func (s Stage) String() string {
	switch s {
	case StageSample:
		return "sample"
	case StagePartition:
		return "partition"
	case StageExec:
		return "exec"
	case StageCollective:
		return "collective"
	case StageDemux:
		return "demux"
	case StageBatch:
		return "batch"
	case StageStep:
		return "step"
	case StageCache:
		return "cache"
	}
	return "unknown"
}

// Record is one completed span, as read back from the ring.
type Record struct {
	Stage Stage
	// ID groups the spans of one unit of work (request batch, train step).
	ID uint64
	// Start is the span's start time relative to the trace epoch.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
}

// slot is one ring entry. Fields are individually atomic so writers never
// take a lock and concurrent readers are race-free; a reader that catches
// a slot mid-overwrite (only possible after the ring wraps) may see one
// record's metadata with another's timing, which is acceptable for
// diagnostics and avoided in practice by sizing the ring to the window of
// interest.
type slot struct {
	// meta packs (id << 9) | (stage << 1) | valid.
	meta  atomic.Uint64
	start atomic.Int64 // ns since ring epoch
	dur   atomic.Int64 // ns
}

type ringBuf struct {
	slots []slot
	next  atomic.Uint64
	epoch time.Time
}

// DefaultRingSize is the span capacity Enable uses when given n <= 0.
const DefaultRingSize = 1 << 14

var (
	ring       atomic.Pointer[ringBuf]
	stageHists [NumStages]Histogram
	idCounter  atomic.Uint64
)

// Enable turns tracing on with a fresh ring of n spans (DefaultRingSize
// if n <= 0). Calling it again replaces the ring and resets the epoch;
// the per-stage histograms keep accumulating across Enable calls.
func Enable(n int) {
	if n <= 0 {
		n = DefaultRingSize
	}
	rb := &ringBuf{slots: make([]slot, n)}
	// Pre-fault the ring: a large fresh allocation sits on lazily-mapped
	// zero pages, and without this the first few span Ends each eat a
	// page fault — microseconds charged to whatever stage happens to
	// record first, which reads as a systematic gap in the trace.
	for i := range rb.slots {
		rb.slots[i].meta.Store(0)
	}
	rb.epoch = time.Now()
	ring.Store(rb)
}

// Disable turns tracing off and drops the ring. In-flight spans begun
// before Disable still record into the old ring (harmless; it is
// unreachable afterwards and garbage-collected).
func Disable() { ring.Store(nil) }

// Enabled reports whether tracing is on.
func Enabled() bool { return ring.Load() != nil }

// NewID returns a fresh nonzero unit-of-work id (batch id, step id).
func NewID() uint64 { return idCounter.Add(1) }

// Span is an open span. It is a plain stack value: Begin/End allocate
// nothing.
type Span struct {
	rb    *ringBuf
	start time.Time
	id    uint64
	stage Stage
}

// Begin opens a span for the given stage and unit-of-work id. When
// tracing is disabled it costs one atomic load and returns an inert span.
func Begin(stage Stage, id uint64) Span {
	rb := ring.Load()
	if rb == nil {
		return Span{}
	}
	return Span{rb: rb, start: time.Now(), id: id, stage: stage}
}

// End closes the span: it records the duration into the stage histogram
// and the ring, and returns the duration (0 for inert spans).
func (s Span) End() time.Duration {
	if s.rb == nil {
		return 0
	}
	d := time.Since(s.start)
	stageHists[s.stage].Observe(d)
	i := (s.rb.next.Add(1) - 1) % uint64(len(s.rb.slots))
	sl := &s.rb.slots[i]
	sl.start.Store(int64(s.start.Sub(s.rb.epoch)))
	sl.dur.Store(int64(d))
	sl.meta.Store(s.id<<9 | uint64(s.stage)<<1 | 1)
	return d
}

// StageHistogram returns the cumulative latency histogram for a stage.
// Histograms record whenever tracing is enabled and persist across
// Enable/Disable cycles (they are counters, not a window).
func StageHistogram(stage Stage) *Histogram {
	return &stageHists[stage]
}

// Spans returns the ring contents oldest-first (nil when disabled). The
// snapshot is taken without stopping writers, so spans recorded during
// the scan may be missed or duplicated at the wrap boundary.
func Spans() []Record {
	rb := ring.Load()
	if rb == nil {
		return nil
	}
	n := rb.next.Load()
	size := uint64(len(rb.slots))
	lo := uint64(0)
	if n > size {
		lo = n - size
	}
	out := make([]Record, 0, n-lo)
	for i := lo; i < n; i++ {
		sl := &rb.slots[i%size]
		m := sl.meta.Load()
		if m&1 == 0 {
			continue
		}
		out = append(out, Record{
			Stage: Stage((m >> 1) & 0xff),
			ID:    m >> 9,
			Start: time.Duration(sl.start.Load()),
			Dur:   time.Duration(sl.dur.Load()),
		})
	}
	return out
}
