package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// ValidateExposition checks that r holds syntactically valid Prometheus
// text exposition (format version 0.0.4): every line is a comment, a
// well-formed `# TYPE family type` declaration, a blank, or a sample
// `name{labels} value`; every sample's value parses as a float; and
// every sampled family was TYPE-declared before its first sample (the
// contract PromWriter maintains and scrapers rely on). Tests and the CI
// smoke run curl'd /metrics bodies through it so a malformed label
// escape or a stray printf can never ship as "metrics that look fine in
// less".
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	typed := map[string]string{}
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 || !nameRe.MatchString(fields[2]) {
				return fmt.Errorf("expfmt line %d: malformed TYPE declaration %q", n, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("expfmt line %d: unknown metric type %q", n, fields[3])
			}
			if _, dup := typed[fields[2]]; dup {
				return fmt.Errorf("expfmt line %d: duplicate TYPE for %s", n, fields[2])
			}
			typed[fields[2]] = fields[3]
		case strings.HasPrefix(line, "#"):
			continue // HELP or free comment
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("expfmt line %d: malformed sample %q", n, line)
			}
			name, val := m[1], m[3]
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("expfmt line %d: bad value %q: %v", n, val, err)
			}
			if familyTyped(typed, name) == "" {
				return fmt.Errorf("expfmt line %d: sample %s has no preceding TYPE declaration", n, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("expfmt: %w", err)
	}
	if n == 0 {
		return fmt.Errorf("expfmt: empty exposition")
	}
	return nil
}

var (
	nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// name, optional {label="value",...} block, value, optional timestamp.
	sampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)` +
			`(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})?` +
			` (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)` +
			`( -?[0-9]+)?$`)
)

// familyTyped resolves a sample name to its declared family type,
// stripping the histogram/summary series suffixes.
func familyTyped(typed map[string]string, name string) string {
	if t, ok := typed[name]; ok {
		return t
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := typed[base]; t == "histogram" || t == "summary" {
				return t
			}
		}
	}
	return ""
}
