package obs

import (
	"fmt"
	"io"
)

// PromWriter emits the Prometheus text exposition format (version 0.0.4)
// without any dependency on a client library. It tracks which metric
// families have had their # TYPE line written so callers can emit the
// same family under several label sets, and latches the first write
// error so call sites stay unchecked.
type PromWriter struct {
	w     io.Writer
	err   error
	typed map[string]struct{}
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]struct{})}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// typeLine writes the # TYPE header once per metric family.
func (p *PromWriter) typeLine(name, typ string) {
	if _, ok := p.typed[name]; ok {
		return
	}
	p.typed[name] = struct{}{}
	p.printf("# TYPE %s %s\n", name, typ)
}

func (p *PromWriter) sample(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %g\n", name, v)
		return
	}
	p.printf("%s{%s} %g\n", name, labels, v)
}

// Counter emits one counter sample. labels is the raw pair list without
// braces (`kernel="gtask.fused"`), or empty.
func (p *PromWriter) Counter(name, labels string, v float64) {
	p.typeLine(name, "counter")
	p.sample(name, labels, v)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, labels string, v float64) {
	p.typeLine(name, "gauge")
	p.sample(name, labels, v)
}

// Histogram emits h as a Prometheus histogram in seconds: cumulative
// buckets at the power-of-two nanosecond bounds (empty leading/trailing
// buckets elided — any subset of bounds is legal as long as +Inf is
// present), then _sum and _count.
func (p *PromWriter) Histogram(name, labels string, h *Histogram) {
	counts, total, sumNs := h.Snapshot()
	p.typeLine(name, "histogram")
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for b, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		p.printf("%s_bucket{%s%sle=\"%g\"} %d\n",
			name, labels, sep, float64(BucketUpperNs(b))/1e9, cum)
	}
	p.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, total)
	p.sample(name+"_sum", labels, float64(sumNs)/1e9)
	p.sample(name+"_count", labels, float64(total))
}

// HistogramFromBuckets emits a histogram from explicit (bound, count)
// pairs — used for distributions that are not latency histograms, like
// the micro-batch size distribution. counts[i] is the number of
// observations with value <= bounds[i] and > bounds[i-1].
func (p *PromWriter) HistogramFromBuckets(name, labels string, bounds []float64, counts []uint64, sum float64) {
	p.typeLine(name, "histogram")
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if c == 0 && i != len(counts)-1 {
			continue
		}
		p.printf("%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, bounds[i], cum)
	}
	p.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	p.sample(name+"_sum", labels, sum)
	p.sample(name+"_count", labels, float64(cum))
}

// StageHistograms emits every stage's latency histogram under one family
// with a stage label.
func (p *PromWriter) StageHistograms(name string) {
	for s := Stage(0); s < NumStages; s++ {
		p.Histogram(name, fmt.Sprintf("stage=%q", s.String()), StageHistogram(s))
	}
}
