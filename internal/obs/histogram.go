package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free latency histogram: power-of-two buckets over
// nanoseconds, each an atomic counter. Observation is one atomic add on
// the hot path (no locks, no allocation); quantiles are computed from a
// snapshot of the counters with geometric interpolation inside the
// selected bucket, so they are exact at bucket boundaries and log-linear
// within (resolution one power-of-two bucket, interpolated).
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// NumBuckets covers 1 ns .. ~2.3 h (2^63 ns overflows long before that
// matters; bucket b holds durations in [2^(b-1), 2^b) ns).
const NumBuckets = 43

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Snapshot returns a point-in-time copy of the bucket counters plus the
// total count and nanosecond sum. The counters are read individually, so
// a snapshot taken under concurrent Observes can be off by the in-flight
// observations (each bucket is internally consistent).
func (h *Histogram) Snapshot() (counts [NumBuckets]uint64, count, sumNs uint64) {
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		count += counts[i]
	}
	return counts, count, h.sum.Load()
}

// BucketUpperNs returns the exclusive upper bound of bucket b in
// nanoseconds (bucket b holds [2^(b-1), 2^b); bucket 0 holds {0}∪… up
// to 1 ns).
func BucketUpperNs(b int) uint64 { return uint64(1) << uint(b) }

// Quantile estimates the q-quantile (q in [0,1]) from a point-in-time
// snapshot of the buckets. The fractional rank is located in its bucket
// and the value interpolated geometrically — lo·2^f for rank fraction f —
// which is exact for log-uniform data within the bucket and bounds the
// error to well under the bucket's 2× width (the previous implementation
// returned the bucket's upper bound, biasing p50 high by up to 2×).
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, total, _ := h.Snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	last := 0
	for b := range counts {
		if counts[b] > 0 {
			last = b
		}
	}
	var cum float64
	for b, c := range counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= target || b == last {
			f := (target - cum) / fc
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			if b == 0 {
				return 1
			}
			lo := float64(uint64(1) << uint(b-1))
			return time.Duration(lo * math.Pow(2, f))
		}
		cum += fc
	}
	return time.Duration(BucketUpperNs(last))
}
