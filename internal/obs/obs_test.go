package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanRecording(t *testing.T) {
	Enable(16)
	defer Disable()

	id := NewID()
	sp := Begin(StageSample, id)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("span duration %v < slept 1ms", d)
	}
	Begin(StageExec, id).End()

	var got []Record
	for _, r := range Spans() {
		if r.ID == id {
			got = append(got, r)
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d spans for id %d, want 2", len(got), id)
	}
	if got[0].Stage != StageSample || got[1].Stage != StageExec {
		t.Errorf("stages = %v, %v; want sample, exec", got[0].Stage, got[1].Stage)
	}
	if got[0].Dur < time.Millisecond {
		t.Errorf("recorded dur %v < 1ms", got[0].Dur)
	}
	if got[1].Start < got[0].Start {
		t.Errorf("second span starts (%v) before first (%v)", got[1].Start, got[0].Start)
	}
}

func TestRingWrap(t *testing.T) {
	Enable(4)
	defer Disable()
	for i := 0; i < 10; i++ {
		Begin(StagePartition, uint64(1000+i)).End()
	}
	recs := Spans()
	if len(recs) != 4 {
		t.Fatalf("ring of 4 returned %d records", len(recs))
	}
	// Oldest-first: the last four ids survive.
	for i, r := range recs {
		if want := uint64(1000 + 6 + i); r.ID != want {
			t.Errorf("record %d id = %d, want %d", i, r.ID, want)
		}
	}
}

func TestDisabledIsInert(t *testing.T) {
	Disable()
	sp := Begin(StageExec, 1)
	if sp.End() != 0 {
		t.Error("inert span returned nonzero duration")
	}
	if Spans() != nil {
		t.Error("Spans() non-nil while disabled")
	}
	if Enabled() {
		t.Error("Enabled() true after Disable")
	}
}

// TestSpanAllocFree pins the hot-path discipline: Begin+End allocate
// nothing, enabled or not.
func TestSpanAllocFree(t *testing.T) {
	Enable(1024)
	defer Disable()
	if n := testing.AllocsPerRun(200, func() {
		Begin(StageExec, 7).End()
	}); n != 0 {
		t.Errorf("enabled Begin/End allocates %.1f/op, want 0", n)
	}
	Disable()
	if n := testing.AllocsPerRun(200, func() {
		Begin(StageExec, 7).End()
	}); n != 0 {
		t.Errorf("disabled Begin/End allocates %.1f/op, want 0", n)
	}
}

func TestStageHistogramAccumulates(t *testing.T) {
	Enable(16)
	defer Disable()
	before := StageHistogram(StageCollective).Count()
	Begin(StageCollective, NewID()).End()
	Begin(StageCollective, NewID()).End()
	if got := StageHistogram(StageCollective).Count(); got != before+2 {
		t.Errorf("stage histogram count = %d, want %d", got, before+2)
	}
}

// chromeTrace mirrors the trace-event JSON shape for decoding.
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  uint64  `json:"tid"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	Enable(64)
	defer Disable()
	id := NewID()
	sp := Begin(StageSample, id)
	time.Sleep(100 * time.Microsecond)
	sp.End()
	Begin(StageDemux, id).End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var mine int
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "wisegraph" || ev.Pid != 1 {
			t.Errorf("bad event shape: %+v", ev)
		}
		if ev.Tid == id {
			mine++
			if ev.Name != "sample" && ev.Name != "demux" {
				t.Errorf("unexpected stage %q for id %d", ev.Name, id)
			}
		}
	}
	if mine != 2 {
		t.Errorf("found %d events for id %d, want 2", mine, id)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	Disable()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 0 {
		t.Errorf("disabled trace has %d events", len(tr.TraceEvents))
	}
}

// TestConcurrentSpansRace exercises writers against readers and
// Enable/Disable flips; its value is under -race.
func TestConcurrentSpansRace(t *testing.T) {
	Enable(256)
	defer Disable()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := NewID()
				sp := Begin(Stage(i%int(NumStages)), id)
				sp.End()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = Spans()
			var buf bytes.Buffer
			_ = WriteChromeTrace(&buf)
			_ = StageHistogram(StageExec).Quantile(0.99)
			if i%10 == 9 {
				Enable(256) // swap rings under load
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func BenchmarkSpan(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		Enable(1 << 12)
		defer Disable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Begin(StageExec, 1).End()
		}
	})
	b.Run("disabled", func(b *testing.B) {
		Disable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Begin(StageExec, 1).End()
		}
	})
}
