package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// drawSequence records the decision for the first n draws at site under s.
func drawSequence(s *Schedule, site string, n int) []string {
	var seq []string
	WithSchedule(s, func() {
		for i := 0; i < n; i++ {
			f := Check(site)
			if f == nil {
				seq = append(seq, "-")
			} else {
				seq = append(seq, fmt.Sprintf("%v@%d:%v", f.Kind, f.Seq, f.Delay))
			}
		}
	})
	return seq
}

func chaosSchedule(seed uint64) *Schedule {
	return &Schedule{Seed: seed, Sites: map[string]SiteConfig{
		SiteExchange: {ErrorRate: 0.1, CorruptRate: 0.05, LatencyRate: 0.2, Delay: time.Millisecond},
	}}
}

// TestDeterministicSequence pins the determinism guarantee: identical
// seeds yield identical per-site fault sequences (kind, draw index and
// jittered delay), different seeds yield different ones.
func TestDeterministicSequence(t *testing.T) {
	a := drawSequence(chaosSchedule(42), SiteExchange, 2000)
	b := drawSequence(chaosSchedule(42), SiteExchange, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds: %q vs %q", i, a[i], b[i])
		}
	}
	c := drawSequence(chaosSchedule(43), SiteExchange, 2000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical 2000-draw sequences")
	}
}

// TestConcurrentDrawsCoverSameDecisions checks the concurrency contract:
// with goroutines racing for sequence numbers, the multiset of decisions
// over N draws equals the sequential one (each seq number's decision is a
// pure function, only the assignment to goroutines races).
func TestConcurrentDrawsCoverSameDecisions(t *testing.T) {
	const draws = 4000
	want := map[string]int{}
	for _, d := range drawSequence(chaosSchedule(7), SiteExchange, draws) {
		want[d]++
	}
	got := map[string]int{}
	var mu sync.Mutex
	WithSchedule(chaosSchedule(7), func() {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := map[string]int{}
				for i := 0; i < draws/8; i++ {
					f := Check(SiteExchange)
					if f == nil {
						local["-"]++
					} else {
						local[fmt.Sprintf("%v@%d:%v", f.Kind, f.Seq, f.Delay)]++
					}
				}
				mu.Lock()
				for k, v := range local {
					got[k] += v
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
	})
	if len(got) != len(want) {
		t.Fatalf("concurrent draws saw %d distinct decisions, sequential saw %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("decision %q: concurrent count %d vs sequential %d", k, got[k], v)
		}
	}
}

// TestRatesRoughlyHonored checks injected-fault frequencies against the
// configured rates (law of large numbers, loose bounds).
func TestRatesRoughlyHonored(t *testing.T) {
	const draws = 20000
	s := &Schedule{Seed: 5, Sites: map[string]SiteConfig{
		"x": {ErrorRate: 0.1, CorruptRate: 0.02, LatencyRate: 0.3},
	}}
	var counts Counts
	WithSchedule(s, func() {
		for i := 0; i < draws; i++ {
			Check("x")
		}
		counts = Snapshot()["x"]
	})
	if counts.Draws != draws {
		t.Fatalf("draws %d, want %d", counts.Draws, draws)
	}
	check := func(name string, got uint64, rate float64) {
		want := rate * draws
		if float64(got) < 0.8*want || float64(got) > 1.2*want {
			t.Errorf("%s: %d injections vs expected ~%.0f", name, got, want)
		}
	}
	check("error", counts.Errors, 0.1)
	check("corrupt", counts.Corrupts, 0.02)
	check("latency", counts.Latencies, 0.3)
}

func TestDisabledIsNilAndFree(t *testing.T) {
	Set(nil)
	if Enabled() {
		t.Fatal("Enabled after Set(nil)")
	}
	if f := Check(SiteExchange); f != nil {
		t.Fatalf("Check with no schedule returned %+v", f)
	}
	if Snapshot() != nil {
		t.Fatal("Snapshot with no schedule should be nil")
	}
}

func TestUnconfiguredSiteNeverFires(t *testing.T) {
	WithSchedule(chaosSchedule(1), func() {
		for i := 0; i < 1000; i++ {
			if f := Check(SiteServeBatch); f != nil {
				t.Fatalf("unconfigured site fired: %+v", f)
			}
		}
	})
}

func TestWithScheduleRestores(t *testing.T) {
	outer := &Schedule{Seed: 9, Sites: map[string]SiteConfig{"a": {ErrorRate: 1}}}
	Set(outer)
	defer Set(nil)
	WithSchedule(chaosSchedule(1), func() {
		if Check("a") != nil {
			t.Fatal("outer site visible inside WithSchedule")
		}
	})
	if Check("a") == nil {
		t.Fatal("outer schedule not restored")
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=42;dist.exchange:error=0.05,latency=0.1,delay=2ms;serve.batch:error=0.02"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 {
		t.Fatalf("seed %d", s.Seed)
	}
	ex := s.Sites[SiteExchange]
	if ex.ErrorRate != 0.05 || ex.LatencyRate != 0.1 || ex.Delay != 2*time.Millisecond {
		t.Fatalf("exchange cfg %+v", ex)
	}
	if s.Sites[SiteServeBatch].ErrorRate != 0.02 {
		t.Fatalf("serve cfg %+v", s.Sites[SiteServeBatch])
	}
	rt, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s.String(), err)
	}
	if rt.String() != s.String() {
		t.Fatalf("round trip %q vs %q", rt.String(), s.String())
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"seed=42",                             // no sites
		"dist.exchange",                       // no rates
		"dist.exchange:error=1.5",             // rate out of range
		"dist.exchange:error=-0.1",            // negative
		"dist.exchange:bogus=0.1",             // unknown key
		"dist.exchange:error=0.6,corrupt=0.6", // rates sum > 1
		":error=0.1",                          // empty site
		"seed=x;a:error=0.1",                  // bad seed
		"a:delay=notaduration",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	if s, err := Parse(""); err != nil || s != nil {
		t.Errorf("empty spec: %v, %v", s, err)
	}
}

func TestCheckErrAndIsInjected(t *testing.T) {
	WithSchedule(&Schedule{Seed: 3, Sites: map[string]SiteConfig{"s": {ErrorRate: 1}}}, func() {
		err := CheckErr("s")
		if err == nil {
			t.Fatal("rate-1 site did not error")
		}
		if !IsInjected(err) {
			t.Fatalf("IsInjected(%v) = false", err)
		}
		if !IsInjected(fmt.Errorf("wrapped: %w", err)) {
			t.Fatal("IsInjected through wrapping = false")
		}
	})
	if IsInjected(errors.New("real")) {
		t.Fatal("IsInjected(real error) = true")
	}
	if IsInjected(nil) {
		t.Fatal("IsInjected(nil) = true")
	}
}

// TestLatencyJitterBounded pins the deterministic jitter window.
func TestLatencyJitterBounded(t *testing.T) {
	s := &Schedule{Seed: 11, Sites: map[string]SiteConfig{"s": {LatencyRate: 1, Delay: 4 * time.Millisecond}}}
	WithSchedule(s, func() {
		for i := 0; i < 500; i++ {
			f := Check("s")
			if f == nil || f.Kind != KindLatency {
				t.Fatalf("draw %d: %+v", i, f)
			}
			if f.Delay < 2*time.Millisecond || f.Delay >= 6*time.Millisecond {
				t.Fatalf("delay %v outside [0.5, 1.5)x4ms", f.Delay)
			}
		}
	})
}
