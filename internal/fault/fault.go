// Package fault is a process-global, deterministic fault injector: the
// chaos half of the resilience layer. Subsystems consult named sites on
// their hot paths (device kernel launch, collective exchange, serve batch
// execution, checkpoint I/O, train step); a schedule installed via Set —
// parsed from a -fault-spec flag or built by tests — decides, per draw,
// whether that operation fails, straggles, or detects corruption.
//
// Determinism is the whole point: the decision for draw n at site s under
// seed k is the pure function decide(k, hash(s), n), so identical seeds
// produce identical per-site fault sequences regardless of goroutine
// scheduling (concurrent callers race only for sequence numbers, never
// for the decision attached to each number). That is what lets the test
// battery assert that retries, hedges and checkpoint recovery reproduce
// unfaulted numerics bit-for-bit.
//
// The disabled fast path is one atomic pointer load, so instrumented hot
// paths pay nothing in production.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names. Constants live here (the leaf package) so every subsystem
// can reference them without import cycles.
const (
	// SiteDeviceLaunch fires per simulated kernel launch (internal/device).
	SiteDeviceLaunch = "device.launch"
	// SiteExchange fires per peer fetch attempt in the distributed halo
	// exchange (internal/dist.Engine.exchange).
	SiteExchange = "dist.exchange"
	// SiteServeBatch fires per micro-batch forward attempt
	// (internal/serve.runBatch).
	SiteServeBatch = "serve.batch"
	// SiteCheckpoint fires per checkpoint save/load (internal/nn).
	SiteCheckpoint = "nn.checkpoint"
	// SiteTrainStep fires per training epoch/step (internal/train).
	SiteTrainStep = "train.step"
	// SiteShardRPC fires per router→shard RPC attempt in the sharded
	// serving tier (internal/shard.Fleet).
	SiteShardRPC = "shard.rpc"
)

// Kind classifies an injected fault.
type Kind int

const (
	// KindError is a hard failure: the faulted operation reports an error.
	KindError Kind = iota
	// KindLatency is a straggler: the operation succeeds after a spike.
	KindLatency
	// KindCorrupt is detected corruption: the operation's payload fails
	// its integrity check and must be retried or rejected.
	KindCorrupt
	numKinds
)

// String names the kind as it appears in specs and metrics labels.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault describes one injected fault at one site.
type Fault struct {
	Site string
	Kind Kind
	// Seq is the site-local draw index that produced this fault.
	Seq uint64
	// Delay is the straggler spike for KindLatency faults (jittered
	// deterministically in [0.5, 1.5)× the site's configured delay).
	Delay time.Duration
}

// InjectedError is the error an injected KindError/KindCorrupt fault
// surfaces through the faulted operation's normal error path.
type InjectedError struct{ Fault Fault }

// Error formats the fault.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %v at %s (draw %d)", e.Fault.Kind, e.Fault.Site, e.Fault.Seq)
}

// IsInjected reports whether err (anywhere in its chain) came from the
// injector — tests and accounting use it to tell chaos from real bugs.
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*InjectedError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// SiteConfig sets the per-draw fault probabilities for one site. Rates
// are evaluated in order error, corrupt, latency over a single uniform
// draw, so their sum must stay ≤ 1.
type SiteConfig struct {
	ErrorRate   float64
	CorruptRate float64
	LatencyRate float64
	// Delay is the straggler spike magnitude for latency faults
	// (default 2ms).
	Delay time.Duration
}

// Schedule is a seed plus per-site configurations.
type Schedule struct {
	Seed  uint64
	Sites map[string]SiteConfig
}

// String renders the schedule in -fault-spec syntax.
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	names := make([]string, 0, len(s.Sites))
	for name := range s.Sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := s.Sites[name]
		var kvs []string
		if c.ErrorRate > 0 {
			kvs = append(kvs, fmt.Sprintf("error=%g", c.ErrorRate))
		}
		if c.CorruptRate > 0 {
			kvs = append(kvs, fmt.Sprintf("corrupt=%g", c.CorruptRate))
		}
		if c.LatencyRate > 0 {
			kvs = append(kvs, fmt.Sprintf("latency=%g", c.LatencyRate))
		}
		if c.Delay > 0 {
			kvs = append(kvs, fmt.Sprintf("delay=%v", c.Delay))
		}
		parts = append(parts, name+":"+strings.Join(kvs, ","))
	}
	return strings.Join(parts, ";")
}

// Parse reads a -fault-spec string:
//
//	seed=42;dist.exchange:error=0.05,latency=0.1,delay=2ms;serve.batch:error=0.02
//
// Clauses are semicolon-separated. "seed=N" seeds the decision stream
// (default 1). A site clause is "site:key=value,...": keys error, corrupt
// and latency are per-draw probabilities in [0,1]; delay is the straggler
// spike duration. An empty spec returns nil (injection disabled).
func Parse(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := &Schedule{Seed: 1, Sites: map[string]SiteConfig{}}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %w", v, err)
			}
			s.Seed = seed
			continue
		}
		site, kvs, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is neither seed=N nor site:rates", clause)
		}
		site = strings.TrimSpace(site)
		if site == "" {
			return nil, fmt.Errorf("fault: empty site name in %q", clause)
		}
		cfg := s.Sites[site]
		for _, kv := range strings.Split(kvs, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: bad key=value %q in site %s", kv, site)
			}
			switch key {
			case "error", "corrupt", "latency":
				rate, err := strconv.ParseFloat(val, 64)
				if err != nil || rate < 0 || rate > 1 {
					return nil, fmt.Errorf("fault: %s rate %q must be in [0,1]", key, val)
				}
				switch key {
				case "error":
					cfg.ErrorRate = rate
				case "corrupt":
					cfg.CorruptRate = rate
				case "latency":
					cfg.LatencyRate = rate
				}
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: bad delay %q", val)
				}
				cfg.Delay = d
			default:
				return nil, fmt.Errorf("fault: unknown key %q in site %s (want error, corrupt, latency, delay)", key, site)
			}
		}
		if sum := cfg.ErrorRate + cfg.CorruptRate + cfg.LatencyRate; sum > 1 {
			return nil, fmt.Errorf("fault: site %s rates sum to %g > 1", site, sum)
		}
		s.Sites[site] = cfg
	}
	if len(s.Sites) == 0 {
		return nil, fmt.Errorf("fault: spec %q names no sites", spec)
	}
	return s, nil
}

// siteRuntime is the live per-site state: an atomic draw counter and
// injection counters per kind.
type siteRuntime struct {
	cfg      SiteConfig
	hash     uint64
	seq      atomic.Uint64
	injected [numKinds]atomic.Uint64
}

type runtime struct {
	seed  uint64
	sites map[string]*siteRuntime
}

var active atomic.Pointer[runtime]

const defaultDelay = 2 * time.Millisecond

// Set installs s as the process-global schedule (nil disables injection).
// Draw counters start at zero, so two runs that Set the same schedule see
// the same fault sequence.
func Set(s *Schedule) {
	if s == nil || len(s.Sites) == 0 {
		active.Store(nil)
		return
	}
	rt := &runtime{seed: s.Seed, sites: make(map[string]*siteRuntime, len(s.Sites))}
	for name, cfg := range s.Sites {
		if cfg.Delay <= 0 {
			cfg.Delay = defaultDelay
		}
		rt.sites[name] = &siteRuntime{cfg: cfg, hash: hashString(name)}
	}
	active.Store(rt)
}

// Enabled reports whether any schedule is installed.
func Enabled() bool { return active.Load() != nil }

// WithSchedule installs s, runs fn, and restores the previous schedule —
// the test API. The previous runtime (with its draw counters) is restored
// as-is, so an enclosing schedule keeps its sequence position.
func WithSchedule(s *Schedule, fn func()) {
	prev := active.Load()
	Set(s)
	defer active.Store(prev)
	fn()
}

// Check consults the active schedule for one draw at site. It returns nil
// (almost always, and always when no schedule is installed) or the fault
// that fires at this draw. Callers decide what a kind means for them;
// latency faults' sleeping is the caller's job too (or use Sleep).
func Check(site string) *Fault {
	rt := active.Load()
	if rt == nil {
		return nil
	}
	s := rt.sites[site]
	if s == nil {
		return nil
	}
	seq := s.seq.Add(1) - 1
	u := unit(mix3(rt.seed, s.hash, seq))
	c := s.cfg
	var kind Kind
	switch {
	case u < c.ErrorRate:
		kind = KindError
	case u < c.ErrorRate+c.CorruptRate:
		kind = KindCorrupt
	case u < c.ErrorRate+c.CorruptRate+c.LatencyRate:
		kind = KindLatency
	default:
		return nil
	}
	s.injected[kind].Add(1)
	f := &Fault{Site: site, Kind: kind, Seq: seq}
	if kind == KindLatency {
		// Deterministic jitter in [0.5, 1.5)× the configured spike.
		j := 0.5 + unit(mix3(rt.seed^0x6a697474, s.hash, seq))
		f.Delay = time.Duration(float64(c.Delay) * j)
	}
	return f
}

// CheckErr is Check for call sites whose only failure mode is an error
// return: latency faults are slept through here, error and corruption
// faults come back as an *InjectedError.
func CheckErr(site string) error {
	f := Check(site)
	if f == nil {
		return nil
	}
	if f.Kind == KindLatency {
		time.Sleep(f.Delay)
		return nil
	}
	return &InjectedError{Fault: *f}
}

// Err wraps the fault as an *InjectedError.
func (f *Fault) Err() error { return &InjectedError{Fault: *f} }

// Counts is a per-site injection snapshot.
type Counts struct {
	Draws     uint64
	Errors    uint64
	Corrupts  uint64
	Latencies uint64
}

// Snapshot returns per-site draw and injection counts for the active
// schedule (nil when disabled). Serving /metrics exports these.
func Snapshot() map[string]Counts {
	rt := active.Load()
	if rt == nil {
		return nil
	}
	out := make(map[string]Counts, len(rt.sites))
	for name, s := range rt.sites {
		out[name] = Counts{
			Draws:     s.seq.Load(),
			Errors:    s.injected[KindError].Load(),
			Corrupts:  s.injected[KindCorrupt].Load(),
			Latencies: s.injected[KindLatency].Load(),
		}
	}
	return out
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix3 collapses (seed, site, seq) into one well-mixed 64-bit value via
// two rounds of splitmix64 finalization.
func mix3(seed, site, seq uint64) uint64 {
	x := seed ^ rot(site, 23) ^ rot(seq, 47)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func rot(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// unit maps 64 random bits to a float64 in [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / float64(1<<53) }
