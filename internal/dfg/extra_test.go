package dfg

import (
	"math"
	"strings"
	"testing"

	"wisegraph/internal/core"
	"wisegraph/internal/tensor"
)

func TestGraphStringRendering(t *testing.T) {
	g := rgcnLayer(4, 2, 3, 2)
	s := g.String()
	for _, want := range []string{"input", " H", "index", "bmm", "index-add", "(output)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
	for k := OpInput; k <= OpSigmoid; k++ {
		if k.String() == "" {
			t.Fatalf("op kind %d unnamed", k)
		}
	}
}

func TestConsumers(t *testing.T) {
	g := &Graph{}
	a := g.Input("A", 4, 2)
	r1 := g.Activation(OpReLU, a, 0)
	r2 := g.Activation(OpTanh, a, 0)
	sum := g.EWAdd(r1, r2)
	g.SetOutput(sum)
	c := g.Consumers()
	if len(c[a]) != 2 {
		t.Fatalf("A has %d consumers, want 2", len(c[a]))
	}
	if len(c[r1]) != 1 || c[r1][0] != sum {
		t.Fatal("ReLU consumer wrong")
	}
}

func TestEWMulAndActivationsEval(t *testing.T) {
	g := &Graph{}
	a := g.Input("A", 1, 4)
	b := g.Input("B", 1, 4)
	prod := g.EWMul(a, b)
	sig := g.Activation(OpSigmoid, prod, 0)
	th := g.Activation(OpTanh, sig, 0)
	lr := g.Activation(OpLeakyReLU, th, 0.1)
	g.SetOutput(lr)
	env := &Env{Tensors: map[string]*tensor.Tensor{
		"A": tensor.FromSlice([]float32{1, -2, 0, 3}, 1, 4),
		"B": tensor.FromSlice([]float32{2, 1, 5, -1}, 1, 4),
	}}
	out, err := g.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	// manual: p = {2,-2,0,-3}; s = σ(p); t = tanh(s); leaky(t)
	for i, p := range []float64{2, -2, 0, -3} {
		s := 1 / (1 + math.Exp(-p))
		th := math.Tanh(s)
		want := th
		if want < 0 {
			want *= 0.1
		}
		if math.Abs(float64(out.Data()[i])-want) > 1e-5 {
			t.Fatalf("chain eval[%d] = %v, want %v", i, out.Data()[i], want)
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	g := &Graph{}
	a := g.Input("A", 4, 2)
	w3 := g.Input("W3", 2, 3, 4)
	mustPanic(t, "Linear with 3-D weight", func() { g.Linear(a, w3) })
	w1 := g.Input("W1", 4)
	mustPanic(t, "BMM with 1-D weight", func() { g.BMM(a, w1) })
	mustPanic(t, "OuterMM with 1-D weight", func() { g.OuterMM(a, w1, Card{Kind: CardFixed, N: 1}) })
	mustPanic(t, "Activation with non-activation kind", func() { g.Activation(OpMatMulKindPlaceholder(), a, 0) })
	scalar := g.Input("S", 3)
	mustPanic(t, "Index2D on flat data", func() { g.Index2D(scalar, "r", "c", Card{Kind: CardEdges}) })
}

// OpMatMulKindPlaceholder returns a non-activation kind for panic tests.
func OpMatMulKindPlaceholder() OpKind { return OpLinear }

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s must panic", what)
		}
	}()
	fn()
}

func TestNodeCostAllKinds(t *testing.T) {
	// every node kind must price non-negatively and inputs price as zero
	g := rgcnLayer(10, 2, 4, 4)
	stats := TaskStats{Edges: 8, Uniq: map[core.Attr]int{
		core.AttrSrcID: 4, core.AttrEdgeType: 2, core.AttrDstID: 3,
	}}
	for _, n := range g.Nodes {
		w := NodeCost(n, stats)
		if n.Kind == OpInput && (w.FLOPs != 0 || w.Bytes != 0) {
			t.Fatal("inputs must be free (priced by consumers)")
		}
		if w.FLOPs < 0 || w.Bytes < 0 {
			t.Fatalf("negative cost for %v", n.Kind)
		}
	}
	// Index2D and OuterMM node costs via a transformed graph
	g2 := &Graph{}
	x := g2.Input("X", 4, 3)
	w := g2.Input("W", 2, 3, 2)
	o := g2.OuterMM(x, w, Card{Kind: CardUniqPair, Attr: core.AttrSrcID, Attr2: core.AttrEdgeType})
	idx := g2.Index2D(o.Reshape3D(), "r", "c", Card{Kind: CardEdges})
	_ = idx
	g2.SetOutput(idx)
	cw := g2.Cost(stats)
	if cw.FLOPs <= 0 {
		t.Fatal("OuterMM cost missing")
	}
}

// Reshape3D is a test helper: Index2D requires ≥2 leading dims in Cols;
// OuterMM output already models [m·n, F'] so fake a 2-D col shape.
func (n *Node) Reshape3D() *Node {
	c := *n
	c.Cols = []int{2, 1}
	return &c
}
