package dfg

import (
	"fmt"

	"wisegraph/internal/tensor"
)

// Env binds DFG symbols to concrete data for interpretation.
type Env struct {
	// Tensors binds OpInput names to dense tensors.
	Tensors map[string]*tensor.Tensor
	// Indices binds IdxKey names to index arrays (per-edge attribute
	// values, unique-value arrays, or mapping arrays from unique-value
	// extraction).
	Indices map[string][]int32
	// Sizes binds OutRowsKey names to output row counts for OpIndexAdd.
	Sizes map[string]int
}

// allocator abstracts where intermediate tensors come from: the heap
// (Eval) or a caller-owned arena (EvalArena).
type allocator interface {
	Get(shape ...int) *tensor.Tensor
}

type heapAlloc struct{}

func (heapAlloc) Get(shape ...int) *tensor.Tensor { return tensor.New(shape...) }

// Eval interprets the DFG over env and returns the output tensor. It is
// the reference executor used to check that transformed DFGs are
// equivalent to the originals; the production kernels in internal/kernels
// fuse these steps.
func (g *Graph) Eval(env *Env) (*tensor.Tensor, error) {
	return g.evalWith(env, heapAlloc{})
}

// EvalArena is Eval with every intermediate (including the returned
// output) allocated from ar. Repeated evaluations that Reset the arena
// between calls run allocation-free in steady state. The result is
// invalidated by the next ar.Reset; copy it first if it must survive.
func (g *Graph) EvalArena(env *Env, ar *tensor.Arena) (*tensor.Tensor, error) {
	return g.evalWith(env, ar)
}

func (g *Graph) evalWith(env *Env, alloc allocator) (*tensor.Tensor, error) {
	if g.Output == nil {
		return nil, fmt.Errorf("dfg: no output designated")
	}
	vals := make(map[*Node]*tensor.Tensor, len(g.Nodes))
	var eval func(n *Node) (*tensor.Tensor, error)
	eval = func(n *Node) (*tensor.Tensor, error) {
		if v, ok := vals[n]; ok {
			return v, nil
		}
		for _, in := range n.Inputs {
			if _, err := eval(in); err != nil {
				return nil, err
			}
		}
		v, err := evalNode(n, vals, env, alloc)
		if err != nil {
			return nil, fmt.Errorf("dfg: node %d (%v): %w", n.ID, n.Kind, err)
		}
		vals[n] = v
		return v, nil
	}
	return eval(g.Output)
}

func evalNode(n *Node, vals map[*Node]*tensor.Tensor, env *Env, alloc allocator) (*tensor.Tensor, error) {
	in := func(i int) *tensor.Tensor { return vals[n.Inputs[i]] }
	switch n.Kind {
	case OpInput:
		t, ok := env.Tensors[n.Name]
		if !ok {
			return nil, fmt.Errorf("unbound input %q", n.Name)
		}
		return t, nil
	case OpIndex:
		idx, ok := env.Indices[n.IdxKey]
		if !ok {
			return nil, fmt.Errorf("unbound index %q", n.IdxKey)
		}
		out := tensor.GatherRows(alloc.Get(len(idx), in(0).RowSize()), in(0), idx)
		return out.Reshape(append([]int{len(idx)}, n.Cols...)...), nil
	case OpIndex2D:
		ri, ok := env.Indices[n.IdxKey]
		if !ok {
			return nil, fmt.Errorf("unbound index %q", n.IdxKey)
		}
		ci, ok := env.Indices[n.IdxKey2]
		if !ok {
			return nil, fmt.Errorf("unbound index %q", n.IdxKey2)
		}
		src := in(0)
		if src.Dim(0) == 0 || src.Dim(1) == 0 {
			return nil, fmt.Errorf("gather2d source %v has an empty leading dimension", src.Shape())
		}
		inner := src.Len() / (src.Dim(0) * src.Dim(1))
		out := tensor.Gather2D(alloc.Get(len(ri), inner), src, ri, ci)
		return out.Reshape(append([]int{len(ri)}, n.Cols...)...), nil
	case OpIndexAdd:
		idx, ok := env.Indices[n.IdxKey]
		if !ok {
			return nil, fmt.Errorf("unbound index %q", n.IdxKey)
		}
		rows, ok := env.Sizes[n.OutRowsKey]
		if !ok {
			return nil, fmt.Errorf("unbound size %q", n.OutRowsKey)
		}
		src := in(0)
		shape := append([]int{rows}, src.Shape()[1:]...)
		out := alloc.Get(shape...)
		tensor.ScatterAddRows(out, src, idx)
		return out, nil
	case OpLinear:
		x, w := in(0), in(1)
		x2 := x.Reshape(x.Rows(), -1)
		w2 := w.Reshape(w.Dim(w.Dims()-2), w.Dim(w.Dims()-1))
		return tensor.MatMul(alloc.Get(x2.Dim(0), w2.Dim(1)), x2, w2), nil
	case OpBMM:
		x, w := in(0), in(1)
		r := x.Rows()
		f := x.RowSize()
		fp := w.Dim(w.Dims() - 1)
		out := tensor.BatchedMatMul(alloc.Get(r, 1, fp), x.Reshape(r, 1, f), w.Reshape(r, f, fp))
		return out.Reshape(r, fp), nil
	case OpOuterMM:
		x, w := in(0), in(1)
		m := x.Rows()
		f := x.RowSize()
		nW := w.Dim(0)
		fp := w.Dim(w.Dims() - 1)
		out := alloc.Get(m, nW, fp)
		prod := alloc.Get(m, fp)
		for j := 0; j < nW; j++ {
			wj := tensor.FromSlice(w.Data()[j*f*fp:(j+1)*f*fp], f, fp)
			tensor.MatMul(prod, x.Reshape(m, f), wj)
			for i := 0; i < m; i++ {
				copy(out.Data()[(i*nW+j)*fp:(i*nW+j+1)*fp], prod.Row(i))
			}
		}
		return out, nil
	case OpEWAdd:
		return tensor.Add(alloc.Get(in(0).Shape()...), in(0), in(1)), nil
	case OpEWMul:
		return tensor.Mul(alloc.Get(in(0).Shape()...), in(0), in(1)), nil
	case OpReLU:
		return tensor.ReLU(alloc.Get(in(0).Shape()...), in(0)), nil
	case OpLeakyReLU:
		return tensor.LeakyReLU(alloc.Get(in(0).Shape()...), in(0), n.Slope), nil
	case OpTanh:
		return tensor.Tanh(alloc.Get(in(0).Shape()...), in(0)), nil
	case OpSigmoid:
		return tensor.Sigmoid(alloc.Get(in(0).Shape()...), in(0)), nil
	default:
		return nil, fmt.Errorf("unknown op kind %v", n.Kind)
	}
}

// UniqueExtract computes the unique values of idx (in first-appearance
// order) and the mapping array such that idx[i] == unique[mapping[i]].
// This is the runtime companion of the unique-value-extraction
// transformation (paper Figure 8a).
func UniqueExtract(idx []int32) (unique, mapping []int32) {
	pos := make(map[int32]int32, len(idx))
	mapping = make([]int32, len(idx))
	for i, v := range idx {
		p, ok := pos[v]
		if !ok {
			p = int32(len(unique))
			pos[v] = p
			unique = append(unique, v)
		}
		mapping[i] = p
	}
	return unique, mapping
}
