// Package dfg implements the data-flow-graph representation of GNN layers
// (paper §2.1): indexing operations intertwined with neural operations.
// The DFG is the object WiseGraph's operation partition works on — the
// transformation rules of §5.2 rewrite it, the cost model of §6.3 prices
// it, and the interpreter executes it to verify the rewrites are
// equivalent.
package dfg

import (
	"fmt"

	"wisegraph/internal/core"
)

// OpKind enumerates DFG operation kinds.
type OpKind int

const (
	// OpInput is a named dense-tensor input (vertex embeddings H, weights W).
	OpInput OpKind = iota
	// OpIndex gathers rows of its input by an index array: out[i] = in[idx[i]].
	OpIndex
	// OpIndex2D gathers with paired indices: out[i] = in[r[i], c[i]].
	OpIndex2D
	// OpIndexAdd scatter-adds rows into a fresh output: out[idx[i]] += in[i].
	OpIndexAdd
	// OpLinear multiplies each row by a shared weight: out = in × W
	// (inputs: x, W). Rowwise in x.
	OpLinear
	// OpBMM multiplies per-row: out[i] = x[i] × W[i] for x [R,F] and
	// W [R,F,F'] (inputs: x, w). Rowwise in both.
	OpBMM
	// OpOuterMM forms all pairs: out[i,j] = x[i] × W[j] for x [m,F],
	// W [n,F,F'] giving [m,n,F']. Produced by indexing swapping.
	OpOuterMM
	// OpEWAdd adds two same-shape tensors rowwise.
	OpEWAdd
	// OpEWMul multiplies two same-shape tensors rowwise.
	OpEWMul
	// OpReLU / OpLeakyReLU / OpTanh / OpSigmoid are rowwise activations.
	OpReLU
	OpLeakyReLU
	OpTanh
	OpSigmoid
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpIndex:
		return "index"
	case OpIndex2D:
		return "index2d"
	case OpIndexAdd:
		return "index-add"
	case OpLinear:
		return "linear"
	case OpBMM:
		return "bmm"
	case OpOuterMM:
		return "outer-mm"
	case OpEWAdd:
		return "ew-add"
	case OpEWMul:
		return "ew-mul"
	case OpReLU:
		return "relu"
	case OpLeakyReLU:
		return "leaky-relu"
	case OpTanh:
		return "tanh"
	case OpSigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// IsIndexing reports whether the op moves data by graph structure.
func (k OpKind) IsIndexing() bool {
	return k == OpIndex || k == OpIndex2D || k == OpIndexAdd
}

// Rowwise reports whether the op applies independently per leading-dim row
// — the legality condition for indexing swapping (§5.2): the neural
// operation must be invariant to the dimension the indexing op permutes.
func (k OpKind) Rowwise() bool {
	switch k {
	case OpLinear, OpBMM, OpEWAdd, OpEWMul, OpReLU, OpLeakyReLU, OpTanh, OpSigmoid:
		return true
	}
	return false
}

// CardKind says how a node's leading-dimension size depends on the gTask.
type CardKind int

const (
	// CardEdges: one row per edge of the gTask.
	CardEdges CardKind = iota
	// CardUniq: one row per unique value of Attr within the gTask.
	CardUniq
	// CardUniqPair: uniq(Attr) × uniq(Attr2) rows (OuterMM outputs).
	CardUniqPair
	// CardFixed: a constant number of rows (parameters, full embeddings).
	CardFixed
)

// Card is a symbolic leading-dimension size, resolved against TaskStats.
type Card struct {
	Kind  CardKind
	Attr  core.Attr
	Attr2 core.Attr
	N     int
}

// TaskStats carries the gTask quantities the cost model resolves against.
type TaskStats struct {
	Edges int
	Uniq  map[core.Attr]int
}

// Resolve returns the concrete row count for stats.
func (c Card) Resolve(s TaskStats) int {
	switch c.Kind {
	case CardEdges:
		return s.Edges
	case CardUniq:
		return s.Uniq[c.Attr]
	case CardUniqPair:
		return s.Uniq[c.Attr] * s.Uniq[c.Attr2]
	default:
		return c.N
	}
}

// Node is one DFG operation.
type Node struct {
	ID     int
	Kind   OpKind
	Inputs []*Node

	// Name labels OpInput nodes and is the binding key in Env.
	Name string
	// IdxKey / IdxKey2 name the index arrays (Env.Indices) consumed by
	// OpIndex / OpIndex2D / OpIndexAdd.
	IdxKey  string
	IdxKey2 string
	// OutRowsKey names the Env.Sizes entry giving OpIndexAdd's output
	// row count.
	OutRowsKey string
	// Slope parameterizes OpLeakyReLU.
	Slope float32

	// Rows is the symbolic leading-dimension size of the output.
	Rows Card
	// Cols is the per-row shape of the output (e.g. [F] or [F, F']).
	Cols []int
}

// InnerSize returns the number of elements per output row.
func (n *Node) InnerSize() int {
	s := 1
	for _, c := range n.Cols {
		s *= c
	}
	return s
}

// Graph is a DFG: nodes in topological order with one designated output.
// ExtraOutputs keeps side results (e.g. attention scores) alive across
// Prune without being the value Eval returns.
type Graph struct {
	Nodes        []*Node
	Output       *Node
	ExtraOutputs []*Node
	nextID       int
}

// add appends a node, assigning its id.
func (g *Graph) add(n *Node) *Node {
	n.ID = g.nextID
	g.nextID++
	g.Nodes = append(g.Nodes, n)
	return n
}

// Input declares a dense input with fixed rows and per-row shape.
func (g *Graph) Input(name string, rows int, cols ...int) *Node {
	return g.add(&Node{Kind: OpInput, Name: name, Rows: Card{Kind: CardFixed, N: rows}, Cols: cols})
}

// Index gathers rows of data by the index array named idxKey; attr is the
// edge attribute the key corresponds to and rows the symbolic output size.
func (g *Graph) Index(data *Node, idxKey string, rows Card) *Node {
	return g.add(&Node{Kind: OpIndex, Inputs: []*Node{data}, IdxKey: idxKey, Rows: rows, Cols: data.Cols})
}

// Index2D gathers data[r[i], c[i]]; data's first two dims collapse.
func (g *Graph) Index2D(data *Node, rKey, cKey string, rows Card) *Node {
	if len(data.Cols) < 1 {
		panic("dfg: Index2D needs data with ≥2 leading dims")
	}
	return g.add(&Node{Kind: OpIndex2D, Inputs: []*Node{data}, IdxKey: rKey, IdxKey2: cKey, Rows: rows, Cols: data.Cols[1:]})
}

// IndexAdd scatter-adds in's rows into a new tensor with Env.Sizes[outKey]
// rows, indexed by idxKey.
func (g *Graph) IndexAdd(in *Node, idxKey, outKey string, rows Card) *Node {
	return g.add(&Node{Kind: OpIndexAdd, Inputs: []*Node{in}, IdxKey: idxKey, OutRowsKey: outKey, Rows: rows, Cols: in.Cols})
}

// Linear multiplies x [R,F] by the shared weight w [F,F'].
func (g *Graph) Linear(x, w *Node) *Node {
	if len(w.Cols) != 1 {
		panic("dfg: Linear weight must be 2-D (rows × cols)")
	}
	return g.add(&Node{Kind: OpLinear, Inputs: []*Node{x, w}, Rows: x.Rows, Cols: []int{w.Cols[0]}})
}

// BMM multiplies per-row: x [R,F] × w [R,F,F'] → [R,F'].
func (g *Graph) BMM(x, w *Node) *Node {
	if len(w.Cols) != 2 {
		panic("dfg: BMM weight must be [R,F,F']")
	}
	return g.add(&Node{Kind: OpBMM, Inputs: []*Node{x, w}, Rows: x.Rows, Cols: []int{w.Cols[1]}})
}

// OuterMM forms all-pairs products: x [m,F] × w [n,F,F'] → [m,n,F'].
func (g *Graph) OuterMM(x, w *Node, rows Card) *Node {
	if len(w.Cols) != 2 {
		panic("dfg: OuterMM weight must be [n,F,F']")
	}
	return g.add(&Node{Kind: OpOuterMM, Inputs: []*Node{x, w}, Rows: rows, Cols: []int{w.Cols[1]}})
}

// EWAdd adds two same-shape nodes.
func (g *Graph) EWAdd(a, b *Node) *Node {
	return g.add(&Node{Kind: OpEWAdd, Inputs: []*Node{a, b}, Rows: a.Rows, Cols: a.Cols})
}

// EWMul multiplies two same-shape nodes elementwise.
func (g *Graph) EWMul(a, b *Node) *Node {
	return g.add(&Node{Kind: OpEWMul, Inputs: []*Node{a, b}, Rows: a.Rows, Cols: a.Cols})
}

// Activation applies a rowwise activation.
func (g *Graph) Activation(kind OpKind, x *Node, slope float32) *Node {
	switch kind {
	case OpReLU, OpLeakyReLU, OpTanh, OpSigmoid:
	default:
		panic(fmt.Sprintf("dfg: %v is not an activation", kind))
	}
	return g.add(&Node{Kind: kind, Inputs: []*Node{x}, Slope: slope, Rows: x.Rows, Cols: x.Cols})
}

// SetOutput designates the DFG output.
func (g *Graph) SetOutput(n *Node) { g.Output = n }

// Clone deep-copies the DFG (nodes and edges; names are shared strings).
func (g *Graph) Clone() *Graph {
	out := &Graph{nextID: g.nextID}
	m := make(map[*Node]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		c := *n
		c.Inputs = make([]*Node, len(n.Inputs))
		for i, in := range n.Inputs {
			c.Inputs[i] = m[in]
		}
		c.Cols = append([]int(nil), n.Cols...)
		m[n] = &c
		out.Nodes = append(out.Nodes, &c)
	}
	if g.Output != nil {
		out.Output = m[g.Output]
	}
	for _, e := range g.ExtraOutputs {
		out.ExtraOutputs = append(out.ExtraOutputs, m[e])
	}
	return out
}

// Consumers returns, for each node, the nodes that read it.
func (g *Graph) Consumers() map[*Node][]*Node {
	out := make(map[*Node][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			out[in] = append(out[in], n)
		}
	}
	return out
}

// Prune removes nodes unreachable from the output, keeping topological
// order. Inputs are kept only if reachable.
func (g *Graph) Prune() {
	if g.Output == nil {
		return
	}
	live := map[*Node]bool{}
	var mark func(n *Node)
	mark = func(n *Node) {
		if live[n] {
			return
		}
		live[n] = true
		for _, in := range n.Inputs {
			mark(in)
		}
	}
	mark(g.Output)
	for _, e := range g.ExtraOutputs {
		mark(e)
	}
	kept := g.Nodes[:0]
	for _, n := range g.Nodes {
		if live[n] {
			kept = append(kept, n)
		}
	}
	g.Nodes = kept
}

// String renders the DFG one node per line.
func (g *Graph) String() string {
	s := ""
	for _, n := range g.Nodes {
		s += fmt.Sprintf("%3d %-10s", n.ID, n.Kind)
		if n.Name != "" {
			s += " " + n.Name
		}
		if n.IdxKey != "" {
			s += "[" + n.IdxKey
			if n.IdxKey2 != "" {
				s += "," + n.IdxKey2
			}
			s += "]"
		}
		for _, in := range n.Inputs {
			s += fmt.Sprintf(" ←%d", in.ID)
		}
		if n == g.Output {
			s += "  (output)"
		}
		s += "\n"
	}
	return s
}
