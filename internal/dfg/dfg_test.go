package dfg

import (
	"math"
	"testing"

	"wisegraph/internal/core"
	"wisegraph/internal/tensor"
)

// rgcnLayer builds the paper's running-example DFG (Figure 2c):
// h_out[dst] += BMM(H[src], W[type]).
func rgcnLayer(numV, numTypes, f, fp int) *Graph {
	g := &Graph{}
	h := g.Input("H", numV, f)
	w := g.Input("W", numTypes, f, fp)
	hs := g.Index(h, "src-id", Card{Kind: CardEdges})
	wt := g.Index(w, "edge-type", Card{Kind: CardEdges})
	msg := g.BMM(hs, wt)
	out := g.IndexAdd(msg, "dst-id", "num-dst", Card{Kind: CardUniq, Attr: core.AttrDstID})
	g.SetOutput(out)
	return g
}

func rgcnEnv(numV, numTypes, f, fp int, src, typ, dst []int32, seed uint64) *Env {
	rng := tensor.NewRNG(seed)
	h := tensor.New(numV, f)
	tensor.Uniform(h, rng, -1, 1)
	w := tensor.New(numTypes, f, fp)
	tensor.Uniform(w, rng, -1, 1)
	return &Env{
		Tensors: map[string]*tensor.Tensor{"H": h, "W": w},
		Indices: map[string][]int32{"src-id": src, "edge-type": typ, "dst-id": dst},
		Sizes:   map[string]int{"num-dst": numV},
	}
}

func TestRGCNEvalMatchesManual(t *testing.T) {
	numV, numTypes, f, fp := 4, 2, 3, 2
	src := []int32{0, 1, 2, 0}
	typ := []int32{0, 1, 0, 0}
	dst := []int32{1, 1, 3, 3}
	g := rgcnLayer(numV, numTypes, f, fp)
	env := rgcnEnv(numV, numTypes, f, fp, src, typ, dst, 1)
	got, err := g.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	h := env.Tensors["H"]
	w := env.Tensors["W"]
	want := tensor.New(numV, fp)
	for e := range src {
		hv := h.Row(int(src[e]))
		we := tensor.FromSlice(w.Data()[int(typ[e])*f*fp:(int(typ[e])+1)*f*fp], f, fp)
		msg := make([]float32, fp)
		tensor.VecMat(msg, hv, we)
		row := want.Row(int(dst[e]))
		for j, v := range msg {
			row[j] += v
		}
	}
	for i := range got.Data() {
		if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-4 {
			t.Fatalf("eval mismatch at %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestEvalErrorsOnUnboundSymbols(t *testing.T) {
	g := rgcnLayer(4, 2, 3, 2)
	env := &Env{Tensors: map[string]*tensor.Tensor{}, Indices: map[string][]int32{}, Sizes: map[string]int{}}
	if _, err := g.Eval(env); err == nil {
		t.Fatal("expected unbound-symbol error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := rgcnLayer(4, 2, 3, 2)
	c := g.Clone()
	if len(c.Nodes) != len(g.Nodes) {
		t.Fatalf("clone node count %d vs %d", len(c.Nodes), len(g.Nodes))
	}
	c.Nodes[2].IdxKey = "mutated"
	if g.Nodes[2].IdxKey == "mutated" {
		t.Fatal("clone shares nodes")
	}
	// clone inputs must point at clone nodes
	for _, n := range c.Nodes {
		for _, in := range n.Inputs {
			found := false
			for _, m := range c.Nodes {
				if m == in {
					found = true
				}
			}
			if !found {
				t.Fatal("clone input points outside clone")
			}
		}
	}
}

func TestPruneRemovesDeadNodes(t *testing.T) {
	g := &Graph{}
	a := g.Input("A", 4, 2)
	dead := g.Input("DEAD", 4, 2)
	_ = g.EWAdd(dead, dead) // dead compute
	out := g.Activation(OpReLU, a, 0)
	g.SetOutput(out)
	g.Prune()
	if len(g.Nodes) != 2 {
		t.Fatalf("pruned graph has %d nodes, want 2", len(g.Nodes))
	}
}

func TestCardResolve(t *testing.T) {
	s := TaskStats{Edges: 10, Uniq: map[core.Attr]int{core.AttrSrcID: 3, core.AttrEdgeType: 2}}
	if (Card{Kind: CardEdges}).Resolve(s) != 10 {
		t.Fatal("CardEdges")
	}
	if (Card{Kind: CardUniq, Attr: core.AttrSrcID}).Resolve(s) != 3 {
		t.Fatal("CardUniq")
	}
	if (Card{Kind: CardUniqPair, Attr: core.AttrSrcID, Attr2: core.AttrEdgeType}).Resolve(s) != 6 {
		t.Fatal("CardUniqPair")
	}
	if (Card{Kind: CardFixed, N: 7}).Resolve(s) != 7 {
		t.Fatal("CardFixed")
	}
}

func TestCostSplitsNeuralAndIndexing(t *testing.T) {
	g := rgcnLayer(100, 4, 16, 8)
	stats := TaskStats{Edges: 50, Uniq: map[core.Attr]int{
		core.AttrSrcID: 20, core.AttrEdgeType: 2, core.AttrDstID: 10,
	}}
	w := g.Cost(stats)
	if w.FLOPs <= 0 || w.Bytes <= 0 {
		t.Fatalf("degenerate workload %+v", w)
	}
	// BMM dominates neural FLOPs: 2·E·F·F' = 2·50·16·8 = 12800.
	if w.NeuralFLOPs < 12800 {
		t.Fatalf("neural FLOPs %v, want ≥ 12800", w.NeuralFLOPs)
	}
	if w.IndexBytes <= 0 || w.IndexBytes >= w.Bytes {
		t.Fatalf("indexing bytes %v of %v", w.IndexBytes, w.Bytes)
	}
	if w.MinParallel <= 0 {
		t.Fatalf("MinParallel = %d", w.MinParallel)
	}
}

func TestUniqueExtractRuntime(t *testing.T) {
	idx := []int32{5, 3, 5, 5, 3, 9}
	unique, mapping := UniqueExtract(idx)
	wantU := []int32{5, 3, 9}
	if len(unique) != 3 {
		t.Fatalf("unique = %v", unique)
	}
	for i := range wantU {
		if unique[i] != wantU[i] {
			t.Fatalf("unique = %v, want %v", unique, wantU)
		}
	}
	for i, v := range idx {
		if unique[mapping[i]] != v {
			t.Fatalf("mapping broken at %d", i)
		}
	}
}

func TestOpKindProperties(t *testing.T) {
	if !OpIndex.IsIndexing() || !OpIndexAdd.IsIndexing() || OpLinear.IsIndexing() {
		t.Fatal("IsIndexing wrong")
	}
	if !OpLinear.Rowwise() || !OpBMM.Rowwise() || OpIndexAdd.Rowwise() || OpIndex.Rowwise() {
		t.Fatal("Rowwise wrong")
	}
}

func TestOuterMMEval(t *testing.T) {
	g := &Graph{}
	x := g.Input("X", 2, 3)
	w := g.Input("W", 2, 3, 2)
	o := g.OuterMM(x, w, Card{Kind: CardFixed, N: 4})
	g.SetOutput(o)
	rng := tensor.NewRNG(3)
	xt := tensor.New(2, 3)
	tensor.Uniform(xt, rng, -1, 1)
	wt := tensor.New(2, 3, 2)
	tensor.Uniform(wt, rng, -1, 1)
	out, err := g.Eval(&Env{Tensors: map[string]*tensor.Tensor{"X": xt, "W": wt}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dims() != 3 || out.Dim(0) != 2 || out.Dim(1) != 2 || out.Dim(2) != 2 {
		t.Fatalf("outer shape %v", out.Shape())
	}
	// out[i,j] = x[i] × w[j]
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			wj := tensor.FromSlice(wt.Data()[j*6:(j+1)*6], 3, 2)
			want := make([]float32, 2)
			tensor.VecMat(want, xt.Row(i), wj)
			for p := 0; p < 2; p++ {
				if math.Abs(float64(out.At(i, j, p)-want[p])) > 1e-5 {
					t.Fatalf("outer[%d,%d,%d] mismatch", i, j, p)
				}
			}
		}
	}
}
