package dfg

import (
	"testing"

	"wisegraph/internal/tensor"
)

// TestEvalArenaMatchesEval evaluates the RGCN layer DFG with the heap
// allocator and with a reused arena across repeated iterations; every
// evaluation must be bitwise identical, and the arena must hand back the
// same storage once warmed up.
func TestEvalArenaMatchesEval(t *testing.T) {
	numV, numTypes, f, fp := 6, 2, 4, 3
	src := []int32{0, 1, 2, 0, 4, 5, 3}
	typ := []int32{0, 1, 0, 0, 1, 1, 0}
	dst := []int32{1, 1, 3, 3, 0, 2, 5}
	g := rgcnLayer(numV, numTypes, f, fp)
	env := rgcnEnv(numV, numTypes, f, fp, src, typ, dst, 7)

	want, err := g.Eval(env)
	if err != nil {
		t.Fatal(err)
	}

	var ar tensor.Arena
	for it := 0; it < 4; it++ {
		ar.Reset()
		got, err := g.EvalArena(env, &ar)
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameShape(want) {
			t.Fatalf("iteration %d: shape %v, want %v", it, got.Shape(), want.Shape())
		}
		for i, v := range got.Data() {
			if v != want.Data()[i] {
				t.Fatalf("iteration %d: arena[%d]=%v, heap=%v", it, i, v, want.Data()[i])
			}
		}
	}
}
