package dfg

// Workload is the cost-model output for a DFG or node (paper §6.3): the
// floating-point work, the device-memory traffic, and the smallest
// leading-dimension row count among neural ops (a proxy for available
// parallelism).
type Workload struct {
	FLOPs float64
	Bytes float64
	// NeuralFLOPs / IndexBytes split the totals by op class for the
	// Figure 3(b)/17 breakdowns.
	NeuralFLOPs float64
	IndexBytes  float64
	// MinParallel is the smallest row count over non-input nodes — low
	// values mean the plan cannot fill the device.
	MinParallel int
}

// Add accumulates o into w.
func (w *Workload) Add(o Workload) {
	w.FLOPs += o.FLOPs
	w.Bytes += o.Bytes
	w.NeuralFLOPs += o.NeuralFLOPs
	w.IndexBytes += o.IndexBytes
	if o.MinParallel > 0 && (w.MinParallel == 0 || o.MinParallel < w.MinParallel) {
		w.MinParallel = o.MinParallel
	}
}

const bytesPerElem = 4 // float32

// NodeCost prices a single node against gTask stats.
func NodeCost(n *Node, s TaskStats) Workload {
	rows := n.Rows.Resolve(s)
	inner := n.InnerSize()
	out := float64(rows * inner * bytesPerElem)
	var w Workload
	switch n.Kind {
	case OpInput:
		return Workload{} // inputs are priced by their consumers' reads
	case OpIndex, OpIndex2D:
		// read gathered rows + the index array, write output
		b := 2*out + float64(rows*bytesPerElem)
		w = Workload{Bytes: b, IndexBytes: b, MinParallel: rows}
	case OpIndexAdd:
		inRows := n.Inputs[0].Rows.Resolve(s)
		inBytes := float64(inRows * inner * bytesPerElem)
		// read input rows + index, read-modify-write output rows
		b := inBytes + float64(inRows*bytesPerElem) + 2*out
		w = Workload{Bytes: b, IndexBytes: b, FLOPs: float64(inRows * inner), MinParallel: inRows}
	case OpLinear:
		f := n.Inputs[0].InnerSize()
		fp := inner
		fl := 2 * float64(rows) * float64(f) * float64(fp)
		b := float64(rows*f*bytesPerElem) + float64(f*fp*bytesPerElem) + out
		w = Workload{FLOPs: fl, NeuralFLOPs: fl, Bytes: b, MinParallel: rows}
	case OpBMM:
		f := n.Inputs[0].InnerSize()
		fp := inner
		fl := 2 * float64(rows) * float64(f) * float64(fp)
		// per-row weight read is the tensor-centric redundancy: rows×F×F'
		b := float64(rows*f*bytesPerElem) + float64(rows*f*fp*bytesPerElem) + out
		w = Workload{FLOPs: fl, NeuralFLOPs: fl, Bytes: b, MinParallel: rows}
	case OpOuterMM:
		m := n.Inputs[0].Rows.Resolve(s)
		nW := n.Inputs[1].Rows.Resolve(s)
		f := n.Inputs[0].InnerSize()
		fp := inner
		fl := 2 * float64(m) * float64(nW) * float64(f) * float64(fp)
		b := float64(m*f*bytesPerElem) + float64(nW*f*fp*bytesPerElem) + float64(m*nW*fp*bytesPerElem)
		w = Workload{FLOPs: fl, NeuralFLOPs: fl, Bytes: b, MinParallel: m * nW}
	case OpEWAdd, OpEWMul:
		fl := float64(rows * inner)
		w = Workload{FLOPs: fl, NeuralFLOPs: fl, Bytes: 3 * out, MinParallel: rows}
	case OpReLU, OpLeakyReLU, OpTanh, OpSigmoid:
		fl := float64(rows * inner)
		w = Workload{FLOPs: fl, NeuralFLOPs: fl, Bytes: 2 * out, MinParallel: rows}
	}
	return w
}

// Cost prices the whole DFG against gTask stats.
func (g *Graph) Cost(s TaskStats) Workload {
	var w Workload
	for _, n := range g.Nodes {
		w.Add(NodeCost(n, s))
	}
	return w
}
