package shard

import (
	"context"
	"strings"
	"testing"
	"time"

	"wisegraph/internal/fault"
	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// testGraph builds a small random graph with a heavy degree skew toward
// low vertex ids (the shape edge-balanced placement exists for).
func testGraph(t *testing.T, v, edges int, seed uint64) *graph.Graph {
	t.Helper()
	rng := tensor.NewRNG(seed)
	g := &graph.Graph{NumVertices: v, NumTypes: 1}
	for i := 0; i < edges; i++ {
		// Quadratic skew: destination mass concentrates in low ids.
		d := rng.Intn(v) * rng.Intn(v) / v
		g.Src = append(g.Src, int32(rng.Intn(v)))
		g.Dst = append(g.Dst, int32(d))
	}
	return g
}

func testFleet(t *testing.T, g *graph.Graph, shards, workers int, budget int64) *Fleet {
	t.Helper()
	const dim, classes = 8, 3
	csr := g.BuildCSRByDst()
	feats := tensor.New(g.NumVertices, dim)
	data := feats.Data()
	rng := tensor.NewRNG(5)
	for i := range data {
		data[i] = rng.Float32()
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: dim, Hidden: 8, OutDim: classes,
		Layers: 2, NumTypes: 1, Seed: 7,
	})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	plan := joint.Search(g, m.Cfg.Kind, m.Cfg.Hidden, m.Cfg.Hidden, m.Cfg.NumTypes, joint.Options{})
	f, err := NewFleet(csr, feats, g.NumTypes, m, plan, Config{
		Shards: shards, Workers: workers, Fanouts: []int{4, 4}, Seed: 3,
		CacheBudget: budget,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestParsePlacement(t *testing.T) {
	for in, want := range map[string]Placement{
		"": PlaceEdge, "edge": PlaceEdge, "vertex": PlaceVertex, "cost": PlaceCost,
	} {
		got, err := ParsePlacement(in)
		if err != nil || got != want {
			t.Fatalf("ParsePlacement(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePlacement("random"); err == nil {
		t.Fatal("bogus placement accepted")
	}
}

// TestBoundariesProperties: every policy yields monotone bounds covering
// [0, V], and on a skewed graph the edge policy balances owned in-edges
// strictly better than the vertex policy.
func TestBoundariesProperties(t *testing.T) {
	g := testGraph(t, 200, 2000, 1)
	csr := g.BuildCSRByDst()
	const n = 4
	spread := func(b []int32) int64 {
		var worst, best int64 = 0, 1 << 62
		for s := 0; s < n; s++ {
			e := int64(csr.RowPtr[b[s+1]] - csr.RowPtr[b[s]])
			if e > worst {
				worst = e
			}
			if e < best {
				best = e
			}
		}
		return worst - best
	}
	var byPolicy [3][]int32
	for _, p := range []Placement{PlaceVertex, PlaceEdge, PlaceCost} {
		b := Boundaries(csr, n, p, 8)
		if len(b) != n+1 || b[0] != 0 || b[n] != int32(g.NumVertices) {
			t.Fatalf("%v bounds %v malformed", p, b)
		}
		for i := 0; i < n; i++ {
			if b[i] > b[i+1] {
				t.Fatalf("%v bounds %v not monotone", p, b)
			}
		}
		byPolicy[p] = b
	}
	if spread(byPolicy[PlaceEdge]) >= spread(byPolicy[PlaceVertex]) {
		t.Fatalf("edge placement spread %d not tighter than vertex %d on a skewed graph",
			spread(byPolicy[PlaceEdge]), spread(byPolicy[PlaceVertex]))
	}
	if FleetPrice(csr, byPolicy[PlaceCost], 8) >
		min(FleetPrice(csr, byPolicy[PlaceVertex], 8), FleetPrice(csr, byPolicy[PlaceEdge], 8)) {
		t.Fatal("cost placement priced worse than both candidates")
	}
}

// TestOwnershipValidation: a shard must reject any vertex outside its
// range — the router never silently reads another node's data.
func TestOwnershipValidation(t *testing.T) {
	f := testFleet(t, testGraph(t, 100, 600, 2), 4, 1, 0)
	foreign := f.bounds[1] // owned by shard 1, not shard 0
	_, err := f.conns[0][0].Expand(context.Background(), &ExpandArgs{Level: 0, Dim: 8, Verts: []int32{foreign}})
	if err == nil || !strings.Contains(err.Error(), "outside owned range") {
		t.Fatalf("foreign Expand error = %v, want ownership rejection", err)
	}
	_, err = f.conns[0][0].Compute(context.Background(), &ComputeArgs{
		Level: 1, InDim: 8, OutDim: 8,
		Verts: []int32{foreign}, In: []int32{foreign}, Rows: make([]float32, 8),
	})
	if err == nil || !strings.Contains(err.Error(), "outside owned range") {
		t.Fatalf("foreign Compute error = %v, want ownership rejection", err)
	}
	if n := f.InFlight(); n != 0 {
		t.Fatalf("in-flight %d after rejected RPCs", n)
	}
}

// TestSpansOf: a sorted frontier partitions into contiguous owner spans
// with nothing lost.
func TestSpansOf(t *testing.T) {
	f := testFleet(t, testGraph(t, 100, 600, 3), 4, 1, 0)
	verts := []int32{0, 1, int32(f.bounds[1]), int32(f.bounds[3]), 99}
	spans := f.spansOf(verts)
	covered := 0
	for _, os := range spans {
		for i := os.lo; i < os.hi; i++ {
			v := verts[i]
			if v < f.bounds[os.shard] || v >= f.bounds[os.shard+1] {
				t.Fatalf("span gave %d to shard %d owning [%d,%d)", v, os.shard,
					f.bounds[os.shard], f.bounds[os.shard+1])
			}
			covered++
		}
	}
	if covered != len(verts) {
		t.Fatalf("spans covered %d of %d vertices", covered, len(verts))
	}
}

// TestCallLadderExhaustion: a 100% error rate burns all attempts, counts
// every retry, and surfaces the injected error as a failure.
func TestCallLadderExhaustion(t *testing.T) {
	f := testFleet(t, testGraph(t, 50, 200, 4), 2, 1, 0)
	fault.WithSchedule(&fault.Schedule{
		Seed:  1,
		Sites: map[string]fault.SiteConfig{fault.SiteShardRPC: {ErrorRate: 1}},
	}, func() {
		_, err := f.call(0, func(context.Context, Conn) (any, error) {
			t.Fatal("do ran despite 100% error rate")
			return nil, nil
		})
		if err == nil || !fault.IsInjected(err) {
			t.Fatalf("exhausted call error = %v, want injected", err)
		}
	})
	retries, _, _, failures := f.Resilience()
	if retries != rpcAttempts-1 || failures != 1 {
		t.Fatalf("retries=%d failures=%d, want %d/1", retries, failures, rpcAttempts-1)
	}
}

// TestCallLadderHedge: a straggler past the hedge threshold (but short of
// the timeout) is abandoned for a hedged re-issue that succeeds without
// sleeping out the straggle.
func TestCallLadderHedge(t *testing.T) {
	f := testFleet(t, testGraph(t, 50, 200, 4), 2, 1, 0)
	f.cfg.Timeout = time.Second
	fault.WithSchedule(&fault.Schedule{
		Seed: 1,
		Sites: map[string]fault.SiteConfig{
			fault.SiteShardRPC: {LatencyRate: 1, Delay: 20 * time.Millisecond},
		},
	}, func() {
		ran := false
		start := time.Now()
		if _, err := f.call(0, func(context.Context, Conn) (any, error) { ran = true; return nil, nil }); err != nil {
			t.Fatalf("hedged call failed: %v", err)
		}
		// Both the first draw and the hedge's re-draw straggle ([10,30)ms
		// jitter); the hedge is re-issued immediately and the second
		// straggle is waited out — so one spike elapses, not two.
		if elapsed := time.Since(start); elapsed > 45*time.Millisecond {
			t.Fatalf("hedged call took %v — straggler waited out instead of hedged", elapsed)
		}
		if !ran {
			t.Fatal("hedged call never ran")
		}
	})
	_, hedges, _, _ := f.Resilience()
	if hedges == 0 {
		t.Fatal("no hedge recorded")
	}
}

// TestCallLadderTimeout: a modeled straggle at or past the per-RPC
// deadline is a timeout — counted, not slept through — and the retry
// succeeds on a clean draw.
func TestCallLadderTimeout(t *testing.T) {
	f := testFleet(t, testGraph(t, 50, 200, 4), 2, 1, 0)
	f.cfg.Timeout = time.Millisecond
	fault.WithSchedule(&fault.Schedule{
		Seed: 1,
		Sites: map[string]fault.SiteConfig{
			fault.SiteShardRPC: {LatencyRate: 0.5, Delay: 500 * time.Millisecond},
		},
	}, func() {
		start := time.Now()
		for i := 0; i < 20; i++ {
			if _, err := f.call(0, func(context.Context, Conn) (any, error) { return nil, nil }); err != nil {
				t.Fatalf("call %d failed: %v", i, err)
			}
		}
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("20 calls took %v — a timed-out straggle was slept out", elapsed)
		}
	})
	_, _, timeouts, failures := f.Resilience()
	if timeouts == 0 {
		t.Fatal("no timeout recorded at 50% straggle rate past the deadline")
	}
	if failures != 0 {
		t.Fatalf("%d failures despite retryable timeouts", failures)
	}
}

// TestFleetForwardSmoke: the fleet's forward is self-consistent across
// shard counts — the full-graph comparison against single-node serving
// lives in internal/serve's parity matrix.
func TestFleetForwardSmoke(t *testing.T) {
	g := testGraph(t, 100, 600, 6)
	seeds := []int32{0, 13, 50, 99}
	var want []float32
	for _, shards := range []int{1, 2, 4} {
		f := testFleet(t, g, shards, 2, 0)
		id := obs.NewID()
		out, idx, err := f.Forward(id, 0, seeds, obs.Begin(obs.StageSample, id))
		if err != nil {
			t.Fatalf("shards=%d Forward: %v", shards, err)
		}
		if len(idx) != len(seeds) {
			t.Fatalf("shards=%d row map has %d entries, want %d", shards, len(idx), len(seeds))
		}
		got := append([]float32(nil), out.Data()...)
		tensor.Put(out)
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d logits[%d] = %v, want %v (1-shard)", shards, i, got[i], want[i])
			}
		}
	}
}
