// Package shard is the sharded serving tier: the frozen CSR and feature
// rows are split into contiguous vertex ranges, each owned by one node (a
// Shard) with its own model replicas, execution contexts and per-layer
// hot-vertex cache, and a router (Fleet) fans every micro-batch's sampled
// frontier out to the owners, collects the partial per-layer embeddings
// and aggregates them through the same leveled deterministic forward
// single-node serving uses — so sharded logits are bitwise-identical to
// single-node at any shard count, engine and worker count. Shards run
// either in-process (the Fleet owns them) or as separate wisegraph-shard
// processes reached over the internal/shard/wire TCP protocol; slow or
// failed shards are absorbed by a retry/hedge/timeout ladder at the
// shard.rpc fault site, mirroring the distributed trainer's exchange
// ladder.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/graph"
	"wisegraph/internal/hotcache"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
	"wisegraph/internal/train"
)

// Shard owns the contiguous vertex range [lo, hi): the CSR rows (in-
// edges) and feature rows of those vertices, a worker pool of model
// replicas that serves Expand/Compute RPCs, and the range's per-layer
// hot-vertex cache. In-process the underlying CSR and feature arrays are
// shared memory and the shard touches only its owned range; in a
// wisegraph-shard daemon they are the process's own copy. Every RPC
// validates ownership and shape so a routing bug — or a malformed
// deserialized request — surfaces as an error instead of silently
// reading another node's data or copying garbage rows.
type Shard struct {
	id     int
	lo, hi int32
	csr    *graph.CSR
	feats  *tensor.Tensor
	typed  bool
	ntypes int

	layers int
	dims   []int // activation width per level, len layers+1
	fan    []int
	seed   uint64
	plan   *joint.Result
	engine string
	src    *nn.Model

	cache *hotcache.Cache

	reqCh    chan call
	closed   chan struct{}
	wg       sync.WaitGroup
	inflight atomic.Int64
	devs     []*device.Device
}

// NodeConfig sizes one shard node independently of a router — the
// per-node resource budget a wisegraph-shard daemon sets from its own
// flags (worker pool, cache RAM), plus the fleet-coherence knobs the
// router's Hello dictates (fan-outs, sampler seed, engine).
type NodeConfig struct {
	// Workers is the RPC worker pool size (min 1).
	Workers int
	// Fanouts are the per-layer sampling fan-outs, Seed the deterministic
	// sampler key, Engine the execution engine — identical across the
	// fleet and the single-node reference, which is what the bitwise-
	// parity guarantee rests on.
	Fanouts []int
	Seed    uint64
	Engine  string
	// Spec is the simulated device (default A100).
	Spec *device.Spec
	// CacheBudget / CacheShards size this node's hot-vertex cache.
	CacheBudget int64
	CacheShards int
}

// shardWorker is one RPC-serving goroutine's private compute state.
type shardWorker struct {
	replica *nn.Model
	ver     uint64
	pt      *core.Partitioner
	ectx    *exec.Ctx
}

// NewShard builds one shard node over its owned slice of the frozen
// (graph, features, model, plan) and starts its worker pool. Replicas are
// stamped out before any goroutine starts so construction errors surface
// synchronously. Callers outside a Fleet (the wisegraph-shard daemon)
// must Close it themselves.
func NewShard(id int, lo, hi int32, csr *graph.CSR, feats *tensor.Tensor, ntypes int,
	src *nn.Model, plan *joint.Result, cfg NodeConfig) (*Shard, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Spec == nil {
		spec := device.A100()
		cfg.Spec = &spec
	}
	if len(cfg.Fanouts) != src.Cfg.Layers {
		return nil, fmt.Errorf("shard %d: %d fan-outs for a %d-layer model", id, len(cfg.Fanouts), src.Cfg.Layers)
	}
	s := &Shard{
		id: id, lo: lo, hi: hi,
		csr:    csr,
		feats:  feats,
		typed:  csr.EType != nil,
		ntypes: ntypes,
		layers: src.Cfg.Layers,
		dims:   src.LayerDims(),
		fan:    cfg.Fanouts,
		seed:   cfg.Seed,
		plan:   plan,
		engine: cfg.Engine,
		src:    src,
		cache:  hotcache.New(hotcache.Config{Budget: cfg.CacheBudget, Shards: cfg.CacheShards}),
		reqCh:  make(chan call, cfg.Workers),
		closed: make(chan struct{}),
	}
	workers := make([]*shardWorker, cfg.Workers)
	for i := range workers {
		replica, err := nn.NewModel(src.Cfg)
		if err != nil {
			return nil, err
		}
		if err := replica.CopyParamsFrom(src); err != nil {
			return nil, err
		}
		dev := device.New(*cfg.Spec)
		s.devs = append(s.devs, dev)
		ectx := exec.NewCtx(dev)
		ectx.Engine = cfg.Engine
		workers[i] = &shardWorker{replica: replica, pt: core.NewPartitioner(), ectx: ectx}
	}
	for _, w := range workers {
		s.wg.Add(1)
		go s.serve(w)
	}
	return s, nil
}

// newShard builds one in-process shard of a fleet.
func newShard(id int, lo, hi int32, f *Fleet) (*Shard, error) {
	return NewShard(id, lo, hi, f.csr, f.feats, f.ntypes, f.src, f.plan, NodeConfig{
		Workers:     f.cfg.Workers,
		Fanouts:     f.cfg.Fanouts,
		Seed:        f.cfg.Seed,
		Engine:      f.cfg.Engine,
		Spec:        f.cfg.Spec,
		CacheBudget: f.cfg.CacheBudget,
		CacheShards: f.cfg.CacheShards,
	})
}

// serve is one worker's RPC loop. Before each call the worker re-syncs
// its replica if the request carries a newer model version; the caller
// (the router, under the serve engine's model read-lock) guarantees no
// reload runs concurrently, so all RPCs of one batch see one coherent
// parameter set. Shutdown arrives via s.closed only; once it fires the
// worker answers anything still queued with a draining error (admitted
// calls are always answered, never computed past the close) and exits.
func (s *Shard) serve(w *shardWorker) {
	defer s.wg.Done()
	defer w.pt.Release()
	for {
		select {
		case c := <-s.reqCh:
			s.handle(w, c)
		case <-s.closed:
			for {
				select {
				case c := <-s.reqCh:
					c.reply <- reply{err: fmt.Errorf("shard %d: draining", s.id)}
				default:
					return
				}
			}
		}
	}
}

// handle runs one admitted call on this worker.
func (s *Shard) handle(w *shardWorker, c call) {
	var (
		ver uint64
		r   reply
	)
	if c.expand != nil {
		ver = c.expand.Ver
	} else {
		ver = c.compute.Ver
	}
	if ver != w.ver {
		if err := w.replica.CopyParamsFrom(s.src); err != nil {
			c.reply <- reply{err: fmt.Errorf("shard %d: replica re-sync: %w", s.id, err)}
			return
		}
		w.ver = ver
	}
	if c.expand != nil {
		r.expand, r.err = s.handleExpand(c.expand)
	} else {
		r.compute, r.err = s.handleCompute(w, c.compute)
	}
	c.reply <- r
}

// Close stops the worker pool: the closed channel is the only shutdown
// signal (reqCh stays open forever, so a concurrent dispatch can never
// panic on a closed send), workers answer anything still queued with a
// draining error and exit, and Close returns once all have. Safe to call
// exactly once; the router calls it once no well-behaved caller will
// dispatch again, and any abandoned hedged straggler that still does gets
// the draining error dispatch documents.
func (s *Shard) Close() {
	close(s.closed)
	s.wg.Wait()
}

// InFlight returns the shard's admitted-but-unanswered RPC count — the
// per-node half of the fleet-wide drain invariant.
func (s *Shard) InFlight() int64 { return s.inflight.Load() }

// ID returns the shard's fleet index; Lo and Hi its owned range.
func (s *Shard) ID() int { return s.id }

// Bounds returns the owned vertex range [lo, hi).
func (s *Shard) Bounds() (lo, hi int32) { return s.lo, s.hi }

// Cache exposes the node's hot-vertex cache (for daemon stats).
func (s *Shard) Cache() *hotcache.Cache { return s.cache }

// checkOwned rejects any vertex outside the shard's range: the router
// must never ask a node for data it does not own.
func (s *Shard) checkOwned(verts []int32) error {
	for _, v := range verts {
		if v < s.lo || v >= s.hi {
			return fmt.Errorf("shard %d: vertex %d outside owned range [%d,%d)", s.id, v, s.lo, s.hi)
		}
	}
	return nil
}

func (s *Shard) degree(v int32) int32 { return s.csr.RowPtr[v+1] - s.csr.RowPtr[v] }

// handleExpand resolves one level's owned span: cache probes for every
// vertex, deterministic frontier sampling for the misses. At level 0 the
// shard also gathers its owned feature rows for the misses (and admits
// them), so input features never need a second round trip.
func (s *Shard) handleExpand(a *ExpandArgs) (*ExpandReply, error) {
	if a.Level < 0 || a.Level >= len(s.dims) {
		return nil, fmt.Errorf("shard %d: expand level %d outside [0,%d]", s.id, a.Level, s.layers)
	}
	// A request's claimed width must match the level's actual row width —
	// level 0 is the feature width, level l the output width of layer
	// l-1. A short Dim would silently copy truncated rows into the reply
	// (and a deserialized request can claim anything), so reject it the
	// way handleCompute rejects a mis-sized Rows payload.
	if a.Dim != s.dims[a.Level] {
		return nil, fmt.Errorf("shard %d: expand level %d rows are %d wide, request claims %d",
			s.id, a.Level, s.dims[a.Level], a.Dim)
	}
	if err := s.checkOwned(a.Verts); err != nil {
		return nil, err
	}
	r := &ExpandReply{
		Hit:  make([]bool, len(a.Verts)),
		Rows: make([]float32, len(a.Verts)*a.Dim),
	}
	if a.Level > 0 {
		r.Srcs = make([][]int32, len(a.Verts))
	}
	fan := 0
	if a.Level > 0 {
		fan = s.fan[s.layers-a.Level]
	}
	for i, v := range a.Verts {
		row := r.Rows[i*a.Dim : (i+1)*a.Dim]
		if s.cache.Get(a.Ver, a.Level, v, row) {
			r.Hit[i] = true
			continue
		}
		if a.Level == 0 {
			copy(row, s.feats.Row(int(v)))
			s.cache.Put(a.Ver, 0, v, s.degree(v), row)
			continue
		}
		slots := graph.DetSample(nil, s.csr, v, fan, s.seed)
		srcs := make([]int32, len(slots))
		for j, slot := range slots {
			srcs[j] = s.csr.Col[slot]
		}
		r.Srcs[i] = srcs
	}
	return r, nil
}

// handleCompute runs layer Level-1 for the shard's owned miss targets:
// it rebuilds each target's sampled block edges (same deterministic
// sampler, same canonical ascending-target/contiguous-sample edge order
// the bitwise-parity argument relies on) over the shipped input rows,
// executes the layer under the frozen joint plan with the shard's
// engine, applies the between-layer activation, and admits the fresh
// rows into the shard's cache.
func (s *Shard) handleCompute(w *shardWorker, a *ComputeArgs) (*ComputeReply, error) {
	if a.Level < 1 || a.Level > s.layers {
		return nil, fmt.Errorf("shard %d: compute level %d outside [1,%d]", s.id, a.Level, s.layers)
	}
	if a.InDim != s.dims[a.Level-1] || a.OutDim != s.dims[a.Level] {
		return nil, fmt.Errorf("shard %d: compute level %d is %d->%d wide, request claims %d->%d",
			s.id, a.Level, s.dims[a.Level-1], s.dims[a.Level], a.InDim, a.OutDim)
	}
	if err := s.checkOwned(a.Verts); err != nil {
		return nil, err
	}
	if len(a.Rows) != len(a.In)*a.InDim {
		return nil, fmt.Errorf("shard %d: %d input rows elements for %d vertices × dim %d",
			s.id, len(a.Rows), len(a.In), a.InDim)
	}
	idx := make(map[int32]int32, len(a.In))
	for i, v := range a.In {
		idx[v] = int32(i)
	}
	fan := s.fan[s.layers-a.Level]
	g := &graph.Graph{NumVertices: len(a.In), NumTypes: s.ntypes}
	for _, v := range a.Verts {
		d, ok := idx[v]
		if !ok {
			return nil, fmt.Errorf("shard %d: target %d missing from input set", s.id, v)
		}
		for _, slot := range graph.DetSample(nil, s.csr, v, fan, s.seed) {
			src, ok := idx[s.csr.Col[slot]]
			if !ok {
				return nil, fmt.Errorf("shard %d: source %d of target %d missing from input set",
					s.id, s.csr.Col[slot], v)
			}
			g.Src = append(g.Src, src)
			g.Dst = append(g.Dst, d)
			if s.typed {
				g.Type = append(g.Type, s.csr.EType[slot])
			}
		}
	}
	if g.Type == nil {
		g.NumTypes = 1
	}

	x := tensor.Get(len(a.In), a.InDim)
	copy(x.Data(), a.Rows)
	part := train.ReusePlanWith(w.pt, s.plan, g)
	gc := nn.NewGraphCtx(g)
	w.ectx.TraceID = a.Batch
	out, err := kernels.RunModelLayer(w.ectx, gc, w.replica, a.Level-1, x, part, s.plan.OpPlan)
	tensor.Put(x)
	if err != nil {
		return nil, err
	}
	defer tensor.Put(out)

	r := &ComputeReply{Rows: make([]float32, len(a.Verts)*a.OutDim)}
	relu := a.Level < s.layers
	for i, v := range a.Verts {
		src := out.Row(int(idx[v]))
		dst := r.Rows[i*a.OutDim : (i+1)*a.OutDim]
		if relu {
			for j, x := range src {
				if x > 0 {
					dst[j] = x
				} else {
					dst[j] = 0
				}
			}
		} else {
			copy(dst, src)
		}
		s.cache.Put(a.Ver, a.Level, v, s.degree(v), dst)
	}
	return r, nil
}
