// Package shard is the sharded serving tier: the frozen CSR and feature
// rows are split into contiguous vertex ranges, each owned by one
// simulated node (a Shard) with its own model replicas, execution
// contexts and per-layer hot-vertex cache, and a router (Fleet) fans
// every micro-batch's sampled frontier out to the owners, collects the
// partial per-layer embeddings and aggregates them through the same
// leveled deterministic forward single-node serving uses — so sharded
// logits are bitwise-identical to single-node at any shard count, engine
// and worker count. Slow or failed shards are absorbed by a retry/hedge/
// timeout ladder at the shard.rpc fault site, mirroring the distributed
// trainer's exchange ladder.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wisegraph/internal/core"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/graph"
	"wisegraph/internal/hotcache"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/tensor"
	"wisegraph/internal/train"
)

// Shard owns the contiguous vertex range [lo, hi): the CSR rows (in-
// edges) and feature rows of those vertices, a worker pool of model
// replicas that serves Expand/Compute RPCs, and the range's per-layer
// hot-vertex cache. The underlying CSR and feature arrays are shared
// process memory — this is a simulated fleet — but the shard touches
// only its owned range, and every RPC validates ownership so a routing
// bug surfaces as an error instead of silently reading another node's
// data.
type Shard struct {
	id     int
	lo, hi int32
	csr    *graph.CSR
	feats  *tensor.Tensor
	typed  bool
	ntypes int

	layers int
	fan    []int
	seed   uint64
	plan   *joint.Result
	engine string
	src    *nn.Model

	cache *hotcache.Cache

	reqCh    chan call
	closed   chan struct{}
	wg       sync.WaitGroup
	inflight atomic.Int64
	devs     []*device.Device
}

// shardWorker is one RPC-serving goroutine's private compute state.
type shardWorker struct {
	replica *nn.Model
	ver     uint64
	pt      *core.Partitioner
	ectx    *exec.Ctx
}

// newShard builds one shard and starts its worker pool. Replicas are
// stamped out before any goroutine starts so construction errors surface
// synchronously.
func newShard(id int, lo, hi int32, f *Fleet) (*Shard, error) {
	s := &Shard{
		id: id, lo: lo, hi: hi,
		csr:    f.csr,
		feats:  f.feats,
		typed:  f.csr.EType != nil,
		ntypes: f.ntypes,
		layers: f.src.Cfg.Layers,
		fan:    f.cfg.Fanouts,
		seed:   f.cfg.Seed,
		plan:   f.plan,
		engine: f.cfg.Engine,
		src:    f.src,
		cache:  hotcache.New(hotcache.Config{Budget: f.cfg.CacheBudget, Shards: f.cfg.CacheShards}),
		reqCh:  make(chan call, f.cfg.Workers),
		closed: make(chan struct{}),
	}
	workers := make([]*shardWorker, f.cfg.Workers)
	for i := range workers {
		replica, err := nn.NewModel(f.src.Cfg)
		if err != nil {
			return nil, err
		}
		if err := replica.CopyParamsFrom(f.src); err != nil {
			return nil, err
		}
		dev := device.New(*f.cfg.Spec)
		s.devs = append(s.devs, dev)
		ectx := exec.NewCtx(dev)
		ectx.Engine = f.cfg.Engine
		workers[i] = &shardWorker{replica: replica, pt: core.NewPartitioner(), ectx: ectx}
	}
	for _, w := range workers {
		s.wg.Add(1)
		go s.serve(w)
	}
	return s, nil
}

// serve is one worker's RPC loop. Before each call the worker re-syncs
// its replica if the request carries a newer model version; the caller
// (the router, under the serve engine's model read-lock) guarantees no
// reload runs concurrently, so all RPCs of one batch see one coherent
// parameter set.
func (s *Shard) serve(w *shardWorker) {
	defer s.wg.Done()
	defer w.pt.Release()
	for c := range s.reqCh {
		var (
			ver uint64
			r   reply
		)
		if c.expand != nil {
			ver = c.expand.Ver
		} else {
			ver = c.compute.Ver
		}
		if ver != w.ver {
			if err := w.replica.CopyParamsFrom(s.src); err != nil {
				c.reply <- reply{err: fmt.Errorf("shard %d: replica re-sync: %w", s.id, err)}
				continue
			}
			w.ver = ver
		}
		if c.expand != nil {
			r.expand, r.err = s.handleExpand(c.expand)
		} else {
			r.compute, r.err = s.handleCompute(w, c.compute)
		}
		c.reply <- r
	}
}

// close stops the worker pool after in-flight RPCs finish. The router
// only calls it once no caller can dispatch again.
func (s *Shard) close() {
	close(s.closed)
	close(s.reqCh)
	s.wg.Wait()
}

// InFlight returns the shard's admitted-but-unanswered RPC count — the
// per-node half of the fleet-wide drain invariant.
func (s *Shard) InFlight() int64 { return s.inflight.Load() }

// checkOwned rejects any vertex outside the shard's range: the router
// must never ask a node for data it does not own.
func (s *Shard) checkOwned(verts []int32) error {
	for _, v := range verts {
		if v < s.lo || v >= s.hi {
			return fmt.Errorf("shard %d: vertex %d outside owned range [%d,%d)", s.id, v, s.lo, s.hi)
		}
	}
	return nil
}

func (s *Shard) degree(v int32) int32 { return s.csr.RowPtr[v+1] - s.csr.RowPtr[v] }

// handleExpand resolves one level's owned span: cache probes for every
// vertex, deterministic frontier sampling for the misses. At level 0 the
// shard also gathers its owned feature rows for the misses (and admits
// them), so input features never need a second round trip.
func (s *Shard) handleExpand(a *ExpandArgs) (*ExpandReply, error) {
	if err := s.checkOwned(a.Verts); err != nil {
		return nil, err
	}
	r := &ExpandReply{
		Hit:  make([]bool, len(a.Verts)),
		Rows: make([]float32, len(a.Verts)*a.Dim),
	}
	if a.Level > 0 {
		r.Srcs = make([][]int32, len(a.Verts))
	}
	fan := 0
	if a.Level > 0 {
		fan = s.fan[s.layers-a.Level]
	}
	for i, v := range a.Verts {
		row := r.Rows[i*a.Dim : (i+1)*a.Dim]
		if s.cache.Get(a.Ver, a.Level, v, row) {
			r.Hit[i] = true
			continue
		}
		if a.Level == 0 {
			copy(row, s.feats.Row(int(v)))
			s.cache.Put(a.Ver, 0, v, s.degree(v), row)
			continue
		}
		slots := graph.DetSample(nil, s.csr, v, fan, s.seed)
		srcs := make([]int32, len(slots))
		for j, slot := range slots {
			srcs[j] = s.csr.Col[slot]
		}
		r.Srcs[i] = srcs
	}
	return r, nil
}

// handleCompute runs layer Level-1 for the shard's owned miss targets:
// it rebuilds each target's sampled block edges (same deterministic
// sampler, same canonical ascending-target/contiguous-sample edge order
// the bitwise-parity argument relies on) over the shipped input rows,
// executes the layer under the frozen joint plan with the shard's
// engine, applies the between-layer activation, and admits the fresh
// rows into the shard's cache.
func (s *Shard) handleCompute(w *shardWorker, a *ComputeArgs) (*ComputeReply, error) {
	if err := s.checkOwned(a.Verts); err != nil {
		return nil, err
	}
	if len(a.Rows) != len(a.In)*a.InDim {
		return nil, fmt.Errorf("shard %d: %d input rows elements for %d vertices × dim %d",
			s.id, len(a.Rows), len(a.In), a.InDim)
	}
	idx := make(map[int32]int32, len(a.In))
	for i, v := range a.In {
		idx[v] = int32(i)
	}
	fan := s.fan[s.layers-a.Level]
	g := &graph.Graph{NumVertices: len(a.In), NumTypes: s.ntypes}
	for _, v := range a.Verts {
		d, ok := idx[v]
		if !ok {
			return nil, fmt.Errorf("shard %d: target %d missing from input set", s.id, v)
		}
		for _, slot := range graph.DetSample(nil, s.csr, v, fan, s.seed) {
			src, ok := idx[s.csr.Col[slot]]
			if !ok {
				return nil, fmt.Errorf("shard %d: source %d of target %d missing from input set",
					s.id, s.csr.Col[slot], v)
			}
			g.Src = append(g.Src, src)
			g.Dst = append(g.Dst, d)
			if s.typed {
				g.Type = append(g.Type, s.csr.EType[slot])
			}
		}
	}
	if g.Type == nil {
		g.NumTypes = 1
	}

	x := tensor.Get(len(a.In), a.InDim)
	copy(x.Data(), a.Rows)
	part := train.ReusePlanWith(w.pt, s.plan, g)
	gc := nn.NewGraphCtx(g)
	w.ectx.TraceID = a.Batch
	out, err := kernels.RunModelLayer(w.ectx, gc, w.replica, a.Level-1, x, part, s.plan.OpPlan)
	tensor.Put(x)
	if err != nil {
		return nil, err
	}
	defer tensor.Put(out)

	r := &ComputeReply{Rows: make([]float32, len(a.Verts)*a.OutDim)}
	relu := a.Level < s.layers
	for i, v := range a.Verts {
		src := out.Row(int(idx[v]))
		dst := r.Rows[i*a.OutDim : (i+1)*a.OutDim]
		if relu {
			for j, x := range src {
				if x > 0 {
					dst[j] = x
				} else {
					dst[j] = 0
				}
			}
		} else {
			copy(dst, src)
		}
		s.cache.Put(a.Ver, a.Level, v, s.degree(v), dst)
	}
	return r, nil
}
