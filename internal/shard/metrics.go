package shard

import (
	"fmt"
	"net/http"
	"sort"

	"wisegraph/internal/fault"
	"wisegraph/internal/obs"
)

// The daemon-side observability surface: WriteMetrics renders the
// server's counters as Prometheus 0.0.4 text, and MetricsHandler mounts
// it (plus a liveness probe) on an http.ServeMux so wisegraph-shard can
// expose a -metrics-addr listener and fleet dashboards stop scraping
// stderr.

// WriteMetrics renders the daemon's metrics in Prometheus exposition
// format: identity gauges (shard/replica/owned range, once admitted),
// per-kind RPC counters with service latency histograms, exact frame
// bytes both ways, the in-flight gauge, the shard cache's accounting,
// per-stage timings and — when a chaos schedule is active — the per-site
// fault injection counters.
func (sv *Server) WriteMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)

	if h := sv.Ident(); h != nil {
		ident := fmt.Sprintf("shard=%q,replica=%q", fmt.Sprint(h.ShardID), fmt.Sprint(h.Replica))
		p.Gauge("wisegraph_shard_id", ident, float64(h.ShardID))
		p.Gauge("wisegraph_shard_replica", ident, float64(h.Replica))
		p.Gauge("wisegraph_shard_range_lo", ident, float64(h.Lo))
		p.Gauge("wisegraph_shard_range_hi", ident, float64(h.Hi))
	}

	p.Counter("wisegraph_shard_rpcs_total", `type="expand"`, float64(sv.stats.expands.Load()))
	p.Counter("wisegraph_shard_rpcs_total", `type="compute"`, float64(sv.stats.computes.Load()))
	p.Counter("wisegraph_shard_rpc_errors_total", "", float64(sv.stats.errors.Load()))
	p.Counter("wisegraph_shard_bytes_in_total", "", float64(sv.stats.bytesIn.Load()))
	p.Counter("wisegraph_shard_bytes_out_total", "", float64(sv.stats.bytesOut.Load()))
	p.Gauge("wisegraph_shard_in_flight", "", float64(sv.InFlight()))
	p.Histogram("wisegraph_shard_rpc_duration_seconds", `type="expand"`, &sv.stats.latExp)
	p.Histogram("wisegraph_shard_rpc_duration_seconds", `type="compute"`, &sv.stats.latCmp)

	if s := sv.Shard(); s != nil {
		cs := s.Cache().Snapshot()
		p.Counter("wisegraph_shard_cache_hits_total", "", float64(cs.Hits))
		p.Counter("wisegraph_shard_cache_misses_total", "", float64(cs.Misses))
		p.Counter("wisegraph_shard_cache_admitted_total", "", float64(cs.Admitted))
		p.Counter("wisegraph_shard_cache_evicted_total", "", float64(cs.Evicted))
		p.Gauge("wisegraph_shard_cache_bytes", "", float64(cs.Bytes))
		p.Gauge("wisegraph_shard_cache_entries", "", float64(cs.Entries))
		p.Gauge("wisegraph_shard_cache_capacity_bytes", "", float64(cs.Capacity))
	}

	p.StageHistograms("wisegraph_stage_duration_seconds")

	if snap := fault.Snapshot(); snap != nil {
		sites := make([]string, 0, len(snap))
		for site := range snap {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		for _, site := range sites {
			c := snap[site]
			p.Counter("wisegraph_fault_draws_total", `site="`+site+`"`, float64(c.Draws))
			p.Counter("wisegraph_fault_injected_total", `site="`+site+`",kind="error"`, float64(c.Errors))
			p.Counter("wisegraph_fault_injected_total", `site="`+site+`",kind="corrupt"`, float64(c.Corrupts))
			p.Counter("wisegraph_fault_injected_total", `site="`+site+`",kind="latency"`, float64(c.Latencies))
		}
	}
}

// MetricsHandler returns the daemon's HTTP surface: /metrics (Prometheus
// text) and /healthz (200 "ok" — liveness only; readiness is the TCP
// handshake itself, which validates far more than a probe could).
func (sv *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		sv.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
