package shard

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/shard/wire"
	"wisegraph/internal/tensor"
)

// The TCP-transport battery: the same Forward over real localhost
// sockets must be bitwise-identical to the in-process fleet, the
// handshake must reject anything that cannot serve identically, broken
// connections must heal through the retry ladder, and the dispatch/close
// shutdown race must stay dead (run this file under -race).

// testNode bundles the frozen state both ends of a wire share.
type testNode struct {
	g     *graph.Graph
	csr   *graph.CSR
	feats *tensor.Tensor
	model *nn.Model
	plan  *joint.Result
}

func newTestNode(t *testing.T, v, edges int, seed uint64) *testNode {
	t.Helper()
	g := testGraph(t, v, edges, seed)
	const dim = 8
	feats := tensor.New(g.NumVertices, dim)
	data := feats.Data()
	rng := tensor.NewRNG(5)
	for i := range data {
		data[i] = rng.Float32()
	}
	m, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: dim, Hidden: 8, OutDim: 3,
		Layers: 2, NumTypes: 1, Seed: 7,
	})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return &testNode{
		g: g, csr: g.BuildCSRByDst(), feats: feats, model: m,
		plan: joint.Search(g, m.Cfg.Kind, m.Cfg.Hidden, m.Cfg.Hidden, m.Cfg.NumTypes, joint.Options{}),
	}
}

// startDaemon runs one in-process Server on a real localhost socket and
// returns its address — the daemon side of the wire without the process
// boundary (the cross-process path is covered in internal/serve).
func startDaemon(t *testing.T, n *testNode, model *nn.Model) string {
	t.Helper()
	sv := NewServer(n.csr, n.feats, n.g.NumTypes, model, NodeConfig{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go sv.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		sv.Close()
	})
	return ln.Addr().String()
}

func fleetConfig() Config {
	return Config{Workers: 2, Fanouts: []int{4, 4}, Seed: 3, Timeout: 2 * time.Second}
}

func forwardData(t *testing.T, f *Fleet, seeds []int32) []float32 {
	t.Helper()
	id := obs.NewID()
	out, _, err := f.Forward(id, 0, seeds, obs.Begin(obs.StageSample, id))
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	got := append([]float32(nil), out.Data()...)
	tensor.Put(out)
	return got
}

// TestTCPForwardMatchesInProcess drives the full RPC protocol over real
// sockets — Hello handshake, Expand/Expand level-0 gather, Compute — and
// demands bitwise-equal logits against the in-process fleet at 1, 2 and
// 4 remote shards.
func TestTCPForwardMatchesInProcess(t *testing.T) {
	n := newTestNode(t, 100, 600, 6)
	seeds := []int32{0, 13, 50, 99}

	local, err := NewFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, fleetConfig())
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(local.Close)
	want := forwardData(t, local, seeds)

	for _, shards := range []int{1, 2, 4} {
		addrs := make([]string, shards)
		for i := range addrs {
			addrs[i] = startDaemon(t, n, n.model)
		}
		remote, err := NewRemoteFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, fleetConfig(), addrs)
		if err != nil {
			t.Fatalf("NewRemoteFleet(%d): %v", shards, err)
		}
		if !remote.Remote() {
			t.Fatal("remote fleet does not report Remote()")
		}
		got := forwardData(t, remote, seeds)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d logits[%d] = %v over TCP, want %v in-process", shards, i, got[i], want[i])
			}
		}
		// Byte accounting must reflect real encoded traffic on the wire.
		for i, st := range remote.Stats() {
			if st.RPCs > 0 && (st.BytesIn == 0 || st.BytesOut == 0) {
				t.Fatalf("shard %d: %d RPCs but bytesIn=%d bytesOut=%d", i, st.RPCs, st.BytesIn, st.BytesOut)
			}
		}
		remote.Close()
	}
}

// TestTCPHelloRejection pins the handshake validation: a daemon with a
// different checkpoint (parameter hash), a claimed range the placement
// does not derive, or an unknown protocol version must be refused at
// connect time with a descriptive error.
func TestTCPHelloRejection(t *testing.T) {
	n := newTestNode(t, 100, 600, 6)

	otherModel, err := nn.NewModel(nn.Config{
		Kind: nn.SAGE, InDim: 8, Hidden: 8, OutDim: 3,
		Layers: 2, NumTypes: 1, Seed: 8, // different init seed → different params
	})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	addr := startDaemon(t, n, otherModel)
	if _, err := NewRemoteFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, fleetConfig(), []string{addr}); err == nil {
		t.Fatal("fleet built against a daemon holding different parameters")
	} else if !strings.Contains(err.Error(), "hello rejected") || !strings.Contains(err.Error(), "different checkpoint") {
		t.Fatalf("wrong error for parameter mismatch: %v", err)
	}

	addr = startDaemon(t, n, n.model)
	bad := &wire.Hello{Proto: wire.ProtoVersion + 41}
	if _, err := newTCPConn(addr, bad, time.Second); err == nil {
		t.Fatal("unknown protocol version accepted")
	} else if !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("wrong error for protocol mismatch: %v", err)
	}

	planBytes, err := n.plan.MarshalPlan()
	if err != nil {
		t.Fatalf("MarshalPlan: %v", err)
	}
	wrongRange := &wire.Hello{
		Proto: wire.ProtoVersion, ShardID: 0, Shards: 2, Replicas: 1,
		Lo: 1, Hi: 99, // not what edge placement derives
		NumVertices: int64(len(n.csr.RowPtr) - 1), NumEdges: int64(len(n.csr.Col)),
		NumTypes: 1, InDim: 8, Hidden: 8, OutDim: 3, Layers: 2,
		Fanouts: []int32{4, 4}, Seed: 3, ParamSum: ParamSum(n.model),
		Kind: "SAGE", Placement: "edge", Plan: planBytes,
	}
	if _, err := newTCPConn(addr, wrongRange, time.Second); err == nil {
		t.Fatal("bogus owned range accepted")
	} else if !strings.Contains(err.Error(), "placement derives") {
		t.Fatalf("wrong error for range mismatch: %v", err)
	}
}

// TestTCPReconnect severs the live pipelined connection under the router
// and demands the next Forward heal transparently: the demux fails the
// connection as a unit, a racing write surfaces as a TransportError the
// ladder absorbs, the endpoint redials and re-handshakes, and the logits
// still come back bitwise-identical.
func TestTCPReconnect(t *testing.T) {
	n := newTestNode(t, 100, 600, 6)
	seeds := []int32{0, 13, 50, 99}
	addr := startDaemon(t, n, n.model)
	remote, err := NewRemoteFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, fleetConfig(), []string{addr})
	if err != nil {
		t.Fatalf("NewRemoteFleet: %v", err)
	}
	t.Cleanup(remote.Close)
	want := forwardData(t, remote, seeds)

	// Sever the live stream out from under the endpoint; the next calls
	// must redial (either eagerly, after the demux notices, or through a
	// TransportError retry if they raced the failure detection).
	tc := remote.conns[0][0].(*tcpConn)
	tc.mu.Lock()
	pc := tc.live
	tc.mu.Unlock()
	if pc == nil {
		t.Fatal("no live connection after construction's eager dial")
	}
	pc.nc.Close()

	got := forwardData(t, remote, seeds)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logits[%d] changed across reconnect: %v != %v", i, got[i], want[i])
		}
	}
	if _, _, _, failures := remote.Resilience(); failures != 0 {
		t.Fatalf("%d permanent failures across reconnect", failures)
	}
	tc.mu.Lock()
	relive := tc.live
	tc.mu.Unlock()
	if relive == pc {
		t.Fatal("severed connection still installed as live")
	}
}

// TestTCPApplicationErrorNotRetried pins the transport/application error
// split: a deterministic shard-side rejection (vertex outside the owned
// range) must come back as a plain error on the first attempt — one RPC,
// no retries burned, connection still healthy.
func TestTCPApplicationErrorNotRetried(t *testing.T) {
	n := newTestNode(t, 100, 600, 6)
	addr := startDaemon(t, n, n.model)
	remote, err := NewRemoteFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, fleetConfig(), []string{addr})
	if err != nil {
		t.Fatalf("NewRemoteFleet: %v", err)
	}
	t.Cleanup(remote.Close)

	conn := remote.conns[0][0]
	ctx := context.Background()
	if _, err := conn.Expand(ctx, &ExpandArgs{Level: 0, Dim: 8, Verts: []int32{-1}}); err == nil {
		t.Fatal("out-of-range vertex accepted over the wire")
	} else if !strings.Contains(err.Error(), "outside owned range") {
		t.Fatalf("wrong error: %v", err)
	}
	if _, err := conn.Expand(ctx, &ExpandArgs{Level: 0, Dim: 5, Verts: []int32{1}}); err == nil {
		t.Fatal("wrong Dim accepted over the wire")
	} else if !strings.Contains(err.Error(), "request claims 5") {
		t.Fatalf("wrong error: %v", err)
	}
	// The connection survived both rejections: a valid call still works.
	if _, err := conn.Expand(ctx, &ExpandArgs{Level: 0, Dim: 8, Verts: []int32{1}}); err != nil {
		t.Fatalf("healthy call after rejections: %v", err)
	}
}

// TestDispatchCloseRace is the regression for the send-on-closed-channel
// panic: hedged or straggling dispatches racing Fleet.Close used to
// select `reqCh <- c` after `close(reqCh)` and bring the process down.
// Shutdown now signals through the closed channel only; a straggler gets
// a draining error, never a panic. 100 iterations under -race.
func TestDispatchCloseRace(t *testing.T) {
	n := newTestNode(t, 40, 200, 2)
	for i := 0; i < 100; i++ {
		s, err := NewShard(0, 0, int32(n.g.NumVertices), n.csr, n.feats, n.g.NumTypes, n.model, n.plan,
			NodeConfig{Workers: 2, Fanouts: []int{4, 4}, Seed: 3})
		if err != nil {
			t.Fatalf("NewShard: %v", err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for k := 0; k < 25; k++ {
					v := int32((w*25 + k) % n.g.NumVertices)
					// Draining errors are expected once Close lands; the
					// invariant under test is no panic and no lost reply.
					s.Expand(context.Background(), &ExpandArgs{Level: 0, Dim: 8, Verts: []int32{v}})
				}
			}(w)
		}
		close(start)
		s.Close() // races the dispatchers above
		wg.Wait()
		if got := s.InFlight(); got != 0 {
			t.Fatalf("iteration %d: %d RPCs still in flight after Close+drain", i, got)
		}
	}
}
