package shard

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"wisegraph/internal/shard/wire"
)

// The pipelining battery: the transport must sustain multiple in-flight
// RPCs on one connection, route out-of-order replies by reqid, and
// survive Close/redial/demux races without the send-on-closed-channel
// class of bug (run under -race).

// validHello builds the Hello a daemon over n will accept for a 1-span,
// 1-replica fleet.
func validHello(t *testing.T, n *testNode) *wire.Hello {
	t.Helper()
	planBytes, err := n.plan.MarshalPlan()
	if err != nil {
		t.Fatalf("MarshalPlan: %v", err)
	}
	return &wire.Hello{
		Proto: wire.ProtoVersion, ShardID: 0, Shards: 1, Replica: 0, Replicas: 1,
		Lo: 0, Hi: int32(n.g.NumVertices),
		NumVertices: int64(len(n.csr.RowPtr) - 1), NumEdges: int64(len(n.csr.Col)),
		NumTypes: 1, InDim: 8, Hidden: 8, OutDim: 3, Layers: 2,
		Fanouts: []int32{4, 4}, Seed: 3, ParamSum: ParamSum(n.model),
		Kind: "SAGE", Placement: "edge", Plan: planBytes,
	}
}

// TestPipelinedOutOfOrder scripts a fake daemon that answers two
// concurrent requests in REVERSE order and asserts each caller gets the
// reply tagged with its own reqid — plus that both RPCs were genuinely
// in flight at once (the ≥2-in-flight pipelining acceptance bar).
func TestPipelinedOutOfOrder(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	// The scripted peer: accept one connection, OK the Hello, read BOTH
	// requests before answering either, then reply in reverse arrival
	// order — each reply's first row encodes the request's first vertex,
	// so a mis-routed reply is unmissable.
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if t, _, _, err := wire.ReadFrame(nc); err != nil || t != wire.MsgHello {
			return
		}
		nc.Write(wire.AppendHelloOK(nil))
		type req struct {
			id   uint32
			vert int32
		}
		var reqs []req
		for len(reqs) < 2 {
			mt, reqid, payload, err := wire.ReadFrame(nc)
			if err != nil || mt != wire.MsgExpand {
				return
			}
			args, err := wire.DecodeExpandArgs(payload)
			if err != nil {
				return
			}
			reqs = append(reqs, req{id: reqid, vert: args.Verts[0]})
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			rep := &wire.ExpandReply{Hit: []bool{true}, Rows: []float32{float32(reqs[i].vert)}}
			nc.Write(wire.AppendExpandReply(nil, reqs[i].id, rep))
		}
	}()

	// Handshake directly — the scripted peer validates nothing.
	c, err := newTCPConn(ln.Addr().String(), &wire.Hello{Proto: wire.ProtoVersion}, 5*time.Second)
	if err != nil {
		t.Fatalf("newTCPConn: %v", err)
	}
	defer c.close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, vert := range []int32{7, 42} {
		wg.Add(1)
		go func(i int, vert int32) {
			defer wg.Done()
			rep, err := c.Expand(context.Background(), &ExpandArgs{Level: 1, Dim: 1, Verts: []int32{vert}})
			if err != nil {
				errs[i] = err
				return
			}
			if len(rep.Rows) != 1 || rep.Rows[0] != float32(vert) {
				t.Errorf("caller %d (vert %d) got rows %v — reply routed to the wrong waiter", i, vert, rep.Rows)
			}
		}(i, vert)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := c.MaxInFlight(); got < 2 {
		t.Fatalf("max in-flight %d on one connection, want >= 2 (transport not pipelined)", got)
	}
}

// TestPipelinedDispatchRace hammers one endpoint with concurrent calls
// while the live connection is severed (forcing redial) and the endpoint
// is closed mid-flight — 100 iterations under -race. The invariant is
// the PR 9 shutdown contract carried over to the pipelined transport: no
// send on a closed channel, no deadlock, every call returns.
func TestPipelinedDispatchRace(t *testing.T) {
	n := newTestNode(t, 40, 200, 2)
	addr := startDaemon(t, n, n.model)
	hello := validHello(t, n)

	for i := 0; i < 100; i++ {
		c, err := newTCPConn(addr, hello, time.Second)
		if err != nil {
			t.Fatalf("iteration %d: newTCPConn: %v", i, err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for k := 0; k < 5; k++ {
					// Errors are expected once close/sever land; the
					// invariant is no panic and no stuck call.
					c.Expand(context.Background(), &ExpandArgs{Level: 0, Dim: 8, Verts: []int32{int32((w*5 + k) % n.g.NumVertices)}})
				}
			}(w)
		}
		// One goroutine severs the live stream (redial path), one closes
		// the endpoint (shutdown path) — both race the callers above.
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			c.mu.Lock()
			pc := c.live
			c.mu.Unlock()
			if pc != nil {
				pc.nc.Close()
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			c.close()
		}()
		close(start)
		wg.Wait()
		if got := c.inflight.Load(); got != 0 {
			t.Fatalf("iteration %d: %d RPCs still in flight after close+drain", i, got)
		}
	}
}

// TestPipelinedTimeoutKeepsStream pins the per-call-timer design: a call
// whose reply never arrives times out alone — the shared stream stays
// live, and a later call on the same connection succeeds without a
// redial (the stale reply, if it ever lands, is dropped by reqid).
func TestPipelinedTimeoutKeepsStream(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if t, _, _, err := wire.ReadFrame(nc); err != nil || t != wire.MsgHello {
			return
		}
		nc.Write(wire.AppendHelloOK(nil))
		for {
			mt, reqid, payload, err := wire.ReadFrame(nc)
			if err != nil || mt != wire.MsgExpand {
				return
			}
			args, err := wire.DecodeExpandArgs(payload)
			if err != nil {
				return
			}
			if args.Verts[0] == 0 {
				continue // swallow: this caller must time out
			}
			rep := &wire.ExpandReply{Hit: []bool{true}, Rows: []float32{float32(args.Verts[0])}}
			nc.Write(wire.AppendExpandReply(nil, reqid, rep))
		}
	}()

	c, err := newTCPConn(ln.Addr().String(), &wire.Hello{Proto: wire.ProtoVersion}, 150*time.Millisecond)
	if err != nil {
		t.Fatalf("newTCPConn: %v", err)
	}
	defer c.close()

	c.mu.Lock()
	before := c.live
	c.mu.Unlock()

	_, err = c.Expand(context.Background(), &ExpandArgs{Level: 1, Dim: 1, Verts: []int32{0}})
	var te *TransportError
	if !errors.As(err, &te) || !te.Timeout {
		t.Fatalf("swallowed call error = %v, want TransportError{Timeout: true}", err)
	}

	rep, err := c.Expand(context.Background(), &ExpandArgs{Level: 1, Dim: 1, Verts: []int32{5}})
	if err != nil {
		t.Fatalf("call after a timeout failed: %v (stream was poisoned)", err)
	}
	if rep.Rows[0] != 5 {
		t.Fatalf("rows %v after timeout, want [5]", rep.Rows)
	}
	c.mu.Lock()
	after := c.live
	c.mu.Unlock()
	if after != before {
		t.Fatal("timeout forced a redial — the per-call timer should leave the stream live")
	}
}
