package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// The codec battery: every message round-trips exactly (including
// zero-length and typed-edge payloads), Size* predicts encoded sizes to
// the byte, request ids echo through framing untouched, and every
// accepted payload is canonical — decode∘encode is the identity on it
// (the fuzz harness pins that for hostile inputs).

func frame(t *testing.T, b []byte) (MsgType, uint32, []byte) {
	t.Helper()
	mt, reqid, payload, err := ReadFrame(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return mt, reqid, payload
}

func expandArgsCases() []*ExpandArgs {
	return []*ExpandArgs{
		{},
		{Batch: 7, Ver: 3, Level: 0, Dim: 12, Verts: []int32{0, 5, 9}},
		{Batch: ^uint64(0), Ver: 1, Level: 2, Dim: 1, Verts: []int32{2147483647, -1}},
		{Level: -3, Dim: -7}, // negatives must survive so validation can reject them
	}
}

func TestExpandArgsRoundTrip(t *testing.T) {
	for i, a := range expandArgsCases() {
		id := uint32(i * 1000003)
		b := AppendExpandArgs(nil, id, a)
		if len(b) != SizeExpandArgs(a) {
			t.Fatalf("SizeExpandArgs=%d, encoded %d", SizeExpandArgs(a), len(b))
		}
		mt, reqid, payload := frame(t, b)
		if mt != MsgExpand {
			t.Fatalf("type %v", mt)
		}
		if reqid != id {
			t.Fatalf("reqid %d echoed as %d", id, reqid)
		}
		got, err := DecodeExpandArgs(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("round trip %+v != %+v", got, a)
		}
	}
}

func expandReplyCases() []*ExpandReply {
	return []*ExpandReply{
		{},
		{Hit: []bool{true, false}, Rows: []float32{1, -2.5, float32(math.Inf(1)), 0}},
		{
			Hit:  []bool{false, false, true},
			Rows: []float32{math.Float32frombits(0x7fc00001)}, // NaN payload bits must survive
			Srcs: [][]int32{{1, 2}, nil, {9}},
		},
	}
}

func TestExpandReplyRoundTrip(t *testing.T) {
	for _, r := range expandReplyCases() {
		b := AppendExpandReply(nil, 42, r)
		if len(b) != SizeExpandReply(r) {
			t.Fatalf("SizeExpandReply=%d, encoded %d", SizeExpandReply(r), len(b))
		}
		mt, reqid, payload := frame(t, b)
		if mt != MsgExpandReply {
			t.Fatalf("type %v", mt)
		}
		if reqid != 42 {
			t.Fatalf("reqid 42 echoed as %d", reqid)
		}
		got, err := DecodeExpandReply(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Compare bitwise: NaN != NaN under DeepEqual's float semantics is
		// fine (DeepEqual on float32 NaN returns false), so compare bits.
		if len(got.Rows) != len(r.Rows) {
			t.Fatalf("rows %d != %d", len(got.Rows), len(r.Rows))
		}
		for i := range got.Rows {
			if math.Float32bits(got.Rows[i]) != math.Float32bits(r.Rows[i]) {
				t.Fatalf("row bits %d: %08x != %08x", i, math.Float32bits(got.Rows[i]), math.Float32bits(r.Rows[i]))
			}
		}
		if !reflect.DeepEqual(got.Hit, r.Hit) || !reflect.DeepEqual(got.Srcs, r.Srcs) {
			t.Fatalf("round trip %+v != %+v", got, r)
		}
	}
}

func TestComputeRoundTrip(t *testing.T) {
	args := []*ComputeArgs{
		{},
		{
			Batch: 11, Ver: 2, Level: 1, InDim: 8, OutDim: 4,
			Verts: []int32{3, 7}, In: []int32{1, 3, 7, 9},
			Rows: []float32{0.5, -1, 2, 3, 4, 5, 6, 7},
		},
	}
	for _, a := range args {
		b := AppendComputeArgs(nil, 7, a)
		if len(b) != SizeComputeArgs(a) {
			t.Fatalf("SizeComputeArgs=%d, encoded %d", SizeComputeArgs(a), len(b))
		}
		mt, reqid, payload := frame(t, b)
		if mt != MsgCompute {
			t.Fatalf("type %v", mt)
		}
		if reqid != 7 {
			t.Fatalf("reqid 7 echoed as %d", reqid)
		}
		got, err := DecodeComputeArgs(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("round trip %+v != %+v", got, a)
		}
	}
	reps := []*ComputeReply{{}, {Rows: []float32{1, 2, -3}}}
	for _, r := range reps {
		b := AppendComputeReply(nil, ^uint32(0), r)
		if len(b) != SizeComputeReply(r) {
			t.Fatalf("SizeComputeReply=%d, encoded %d", SizeComputeReply(r), len(b))
		}
		mt, reqid, payload := frame(t, b)
		if mt != MsgComputeReply {
			t.Fatalf("type %v", mt)
		}
		if reqid != ^uint32(0) {
			t.Fatalf("max reqid echoed as %d", reqid)
		}
		got, err := DecodeComputeReply(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip %+v != %+v", got, r)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	hs := []*Hello{
		{},
		{
			Proto: ProtoVersion, ShardID: 1, Shards: 4, Replica: 1, Replicas: 2,
			Lo: 100, Hi: 250,
			NumVertices: 423, NumEdges: 5912, NumTypes: 8,
			InDim: 128, Hidden: 16, OutDim: 40, Layers: 2,
			Fanouts: []int32{4, 4}, Seed: 9, ParamSum: 0xdeadbeefcafef00d,
			Kind: "RGCN", Engine: "fused", Placement: "edge",
			Plan: []byte(`{"version":1}`),
		},
	}
	for _, h := range hs {
		b := AppendHello(nil, h)
		mt, reqid, payload := frame(t, b)
		if mt != MsgHello {
			t.Fatalf("type %v", mt)
		}
		if reqid != 0 {
			t.Fatalf("handshake frames must use reqid 0, got %d", reqid)
		}
		got, err := DecodeHello(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("round trip %+v != %+v", got, h)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	for _, msg := range []string{"", "shard 3: vertex 9 outside owned range [0,5)"} {
		mt, reqid, payload := frame(t, AppendError(nil, 17, msg))
		if mt != MsgError {
			t.Fatalf("type %v", mt)
		}
		if reqid != 17 {
			t.Fatalf("reqid 17 echoed as %d", reqid)
		}
		if got := DecodeError(payload); got != msg {
			t.Fatalf("round trip %q != %q", got, msg)
		}
	}
}

func TestStrictDecoding(t *testing.T) {
	good := AppendExpandArgs(nil, 1, &ExpandArgs{Dim: 4, Verts: []int32{1}})
	payload := good[headerLen:]

	// Truncation anywhere must fail, never panic or mis-parse.
	for i := 0; i < len(payload); i++ {
		if _, err := DecodeExpandArgs(payload[:i]); err == nil {
			t.Fatalf("truncated to %d bytes decoded", i)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeExpandArgs(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Non-0/1 bool bytes are rejected (canonical form).
	rep := AppendExpandReply(nil, 1, &ExpandReply{Hit: []bool{true}})
	bad := append([]byte(nil), rep[headerLen:]...)
	bad[4] = 2 // the hit byte after the count prefix
	if _, err := DecodeExpandReply(bad); err == nil {
		t.Fatal("bool byte 2 accepted")
	}
	// A hostile element count cannot drive a huge allocation: the count
	// is checked against the remaining bytes before any make().
	hostile := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeComputeReply(hostile); err == nil {
		t.Fatal("hostile count accepted")
	}
}

// TestReadFrameRejectsHostileHeaders pins the pre-allocation checks on
// the frame header: oversize lengths, and lengths too short to hold the
// type byte plus request id (0..4), are protocol violations rejected
// before any payload buffer is made — a hostile reqid/length combination
// can never drive an allocation or a mis-framed read.
func TestReadFrameRejectsHostileHeaders(t *testing.T) {
	var hdr []byte
	hdr = append(hdr, 0xff, 0xff, 0xff, 0xff) // length way past MaxFrame
	if _, _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversize frame accepted")
	}
	// Every length that cannot hold [u8 type][u32 reqid] is rejected from
	// the prefix alone.
	for n := uint32(0); n < 5; n++ {
		short := binary.LittleEndian.AppendUint32(nil, n)
		short = append(short, make([]byte, n)...)
		if _, _, _, err := ReadFrame(bytes.NewReader(short)); err == nil {
			t.Fatalf("frame with %d-byte body accepted (cannot hold type+reqid)", n)
		}
	}
	// Exactly type+reqid (empty payload) is legal framing.
	ok := AppendHelloOK(nil)
	if mt, reqid, payload, err := ReadFrame(bytes.NewReader(ok)); err != nil || mt != MsgHelloOK || reqid != 0 || len(payload) != 0 {
		t.Fatalf("HelloOK frame: type=%v reqid=%d payload=%d err=%v", mt, reqid, len(payload), err)
	}
}

// TestFrameReqidEcho pins the wire position of the request id: bytes
// [5,9) of every frame, little-endian, independent of message type — the
// demux on both ends routes on exactly these bytes.
func TestFrameReqidEcho(t *testing.T) {
	frames := [][]byte{
		AppendExpandArgs(nil, 0xdeadbeef, &ExpandArgs{Dim: 1}),
		AppendExpandReply(nil, 0xdeadbeef, &ExpandReply{}),
		AppendComputeArgs(nil, 0xdeadbeef, &ComputeArgs{}),
		AppendComputeReply(nil, 0xdeadbeef, &ComputeReply{}),
		AppendError(nil, 0xdeadbeef, "boom"),
	}
	for i, b := range frames {
		if got := binary.LittleEndian.Uint32(b[5:9]); got != 0xdeadbeef {
			t.Fatalf("frame %d: reqid bytes %08x, want deadbeef", i, got)
		}
		_, reqid, _, err := ReadFrame(bytes.NewReader(b))
		if err != nil || reqid != 0xdeadbeef {
			t.Fatalf("frame %d: reqid %08x err %v", i, reqid, err)
		}
	}
}

// FuzzDecode pins the canonical-form property on the tagged framing: any
// payload a decoder accepts must re-encode (under the same reqid) to
// exactly the frame that was decoded — the reqid echoes untouched and
// the payload is canonical. This rules out silent truncation,
// non-canonical booleans, and any length/content disagreement an
// attacker could smuggle through the codec.
func FuzzDecode(f *testing.F) {
	f.Add(byte(MsgExpand), uint32(1), AppendExpandArgs(nil, 1, &ExpandArgs{Batch: 1, Dim: 4, Verts: []int32{1, 2}})[headerLen:])
	f.Add(byte(MsgExpandReply), uint32(7), AppendExpandReply(nil, 7, &ExpandReply{Hit: []bool{true, false}, Rows: []float32{1, 2}, Srcs: [][]int32{{3}, nil}})[headerLen:])
	f.Add(byte(MsgCompute), ^uint32(0), AppendComputeArgs(nil, ^uint32(0), &ComputeArgs{Level: 1, InDim: 2, OutDim: 2, Verts: []int32{0}, In: []int32{0, 1}, Rows: []float32{1, 2, 3, 4}})[headerLen:])
	f.Add(byte(MsgComputeReply), uint32(0), AppendComputeReply(nil, 0, &ComputeReply{Rows: []float32{5}})[headerLen:])
	f.Add(byte(MsgHello), uint32(0), AppendHello(nil, &Hello{Proto: 2, Shards: 2, Replicas: 2, Fanouts: []int32{4}, Kind: "SAGE", Plan: []byte("{}")})[headerLen:])
	f.Add(byte(MsgError), uint32(3), AppendError(nil, 3, "x")[headerLen:])
	f.Fuzz(func(t *testing.T, kind byte, reqid uint32, payload []byte) {
		var reencoded []byte
		switch MsgType(kind) {
		case MsgExpand:
			a, err := DecodeExpandArgs(payload)
			if err != nil {
				return
			}
			reencoded = AppendExpandArgs(nil, reqid, a)
		case MsgExpandReply:
			r, err := DecodeExpandReply(payload)
			if err != nil {
				return
			}
			reencoded = AppendExpandReply(nil, reqid, r)
		case MsgCompute:
			a, err := DecodeComputeArgs(payload)
			if err != nil {
				return
			}
			reencoded = AppendComputeArgs(nil, reqid, a)
		case MsgComputeReply:
			r, err := DecodeComputeReply(payload)
			if err != nil {
				return
			}
			reencoded = AppendComputeReply(nil, reqid, r)
		case MsgHello:
			h, err := DecodeHello(payload)
			if err != nil {
				return
			}
			reencoded = AppendHello(nil, h)
		case MsgError:
			// DecodeError is best-effort by design; only canonical error
			// payloads participate in the identity check.
			r := reader{p: payload}
			s := r.str()
			if r.done() != nil {
				return
			}
			reencoded = AppendError(nil, reqid, s)
		default:
			return
		}
		if !bytes.Equal(reencoded[headerLen:], payload) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", payload, reencoded[headerLen:])
		}
		// The frame's reqid bytes must be exactly the reqid passed in —
		// except handshake frames, which pin reqid 0 by construction.
		mt, gotID, gotPayload, err := ReadFrame(bytes.NewReader(reencoded))
		if err != nil {
			t.Fatalf("re-encoded frame unreadable: %v", err)
		}
		wantID := reqid
		if MsgType(kind) == MsgHello {
			wantID = 0
		}
		if mt != MsgType(kind) || gotID != wantID || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("frame round trip: type %v reqid %d, want type %v reqid %d", mt, gotID, MsgType(kind), wantID)
		}
	})
}
