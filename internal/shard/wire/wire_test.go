package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// The codec battery: every message round-trips exactly (including
// zero-length and typed-edge payloads), Size* predicts encoded sizes to
// the byte, and every accepted payload is canonical — decode∘encode is
// the identity on it (the fuzz harness pins that for hostile inputs).

func frame(t *testing.T, b []byte) (MsgType, []byte) {
	t.Helper()
	mt, payload, err := ReadFrame(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return mt, payload
}

func expandArgsCases() []*ExpandArgs {
	return []*ExpandArgs{
		{},
		{Batch: 7, Ver: 3, Level: 0, Dim: 12, Verts: []int32{0, 5, 9}},
		{Batch: ^uint64(0), Ver: 1, Level: 2, Dim: 1, Verts: []int32{2147483647, -1}},
		{Level: -3, Dim: -7}, // negatives must survive so validation can reject them
	}
}

func TestExpandArgsRoundTrip(t *testing.T) {
	for _, a := range expandArgsCases() {
		b := AppendExpandArgs(nil, a)
		if len(b) != SizeExpandArgs(a) {
			t.Fatalf("SizeExpandArgs=%d, encoded %d", SizeExpandArgs(a), len(b))
		}
		mt, payload := frame(t, b)
		if mt != MsgExpand {
			t.Fatalf("type %v", mt)
		}
		got, err := DecodeExpandArgs(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("round trip %+v != %+v", got, a)
		}
	}
}

func expandReplyCases() []*ExpandReply {
	return []*ExpandReply{
		{},
		{Hit: []bool{true, false}, Rows: []float32{1, -2.5, float32(math.Inf(1)), 0}},
		{
			Hit:  []bool{false, false, true},
			Rows: []float32{math.Float32frombits(0x7fc00001)}, // NaN payload bits must survive
			Srcs: [][]int32{{1, 2}, nil, {9}},
		},
	}
}

func TestExpandReplyRoundTrip(t *testing.T) {
	for _, r := range expandReplyCases() {
		b := AppendExpandReply(nil, r)
		if len(b) != SizeExpandReply(r) {
			t.Fatalf("SizeExpandReply=%d, encoded %d", SizeExpandReply(r), len(b))
		}
		mt, payload := frame(t, b)
		if mt != MsgExpandReply {
			t.Fatalf("type %v", mt)
		}
		got, err := DecodeExpandReply(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Compare bitwise: NaN != NaN under DeepEqual's float semantics is
		// fine (DeepEqual on float32 NaN returns false), so compare bits.
		if len(got.Rows) != len(r.Rows) {
			t.Fatalf("rows %d != %d", len(got.Rows), len(r.Rows))
		}
		for i := range got.Rows {
			if math.Float32bits(got.Rows[i]) != math.Float32bits(r.Rows[i]) {
				t.Fatalf("row bits %d: %08x != %08x", i, math.Float32bits(got.Rows[i]), math.Float32bits(r.Rows[i]))
			}
		}
		if !reflect.DeepEqual(got.Hit, r.Hit) || !reflect.DeepEqual(got.Srcs, r.Srcs) {
			t.Fatalf("round trip %+v != %+v", got, r)
		}
	}
}

func TestComputeRoundTrip(t *testing.T) {
	args := []*ComputeArgs{
		{},
		{
			Batch: 11, Ver: 2, Level: 1, InDim: 8, OutDim: 4,
			Verts: []int32{3, 7}, In: []int32{1, 3, 7, 9},
			Rows: []float32{0.5, -1, 2, 3, 4, 5, 6, 7},
		},
	}
	for _, a := range args {
		b := AppendComputeArgs(nil, a)
		if len(b) != SizeComputeArgs(a) {
			t.Fatalf("SizeComputeArgs=%d, encoded %d", SizeComputeArgs(a), len(b))
		}
		mt, payload := frame(t, b)
		if mt != MsgCompute {
			t.Fatalf("type %v", mt)
		}
		got, err := DecodeComputeArgs(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("round trip %+v != %+v", got, a)
		}
	}
	reps := []*ComputeReply{{}, {Rows: []float32{1, 2, -3}}}
	for _, r := range reps {
		b := AppendComputeReply(nil, r)
		if len(b) != SizeComputeReply(r) {
			t.Fatalf("SizeComputeReply=%d, encoded %d", SizeComputeReply(r), len(b))
		}
		mt, payload := frame(t, b)
		if mt != MsgComputeReply {
			t.Fatalf("type %v", mt)
		}
		got, err := DecodeComputeReply(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip %+v != %+v", got, r)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	hs := []*Hello{
		{},
		{
			Proto: ProtoVersion, ShardID: 1, Shards: 4, Lo: 100, Hi: 250,
			NumVertices: 423, NumEdges: 5912, NumTypes: 8,
			InDim: 128, Hidden: 16, OutDim: 40, Layers: 2,
			Fanouts: []int32{4, 4}, Seed: 9, ParamSum: 0xdeadbeefcafef00d,
			Kind: "RGCN", Engine: "fused", Placement: "edge",
			Plan: []byte(`{"version":1}`),
		},
	}
	for _, h := range hs {
		b := AppendHello(nil, h)
		mt, payload := frame(t, b)
		if mt != MsgHello {
			t.Fatalf("type %v", mt)
		}
		got, err := DecodeHello(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("round trip %+v != %+v", got, h)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	for _, msg := range []string{"", "shard 3: vertex 9 outside owned range [0,5)"} {
		mt, payload := frame(t, AppendError(nil, msg))
		if mt != MsgError {
			t.Fatalf("type %v", mt)
		}
		if got := DecodeError(payload); got != msg {
			t.Fatalf("round trip %q != %q", got, msg)
		}
	}
}

func TestStrictDecoding(t *testing.T) {
	good := AppendExpandArgs(nil, &ExpandArgs{Dim: 4, Verts: []int32{1}})
	payload := good[5:]

	// Truncation anywhere must fail, never panic or mis-parse.
	for i := 0; i < len(payload); i++ {
		if _, err := DecodeExpandArgs(payload[:i]); err == nil {
			t.Fatalf("truncated to %d bytes decoded", i)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeExpandArgs(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Non-0/1 bool bytes are rejected (canonical form).
	rep := AppendExpandReply(nil, &ExpandReply{Hit: []bool{true}})
	bad := append([]byte(nil), rep[5:]...)
	bad[4] = 2 // the hit byte after the count prefix
	if _, err := DecodeExpandReply(bad); err == nil {
		t.Fatal("bool byte 2 accepted")
	}
	// A hostile element count cannot drive a huge allocation: the count
	// is checked against the remaining bytes before any make().
	hostile := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeComputeReply(hostile); err == nil {
		t.Fatal("hostile count accepted")
	}
}

func TestReadFrameRejectsOversizeAndEmpty(t *testing.T) {
	var hdr []byte
	hdr = append(hdr, 0xff, 0xff, 0xff, 0xff) // length way past MaxFrame
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversize frame accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("empty frame accepted")
	}
}

// FuzzDecode pins the canonical-form property: any payload a decoder
// accepts must re-encode to exactly the bytes that were decoded. This
// rules out silent truncation, non-canonical booleans, and any length/
// content disagreement an attacker could smuggle through the codec.
func FuzzDecode(f *testing.F) {
	f.Add(byte(MsgExpand), AppendExpandArgs(nil, &ExpandArgs{Batch: 1, Dim: 4, Verts: []int32{1, 2}})[5:])
	f.Add(byte(MsgExpandReply), AppendExpandReply(nil, &ExpandReply{Hit: []bool{true, false}, Rows: []float32{1, 2}, Srcs: [][]int32{{3}, nil}})[5:])
	f.Add(byte(MsgCompute), AppendComputeArgs(nil, &ComputeArgs{Level: 1, InDim: 2, OutDim: 2, Verts: []int32{0}, In: []int32{0, 1}, Rows: []float32{1, 2, 3, 4}})[5:])
	f.Add(byte(MsgComputeReply), AppendComputeReply(nil, &ComputeReply{Rows: []float32{5}})[5:])
	f.Add(byte(MsgHello), AppendHello(nil, &Hello{Proto: 1, Shards: 2, Fanouts: []int32{4}, Kind: "SAGE", Plan: []byte("{}")})[5:])
	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		var reencoded []byte
		switch MsgType(kind) {
		case MsgExpand:
			a, err := DecodeExpandArgs(payload)
			if err != nil {
				return
			}
			reencoded = AppendExpandArgs(nil, a)
		case MsgExpandReply:
			r, err := DecodeExpandReply(payload)
			if err != nil {
				return
			}
			reencoded = AppendExpandReply(nil, r)
		case MsgCompute:
			a, err := DecodeComputeArgs(payload)
			if err != nil {
				return
			}
			reencoded = AppendComputeArgs(nil, a)
		case MsgComputeReply:
			r, err := DecodeComputeReply(payload)
			if err != nil {
				return
			}
			reencoded = AppendComputeReply(nil, r)
		case MsgHello:
			h, err := DecodeHello(payload)
			if err != nil {
				return
			}
			reencoded = AppendHello(nil, h)
		default:
			return
		}
		if !bytes.Equal(reencoded[5:], payload) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", payload, reencoded[5:])
		}
	})
}
